// Figure 15 (paper §V.B.2): efficiency on stream datasets — average
// processing cost per timestamp for GraphGrep, gIndex1, gIndex2, and NPV
// (dominated set cover). gIndex1 must re-mine frequent fragments from the
// changed stream graphs at every timestamp, which dominates its cost.
//
// Paper scale: fig15_stream_efficiency --pairs=70 --real_streams=25 ...
//                  --timestamps=1000 --gindex_timestamps=1000
// --threads=N runs the NPV engine on the sharded parallel engine.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "gsps/baselines/gindex/gindex_filter.h"

namespace gsps::bench {
namespace {

void RunSetting(const char* name, const StreamWorkload& workload,
                int gindex_timestamps, int64_t gindex_max_patterns,
                int num_threads) {
  std::printf("\n[%s] %zu queries x %zu streams, %d timestamps, "
              "%d thread(s)\n", name, workload.queries.size(),
              workload.streams.size(), workload.horizon, num_threads);
  {
    RunOptions options;
    options.num_threads = num_threads;
    const StatsAccumulator stats = RunNpvEngine(
        workload, JoinKind::kDominatedSetCover, /*depth=*/3, options);
    std::printf("  %-8s cost/step=%9.3f ms (update %.3f + join %.3f) "
                "p50=%.3f p95=%.3f max=%.3f\n",
                "NPV", stats.AvgCostMillis(), stats.AvgUpdateMillis(),
                stats.AvgJoinMillis(), stats.CostPercentileMillis(50.0),
                stats.CostPercentileMillis(95.0), stats.MaxCostMillis());
    auto fields = StatsJsonFields(stats);
    fields["num_threads"] = num_threads;
    EmitBenchJson("fig15_npv", name, fields);
  }
  {
    const StatsAccumulator stats = RunGraphGrepBaseline(workload, 4);
    std::printf("  %-8s cost/step=%9.3f ms (update %.3f + join %.3f) "
                "p50=%.3f p95=%.3f max=%.3f\n",
                "Ggrep", stats.AvgCostMillis(), stats.AvgUpdateMillis(),
                stats.AvgJoinMillis(), stats.CostPercentileMillis(50.0),
                stats.CostPercentileMillis(95.0), stats.MaxCostMillis());
    EmitBenchJson("fig15_graphgrep", name, StatsJsonFields(stats));
  }
  StreamWorkload truncated = workload;
  truncated.horizon = std::min(workload.horizon, gindex_timestamps);
  {
    GspanOptions options = GindexFilter::Gindex1Options();
    options.max_patterns = gindex_max_patterns;
    // At bench scale (few streams) the paper's 0.1|D| threshold can fall to
    // a single graph, which makes "frequent" mining enumerate everything;
    // keep the effective support at >= 2 graphs.
    options.min_support_fraction =
        std::max(0.1, 2.0 / static_cast<double>(workload.streams.size()));
    options.max_embeddings_per_graph = 24;
    const StatsAccumulator stats = RunGindexBaseline(truncated, options);
    std::printf("  %-8s cost/step=%9.3f ms (mine %.3f + filter %.3f) "
                "(on %d timestamps)\n",
                "gIndex1", stats.AvgCostMillis(), stats.AvgUpdateMillis(),
                stats.AvgJoinMillis(), truncated.horizon);
    EmitBenchJson("fig15_gindex1", name, StatsJsonFields(stats));
  }
  {
    const StatsAccumulator stats =
        RunGindexBaseline(truncated, GindexFilter::Gindex2Options());
    std::printf("  %-8s cost/step=%9.3f ms (mine %.3f + filter %.3f) "
                "(on %d timestamps)\n",
                "gIndex2", stats.AvgCostMillis(), stats.AvgUpdateMillis(),
                stats.AvgJoinMillis(), truncated.horizon);
    EmitBenchJson("fig15_gindex2", name, StatsJsonFields(stats));
  }
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int pairs = flags.GetInt("pairs", 20);
  const int real_streams = flags.GetInt("real_streams", 10);
  const int timestamps = flags.GetInt("timestamps", 60);
  const int gindex_timestamps = flags.GetInt("gindex_timestamps", 2);
  const int64_t gindex_max_patterns =
      flags.GetInt("gindex_max_patterns", 20000);
  const uint64_t seed = flags.GetUint64("seed", 11);
  const int num_threads = flags.GetInt("threads", 1);

  std::printf("Figure 15: stream efficiency (avg cost per timestamp)\n");

  RunSetting("reality-like",
             RealityStreamWorkload(real_streams, real_streams, timestamps,
                                   seed),
             gindex_timestamps, gindex_max_patterns, num_threads);
  RunSetting("synthetic sparse",
             SyntheticStreamWorkload(pairs, 0.1, 0.3, timestamps, seed + 1,
                                     /*extra_pair_fraction=*/12.0),
             gindex_timestamps, gindex_max_patterns, num_threads);
  RunSetting("synthetic dense",
             SyntheticStreamWorkload(pairs, 0.2, 0.15, timestamps, seed + 2,
                                     /*extra_pair_fraction=*/6.2),
             gindex_timestamps, gindex_max_patterns, num_threads);

  std::printf("\nPaper shape check: gIndex1 is orders of magnitude more "
              "costly (per-timestamp mining);\ngIndex2, GraphGrep, and NPV "
              "all stay cheap.\n");
  return 0;
}

}  // namespace
}  // namespace gsps::bench

int main(int argc, char** argv) { return gsps::bench::Main(argc, argv); }
