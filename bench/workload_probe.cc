// Developer utility: probes candidate ratios and matching statistics of a
// stream workload across generator settings. Not part of the paper's
// tables; used to calibrate the synthetic substitutions documented in
// DESIGN.md (and handy when adapting the generators to new scenarios).
//
//   workload_probe --pairs=10 --timestamps=20 --extra=4.0 --p1=0.2 --p2=0.15

#include <cstdio>

#include "bench_common.h"
#include "gsps/iso/subgraph_isomorphism.h"

namespace gsps::bench {
namespace {

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int pairs = flags.GetInt("pairs", 10);
  const int timestamps = flags.GetInt("timestamps", 20);
  const double p1 = flags.GetDouble("p1", 0.2);
  const double p2 = flags.GetDouble("p2", 0.15);
  const double extra = flags.GetDouble("extra", 4.0);
  const uint64_t seed = flags.GetUint64("seed", 11);
  const bool reality = flags.GetBool("reality", false);
  const bool truth = flags.GetBool("truth", false);

  const StreamWorkload workload =
      reality ? RealityStreamWorkload(pairs, pairs, timestamps, seed)
              : SyntheticStreamWorkload(pairs, p1, p2, timestamps, seed,
                                        extra);

  double query_edges = 0;
  for (const Graph& q : workload.queries) query_edges += q.NumEdges();
  double stream_edges = 0, stream_vertices = 0;
  for (const GraphStream& s : workload.streams) {
    const Graph g = s.MaterializeAt(workload.horizon / 2);
    stream_edges += g.NumEdges();
    stream_vertices += g.NumVertices();
  }
  std::printf("avg query edges:   %.1f\n",
              query_edges / static_cast<double>(workload.queries.size()));
  std::printf("avg stream size:   %.1f vertices, %.1f edges\n",
              stream_vertices / static_cast<double>(workload.streams.size()),
              stream_edges / static_cast<double>(workload.streams.size()));

  RunOptions options;
  options.ground_truth_every = truth ? 5 : 0;
  const StatsAccumulator npv =
      RunNpvEngine(workload, JoinKind::kDominatedSetCover, 3, options);
  const StatsAccumulator ggrep = RunGraphGrepBaseline(workload, 4, options);
  std::printf("NPV   candidate%%=%6.2f  cost/step=%.3f ms\n",
              100.0 * npv.AvgCandidateRatio(), npv.AvgCostMillis());
  std::printf("Ggrep candidate%%=%6.2f  cost/step=%.3f ms\n",
              100.0 * ggrep.AvgCandidateRatio(), ggrep.AvgCostMillis());
  if (truth) {
    std::printf("NPV precision=%.3f  no-false-negative=%s\n",
                npv.AvgPrecision(),
                npv.CandidatesNeverBelowTruth() ? "ok" : "VIOLATED");
  }
  return 0;
}

}  // namespace
}  // namespace gsps::bench

int main(int argc, char** argv) { return gsps::bench::Main(argc, argv); }
