#include "bench_common.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "gsps/baselines/gindex/gindex_filter.h"
#include "gsps/baselines/graphgrep/graphgrep_filter.h"
#include "gsps/common/check.h"
#include "gsps/common/stopwatch.h"
#include "gsps/engine/continuous_query_engine.h"
#include "gsps/engine/parallel_query_engine.h"
#include "gsps/gen/reality_like.h"
#include "gsps/iso/subgraph_isomorphism.h"
#include "gsps/join/dominance.h"
#include "gsps/nnt/nnt_set.h"

namespace gsps::bench {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

int Flags::GetInt(const std::string& name, int default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : std::atoi(it->second.c_str());
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : std::atof(it->second.c_str());
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second != "false" && it->second != "0";
}

uint64_t Flags::GetUint64(const std::string& name,
                          uint64_t default_value) const {
  auto it = values_.find(name);
  return it == values_.end()
             ? default_value
             : std::strtoull(it->second.c_str(), nullptr, 10);
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

StreamWorkload MakeWorkload(StreamDataset dataset, int num_queries,
                            int num_streams, int horizon) {
  StreamWorkload workload;
  num_queries = std::min<int>(num_queries,
                              static_cast<int>(dataset.queries.size()));
  num_streams = std::min<int>(num_streams,
                              static_cast<int>(dataset.streams.size()));
  for (int j = 0; j < num_queries; ++j) {
    workload.queries.push_back(std::move(dataset.queries[static_cast<size_t>(j)]));
  }
  for (int i = 0; i < num_streams; ++i) {
    workload.streams.push_back(std::move(dataset.streams[static_cast<size_t>(i)]));
  }
  workload.horizon = horizon;
  for (const GraphStream& stream : workload.streams) {
    workload.horizon = std::min(workload.horizon, stream.NumTimestamps());
  }
  return workload;
}

StreamWorkload SyntheticStreamWorkload(int num_pairs, double p1, double p2,
                                       int horizon, uint64_t seed,
                                       double extra_pair_fraction) {
  SyntheticStreamParams params;
  params.num_pairs = num_pairs;
  params.evolution.p_appear = p1;
  params.evolution.p_disappear = p2;
  params.evolution.num_timestamps = horizon;
  params.evolution.extra_pair_fraction = extra_pair_fraction;
  params.seed = seed;
  return MakeWorkload(MakeSyntheticStreams(params), num_pairs, num_pairs,
                      horizon);
}

StreamWorkload RealityStreamWorkload(int num_streams, int num_queries,
                                     int horizon, uint64_t seed) {
  RealityLikeParams params;
  params.num_streams = num_streams;
  params.num_queries = num_queries;
  params.num_timestamps = horizon;
  params.seed = seed;
  return MakeWorkload(MakeRealityLikeStreams(params), num_queries,
                      num_streams, horizon);
}

namespace {

int64_t ExactTruePairs(const std::vector<Graph>& queries,
                       const std::vector<const Graph*>& graphs) {
  int64_t count = 0;
  for (const Graph* g : graphs) {
    for (const Graph& q : queries) {
      if (IsSubgraphIsomorphic(q, *g)) ++count;
    }
  }
  return count;
}

}  // namespace

namespace {

// Shared driver loop for both engine flavors. `apply` applies one
// timestamp's batches, `all_pairs` runs the join over every stream,
// `graph_of` exposes the live stream graphs for ground truth, and
// `decorate` fills the fields only the engine knows (busy_millis) into the
// otherwise-complete sample.
template <typename ApplyFn, typename PairsFn, typename GraphFn,
          typename DecorateFn>
StatsAccumulator DriveEngine(const StreamWorkload& workload,
                             const RunOptions& options, ApplyFn apply,
                             PairsFn all_pairs, GraphFn graph_of,
                             DecorateFn decorate) {
  StatsAccumulator stats;
  const int num_streams = static_cast<int>(workload.streams.size());
  const int64_t total_pairs =
      static_cast<int64_t>(workload.queries.size()) * num_streams;
  Stopwatch watch;
  for (int t = 0; t < workload.horizon; ++t) {
    TimestampStats sample;
    sample.timestamp = t;
    sample.total_pairs = total_pairs;
    if (t > 0) {
      watch.Restart();
      apply(t);
      sample.update_millis = watch.ElapsedMillis();
    }
    watch.Restart();
    sample.candidate_pairs = all_pairs();
    sample.join_millis = watch.ElapsedMillis();
    if (options.ground_truth_every > 0 &&
        t % options.ground_truth_every == 0) {
      std::vector<const Graph*> graphs;
      for (int i = 0; i < num_streams; ++i) graphs.push_back(graph_of(i));
      sample.true_pairs = ExactTruePairs(workload.queries, graphs);
    }
    decorate(sample);
    stats.Add(sample);
  }
  return stats;
}

}  // namespace

StatsAccumulator RunNpvEngine(const StreamWorkload& workload, JoinKind kind,
                              int depth, const RunOptions& options) {
  const int num_streams = static_cast<int>(workload.streams.size());
  if (options.num_threads > 1) {
    ParallelEngineOptions parallel_options;
    parallel_options.engine.nnt_depth = depth;
    parallel_options.engine.join_kind = kind;
    parallel_options.num_threads = options.num_threads;
    ParallelQueryEngine engine(parallel_options);
    for (const Graph& q : workload.queries) engine.AddQuery(q);
    for (const GraphStream& s : workload.streams) {
      engine.AddStream(s.StartGraph());
    }
    engine.Start();
    std::vector<GraphChange> batches(static_cast<size_t>(num_streams));
    return DriveEngine(
        workload, options,
        [&](int t) {
          for (int i = 0; i < num_streams; ++i) {
            batches[static_cast<size_t>(i)] =
                workload.streams[static_cast<size_t>(i)].ChangeAt(t);
          }
          engine.ApplyChanges(batches);
        },
        [&, pairs = std::vector<std::pair<int, int>>()]() mutable {
          engine.AllCandidatePairs(&pairs);
          return static_cast<int64_t>(pairs.size());
        },
        [&](int i) { return &engine.StreamGraph(i); },
        [&](TimestampStats& sample) {
          // The engine's barrier samples carry the aggregate cross-shard
          // work time this driver cannot see from outside.
          sample.busy_millis = engine.TakeBarrierStats().busy_millis;
        });
  }

  EngineOptions engine_options;
  engine_options.nnt_depth = depth;
  engine_options.join_kind = kind;
  ContinuousQueryEngine engine(engine_options);
  for (const Graph& q : workload.queries) engine.AddQuery(q);
  for (const GraphStream& s : workload.streams) {
    engine.AddStream(s.StartGraph());
  }
  engine.Start();
  return DriveEngine(
      workload, options,
      [&](int t) {
        for (int i = 0; i < num_streams; ++i) {
          engine.ApplyChange(i,
                             workload.streams[static_cast<size_t>(i)].ChangeAt(t));
        }
      },
      [&, buffer = std::vector<int>()]() mutable {
        int64_t candidates = 0;
        for (int i = 0; i < num_streams; ++i) {
          engine.CandidatesForStream(i, &buffer);
          candidates += static_cast<int64_t>(buffer.size());
        }
        return candidates;
      },
      [&](int i) { return &engine.StreamGraph(i); },
      [](TimestampStats& sample) {
        sample.busy_millis = sample.update_millis + sample.join_millis;
      });
}

StatsAccumulator RunGraphGrepBaseline(const StreamWorkload& workload,
                                      int max_path_length,
                                      const RunOptions& options) {
  GraphGrepFilter filter(max_path_length);
  filter.SetQueries(workload.queries);

  std::vector<StreamCursor> cursors;
  cursors.reserve(workload.streams.size());
  for (const GraphStream& s : workload.streams) cursors.emplace_back(s);

  StatsAccumulator stats;
  const int64_t total_pairs =
      static_cast<int64_t>(workload.queries.size()) *
      static_cast<int64_t>(workload.streams.size());
  Stopwatch watch;
  for (int t = 0; t < workload.horizon; ++t) {
    TimestampStats sample;
    sample.timestamp = t;
    sample.total_pairs = total_pairs;
    if (t > 0) {
      watch.Restart();
      for (StreamCursor& cursor : cursors) cursor.Advance();
      sample.update_millis = watch.ElapsedMillis();
    }
    watch.Restart();
    int64_t candidates = 0;
    for (const StreamCursor& cursor : cursors) {
      candidates += static_cast<int64_t>(
          filter.CandidateQueries(cursor.CurrentGraph()).size());
    }
    sample.join_millis = watch.ElapsedMillis();
    sample.candidate_pairs = candidates;
    if (options.ground_truth_every > 0 &&
        t % options.ground_truth_every == 0) {
      std::vector<const Graph*> graphs;
      for (const StreamCursor& cursor : cursors) {
        graphs.push_back(&cursor.CurrentGraph());
      }
      sample.true_pairs = ExactTruePairs(workload.queries, graphs);
    }
    sample.busy_millis = sample.update_millis + sample.join_millis;
    stats.Add(sample);
  }
  return stats;
}

StatsAccumulator RunGindexBaseline(const StreamWorkload& workload,
                                   const GspanOptions& mining,
                                   const RunOptions& options) {
  std::vector<StreamCursor> cursors;
  cursors.reserve(workload.streams.size());
  for (const GraphStream& s : workload.streams) cursors.emplace_back(s);

  StatsAccumulator stats;
  const int64_t total_pairs =
      static_cast<int64_t>(workload.queries.size()) *
      static_cast<int64_t>(workload.streams.size());
  Stopwatch watch;
  for (int t = 0; t < workload.horizon; ++t) {
    TimestampStats sample;
    sample.timestamp = t;
    sample.total_pairs = total_pairs;
    watch.Restart();
    if (t > 0) {
      for (StreamCursor& cursor : cursors) cursor.Advance();
    }
    // gIndex must re-mine features from the changed graphs (the paper's
    // protocol); mining time counts as update cost.
    std::vector<Graph> snapshots;
    snapshots.reserve(cursors.size());
    for (const StreamCursor& cursor : cursors) {
      snapshots.push_back(cursor.CurrentGraph());
    }
    GindexFilter filter(mining);
    filter.BuildIndex(snapshots);
    sample.update_millis = watch.ElapsedMillis();

    watch.Restart();
    int64_t candidates = 0;
    for (const Graph& query : workload.queries) {
      candidates +=
          static_cast<int64_t>(filter.CandidateGraphsFor(query).size());
    }
    sample.join_millis = watch.ElapsedMillis();
    sample.candidate_pairs = candidates;
    if (options.ground_truth_every > 0 &&
        t % options.ground_truth_every == 0) {
      std::vector<const Graph*> graphs;
      for (const Graph& g : snapshots) graphs.push_back(&g);
      sample.true_pairs = ExactTruePairs(workload.queries, graphs);
    }
    sample.busy_millis = sample.update_millis + sample.join_millis;
    stats.Add(sample);
  }
  return stats;
}

double NpvStaticCandidateRatio(const std::vector<Graph>& database,
                               const std::vector<Graph>& queries, int depth) {
  if (database.empty() || queries.empty()) return 0.0;
  DimensionTable dimensions;
  std::vector<QueryVectors> query_vectors;
  query_vectors.reserve(queries.size());
  for (const Graph& query : queries) {
    NntSet nnts(depth, &dimensions);
    nnts.Build(query);
    query_vectors.push_back(BuildQueryVectors(nnts));
  }
  auto strategy = MakeJoinStrategy(JoinKind::kDominatedSetCover);
  strategy->SetQueries(std::move(query_vectors));
  strategy->SetNumStreams(static_cast<int>(database.size()));
  for (size_t i = 0; i < database.size(); ++i) {
    NntSet nnts(depth, &dimensions);
    nnts.Build(database[i]);
    for (const VertexId root : nnts.Roots()) {
      strategy->UpdateStreamVertex(static_cast<int>(i), root,
                                   nnts.NpvOf(root));
    }
  }
  int64_t candidates = 0;
  std::vector<int> buffer;
  for (size_t i = 0; i < database.size(); ++i) {
    strategy->CandidatesForStream(static_cast<int>(i), &buffer);
    candidates += static_cast<int64_t>(buffer.size());
  }
  return static_cast<double>(candidates) /
         (static_cast<double>(database.size()) *
          static_cast<double>(queries.size()));
}

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void PrintRow(const std::string& label, const std::vector<double>& values,
              const std::vector<std::string>& columns) {
  GSPS_CHECK(values.size() == columns.size());
  std::printf("%-28s", label.c_str());
  for (size_t i = 0; i < values.size(); ++i) {
    std::printf("  %s=%.4f", columns[i].c_str(), values[i]);
  }
  std::printf("\n");
}

namespace {

// Minimal JSON string escaping; keys and settings are harness-controlled
// identifiers, so only the characters that would break the framing matter.
std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string JsonNumber(double value) {
  // JSON has no NaN/Inf; clamp to null-free sentinels.
  if (!std::isfinite(value)) return "0";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

}  // namespace

void EmitBenchJson(const std::string& bench, const std::string& setting,
                   const std::map<std::string, double>& fields) {
  std::string line = "{\"bench\":\"" + JsonEscape(bench) + "\"";
  if (!setting.empty()) {
    line += ",\"setting\":\"" + JsonEscape(setting) + "\"";
  }
  for (const auto& [key, value] : fields) {
    line += ",\"" + JsonEscape(key) + "\":" + JsonNumber(value);
  }
  line += "}";
  std::printf("BENCH_JSON %s\n", line.c_str());
  if (const char* path = std::getenv("GSPS_BENCH_JSON"); path != nullptr) {
    if (std::FILE* f = std::fopen(path, "a"); f != nullptr) {
      std::fprintf(f, "%s\n", line.c_str());
      std::fclose(f);
    }
  }
}

std::map<std::string, double> StatsJsonFields(const StatsAccumulator& stats) {
  return {
      {"timestamps", static_cast<double>(stats.num_timestamps())},
      {"avg_cost_ms", stats.AvgCostMillis()},
      {"avg_update_ms", stats.AvgUpdateMillis()},
      {"avg_join_ms", stats.AvgJoinMillis()},
      {"avg_busy_ms", stats.AvgBusyMillis()},
      {"p50_cost_ms", stats.CostPercentileMillis(50.0)},
      {"p95_cost_ms", stats.CostPercentileMillis(95.0)},
      {"max_cost_ms", stats.MaxCostMillis()},
      {"avg_candidate_ratio", stats.AvgCandidateRatio()},
      {"avg_precision", stats.AvgPrecision()},
  };
}

}  // namespace gsps::bench
