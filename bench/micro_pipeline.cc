// Pipelined-vs-barrier microbenchmark: sustained ingest throughput of the
// barrier-free PipelinedQueryEngine against the lockstep ParallelQueryEngine
// at equal thread count on a Zipf-skewed workload — the distribution the
// pipeline exists for. Stream i's graph and per-tick delta budget scale as
// 1/(i+1)^zipf, so one heavy stream dominates while the tail idles; the
// barrier engine pays max-shard latency twice per tick while the pipeline
// lets light shards run ahead between epochs.
//
// The delta schedule is cyclic and bursty: each cycle inserts stream i's
// whole extra edge set at its burst tick (i mod phases) and deletes it at
// the mirror tick, so the graph returns to its start state every cycle and
// at any tick only ~streams/phases streams are active — the arrival shape
// where the lockstep engine's per-tick max-shard wait hurts most. Cycles 1-2 are warmup
// for both engines (cycle 1 fills every buffer, cycle 2 completes the slab
// and free-list reuse pass; the pipelined engine's alloc_warmup_epochs is
// set to match — one epoch closes per cycle); cycles 3..N are timed. The
// cyclic shape makes the zero-steady-state-allocation gate meaningful:
// after the warm cycles every slab slot, lane buffer, and scratch vector
// has reached its high-water mark, so the worker loops (pop, coalesce,
// ApplyChange, flush, epoch snapshot) must not touch the heap. The binary links
// gsps_alloc_hook and injects the thread-local counter as the engine's
// alloc probe (strict zero in Release builds without sanitizers).
//
// Gates regressed by CI's bench-trajectory job: steady_allocs == 0 plus
// losslessness (the two engines must agree on the final candidate pairs
// and every lane audit must be clean — violations exit non-zero here)
// always, and speedup_pipelined >= 1.3 on runners with >= 4 hardware
// threads (like micro_parallel, the concurrency win needs real cores; the
// JSON carries hardware_threads so the gate can tell).
//
// Flags:
//   --streams=N    number of streams (default 24)
//   --queries=N    registered queries (default 8, capped at streams)
//   --threads=N    worker threads for BOTH engines (default 4)
//   --cycles=N     total cycles incl. the two warmup cycles (default 6)
//   --phases=N     burst slots per half-cycle (cycle = 2*phases ticks; default 6)
//   --heavy=N      edge budget of the heaviest stream's delta set (default 96)
//   --zipf=X       skew exponent (default 1.0)
//   --depth=N      NNT depth (default 3)
//   --seed=N       workload seed
//
// Output: human-readable rows plus one EmitBenchJson line (bench
// "micro_pipeline"), archived by the CI bench-JSON job.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "gsps/common/alloc_hook.h"
#include "gsps/common/random.h"
#include "gsps/common/stopwatch.h"
#include "gsps/common/thread_pool.h"
#include "gsps/engine/ingest_queue.h"
#include "gsps/engine/parallel_query_engine.h"
#include "gsps/engine/pipelined_query_engine.h"
#include "gsps/gen/stream_generator.h"
#include "gsps/graph/graph.h"
#include "gsps/graph/graph_change.h"
#include "gsps/obs/obs.h"
#include "gsps/obs/window.h"

namespace gsps::bench {
namespace {

struct PipelineWorkload {
  std::vector<Graph> queries;
  std::vector<Graph> starts;
  // delta[i][p]: the edge ops stream i receives at phase p of a cycle.
  // Phases [0, phases) insert, [phases, 2 * phases) delete the same edges,
  // so a full cycle is the identity on the stream graph.
  std::vector<std::vector<std::vector<EdgeOp>>> delta;
  int phases = 0;
  int64_t ops_per_cycle = 0;
};

// Zipf-skewed start graphs (one synthetic basic-query derivation per
// stream, edge budget scaled by rank) plus the cyclic delta schedule.
PipelineWorkload MakeWorkload(int num_streams, int num_queries, int phases,
                              int heavy, double zipf, uint64_t seed) {
  PipelineWorkload w;
  w.phases = phases;
  Rng rng(seed);
  for (int i = 0; i < num_streams; ++i) {
    const double scale = 1.0 / std::pow(static_cast<double>(i + 1), zipf);
    SyntheticStreamParams params;
    params.num_pairs = 1;
    params.num_seeds = 4;
    params.avg_seed_edges = 4.0;
    params.avg_graph_edges = std::max(8.0, 1.5 * heavy * scale);
    params.evolution.num_timestamps = 1;  // Only the start graph is used.
    params.seed = seed * 1000 + static_cast<uint64_t>(i);
    StreamDataset dataset = MakeSyntheticStreams(params);
    if (static_cast<int>(w.queries.size()) < num_queries) {
      w.queries.push_back(dataset.queries[0]);
    }
    w.starts.push_back(dataset.streams[0].StartGraph());
  }

  // Per stream: a Zipf-sized set of fresh edges among existing vertices,
  // all landing in the stream's burst phase (i mod phases) and deleted at
  // the mirror phase. Bursty arrival is what makes the barrier's cost
  // visible: at every tick only ~streams/phases streams are active, so the
  // lockstep engine pays the busiest shard's burst while the other shards
  // idle, whereas the pipeline overlaps bursts across ticks (each shard's
  // total per-cycle work is what bounds it, not the per-tick maximum).
  for (int i = 0; i < num_streams; ++i) {
    const Graph& start = w.starts[static_cast<size_t>(i)];
    const double scale = 1.0 / std::pow(static_cast<double>(i + 1), zipf);
    const int budget = std::max(2, static_cast<int>(heavy * scale));
    Graph shadow = start;  // Tracks already-chosen edges.
    std::vector<std::pair<VertexId, VertexId>> extra;
    int attempts = 0;
    while (static_cast<int>(extra.size()) < budget &&
           attempts < budget * 50) {
      ++attempts;
      const auto u = static_cast<VertexId>(
          rng.UniformInt(0, shadow.NumVertices() - 1));
      const auto v = static_cast<VertexId>(
          rng.UniformInt(0, shadow.NumVertices() - 1));
      if (u == v || shadow.HasEdge(u, v)) continue;
      shadow.AddEdge(u, v, 0);
      extra.emplace_back(u, v);
    }
    std::vector<std::vector<EdgeOp>> slices(
        static_cast<size_t>(2 * phases));
    const int p = i % phases;
    for (size_t e = 0; e < extra.size(); ++e) {
      const auto [u, v] = extra[e];
      slices[static_cast<size_t>(p)].push_back(EdgeOp::Insert(
          u, v, 0, start.GetVertexLabel(u), start.GetVertexLabel(v)));
      // Mirror phase: the deletes of insert-phase p land at 2*phases-1-p,
      // so the last inserted slice is the first deleted.
      slices[static_cast<size_t>(2 * phases - 1 - p)].push_back(
          EdgeOp::Delete(u, v));
    }
    w.ops_per_cycle += 2 * static_cast<int64_t>(extra.size());
    w.delta.push_back(std::move(slices));
  }
  return w;
}

GraphChange SliceChange(const PipelineWorkload& w, int stream, int tick) {
  GraphChange change;
  change.ops = w.delta[static_cast<size_t>(stream)]
                      [static_cast<size_t>(tick % (2 * w.phases))];
  return change;
}

[[noreturn]] void Fail(const char* what) {
  std::fprintf(stderr, "micro_pipeline: %s\n", what);
  std::exit(1);
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int num_streams = flags.GetInt("streams", 24);
  const int num_queries = std::min(flags.GetInt("queries", 8), num_streams);
  const int threads = flags.GetInt("threads", 4);
  const int cycles = flags.GetInt("cycles", 6);
  const int phases = flags.GetInt("phases", 6);
  const int heavy = flags.GetInt("heavy", 96);
  const double zipf = flags.GetDouble("zipf", 1.0);
  const int depth = flags.GetInt("depth", 3);
  const uint64_t seed = flags.GetUint64("seed", 11);
  constexpr int kWarmupCycles = 2;
  if (cycles <= kWarmupCycles) {
    Fail("--cycles must be >= 3 (cycles 1-2 are warmup)");
  }

  const PipelineWorkload w =
      MakeWorkload(num_streams, num_queries, phases, heavy, zipf, seed);
  const int cycle_ticks = 2 * phases;
  const int timed_cycles = cycles - kWarmupCycles;
  const int64_t timed_ops = w.ops_per_cycle * timed_cycles;

  obs::MetricSink root_sink;
  std::optional<obs::ScopedObsContext> obs_scope;
  if constexpr (obs::kEnabled) obs_scope.emplace(&root_sink, nullptr);

  std::printf("micro_pipeline: %d streams x %d queries, zipf=%.2f "
              "(heavy=%d ops/cycle total=%lld), %d cycles x %d ticks, "
              "%d threads (%d hardware)\n",
              num_streams, num_queries, zipf, heavy,
              static_cast<long long>(w.ops_per_cycle), cycles, cycle_ticks,
              threads, ThreadPool::HardwareThreads());

  // --- Barrier engine: ApplyChanges lockstep per tick, join per cycle. ---
  ParallelEngineOptions barrier_options;
  barrier_options.engine.nnt_depth = depth;
  barrier_options.num_threads = threads;
  barrier_options.assignment = ShardAssignment::kLpt;
  ParallelQueryEngine barrier(barrier_options);
  for (const Graph& q : w.queries) barrier.AddQuery(q);
  for (const Graph& g : w.starts) barrier.AddStream(g);
  barrier.Start();

  std::vector<GraphChange> batches(static_cast<size_t>(num_streams));
  std::vector<std::pair<int, int>> barrier_pairs;
  double barrier_seconds = 0;
  {
    Stopwatch watch;
    for (int cycle = 0; cycle < cycles; ++cycle) {
      if (cycle == kWarmupCycles) watch.Restart();  // Warmup cycles untimed.
      for (int p = 0; p < cycle_ticks; ++p) {
        for (int i = 0; i < num_streams; ++i) {
          batches[static_cast<size_t>(i)] = SliceChange(w, i, p);
        }
        barrier.ApplyChanges(batches);
      }
      barrier.AllCandidatePairs(&barrier_pairs);
      if (cycle == cycles - 1) barrier_seconds = watch.ElapsedMicros() / 1e6;
    }
  }
  const double barrier_rate =
      barrier_seconds > 0 ? static_cast<double>(timed_ops) / barrier_seconds
                          : 0.0;

  // --- Pipelined engine: async ingest, one epoch close per cycle. ---
  PipelinedEngineOptions pipeline_options;
  pipeline_options.engine.nnt_depth = depth;
  pipeline_options.num_threads = threads;
  pipeline_options.assignment = ShardAssignment::kLpt;
  // This binary links gsps_alloc_hook, so the worker threads' counters are
  // live; the engine itself never references the hook symbols.
  pipeline_options.alloc_probe = +[]() -> int64_t {
    return ThreadAllocCounts().allocs;
  };
  // Epoch 0 plus one epoch per warmup cycle; the steady-state clock starts
  // with the first timed cycle.
  pipeline_options.alloc_warmup_epochs = kWarmupCycles + 1;
  PipelinedQueryEngine pipeline(pipeline_options);
  for (const Graph& q : w.queries) pipeline.AddQuery(q);
  for (const Graph& g : w.starts) pipeline.AddStream(g);
  pipeline.Start();

  std::vector<std::pair<int, int>> pipeline_pairs;
  double pipeline_seconds = 0;
  {
    Stopwatch watch;
    int32_t tick = 0;
    for (int cycle = 0; cycle < cycles; ++cycle) {
      if (cycle == kWarmupCycles) watch.Restart();
      for (int p = 0; p < cycle_ticks; ++p) {
        ++tick;
        for (int i = 0; i < num_streams; ++i) {
          IngestEvent event;
          event.stream = i;
          event.timestamp = tick;
          event.change = SliceChange(w, i, p);
          if (!pipeline.Ingest(std::move(event))) {
            Fail("ingest rejected before shutdown");
          }
        }
      }
      pipeline.AdvanceEpoch(tick);
      if (cycle == cycles - 1) pipeline_seconds = watch.ElapsedMicros() / 1e6;
    }
    pipeline.AllCandidatePairs(&pipeline_pairs);
  }
  const double pipeline_rate =
      pipeline_seconds > 0 ? static_cast<double>(timed_ops) / pipeline_seconds
                           : 0.0;
  const double speedup =
      barrier_rate > 0 ? pipeline_rate / barrier_rate : 0.0;

  // The epoch snapshot at the final cycle boundary must be byte-identical
  // to the barrier engine's state (both graphs are back at their start
  // state, but the candidate sets went through the same history).
  if (pipeline_pairs != barrier_pairs) Fail("engines disagree on candidates");

  pipeline.Shutdown();
  obs::HistogramData lag;
  obs::HistogramData e2e;
  int64_t steady_allocs = 0;
  int64_t coalesced = 0;
  int64_t applied_events = 0;
  int64_t order_violations = 0;
  int64_t lost = 0;
  for (int s = 0; s < pipeline.num_shards(); ++s) {
    const PipelinedQueryEngine::LaneReport report = pipeline.ReportLane(s);
    lag.MergeFrom(report.watermark_lag_micros);
    e2e.MergeFrom(report.e2e_micros);
    steady_allocs += report.steady_allocs;
    coalesced += report.coalesced_events;
    applied_events += report.applied_events;
    order_violations += report.order_violations;
    lost += report.lane.accepted - report.lane.delivered;
  }
  const int64_t expected_events =
      static_cast<int64_t>(num_streams) * cycles * cycle_ticks;
  if (lost != 0 || applied_events != expected_events) Fail("lost events");
  if (order_violations != 0) Fail("reordered events");

  const double lag_p99 = obs::HistogramQuantile(lag, 0.99);
  const double e2e_p99 = obs::HistogramQuantile(e2e, 0.99);

  PrintHeader("micro_pipeline (threads=" + std::to_string(threads) +
              " shards=" + std::to_string(pipeline.num_shards()) + ")");
  const std::vector<std::string> columns = {"value"};
  PrintRow("barrier_events_per_sec", {barrier_rate}, columns);
  PrintRow("pipelined_events_per_sec", {pipeline_rate}, columns);
  PrintRow("speedup_pipelined", {speedup}, columns);
  PrintRow("watermark_lag_p99_micros", {lag_p99}, columns);
  PrintRow("ingest_e2e_p99_micros", {e2e_p99}, columns);
  PrintRow("coalesced_events", {static_cast<double>(coalesced)}, columns);
  PrintRow("steady_allocs", {static_cast<double>(steady_allocs)}, columns);

  EmitBenchJson(
      "micro_pipeline", "pipelined_vs_barrier",
      {{"streams", static_cast<double>(num_streams)},
       {"queries", static_cast<double>(num_queries)},
       {"num_threads", static_cast<double>(threads)},
       {"hardware_threads",
        static_cast<double>(ThreadPool::HardwareThreads())},
       {"num_shards", static_cast<double>(pipeline.num_shards())},
       {"zipf", zipf},
       {"timed_ops", static_cast<double>(timed_ops)},
       {"barrier_events_per_sec", barrier_rate},
       {"pipelined_events_per_sec", pipeline_rate},
       {"speedup_pipelined", speedup},
       {"watermark_lag_p99_micros", lag_p99},
       {"ingest_e2e_p99_micros", e2e_p99},
       {"coalesced_events", static_cast<double>(coalesced)},
       {"applied_events", static_cast<double>(applied_events)},
       {"steady_allocs", static_cast<double>(steady_allocs)}});

  std::printf("\nShape check: speedup_pipelined exceeds 1.3x under skew "
              "(the barrier engine\npays max-shard latency twice per tick; "
              "the pipeline pays it once per cycle)\nand steady_allocs is 0 "
              "— the worker loops never touch the heap after the\nwarmup "
              "cycle.\n");
  return 0;
}

}  // namespace
}  // namespace gsps::bench

int main(int argc, char** argv) { return gsps::bench::Main(argc, argv); }
