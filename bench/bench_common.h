// Shared infrastructure for the experiment harnesses: a tiny flag parser,
// table printing, and the three method runners (NPV engine, GraphGrep,
// gIndex) that every stream experiment reuses.

#ifndef GSPS_BENCH_BENCH_COMMON_H_
#define GSPS_BENCH_BENCH_COMMON_H_

#include <map>
#include <string>
#include <vector>

#include "gsps/baselines/gindex/gspan_miner.h"
#include "gsps/engine/filter_stats.h"
#include "gsps/gen/stream_generator.h"
#include "gsps/graph/graph.h"
#include "gsps/graph/graph_stream.h"
#include "gsps/join/join_strategy.h"

namespace gsps::bench {

// --- Flags -------------------------------------------------------------

// Parses "--name=value" and "--flag" arguments.
class Flags {
 public:
  Flags(int argc, char** argv);

  int GetInt(const std::string& name, int default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;
  uint64_t GetUint64(const std::string& name, uint64_t default_value) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

// --- Workloads -----------------------------------------------------------

// A stream experiment workload, truncated to `horizon` timestamps.
struct StreamWorkload {
  std::vector<Graph> queries;
  std::vector<GraphStream> streams;
  int horizon = 0;  // Number of timestamps to run (including t = 0).
};

// Truncates/subsets a StreamDataset into a workload.
StreamWorkload MakeWorkload(StreamDataset dataset, int num_queries,
                            int num_streams, int horizon);

// The paper's three synthetic/real stream settings (§V.B), at bench scale.
// `extra_pair_fraction` scales the candidate vertex-pair set of the
// evolution (see stream_generator.h).
StreamWorkload SyntheticStreamWorkload(int num_pairs, double p1, double p2,
                                       int horizon, uint64_t seed,
                                       double extra_pair_fraction = 4.0);
StreamWorkload RealityStreamWorkload(int num_streams, int num_queries,
                                     int horizon, uint64_t seed);

// --- Method runners --------------------------------------------------------

struct RunOptions {
  // Compute exact ground truth (VF2 over all pairs) every N timestamps;
  // 0 disables. Ground truth feeds precision columns only.
  int ground_truth_every = 0;
  // Worker threads for the NPV engine; 1 runs the sequential
  // ContinuousQueryEngine, >1 the sharded ParallelQueryEngine (identical
  // output, update+join barriers run shard-concurrently).
  int num_threads = 1;
};

// Runs the NPV engine (this paper's method) over the workload.
StatsAccumulator RunNpvEngine(const StreamWorkload& workload, JoinKind kind,
                              int depth, const RunOptions& options = {});

// Runs the GraphGrep baseline: per timestamp, re-fingerprint each stream
// graph and filter all queries.
StatsAccumulator RunGraphGrepBaseline(const StreamWorkload& workload,
                                      int max_path_length,
                                      const RunOptions& options = {});

// Runs the gIndex baseline: per timestamp, re-mine features over the
// current stream snapshots (the paper's protocol) and filter all queries.
StatsAccumulator RunGindexBaseline(const StreamWorkload& workload,
                                   const GspanOptions& mining,
                                   const RunOptions& options = {});

// --- Static-database helpers (Figs. 12-13) -----------------------------

// Fraction of (query, database graph) pairs the NPV dominance filter keeps,
// at the given NNT depth.
double NpvStaticCandidateRatio(const std::vector<Graph>& database,
                               const std::vector<Graph>& queries, int depth);

// --- Output ------------------------------------------------------------

// Prints "name  value" aligned rows.
void PrintHeader(const std::string& title);
void PrintRow(const std::string& label, const std::vector<double>& values,
              const std::vector<std::string>& columns);

// Emits one machine-readable JSON line for a finished run:
//   {"bench":"<bench>","setting":"<setting>","<k>":<v>,...}
// Always written to stdout (prefixed "BENCH_JSON "); additionally appended
// verbatim to the file named by the GSPS_BENCH_JSON environment variable
// when set, which is how CI archives the perf trajectory of every figure
// harness as a BENCH_<name>.json workflow artifact.
void EmitBenchJson(const std::string& bench, const std::string& setting,
                   const std::map<std::string, double>& fields);

// Flattens a StatsAccumulator into EmitBenchJson fields (avg costs, ratio,
// precision, sample count).
std::map<std::string, double> StatsJsonFields(const StatsAccumulator& stats);

}  // namespace gsps::bench

#endif  // GSPS_BENCH_BENCH_COMMON_H_
