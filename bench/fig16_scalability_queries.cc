// Figure 16 (paper §V.B.2): scalability in the number of queries — average
// processing cost per timestamp for the three join strategies (NL, DSC,
// Skyline) as the query count grows, with the stream count fixed at its
// maximum, on all three stream datasets.
//
// Paper scale: fig16_scalability_queries --pairs=70 --real_streams=25 ...
//                  --timestamps=1000

#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace gsps::bench {
namespace {

void RunSetting(const char* name, const StreamWorkload& full,
                const std::vector<int>& query_counts) {
  std::printf("\n[%s] %zu streams fixed, %d timestamps\n", name,
              full.streams.size(), full.horizon);
  // The NNT/index maintenance (update) is shared work; the join column is
  // where the strategies differ.
  std::printf("  %-9s %28s %28s %28s\n", "queries",
              "NL upd/join(ms)", "DSC upd/join(ms)", "Skyline upd/join(ms)");
  for (const int count : query_counts) {
    if (count > static_cast<int>(full.queries.size())) continue;
    StreamWorkload subset = full;
    subset.queries.resize(static_cast<size_t>(count));
    const StatsAccumulator nl =
        RunNpvEngine(subset, JoinKind::kNestedLoop, 3);
    const StatsAccumulator dsc =
        RunNpvEngine(subset, JoinKind::kDominatedSetCover, 3);
    const StatsAccumulator skyline =
        RunNpvEngine(subset, JoinKind::kSkylineEarlyStop, 3);
    std::printf("  %-9d %17.2f /%9.3f %17.2f /%9.3f %17.2f /%9.3f\n", count,
                nl.AvgUpdateMillis(), nl.AvgJoinMillis(),
                dsc.AvgUpdateMillis(), dsc.AvgJoinMillis(),
                skyline.AvgUpdateMillis(), skyline.AvgJoinMillis());
  }
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int pairs = flags.GetInt("pairs", 20);
  const int real_streams = flags.GetInt("real_streams", 10);
  const int timestamps = flags.GetInt("timestamps", 30);
  const uint64_t seed = flags.GetUint64("seed", 11);

  std::printf("Figure 16: cost per timestamp vs number of queries\n");

  std::vector<int> real_counts;
  for (int c = real_streams / 5; c <= real_streams; c += real_streams / 5) {
    real_counts.push_back(std::max(1, c));
  }
  std::vector<int> synth_counts;
  for (int c = pairs / 5; c <= pairs; c += pairs / 5) {
    synth_counts.push_back(std::max(1, c));
  }

  RunSetting("reality-like",
             RealityStreamWorkload(real_streams, real_streams, timestamps,
                                   seed),
             real_counts);
  RunSetting("synthetic sparse",
             SyntheticStreamWorkload(pairs, 0.1, 0.3, timestamps, seed + 1,
                                     /*extra_pair_fraction=*/12.0),
             synth_counts);
  RunSetting("synthetic dense",
             SyntheticStreamWorkload(pairs, 0.2, 0.15, timestamps, seed + 2,
                                     /*extra_pair_fraction=*/6.2),
             synth_counts);

  std::printf("\nPaper shape check: total cost grows only mildly with the "
              "query count (shared NNT\nmaintenance dominates). The join "
              "column isolates the strategies: NL grows linearly\nwith the "
              "query count, Skyline grows sublinearly thanks to early stop, "
              "and DSC's\ncandidate read is near-free because its work moved "
              "into the incremental counters\n(visible as a slightly higher "
              "update column).\n");
  return 0;
}

}  // namespace
}  // namespace gsps::bench

int main(int argc, char** argv) { return gsps::bench::Main(argc, argv); }
