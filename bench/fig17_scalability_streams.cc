// Figure 17 (paper §V.B.2): scalability in the number of streams — average
// processing cost per timestamp for NL, DSC, and Skyline as the stream
// count grows, with the query count fixed at its maximum, on all three
// stream datasets. The paper observes linear growth for the proposed
// strategies.
//
// Paper scale: fig17_scalability_streams --pairs=70 --real_streams=25 ...
//                  --timestamps=1000
// --threads=N runs the NPV engine on the sharded parallel engine.

#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace gsps::bench {
namespace {

void RunSetting(const char* name, const StreamWorkload& full,
                const std::vector<int>& stream_counts, int num_threads) {
  std::printf("\n[%s] %zu queries fixed, %d timestamps, %d thread(s)\n",
              name, full.queries.size(), full.horizon, num_threads);
  // The NNT/index maintenance (update) is shared work; the join column is
  // where the strategies differ.
  std::printf("  %-9s %28s %28s %28s\n", "streams",
              "NL upd/join(ms)", "DSC upd/join(ms)", "Skyline upd/join(ms)");
  RunOptions options;
  options.num_threads = num_threads;
  for (const int count : stream_counts) {
    if (count > static_cast<int>(full.streams.size())) continue;
    StreamWorkload subset;
    subset.queries = full.queries;
    for (int i = 0; i < count; ++i) {
      subset.streams.push_back(full.streams[static_cast<size_t>(i)]);
    }
    subset.horizon = full.horizon;
    const StatsAccumulator nl =
        RunNpvEngine(subset, JoinKind::kNestedLoop, 3, options);
    const StatsAccumulator dsc =
        RunNpvEngine(subset, JoinKind::kDominatedSetCover, 3, options);
    const StatsAccumulator skyline =
        RunNpvEngine(subset, JoinKind::kSkylineEarlyStop, 3, options);
    std::printf("  %-9d %17.2f /%9.3f %17.2f /%9.3f %17.2f /%9.3f\n", count,
                nl.AvgUpdateMillis(), nl.AvgJoinMillis(),
                dsc.AvgUpdateMillis(), dsc.AvgJoinMillis(),
                skyline.AvgUpdateMillis(), skyline.AvgJoinMillis());
    // Tail behavior: the mean can hide rare expensive timestamps (bulk
    // deletions, skew); the p95/max columns make the tail visible.
    std::printf("  %-9s %17.2f /%9.2f %17.2f /%9.2f %17.2f /%9.2f\n",
                "  p95/max", nl.CostPercentileMillis(95.0), nl.MaxCostMillis(),
                dsc.CostPercentileMillis(95.0), dsc.MaxCostMillis(),
                skyline.CostPercentileMillis(95.0), skyline.MaxCostMillis());
    for (const auto& [label, stats] :
         {std::pair<const char*, const StatsAccumulator*>{"nl", &nl},
          {"dsc", &dsc},
          {"skyline", &skyline}}) {
      auto fields = StatsJsonFields(*stats);
      fields["streams"] = count;
      fields["num_threads"] = num_threads;
      EmitBenchJson(std::string("fig17_") + label, name, fields);
    }
  }
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int pairs = flags.GetInt("pairs", 20);
  const int real_streams = flags.GetInt("real_streams", 10);
  const int timestamps = flags.GetInt("timestamps", 30);
  const uint64_t seed = flags.GetUint64("seed", 11);
  const int num_threads = flags.GetInt("threads", 1);

  std::printf("Figure 17: cost per timestamp vs number of streams\n");

  // A zero step would loop forever when the count is below 5.
  const int real_step = std::max(1, real_streams / 5);
  std::vector<int> real_counts;
  for (int c = real_step; c <= real_streams; c += real_step) {
    real_counts.push_back(c);
  }
  const int synth_step = std::max(1, pairs / 5);
  std::vector<int> synth_counts;
  for (int c = synth_step; c <= pairs; c += synth_step) {
    synth_counts.push_back(c);
  }

  RunSetting("reality-like",
             RealityStreamWorkload(real_streams, real_streams, timestamps,
                                   seed),
             real_counts, num_threads);
  RunSetting("synthetic sparse",
             SyntheticStreamWorkload(pairs, 0.1, 0.3, timestamps, seed + 1,
                                     /*extra_pair_fraction=*/12.0),
             synth_counts, num_threads);
  RunSetting("synthetic dense",
             SyntheticStreamWorkload(pairs, 0.2, 0.15, timestamps, seed + 2,
                                     /*extra_pair_fraction=*/6.2),
             synth_counts, num_threads);

  std::printf("\nPaper shape check: per-timestamp cost grows linearly with "
              "the number of streams for\nall strategies (both update and "
              "join columns). NL pays the largest join cost; DSC\nand "
              "Skyline split theirs between incremental maintenance and "
              "evaluation.\n");
  return 0;
}

}  // namespace
}  // namespace gsps::bench

int main(int argc, char** argv) { return gsps::bench::Main(argc, argv); }
