// Ablation: the filter hierarchy the paper walks through in §III-§IV.
//
//   exact subgraph isomorphism (the answer)
//     ⊇ NNT subtree embedding   (the feature structure, §III)
//     ⊇ branch compatibility    (Lemma 4.1's relaxation)
//     ⊇ NPV dominance           (Lemma 4.2, what the system ships)
//
// For each tier this harness reports the candidate ratio and the average
// per-pair evaluation time on a static workload — quantifying exactly how
// much pruning each relaxation gives up for how much speed, which is the
// design argument behind projecting NNTs into vectors.
//
//   ablation_filters [--graphs=N] [--queries=N] [--query_edges=m] [--depth=l]

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "gsps/common/random.h"
#include "gsps/common/stopwatch.h"
#include "gsps/gen/aids_like.h"
#include "gsps/gen/query_extractor.h"
#include "gsps/gen/synthetic_generator.h"
#include "gsps/iso/branch_compatibility.h"
#include "gsps/iso/subgraph_isomorphism.h"
#include "gsps/join/dominance.h"
#include "gsps/join/join_strategy.h"
#include "gsps/nnt/nnt_set.h"
#include "gsps/nnt/subtree_filter.h"

namespace gsps::bench {
namespace {

int RunWorkload(const char* name, const std::vector<Graph>& database,
                const std::vector<Graph>& queries, int depth) {
  std::printf("\n[%s] %zu graphs, %zu queries, depth %d\n", name,
              database.size(), queries.size(), depth);

  // Prebuild all NNTs once (shared by the NNT-based tiers).
  DimensionTable dims;
  std::vector<std::unique_ptr<NntSet>> db_nnts;
  std::vector<std::unique_ptr<NntSet>> query_nnts;
  for (const Graph& g : database) {
    auto nnts = std::make_unique<NntSet>(depth, &dims);
    nnts->Build(g);
    db_nnts.push_back(std::move(nnts));
  }
  for (const Graph& q : queries) {
    auto nnts = std::make_unique<NntSet>(depth, &dims);
    nnts->Build(q);
    query_nnts.push_back(std::move(nnts));
  }

  const int64_t total_pairs =
      static_cast<int64_t>(database.size()) *
      static_cast<int64_t>(queries.size());

  auto report = [total_pairs](const char* name, int64_t kept, double ms) {
    std::printf("  %-16s candidate ratio=%7.4f   avg us/pair=%9.3f\n", name,
                static_cast<double>(kept) / static_cast<double>(total_pairs),
                1000.0 * ms / static_cast<double>(total_pairs));
  };

  Stopwatch watch;

  // Tier 4: NPV dominance (what the streaming system evaluates).
  watch.Restart();
  int64_t npv_kept = 0;
  {
    auto strategy = MakeJoinStrategy(JoinKind::kNestedLoop);
    std::vector<QueryVectors> vectors;
    for (const auto& nnts : query_nnts) {
      vectors.push_back(BuildQueryVectors(*nnts));
    }
    strategy->SetQueries(std::move(vectors));
    strategy->SetNumStreams(static_cast<int>(database.size()));
    for (size_t i = 0; i < database.size(); ++i) {
      for (const VertexId root : db_nnts[i]->Roots()) {
        strategy->UpdateStreamVertex(static_cast<int>(i), root,
                                     db_nnts[i]->NpvOf(root));
      }
    }
    for (size_t i = 0; i < database.size(); ++i) {
      npv_kept += static_cast<int64_t>(
          strategy->CandidatesForStream(static_cast<int>(i)).size());
    }
  }
  report("NPV dominance", npv_kept, watch.ElapsedMillis());

  // Tier 3: branch compatibility (Lemma 4.1).
  watch.Restart();
  int64_t branch_kept = 0;
  for (const Graph& query : queries) {
    for (const Graph& data : database) {
      if (BranchCompatibleFilter(query, data, depth)) ++branch_kept;
    }
  }
  report("branch compat", branch_kept, watch.ElapsedMillis());

  // Tier 2: NNT subtree embedding.
  watch.Restart();
  int64_t subtree_kept = 0;
  for (const auto& q : query_nnts) {
    for (const auto& d : db_nnts) {
      if (NntSubtreeFilter(*q, *d)) ++subtree_kept;
    }
  }
  report("subtree embed", subtree_kept, watch.ElapsedMillis());

  // Tier 1: exact isomorphism (ground truth).
  watch.Restart();
  int64_t exact_kept = 0;
  for (const Graph& query : queries) {
    for (const Graph& data : database) {
      if (IsSubgraphIsomorphic(query, data)) ++exact_kept;
    }
  }
  report("exact iso", exact_kept, watch.ElapsedMillis());

  if (!(exact_kept <= subtree_kept && subtree_kept <= branch_kept &&
        branch_kept <= npv_kept)) {
    std::printf("\nERROR: filter chain monotonicity violated!\n");
    return 1;
  }
  std::printf("  chain check (exact <= subtree <= branch <= NPV): OK\n");
  return 0;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int num_graphs = flags.GetInt("graphs", 120);
  const int num_queries = flags.GetInt("queries", 30);
  const int query_edges = flags.GetInt("query_edges", 6);
  const int depth = flags.GetInt("depth", 3);
  const uint64_t seed = flags.GetUint64("seed", 3);

  std::printf("Filter-chain ablation (candidate ratio + evaluation cost per "
              "tier)\n");

  // Easy-label workload: chemistry-like graphs, where even exact
  // isomorphism fails fast on the 62-label alphabet.
  AidsLikeParams aids;
  aids.num_graphs = num_graphs;
  aids.seed = seed;
  const std::vector<Graph> aids_db = MakeAidsLikeDataset(aids);
  Rng rng(seed + 1);
  const std::vector<Graph> aids_queries =
      ExtractQuerySet(aids_db, query_edges, num_queries, rng);
  int status =
      RunWorkload("AIDS-like, 62 labels", aids_db, aids_queries, depth);
  if (status != 0) return status;

  // Hard-label workload: two labels only — the regime where exact
  // isomorphism backtracks heavily and cheap filters earn their keep.
  SyntheticParams synth;
  synth.num_graphs = num_graphs;
  synth.num_vertex_labels = 2;
  synth.avg_graph_edges = 35;
  synth.seed = seed + 2;
  const std::vector<Graph> synth_db = GenerateSyntheticDataset(synth);
  const std::vector<Graph> synth_queries =
      ExtractQuerySet(synth_db, query_edges + 4, num_queries, rng);
  status = RunWorkload("synthetic, 2 labels", synth_db, synth_queries, depth);
  if (status != 0) return status;

  std::printf("\nThe paper's trade: each relaxation keeps more candidates "
              "but evaluates faster on\nhard instances and, for NPV, becomes "
              "incrementally maintainable on streams.\n");
  return 0;
}

}  // namespace
}  // namespace gsps::bench

int main(int argc, char** argv) { return gsps::bench::Main(argc, argv); }
