// Figure 12 (paper §V.A.1): candidate-set size vs maximum NNT depth on the
// two static datasets (AIDS-like and synthetic). The paper's conclusion:
// depth beyond 3 buys almost nothing, so depth 3 is the default everywhere.
//
// Paper scale: 10,000 graphs, 1,000 queries per set. Bench defaults are
// smaller; reproduce the paper's scale with:
//   fig12_depth --graphs=10000 --queries=1000

#include <cstdio>

#include "bench_common.h"
#include "gsps/common/random.h"
#include "gsps/gen/aids_like.h"
#include "gsps/gen/query_extractor.h"
#include "gsps/gen/synthetic_generator.h"

namespace gsps::bench {
namespace {

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int num_graphs = flags.GetInt("graphs", 400);
  const int num_queries = flags.GetInt("queries", 60);
  const int max_depth = flags.GetInt("max_depth", 5);
  const int query_edges = flags.GetInt("query_edges", 8);
  const uint64_t seed = flags.GetUint64("seed", 3);

  AidsLikeParams aids_params;
  aids_params.num_graphs = num_graphs;
  aids_params.seed = seed;
  const std::vector<Graph> aids = MakeAidsLikeDataset(aids_params);

  SyntheticParams synth_params;
  synth_params.num_graphs = num_graphs;
  synth_params.seed = seed + 1;
  const std::vector<Graph> synthetic = GenerateSyntheticDataset(synth_params);

  Rng rng(seed + 2);
  const std::vector<Graph> aids_queries =
      ExtractQuerySet(aids, query_edges, num_queries, rng);
  const std::vector<Graph> synth_queries =
      ExtractQuerySet(synthetic, query_edges, num_queries, rng);

  std::printf("Figure 12: candidate ratio vs NNT depth "
              "(Q%d, %d graphs, %d queries)\n",
              query_edges, num_graphs, num_queries);
  std::printf("%-8s %18s %18s\n", "depth", "aids-like", "synthetic");
  double previous_aids = 1.0;
  double previous_synth = 1.0;
  for (int depth = 1; depth <= max_depth; ++depth) {
    const double aids_ratio =
        NpvStaticCandidateRatio(aids, aids_queries, depth);
    const double synth_ratio =
        NpvStaticCandidateRatio(synthetic, synth_queries, depth);
    std::printf("%-8d %18.4f %18.4f\n", depth, aids_ratio, synth_ratio);
    previous_aids = aids_ratio;
    previous_synth = synth_ratio;
  }
  (void)previous_aids;
  (void)previous_synth;
  std::printf("\nPaper shape check: the ratio drops sharply up to depth 3 "
              "and is nearly flat beyond it.\n");
  return 0;
}

}  // namespace
}  // namespace gsps::bench

int main(int argc, char** argv) { return gsps::bench::Main(argc, argv); }
