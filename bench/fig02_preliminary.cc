// Figure 2 (paper §III): preliminary comparison of gIndex, GraphGrep, and
// the NPV method on one synthetic stream workload — average per-timestamp
// query processing time (ms) and candidate ratio.
//
// Paper scale: 70 queries x 70 streams, 1000 timestamps. Bench defaults are
// smaller so the whole suite runs in minutes; use the flags to reproduce
// the paper's scale:
//   fig02_preliminary --pairs=70 --timestamps=1000 --gindex_timestamps=1000

#include <cstdio>

#include "bench_common.h"
#include "gsps/baselines/gindex/gindex_filter.h"

namespace gsps::bench {
namespace {

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int pairs = flags.GetInt("pairs", 20);
  const int timestamps = flags.GetInt("timestamps", 60);
  const int gindex_timestamps = flags.GetInt("gindex_timestamps", 2);
  const uint64_t seed = flags.GetUint64("seed", 7);

  std::printf("Figure 2: preliminary test (synthetic streams, %d queries x "
              "%d streams)\n", pairs, pairs);
  std::printf("%-10s %22s %18s %12s\n", "method", "avg time/step (ms)",
              "candidate ratio", "timestamps");

  StreamWorkload workload =
      SyntheticStreamWorkload(pairs, 0.2, 0.15, timestamps, seed,
                              /*extra_pair_fraction=*/6.2);

  {
    const StatsAccumulator stats =
        RunNpvEngine(workload, JoinKind::kDominatedSetCover, /*depth=*/3);
    std::printf("%-10s %22.3f %18.4f %12d\n", "NPV", stats.AvgCostMillis(),
                stats.AvgCandidateRatio(), timestamps);
  }
  {
    const StatsAccumulator stats = RunGraphGrepBaseline(workload, 4);
    std::printf("%-10s %22.3f %18.4f %12d\n", "Ggrep", stats.AvgCostMillis(),
                stats.AvgCandidateRatio(), timestamps);
  }
  {
    StreamWorkload truncated = workload;
    truncated.horizon = gindex_timestamps;
    const StatsAccumulator stats =
        RunGindexBaseline(truncated, GindexFilter::Gindex1Options());
    std::printf("%-10s %22.3f %18.4f %12d\n", "gIndex", stats.AvgCostMillis(),
                stats.AvgCandidateRatio(), gindex_timestamps);
  }
  std::printf("\nPaper shape check: gIndex has the smallest candidate ratio "
              "but by far the largest\nper-timestamp cost; GraphGrep is fast "
              "but reports roughly half of all pairs; NPV is\nfast with "
              "near-gIndex effectiveness.\n");
  return 0;
}

}  // namespace
}  // namespace gsps::bench

int main(int argc, char** argv) { return gsps::bench::Main(argc, argv); }
