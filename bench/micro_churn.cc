// Query-churn microbenchmark: the cost of the slotted query lifecycle in
// the join strategies (DESIGN.md "Query lifecycle"). One churn op is
// RemoveQuery + re-AddQuery of the identical query followed by a candidate
// refresh — the monitoring-deployment pattern where analysts retire and
// re-register patterns against a live stream without restarting the engine.
//
// Per strategy the bench reports churn ops/s against the pre-incremental
// baseline (rebuild the whole strategy from scratch per lifecycle change)
// and the steady-state allocation count over the timed loop. The churn
// contract this regresses: after a warm cycle, remove + bit-identical
// re-add reuses the freed slab slot in place, so the timed loop must not
// touch the heap (strict zero in Release builds without sanitizers — the
// binary links gsps_alloc_hook) and must beat the rebuild path by >=50x on
// the default 1k-query slab. CI's bench-trajectory job runs this as a smoke
// with those two gates.
//
// Flags:
//   --queries=N          number of queries in the slab (default 1000)
//   --qvecs=N            query vectors per query (default 4)
//   --stream_vertices=N  vertices in the monitored stream (default 40)
//   --dims=N             NPV dimension universe (default 64)
//   --nnz=N              non-zero entries per vector (default 3)
//   --churn_ops=N        timed remove+re-add+refresh ops (default 4000)
//   --rebuilds=N         from-scratch rebuild baseline reps (default 10)
//   --seed=N             workload seed
//
// Output: human-readable rows plus one EmitBenchJson line per strategy
// (bench "micro_churn"), archived by the CI bench-JSON job.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "gsps/common/alloc_hook.h"
#include "gsps/common/random.h"
#include "gsps/common/stopwatch.h"
#include "gsps/join/join_strategy.h"
#include "gsps/nnt/npv.h"
#include "gsps/obs/obs.h"
#include "gsps/obs/window.h"

namespace gsps::bench {
namespace {

// Prevents the optimizer from deleting measured work.
inline void KeepAlive(int64_t value) { asm volatile("" : : "r"(value)); }

// Random sparse NPV over `dims` dimensions with `nnz` non-zero entries.
Npv RandomNpv(Rng& rng, int dims, int nnz, int max_count) {
  std::unordered_map<DimId, int32_t> counts;
  for (int i = 0; i < nnz; ++i) {
    counts[static_cast<DimId>(rng.UniformInt(0, dims - 1))] =
        static_cast<int32_t>(rng.UniformInt(1, max_count));
  }
  return Npv::FromMap(counts);
}

struct Workload {
  std::vector<QueryVectors> queries;
  std::vector<std::pair<VertexId, Npv>> stream;
};

Workload MakeChurnWorkload(int num_queries, int vectors_per_query,
                           int stream_vertices, int dims, int nnz,
                           uint64_t seed) {
  Rng rng(seed);
  Workload w;
  for (int j = 0; j < num_queries; ++j) {
    QueryVectors q;
    for (int v = 0; v < vectors_per_query; ++v) {
      q.vectors.push_back(RandomNpv(rng, dims, nnz, 4));
    }
    w.queries.push_back(std::move(q));
  }
  for (int v = 0; v < stream_vertices; ++v) {
    w.stream.emplace_back(static_cast<VertexId>(v),
                          RandomNpv(rng, dims, nnz, 6));
  }
  return w;
}

std::unique_ptr<JoinStrategy> BuildStrategy(JoinKind kind, const Workload& w) {
  auto strategy = MakeJoinStrategy(kind);
  strategy->SetQueries(w.queries);
  strategy->SetNumStreams(1);
  for (const auto& [v, npv] : w.stream) {
    strategy->UpdateStreamVertex(0, v, npv);
  }
  return strategy;
}

void RunStrategy(JoinKind kind, const Workload& w, const Flags& flags) {
  const int churn_ops = flags.GetInt("churn_ops", 4000);
  const int rebuilds = flags.GetInt("rebuilds", 10);
  const int num_queries = static_cast<int>(w.queries.size());

  auto strategy = BuildStrategy(kind, w);

  // One churn op: retire query j, re-register the identical query, refresh
  // the stream's candidate set. The re-add must land back in the freed slot
  // (best-fit slab reuse) without growing the dim remap.
  std::vector<int> candidates;
  int64_t candidates_seen = 0;
  bool grew = false;
  auto churn = [&](int j) {
    strategy->RemoveQuery(j);
    const int slot = strategy->AddQuery(w.queries[static_cast<size_t>(j)],
                                        &grew);
    if (slot != j || grew) {
      std::fprintf(stderr,
                   "micro_churn: identical re-add broke slot reuse "
                   "(query %d -> slot %d, grew=%d)\n",
                   j, slot, grew ? 1 : 0);
      std::exit(1);
    }
    strategy->CandidatesForStream(0, &candidates);
    candidates_seen += static_cast<int64_t>(candidates.size());
  };

  // Warm cycle: every slot, free list, and scratch buffer reaches its
  // high-water mark, so the timed loop is a true steady state.
  for (int j = 0; j < num_queries; ++j) churn(j);

  obs::MetricSink sink;
  Stopwatch watch;
  double churn_seconds = 0;
  int64_t steady_allocs = 0;
  int64_t steady_frees = 0;
  {
    obs::ScopedObsContext context(&sink, nullptr);
    const AllocMeter meter;
    watch.Restart();
    for (int op = 0; op < churn_ops; ++op) churn(op % num_queries);
    churn_seconds = watch.ElapsedMicros() / 1e6;
    steady_allocs = meter.allocs();
    steady_frees = meter.frees();
  }
  KeepAlive(candidates_seen);
  strategy->CheckChurnInvariants();

  const double churn_ops_per_sec =
      static_cast<double>(churn_ops) / churn_seconds;
  const double churn_micros = churn_seconds / churn_ops * 1e6;
  // Per-stage tail latency over the timed loop's verdict refreshes (zeros
  // under GSPS_OBS_DISABLED).
  const obs::HistogramData& refresh_hist =
      sink.histogram(obs::Hist::kStageJoinRefreshMicros);
  const double refresh_p50 = obs::HistogramQuantile(refresh_hist, 0.5);
  const double refresh_p95 = obs::HistogramQuantile(refresh_hist, 0.95);

  // The pre-incremental cost model: every lifecycle change rebuilds the
  // strategy from all queries and replays the stream.
  watch.Restart();
  for (int r = 0; r < rebuilds; ++r) {
    auto fresh = BuildStrategy(kind, w);
    fresh->CandidatesForStream(0, &candidates);
    KeepAlive(static_cast<int64_t>(candidates.size()));
  }
  const double rebuild_seconds = watch.ElapsedMicros() / 1e6;
  const double rebuild_ops_per_sec =
      static_cast<double>(rebuilds) / rebuild_seconds;
  const double speedup =
      rebuild_ops_per_sec > 0 ? churn_ops_per_sec / rebuild_ops_per_sec : 0.0;

  const std::string name(JoinKindName(kind));
  PrintHeader("micro_churn " + name + " (queries=" +
              std::to_string(num_queries) + " qvecs=" +
              std::to_string(w.queries.empty()
                                 ? 0
                                 : w.queries[0].vectors.size()) +
              " stream_vertices=" + std::to_string(w.stream.size()) + ")");
  const std::vector<std::string> columns = {"value"};
  PrintRow("churn_ops_per_sec", {churn_ops_per_sec}, columns);
  PrintRow("churn_op_micros", {churn_micros}, columns);
  PrintRow("rebuild_ops_per_sec", {rebuild_ops_per_sec}, columns);
  PrintRow("churn_speedup", {speedup}, columns);
  PrintRow("stage_join_refresh_p50", {refresh_p50}, columns);
  PrintRow("stage_join_refresh_p95", {refresh_p95}, columns);
  PrintRow("steady_allocs", {static_cast<double>(steady_allocs)}, columns);
  PrintRow("steady_frees", {static_cast<double>(steady_frees)}, columns);

  EmitBenchJson(
      "micro_churn", name,
      {{"queries", static_cast<double>(num_queries)},
       {"stream_vertices", static_cast<double>(w.stream.size())},
       {"churn_ops", static_cast<double>(churn_ops)},
       {"churn_ops_per_sec", churn_ops_per_sec},
       {"churn_op_micros", churn_micros},
       {"rebuild_ops_per_sec", rebuild_ops_per_sec},
       {"churn_speedup", speedup},
       {"stage_join_refresh_p50", refresh_p50},
       {"stage_join_refresh_p95", refresh_p95},
       {"steady_allocs", static_cast<double>(steady_allocs)},
       {"steady_frees", static_cast<double>(steady_frees)}});
}

void Run(const Flags& flags) {
  const Workload w = MakeChurnWorkload(
      flags.GetInt("queries", 1000), flags.GetInt("qvecs", 4),
      flags.GetInt("stream_vertices", 40), flags.GetInt("dims", 64),
      flags.GetInt("nnz", 3), flags.GetUint64("seed", 11));
  for (const JoinKind kind :
       {JoinKind::kNestedLoop, JoinKind::kDominatedSetCover,
        JoinKind::kSkylineEarlyStop}) {
    RunStrategy(kind, w, flags);
  }
}

}  // namespace
}  // namespace gsps::bench

int main(int argc, char** argv) {
  gsps::bench::Flags flags(argc, argv);
  gsps::bench::Run(flags);
  return 0;
}
