// Micro/ablation benchmarks for the join strategies: candidate evaluation
// cost of NL vs DSC vs Skyline on sparse and dense NPV workloads, plus the
// incremental-update path. Complements Figs. 16-17 with kernel-level
// numbers isolated from NNT maintenance.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"
#include "gsps/common/random.h"
#include "gsps/join/join_strategy.h"

namespace gsps {
namespace {

// Random sparse NPV over `dims` dimensions with `nnz` non-zero entries.
Npv RandomNpv(Rng& rng, int dims, int nnz, int max_count) {
  std::unordered_map<DimId, int32_t> counts;
  for (int i = 0; i < nnz; ++i) {
    counts[static_cast<DimId>(rng.UniformInt(0, dims - 1))] =
        static_cast<int32_t>(rng.UniformInt(1, max_count));
  }
  return Npv::FromMap(counts);
}

struct Workload {
  std::vector<QueryVectors> queries;
  std::vector<std::pair<VertexId, Npv>> stream_vertices;
};

Workload MakeVectorWorkload(int num_queries, int vertices_per_query,
                            int stream_vertices, int dims, int nnz,
                            uint64_t seed) {
  Rng rng(seed);
  Workload w;
  for (int j = 0; j < num_queries; ++j) {
    QueryVectors q;
    for (int v = 0; v < vertices_per_query; ++v) {
      q.vectors.push_back(RandomNpv(rng, dims, nnz, 4));
    }
    w.queries.push_back(std::move(q));
  }
  for (int v = 0; v < stream_vertices; ++v) {
    w.stream_vertices.emplace_back(static_cast<VertexId>(v),
                                   RandomNpv(rng, dims, nnz, 6));
  }
  return w;
}

void RunJoinKernel(benchmark::State& state, JoinKind kind, int dims,
                   int nnz) {
  const Workload w = MakeVectorWorkload(/*num_queries=*/40,
                                        /*vertices_per_query=*/8,
                                        /*stream_vertices=*/60, dims, nnz,
                                        /*seed=*/9);
  auto strategy = MakeJoinStrategy(kind);
  strategy->SetQueries(w.queries);
  strategy->SetNumStreams(1);
  for (const auto& [v, npv] : w.stream_vertices) {
    strategy->UpdateStreamVertex(0, v, npv);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy->CandidatesForStream(0).size());
  }
}

void BM_JoinKernel_NL(benchmark::State& state) {
  RunJoinKernel(state, JoinKind::kNestedLoop,
                static_cast<int>(state.range(0)),
                static_cast<int>(state.range(1)));
}
void BM_JoinKernel_DSC(benchmark::State& state) {
  RunJoinKernel(state, JoinKind::kDominatedSetCover,
                static_cast<int>(state.range(0)),
                static_cast<int>(state.range(1)));
}
void BM_JoinKernel_Skyline(benchmark::State& state) {
  RunJoinKernel(state, JoinKind::kSkylineEarlyStop,
                static_cast<int>(state.range(0)),
                static_cast<int>(state.range(1)));
}
// dims x nnz: sparse high-dimensional vs dense low-dimensional regimes.
BENCHMARK(BM_JoinKernel_NL)
    ->ArgsProduct({{32, 256}, {2, 6}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_JoinKernel_DSC)
    ->ArgsProduct({{32, 256}, {2, 6}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_JoinKernel_Skyline)
    ->ArgsProduct({{32, 256}, {2, 6}})
    ->Unit(benchmark::kMicrosecond);

// Incremental update cost: move one stream vertex's vector and re-evaluate.
void RunUpdateKernel(benchmark::State& state, JoinKind kind) {
  const Workload w = MakeVectorWorkload(40, 8, 60, 64, 3, 10);
  auto strategy = MakeJoinStrategy(kind);
  strategy->SetQueries(w.queries);
  strategy->SetNumStreams(1);
  for (const auto& [v, npv] : w.stream_vertices) {
    strategy->UpdateStreamVertex(0, v, npv);
  }
  Rng rng(77);
  for (auto _ : state) {
    const VertexId victim = static_cast<VertexId>(
        rng.UniformInt(0, static_cast<int64_t>(w.stream_vertices.size()) - 1));
    strategy->UpdateStreamVertex(0, victim, RandomNpv(rng, 64, 3, 6));
    benchmark::DoNotOptimize(strategy->CandidatesForStream(0).size());
  }
}
void BM_UpdateKernel_NL(benchmark::State& state) {
  RunUpdateKernel(state, JoinKind::kNestedLoop);
}
void BM_UpdateKernel_DSC(benchmark::State& state) {
  RunUpdateKernel(state, JoinKind::kDominatedSetCover);
}
void BM_UpdateKernel_Skyline(benchmark::State& state) {
  RunUpdateKernel(state, JoinKind::kSkylineEarlyStop);
}
BENCHMARK(BM_UpdateKernel_NL)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_UpdateKernel_DSC)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_UpdateKernel_Skyline)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace gsps
