// Micro/ablation benchmark for the delta-driven join strategies: candidate
// refresh throughput of NL vs DSC vs Skyline under sparse per-timestamp
// deltas, with the dominance-test, signature-reject, and verdict-reuse
// counts behind each number. Complements Figs. 16-17 with kernel-level
// numbers isolated from NNT maintenance, and is the regression harness for
// the incremental join state (DESIGN.md "Incremental join state").
//
// The measured loop mirrors a monitoring deployment: per step, ONE stream
// vertex moves (the sparse delta a single ApplyChange batch produces), then
// the candidate sets of ALL streams are refreshed through the caller-buffer
// overload. Unchanged streams must be answered from the per-stream verdict
// cache; the changed stream re-evaluates only the dominance relations its
// delta touched. The from-scratch baseline row rebuilds a fresh strategy per
// refresh — the pre-incremental cost model.
//
// Flags:
//   --queries=N          number of queries (default 40)
//   --qvecs=N            query vectors per query (default 8)
//   --stream_vertices=N  vertices per stream (default 60)
//   --streams=N          number of streams (default 4)
//   --dims=N             NPV dimension universe (default 64)
//   --nnz=N              non-zero entries per vector (default 3)
//   --refreshes=N        timed delta+refresh steps (default 2000)
//   --warmup=N           untimed warm-up steps (0 = one full delta-pool
//                        cycle, so the timed loop is pure steady state)
//   --delta_reps=N       pre-generated vectors per (stream, vertex) slot;
//                        the pool cycles through reps*streams*vertices
//                        deltas (default 2)
//   --rebuilds=N         from-scratch rebuild+refresh baseline reps
//   --seed=N             workload seed
//
// Output: human-readable rows plus one EmitBenchJson line per strategy
// (bench "micro_join"), archived by the CI bench-JSON job; CI also checks
// the dominance-test count per refresh against a regression ceiling.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "gsps/common/alloc_hook.h"
#include "gsps/common/random.h"
#include "gsps/common/stopwatch.h"
#include "gsps/join/dominance_kernel.h"
#include "gsps/join/join_strategy.h"
#include "gsps/obs/obs.h"
#include "gsps/obs/window.h"

namespace gsps::bench {
namespace {

// Prevents the optimizer from deleting measured work.
inline void KeepAlive(int64_t value) { asm volatile("" : : "r"(value)); }

// Random sparse NPV over `dims` dimensions with `nnz` non-zero entries.
Npv RandomNpv(Rng& rng, int dims, int nnz, int max_count) {
  std::unordered_map<DimId, int32_t> counts;
  for (int i = 0; i < nnz; ++i) {
    counts[static_cast<DimId>(rng.UniformInt(0, dims - 1))] =
        static_cast<int32_t>(rng.UniformInt(1, max_count));
  }
  return Npv::FromMap(counts);
}

struct Workload {
  std::vector<QueryVectors> queries;
  // Per stream: the live vertex vectors.
  std::vector<std::vector<std::pair<VertexId, Npv>>> streams;
};

Workload MakeVectorWorkload(int num_queries, int vectors_per_query,
                            int stream_vertices, int num_streams, int dims,
                            int nnz, uint64_t seed) {
  Rng rng(seed);
  Workload w;
  for (int j = 0; j < num_queries; ++j) {
    QueryVectors q;
    for (int v = 0; v < vectors_per_query; ++v) {
      q.vectors.push_back(RandomNpv(rng, dims, nnz, 4));
    }
    w.queries.push_back(std::move(q));
  }
  w.streams.resize(static_cast<size_t>(num_streams));
  for (auto& stream : w.streams) {
    for (int v = 0; v < stream_vertices; ++v) {
      stream.emplace_back(static_cast<VertexId>(v),
                          RandomNpv(rng, dims, nnz, 6));
    }
  }
  return w;
}

std::unique_ptr<JoinStrategy> BuildStrategy(JoinKind kind, const Workload& w) {
  auto strategy = MakeJoinStrategy(kind);
  strategy->SetQueries(w.queries);
  strategy->SetNumStreams(static_cast<int>(w.streams.size()));
  for (size_t i = 0; i < w.streams.size(); ++i) {
    for (const auto& [v, npv] : w.streams[i]) {
      strategy->UpdateStreamVertex(static_cast<int>(i), v, npv);
    }
  }
  return strategy;
}

void RunStrategy(JoinKind kind, const Workload& w, const Flags& flags) {
  const int dims = flags.GetInt("dims", 64);
  const int nnz = flags.GetInt("nnz", 3);
  const int refreshes = flags.GetInt("refreshes", 2000);
  const int warmup_flag = flags.GetInt("warmup", 0);
  const int rebuilds = flags.GetInt("rebuilds", 50);
  const uint64_t seed = flags.GetUint64("seed", 9);
  const int num_streams = static_cast<int>(w.streams.size());
  const int stream_vertices = static_cast<int>(w.streams[0].size());

  auto strategy = BuildStrategy(kind, w);

  // Pre-generated sparse deltas, cycled: one vertex of one stream moves per
  // step. A fixed pool means a long-enough warm-up visits every update the
  // timed loop replays, so the timed loop is a true steady state (no new
  // map keys, no capacity growth) and the allocation meter sees only the
  // strategies' own refresh work.
  struct Delta {
    int stream;
    VertexId victim;
    Npv npv;
  };
  std::vector<Delta> deltas;
  Rng delta_rng(seed + 1);
  const int reps = flags.GetInt("delta_reps", 2);
  for (int rep = 0; rep < reps; ++rep) {
    for (int stream = 0; stream < num_streams; ++stream) {
      for (int v = 0; v < stream_vertices; ++v) {
        deltas.push_back({stream, static_cast<VertexId>(v),
                          RandomNpv(delta_rng, dims, nnz, 6)});
      }
    }
  }
  // Shuffled so each slot alternates between its `reps` distinct vectors in
  // no particular order: every replayed update is a genuine value change.
  for (size_t i = deltas.size(); i > 1; --i) {
    std::swap(deltas[i - 1], deltas[static_cast<size_t>(delta_rng.UniformInt(
                  0, static_cast<int64_t>(i) - 1))]);
  }

  // One monitoring step: apply the delta, then refresh every stream's
  // candidate set into a reused buffer.
  std::vector<int> candidates;
  int64_t candidates_seen = 0;
  size_t next_delta = 0;
  auto step = [&] {
    const Delta& d = deltas[next_delta];
    next_delta = (next_delta + 1) % deltas.size();
    strategy->UpdateStreamVertex(d.stream, d.victim, d.npv);
    for (int i = 0; i < num_streams; ++i) {
      strategy->CandidatesForStream(i, &candidates);
      candidates_seen += static_cast<int64_t>(candidates.size());
    }
  };

  const int warmup = warmup_flag > 0 ? warmup_flag
                                     : static_cast<int>(deltas.size());
  for (int i = 0; i < warmup; ++i) step();

  obs::MetricSink sink;
  Stopwatch watch;
  double refresh_seconds = 0;
  int64_t steady_allocs = 0;
  int64_t steady_frees = 0;
  {
    obs::ScopedObsContext context(&sink, nullptr);
    const AllocMeter meter;
    watch.Restart();
    for (int i = 0; i < refreshes; ++i) step();
    refresh_seconds = watch.ElapsedMicros() / 1e6;
    steady_allocs = meter.allocs();
    steady_frees = meter.frees();
  }
  KeepAlive(candidates_seen);

  // Each step refreshes every stream once.
  const double refreshes_per_sec =
      static_cast<double>(refreshes) * num_streams / refresh_seconds;
  const double delta_micros = refresh_seconds / refreshes * 1e6;
  const int64_t total_refreshes =
      static_cast<int64_t>(refreshes) * num_streams;
  const int64_t dominance_tests =
      sink.Value(obs::Counter::kJoinDominanceTests);
  const int64_t sig_rejects =
      sink.Value(obs::Counter::kJoinSignatureRejects);
  const int64_t verdicts_reused =
      sink.Value(obs::Counter::kJoinVerdictsReused);
  const int64_t sig_candidates = dominance_tests + sig_rejects;
  const double sig_reject_rate =
      sig_candidates > 0
          ? static_cast<double>(sig_rejects) / static_cast<double>(sig_candidates)
          : 0.0;
  const double tests_per_refresh =
      static_cast<double>(dominance_tests) / static_cast<double>(total_refreshes);
  const double reuse_rate = static_cast<double>(verdicts_reused) /
                            static_cast<double>(total_refreshes);
  // Per-stage tail latency from the join-refresh stage histogram the timed
  // loop populated (zeros under GSPS_OBS_DISABLED).
  const obs::HistogramData& refresh_hist =
      sink.histogram(obs::Hist::kStageJoinRefreshMicros);
  const double refresh_p50 = obs::HistogramQuantile(refresh_hist, 0.5);
  const double refresh_p95 = obs::HistogramQuantile(refresh_hist, 0.95);

  // The pre-incremental cost model: rebuild the strategy from the current
  // vectors and evaluate every stream once per refresh.
  std::vector<std::vector<std::pair<VertexId, Npv>>> current(
      static_cast<size_t>(num_streams));
  for (int i = 0; i < num_streams; ++i) {
    current[static_cast<size_t>(i)] = w.streams[static_cast<size_t>(i)];
  }
  watch.Restart();
  for (int r = 0; r < rebuilds; ++r) {
    auto fresh = MakeJoinStrategy(kind);
    fresh->SetQueries(w.queries);
    fresh->SetNumStreams(num_streams);
    for (int i = 0; i < num_streams; ++i) {
      for (const auto& [v, npv] : current[static_cast<size_t>(i)]) {
        fresh->UpdateStreamVertex(i, v, npv);
      }
    }
    for (int i = 0; i < num_streams; ++i) {
      fresh->CandidatesForStream(i, &candidates);
      KeepAlive(static_cast<int64_t>(candidates.size()));
    }
  }
  const double scratch_refreshes_per_sec =
      static_cast<double>(rebuilds) * num_streams /
      (watch.ElapsedMicros() / 1e6);
  const double speedup = scratch_refreshes_per_sec > 0
                             ? refreshes_per_sec / scratch_refreshes_per_sec
                             : 0.0;

  const std::string name(JoinKindName(kind));
  PrintHeader("micro_join " + name + " (queries=" +
              std::to_string(w.queries.size()) + " streams=" +
              std::to_string(num_streams) + " vertices=" +
              std::to_string(stream_vertices) + " dims=" +
              std::to_string(dims) + " nnz=" + std::to_string(nnz) + ")");
  const std::vector<std::string> columns = {"value"};
  PrintRow("refreshes_per_sec", {refreshes_per_sec}, columns);
  PrintRow("delta_step_micros", {delta_micros}, columns);
  PrintRow("scratch_refreshes_per_sec", {scratch_refreshes_per_sec}, columns);
  PrintRow("incremental_speedup", {speedup}, columns);
  PrintRow("dominance_tests_per_refresh", {tests_per_refresh}, columns);
  PrintRow("signature_reject_rate", {sig_reject_rate}, columns);
  PrintRow("verdict_reuse_rate", {reuse_rate}, columns);
  PrintRow("stage_join_refresh_p50", {refresh_p50}, columns);
  PrintRow("stage_join_refresh_p95", {refresh_p95}, columns);
  PrintRow("steady_allocs", {static_cast<double>(steady_allocs)}, columns);
  PrintRow("steady_frees", {static_cast<double>(steady_frees)}, columns);

  EmitBenchJson(
      "micro_join", name,
      {{"queries", static_cast<double>(w.queries.size())},
       {"streams", static_cast<double>(num_streams)},
       {"stream_vertices", static_cast<double>(stream_vertices)},
       {"dims", static_cast<double>(dims)},
       {"nnz", static_cast<double>(nnz)},
       {"refreshes", static_cast<double>(total_refreshes)},
       {"refreshes_per_sec", refreshes_per_sec},
       {"delta_step_micros", delta_micros},
       {"scratch_refreshes_per_sec", scratch_refreshes_per_sec},
       {"incremental_speedup", speedup},
       {"dominance_tests", static_cast<double>(dominance_tests)},
       {"dominance_tests_per_refresh", tests_per_refresh},
       {"signature_rejects", static_cast<double>(sig_rejects)},
       {"signature_reject_rate", sig_reject_rate},
       {"verdicts_reused", static_cast<double>(verdicts_reused)},
       {"verdict_reuse_rate", reuse_rate},
       {"stage_join_refresh_p50", refresh_p50},
       {"stage_join_refresh_p95", refresh_p95},
       {"steady_allocs", static_cast<double>(steady_allocs)},
       {"steady_frees", static_cast<double>(steady_frees)}});
}

// --kernel=1: dominance-kernel ablation. Same query-side slab the NL
// strategy binds; a pool of translated stream-style hay vectors (half
// sparse/reject-heavy, half denser/accept-heavy) is swept through
// ComputeMask per ISA. Every supported ISA is first differentially verified
// against the scalar kernel on every pool hay — masks, counts, and stats
// must match bit-for-bit, else the bench exits non-zero (the CI
// kernel-dispatch matrix relies on this) — then timed. One
// "kernel_<isa>" JSON row per ISA records dominance tests/s.
void RunKernelAblation(const Workload& w, const Flags& flags) {
  const int dims = flags.GetInt("dims", 64);
  const int nnz = flags.GetInt("nnz", 3);
  const int hays = flags.GetInt("kernel_hays", 256);
  const int passes = flags.GetInt("kernel_passes", 300);
  const uint64_t seed = flags.GetUint64("seed", 9);

  NpvDimRemap remap;
  for (const QueryVectors& query : w.queries) {
    for (const Npv& vector : query.vectors) remap.AddDims(vector);
  }
  remap.Seal();
  NpvSlab slab;
  std::vector<NpvEntry> translated;
  for (const QueryVectors& query : w.queries) {
    for (const Npv& vector : query.vectors) {
      if (vector.nnz() == 0) continue;
      remap.Translate(vector, &translated);
      slab.Append(translated);
    }
  }

  // Hay mix in thirds: sparse (signature-reject-heavy), dense (some
  // accepts), and supersets of random slab needles (guaranteed accepts,
  // mostly dominating) — so the sweep exercises the signature pre-pass AND
  // the compare pass in realistic proportion instead of measuring rejects
  // alone.
  struct Hay {
    std::vector<NpvEntry> entries;
    NpvSignature sig = 0;
  };
  std::vector<Hay> pool;
  pool.reserve(static_cast<size_t>(hays));
  Rng rng(seed + 2);
  for (int h = 0; h < hays; ++h) {
    Hay hay;
    if (h % 3 == 2 && slab.size() > 0) {
      const int32_t k = static_cast<int32_t>(
          rng.UniformInt(0, static_cast<int64_t>(slab.size()) - 1));
      hay.entries.assign(slab.begin(k), slab.end(k));
      for (NpvEntry& entry : hay.entries) {
        entry.count += static_cast<int32_t>(rng.UniformInt(0, 2));
      }
      for (int extra = 0; extra < 4; ++extra) {
        const NpvEntry fresh{
            static_cast<DimId>(rng.UniformInt(0, remap.num_dims() - 1)),
            static_cast<int32_t>(rng.UniformInt(1, 6))};
        auto it = std::lower_bound(
            hay.entries.begin(), hay.entries.end(), fresh,
            [](const NpvEntry& a, const NpvEntry& b) { return a.dim < b.dim; });
        if (it == hay.entries.end() || it->dim != fresh.dim) {
          hay.entries.insert(it, fresh);
        }
      }
      hay.sig = SignatureOf(hay.entries.data(),
                            hay.entries.data() + hay.entries.size());
    } else {
      const int hay_nnz = h % 3 == 0 ? nnz : std::min(dims, nnz * 8);
      hay.sig =
          remap.Translate(RandomNpv(rng, dims, hay_nnz, 6), &hay.entries);
    }
    pool.push_back(std::move(hay));
  }

  std::vector<DominanceIsa> isas;
  for (int i = 0; i < kNumDominanceIsas; ++i) {
    const DominanceIsa isa = static_cast<DominanceIsa>(i);
    if (DominanceIsaSupported(isa)) isas.push_back(isa);
  }

  // Differential phase (untimed): every ISA against scalar, on every hay.
  DominanceBatch scalar(DominanceIsa::kScalar);
  scalar.Bind(slab, remap.num_dims());
  for (const DominanceIsa isa : isas) {
    if (isa == DominanceIsa::kScalar) continue;
    DominanceBatch batch(isa);
    batch.Bind(slab, remap.num_dims());
    for (const Hay& hay : pool) {
      const NpvEntry* const begin = hay.entries.data();
      const NpvEntry* const end = begin + hay.entries.size();
      DominanceKernelStats ref_stats, isa_stats;
      scalar.ComputeMask(begin, end, hay.sig, &ref_stats);
      batch.ComputeMask(begin, end, hay.sig, &isa_stats);
      bool diverged = ref_stats.tests != isa_stats.tests ||
                      ref_stats.sig_rejects != isa_stats.sig_rejects;
      scalar.ComputeCounts(begin, end, &ref_stats);
      batch.ComputeCounts(begin, end, &isa_stats);
      for (int32_t k = 0; k < slab.size(); ++k) {
        diverged = diverged || scalar.Dominated(k) != batch.Dominated(k) ||
                   scalar.SatisfiedCount(k) != batch.SatisfiedCount(k);
      }
      if (diverged) {
        std::fprintf(stderr,
                     "micro_join --kernel: %s diverges from scalar\n",
                     DominanceIsaName(isa));
        std::exit(1);
      }
    }
  }

  // Timed phase: per ISA, sweep the hay pool `passes` times.
  PrintHeader("micro_join kernel (slab=" + std::to_string(slab.size()) +
              " dims=" + std::to_string(remap.num_dims()) + " hays=" +
              std::to_string(hays) + " passes=" + std::to_string(passes) +
              " active=" + DominanceIsaName(ActiveDominanceIsa()) + ")");
  const std::vector<std::string> columns = {"value"};
  for (const DominanceIsa isa : isas) {
    DominanceBatch batch(isa);
    batch.Bind(slab, remap.num_dims());
    DominanceKernelStats stats;
    Stopwatch watch;
    watch.Restart();
    for (int p = 0; p < passes; ++p) {
      for (const Hay& hay : pool) {
        batch.ComputeMask(hay.entries.data(),
                          hay.entries.data() + hay.entries.size(), hay.sig,
                          &stats);
      }
    }
    const double seconds = watch.ElapsedMicros() / 1e6;
    KeepAlive(stats.tests);
    // One probe = one (hay, needle) dominance decision, whether it was
    // resolved by the signature or by the compare pass.
    const double probes =
        static_cast<double>(stats.tests + stats.sig_rejects);
    const double probes_per_sec = probes / seconds;
    const std::string name = std::string("kernel_") + DominanceIsaName(isa);
    PrintRow(name + "_tests_per_sec", {probes_per_sec}, columns);
    EmitBenchJson(
        "micro_join", name,
        {{"slab_vectors", static_cast<double>(slab.size())},
         {"dims", static_cast<double>(remap.num_dims())},
         {"hays", static_cast<double>(hays)},
         {"passes", static_cast<double>(passes)},
         {"batches", static_cast<double>(stats.batches)},
         {"dominance_tests", static_cast<double>(stats.tests)},
         {"signature_rejects", static_cast<double>(stats.sig_rejects)},
         {"seconds", seconds},
         {"dominance_tests_per_sec", probes_per_sec},
         {"active", isa == ActiveDominanceIsa() ? 1.0 : 0.0}});
  }
}

void Run(const Flags& flags) {
  const Workload w = MakeVectorWorkload(
      flags.GetInt("queries", 40), flags.GetInt("qvecs", 8),
      flags.GetInt("stream_vertices", 60), flags.GetInt("streams", 4),
      flags.GetInt("dims", 64), flags.GetInt("nnz", 3),
      flags.GetUint64("seed", 9));
  if (flags.GetBool("kernel", false)) {
    RunKernelAblation(w, flags);
    return;
  }
  for (const JoinKind kind :
       {JoinKind::kNestedLoop, JoinKind::kDominatedSetCover,
        JoinKind::kSkylineEarlyStop}) {
    RunStrategy(kind, w, flags);
  }
}

}  // namespace
}  // namespace gsps::bench

int main(int argc, char** argv) {
  gsps::bench::Flags flags(argc, argv);
  gsps::bench::Run(flags);
  return 0;
}
