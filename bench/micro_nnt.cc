// Micro/ablation benchmarks for the NNT core: from-scratch build vs
// incremental maintenance, across depths and graph densities. This is the
// ablation behind the paper's central design choice — incremental index
// maintenance (Lemma 3.2's O(r^(l-1)) per-edge cost) instead of rebuilding
// per timestamp.

#include <benchmark/benchmark.h>

#include "gsps/common/random.h"
#include "gsps/gen/synthetic_generator.h"
#include "gsps/nnt/dimension.h"
#include "gsps/nnt/nnt_set.h"

namespace gsps {
namespace {

Graph MakeGraph(int edges, uint64_t seed) {
  Rng rng(seed);
  return RandomConnectedGraph(edges, 4, 1, rng);
}

void BM_NntBuild(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const int edges = static_cast<int>(state.range(1));
  const Graph graph = MakeGraph(edges, 42);
  for (auto _ : state) {
    DimensionTable dims;
    NntSet nnts(depth, &dims);
    nnts.Build(graph);
    benchmark::DoNotOptimize(nnts.TotalTreeNodes());
  }
  state.counters["tree_nodes"] = [&] {
    DimensionTable dims;
    NntSet nnts(depth, &dims);
    nnts.Build(graph);
    return static_cast<double>(nnts.TotalTreeNodes());
  }();
}
BENCHMARK(BM_NntBuild)
    ->ArgsProduct({{1, 2, 3, 4}, {20, 60, 120}})
    ->Unit(benchmark::kMicrosecond);

// One edge toggle maintained incrementally.
void BM_NntIncrementalToggle(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const int edges = static_cast<int>(state.range(1));
  Graph graph = MakeGraph(edges, 42);
  DimensionTable dims;
  NntSet nnts(depth, &dims);
  nnts.Build(graph);
  // Pick an existing edge to toggle.
  VertexId u = kInvalidVertex, v = kInvalidVertex;
  EdgeLabel label = 0;
  for (const VertexId a : graph.VertexIds()) {
    if (!graph.Neighbors(a).empty()) {
      u = a;
      v = graph.Neighbors(a).front().to;
      label = graph.Neighbors(a).front().label;
      break;
    }
  }
  for (auto _ : state) {
    nnts.DeleteEdge(u, v);
    graph.RemoveEdge(u, v);
    graph.AddEdge(u, v, label);
    nnts.InsertEdge(graph, u, v);
    benchmark::DoNotOptimize(nnts.TotalTreeNodes());
  }
}
BENCHMARK(BM_NntIncrementalToggle)
    ->ArgsProduct({{1, 2, 3, 4}, {20, 60, 120}})
    ->Unit(benchmark::kMicrosecond);

// The same toggle handled by a full rebuild — the naive alternative the
// incremental maintenance replaces.
void BM_NntRebuildPerToggle(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const int edges = static_cast<int>(state.range(1));
  Graph graph = MakeGraph(edges, 42);
  VertexId u = kInvalidVertex, v = kInvalidVertex;
  EdgeLabel label = 0;
  for (const VertexId a : graph.VertexIds()) {
    if (!graph.Neighbors(a).empty()) {
      u = a;
      v = graph.Neighbors(a).front().to;
      label = graph.Neighbors(a).front().label;
      break;
    }
  }
  for (auto _ : state) {
    graph.RemoveEdge(u, v);
    graph.AddEdge(u, v, label);
    DimensionTable dims;
    NntSet nnts(depth, &dims);
    nnts.Build(graph);
    benchmark::DoNotOptimize(nnts.TotalTreeNodes());
  }
}
BENCHMARK(BM_NntRebuildPerToggle)
    ->ArgsProduct({{3}, {20, 60, 120}})
    ->Unit(benchmark::kMicrosecond);

void BM_NpvProjection(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const Graph graph = MakeGraph(80, 42);
  DimensionTable dims;
  NntSet nnts(depth, &dims);
  nnts.Build(graph);
  const std::vector<VertexId> roots = nnts.Roots();
  for (auto _ : state) {
    for (const VertexId root : roots) {
      benchmark::DoNotOptimize(nnts.NpvOf(root).nnz());
    }
  }
}
BENCHMARK(BM_NpvProjection)->Arg(2)->Arg(3)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace gsps
