// Micro-benchmark for the NNT maintenance hot path: insert+delete churn
// throughput, NPV projection cost, storage density (bytes per alive tree
// node), and steady-state allocation counts. This is the ablation behind the
// paper's central design choice — incremental index maintenance (Lemma 3.2's
// O(r^(l-1)) per-edge cost) instead of rebuilding per timestamp — and the
// regression harness for the flat arena storage layout (DESIGN.md "Storage
// layout").
//
// The measured loop mirrors the engine's ApplyChange protocol exactly:
// DeleteEdge + graph update + InsertEdge, then drain the dirty roots and
// materialize their NPVs. Allocation counts come from the gsps_alloc_hook
// counting allocator this binary links; in a Release build of the arena
// layout the steady-state loop performs zero heap allocations.
//
// Flags:
//   --edges=N     churn graph size in edges (default 240)
//   --depth=N     NNT depth (default 3)
//   --toggles=N   timed delete+reinsert toggles (default 3000)
//   --warmup=N    untimed warm-up toggles to reach capacity high water
//   --rebuilds=N  full from-scratch rebuilds for the naive baseline row
//   --seed=N      workload seed
//
// Output: human-readable rows plus one EmitBenchJson line per setting
// (bench "micro_nnt"), archived by the CI bench-JSON job.

#include <cstdint>
#include <vector>

#include "bench_common.h"
#include "gsps/common/alloc_hook.h"
#include "gsps/common/random.h"
#include "gsps/common/stopwatch.h"
#include "gsps/gen/synthetic_generator.h"
#include "gsps/nnt/dimension.h"
#include "gsps/nnt/nnt_set.h"

namespace gsps::bench {
namespace {

// Prevents the optimizer from deleting measured work.
inline void KeepAlive(int64_t value) { asm volatile("" : : "r"(value)); }

struct EdgeRec {
  VertexId u, v;
  EdgeLabel label;
};

std::vector<EdgeRec> EdgeList(const Graph& graph) {
  std::vector<EdgeRec> edges;
  for (const VertexId u : graph.VertexIds()) {
    for (const HalfEdge& half : graph.Neighbors(u)) {
      if (u < half.to) edges.push_back({u, half.to, half.label});
    }
  }
  return edges;
}

// Total index storage, when the NntSet build exposes it (the arena layout
// does; the template probe keeps this harness buildable against the
// pre-arena layout so before/after numbers come from one source file).
template <typename Set>
int64_t StorageBytesOf(const Set& nnts) {
  if constexpr (requires { nnts.StorageBytes(); }) {
    return nnts.StorageBytes();
  } else {
    return 0;
  }
}

// Drains the dirty set, reusing `out` when the API supports it.
template <typename Set>
void DrainDirty(Set& nnts, std::vector<VertexId>* out) {
  if constexpr (requires { nnts.TakeDirtyRoots(out); }) {
    nnts.TakeDirtyRoots(out);
  } else {
    *out = nnts.TakeDirtyRoots();
  }
}

// One churn step over edge `e`: the engine's deletion-then-insertion
// protocol plus the dirty-root NPV flush the join strategies consume.
template <typename DirtyFn>
void Toggle(NntSet& nnts, Graph& graph, const EdgeRec& e, DirtyFn&& flush) {
  nnts.DeleteEdge(e.u, e.v);
  graph.RemoveEdge(e.u, e.v);
  graph.AddEdge(e.u, e.v, e.label);
  nnts.InsertEdge(graph, e.u, e.v);
  flush();
}

void RunChurn(const Flags& flags) {
  const int num_edges = flags.GetInt("edges", 240);
  const int depth = flags.GetInt("depth", 3);
  const int toggles = flags.GetInt("toggles", 3000);
  const int warmup = flags.GetInt("warmup", 300);
  const int rebuilds = flags.GetInt("rebuilds", 30);
  const uint64_t seed = flags.GetUint64("seed", 42);

  Rng rng(seed);
  Graph graph = RandomConnectedGraph(num_edges, 4, 1, rng);
  const std::vector<EdgeRec> edges = EdgeList(graph);

  DimensionTable dims;
  NntSet nnts(depth, &dims);
  Stopwatch watch;
  nnts.Build(graph);
  const double build_ms = watch.ElapsedMillis();
  const int64_t tree_nodes = nnts.TotalTreeNodes();
  const int64_t storage_bytes = StorageBytesOf(nnts);

  // The flush body, reusing one buffer when the API supports it.
  std::vector<VertexId> dirty;
  int64_t npvs_flushed = 0;
  auto flush = [&] {
    DrainDirty(nnts, &dirty);
    for (const VertexId root : dirty) {
      if (nnts.TreeOf(root) == nullptr) continue;
      KeepAlive(nnts.NpvOf(root).nnz());
      ++npvs_flushed;
    }
  };

  // Warm up to the capacity high-water mark, then measure.
  for (int i = 0; i < warmup; ++i) {
    Toggle(nnts, graph, edges[static_cast<size_t>(i) % edges.size()], flush);
  }
  const AllocMeter meter;
  watch.Restart();
  for (int i = 0; i < toggles; ++i) {
    Toggle(nnts, graph, edges[static_cast<size_t>(i) % edges.size()], flush);
  }
  const double churn_seconds = watch.ElapsedMicros() / 1e6;
  const int64_t steady_allocs = meter.allocs();
  const int64_t steady_frees = meter.frees();
  // 2 maintenance ops (delete + insert) per toggle.
  const double ops_per_sec = 2.0 * toggles / churn_seconds;

  // NPV projection cost over every root (post-churn state, all caches cold
  // once, then hot).
  const std::vector<VertexId> roots = nnts.Roots();
  constexpr int kNpvPasses = 200;
  watch.Restart();
  for (int pass = 0; pass < kNpvPasses; ++pass) {
    for (const VertexId root : roots) {
      KeepAlive(nnts.NpvOf(root).nnz());
    }
  }
  const double npv_reads_per_sec =
      static_cast<double>(kNpvPasses) * static_cast<double>(roots.size()) /
      (watch.ElapsedMicros() / 1e6);

  // The naive alternative: rebuild everything per change.
  watch.Restart();
  for (int i = 0; i < rebuilds; ++i) {
    DimensionTable fresh_dims;
    NntSet fresh(depth, &fresh_dims);
    fresh.Build(graph);
    KeepAlive(fresh.TotalTreeNodes());
  }
  const double rebuilds_per_sec = rebuilds / (watch.ElapsedMicros() / 1e6);

  const double bytes_per_node =
      tree_nodes > 0 && storage_bytes > 0
          ? static_cast<double>(storage_bytes) / static_cast<double>(tree_nodes)
          : 0.0;

  PrintHeader("micro_nnt churn (edges=" + std::to_string(num_edges) +
              " depth=" + std::to_string(depth) + ")");
  const std::vector<std::string> columns = {"value"};
  PrintRow("build_ms", {build_ms}, columns);
  PrintRow("tree_nodes", {static_cast<double>(tree_nodes)}, columns);
  PrintRow("bytes_per_node", {bytes_per_node}, columns);
  PrintRow("maintain_ops_per_sec", {ops_per_sec}, columns);
  PrintRow("npv_reads_per_sec", {npv_reads_per_sec}, columns);
  PrintRow("rebuilds_per_sec", {rebuilds_per_sec}, columns);
  PrintRow("steady_allocs", {static_cast<double>(steady_allocs)}, columns);
  PrintRow("steady_frees", {static_cast<double>(steady_frees)}, columns);

  EmitBenchJson(
      "micro_nnt", "churn",
      {{"edges", static_cast<double>(num_edges)},
       {"depth", static_cast<double>(depth)},
       {"toggles", static_cast<double>(toggles)},
       {"build_ms", build_ms},
       {"tree_nodes", static_cast<double>(tree_nodes)},
       {"bytes_per_node", bytes_per_node},
       {"maintain_ops_per_sec", ops_per_sec},
       {"npv_reads_per_sec", npv_reads_per_sec},
       {"rebuilds_per_sec", rebuilds_per_sec},
       {"npvs_flushed", static_cast<double>(npvs_flushed)},
       {"steady_allocs", static_cast<double>(steady_allocs)},
       {"steady_frees", static_cast<double>(steady_frees)}});
}

}  // namespace
}  // namespace gsps::bench

int main(int argc, char** argv) {
  gsps::bench::Flags flags(argc, argv);
  gsps::bench::RunChurn(flags);
  return 0;
}
