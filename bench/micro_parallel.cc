// Parallel-engine microbenchmark: throughput of the sharded
// ParallelQueryEngine vs. the sequential ContinuousQueryEngine on the same
// synthetic multi-stream workload, at 1/2/4/8 worker threads (plus any
// extra counts passed via --threads=a,b,c).
//
// Reported per thread count: avg cost per timestamp, throughput in
// timestamps/s, and speedup over the sequential run. The 1-thread parallel
// row isolates the framework overhead (sharding + barrier) from actual
// concurrency wins; on a machine with >= 4 cores the 4-thread row is
// expected to clear 2x with the default 32-stream workload. Each run also
// emits a BENCH_JSON line (see bench_common.h) for CI artifact archiving.
//
//   micro_parallel [--streams=32] [--timestamps=40] [--join=dsc|nl|skyline]
//                  [--depth=3] [--seed=11] [--threads=1,2,4,8]

#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gsps/common/thread_pool.h"
#include "gsps/obs/obs.h"

namespace gsps::bench {
namespace {

std::vector<int> ParseThreadCounts(const std::string& spec) {
  std::vector<int> counts;
  std::string token;
  for (const char c : spec + ",") {
    if (c == ',') {
      if (!token.empty()) counts.push_back(std::atoi(token.c_str()));
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  return counts;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int streams = flags.GetInt("streams", 32);
  const int timestamps = flags.GetInt("timestamps", 40);
  const int depth = flags.GetInt("depth", 3);
  const uint64_t seed = flags.GetUint64("seed", 11);
  JoinKind kind = JoinKind::kDominatedSetCover;
  if (flags.GetBool("nl", false)) kind = JoinKind::kNestedLoop;
  if (flags.GetBool("skyline", false)) kind = JoinKind::kSkylineEarlyStop;

  const StreamWorkload workload = SyntheticStreamWorkload(
      streams, 0.2, 0.15, timestamps, seed, /*extra_pair_fraction=*/6.2);

  // Keep metric recording live on the driver thread for the whole run so
  // the measured cost includes the instrumentation the CI overhead job
  // compares against a GSPS_OBS_DISABLED build. (Shard threads install
  // their own sinks inside the parallel engine.)
  obs::MetricSink root_sink;
  std::optional<obs::ScopedObsContext> obs_scope;
  if constexpr (obs::kEnabled) obs_scope.emplace(&root_sink, nullptr);

  std::printf("micro_parallel: %zu streams x %zu queries, %d timestamps, "
              "join=%s, %d hardware threads\n",
              workload.streams.size(), workload.queries.size(),
              workload.horizon, std::string(JoinKindName(kind)).c_str(),
              ThreadPool::HardwareThreads());

  // Sequential reference.
  const StatsAccumulator sequential = RunNpvEngine(workload, kind, depth);
  const double seq_cost = sequential.AvgCostMillis();
  std::printf("  %-12s cost/step=%9.3f ms  p95=%9.3f ms  throughput=%8.1f t/s\n",
              "sequential", seq_cost, sequential.CostPercentileMillis(95.0),
              seq_cost > 0 ? 1000.0 / seq_cost : 0.0);
  {
    auto fields = StatsJsonFields(sequential);
    fields["streams"] = streams;
    fields["num_threads"] = 0;  // 0 marks the sequential engine.
    EmitBenchJson("micro_parallel", "sequential", fields);
  }

  const std::vector<int> counts =
      ParseThreadCounts(flags.GetString("threads", "1,2,4,8"));

  for (const int threads : counts) {
    RunOptions options;
    options.num_threads = threads;
    // Shard threads merge their sinks into the global registry at every
    // barrier, so registry snapshot deltas around the run isolate this
    // thread count's busy/wait split (all-zero under GSPS_OBS_DISABLED).
    const obs::MetricSink before = obs::MetricsRegistry::Global().Snapshot();
    const StatsAccumulator stats =
        RunNpvEngine(workload, kind, depth, options);
    const obs::MetricSink after = obs::MetricsRegistry::Global().Snapshot();
    const double cost = stats.AvgCostMillis();
    const double speedup = cost > 0 ? seq_cost / cost : 0.0;
    const int num_shards = std::min(threads, streams);
    const auto delta = [&](obs::Counter c) {
      return static_cast<double>(after.Value(c) - before.Value(c));
    };
    const double busy = delta(obs::Counter::kShardBusyMicros);
    const double wait = delta(obs::Counter::kShardBarrierWaitMicros);
    // Fraction of aggregate shard wall time spent stalled at barriers
    // (idle behind the slowest shard) rather than doing update/join work.
    const double stall_ratio = busy + wait > 0 ? wait / (busy + wait) : 0.0;
    std::printf("  %2d thread(s) cost/step=%9.3f ms  p95=%9.3f ms  "
                "throughput=%8.1f t/s  speedup=%.2fx  busy=%.3f ms  "
                "stall=%4.1f%%\n",
                threads, cost, stats.CostPercentileMillis(95.0),
                cost > 0 ? 1000.0 / cost : 0.0, speedup,
                stats.AvgBusyMillis(), 100.0 * stall_ratio);
    auto fields = StatsJsonFields(stats);
    fields["streams"] = streams;
    fields["num_threads"] = threads;
    fields["speedup_vs_sequential"] = speedup;
    fields["shard_busy_micros_per_shard"] = busy / num_shards;
    fields["shard_barrier_wait_micros_per_shard"] = wait / num_shards;
    fields["barrier_stall_ratio"] = stall_ratio;
    fields["update_barriers"] = delta(obs::Counter::kEngineUpdateBarriers);
    fields["join_barriers"] = delta(obs::Counter::kEngineJoinBarriers);
    EmitBenchJson("micro_parallel", "parallel", fields);
  }

  std::printf("\nShape check: candidate counts are identical across all rows "
              "(the engines are\nequivalent); speedup approaches "
              "min(threads, cores, streams) as update/join work\ndominates "
              "the barrier overhead.\n");
  return 0;
}

}  // namespace
}  // namespace gsps::bench

int main(int argc, char** argv) { return gsps::bench::Main(argc, argv); }
