// Figure 13 (paper §V.A.2): effectiveness on the static datasets — average
// candidate ratio per query size for NPV (depth 3), gIndex1, and GraphGrep,
// over query sets Q4, Q8, ..., Q24.
//
// Paper scale: 10,000 graphs, 1,000 queries per set; reproduce with
//   fig13_static_effectiveness --graphs=10000 --queries=1000

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "gsps/baselines/gindex/gindex_filter.h"
#include "gsps/baselines/graphgrep/graphgrep_filter.h"
#include "gsps/common/random.h"
#include "gsps/common/stopwatch.h"
#include "gsps/gen/aids_like.h"
#include "gsps/gen/query_extractor.h"
#include "gsps/gen/synthetic_generator.h"

namespace gsps::bench {
namespace {

double RatioFromCounts(int64_t candidates, size_t database, size_t queries) {
  if (database == 0 || queries == 0) return 0.0;
  return static_cast<double>(candidates) /
         (static_cast<double>(database) * static_cast<double>(queries));
}

void RunDataset(const char* name, const std::vector<Graph>& database,
                const std::vector<int>& query_sizes, int queries_per_set,
                const GspanOptions& gindex_options, uint64_t seed) {
  Rng rng(seed);
  std::printf("\n[%s] %zu graphs\n", name, database.size());

  GraphGrepFilter graphgrep(4);
  graphgrep.IndexDatabase(database);

  Stopwatch watch;
  GindexFilter gindex(gindex_options);
  gindex.BuildIndex(database);
  std::printf("gIndex1 mined %lld features in %.1f ms\n",
              static_cast<long long>(gindex.num_features()),
              watch.ElapsedMillis());

  std::printf("%-6s %12s %12s %12s\n", "Qm", "NPV", "gIndex1", "Ggrep");
  for (const int size : query_sizes) {
    const std::vector<Graph> queries =
        ExtractQuerySet(database, size, queries_per_set, rng);
    if (queries.empty()) continue;

    const double npv_ratio = NpvStaticCandidateRatio(database, queries, 3);

    int64_t gindex_candidates = 0;
    int64_t graphgrep_candidates = 0;
    for (const Graph& query : queries) {
      gindex_candidates +=
          static_cast<int64_t>(gindex.CandidateGraphsFor(query).size());
      graphgrep_candidates +=
          static_cast<int64_t>(graphgrep.CandidateGraphsFor(query).size());
    }
    std::printf("Q%-5d %12.4f %12.4f %12.4f\n", size, npv_ratio,
                RatioFromCounts(gindex_candidates, database.size(),
                                queries.size()),
                RatioFromCounts(graphgrep_candidates, database.size(),
                                queries.size()));
  }
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int num_graphs = flags.GetInt("graphs", 300);
  const int queries_per_set = flags.GetInt("queries", 40);
  const uint64_t seed = flags.GetUint64("seed", 3);
  GspanOptions gindex_options = GindexFilter::Gindex1Options();
  gindex_options.max_patterns = flags.GetInt("gindex_max_patterns", 2000);

  std::printf("Figure 13: static effectiveness (candidate ratio; lower is "
              "better)\n");

  const std::vector<int> query_sizes = {4, 8, 12, 16, 20, 24};

  AidsLikeParams aids_params;
  aids_params.num_graphs = num_graphs;
  aids_params.seed = seed;
  RunDataset("AIDS-like", MakeAidsLikeDataset(aids_params), query_sizes,
             queries_per_set, gindex_options, seed + 10);

  SyntheticParams synth_params;
  synth_params.num_graphs = num_graphs;
  synth_params.seed = seed + 1;
  RunDataset("synthetic", GenerateSyntheticDataset(synth_params), query_sizes,
             queries_per_set, gindex_options, seed + 11);

  std::printf("\nPaper shape check: NPV tracks gIndex1 closely on both "
              "datasets; GraphGrep's ratio is\nmuch larger across all query "
              "sizes; ratios shrink as queries grow.\n");
  return 0;
}

}  // namespace
}  // namespace gsps::bench

int main(int argc, char** argv) { return gsps::bench::Main(argc, argv); }
