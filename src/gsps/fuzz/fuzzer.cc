#include "gsps/fuzz/fuzzer.h"

#include <utility>

namespace gsps {
namespace {

void Emit(const std::function<void(const std::string&)>& log,
          const std::string& line) {
  if (log) log(line);
}

}  // namespace

uint64_t CaseSeed(uint64_t seed, int iteration) {
  // SplitMix64 over (seed, iteration): decorrelates consecutive iterations
  // and makes every case reproducible standalone.
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL *
                          (static_cast<uint64_t>(iteration) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

FuzzOutcome RunFuzz(const FuzzOptions& options,
                    const std::function<void(const std::string&)>& log) {
  FuzzOutcome outcome;
  Emit(log, "fuzz seed=" + std::to_string(options.seed) +
                " iterations=" + std::to_string(options.iterations) +
                " depth=" +
                (options.gen.nnt_depth > 0
                     ? std::to_string(options.gen.nnt_depth)
                     : std::string("auto")));
  for (int iteration = 0; iteration < options.iterations; ++iteration) {
    const uint64_t case_seed = CaseSeed(options.seed, iteration);
    Rng rng(case_seed);
    const FuzzCase c = GenerateCase(options.gen, rng);
    const std::optional<std::string> failure = RunOracles(c, options.oracles);
    if (!failure) {
      if (options.verbose) {
        Emit(log, "iter " + std::to_string(iteration) + " ok " +
                      DescribeCase(c));
      }
      continue;
    }
    Emit(log, "iter " + std::to_string(iteration) + " FAIL (case_seed=" +
                  std::to_string(case_seed) + " " + DescribeCase(c) +
                  "): " + *failure);
    outcome.ok = false;
    outcome.failing_iteration = iteration;
    outcome.case_seed = case_seed;
    outcome.failure = *failure;
    outcome.original = c;

    Emit(log, "minimizing (budget " +
                  std::to_string(options.minimize_attempts) + " attempts)");
    const OracleOptions oracle_options = options.oracles;
    MinimizeOptions minimize_options;
    minimize_options.max_attempts = options.minimize_attempts;
    const MinimizeResult minimized = Minimize(
        c,
        [&oracle_options](const FuzzCase& candidate) {
          return RunOracles(candidate, oracle_options).has_value();
        },
        minimize_options);
    outcome.minimized = minimized.best;
    outcome.minimize_attempts = minimized.attempts;
    outcome.minimize_reductions = minimized.reductions;
    outcome.minimized_failure =
        RunOracles(minimized.best, oracle_options).value_or("(no longer fails?)");
    Emit(log, "minimized to " + DescribeCase(minimized.best) + " (" +
                  std::to_string(minimized.attempts) + " attempts, " +
                  std::to_string(minimized.reductions) + " reductions)");
    Emit(log, "minimized failure: " + outcome.minimized_failure);
    return outcome;
  }
  Emit(log, "all " + std::to_string(options.iterations) +
                " iterations passed");
  return outcome;
}

}  // namespace gsps
