// The pluggable invariant-oracle set the fuzzer checks at every timestamp
// of every case:
//
//   1. No false negatives (Theorem 4.1 / Lemma 4.2): for each of the three
//      join strategies (NL, DSC, Skyline) and both baselines (GraphGrep,
//      gIndex2), every (stream, query) pair the exact VF2 matcher accepts
//      must be in the reported candidate set. The three strategies must
//      also report *identical* candidate sets (they implement one
//      definition three ways).
//   2. Incremental NNT maintenance (paper Figs. 4-5): the maintained
//      NntSet must pass its internal Validate() against the live graph and
//      its trees must be branch-for-branch identical to a from-scratch
//      rebuild of the materialized graph.
//   3. Parallel engine: ParallelQueryEngine at 2 and 4 threads must report
//      exactly the sequential engine's candidate pairs.
//   4. Serialization: streams, queries, and the whole replay file must
//      round-trip exactly through their text formats.
//   5. Incremental join: after every batch, each strategy's delta-maintained
//      cached verdicts must equal a freshly constructed strategy of the
//      same kind fed the stream's current NPVs from scratch
//      (ContinuousQueryEngine::RecomputeCandidatesFromScratch).
//   6. Query churn: when the case carries a churn schedule, every engine
//      applies it live (AddQueryDynamic/RemoveQueryDynamic, after each
//      timestamp's batches) and must then report — per strategy, per
//      timestamp — exactly the candidates of a freshly built engine holding
//      only the currently registered queries, replayed from scratch. All
//      engines must also agree on the reused slot every re-add lands in,
//      and oracles 1/3/5 keep holding on the churned engines with the VF2
//      truth restricted to registered queries.
//   7. Binary codec: every stream and query must survive
//      text -> binary -> text through delta_codec — DecodeStream(
//      EncodeStream(s)) must equal s structurally, re-formatting the
//      decoded value must reproduce the original text byte for byte, and
//      re-encoding it must be a binary fixed point (same for graphs via
//      EncodeGraph/DecodeGraph).
//   8. Pipelined engine: PipelinedQueryEngine (3 worker threads, capacity-8
//      SPSC lanes so the router actually hits backpressure, every timestamp
//      batch split into two fragments the worker must coalesce) must report
//      exactly the sequential engine's candidate pairs AND candidate
//      transitions at every epoch boundary, apply the churn schedule in
//      lock-step through its in-band control channel (agreeing on reused
//      slots), and finish with lossless, in-order per-lane delivery audits.
//
// RunOracles is deterministic and returns a diagnostic naming the oracle,
// timestamp, stream, and query on the first violation — the string the
// minimizer preserves while shrinking.

#ifndef GSPS_FUZZ_ORACLES_H_
#define GSPS_FUZZ_ORACLES_H_

#include <optional>
#include <string>
#include <vector>

#include "gsps/fuzz/fuzz_case.h"

namespace gsps {

struct OracleOptions {
  bool check_strategies = true;   // Oracle 1, engine side.
  bool check_baselines = true;    // Oracle 1, GraphGrep + gIndex2.
  bool check_nnt_rebuild = true;  // Oracle 2.
  bool check_parallel = true;     // Oracle 3.
  bool check_roundtrip = true;    // Oracle 4.
  bool check_incremental = true;  // Oracle 5.
  bool check_churn = true;        // Oracle 6 (no-op without a schedule).
  bool check_codec = true;        // Oracle 7.
  bool check_pipelined = true;    // Oracle 8.
};

// Runs every enabled oracle over the whole case, timestamp by timestamp.
// Returns nullopt when all hold, or a one-line diagnostic on the first
// violation.
std::optional<std::string> RunOracles(const FuzzCase& c,
                                      const OracleOptions& options = {});

// --- Pure helpers (unit-testable without triggering a real engine bug) ---

// Elements of `required` missing from `candidates` (both ascending).
std::vector<int> MissingCandidates(const std::vector<int>& candidates,
                                   const std::vector<int>& required);

// "{1, 3, 7}" for logging.
std::string DescribeSet(const std::vector<int>& values);

// Diagnostic for a filter reporting `candidates` when `truth` holds, or
// nullopt when no false negative occurred. `filter_name` names the
// offender ("Skyline", "gIndex2", ...).
std::optional<std::string> CheckNoFalseNegatives(
    const std::string& filter_name, int timestamp, int stream,
    const std::vector<int>& candidates, const std::vector<int>& truth);

// Diagnostic when two strategies disagree on a candidate set, else nullopt.
std::optional<std::string> CheckStrategiesAgree(
    const std::string& name_a, const std::vector<int>& candidates_a,
    const std::string& name_b, const std::vector<int>& candidates_b,
    int timestamp, int stream);

}  // namespace gsps

#endif  // GSPS_FUZZ_ORACLES_H_
