#include "gsps/fuzz/minimizer.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "gsps/common/check.h"

namespace gsps {
namespace {

// Shared shrink-loop state: the best case so far and the budget.
struct Shrinker {
  FuzzCase best;
  const CasePredicate& still_fails;
  int max_attempts;
  int attempts = 0;
  int reductions = 0;

  bool Exhausted() const { return attempts >= max_attempts; }

  // Tries `candidate`; adopts it when it still fails. Returns true on
  // adoption.
  bool Try(FuzzCase candidate) {
    if (Exhausted()) return false;
    ++attempts;
    if (!still_fails(candidate)) return false;
    best = std::move(candidate);
    ++reductions;
    return true;
  }
};

bool DropStreams(Shrinker& s) {
  bool progress = false;
  for (size_t i = s.best.workload.streams.size(); i-- > 0;) {
    FuzzCase candidate = s.best;
    candidate.workload.streams.erase(
        candidate.workload.streams.begin() + static_cast<long>(i));
    progress |= s.Try(std::move(candidate));
    if (s.Exhausted()) break;
  }
  return progress;
}

bool DropQueries(Shrinker& s) {
  bool progress = false;
  for (size_t q = s.best.workload.queries.size(); q-- > 0;) {
    FuzzCase candidate = s.best;
    candidate.workload.queries.erase(
        candidate.workload.queries.begin() + static_cast<long>(q));
    // Churn ops follow the renumbering: ops naming the dropped query go
    // with it, later queries shift down by one.
    std::vector<ChurnOp>& churn = candidate.churn;
    churn.erase(std::remove_if(churn.begin(), churn.end(),
                               [q](const ChurnOp& op) {
                                 return op.query == static_cast<int>(q);
                               }),
                churn.end());
    for (ChurnOp& op : churn) {
      if (op.query > static_cast<int>(q)) --op.query;
    }
    progress |= s.Try(std::move(candidate));
    if (s.Exhausted()) break;
  }
  return progress;
}

// Tries the whole schedule at once (a failure that survives without churn
// is a plain engine bug — the simpler replay), then single ops.
bool DropChurnOps(Shrinker& s) {
  bool progress = false;
  if (!s.best.churn.empty()) {
    FuzzCase candidate = s.best;
    candidate.churn.clear();
    progress |= s.Try(std::move(candidate));
  }
  for (size_t k = s.best.churn.size(); k-- > 0;) {
    if (s.Exhausted()) break;
    if (k >= s.best.churn.size()) continue;
    FuzzCase candidate = s.best;
    candidate.churn.erase(candidate.churn.begin() + static_cast<long>(k));
    progress |= s.Try(std::move(candidate));
  }
  return progress;
}

// Drops trailing batches first (cheap big cuts), then single batches.
bool DropBatches(Shrinker& s) {
  bool progress = false;
  for (size_t i = 0; i < s.best.workload.streams.size(); ++i) {
    // Halve the tail while that still fails.
    while (!s.Exhausted()) {
      const GraphStream& stream = s.best.workload.streams[i];
      std::vector<GraphChange> batches = BatchesOf(stream);
      if (batches.empty()) break;
      FuzzCase candidate = s.best;
      std::vector<GraphChange> kept(batches.begin(),
                                    batches.begin() +
                                        static_cast<long>(batches.size() / 2));
      candidate.workload.streams[i] =
          RebuildStream(stream.StartGraph(), kept);
      if (!s.Try(std::move(candidate))) break;
      progress = true;
    }
    // Then individual batches, last to first.
    const size_t num_batches =
        BatchesOf(s.best.workload.streams[i]).size();
    for (size_t t = num_batches; t-- > 0;) {
      if (s.Exhausted()) break;
      const GraphStream& stream = s.best.workload.streams[i];
      std::vector<GraphChange> batches = BatchesOf(stream);
      if (t >= batches.size()) continue;
      batches.erase(batches.begin() + static_cast<long>(t));
      FuzzCase candidate = s.best;
      candidate.workload.streams[i] =
          RebuildStream(stream.StartGraph(), batches);
      progress |= s.Try(std::move(candidate));
    }
  }
  return progress;
}

bool DropOps(Shrinker& s) {
  bool progress = false;
  for (size_t i = 0; i < s.best.workload.streams.size(); ++i) {
    for (int t = 1; t < s.best.workload.streams[i].NumTimestamps(); ++t) {
      const size_t num_ops =
          s.best.workload.streams[i].ChangeAt(t).ops.size();
      for (size_t k = num_ops; k-- > 0;) {
        if (s.Exhausted()) return progress;
        const GraphStream& stream = s.best.workload.streams[i];
        if (t >= stream.NumTimestamps()) break;
        std::vector<GraphChange> batches = BatchesOf(stream);
        std::vector<EdgeOp>& ops = batches[static_cast<size_t>(t - 1)].ops;
        if (k >= ops.size()) continue;
        ops.erase(ops.begin() + static_cast<long>(k));
        FuzzCase candidate = s.best;
        candidate.workload.streams[i] =
            RebuildStream(stream.StartGraph(), batches);
        progress |= s.Try(std::move(candidate));
      }
    }
  }
  return progress;
}

// Edits one graph in place via `edit`, which returns false when the edit
// does not apply.
template <typename Edit>
bool TryGraphEdit(Shrinker& s, bool is_query, size_t index,
                  const Edit& edit) {
  FuzzCase candidate = s.best;
  if (is_query) {
    if (!edit(candidate.workload.queries[index])) return false;
  } else {
    const GraphStream& stream = candidate.workload.streams[index];
    Graph start = stream.StartGraph();
    if (!edit(start)) return false;
    candidate.workload.streams[index] =
        RebuildStream(std::move(start), BatchesOf(stream));
  }
  return s.Try(std::move(candidate));
}

// Removes edges one by one from queries and start graphs, then strips
// isolated vertices (queries keep at least one vertex so the empty pattern
// — vacuously contained everywhere — cannot appear during shrinking).
bool DropGraphParts(Shrinker& s, bool is_query) {
  bool progress = false;
  const size_t count = is_query ? s.best.workload.queries.size()
                                : s.best.workload.streams.size();
  for (size_t index = 0; index < count; ++index) {
    bool removed = true;
    while (removed && !s.Exhausted()) {
      removed = false;
      const Graph& graph =
          is_query ? s.best.workload.queries[index]
                   : s.best.workload.streams[index].StartGraph();
      // Edges.
      for (const VertexId u : graph.VertexIds()) {
        bool done = false;
        for (const HalfEdge& half : graph.Neighbors(u)) {
          if (half.to < u) continue;
          const VertexId v = half.to;
          if (TryGraphEdit(s, is_query, index, [u, v](Graph& g) {
                return g.RemoveEdge(u, v);
              })) {
            removed = true;
            progress = true;
            done = true;
            break;  // Adjacency changed; re-enumerate.
          }
          if (s.Exhausted()) return progress;
        }
        if (done) break;
      }
      if (removed) continue;
      // Isolated vertices.
      for (const VertexId v : graph.VertexIds()) {
        if (graph.Degree(v) != 0) continue;
        if (is_query && graph.NumVertices() <= 1) break;
        if (TryGraphEdit(s, is_query, index, [v](Graph& g) {
              return g.RemoveVertex(v);
            })) {
          removed = true;
          progress = true;
          break;
        }
        if (s.Exhausted()) return progress;
      }
    }
  }
  return progress;
}

}  // namespace

MinimizeResult Minimize(const FuzzCase& failing,
                        const CasePredicate& still_fails,
                        const MinimizeOptions& options) {
  GSPS_CHECK_MSG(still_fails(failing),
                 "Minimize requires a failing case on entry");
  Shrinker s{failing, still_fails, options.max_attempts};
  bool progress = true;
  while (progress && !s.Exhausted()) {
    progress = false;
    progress |= DropStreams(s);
    progress |= DropChurnOps(s);
    progress |= DropQueries(s);
    progress |= DropBatches(s);
    progress |= DropOps(s);
    progress |= DropGraphParts(s, /*is_query=*/false);
    progress |= DropGraphParts(s, /*is_query=*/true);
  }
  return MinimizeResult{std::move(s.best), s.attempts, s.reductions};
}

}  // namespace gsps
