#include "gsps/fuzz/replay.h"

#include <sstream>
#include <utility>

#include "gsps/graph/io_util.h"

namespace gsps {

std::string FormatReplay(const FuzzCase& c) {
  std::string out = "# gsps_fuzz replay v1\n";
  out += "depth " + std::to_string(c.nnt_depth) + "\n";
  for (const ChurnOp& op : c.churn) {
    out += "churn " + std::to_string(op.timestamp) +
           (op.add ? " add " : " rm ") + std::to_string(op.query) + "\n";
  }
  out += FormatWorkload(c.workload);
  return out;
}

std::optional<FuzzCase> ParseReplay(const std::string& text, IoError* error) {
  FuzzCase c;
  // Extract the directive header, blanking consumed lines (instead of
  // removing them) so workload_io's error line numbers still refer to the
  // original file.
  std::string workload_text;
  workload_text.reserve(text.size());
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  bool saw_depth = false;
  bool in_workload = false;
  while (std::getline(in, line)) {
    ++line_number;
    io_internal::StripCarriageReturn(line);
    const bool skippable = io_internal::IsBlankLine(line) || line[0] == '#';
    if (!in_workload && !skippable && line[0] == 'd') {
      std::istringstream fields(line);
      std::string word;
      long long depth = 0;
      if (!(fields >> word >> depth) || word != "depth") {
        if (error != nullptr) {
          error->line = line_number;
          error->message = "malformed directive (want: depth <l>)";
        }
        return std::nullopt;
      }
      if (saw_depth) {
        if (error != nullptr) {
          error->line = line_number;
          error->message = "duplicate depth directive";
        }
        return std::nullopt;
      }
      if (depth < kMinReplayDepth || depth > kMaxReplayDepth) {
        if (error != nullptr) {
          error->line = line_number;
          error->message = "depth " + std::to_string(depth) +
                           " out of range [" +
                           std::to_string(kMinReplayDepth) + ", " +
                           std::to_string(kMaxReplayDepth) + "]";
        }
        return std::nullopt;
      }
      saw_depth = true;
      c.nnt_depth = static_cast<int>(depth);
      workload_text += "#\n";  // Placeholder keeps line numbers aligned.
      continue;
    }
    if (!in_workload && !skippable && line[0] == 'c') {
      std::istringstream fields(line);
      std::string word;
      std::string verb;
      long long timestamp = 0;
      long long query = 0;
      if (!(fields >> word >> timestamp >> verb >> query) ||
          word != "churn" || (verb != "add" && verb != "rm") ||
          timestamp < 0 || query < 0) {
        if (error != nullptr) {
          error->line = line_number;
          error->message = "malformed directive (want: churn <t> add|rm <q>)";
        }
        return std::nullopt;
      }
      c.churn.push_back(ChurnOp{static_cast<int>(timestamp), verb == "add",
                                static_cast<int>(query)});
      workload_text += "#\n";  // Placeholder keeps line numbers aligned.
      continue;
    }
    if (!skippable) in_workload = true;
    workload_text += line;
    workload_text += '\n';
  }

  std::optional<Workload> workload = ParseWorkload(workload_text, error);
  if (!workload) return std::nullopt;
  c.workload = *std::move(workload);
  return c;
}

}  // namespace gsps
