// The unit of work of the differential fuzzer: one complete randomized
// scenario — a query set, a set of evolving streams, and the engine
// configuration under test. Cases are value types: the minimizer edits
// copies freely and the replay format (replay.h) round-trips them exactly.

#ifndef GSPS_FUZZ_FUZZ_CASE_H_
#define GSPS_FUZZ_FUZZ_CASE_H_

#include <string>
#include <vector>

#include "gsps/graph/graph_change.h"
#include "gsps/graph/graph_stream.h"
#include "gsps/graph/workload_io.h"

namespace gsps {

// One query-lifecycle directive of a case's churn schedule: at `timestamp`
// — after that timestamp's change batches are applied, before any candidate
// check — workload query `query` is added to or removed from every engine
// under test. Ops are skip-safe so the minimizer can drop them freely: an
// add of a registered query, a remove of an unregistered query, and any op
// naming an out-of-range query are silently skipped. A query starts
// registered unless the first churn op naming it is an add (then the
// schedule itself introduces it mid-run).
struct ChurnOp {
  int timestamp = 0;
  bool add = false;
  int query = 0;

  friend bool operator==(const ChurnOp&, const ChurnOp&) = default;
};

struct FuzzCase {
  // NNT depth every engine in the oracle set is built with.
  int nnt_depth = 3;
  Workload workload;
  // Query add/remove schedule, applied in list order within a timestamp.
  std::vector<ChurnOp> churn;
};

// True when `query` is registered before timestamp 0's checks: no churn op
// names it, or the first one naming it is a remove.
bool StartsRegistered(const FuzzCase& c, int query);

// Total edge volume of a case: query edges + start-graph edges + insertion
// ops across all batches. This is the size metric minimization reports
// ("minimized to N edges") and tests bound.
int TotalEdges(const FuzzCase& c);

// Longest stream horizon (max NumTimestamps over streams; 1 when empty).
int Horizon(const FuzzCase& c);

// One-line shape summary, e.g. "streams=2 queries=3 ts=6 edges=17".
// Deterministic — safe for the fuzzer's reproducible log.
std::string DescribeCase(const FuzzCase& c);

// Rebuilds a stream from a start graph and an explicit batch list (the
// minimizer's editing primitive — GraphStream itself is append-only).
GraphStream RebuildStream(Graph start, const std::vector<GraphChange>& batches);

// The change batches of `stream`, timestamps 1..NumTimestamps-1.
std::vector<GraphChange> BatchesOf(const GraphStream& stream);

}  // namespace gsps

#endif  // GSPS_FUZZ_FUZZ_CASE_H_
