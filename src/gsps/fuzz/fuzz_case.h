// The unit of work of the differential fuzzer: one complete randomized
// scenario — a query set, a set of evolving streams, and the engine
// configuration under test. Cases are value types: the minimizer edits
// copies freely and the replay format (replay.h) round-trips them exactly.

#ifndef GSPS_FUZZ_FUZZ_CASE_H_
#define GSPS_FUZZ_FUZZ_CASE_H_

#include <string>
#include <vector>

#include "gsps/graph/graph_change.h"
#include "gsps/graph/graph_stream.h"
#include "gsps/graph/workload_io.h"

namespace gsps {

struct FuzzCase {
  // NNT depth every engine in the oracle set is built with.
  int nnt_depth = 3;
  Workload workload;
};

// Total edge volume of a case: query edges + start-graph edges + insertion
// ops across all batches. This is the size metric minimization reports
// ("minimized to N edges") and tests bound.
int TotalEdges(const FuzzCase& c);

// Longest stream horizon (max NumTimestamps over streams; 1 when empty).
int Horizon(const FuzzCase& c);

// One-line shape summary, e.g. "streams=2 queries=3 ts=6 edges=17".
// Deterministic — safe for the fuzzer's reproducible log.
std::string DescribeCase(const FuzzCase& c);

// Rebuilds a stream from a start graph and an explicit batch list (the
// minimizer's editing primitive — GraphStream itself is append-only).
GraphStream RebuildStream(Graph start, const std::vector<GraphChange>& batches);

// The change batches of `stream`, timestamps 1..NumTimestamps-1.
std::vector<GraphChange> BatchesOf(const GraphStream& stream);

}  // namespace gsps

#endif  // GSPS_FUZZ_FUZZ_CASE_H_
