#include "gsps/fuzz/oracles.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "gsps/baselines/gindex/gindex_filter.h"
#include "gsps/baselines/graphgrep/graphgrep_filter.h"
#include "gsps/engine/continuous_query_engine.h"
#include "gsps/engine/parallel_query_engine.h"
#include "gsps/engine/pipelined_query_engine.h"
#include "gsps/fuzz/replay.h"
#include "gsps/graph/delta_codec.h"
#include "gsps/graph/graph_io.h"
#include "gsps/graph/stream_io.h"
#include "gsps/iso/subgraph_isomorphism.h"
#include "gsps/nnt/dimension.h"
#include "gsps/nnt/nnt_set.h"

namespace gsps {
namespace {

constexpr int kParallelThreadCounts[] = {1, 2, 4};

std::string At(int timestamp, int stream) {
  return "t=" + std::to_string(timestamp) + " stream=" +
         std::to_string(stream);
}

// Structural stream equality (GraphStream has no operator==).
bool StreamsEqual(const GraphStream& a, const GraphStream& b) {
  if (a.NumTimestamps() != b.NumTimestamps()) return false;
  if (!(a.StartGraph() == b.StartGraph())) return false;
  for (int t = 1; t < a.NumTimestamps(); ++t) {
    if (!(a.ChangeAt(t) == b.ChangeAt(t))) return false;
  }
  return true;
}

// Oracle 4: every text format must reproduce its input exactly.
std::optional<std::string> CheckRoundTrips(const FuzzCase& c) {
  for (size_t i = 0; i < c.workload.streams.size(); ++i) {
    const GraphStream& stream = c.workload.streams[i];
    const std::string text = FormatStream(stream);
    IoError error;
    std::optional<GraphStream> parsed = ParseStream(text, &error);
    if (!parsed) {
      return "roundtrip: stream " + std::to_string(i) +
             " failed to re-parse (" + error.ToString() + ")";
    }
    if (!StreamsEqual(stream, *parsed)) {
      return "roundtrip: stream " + std::to_string(i) +
             " changed across Format/Parse";
    }
    if (FormatStream(*parsed) != text) {
      return "roundtrip: stream " + std::to_string(i) +
             " format is not a fixed point";
    }
  }
  {
    const std::string text = FormatGraphs(c.workload.queries);
    IoError error;
    std::optional<std::vector<Graph>> parsed = ParseGraphs(text, &error);
    if (!parsed) {
      return "roundtrip: query set failed to re-parse (" + error.ToString() +
             ")";
    }
    if (parsed->size() != c.workload.queries.size()) {
      return "roundtrip: query set changed size across Format/Parse";
    }
    for (size_t q = 0; q < parsed->size(); ++q) {
      if (!((*parsed)[q] == c.workload.queries[q])) {
        return "roundtrip: query " + std::to_string(q) +
               " changed across Format/Parse";
      }
    }
  }
  {
    const std::string text = FormatReplay(c);
    IoError error;
    std::optional<FuzzCase> parsed = ParseReplay(text, &error);
    if (!parsed) {
      return "roundtrip: replay failed to re-parse (" + error.ToString() +
             ")";
    }
    if (FormatReplay(*parsed) != text) {
      return "roundtrip: replay format is not a fixed point";
    }
    if (parsed->nnt_depth != c.nnt_depth) {
      return "roundtrip: replay depth changed across Format/Parse";
    }
  }
  return std::nullopt;
}

// Oracle 7: every stream and query must survive text -> binary -> text
// through delta_codec. Three layers per object: the decoded value equals
// the original structurally, re-formatting it reproduces the original text
// byte for byte, and re-encoding it is a binary fixed point.
std::optional<std::string> CheckCodecRoundTrips(const FuzzCase& c) {
  for (size_t i = 0; i < c.workload.streams.size(); ++i) {
    const GraphStream& stream = c.workload.streams[i];
    const std::string binary = EncodeStream(stream);
    IoError error;
    std::optional<GraphStream> decoded = DecodeStream(binary, &error);
    if (!decoded) {
      return "codec-roundtrip: stream " + std::to_string(i) +
             " failed to decode (" + error.ToString() + ")";
    }
    if (!StreamsEqual(stream, *decoded)) {
      return "codec-roundtrip: stream " + std::to_string(i) +
             " changed across Encode/Decode";
    }
    if (FormatStream(*decoded) != FormatStream(stream)) {
      return "codec-roundtrip: stream " + std::to_string(i) +
             " text format changed across Encode/Decode";
    }
    if (EncodeStream(*decoded) != binary) {
      return "codec-roundtrip: stream " + std::to_string(i) +
             " encoding is not a fixed point";
    }
  }
  for (size_t q = 0; q < c.workload.queries.size(); ++q) {
    const Graph& query = c.workload.queries[q];
    const std::string binary = EncodeGraph(query);
    IoError error;
    std::optional<Graph> decoded = DecodeGraph(binary, &error);
    if (!decoded) {
      return "codec-roundtrip: query " + std::to_string(q) +
             " failed to decode (" + error.ToString() + ")";
    }
    if (!(*decoded == query)) {
      return "codec-roundtrip: query " + std::to_string(q) +
             " changed across Encode/Decode";
    }
    if (EncodeGraph(*decoded) != binary) {
      return "codec-roundtrip: query " + std::to_string(q) +
             " encoding is not a fixed point";
    }
  }
  return std::nullopt;
}

// Oracle 2: the incrementally maintained NntSet must match a from-scratch
// rebuild of the current graph, tree by tree. Branch multisets are
// dimension-table independent, so a private table for the rebuild is fine.
std::optional<std::string> CheckNntRebuild(const NntSet& maintained,
                                           const Graph& graph, int depth,
                                           int timestamp, int stream) {
  if (!maintained.Validate(graph)) {
    return "nnt-validate: internal invariants violated, " +
           At(timestamp, stream);
  }
  DimensionTable table;
  NntSet fresh(depth, &table);
  fresh.Build(graph);
  const std::vector<VertexId> maintained_roots = maintained.Roots();
  const std::vector<VertexId> fresh_roots = fresh.Roots();
  if (maintained_roots != fresh_roots) {
    return "nnt-rebuild: root sets differ, " + At(timestamp, stream) +
           " (maintained " + std::to_string(maintained_roots.size()) +
           " roots, rebuild " + std::to_string(fresh_roots.size()) + ")";
  }
  for (const VertexId root : maintained_roots) {
    if (maintained.BranchesOf(root) != fresh.BranchesOf(root)) {
      return "nnt-rebuild: tree of vertex " + std::to_string(root) +
             " differs from a from-scratch rebuild, " + At(timestamp, stream);
    }
  }
  return std::nullopt;
}

}  // namespace

std::vector<int> MissingCandidates(const std::vector<int>& candidates,
                                   const std::vector<int>& required) {
  std::vector<int> missing;
  for (const int value : required) {
    if (!std::binary_search(candidates.begin(), candidates.end(), value)) {
      missing.push_back(value);
    }
  }
  return missing;
}

std::string DescribeSet(const std::vector<int>& values) {
  std::string out = "{";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(values[i]);
  }
  out += "}";
  return out;
}

std::optional<std::string> CheckNoFalseNegatives(
    const std::string& filter_name, int timestamp, int stream,
    const std::vector<int>& candidates, const std::vector<int>& truth) {
  const std::vector<int> missing = MissingCandidates(candidates, truth);
  if (missing.empty()) return std::nullopt;
  return "false-negative: filter=" + filter_name + " " +
         At(timestamp, stream) + " missing=" + DescribeSet(missing) +
         " candidates=" + DescribeSet(candidates) +
         " truth=" + DescribeSet(truth);
}

std::optional<std::string> CheckStrategiesAgree(
    const std::string& name_a, const std::vector<int>& candidates_a,
    const std::string& name_b, const std::vector<int>& candidates_b,
    int timestamp, int stream) {
  if (candidates_a == candidates_b) return std::nullopt;
  return "strategy-disagreement: " + name_a + "=" +
         DescribeSet(candidates_a) + " vs " + name_b + "=" +
         DescribeSet(candidates_b) + ", " + At(timestamp, stream);
}

std::optional<std::string> RunOracles(const FuzzCase& c,
                                      const OracleOptions& options) {
  const std::vector<Graph>& queries = c.workload.queries;
  const std::vector<GraphStream>& streams = c.workload.streams;
  const int num_streams = static_cast<int>(streams.size());
  const int num_queries = static_cast<int>(queries.size());

  if (options.check_roundtrip) {
    if (auto failure = CheckRoundTrips(c)) return failure;
  }
  if (options.check_codec) {
    if (auto failure = CheckCodecRoundTrips(c)) return failure;
  }

  // Churn bookkeeping (oracle 6): which workload queries are currently
  // registered, and the engine-slot <-> workload-query maps. Without a
  // schedule every query is registered up front and the maps stay the
  // identity, so every check below degenerates to its pre-churn form.
  const bool churn_active = options.check_churn && !c.churn.empty();
  std::vector<char> registered(static_cast<size_t>(num_queries), 1);
  if (churn_active) {
    for (int q = 0; q < num_queries; ++q) {
      registered[static_cast<size_t>(q)] = StartsRegistered(c, q) ? 1 : 0;
    }
  }
  std::vector<int> query_to_engine(static_cast<size_t>(num_queries), -1);
  std::vector<int> engine_to_query;
  for (int q = 0; q < num_queries; ++q) {
    if (registered[static_cast<size_t>(q)] == 0) continue;
    query_to_engine[static_cast<size_t>(q)] =
        static_cast<int>(engine_to_query.size());
    engine_to_query.push_back(q);
  }
  // Engine-slot-space candidate list -> ascending workload-query ids
  // (retired slots cannot appear in candidate lists, but tolerate them).
  const auto to_query_space = [&engine_to_query](
                                  const std::vector<int>& slots) {
    std::vector<int> out;
    out.reserve(slots.size());
    for (const int slot : slots) {
      const int q = engine_to_query[static_cast<size_t>(slot)];
      if (q >= 0) out.push_back(q);
    }
    std::sort(out.begin(), out.end());
    return out;
  };

  // One sequential engine per join strategy.
  struct NamedEngine {
    std::string name;
    std::unique_ptr<ContinuousQueryEngine> engine;
  };
  std::vector<NamedEngine> engines;
  const std::pair<JoinKind, const char*> kinds[] = {
      {JoinKind::kNestedLoop, "NL"},
      {JoinKind::kDominatedSetCover, "DSC"},
      {JoinKind::kSkylineEarlyStop, "Skyline"},
  };
  for (const auto& [kind, name] : kinds) {
    EngineOptions engine_options;
    engine_options.nnt_depth = c.nnt_depth;
    engine_options.join_kind = kind;
    NamedEngine named{name, std::make_unique<ContinuousQueryEngine>(
                                engine_options)};
    for (const int q : engine_to_query) {
      named.engine->AddQuery(queries[static_cast<size_t>(q)]);
    }
    for (const GraphStream& s : streams) named.engine->AddStream(s.StartGraph());
    named.engine->Start();
    engines.push_back(std::move(named));
  }
  ContinuousQueryEngine& reference = *engines[1].engine;  // DSC.

  std::vector<std::unique_ptr<ParallelQueryEngine>> parallel_engines;
  if (options.check_parallel) {
    for (const int threads : kParallelThreadCounts) {
      ParallelEngineOptions parallel_options;
      parallel_options.engine.nnt_depth = c.nnt_depth;
      parallel_options.engine.join_kind = JoinKind::kDominatedSetCover;
      parallel_options.num_threads = threads;
      auto engine = std::make_unique<ParallelQueryEngine>(parallel_options);
      for (const int q : engine_to_query) {
        engine->AddQuery(queries[static_cast<size_t>(q)]);
      }
      for (const GraphStream& s : streams) engine->AddStream(s.StartGraph());
      engine->Start();
      parallel_engines.push_back(std::move(engine));
    }
  }

  // Oracle 8: the barrier-free engine, deliberately configured to stress
  // its concurrency machinery — tiny lanes (router backpressure on nearly
  // every forward) and fragmented batches (worker-side coalescing).
  std::unique_ptr<PipelinedQueryEngine> pipelined;
  if (options.check_pipelined) {
    PipelinedEngineOptions pipelined_options;
    pipelined_options.engine.nnt_depth = c.nnt_depth;
    pipelined_options.engine.join_kind = JoinKind::kDominatedSetCover;
    pipelined_options.num_threads = 3;
    pipelined_options.lane_capacity = 8;
    pipelined = std::make_unique<PipelinedQueryEngine>(pipelined_options);
    for (const int q : engine_to_query) {
      pipelined->AddQuery(queries[static_cast<size_t>(q)]);
    }
    for (const GraphStream& s : streams) pipelined->AddStream(s.StartGraph());
    pipelined->Start();
  }

  GraphGrepFilter graphgrep;
  if (options.check_baselines) graphgrep.SetQueries(queries);

  // Materialized per-stream graphs (the VF2 ground truth substrate).
  std::vector<Graph> current;
  current.reserve(static_cast<size_t>(num_streams));
  for (const GraphStream& s : streams) current.push_back(s.StartGraph());

  const bool need_truth = options.check_strategies || options.check_baselines;
  // Churn at t=0 lands after the pipelined engine's epoch-0 snapshot and
  // before any further marker, so that snapshot is legitimately stale; the
  // t=0 comparison is skipped then (t>=1 re-snapshots at AdvanceEpoch).
  bool churned_at_epoch0 = false;
  const int horizon = Horizon(c);
  for (int t = 0; t < horizon; ++t) {
    if (t > 0) {
      std::vector<GraphChange> batches(static_cast<size_t>(num_streams));
      for (int i = 0; i < num_streams; ++i) {
        const GraphStream& s = streams[static_cast<size_t>(i)];
        if (t < s.NumTimestamps()) batches[static_cast<size_t>(i)] = s.ChangeAt(t);
      }
      for (NamedEngine& named : engines) {
        for (int i = 0; i < num_streams; ++i) {
          named.engine->ApplyChange(i, batches[static_cast<size_t>(i)]);
        }
      }
      for (auto& engine : parallel_engines) engine->ApplyChanges(batches);
      if (pipelined) {
        // Two fragments per (stream, timestamp): the worker must merge
        // them back into one batch before NNT maintenance or the
        // deletions-first protocol (and so the results) would diverge.
        for (int i = 0; i < num_streams; ++i) {
          const std::vector<EdgeOp>& ops =
              batches[static_cast<size_t>(i)].ops;
          const auto half =
              ops.begin() + static_cast<std::ptrdiff_t>(ops.size() / 2);
          IngestEvent first;
          first.stream = i;
          first.timestamp = t;
          first.change.ops.assign(ops.begin(), half);
          IngestEvent second;
          second.stream = i;
          second.timestamp = t;
          second.change.ops.assign(half, ops.end());
          if (!pipelined->Ingest(std::move(first)) ||
              !pipelined->Ingest(std::move(second))) {
            return "pipelined: ingest rejected at t=" + std::to_string(t);
          }
        }
      }
      for (int i = 0; i < num_streams; ++i) {
        ApplyChange(batches[static_cast<size_t>(i)],
                    current[static_cast<size_t>(i)]);
      }
    }

    if (churn_active) {
      // Apply this timestamp's lifecycle ops to every engine in lock-step;
      // skip-safe per the ChurnOp contract.
      for (const ChurnOp& op : c.churn) {
        if (op.timestamp != t) continue;
        if (op.query < 0 || op.query >= num_queries) continue;
        const size_t q = static_cast<size_t>(op.query);
        if (op.add == (registered[q] != 0)) continue;
        if (op.add) {
          int slot = -1;
          bool agree = true;
          for (NamedEngine& named : engines) {
            const int id =
                named.engine->AddQueryDynamic(queries[q]);
            if (slot < 0) slot = id;
            agree = agree && id == slot;
          }
          for (auto& engine : parallel_engines) {
            agree = agree && engine->AddQueryDynamic(queries[q]) == slot;
          }
          if (pipelined) {
            agree = agree && pipelined->AddQueryDynamic(queries[q]) == slot;
          }
          if (!agree) {
            return "churn: engines disagree on the slot for query " +
                   std::to_string(op.query) + " at t=" + std::to_string(t);
          }
          if (slot == static_cast<int>(engine_to_query.size())) {
            engine_to_query.push_back(op.query);
          } else {
            engine_to_query[static_cast<size_t>(slot)] = op.query;
          }
          query_to_engine[q] = slot;
          registered[q] = 1;
          if (t == 0) churned_at_epoch0 = true;
        } else {
          const int slot = query_to_engine[q];
          for (NamedEngine& named : engines) {
            named.engine->RemoveQueryDynamic(slot);
          }
          for (auto& engine : parallel_engines) {
            engine->RemoveQueryDynamic(slot);
          }
          if (pipelined) pipelined->RemoveQueryDynamic(slot);
          engine_to_query[static_cast<size_t>(slot)] = -1;
          query_to_engine[q] = -1;
          registered[q] = 0;
          if (t == 0) churned_at_epoch0 = true;
        }
      }
    }

    std::vector<std::vector<int>> truth(static_cast<size_t>(num_streams));
    if (need_truth) {
      for (int i = 0; i < num_streams; ++i) {
        for (int q = 0; q < num_queries; ++q) {
          if (IsSubgraphIsomorphic(queries[static_cast<size_t>(q)],
                                   current[static_cast<size_t>(i)])) {
            truth[static_cast<size_t>(i)].push_back(q);
          }
        }
      }
    }
    // Engines only know about registered queries, so their false-negative
    // obligation is the VF2 truth restricted to those (the baselines below
    // keep the full truth — they never churn).
    std::vector<std::vector<int>> engine_truth = truth;
    if (churn_active) {
      for (std::vector<int>& t_i : engine_truth) {
        t_i.erase(std::remove_if(t_i.begin(), t_i.end(),
                                 [&registered](int q) {
                                   return registered[static_cast<size_t>(
                                              q)] == 0;
                                 }),
                  t_i.end());
      }
    }

    if (options.check_strategies) {
      for (int i = 0; i < num_streams; ++i) {
        std::vector<std::vector<int>> candidate_sets;
        for (NamedEngine& named : engines) {
          candidate_sets.push_back(named.engine->CandidatesForStream(i));
        }
        for (size_t k = 0; k < engines.size(); ++k) {
          if (auto failure = CheckNoFalseNegatives(
                  engines[k].name, t, i, to_query_space(candidate_sets[k]),
                  engine_truth[static_cast<size_t>(i)])) {
            return failure;
          }
          if (k > 0) {
            if (auto failure = CheckStrategiesAgree(
                    engines[0].name, candidate_sets[0], engines[k].name,
                    candidate_sets[k], t, i)) {
              return failure;
            }
          }
        }
      }
    }

    if (options.check_incremental) {
      // Oracle 5: the delta-maintained verdicts of every strategy engine
      // must equal a from-scratch strategy rebuild on the same NPVs.
      for (NamedEngine& named : engines) {
        for (int i = 0; i < num_streams; ++i) {
          const std::vector<int> cached = named.engine->CandidatesForStream(i);
          const std::vector<int> scratch =
              named.engine->RecomputeCandidatesFromScratch(i);
          if (cached != scratch) {
            return "incremental-divergence: strategy=" + named.name + " " +
                   At(t, i) + " cached=" + DescribeSet(cached) +
                   " scratch=" + DescribeSet(scratch);
          }
        }
      }
    }

    if (churn_active) {
      // Oracle 6: each churned engine must be indistinguishable from a
      // freshly built engine holding only the currently registered queries,
      // replayed from the start graphs to this timestamp.
      for (size_t k = 0; k < engines.size(); ++k) {
        EngineOptions engine_options;
        engine_options.nnt_depth = c.nnt_depth;
        engine_options.join_kind = kinds[k].first;
        ContinuousQueryEngine fresh(engine_options);
        std::vector<int> fresh_to_query;
        for (int q = 0; q < num_queries; ++q) {
          if (registered[static_cast<size_t>(q)] == 0) continue;
          fresh.AddQuery(queries[static_cast<size_t>(q)]);
          fresh_to_query.push_back(q);
        }
        for (const GraphStream& s : streams) fresh.AddStream(s.StartGraph());
        fresh.Start();
        for (int tt = 1; tt <= t; ++tt) {
          for (int i = 0; i < num_streams; ++i) {
            const GraphStream& s = streams[static_cast<size_t>(i)];
            if (tt < s.NumTimestamps()) fresh.ApplyChange(i, s.ChangeAt(tt));
          }
        }
        for (int i = 0; i < num_streams; ++i) {
          const std::vector<int> churned =
              to_query_space(engines[k].engine->CandidatesForStream(i));
          // Fresh ids are 0..m-1 in ascending registered-query order, so
          // the mapped list is already sorted.
          std::vector<int> fresh_candidates;
          for (const int id : fresh.CandidatesForStream(i)) {
            fresh_candidates.push_back(
                fresh_to_query[static_cast<size_t>(id)]);
          }
          if (churned != fresh_candidates) {
            return "churn-divergence: strategy=" + engines[k].name + " " +
                   At(t, i) + " churned=" + DescribeSet(churned) +
                   " fresh=" + DescribeSet(fresh_candidates);
          }
        }
      }
    }

    if (options.check_parallel) {
      const std::vector<std::pair<int, int>> sequential_pairs =
          reference.AllCandidatePairs();
      for (size_t p = 0; p < parallel_engines.size(); ++p) {
        const std::vector<std::pair<int, int>> parallel_pairs =
            parallel_engines[p]->AllCandidatePairs();
        if (parallel_pairs != sequential_pairs) {
          return "parallel-divergence: threads=" +
                 std::to_string(kParallelThreadCounts[p]) + " reported " +
                 std::to_string(parallel_pairs.size()) +
                 " pairs vs sequential " +
                 std::to_string(sequential_pairs.size()) +
                 " at t=" + std::to_string(t);
        }
      }
    }

    if (pipelined && (t > 0 || !churned_at_epoch0)) {
      // Oracle 8: close the epoch at t and compare the snapshot reads —
      // pairs byte-for-byte, and transitions stream by stream — against
      // the sequential reference.
      if (t > 0) pipelined->AdvanceEpoch(t);
      const std::vector<std::pair<int, int>> sequential_pairs =
          reference.AllCandidatePairs();
      const std::vector<std::pair<int, int>> pipelined_pairs =
          pipelined->AllCandidatePairs();
      if (pipelined_pairs != sequential_pairs) {
        return "pipelined-divergence: reported " +
               std::to_string(pipelined_pairs.size()) +
               " pairs vs sequential " +
               std::to_string(sequential_pairs.size()) +
               " at t=" + std::to_string(t);
      }
      for (int i = 0; i < num_streams; ++i) {
        std::vector<int> seq_current = reference.CandidatesForStream(i);
        std::vector<int> pipe_current = pipelined->CandidatesForStream(i);
        CandidateTransitions seq_tr;
        CandidateTransitions pipe_tr;
        reference.ObserveTransitions(i, &seq_current, &seq_tr);
        pipelined->ObserveTransitions(i, &pipe_current, &pipe_tr);
        if (pipe_tr.appeared != seq_tr.appeared ||
            pipe_tr.disappeared != seq_tr.disappeared) {
          return "pipelined-transition-divergence: " + At(t, i) +
                 " appeared=" + DescribeSet(pipe_tr.appeared) +
                 " vs " + DescribeSet(seq_tr.appeared) +
                 " disappeared=" + DescribeSet(pipe_tr.disappeared) +
                 " vs " + DescribeSet(seq_tr.disappeared);
        }
      }
    }

    if (options.check_nnt_rebuild) {
      for (int i = 0; i < num_streams; ++i) {
        if (auto failure = CheckNntRebuild(reference.StreamNnts(i),
                                           current[static_cast<size_t>(i)],
                                           c.nnt_depth, t, i)) {
          return failure;
        }
      }
    }

    if (options.check_baselines) {
      for (int i = 0; i < num_streams; ++i) {
        if (auto failure = CheckNoFalseNegatives(
                "GraphGrep", t, i,
                graphgrep.CandidateQueries(current[static_cast<size_t>(i)]),
                truth[static_cast<size_t>(i)])) {
          return failure;
        }
      }
      if (num_streams > 0) {
        // Re-mined from the live snapshots each timestamp, as the paper's
        // stream experiments do.
        GindexFilter gindex(GindexFilter::Gindex2Options());
        gindex.BuildIndex(current);
        for (int q = 0; q < num_queries; ++q) {
          std::vector<int> required;
          for (int i = 0; i < num_streams; ++i) {
            const std::vector<int>& t_i = truth[static_cast<size_t>(i)];
            if (std::binary_search(t_i.begin(), t_i.end(), q)) {
              required.push_back(i);
            }
          }
          const std::vector<int> candidates = gindex.CandidateGraphsFor(
              queries[static_cast<size_t>(q)]);
          const std::vector<int> missing =
              MissingCandidates(candidates, required);
          if (!missing.empty()) {
            return "false-negative: filter=gIndex2 t=" + std::to_string(t) +
                   " query=" + std::to_string(q) +
                   " missing streams=" + DescribeSet(missing) +
                   " candidates=" + DescribeSet(candidates);
          }
        }
      }
    }
  }

  if (pipelined) {
    // Oracle 8 wrap-up: every routed event must have been delivered and
    // applied in per-stream timestamp order on its lane.
    pipelined->Shutdown();
    for (int s = 0; s < pipelined->num_shards(); ++s) {
      const PipelinedQueryEngine::LaneReport report = pipelined->ReportLane(s);
      if (report.lane.accepted != report.lane.delivered) {
        return "pipelined-lost-events: shard=" + std::to_string(s) +
               " accepted=" + std::to_string(report.lane.accepted) +
               " delivered=" + std::to_string(report.lane.delivered);
      }
      if (report.order_violations != 0) {
        return "pipelined-reordered: shard=" + std::to_string(s) +
               " violations=" + std::to_string(report.order_violations);
      }
    }
  }
  return std::nullopt;
}

}  // namespace gsps
