#include "gsps/fuzz/oracles.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "gsps/baselines/gindex/gindex_filter.h"
#include "gsps/baselines/graphgrep/graphgrep_filter.h"
#include "gsps/engine/continuous_query_engine.h"
#include "gsps/engine/parallel_query_engine.h"
#include "gsps/fuzz/replay.h"
#include "gsps/graph/graph_io.h"
#include "gsps/graph/stream_io.h"
#include "gsps/iso/subgraph_isomorphism.h"
#include "gsps/nnt/dimension.h"
#include "gsps/nnt/nnt_set.h"

namespace gsps {
namespace {

constexpr int kParallelThreadCounts[] = {1, 2, 4};

std::string At(int timestamp, int stream) {
  return "t=" + std::to_string(timestamp) + " stream=" +
         std::to_string(stream);
}

// Structural stream equality (GraphStream has no operator==).
bool StreamsEqual(const GraphStream& a, const GraphStream& b) {
  if (a.NumTimestamps() != b.NumTimestamps()) return false;
  if (!(a.StartGraph() == b.StartGraph())) return false;
  for (int t = 1; t < a.NumTimestamps(); ++t) {
    if (!(a.ChangeAt(t) == b.ChangeAt(t))) return false;
  }
  return true;
}

// Oracle 4: every text format must reproduce its input exactly.
std::optional<std::string> CheckRoundTrips(const FuzzCase& c) {
  for (size_t i = 0; i < c.workload.streams.size(); ++i) {
    const GraphStream& stream = c.workload.streams[i];
    const std::string text = FormatStream(stream);
    IoError error;
    std::optional<GraphStream> parsed = ParseStream(text, &error);
    if (!parsed) {
      return "roundtrip: stream " + std::to_string(i) +
             " failed to re-parse (" + error.ToString() + ")";
    }
    if (!StreamsEqual(stream, *parsed)) {
      return "roundtrip: stream " + std::to_string(i) +
             " changed across Format/Parse";
    }
    if (FormatStream(*parsed) != text) {
      return "roundtrip: stream " + std::to_string(i) +
             " format is not a fixed point";
    }
  }
  {
    const std::string text = FormatGraphs(c.workload.queries);
    IoError error;
    std::optional<std::vector<Graph>> parsed = ParseGraphs(text, &error);
    if (!parsed) {
      return "roundtrip: query set failed to re-parse (" + error.ToString() +
             ")";
    }
    if (parsed->size() != c.workload.queries.size()) {
      return "roundtrip: query set changed size across Format/Parse";
    }
    for (size_t q = 0; q < parsed->size(); ++q) {
      if (!((*parsed)[q] == c.workload.queries[q])) {
        return "roundtrip: query " + std::to_string(q) +
               " changed across Format/Parse";
      }
    }
  }
  {
    const std::string text = FormatReplay(c);
    IoError error;
    std::optional<FuzzCase> parsed = ParseReplay(text, &error);
    if (!parsed) {
      return "roundtrip: replay failed to re-parse (" + error.ToString() +
             ")";
    }
    if (FormatReplay(*parsed) != text) {
      return "roundtrip: replay format is not a fixed point";
    }
    if (parsed->nnt_depth != c.nnt_depth) {
      return "roundtrip: replay depth changed across Format/Parse";
    }
  }
  return std::nullopt;
}

// Oracle 2: the incrementally maintained NntSet must match a from-scratch
// rebuild of the current graph, tree by tree. Branch multisets are
// dimension-table independent, so a private table for the rebuild is fine.
std::optional<std::string> CheckNntRebuild(const NntSet& maintained,
                                           const Graph& graph, int depth,
                                           int timestamp, int stream) {
  if (!maintained.Validate(graph)) {
    return "nnt-validate: internal invariants violated, " +
           At(timestamp, stream);
  }
  DimensionTable table;
  NntSet fresh(depth, &table);
  fresh.Build(graph);
  const std::vector<VertexId> maintained_roots = maintained.Roots();
  const std::vector<VertexId> fresh_roots = fresh.Roots();
  if (maintained_roots != fresh_roots) {
    return "nnt-rebuild: root sets differ, " + At(timestamp, stream) +
           " (maintained " + std::to_string(maintained_roots.size()) +
           " roots, rebuild " + std::to_string(fresh_roots.size()) + ")";
  }
  for (const VertexId root : maintained_roots) {
    if (maintained.BranchesOf(root) != fresh.BranchesOf(root)) {
      return "nnt-rebuild: tree of vertex " + std::to_string(root) +
             " differs from a from-scratch rebuild, " + At(timestamp, stream);
    }
  }
  return std::nullopt;
}

}  // namespace

std::vector<int> MissingCandidates(const std::vector<int>& candidates,
                                   const std::vector<int>& required) {
  std::vector<int> missing;
  for (const int value : required) {
    if (!std::binary_search(candidates.begin(), candidates.end(), value)) {
      missing.push_back(value);
    }
  }
  return missing;
}

std::string DescribeSet(const std::vector<int>& values) {
  std::string out = "{";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(values[i]);
  }
  out += "}";
  return out;
}

std::optional<std::string> CheckNoFalseNegatives(
    const std::string& filter_name, int timestamp, int stream,
    const std::vector<int>& candidates, const std::vector<int>& truth) {
  const std::vector<int> missing = MissingCandidates(candidates, truth);
  if (missing.empty()) return std::nullopt;
  return "false-negative: filter=" + filter_name + " " +
         At(timestamp, stream) + " missing=" + DescribeSet(missing) +
         " candidates=" + DescribeSet(candidates) +
         " truth=" + DescribeSet(truth);
}

std::optional<std::string> CheckStrategiesAgree(
    const std::string& name_a, const std::vector<int>& candidates_a,
    const std::string& name_b, const std::vector<int>& candidates_b,
    int timestamp, int stream) {
  if (candidates_a == candidates_b) return std::nullopt;
  return "strategy-disagreement: " + name_a + "=" +
         DescribeSet(candidates_a) + " vs " + name_b + "=" +
         DescribeSet(candidates_b) + ", " + At(timestamp, stream);
}

std::optional<std::string> RunOracles(const FuzzCase& c,
                                      const OracleOptions& options) {
  const std::vector<Graph>& queries = c.workload.queries;
  const std::vector<GraphStream>& streams = c.workload.streams;
  const int num_streams = static_cast<int>(streams.size());
  const int num_queries = static_cast<int>(queries.size());

  if (options.check_roundtrip) {
    if (auto failure = CheckRoundTrips(c)) return failure;
  }

  // One sequential engine per join strategy.
  struct NamedEngine {
    std::string name;
    std::unique_ptr<ContinuousQueryEngine> engine;
  };
  std::vector<NamedEngine> engines;
  const std::pair<JoinKind, const char*> kinds[] = {
      {JoinKind::kNestedLoop, "NL"},
      {JoinKind::kDominatedSetCover, "DSC"},
      {JoinKind::kSkylineEarlyStop, "Skyline"},
  };
  for (const auto& [kind, name] : kinds) {
    EngineOptions engine_options;
    engine_options.nnt_depth = c.nnt_depth;
    engine_options.join_kind = kind;
    NamedEngine named{name, std::make_unique<ContinuousQueryEngine>(
                                engine_options)};
    for (const Graph& q : queries) named.engine->AddQuery(q);
    for (const GraphStream& s : streams) named.engine->AddStream(s.StartGraph());
    named.engine->Start();
    engines.push_back(std::move(named));
  }
  ContinuousQueryEngine& reference = *engines[1].engine;  // DSC.

  std::vector<std::unique_ptr<ParallelQueryEngine>> parallel_engines;
  if (options.check_parallel) {
    for (const int threads : kParallelThreadCounts) {
      ParallelEngineOptions parallel_options;
      parallel_options.engine.nnt_depth = c.nnt_depth;
      parallel_options.engine.join_kind = JoinKind::kDominatedSetCover;
      parallel_options.num_threads = threads;
      auto engine = std::make_unique<ParallelQueryEngine>(parallel_options);
      for (const Graph& q : queries) engine->AddQuery(q);
      for (const GraphStream& s : streams) engine->AddStream(s.StartGraph());
      engine->Start();
      parallel_engines.push_back(std::move(engine));
    }
  }

  GraphGrepFilter graphgrep;
  if (options.check_baselines) graphgrep.SetQueries(queries);

  // Materialized per-stream graphs (the VF2 ground truth substrate).
  std::vector<Graph> current;
  current.reserve(static_cast<size_t>(num_streams));
  for (const GraphStream& s : streams) current.push_back(s.StartGraph());

  const bool need_truth = options.check_strategies || options.check_baselines;
  const int horizon = Horizon(c);
  for (int t = 0; t < horizon; ++t) {
    if (t > 0) {
      std::vector<GraphChange> batches(static_cast<size_t>(num_streams));
      for (int i = 0; i < num_streams; ++i) {
        const GraphStream& s = streams[static_cast<size_t>(i)];
        if (t < s.NumTimestamps()) batches[static_cast<size_t>(i)] = s.ChangeAt(t);
      }
      for (NamedEngine& named : engines) {
        for (int i = 0; i < num_streams; ++i) {
          named.engine->ApplyChange(i, batches[static_cast<size_t>(i)]);
        }
      }
      for (auto& engine : parallel_engines) engine->ApplyChanges(batches);
      for (int i = 0; i < num_streams; ++i) {
        ApplyChange(batches[static_cast<size_t>(i)],
                    current[static_cast<size_t>(i)]);
      }
    }

    std::vector<std::vector<int>> truth(static_cast<size_t>(num_streams));
    if (need_truth) {
      for (int i = 0; i < num_streams; ++i) {
        for (int q = 0; q < num_queries; ++q) {
          if (IsSubgraphIsomorphic(queries[static_cast<size_t>(q)],
                                   current[static_cast<size_t>(i)])) {
            truth[static_cast<size_t>(i)].push_back(q);
          }
        }
      }
    }

    if (options.check_strategies) {
      for (int i = 0; i < num_streams; ++i) {
        std::vector<std::vector<int>> candidate_sets;
        for (NamedEngine& named : engines) {
          candidate_sets.push_back(named.engine->CandidatesForStream(i));
        }
        for (size_t k = 0; k < engines.size(); ++k) {
          if (auto failure = CheckNoFalseNegatives(
                  engines[k].name, t, i, candidate_sets[k],
                  truth[static_cast<size_t>(i)])) {
            return failure;
          }
          if (k > 0) {
            if (auto failure = CheckStrategiesAgree(
                    engines[0].name, candidate_sets[0], engines[k].name,
                    candidate_sets[k], t, i)) {
              return failure;
            }
          }
        }
      }
    }

    if (options.check_incremental) {
      // Oracle 5: the delta-maintained verdicts of every strategy engine
      // must equal a from-scratch strategy rebuild on the same NPVs.
      for (NamedEngine& named : engines) {
        for (int i = 0; i < num_streams; ++i) {
          const std::vector<int> cached = named.engine->CandidatesForStream(i);
          const std::vector<int> scratch =
              named.engine->RecomputeCandidatesFromScratch(i);
          if (cached != scratch) {
            return "incremental-divergence: strategy=" + named.name + " " +
                   At(t, i) + " cached=" + DescribeSet(cached) +
                   " scratch=" + DescribeSet(scratch);
          }
        }
      }
    }

    if (options.check_parallel) {
      const std::vector<std::pair<int, int>> sequential_pairs =
          reference.AllCandidatePairs();
      for (size_t p = 0; p < parallel_engines.size(); ++p) {
        const std::vector<std::pair<int, int>> parallel_pairs =
            parallel_engines[p]->AllCandidatePairs();
        if (parallel_pairs != sequential_pairs) {
          return "parallel-divergence: threads=" +
                 std::to_string(kParallelThreadCounts[p]) + " reported " +
                 std::to_string(parallel_pairs.size()) +
                 " pairs vs sequential " +
                 std::to_string(sequential_pairs.size()) +
                 " at t=" + std::to_string(t);
        }
      }
    }

    if (options.check_nnt_rebuild) {
      for (int i = 0; i < num_streams; ++i) {
        if (auto failure = CheckNntRebuild(reference.StreamNnts(i),
                                           current[static_cast<size_t>(i)],
                                           c.nnt_depth, t, i)) {
          return failure;
        }
      }
    }

    if (options.check_baselines) {
      for (int i = 0; i < num_streams; ++i) {
        if (auto failure = CheckNoFalseNegatives(
                "GraphGrep", t, i,
                graphgrep.CandidateQueries(current[static_cast<size_t>(i)]),
                truth[static_cast<size_t>(i)])) {
          return failure;
        }
      }
      if (num_streams > 0) {
        // Re-mined from the live snapshots each timestamp, as the paper's
        // stream experiments do.
        GindexFilter gindex(GindexFilter::Gindex2Options());
        gindex.BuildIndex(current);
        for (int q = 0; q < num_queries; ++q) {
          std::vector<int> required;
          for (int i = 0; i < num_streams; ++i) {
            const std::vector<int>& t_i = truth[static_cast<size_t>(i)];
            if (std::binary_search(t_i.begin(), t_i.end(), q)) {
              required.push_back(i);
            }
          }
          const std::vector<int> candidates = gindex.CandidateGraphsFor(
              queries[static_cast<size_t>(q)]);
          const std::vector<int> missing =
              MissingCandidates(candidates, required);
          if (!missing.empty()) {
            return "false-negative: filter=gIndex2 t=" + std::to_string(t) +
                   " query=" + std::to_string(q) +
                   " missing streams=" + DescribeSet(missing) +
                   " candidates=" + DescribeSet(candidates);
          }
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace gsps
