#include "gsps/fuzz/workload_gen.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "gsps/gen/query_extractor.h"
#include "gsps/graph/graph_change.h"

namespace gsps {
namespace {

// Label sampler: uniform, or Zipf-skewed so one label dominates (the
// adversarial regime for dominance filtering — most dimensions collapse).
struct Labeler {
  int alphabet = 1;
  bool skewed = false;

  VertexLabel Draw(Rng& rng) const {
    if (alphabet <= 1) return 0;
    if (skewed) return static_cast<VertexLabel>(rng.Zipf(alphabet, 1.2));
    return static_cast<VertexLabel>(rng.UniformInt(0, alphabet - 1));
  }
};

// Random graph with up to `max_edges` edges: grown edge-by-edge, sometimes
// closing cycles, sometimes sprouting new vertices, plus occasional
// isolated vertices. Not necessarily connected — the matcher and the
// filters must cope with disconnected stream graphs.
Graph RandomGraph(int max_edges, const Labeler& vertex_labels,
                  const Labeler& edge_labels, Rng& rng) {
  Graph g;
  if (rng.Bernoulli(0.08)) return g;  // Empty graph (no vertices at all).
  g.AddVertex(vertex_labels.Draw(rng));
  const int target_edges = static_cast<int>(rng.UniformInt(0, max_edges));
  int attempts = 0;
  while (g.NumEdges() < target_edges && attempts < 8 * max_edges + 16) {
    ++attempts;
    const VertexId u =
        static_cast<VertexId>(rng.UniformInt(0, g.VertexIdBound() - 1));
    VertexId v;
    if (g.NumVertices() >= 2 && rng.Bernoulli(0.3)) {
      v = static_cast<VertexId>(rng.UniformInt(0, g.VertexIdBound() - 1));
      if (u == v || g.HasEdge(u, v)) continue;
    } else {
      v = g.AddVertex(vertex_labels.Draw(rng));
    }
    g.AddEdge(u, v, edge_labels.Draw(rng));
  }
  while (rng.Bernoulli(0.15)) g.AddVertex(vertex_labels.Draw(rng));
  return g;
}

// All live edges of `g` as (u, v) with u < v.
std::vector<std::pair<VertexId, VertexId>> EdgeList(const Graph& g) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (const VertexId u : g.VertexIds()) {
    for (const HalfEdge& half : g.Neighbors(u)) {
      if (half.to > u) edges.emplace_back(u, half.to);
    }
  }
  return edges;
}

// The label EnsureVertex must see for an op touching `id` to apply: the
// live vertex's label when it exists, a fresh draw otherwise.
VertexLabel EndpointLabel(const Graph& g, VertexId id,
                          const Labeler& vertex_labels, Rng& rng) {
  if (g.HasVertex(id)) return g.GetVertexLabel(id);
  return vertex_labels.Draw(rng);
}

// One change batch against the current replica `cur`. Ops are generated
// against the live graph so most apply, with deliberate no-ops mixed in.
GraphChange RandomBatch(const Graph& cur, int max_ops,
                        const Labeler& vertex_labels,
                        const Labeler& edge_labels, Rng& rng) {
  GraphChange batch;
  if (rng.Bernoulli(0.12)) return batch;  // Empty batch.
  const int num_ops = static_cast<int>(rng.UniformInt(1, max_ops));
  // Track deletions staged in this batch so re-insertions of just-deleted
  // edges (the delete-then-insert pattern of paper §III.B) can be emitted.
  std::vector<std::pair<VertexId, VertexId>> staged_deletes;
  for (int k = 0; k < num_ops; ++k) {
    const std::vector<std::pair<VertexId, VertexId>> edges = EdgeList(cur);
    const double roll = rng.UniformDouble();
    if (roll < 0.36) {
      // Insert a fresh edge: existing-to-existing (cycle) or to a brand-new
      // vertex, occasionally at a gap id (tombstone territory).
      VertexId u, v;
      if (cur.NumVertices() == 0) {
        u = 0;
        v = 1;
      } else {
        const std::vector<VertexId> ids = cur.VertexIds();
        u = ids[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(ids.size()) - 1))];
        if (cur.NumVertices() >= 2 && rng.Bernoulli(0.45)) {
          v = ids[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(ids.size()) - 1))];
          if (u == v || cur.HasEdge(u, v)) {
            v = cur.VertexIdBound() +
                static_cast<VertexId>(rng.UniformInt(0, 2));
          }
        } else {
          v = cur.VertexIdBound() +
              static_cast<VertexId>(rng.UniformInt(0, 2));
        }
      }
      VertexLabel u_label = EndpointLabel(cur, u, vertex_labels, rng);
      VertexLabel v_label = EndpointLabel(cur, v, vertex_labels, rng);
      if (rng.Bernoulli(0.06)) u_label += 1;  // Conflicting label: op skipped.
      batch.ops.push_back(
          EdgeOp::Insert(u, v, edge_labels.Draw(rng), u_label, v_label));
    } else if (roll < 0.56) {
      // Delete a random live edge.
      if (edges.empty()) {
        batch.ops.push_back(EdgeOp::Delete(0, 1));  // No-op delete.
      } else {
        const auto [u, v] = edges[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(edges.size()) - 1))];
        batch.ops.push_back(EdgeOp::Delete(u, v));
        staged_deletes.emplace_back(u, v);
      }
    } else if (roll < 0.64) {
      // Delete an absent edge (must be skipped cleanly).
      const VertexId bound = std::max<VertexId>(cur.VertexIdBound(), 2);
      batch.ops.push_back(EdgeOp::Delete(
          static_cast<VertexId>(rng.UniformInt(0, bound - 1)),
          static_cast<VertexId>(rng.UniformInt(0, bound + 1))));
    } else if (roll < 0.72) {
      // Duplicate insertion of a live edge (skipped by AddEdge).
      if (edges.empty()) continue;
      const auto [u, v] = edges[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(edges.size()) - 1))];
      batch.ops.push_back(EdgeOp::Insert(u, v, edge_labels.Draw(rng),
                                         cur.GetVertexLabel(u),
                                         cur.GetVertexLabel(v)));
    } else if (roll < 0.82) {
      // Re-insert an edge staged for deletion in this same batch (deletions
      // apply first, so this lands on a freshly cleared slot).
      if (staged_deletes.empty()) continue;
      const auto [u, v] = staged_deletes[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(staged_deletes.size()) - 1))];
      batch.ops.push_back(EdgeOp::Insert(u, v, edge_labels.Draw(rng),
                                         cur.GetVertexLabel(u),
                                         cur.GetVertexLabel(v)));
    } else {
      // Vertex wipe: delete every incident edge of one vertex.
      const std::vector<VertexId> ids = cur.VertexIds();
      if (ids.empty()) continue;
      const VertexId victim = ids[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(ids.size()) - 1))];
      for (const HalfEdge& half : cur.Neighbors(victim)) {
        batch.ops.push_back(EdgeOp::Delete(victim, half.to));
      }
    }
  }
  return batch;
}

// One query graph: either a planted subgraph of some stream state (so the
// no-false-negative oracle sees true positives, not just absences), a
// degenerate single vertex, or an independent random connected graph.
Graph RandomQuery(const GenParams& params,
                  const std::vector<GraphStream>& streams,
                  const Labeler& vertex_labels, const Labeler& edge_labels,
                  Rng& rng) {
  const double roll = rng.UniformDouble();
  if (roll < 0.45 && !streams.empty()) {
    const GraphStream& stream = streams[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(streams.size()) - 1))];
    const int t = static_cast<int>(
        rng.UniformInt(0, stream.NumTimestamps() - 1));
    const Graph snapshot = stream.MaterializeAt(t);
    if (snapshot.NumEdges() > 0) {
      const int num_edges = static_cast<int>(rng.UniformInt(
          1, std::min(params.max_query_edges, snapshot.NumEdges())));
      std::optional<Graph> extracted =
          ExtractConnectedSubgraph(snapshot, num_edges, rng);
      if (extracted) return *std::move(extracted);
    }
  }
  if (roll < 0.60) {
    Graph q;
    q.AddVertex(vertex_labels.Draw(rng));
    return q;
  }
  Graph q = RandomGraph(params.max_query_edges, vertex_labels, edge_labels,
                        rng);
  if (q.NumVertices() == 0) q.AddVertex(vertex_labels.Draw(rng));
  return q;
}

}  // namespace

FuzzCase GenerateCase(const GenParams& params, Rng& rng) {
  FuzzCase c;
  c.nnt_depth = params.nnt_depth > 0
                    ? params.nnt_depth
                    : static_cast<int>(rng.UniformInt(1, 3));
  Labeler vertex_labels{
      static_cast<int>(rng.UniformInt(1, params.max_vertex_labels)),
      rng.Bernoulli(0.5)};
  Labeler edge_labels{
      static_cast<int>(rng.UniformInt(1, params.max_edge_labels)), false};

  const int num_streams =
      static_cast<int>(rng.UniformInt(1, params.max_streams));
  for (int i = 0; i < num_streams; ++i) {
    Graph start =
        RandomGraph(params.max_start_edges, vertex_labels, edge_labels, rng);
    GraphStream stream(start);
    Graph cur = start;  // Replica advanced with engine semantics.
    const int num_timestamps =
        static_cast<int>(rng.UniformInt(1, params.max_timestamps));
    for (int t = 1; t < num_timestamps; ++t) {
      GraphChange batch = RandomBatch(cur, params.max_batch_ops,
                                      vertex_labels, edge_labels, rng);
      ApplyChange(batch, cur);
      stream.AppendChange(std::move(batch));
    }
    c.workload.streams.push_back(std::move(stream));
  }

  const int num_queries =
      static_cast<int>(rng.UniformInt(1, params.max_queries));
  for (int q = 0; q < num_queries; ++q) {
    c.workload.queries.push_back(RandomQuery(
        params, c.workload.streams, vertex_labels, edge_labels, rng));
  }

  // Query lifecycle schedule (oracle 6). Fully random (timestamp, verb,
  // query) triples: the skip-safe ChurnOp contract makes every combination
  // legal, including double adds/removes and a query whose first op is an
  // add (it then starts unregistered and enters mid-run).
  if (params.max_churn_ops > 0 && rng.Bernoulli(0.5)) {
    const int horizon = Horizon(c);
    const int num_ops =
        static_cast<int>(rng.UniformInt(1, params.max_churn_ops));
    for (int k = 0; k < num_ops; ++k) {
      c.churn.push_back(ChurnOp{
          static_cast<int>(rng.UniformInt(0, horizon - 1)),
          rng.Bernoulli(0.5),
          static_cast<int>(rng.UniformInt(0, num_queries - 1))});
    }
  }
  return c;
}

}  // namespace gsps
