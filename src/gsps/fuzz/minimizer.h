// Greedy test-case minimization: given a failing FuzzCase and a predicate
// that re-runs the oracles, shrink the case while it keeps failing.
//
// The reduction order works coarse to fine — whole streams, whole queries,
// trailing timestamps, individual batches, individual ops, then start-graph
// and query edges and stray vertices — repeating until a full sweep makes
// no progress (a 1-minimal case under these operators) or the attempt
// budget runs out. Every kept reduction re-ran the predicate, so the
// result is guaranteed to still fail; the caller serializes it as the
// replay regression file.

#ifndef GSPS_FUZZ_MINIMIZER_H_
#define GSPS_FUZZ_MINIMIZER_H_

#include <functional>

#include "gsps/fuzz/fuzz_case.h"

namespace gsps {

// Returns true when the case still exhibits the failure being chased.
using CasePredicate = std::function<bool(const FuzzCase&)>;

struct MinimizeOptions {
  // Upper bound on predicate evaluations (each one replays the whole case
  // through the oracle set, so this bounds total minimization cost).
  int max_attempts = 4000;
};

struct MinimizeResult {
  FuzzCase best;
  int attempts = 0;    // Predicate evaluations spent.
  int reductions = 0;  // Accepted shrink steps.
};

// `still_fails(failing)` must be true on entry; the returned case also
// satisfies it.
MinimizeResult Minimize(const FuzzCase& failing,
                        const CasePredicate& still_fails,
                        const MinimizeOptions& options = {});

}  // namespace gsps

#endif  // GSPS_FUZZ_MINIMIZER_H_
