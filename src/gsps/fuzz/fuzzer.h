// The differential fuzzing driver: generate a case per iteration, run the
// oracle set, and on the first failure shrink the case to a minimal replay.
//
// Determinism contract: RunFuzz's log and outcome are pure functions of
// FuzzOptions. Iteration k of seed S always fuzzes the case derived from
// CaseSeed(S, k) — independent of every other iteration — so a failure
// report names everything needed to reproduce it, and re-running with the
// same options replays the identical sequence (the CLI test diffs two runs
// byte for byte). Log lines never contain wall-clock time or pointers.

#ifndef GSPS_FUZZ_FUZZER_H_
#define GSPS_FUZZ_FUZZER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "gsps/fuzz/fuzz_case.h"
#include "gsps/fuzz/minimizer.h"
#include "gsps/fuzz/oracles.h"
#include "gsps/fuzz/workload_gen.h"

namespace gsps {

struct FuzzOptions {
  uint64_t seed = 1;
  int iterations = 100;
  GenParams gen;
  OracleOptions oracles;
  int minimize_attempts = 4000;
  // Log every iteration (shape summaries); failures always log.
  bool verbose = true;
};

struct FuzzOutcome {
  bool ok = true;
  // Set when !ok:
  int failing_iteration = -1;
  uint64_t case_seed = 0;        // CaseSeed(seed, failing_iteration).
  std::string failure;           // Diagnostic on the generated case.
  std::string minimized_failure; // Diagnostic on the minimized case.
  FuzzCase original;
  FuzzCase minimized;
  int minimize_attempts = 0;
  int minimize_reductions = 0;
};

// The per-iteration derivation (SplitMix64-style mixing), part of the seed
// protocol documented in EXPERIMENTS.md.
uint64_t CaseSeed(uint64_t seed, int iteration);

// Runs the loop. `log` receives one line at a time (no trailing newline);
// pass nullptr to discard.
FuzzOutcome RunFuzz(const FuzzOptions& options,
                    const std::function<void(const std::string&)>& log);

}  // namespace gsps

#endif  // GSPS_FUZZ_FUZZER_H_
