// Randomized FuzzCase synthesis. Seed-driven and fully deterministic: the
// same Rng state always produces the same case, which is what makes every
// fuzzer failure reproducible from (seed, iteration) alone.
//
// The generator is deliberately adversarial where example-based tests are
// not: empty and single-vertex graphs, isolated vertices, Zipf-skewed
// label alphabets (one label dominating), batches that delete absent
// edges, re-insert just-deleted edges, insert duplicates or conflicting
// endpoint labels (ops the engine must skip), introduce brand-new vertices
// with gap ids, and wipe out whole vertices edge by edge.

#ifndef GSPS_FUZZ_WORKLOAD_GEN_H_
#define GSPS_FUZZ_WORKLOAD_GEN_H_

#include "gsps/common/random.h"
#include "gsps/fuzz/fuzz_case.h"

namespace gsps {

struct GenParams {
  // Upper bounds; each case draws its actual shape uniformly at random.
  int max_queries = 4;
  int max_streams = 3;
  int max_timestamps = 8;  // Including timestamp 0.
  int max_query_edges = 6;
  int max_start_edges = 12;
  int max_batch_ops = 6;
  int max_vertex_labels = 4;
  int max_edge_labels = 2;
  // Fixed NNT depth, or 0 to draw uniformly from [1, 3] per case (depth 1
  // exercises the trivial-tree paths, 3 is the paper's default).
  int nnt_depth = 0;
  // Upper bound on query add/remove churn ops per case (about half the
  // cases draw a schedule at all); 0 disables churn generation entirely.
  // Schedules deliberately include skip-safe no-ops (double adds/removes)
  // and queries that only enter mid-run (first op is an add).
  int max_churn_ops = 5;
};

// Generates one case. Advances `rng`; all randomness flows through it.
FuzzCase GenerateCase(const GenParams& params, Rng& rng);

}  // namespace gsps

#endif  // GSPS_FUZZ_WORKLOAD_GEN_H_
