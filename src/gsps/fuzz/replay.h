// Replay files: a FuzzCase serialized to one self-contained text file, so
// every failure the fuzzer finds becomes a committed regression test.
//
// Format — a directive header followed by the workload format of
// graph/workload_io.h:
//
//   # gsps_fuzz replay v1        (comments/blank lines ignored anywhere)
//   depth <l>                    (NNT depth; optional, default 3)
//   churn <t> add|rm <q>         (query lifecycle schedule; optional,
//   ...                           repeated, applied in file order)
//   q 0
//   v 0 1
//   ...
//   s 0
//   v 0 1
//   t 1
//   + 0 1 0 1 1
//
// Directives (`depth`, `churn`) must appear before the first section.
// Format/Parse are exact inverses: Parse(Format(c)) == c and Format is a
// fixed point, which the fuzzer's round-trip oracle itself enforces.

#ifndef GSPS_FUZZ_REPLAY_H_
#define GSPS_FUZZ_REPLAY_H_

#include <optional>
#include <string>

#include "gsps/fuzz/fuzz_case.h"
#include "gsps/graph/graph_io.h"

namespace gsps {

// Bounds accepted for the `depth` directive. Depth 1 is the minimum the
// engine supports; 8 is far beyond the paper's useful range (Fig. 12 shows
// 3 suffices) and exists only to keep replays from configuring an
// exponential tree build.
inline constexpr int kMinReplayDepth = 1;
inline constexpr int kMaxReplayDepth = 8;

// Serializes a case.
std::string FormatReplay(const FuzzCase& c);

// Parses a replay file. Returns nullopt on malformed input, filling
// `error` when provided.
std::optional<FuzzCase> ParseReplay(const std::string& text,
                                    IoError* error = nullptr);

}  // namespace gsps

#endif  // GSPS_FUZZ_REPLAY_H_
