#include "gsps/fuzz/fuzz_case.h"

#include <algorithm>
#include <utility>

namespace gsps {

int TotalEdges(const FuzzCase& c) {
  int edges = 0;
  for (const Graph& q : c.workload.queries) edges += q.NumEdges();
  for (const GraphStream& s : c.workload.streams) {
    edges += s.StartGraph().NumEdges();
    for (int t = 1; t < s.NumTimestamps(); ++t) {
      for (const EdgeOp& op : s.ChangeAt(t).ops) {
        if (op.kind == EdgeOp::Kind::kInsert) ++edges;
      }
    }
  }
  return edges;
}

int Horizon(const FuzzCase& c) {
  int horizon = 1;
  for (const GraphStream& s : c.workload.streams) {
    horizon = std::max(horizon, s.NumTimestamps());
  }
  return horizon;
}

std::string DescribeCase(const FuzzCase& c) {
  std::string out = "streams=" + std::to_string(c.workload.streams.size()) +
                    " queries=" + std::to_string(c.workload.queries.size()) +
                    " ts=" + std::to_string(Horizon(c)) +
                    " edges=" + std::to_string(TotalEdges(c));
  if (!c.churn.empty()) {
    out += " churn=" + std::to_string(c.churn.size());
  }
  return out;
}

bool StartsRegistered(const FuzzCase& c, int query) {
  for (const ChurnOp& op : c.churn) {
    if (op.query == query) return !op.add;
  }
  return true;
}

GraphStream RebuildStream(Graph start,
                          const std::vector<GraphChange>& batches) {
  GraphStream stream(std::move(start));
  for (const GraphChange& batch : batches) stream.AppendChange(batch);
  return stream;
}

std::vector<GraphChange> BatchesOf(const GraphStream& stream) {
  std::vector<GraphChange> batches;
  for (int t = 1; t < stream.NumTimestamps(); ++t) {
    batches.push_back(stream.ChangeAt(t));
  }
  return batches;
}

}  // namespace gsps
