// Internal contract between the dominance kernel's dispatcher
// (dominance_kernel.cc) and its per-ISA translation units
// (dominance_kernel_avx2.cc, dominance_kernel_avx512.cc). Each ISA supplies
// the same three passes; definitions exist only when the matching
// GSPS_DOMINANCE_HAVE_* macro is set by the build, and the dispatcher only
// references them under the same guard.
//
// Pass semantics (shared by every ISA, scalar included — outputs must be
// bit-identical):
//   * SigPass: accept bit i = hay_sig covers sigs[i], for i in
//     [0, n_padded); n_padded is a multiple of 8 and the sig array carries
//     all-ones sentinels past the real needles (see NpvSlab), which only an
//     all-covering hay accepts — the dispatcher clears phantom bits after.
//   * MaskPass: dominated bit k = every entry of needle k satisfied by
//     `dense` (dense[dim] >= count). Blocks with an all-zero accept group
//     are skipped (signature coverage is necessary for dominance, so their
//     bits are exactly 0); accepted-but-failing lanes still compute to 0.
//     Writes every block's bit group, so no pre-zeroing is needed.
//   * CountPass: counts[k] = number of needle k's entries satisfied by
//     `dense`, for all k (no signature skip).

#ifndef GSPS_JOIN_DOMINANCE_KERNEL_ISA_H_
#define GSPS_JOIN_DOMINANCE_KERNEL_ISA_H_

#include <cstdint>

#include "gsps/join/dominance_kernel.h"

namespace gsps::kernel_detail {

void SigPassAvx2(const NpvSignature* sigs, int32_t n_padded,
                 NpvSignature hay_sig, uint64_t* accept_words);
void MaskPassAvx2(const DominanceBlockLayout& layout, const int32_t* dense,
                  const uint64_t* accept_words, uint64_t* mask_words);
void CountPassAvx2(const DominanceBlockLayout& layout, const int32_t* dense,
                   int32_t* counts);

void SigPassAvx512(const NpvSignature* sigs, int32_t n_padded,
                   NpvSignature hay_sig, uint64_t* accept_words);
void MaskPassAvx512(const DominanceBlockLayout& layout, const int32_t* dense,
                    const uint64_t* accept_words, uint64_t* mask_words);
void CountPassAvx512(const DominanceBlockLayout& layout, const int32_t* dense,
                     int32_t* counts);

}  // namespace gsps::kernel_detail

#endif  // GSPS_JOIN_DOMINANCE_KERNEL_ISA_H_
