// Batched NPV dominance kernel with runtime ISA dispatch.
//
// The join strategies' inner question — "which slab-resident query vectors
// does this stream NPV dominate?" — is answered here in bulk. One kernel
// invocation tests a single stream NPV (the "hay", dense-dim-translated)
// against every vector of a bound NpvSlab (the "needles") and produces a
// dominated bitset, fusing the 64-bit signature fast-reject with the vector
// compare:
//
//   1. Signature pass: the hay signature is tested against the slab's
//      contiguous signature array, 4 (AVX2) or 8 (AVX-512) signatures per
//      instruction, yielding an accept bitset. Rejected needles are counted
//      but never compared entry-by-entry.
//   2. Compare pass: the hay is scattered into a dense count array indexed
//      by dense dim id; slab needles are swept in lane-major blocks of 8
//      (AVX2) / 16 (AVX-512) vectors, one gather + compare per entry slot,
//      so each iteration advances one entry of 8-16 query vectors at once.
//      Blocks whose accept byte is zero are skipped wholesale.
//
// A second mode (ComputeCounts) keeps per-needle counts of satisfied
// entries instead of a boolean — exactly the dominant counters the
// dominated-set-cover strategy maintains, letting bulk inserts bypass its
// per-dimension list walks.
//
// Dispatch is resolved once per process from CPUID (gcc/clang
// __builtin_cpu_supports) and the GSPS_FORCE_ISA environment override
// (scalar|avx2|avx512); forcing an ISA the build or CPU lacks aborts with a
// diagnostic rather than silently falling back, so CI's dispatch matrix
// cannot test the wrong path. The scalar fallback computes bit-identical
// masks, counts, and stats from the same inputs — the property
// tests/dominance_kernel_test.cc and the CI kernel-dispatch matrix enforce.

#ifndef GSPS_JOIN_DOMINANCE_KERNEL_H_
#define GSPS_JOIN_DOMINANCE_KERNEL_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "gsps/common/aligned.h"
#include "gsps/nnt/npv.h"
#include "gsps/obs/metrics.h"

namespace gsps {

enum class DominanceIsa : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };
inline constexpr int kNumDominanceIsas = 3;

// Stable lowercase name ("scalar", "avx2", "avx512").
const char* DominanceIsaName(DominanceIsa isa);

// Inverse of DominanceIsaName; nullopt for unknown strings.
std::optional<DominanceIsa> ParseDominanceIsa(std::string_view name);

// True when the ISA's translation unit was compiled into this binary.
bool DominanceIsaCompiled(DominanceIsa isa);

// True when the ISA is compiled in AND the running CPU supports it.
bool DominanceIsaSupported(DominanceIsa isa);

// The process-wide dispatch decision, resolved once on first use: the
// GSPS_FORCE_ISA override when set (aborts if unsupported), otherwise the
// widest supported ISA.
DominanceIsa ActiveDominanceIsa();

// The per-ISA batch counter (gsps_dominance_batches_{scalar,avx2,avx512}).
obs::Counter DominanceBatchCounter(DominanceIsa isa);

// Accumulated by the kernel, flushed by the strategies at refresh time.
struct DominanceKernelStats {
  int64_t tests = 0;        // Needles surviving the signature reject.
  int64_t sig_rejects = 0;  // Needles rejected on signature alone.
  int64_t batches = 0;      // Kernel invocations (one per hay vector).
};

using AlignedI32Vector =
    std::vector<int32_t, AlignedAllocator<int32_t, kNpvSlabAlignment>>;

// Lane-major mirror of a bound slab, built once at Bind time for the SIMD
// paths: needles are grouped into blocks of `lanes`; within a block, entry
// slot s of lane l lives at dims[block_offset + s * lanes + l]. Lanes
// shorter than the block's slot count are padded with {dim 0, count 0},
// which can never fail a dominance compare; a zero nnz entry corrects the
// count mode. Block offsets are multiples of `lanes`, so every slot row is
// a naturally aligned vector load.
struct DominanceBlockLayout {
  int32_t lanes = 1;
  int32_t num_vectors = 0;
  int32_t num_blocks = 0;
  std::vector<int32_t> block_slots;   // Per block: max nnz among its lanes.
  std::vector<int32_t> block_offset;  // Per block: start index in dims/counts.
  AlignedI32Vector dims;
  AlignedI32Vector counts;
  AlignedI32Vector nnz;  // Per needle (padded to num_blocks * lanes with 0).
};

// Reusable scratch bound to one query-side slab. Not thread-safe; each
// strategy instance owns one. All steady-state calls are allocation-free:
// every buffer is sized at Bind.
class DominanceBatch {
 public:
  // Dispatched construction (ActiveDominanceIsa).
  DominanceBatch();
  // Forced construction for benches/tests; `isa` must be supported.
  explicit DominanceBatch(DominanceIsa isa);

  DominanceIsa isa() const { return isa_; }
  obs::Counter batch_counter() const { return DominanceBatchCounter(isa_); }

  // Binds the needle side. `slab` must outlive the batch and stay
  // unmutated between Bind and the last Compute* call — after any
  // Append/Remove/RemapDims, re-Bind (allocation-free when the slab's
  // padded extents did not grow: every buffer is assign()ed in place).
  // `num_dims` is the dense dim-id universe (NpvDimRemap::num_dims) every
  // hay and slab entry lives in. Freed slab slots never test as dominated:
  // both bitsets are masked with the slab's live words before stats, so
  // dead slots count as signature rejects on every ISA identically.
  void Bind(const NpvSlab& slab, int32_t num_dims);

  // Re-syncs the bound state for slot `k` after an in-place slab churn op
  // (Remove, or Append reusing a freed slot): patches just that lane of the
  // SIMD block layout instead of rebuilding the whole mirror — O(slot
  // entries), the strategies' steady-state churn fast path. Falls back to a
  // full Bind when the patch cannot be local: a different slab or dim
  // universe, a slab that grew past the bound size (tail Append), or a slot
  // whose entry count now exceeds its block's slot budget. Scalar batches
  // keep no mirror, so the in-place case is free.
  void RefreshSlot(const NpvSlab& slab, int32_t num_dims, int32_t k);

  int32_t bound_size() const { return bound_n_; }

  // Tests hay (entries sorted ascending by dense dim, signature over them)
  // against every bound needle. Afterwards Dominated(k) is exact dominance
  // of needle k; stats accrue one batch, and tests/sig_rejects split the
  // needle count by the signature verdict.
  void ComputeMask(const NpvEntry* hay_begin, const NpvEntry* hay_end,
                   NpvSignature hay_sig, DominanceKernelStats* stats);

  // Fills SatisfiedCount(k) = number of needle k's entries the hay
  // satisfies (hay value >= needle count). No signature skip: partial
  // counts are needed even for needles the hay cannot dominate.
  void ComputeCounts(const NpvEntry* hay_begin, const NpvEntry* hay_end,
                     DominanceKernelStats* stats);

  bool Dominated(int32_t k) const {
    return (mask_words_[static_cast<size_t>(k) / 64] >>
            (static_cast<size_t>(k) % 64)) &
           1u;
  }
  int32_t SatisfiedCount(int32_t k) const {
    return counts_[static_cast<size_t>(k)];
  }

  // Dominated bitset words (bit k = needle k; bits past bound_size are 0).
  const std::vector<uint64_t>& mask_words() const { return mask_words_; }

 private:
  void Densify(const NpvEntry* begin, const NpvEntry* end);
  void Sparsify(const NpvEntry* begin, const NpvEntry* end);
  // Zeroes bits >= bound_size() in `words`.
  void ClearPhantomBits(std::vector<uint64_t>* words) const;

  DominanceIsa isa_;
  const NpvSlab* slab_ = nullptr;
  int32_t num_dims_ = 0;
  int32_t bound_n_ = 0;  // slab_->size() at Bind/RefreshSlot time.
  AlignedI32Vector dense_;            // Hay counts by dense dim id.
  DominanceBlockLayout layout_;       // Built for SIMD ISAs only.
  std::vector<uint64_t> accept_words_;
  std::vector<uint64_t> mask_words_;
  AlignedI32Vector counts_;
};

}  // namespace gsps

#endif  // GSPS_JOIN_DOMINANCE_KERNEL_H_
