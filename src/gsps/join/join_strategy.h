// Stream–query join strategies over node projected vectors (paper §IV.B).
//
// Every strategy answers the same question — "which query graphs may be
// subgraph-isomorphic to stream graph i, judged by NPV dominance
// (Lemma 4.2)?" — and all three must return identical candidate sets:
//
//   * kNestedLoop: the reference; per (query vertex, stream vertex) pairwise
//     dominance scan.
//   * kDominatedSetCover (Fig. 8): per-dimension sorted query projections
//     with position/dominant counters, maintained incrementally as stream
//     vectors move.
//   * kSkylineEarlyStop (Fig. 11): checks only the monochromatic skyline of
//     each query's vectors, ordered to stop as early as possible, with
//     per-dimension max/cardinality pruning on the stream side.
//
// The engine feeds strategies vertex-level NPV deltas; strategies own any
// derived state.

#ifndef GSPS_JOIN_JOIN_STRATEGY_H_
#define GSPS_JOIN_JOIN_STRATEGY_H_

#include <memory>
#include <string_view>
#include <vector>

#include "gsps/graph/graph.h"
#include "gsps/nnt/npv.h"

namespace gsps {

// The NPVs of one query graph, one entry per query vertex.
struct QueryVectors {
  std::vector<Npv> vectors;
};

// Strategy selector.
enum class JoinKind {
  kNestedLoop,
  kDominatedSetCover,
  kSkylineEarlyStop,
};

// Returns a short stable name ("NL", "DSC", "Skyline").
std::string_view JoinKindName(JoinKind kind);

// Common interface. Not thread-safe; one instance per engine.
class JoinStrategy {
 public:
  virtual ~JoinStrategy() = default;

  // Installs the fixed query workload. Must be called exactly once, before
  // any stream updates.
  virtual void SetQueries(std::vector<QueryVectors> queries) = 0;

  // Declares how many streams will be updated. Must be called once after
  // SetQueries.
  virtual void SetNumStreams(int num_streams) = 0;

  // Installs or replaces the NPV of vertex `v` of stream `stream`.
  virtual void UpdateStreamVertex(int stream, VertexId v, const Npv& npv) = 0;

  // Removes vertex `v` of stream `stream` (vertex deleted from the graph).
  virtual void RemoveStreamVertex(int stream, VertexId v) = 0;

  // Indices of query graphs that are candidates for stream `stream` at the
  // current state, ascending.
  virtual std::vector<int> CandidatesForStream(int stream) = 0;

  virtual std::string_view name() const = 0;
};

// Factory.
std::unique_ptr<JoinStrategy> MakeJoinStrategy(JoinKind kind);

}  // namespace gsps

#endif  // GSPS_JOIN_JOIN_STRATEGY_H_
