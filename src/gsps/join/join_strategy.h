// Stream–query join strategies over node projected vectors (paper §IV.B).
//
// Every strategy answers the same question — "which query graphs may be
// subgraph-isomorphic to stream graph i, judged by NPV dominance
// (Lemma 4.2)?" — and all three must return identical candidate sets:
//
//   * kNestedLoop: the reference; per (query vertex, stream vertex)
//     cover counts, re-evaluating a stream vertex against every query
//     vector only when that vertex's NPV changes.
//   * kDominatedSetCover (Fig. 8): per-dimension sorted query projections
//     with position/dominant counters, maintained incrementally as stream
//     vectors move.
//   * kSkylineEarlyStop (Fig. 11): checks only the monochromatic skyline of
//     each query's vectors, ordered to stop as early as possible, with
//     per-dimension max/cardinality pruning on the stream side; per-query
//     verdicts are cached and re-examined only when a changed vertex's
//     dimension signature intersects the query's.
//
// All three are delta-driven: the engine's FlushDirty feeds vertex-level
// NPV deltas through UpdateStreamVertex/RemoveStreamVertex, and each
// strategy folds the delta into per-(stream, query-vertex) cover state and
// a cached per-stream candidate list. CandidatesForStream answers from the
// cache when no delta touched the stream since the last call (a "verdict
// reuse"), and otherwise recomputes only what the delta invalidated.
// Query-side vectors live in a dense dim-id-translated slab (see
// NpvDimRemap/NpvSlab in nnt/npv.h), so dominance tests that survive the
// 64-bit signature fast-reject are linear merges over contiguous arrays.

#ifndef GSPS_JOIN_JOIN_STRATEGY_H_
#define GSPS_JOIN_JOIN_STRATEGY_H_

#include <memory>
#include <string_view>
#include <vector>

#include "gsps/graph/graph.h"
#include "gsps/nnt/npv.h"

namespace gsps {

// The NPVs of one query graph, one entry per query vertex.
struct QueryVectors {
  std::vector<Npv> vectors;
};

// Strategy selector.
enum class JoinKind {
  kNestedLoop,
  kDominatedSetCover,
  kSkylineEarlyStop,
};

// Returns a short stable name ("NL", "DSC", "Skyline").
std::string_view JoinKindName(JoinKind kind);

// Common interface. Not thread-safe; one instance per engine.
class JoinStrategy {
 public:
  virtual ~JoinStrategy() = default;

  // Installs the initial query workload. Must be called exactly once,
  // before any stream updates; later churn goes through AddQuery /
  // RemoveQuery.
  virtual void SetQueries(std::vector<QueryVectors> queries) = 0;

  // Declares how many streams will be updated. Must be called once after
  // SetQueries.
  virtual void SetNumStreams(int num_streams) = 0;

  // Registers a new query at runtime and returns its local id — a retired
  // id is reused when one is free, else ids keep growing densely. May be
  // called after SetNumStreams with stream state already in place; the
  // strategy folds the new query into every live stream vertex
  // incrementally. Sets *grew_dims to true when the query introduced dense
  // dimensions no existing query used — the caller must then replay every
  // stream vertex NPV through UpdateStreamVertex, because stream-side
  // vectors translated before the growth dropped those dimensions at
  // translate time and cannot be fixed up in place.
  virtual int32_t AddQuery(const QueryVectors& query, bool* grew_dims) = 0;

  // Retires query `local_id` (must be live). Its slab slots, signatures,
  // cached verdicts, and per-dimension index entries are freed for reuse;
  // live queries and the kernel's sentinel-padded slab layout are
  // undisturbed. The id becomes eligible for reuse by a later AddQuery.
  virtual void RemoveQuery(int32_t local_id) = 0;

  // Validates the strategy's churn bookkeeping (slab kernel layout, free
  // lists, liveness counts). Test/soak hook; O(state), not for hot loops.
  virtual void CheckChurnInvariants() const = 0;

  // Installs or replaces the NPV of vertex `v` of stream `stream`.
  virtual void UpdateStreamVertex(int stream, VertexId v, const Npv& npv) = 0;

  // Removes vertex `v` of stream `stream` (vertex deleted from the graph).
  virtual void RemoveStreamVertex(int stream, VertexId v) = 0;

  // Writes the indices of query graphs that are candidates for stream
  // `stream` at the current state into *out (cleared first, capacity
  // reused), ascending. The allocation-free form for steady-state loops.
  virtual void CandidatesForStream(int stream, std::vector<int>* out) = 0;

  // Pushes pending per-query attribution (dominance probes, refresh time)
  // into the global obs::AttributionRegistry. Called at metrics-flush
  // cadence by the engine; the default is a no-op for strategies that do
  // not attribute.
  virtual void FlushAttribution() {}

  // By-value convenience wrapper.
  std::vector<int> CandidatesForStream(int stream) {
    std::vector<int> out;
    CandidatesForStream(stream, &out);
    return out;
  }

  virtual std::string_view name() const = 0;
};

// Factory.
std::unique_ptr<JoinStrategy> MakeJoinStrategy(JoinKind kind);

}  // namespace gsps

#endif  // GSPS_JOIN_JOIN_STRATEGY_H_
