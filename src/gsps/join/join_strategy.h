// Stream–query join strategies over node projected vectors (paper §IV.B).
//
// Every strategy answers the same question — "which query graphs may be
// subgraph-isomorphic to stream graph i, judged by NPV dominance
// (Lemma 4.2)?" — and all three must return identical candidate sets:
//
//   * kNestedLoop: the reference; per (query vertex, stream vertex)
//     cover counts, re-evaluating a stream vertex against every query
//     vector only when that vertex's NPV changes.
//   * kDominatedSetCover (Fig. 8): per-dimension sorted query projections
//     with position/dominant counters, maintained incrementally as stream
//     vectors move.
//   * kSkylineEarlyStop (Fig. 11): checks only the monochromatic skyline of
//     each query's vectors, ordered to stop as early as possible, with
//     per-dimension max/cardinality pruning on the stream side; per-query
//     verdicts are cached and re-examined only when a changed vertex's
//     dimension signature intersects the query's.
//
// All three are delta-driven: the engine's FlushDirty feeds vertex-level
// NPV deltas through UpdateStreamVertex/RemoveStreamVertex, and each
// strategy folds the delta into per-(stream, query-vertex) cover state and
// a cached per-stream candidate list. CandidatesForStream answers from the
// cache when no delta touched the stream since the last call (a "verdict
// reuse"), and otherwise recomputes only what the delta invalidated.
// Query-side vectors live in a dense dim-id-translated slab (see
// NpvDimRemap/NpvSlab in nnt/npv.h), so dominance tests that survive the
// 64-bit signature fast-reject are linear merges over contiguous arrays.

#ifndef GSPS_JOIN_JOIN_STRATEGY_H_
#define GSPS_JOIN_JOIN_STRATEGY_H_

#include <memory>
#include <string_view>
#include <vector>

#include "gsps/graph/graph.h"
#include "gsps/nnt/npv.h"

namespace gsps {

// The NPVs of one query graph, one entry per query vertex.
struct QueryVectors {
  std::vector<Npv> vectors;
};

// Strategy selector.
enum class JoinKind {
  kNestedLoop,
  kDominatedSetCover,
  kSkylineEarlyStop,
};

// Returns a short stable name ("NL", "DSC", "Skyline").
std::string_view JoinKindName(JoinKind kind);

// Common interface. Not thread-safe; one instance per engine.
class JoinStrategy {
 public:
  virtual ~JoinStrategy() = default;

  // Installs the fixed query workload. Must be called exactly once, before
  // any stream updates.
  virtual void SetQueries(std::vector<QueryVectors> queries) = 0;

  // Declares how many streams will be updated. Must be called once after
  // SetQueries.
  virtual void SetNumStreams(int num_streams) = 0;

  // Installs or replaces the NPV of vertex `v` of stream `stream`.
  virtual void UpdateStreamVertex(int stream, VertexId v, const Npv& npv) = 0;

  // Removes vertex `v` of stream `stream` (vertex deleted from the graph).
  virtual void RemoveStreamVertex(int stream, VertexId v) = 0;

  // Writes the indices of query graphs that are candidates for stream
  // `stream` at the current state into *out (cleared first, capacity
  // reused), ascending. The allocation-free form for steady-state loops.
  virtual void CandidatesForStream(int stream, std::vector<int>* out) = 0;

  // By-value convenience wrapper.
  std::vector<int> CandidatesForStream(int stream) {
    std::vector<int> out;
    CandidatesForStream(stream, &out);
    return out;
  }

  virtual std::string_view name() const = 0;
};

// Factory.
std::unique_ptr<JoinStrategy> MakeJoinStrategy(JoinKind kind);

}  // namespace gsps

#endif  // GSPS_JOIN_JOIN_STRATEGY_H_
