#include "gsps/join/dominance.h"

#include <memory>

#include "gsps/common/check.h"
#include "gsps/join/dominated_set_cover_join.h"
#include "gsps/join/nested_loop_join.h"
#include "gsps/join/skyline_earlystop_join.h"

namespace gsps {

std::string_view JoinKindName(JoinKind kind) {
  switch (kind) {
    case JoinKind::kNestedLoop:
      return "NL";
    case JoinKind::kDominatedSetCover:
      return "DSC";
    case JoinKind::kSkylineEarlyStop:
      return "Skyline";
  }
  GSPS_CHECK_MSG(false, "unknown JoinKind");
  return "";
}

std::unique_ptr<JoinStrategy> MakeJoinStrategy(JoinKind kind) {
  switch (kind) {
    case JoinKind::kNestedLoop:
      return std::make_unique<NestedLoopJoin>();
    case JoinKind::kDominatedSetCover:
      return std::make_unique<DominatedSetCoverJoin>();
    case JoinKind::kSkylineEarlyStop:
      return std::make_unique<SkylineEarlyStopJoin>();
  }
  GSPS_CHECK_MSG(false, "unknown JoinKind");
  return nullptr;
}

QueryVectors BuildQueryVectors(const NntSet& nnts) {
  QueryVectors result;
  for (const VertexId root : nnts.Roots()) {
    result.vectors.push_back(nnts.NpvOf(root));
  }
  return result;
}

}  // namespace gsps
