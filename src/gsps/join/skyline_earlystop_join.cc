#include "gsps/join/skyline_earlystop_join.h"

#include <algorithm>
#include <utility>

#include "gsps/common/check.h"
#include "gsps/obs/obs.h"

namespace gsps {

void SkylineEarlyStopJoin::SetQueries(std::vector<QueryVectors> queries) {
  GSPS_CHECK(plans_.empty());
  plans_.reserve(queries.size());
  for (QueryVectors& query : queries) {
    QueryPlan plan;
    plan.empty_query = query.vectors.empty();
    // Deduplicate equal vectors: coverage of one implies the other.
    std::vector<Npv> distinct;
    for (Npv& vector : query.vectors) {
      if (vector.nnz() == 0) {
        plan.has_trivial_vector = true;
        continue;
      }
      if (std::find(distinct.begin(), distinct.end(), vector) ==
          distinct.end()) {
        distinct.push_back(std::move(vector));
      }
    }
    // Monochromatic skyline: keep vectors not dominated by a distinct other.
    // Count how many vectors each skyline point dominates for ordering.
    std::vector<std::pair<int32_t, size_t>> order;  // (-dominated_count, idx)
    for (size_t i = 0; i < distinct.size(); ++i) {
      bool maximal = true;
      int32_t dominated = 0;
      for (size_t k = 0; k < distinct.size(); ++k) {
        if (i == k) continue;
        if (distinct[k].Dominates(distinct[i])) {
          maximal = false;
          break;
        }
        if (distinct[i].Dominates(distinct[k])) ++dominated;
      }
      if (maximal) order.emplace_back(-dominated, i);
    }
    std::sort(order.begin(), order.end());
    plan.skyline.reserve(order.size());
    for (const auto& [neg_count, index] : order) {
      (void)neg_count;
      plan.skyline.push_back(std::move(distinct[index]));
    }
    plans_.push_back(std::move(plan));
  }
}

void SkylineEarlyStopJoin::SetNumStreams(int num_streams) {
  GSPS_CHECK(streams_.empty());
  streams_.resize(static_cast<size_t>(num_streams));
}

void SkylineEarlyStopJoin::UpdateStreamVertex(int stream_index, VertexId v,
                                              const Npv& npv) {
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  auto it = stream.vertices.find(v);
  if (it != stream.vertices.end()) {
    DeindexVertex(stream, v, it->second);
    it->second = npv;
  } else {
    it = stream.vertices.emplace(v, npv).first;
  }
  IndexVertex(stream, v, npv);
}

void SkylineEarlyStopJoin::RemoveStreamVertex(int stream_index, VertexId v) {
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  auto it = stream.vertices.find(v);
  if (it == stream.vertices.end()) return;
  DeindexVertex(stream, v, it->second);
  stream.vertices.erase(it);
}

std::vector<int> SkylineEarlyStopJoin::CandidatesForStream(int stream_index) {
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  const bool stream_nonempty = !stream.vertices.empty();
  std::vector<int> candidates;
  const int64_t comparisons_before = comparisons_;
  int64_t early_stops = 0;
  for (size_t j = 0; j < plans_.size(); ++j) {
    const QueryPlan& plan = plans_[j];
    if (plan.empty_query) {
      candidates.push_back(static_cast<int>(j));
      continue;
    }
    if (plan.has_trivial_vector && !stream_nonempty) continue;
    bool found_skyline_point = false;
    for (const Npv& point : plan.skyline) {
      if (!Covered(stream, point)) {
        found_skyline_point = true;  // Early stop: the pair is pruned.
        ++early_stops;
        break;
      }
    }
    if (!found_skyline_point) candidates.push_back(static_cast<int>(j));
  }
  GSPS_OBS_COUNT(Counter::kJoinPairsIn, static_cast<int64_t>(plans_.size()));
  GSPS_OBS_COUNT(Counter::kJoinPairsOut,
                 static_cast<int64_t>(candidates.size()));
  GSPS_OBS_COUNT(Counter::kJoinSkylineEarlyStops, early_stops);
  GSPS_OBS_COUNT(Counter::kJoinDominanceTests,
                 comparisons_ - comparisons_before);
  return candidates;
}

bool SkylineEarlyStopJoin::Covered(const StreamState& stream,
                                   const Npv& point) {
  GSPS_DCHECK(point.nnz() > 0);
  // Optimization 3a: a dimension whose stream maximum is below the query
  // value proves the point uncovered without any comparisons. While
  // scanning, remember the minimum-cardinality dimension bucket.
  const DimBucket* best_bucket = nullptr;
  for (const NpvEntry& entry : point.entries()) {
    auto it = stream.buckets.find(entry.dim);
    if (it == stream.buckets.end() || it->second.max_value < entry.count) {
      return false;
    }
    if (best_bucket == nullptr ||
        it->second.values.size() < best_bucket->values.size()) {
      best_bucket = &it->second;
    }
  }
  // Optimization 3b: any dominating stream vector must have a non-zero
  // value in every non-zero dimension of the point; scanning the smallest
  // bucket suffices.
  GSPS_DCHECK(best_bucket != nullptr);
  for (const auto& [vertex, value] : best_bucket->values) {
    (void)value;
    ++comparisons_;
    auto vec_it = stream.vertices.find(vertex);
    GSPS_DCHECK(vec_it != stream.vertices.end());
    if (vec_it->second.Dominates(point)) return true;
  }
  return false;
}

void SkylineEarlyStopJoin::IndexVertex(StreamState& stream, VertexId v,
                                       const Npv& npv) {
  for (const NpvEntry& entry : npv.entries()) {
    DimBucket& bucket = stream.buckets[entry.dim];
    bucket.values[v] = entry.count;
    bucket.max_value = std::max(bucket.max_value, entry.count);
  }
}

void SkylineEarlyStopJoin::DeindexVertex(StreamState& stream, VertexId v,
                                         const Npv& npv) {
  for (const NpvEntry& entry : npv.entries()) {
    auto it = stream.buckets.find(entry.dim);
    GSPS_DCHECK(it != stream.buckets.end());
    DimBucket& bucket = it->second;
    bucket.values.erase(v);
    if (bucket.values.empty()) {
      stream.buckets.erase(it);
      continue;
    }
    if (entry.count == bucket.max_value) {
      int32_t new_max = 0;
      for (const auto& [vertex, value] : bucket.values) {
        (void)vertex;
        new_max = std::max(new_max, value);
      }
      bucket.max_value = new_max;
    }
  }
}

}  // namespace gsps
