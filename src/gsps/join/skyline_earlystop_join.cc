#include "gsps/join/skyline_earlystop_join.h"

#include <algorithm>
#include <utility>

#include "gsps/common/check.h"
#include "gsps/join/dominance_kernel.h"
#include "gsps/obs/obs.h"

namespace gsps {

void SkylineEarlyStopJoin::SetQueries(std::vector<QueryVectors> queries) {
  GSPS_CHECK(plans_.empty());
  for (const QueryVectors& query : queries) {
    for (const Npv& vector : query.vectors) remap_.AddDims(vector);
  }
  remap_.Seal();
  plans_.resize(queries.size());
  DominanceKernelStats build_kernel_stats;
  attr_.Reset(static_cast<int>(queries.size()));
  for (size_t j = 0; j < queries.size(); ++j) {
    BuildPlan(static_cast<int32_t>(j), queries[j].vectors,
              &build_kernel_stats);
    attr_.OnAddQuery(static_cast<int>(j),
                     static_cast<int64_t>(plans_[j].points.size()));
  }
  // Flushed here rather than deferred: setup-time kernel activity stays out
  // of the per-refresh accumulators, preserving the steady-state
  // per-refresh counter semantics.
  GSPS_OBS_COUNT(Counter::kJoinDominanceTests, build_kernel_stats.tests);
  GSPS_OBS_COUNT(Counter::kJoinSignatureRejects, build_kernel_stats.sig_rejects);
  if constexpr (obs::kEnabled) {
    if (obs::MetricSink* sink = obs::CurrentSink(); sink != nullptr) {
      sink->Add(DominanceBatchCounter(ActiveDominanceIsa()),
                build_kernel_stats.batches);
    }
  }
}

void SkylineEarlyStopJoin::BuildPlan(int32_t j,
                                     const std::vector<Npv>& vectors,
                                     DominanceKernelStats* build_stats) {
  QueryPlan& plan = plans_[static_cast<size_t>(j)];
  plan.points.clear();
  plan.union_sig = 0;
  plan.empty_query = vectors.empty();
  plan.has_trivial_vector = false;
  plan.live = true;
  // Deduplicate equal vectors: coverage of one implies the other.
  scratch_distinct_.clear();
  for (size_t i = 0; i < vectors.size(); ++i) {
    if (vectors[i].nnz() == 0) {
      plan.has_trivial_vector = true;
      continue;
    }
    bool seen = false;
    for (const int32_t d : scratch_distinct_) {
      if (vectors[static_cast<size_t>(d)] == vectors[i]) {
        seen = true;
        break;
      }
    }
    if (!seen) scratch_distinct_.push_back(static_cast<int32_t>(i));
  }
  // Monochromatic skyline: keep vectors not dominated by a distinct other.
  // Count how many vectors each skyline point dominates for ordering. The
  // batched kernel produces one dominated-row bitset per vector; vector i
  // is maximal iff no other row has bit i set (colset sweep), and its
  // dominated count is its row's popcount minus the self bit. Distinct
  // vectors never mutually dominate, so this matches the pairwise scan.
  scratch_order_.clear();  // (-dominated_count, idx)
  const size_t num_distinct = scratch_distinct_.size();
  if (num_distinct > 0) {
    scratch_slab_.Clear();
    for (const int32_t d : scratch_distinct_) {
      remap_.Translate(vectors[static_cast<size_t>(d)], &translate_scratch_);
      scratch_slab_.Append(translate_scratch_);
    }
    scratch_batch_.Bind(scratch_slab_, remap_.num_dims());
    const size_t words = (num_distinct + 63) / 64;
    scratch_row_.assign(words, 0);
    scratch_colset_.assign(words, 0);
    scratch_dom_count_.assign(num_distinct, 0);
    for (size_t i = 0; i < num_distinct; ++i) {
      const int32_t k = static_cast<int32_t>(i);
      scratch_batch_.ComputeMask(scratch_slab_.begin(k), scratch_slab_.end(k),
                                 scratch_slab_.signature(k), build_stats);
      int64_t dominated = 0;
      for (size_t w = 0; w < words; ++w) {
        scratch_row_[w] = scratch_batch_.mask_words()[w];
        dominated += __builtin_popcountll(scratch_row_[w]);
      }
      scratch_dom_count_[i] = static_cast<int32_t>(dominated - 1);  // Self.
      scratch_row_[i / 64] &= ~(uint64_t{1} << (i % 64));
      for (size_t w = 0; w < words; ++w) scratch_colset_[w] |= scratch_row_[w];
    }
    for (size_t i = 0; i < num_distinct; ++i) {
      const bool maximal = ((scratch_colset_[i / 64] >> (i % 64)) & 1u) == 0;
      if (maximal) {
        scratch_order_.emplace_back(-scratch_dom_count_[i],
                                    scratch_distinct_[i]);
      }
    }
  }
  std::sort(scratch_order_.begin(), scratch_order_.end());
  for (const auto& [neg_count, index] : scratch_order_) {
    (void)neg_count;
    // Query dims are all registered, so translation is lossless.
    remap_.Translate(vectors[static_cast<size_t>(index)], &translate_scratch_);
    const int32_t point = points_.Append(translate_scratch_);
    plan.points.push_back(point);
    plan.union_sig |= points_.signature(point);
  }
}

int32_t SkylineEarlyStopJoin::AddQuery(const QueryVectors& query,
                                       bool* grew_dims) {
  *grew_dims = false;
  for (const Npv& vector : query.vectors) {
    if (!remap_.GrowDims(vector, &remap_scratch_)) continue;
    *grew_dims = true;
    GSPS_OBS_COUNT(Counter::kRemapRegrowths, 1);
    points_.RemapDims(remap_scratch_);
    for (QueryPlan& plan : plans_) {
      if (!plan.live) continue;
      plan.union_sig = 0;
      for (const int32_t point : plan.points) {
        plan.union_sig |= points_.signature(point);
      }
    }
    const int32_t old_dims = static_cast<int32_t>(remap_scratch_.size());
    for (StreamState& stream : streams_) {
      // Move the per-dimension buckets to their new dense indices, highest
      // first (the map is strictly increasing; a self-mapped prefix stays).
      stream.buckets.resize(static_cast<size_t>(remap_.num_dims()));
      for (int32_t d = old_dims - 1; d >= 0; --d) {
        const DimId nd = remap_scratch_[static_cast<size_t>(d)];
        if (nd == d) break;
        stream.buckets[static_cast<size_t>(nd)] =
            std::move(stream.buckets[static_cast<size_t>(d)]);
        stream.buckets[static_cast<size_t>(d)] = DimBucket{};
      }
      for (auto& [v, vertex] : stream.vertices) {
        for (NpvEntry& entry : vertex.entries) {
          entry.dim = remap_scratch_[static_cast<size_t>(entry.dim)];
        }
        vertex.sig = SignatureOf(
            vertex.entries.data(),
            vertex.entries.data() + vertex.entries.size());
      }
      // Dense signatures were renumbered, so the bounded changed-signature
      // filter can no longer be trusted: force full reevaluation.
      stream.changed_overflow = true;
      stream.combined_changed = ~NpvSignature{0};
      stream.cache_valid = false;
    }
  }

  int32_t j;
  if (!free_plans_.empty()) {
    j = free_plans_.back();
    free_plans_.pop_back();
  } else {
    j = static_cast<int32_t>(plans_.size());
    plans_.emplace_back();
    for (StreamState& stream : streams_) {
      stream.verdicts.emplace_back();
    }
  }
  DominanceKernelStats build_stats;
  BuildPlan(j, query.vectors, &build_stats);
  pending_tests_ += build_stats.tests;
  pending_rejects_ += build_stats.sig_rejects;
  const QueryPlan& plan = plans_[static_cast<size_t>(j)];
  // Eager verdict: the cached-verdict invariant ("state as of the last
  // refresh") only holds for plans that existed at that refresh, so the new
  // plan's coverage is scanned now against the current stream state.
  for (StreamState& stream : streams_) {
    Verdict& verdict = stream.verdicts[static_cast<size_t>(j)];
    verdict.covered = true;
    verdict.witness = static_cast<int32_t>(plan.points.size());
    for (size_t i = 0; i < plan.points.size(); ++i) {
      if (!Covered(stream, plan.points[i])) {
        verdict.covered = false;
        verdict.witness = static_cast<int32_t>(i);
        break;
      }
    }
    stream.cache_valid = false;
  }
  attr_.OnAddQuery(j, static_cast<int64_t>(plan.points.size()));
  return j;
}

void SkylineEarlyStopJoin::RemoveQuery(int32_t local_id) {
  GSPS_CHECK(local_id >= 0 &&
             local_id < static_cast<int32_t>(plans_.size()));
  QueryPlan& plan = plans_[static_cast<size_t>(local_id)];
  GSPS_CHECK_MSG(plan.live,
                 "SkylineEarlyStopJoin::RemoveQuery on a retired query");
  for (const int32_t point : plan.points) points_.Remove(point);
  plan.points.clear();
  plan.union_sig = 0;
  plan.has_trivial_vector = false;
  plan.empty_query = false;
  plan.live = false;
  free_plans_.push_back(local_id);
  attr_.OnRemoveQuery(local_id);
  for (StreamState& stream : streams_) {
    stream.verdicts[static_cast<size_t>(local_id)] = Verdict{};
    stream.cache_valid = false;
  }
}

void SkylineEarlyStopJoin::CheckChurnInvariants() const {
  points_.CheckKernelLayout();
  int32_t live_points = 0;
  int32_t dead_plans = 0;
  for (const QueryPlan& plan : plans_) {
    if (!plan.live) {
      GSPS_CHECK(plan.points.empty());
      ++dead_plans;
      continue;
    }
    NpvSignature union_sig = 0;
    for (const int32_t point : plan.points) {
      GSPS_CHECK(points_.live(point));
      GSPS_CHECK(points_.nnz(point) > 0);
      union_sig |= points_.signature(point);
      ++live_points;
    }
    GSPS_CHECK(union_sig == plan.union_sig);
  }
  GSPS_CHECK(live_points == points_.num_live());
  GSPS_CHECK(dead_plans == static_cast<int32_t>(free_plans_.size()));
  for (const StreamState& stream : streams_) {
    GSPS_CHECK(stream.verdicts.size() == plans_.size());
    int32_t live_vertices = 0;
    for (const auto& [v, vertex] : stream.vertices) {
      if (!vertex.live) continue;
      ++live_vertices;
      for (const NpvEntry& entry : vertex.entries) {
        const DimBucket& bucket =
            stream.buckets[static_cast<size_t>(entry.dim)];
        const auto it = bucket.values.find(v);
        GSPS_CHECK(it != bucket.values.end() && it->second == entry.count);
      }
    }
    GSPS_CHECK(live_vertices == stream.live_vertices);
    for (const DimBucket& bucket : stream.buckets) {
      int32_t live_count = 0;
      int32_t max_value = 0;
      for (const auto& [v, value] : bucket.values) {
        if (value == 0) continue;
        ++live_count;
        max_value = std::max(max_value, value);
      }
      GSPS_CHECK(live_count == bucket.live_count);
      GSPS_CHECK(max_value == bucket.max_value);
    }
  }
}

void SkylineEarlyStopJoin::SetNumStreams(int num_streams) {
  GSPS_CHECK(streams_.empty());
  streams_.resize(static_cast<size_t>(num_streams));
  for (StreamState& stream : streams_) {
    stream.buckets.resize(static_cast<size_t>(remap_.num_dims()));
    stream.verdicts.reserve(plans_.size());
    for (const QueryPlan& plan : plans_) {
      // The empty stream covers nothing, so a plan with points starts with
      // its first point as the witness; a point-less plan starts covered.
      stream.verdicts.push_back(Verdict{plan.points.empty(), 0});
    }
  }
}

void SkylineEarlyStopJoin::UpdateStreamVertex(int stream_index, VertexId v,
                                              const Npv& npv) {
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  VertexState& vertex = stream.vertices[v];
  if (vertex.live) {
    DeindexVertex(stream, v, vertex.entries);
  } else {
    vertex.live = true;
    ++stream.live_vertices;
  }
  const NpvSignature new_sig = remap_.Translate(npv, &translate_scratch_);
  PushChanged(stream, vertex.sig | new_sig);
  vertex.sig = new_sig;
  vertex.entries.assign(translate_scratch_.begin(), translate_scratch_.end());
  IndexVertex(stream, v, vertex.entries);
  stream.cache_valid = false;
}

void SkylineEarlyStopJoin::RemoveStreamVertex(int stream_index, VertexId v) {
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  auto it = stream.vertices.find(v);
  if (it == stream.vertices.end() || !it->second.live) return;
  VertexState& vertex = it->second;
  DeindexVertex(stream, v, vertex.entries);
  PushChanged(stream, vertex.sig);
  vertex.live = false;
  vertex.sig = 0;
  vertex.entries.clear();
  --stream.live_vertices;
  stream.cache_valid = false;
}

void SkylineEarlyStopJoin::CandidatesForStream(int stream_index,
                                               std::vector<int>* out) {
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  if (stream.cache_valid) {
    GSPS_OBS_COUNT(Counter::kJoinVerdictsReused, 1);
  } else {
    // Timed manually (not via StageTimer) because the elapsed micros also
    // feed the per-query attribution split; decimated because a refresh is
    // sub-microsecond (see JoinRefreshSampleTick).
    const bool timed = obs::kEnabled &&
                       (obs::CurrentSink() != nullptr ||
                        obs::FlightRecorderArmed()) &&
                       obs::JoinRefreshSampleTick();
    const int64_t refresh_start = timed ? obs::MonotonicMicros() : 0;
    stream.cache.clear();
    const bool stream_nonempty = stream.live_vertices > 0;
    int64_t early_stops = 0;
    for (size_t j = 0; j < plans_.size(); ++j) {
      const QueryPlan& plan = plans_[j];
      if (!plan.live) continue;
      if (plan.empty_query) {
        stream.cache.push_back(static_cast<int>(j));
        continue;
      }
      Verdict& verdict = stream.verdicts[j];
      // Verdicts advance even for queries the trivial-vector check rejects
      // below: the changed-signature list is cleared after this loop, so a
      // stale verdict could never be repaired later.
      if (!plan.points.empty() &&
          (plan.union_sig & stream.combined_changed) != 0) {
        Reevaluate(stream, plan, &verdict);
      }
      if (!verdict.covered) {
        ++early_stops;  // Pruned at the witness point.
        continue;
      }
      if (plan.has_trivial_vector && !stream_nonempty) continue;
      stream.cache.push_back(static_cast<int>(j));
    }
    stream.num_changed = 0;
    stream.changed_overflow = false;
    stream.combined_changed = 0;
    stream.cache_valid = true;
    GSPS_OBS_COUNT(Counter::kJoinSkylineEarlyStops, early_stops);
    if (timed) {
      const int64_t micros = obs::MonotonicMicros() - refresh_start;
      obs::StageSample(obs::Stage::kJoinRefresh, micros, stream_index);
      attr_.AddRefresh(micros);
    }
  }
  out->assign(stream.cache.begin(), stream.cache.end());
  attr_.AddProbes(pending_tests_ + pending_rejects_);
  GSPS_OBS_COUNT(Counter::kJoinPairsIn, static_cast<int64_t>(plans_.size()));
  GSPS_OBS_COUNT(Counter::kJoinPairsOut, static_cast<int64_t>(out->size()));
  GSPS_OBS_COUNT(Counter::kJoinDominanceTests, pending_tests_);
  GSPS_OBS_COUNT(Counter::kJoinSignatureRejects, pending_rejects_);
  pending_tests_ = 0;
  pending_rejects_ = 0;
}

bool SkylineEarlyStopJoin::Affected(const StreamState& stream,
                                    NpvSignature sig) const {
  // A changed vertex can only flip a point it could dominate before or
  // after the change, i.e. whose signature its old|new signature covers.
  if (!SignatureCovers(stream.combined_changed, sig)) return false;
  if (stream.changed_overflow) return true;
  for (int32_t i = 0; i < stream.num_changed; ++i) {
    if (SignatureCovers(stream.changed_sigs[static_cast<size_t>(i)], sig)) {
      return true;
    }
  }
  return false;
}

void SkylineEarlyStopJoin::PushChanged(StreamState& stream, NpvSignature sig) {
  // A vertex with no query dimension can never dominate a skyline point
  // (points are non-trivial); it only matters through live_vertices.
  if (sig == 0) return;
  stream.combined_changed |= sig;
  if (stream.changed_overflow) return;
  if (stream.num_changed == kMaxChangedSigs) {
    stream.changed_overflow = true;
    return;
  }
  stream.changed_sigs[static_cast<size_t>(stream.num_changed++)] = sig;
}

void SkylineEarlyStopJoin::Reevaluate(StreamState& stream,
                                      const QueryPlan& plan,
                                      Verdict* verdict) {
  const int32_t n = static_cast<int32_t>(plan.points.size());
  // Everything before the prefix was covered at the last refresh; when the
  // scan stopped early the witness itself was not.
  const bool old_covered = verdict->covered;
  const int32_t old_witness = verdict->witness;
  const int32_t prefix = old_covered ? n : old_witness;
  verdict->covered = true;
  verdict->witness = n;
  for (int32_t i = 0; i < n; ++i) {
    const int32_t point = plan.points[static_cast<size_t>(i)];
    const bool affected = Affected(stream, points_.signature(point));
    bool covered_now;
    if (!affected && i < prefix) {
      covered_now = true;
    } else if (!affected && !old_covered && i == old_witness) {
      covered_now = false;
    } else {
      covered_now = Covered(stream, point);
    }
    if (!covered_now) {
      verdict->covered = false;
      verdict->witness = i;
      return;
    }
  }
}

bool SkylineEarlyStopJoin::Covered(const StreamState& stream, int32_t point) {
  GSPS_DCHECK(points_.nnz(point) > 0);
  const NpvEntry* const begin = points_.begin(point);
  const NpvEntry* const end = points_.end(point);
  // Optimization 3a: a dimension whose stream maximum is below the query
  // value proves the point uncovered without any comparisons. While
  // scanning, remember the minimum-cardinality dimension bucket.
  const DimBucket* best_bucket = nullptr;
  for (const NpvEntry* entry = begin; entry != end; ++entry) {
    const DimBucket& bucket = stream.buckets[static_cast<size_t>(entry->dim)];
    if (bucket.max_value < entry->count) return false;
    if (best_bucket == nullptr ||
        bucket.live_count < best_bucket->live_count) {
      best_bucket = &bucket;
    }
  }
  // Optimization 3b: any dominating stream vector must have a non-zero
  // value in every non-zero dimension of the point; scanning the smallest
  // bucket suffices.
  GSPS_DCHECK(best_bucket != nullptr);
  const NpvSignature point_sig = points_.signature(point);
  for (const auto& [vertex, value] : best_bucket->values) {
    if (value == 0) continue;  // Tombstone.
    ++comparisons_;
    auto vec_it = stream.vertices.find(vertex);
    GSPS_DCHECK(vec_it != stream.vertices.end());
    const VertexState& candidate = vec_it->second;
    if (!SignatureCovers(candidate.sig, point_sig)) {
      ++pending_rejects_;
      continue;
    }
    ++pending_tests_;
    if (DominatesRange(candidate.entries.data(),
                       candidate.entries.data() + candidate.entries.size(),
                       begin, end)) {
      return true;
    }
  }
  return false;
}

void SkylineEarlyStopJoin::IndexVertex(StreamState& stream, VertexId v,
                                       const std::vector<NpvEntry>& entries) {
  for (const NpvEntry& entry : entries) {
    DimBucket& bucket = stream.buckets[static_cast<size_t>(entry.dim)];
    int32_t& slot = bucket.values[v];
    if (slot == 0) ++bucket.live_count;
    slot = entry.count;
    bucket.max_value = std::max(bucket.max_value, entry.count);
  }
}

void SkylineEarlyStopJoin::DeindexVertex(
    StreamState& stream, VertexId v, const std::vector<NpvEntry>& entries) {
  for (const NpvEntry& entry : entries) {
    DimBucket& bucket = stream.buckets[static_cast<size_t>(entry.dim)];
    auto it = bucket.values.find(v);
    GSPS_DCHECK(it != bucket.values.end() && it->second == entry.count);
    it->second = 0;  // Tombstone: the map node survives for the next add.
    --bucket.live_count;
    if (bucket.live_count == 0) {
      bucket.max_value = 0;
      continue;
    }
    if (entry.count == bucket.max_value) {
      int32_t new_max = 0;
      for (const auto& [vertex, value] : bucket.values) {
        (void)vertex;
        new_max = std::max(new_max, value);
      }
      bucket.max_value = new_max;
    }
  }
}

}  // namespace gsps
