// AVX-512 passes of the dominance kernel (AVX512F only — gathers, 64-bit
// test-against-zero, and epi32 compares into mask registers). Compiled with
// -mavx512f (see src/CMakeLists.txt); only called after runtime dispatch
// confirms CPU support. Layout contract: dominance_kernel_isa.h.

#include "gsps/join/dominance_kernel_isa.h"

#if defined(GSPS_DOMINANCE_HAVE_AVX512)

#include <immintrin.h>

namespace gsps::kernel_detail {

void SigPassAvx512(const NpvSignature* sigs, int32_t n_padded,
                   NpvSignature hay_sig, uint64_t* accept_words) {
  uint8_t* out = reinterpret_cast<uint8_t*>(accept_words);
  const __m512i nothay = _mm512_set1_epi64(static_cast<long long>(~hay_sig));
  for (int32_t i = 0; i < n_padded; i += 8) {
    const __m512i s = _mm512_load_si512(sigs + i);
    // Accept lane iff (sig & ~hay) == 0.
    out[i / 8] = static_cast<uint8_t>(_mm512_testn_epi64_mask(s, nothay));
  }
}

void MaskPassAvx512(const DominanceBlockLayout& layout, const int32_t* dense,
                    const uint64_t* accept_words, uint64_t* mask_words) {
  const uint16_t* accept = reinterpret_cast<const uint16_t*>(accept_words);
  uint16_t* mask = reinterpret_cast<uint16_t*>(mask_words);
  for (int32_t b = 0; b < layout.num_blocks; ++b) {
    if (accept[b] == 0) {  // Whole block signature-rejected: not dominated.
      mask[b] = 0;
      continue;
    }
    const int32_t base = layout.block_offset[static_cast<size_t>(b)];
    const int32_t slots = layout.block_slots[static_cast<size_t>(b)];
    __mmask16 fail = 0;
    for (int32_t s = 0; s < slots; ++s) {
      const int32_t off = base + s * 16;
      const __m512i d = _mm512_load_si512(layout.dims.data() + off);
      const __m512i c = _mm512_load_si512(layout.counts.data() + off);
      // Full-mask gather with a zeroed source: same cost as the plain form,
      // but avoids gcc's undefined-__m512i idiom (-Wmaybe-uninitialized).
      const __m512i v = _mm512_mask_i32gather_epi32(
          _mm512_setzero_si512(), 0xFFFF, d, dense, 4);
      fail |= _mm512_cmpgt_epi32_mask(c, v);
    }
    mask[b] = static_cast<uint16_t>(~fail);
  }
}

void CountPassAvx512(const DominanceBlockLayout& layout, const int32_t* dense,
                     int32_t* counts) {
  const __m512i one = _mm512_set1_epi32(1);
  for (int32_t b = 0; b < layout.num_blocks; ++b) {
    const int32_t base = layout.block_offset[static_cast<size_t>(b)];
    const int32_t slots = layout.block_slots[static_cast<size_t>(b)];
    __m512i fails = _mm512_setzero_si512();
    for (int32_t s = 0; s < slots; ++s) {
      const int32_t off = base + s * 16;
      const __m512i d = _mm512_load_si512(layout.dims.data() + off);
      const __m512i c = _mm512_load_si512(layout.counts.data() + off);
      const __m512i v = _mm512_mask_i32gather_epi32(
          _mm512_setzero_si512(), 0xFFFF, d, dense, 4);
      const __mmask16 f = _mm512_cmpgt_epi32_mask(c, v);
      fails = _mm512_mask_add_epi32(fails, f, fails, one);
    }
    // Padding slots never fail; phantom lanes have nnz 0 and 0 fails.
    const __m512i nnz = _mm512_load_si512(layout.nnz.data() + b * 16);
    _mm512_store_si512(counts + b * 16, _mm512_sub_epi32(nnz, fails));
  }
}

}  // namespace gsps::kernel_detail

#endif  // GSPS_DOMINANCE_HAVE_AVX512
