#include "gsps/join/dominated_set_cover_join.h"

#include <algorithm>
#include <utility>

#include "gsps/common/check.h"
#include "gsps/obs/obs.h"

namespace gsps {

void DominatedSetCoverJoin::SetQueries(std::vector<QueryVectors> queries) {
  GSPS_CHECK(num_queries_ == 0 && qvec_query_.empty());
  num_queries_ = static_cast<int32_t>(queries.size());
  for (const QueryVectors& query : queries) {
    for (const Npv& vector : query.vectors) remap_.AddDims(vector);
  }
  remap_.Seal();
  dim_lists_.resize(static_cast<size_t>(remap_.num_dims()));
  std::vector<NpvEntry> translated;
  query_qvecs_.resize(queries.size());
  for (size_t j = 0; j < queries.size(); ++j) {
    int32_t tracked = 0;
    int32_t trivial = 0;
    for (const Npv& vector : queries[j].vectors) {
      const QVec qvec = static_cast<QVec>(qvec_query_.size());
      qvec_query_.push_back(static_cast<int32_t>(j));
      qvec_nnz_.push_back(vector.nnz());
      qvec_slot_.push_back(-1);
      query_qvecs_[j].push_back(qvec);
      if (vector.nnz() == 0) {
        ++trivial;
        continue;
      }
      ++tracked;
      // Query dims are all registered, so translation is lossless.
      remap_.Translate(vector, &translated);
      const int32_t slot = qvecs_.Append(translated);
      qvec_slot_[static_cast<size_t>(qvec)] = slot;
      slab_qvec_.push_back(qvec);
      for (const NpvEntry& entry : translated) {
        dim_lists_[static_cast<size_t>(entry.dim)].push_back(
            DimEntry{entry.count, qvec});
      }
    }
    query_tracked_vectors_.push_back(tracked);
    query_trivial_vectors_.push_back(trivial);
  }
  query_live_.assign(queries.size(), 1);
  for (std::vector<DimEntry>& list : dim_lists_) {
    std::sort(list.begin(), list.end(),
              [](const DimEntry& a, const DimEntry& b) {
                return a.value < b.value;
              });
  }
  batch_.Bind(qvecs_, remap_.num_dims());
  attr_.Reset(num_queries_);
  for (int32_t j = 0; j < num_queries_; ++j) {
    attr_.OnAddQuery(
        j, static_cast<int64_t>(query_tracked_vectors_[static_cast<size_t>(j)]));
  }
}

int32_t DominatedSetCoverJoin::AllocQuerySlot() {
  if (!free_queries_.empty()) {
    const int32_t j = free_queries_.back();
    free_queries_.pop_back();
    query_live_[static_cast<size_t>(j)] = 1;
    return j;
  }
  const int32_t j = num_queries_++;
  query_qvecs_.emplace_back();
  query_tracked_vectors_.push_back(0);
  query_trivial_vectors_.push_back(0);
  query_live_.push_back(1);
  for (StreamState& stream : streams_) {
    stream.covered_vectors.push_back(0);
  }
  return j;
}

DominatedSetCoverJoin::QVec DominatedSetCoverJoin::AllocQVec() {
  if (!free_qvecs_.empty()) {
    const QVec q = free_qvecs_.back();
    free_qvecs_.pop_back();
    return q;
  }
  const QVec q = static_cast<QVec>(qvec_query_.size());
  qvec_query_.push_back(-1);
  qvec_nnz_.push_back(0);
  qvec_slot_.push_back(-1);
  for (StreamState& stream : streams_) {
    stream.cover_count.push_back(0);
  }
  return q;
}

int32_t DominatedSetCoverJoin::AddQuery(const QueryVectors& query,
                                        bool* grew_dims) {
  *grew_dims = false;
  for (const Npv& vector : query.vectors) {
    if (!remap_.GrowDims(vector, &remap_scratch_)) continue;
    *grew_dims = true;
    GSPS_OBS_COUNT(Counter::kRemapRegrowths, 1);
    qvecs_.RemapDims(remap_scratch_);
    // Move the per-dimension lists to their new dense indices, highest
    // first (old_to_new is strictly increasing, so targets are processed
    // before sources overwrite them). A prefix that maps to itself is
    // untouched.
    const int32_t old_dims = static_cast<int32_t>(remap_scratch_.size());
    dim_lists_.resize(static_cast<size_t>(remap_.num_dims()));
    for (int32_t d = old_dims - 1; d >= 0; --d) {
      const DimId nd = remap_scratch_[static_cast<size_t>(d)];
      if (nd == d) break;  // Increasing map: the whole prefix is fixed.
      dim_lists_[static_cast<size_t>(nd)] =
          std::move(dim_lists_[static_cast<size_t>(d)]);
      dim_lists_[static_cast<size_t>(d)].clear();
    }
    // Stream-side dense entries move with the same map so the incremental
    // merge keeps retracting against the right lists. Dimensions the old
    // translation dropped are re-introduced by the caller's replay.
    for (StreamState& stream : streams_) {
      for (auto& [v, vertex] : stream.vertices) {
        for (NpvEntry& entry : vertex.entries) {
          entry.dim = remap_scratch_[static_cast<size_t>(entry.dim)];
        }
      }
    }
  }

  const int32_t j = AllocQuerySlot();
  int32_t tracked = 0;
  int32_t trivial = 0;
  std::vector<QVec>& mine = query_qvecs_[static_cast<size_t>(j)];
  for (const Npv& vector : query.vectors) {
    const QVec qvec = AllocQVec();
    qvec_query_[static_cast<size_t>(qvec)] = j;
    qvec_nnz_[static_cast<size_t>(qvec)] = vector.nnz();
    mine.push_back(qvec);
    if (vector.nnz() == 0) {
      ++trivial;
      continue;
    }
    ++tracked;
    remap_.Translate(vector, &translate_scratch_);
    const int32_t slot = qvecs_.Append(translate_scratch_);
    qvec_slot_[static_cast<size_t>(qvec)] = slot;
    if (slot == static_cast<int32_t>(slab_qvec_.size())) {
      slab_qvec_.push_back(qvec);
    } else {
      slab_qvec_[static_cast<size_t>(slot)] = qvec;
    }
    for (const NpvEntry& entry : translate_scratch_) {
      std::vector<DimEntry>& list = dim_lists_[static_cast<size_t>(entry.dim)];
      auto pos = std::upper_bound(list.begin(), list.end(), entry.count,
                                  [](int32_t value, const DimEntry& e) {
                                    return value < e.value;
                                  });
      list.insert(pos, DimEntry{entry.count, qvec});
    }
  }
  query_tracked_vectors_[static_cast<size_t>(j)] = tracked;
  query_trivial_vectors_[static_cast<size_t>(j)] = trivial;
  if (*grew_dims) {
    // RemapDims rewrote every live slot: the whole kernel mirror is stale.
    batch_.Bind(qvecs_, remap_.num_dims());
  } else {
    for (const QVec qvec : mine) {
      const int32_t slot = qvec_slot_[static_cast<size_t>(qvec)];
      if (slot >= 0) batch_.RefreshSlot(qvecs_, remap_.num_dims(), slot);
    }
  }

  // Establish the new qvecs' dominant counters against every live vertex.
  // The per-dimension lists already hold the new entries, but the
  // incremental merge only visits dimensions whose value moves, so the new
  // vectors must be seeded explicitly.
  for (StreamState& stream : streams_) {
    stream.cache_valid = false;
    for (auto& [v, vertex] : stream.vertices) {
      if (!vertex.live) continue;
      for (const QVec qvec : mine) {
        const int32_t slot = qvec_slot_[static_cast<size_t>(qvec)];
        if (slot < 0) continue;  // Trivial.
        int32_t satisfied = 0;
        const NpvEntry* hay = vertex.entries.data();
        const NpvEntry* const hay_end = hay + vertex.entries.size();
        for (const NpvEntry* e = qvecs_.begin(slot); e != qvecs_.end(slot);
             ++e) {
          while (hay != hay_end && hay->dim < e->dim) ++hay;
          if (hay != hay_end && hay->dim == e->dim && hay->count >= e->count) {
            ++satisfied;
          }
        }
        if (satisfied == 0) continue;
        vertex.dominant[qvec] = satisfied;
        if (satisfied == qvec_nnz_[static_cast<size_t>(qvec)]) {
          SetDominates(stream, qvec, true);
        }
      }
    }
  }
  attr_.OnAddQuery(j, static_cast<int64_t>(tracked));
  return j;
}

void DominatedSetCoverJoin::RemoveQuery(int32_t local_id) {
  GSPS_CHECK(local_id >= 0 && local_id < num_queries_);
  GSPS_CHECK_MSG(query_live_[static_cast<size_t>(local_id)] != 0,
                 "DominatedSetCoverJoin::RemoveQuery on a retired query");
  std::vector<QVec>& mine = query_qvecs_[static_cast<size_t>(local_id)];
  for (const QVec qvec : mine) {
    const int32_t slot = qvec_slot_[static_cast<size_t>(qvec)];
    if (slot >= 0) {
      // Drop this qvec's projected values from the per-dimension lists.
      for (const NpvEntry* e = qvecs_.begin(slot); e != qvecs_.end(slot);
           ++e) {
        std::vector<DimEntry>& list = dim_lists_[static_cast<size_t>(e->dim)];
        auto it = std::lower_bound(list.begin(), list.end(), e->count,
                                   [](const DimEntry& d, int32_t value) {
                                     return d.value < value;
                                   });
        while (it != list.end() && it->value == e->count && it->qvec != qvec) {
          ++it;
        }
        GSPS_CHECK(it != list.end() && it->qvec == qvec);
        list.erase(it);
      }
      qvecs_.Remove(slot);
      batch_.RefreshSlot(qvecs_, remap_.num_dims(), slot);
      slab_qvec_[static_cast<size_t>(slot)] = -1;
      qvec_slot_[static_cast<size_t>(qvec)] = -1;
    }
    for (StreamState& stream : streams_) {
      stream.cover_count[static_cast<size_t>(qvec)] = 0;
      for (auto& [v, vertex] : stream.vertices) {
        // Zero the counter in place; the node stays so re-adding the same
        // query allocates nothing (see the note in AdjustRange).
        auto counter = vertex.dominant.find(qvec);
        if (counter != vertex.dominant.end()) counter->second = 0;
      }
    }
    qvec_query_[static_cast<size_t>(qvec)] = -1;
    qvec_nnz_[static_cast<size_t>(qvec)] = 0;
    free_qvecs_.push_back(qvec);
  }
  mine.clear();
  for (StreamState& stream : streams_) {
    stream.covered_vectors[static_cast<size_t>(local_id)] = 0;
    stream.cache_valid = false;
  }
  query_tracked_vectors_[static_cast<size_t>(local_id)] = 0;
  query_trivial_vectors_[static_cast<size_t>(local_id)] = 0;
  query_live_[static_cast<size_t>(local_id)] = 0;
  free_queries_.push_back(local_id);
  attr_.OnRemoveQuery(local_id);
}

void DominatedSetCoverJoin::SetNumStreams(int num_streams) {
  GSPS_CHECK(streams_.empty());
  streams_.resize(static_cast<size_t>(num_streams));
  for (StreamState& stream : streams_) {
    stream.cover_count.assign(qvec_query_.size(), 0);
    stream.covered_vectors.assign(static_cast<size_t>(num_queries_), 0);
  }
}

void DominatedSetCoverJoin::UpdateStreamVertex(int stream_index, VertexId v,
                                               const Npv& npv) {
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  StreamVertexState& vertex = stream.vertices[v];
  if (!vertex.live) {
    vertex.live = true;
    if (++stream.live_vertices == 1) stream.cache_valid = false;
  }
  remap_.Translate(npv, &translate_scratch_);
  if (vertex.entries.empty() && !translate_scratch_.empty() &&
      qvecs_.size() > 0) {
    // Bulk insert: every dominant counter of this vertex is zero (fresh
    // vertex, or all prior contributions retracted), so one count-mode
    // kernel sweep produces them all — SatisfiedCount(k) is exactly the
    // counter the per-dimension AdjustRange walks would have accumulated
    // from zero.
    batch_.ComputeCounts(
        translate_scratch_.data(),
        translate_scratch_.data() + translate_scratch_.size(),
        &pending_kernel_);
    for (int32_t k = 0; k < qvecs_.size(); ++k) {
      const int32_t satisfied = batch_.SatisfiedCount(k);
      if (satisfied == 0) continue;
      const QVec qvec = slab_qvec_[static_cast<size_t>(k)];
      vertex.dominant[qvec] = satisfied;
      if (satisfied == qvec_nnz_[static_cast<size_t>(qvec)]) {
        SetDominates(stream, qvec, true);
      }
    }
    vertex.entries.assign(translate_scratch_.begin(),
                          translate_scratch_.end());
    return;
  }
  // Incremental position update (the paper's Fig. 8 maintenance): only the
  // dimensions whose value moved contribute counter adjustments, and within
  // a dimension only the query entries between the old and new position.
  auto old_it = vertex.entries.begin();
  const auto old_end = vertex.entries.end();
  auto new_it = translate_scratch_.begin();
  const auto new_end = translate_scratch_.end();
  while (old_it != old_end || new_it != new_end) {
    if (new_it == new_end || (old_it != old_end && old_it->dim < new_it->dim)) {
      AdjustRange(stream, vertex, old_it->dim, 0, old_it->count, -1);
      ++old_it;
    } else if (old_it == old_end || new_it->dim < old_it->dim) {
      AdjustRange(stream, vertex, new_it->dim, 0, new_it->count, +1);
      ++new_it;
    } else {
      if (old_it->count < new_it->count) {
        AdjustRange(stream, vertex, old_it->dim, old_it->count,
                    new_it->count, +1);
      } else if (new_it->count < old_it->count) {
        AdjustRange(stream, vertex, old_it->dim, new_it->count,
                    old_it->count, -1);
      }
      ++old_it;
      ++new_it;
    }
  }
  vertex.entries.assign(translate_scratch_.begin(), translate_scratch_.end());
}

void DominatedSetCoverJoin::RemoveStreamVertex(int stream_index, VertexId v) {
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  auto it = stream.vertices.find(v);
  if (it == stream.vertices.end() || !it->second.live) return;
  Apply(stream, it->second, -1);
  it->second.live = false;
  it->second.entries.clear();
  if (--stream.live_vertices == 0) stream.cache_valid = false;
}

void DominatedSetCoverJoin::CandidatesForStream(int stream_index,
                                                std::vector<int>* out) {
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  if (stream.cache_valid) {
    GSPS_OBS_COUNT(Counter::kJoinVerdictsReused, 1);
  } else {
    // Timed manually (not via StageTimer) because the elapsed micros also
    // feed the per-query attribution split; decimated because a refresh is
    // sub-microsecond (see JoinRefreshSampleTick).
    const bool timed = obs::kEnabled &&
                       (obs::CurrentSink() != nullptr ||
                        obs::FlightRecorderArmed()) &&
                       obs::JoinRefreshSampleTick();
    const int64_t refresh_start = timed ? obs::MonotonicMicros() : 0;
    stream.cache.clear();
    const bool stream_nonempty = stream.live_vertices > 0;
    for (int32_t j = 0; j < num_queries_; ++j) {
      if (query_live_[static_cast<size_t>(j)] == 0) continue;
      if (stream.covered_vectors[static_cast<size_t>(j)] !=
          query_tracked_vectors_[static_cast<size_t>(j)]) {
        continue;
      }
      if (query_trivial_vectors_[static_cast<size_t>(j)] > 0 &&
          !stream_nonempty) {
        continue;
      }
      stream.cache.push_back(static_cast<int>(j));
    }
    stream.cache_valid = true;
    if (timed) {
      const int64_t micros = obs::MonotonicMicros() - refresh_start;
      obs::StageSample(obs::Stage::kJoinRefresh, micros, stream_index);
      attr_.AddRefresh(micros);
    }
  }
  out->assign(stream.cache.begin(), stream.cache.end());
  attr_.AddProbes(pending_kernel_.tests + pending_rounds_);
  GSPS_OBS_COUNT(Counter::kJoinPairsIn, static_cast<int64_t>(num_queries_));
  GSPS_OBS_COUNT(Counter::kJoinPairsOut, static_cast<int64_t>(out->size()));
  GSPS_OBS_COUNT(Counter::kJoinSetCoverRounds, pending_rounds_);
  GSPS_OBS_COUNT(Counter::kJoinSetCoverFlips, pending_flips_);
  GSPS_OBS_COUNT(Counter::kJoinDominanceTests, pending_kernel_.tests);
  if constexpr (obs::kEnabled) {
    if (obs::MetricSink* sink = obs::CurrentSink(); sink != nullptr) {
      sink->Add(batch_.batch_counter(), pending_kernel_.batches);
    }
  }
  pending_rounds_ = 0;
  pending_flips_ = 0;
  pending_kernel_ = DominanceKernelStats{};
}

void DominatedSetCoverJoin::Apply(StreamState& stream,
                                  StreamVertexState& vertex, int delta) {
  for (const NpvEntry& entry : vertex.entries) {
    AdjustRange(stream, vertex, entry.dim, 0, entry.count, delta);
  }
}

void DominatedSetCoverJoin::AdjustRange(StreamState& stream,
                                        StreamVertexState& vertex, DimId dim,
                                        int32_t from, int32_t to, int delta) {
  GSPS_DCHECK(from < to);
  GSPS_DCHECK(dim >= 0 && dim < remap_.num_dims());
  ++pending_rounds_;
  const std::vector<DimEntry>& list = dim_lists_[static_cast<size_t>(dim)];
  auto value_less = [](int32_t value, const DimEntry& e) {
    return value < e.value;
  };
  // Query entries with value in (from, to]: the ones whose domination
  // status by this stream vertex flips when its value moves from..to.
  auto begin =
      from == 0 ? list.begin()
                : std::upper_bound(list.begin(), list.end(), from, value_less);
  auto end = std::upper_bound(list.begin(), list.end(), to, value_less);
  for (auto it = begin; it != end; ++it) {
    auto [counter_it, inserted] = vertex.dominant.try_emplace(it->qvec, 0);
    const int32_t before = counter_it->second;
    counter_it->second += delta;
    const int32_t after = counter_it->second;
    GSPS_DCHECK(after >= 0);
    const int32_t needed = qvec_nnz_[static_cast<size_t>(it->qvec)];
    if (before != needed && after == needed) {
      SetDominates(stream, it->qvec, true);
    } else if (before == needed && after != needed) {
      SetDominates(stream, it->qvec, false);
    }
    // Zero-count entries stay in the map: erasing and re-inserting them
    // would allocate a node on every churn cycle, and nothing iterates the
    // map — entries are only ever looked up by key.
    (void)inserted;
  }
}

void DominatedSetCoverJoin::CheckChurnInvariants() const {
  qvecs_.CheckKernelLayout();
  int32_t live_slots = 0;
  int64_t expected_dim_entries = 0;
  for (int32_t j = 0; j < num_queries_; ++j) {
    const auto& mine = query_qvecs_[static_cast<size_t>(j)];
    if (query_live_[static_cast<size_t>(j)] == 0) {
      GSPS_CHECK(mine.empty());
      continue;
    }
    int32_t tracked = 0;
    int32_t trivial = 0;
    for (const QVec qvec : mine) {
      GSPS_CHECK(qvec_query_[static_cast<size_t>(qvec)] == j);
      const int32_t slot = qvec_slot_[static_cast<size_t>(qvec)];
      if (slot < 0) {
        GSPS_CHECK(qvec_nnz_[static_cast<size_t>(qvec)] == 0);
        ++trivial;
        continue;
      }
      ++tracked;
      ++live_slots;
      GSPS_CHECK(qvecs_.live(slot));
      GSPS_CHECK(slab_qvec_[static_cast<size_t>(slot)] == qvec);
      GSPS_CHECK(qvecs_.nnz(slot) == qvec_nnz_[static_cast<size_t>(qvec)]);
      expected_dim_entries += qvecs_.nnz(slot);
    }
    GSPS_CHECK(tracked == query_tracked_vectors_[static_cast<size_t>(j)]);
    GSPS_CHECK(trivial == query_trivial_vectors_[static_cast<size_t>(j)]);
  }
  GSPS_CHECK(live_slots == qvecs_.num_live());
  int64_t dim_entries = 0;
  for (const std::vector<DimEntry>& list : dim_lists_) {
    for (size_t i = 0; i + 1 < list.size(); ++i) {
      GSPS_CHECK(list[i].value <= list[i + 1].value);
    }
    dim_entries += static_cast<int64_t>(list.size());
  }
  GSPS_CHECK(dim_entries == expected_dim_entries);
  // Recount covers from the per-vertex dominant counters.
  std::vector<int32_t> counts;
  std::vector<int32_t> covered;
  for (const StreamState& stream : streams_) {
    counts.assign(qvec_query_.size(), 0);
    covered.assign(static_cast<size_t>(num_queries_), 0);
    int32_t live_vertices = 0;
    for (const auto& [v, vertex] : stream.vertices) {
      if (!vertex.live) continue;
      ++live_vertices;
      for (const auto& [qvec, counter] : vertex.dominant) {
        if (qvec_slot_[static_cast<size_t>(qvec)] < 0) {
          GSPS_CHECK(counter == 0);
          continue;
        }
        if (counter == qvec_nnz_[static_cast<size_t>(qvec)]) {
          ++counts[static_cast<size_t>(qvec)];
        }
      }
    }
    GSPS_CHECK(live_vertices == stream.live_vertices);
    for (size_t q = 0; q < qvec_query_.size(); ++q) {
      GSPS_CHECK(counts[q] == stream.cover_count[q]);
      if (counts[q] > 0) ++covered[static_cast<size_t>(qvec_query_[q])];
    }
    for (int32_t j = 0; j < num_queries_; ++j) {
      GSPS_CHECK(covered[static_cast<size_t>(j)] ==
                 stream.covered_vectors[static_cast<size_t>(j)]);
    }
  }
}

void DominatedSetCoverJoin::SetDominates(StreamState& stream, QVec qvec,
                                         bool now_dominates) {
  ++pending_flips_;
  stream.cache_valid = false;
  int32_t& cover = stream.cover_count[static_cast<size_t>(qvec)];
  const int32_t query = qvec_query_[static_cast<size_t>(qvec)];
  if (now_dominates) {
    if (cover++ == 0) {
      ++stream.covered_vectors[static_cast<size_t>(query)];
    }
  } else {
    if (--cover == 0) {
      --stream.covered_vectors[static_cast<size_t>(query)];
    }
    GSPS_DCHECK(cover >= 0);
  }
}

}  // namespace gsps
