#include "gsps/join/dominated_set_cover_join.h"

#include <algorithm>
#include <utility>

#include "gsps/common/check.h"
#include "gsps/obs/obs.h"

namespace gsps {

void DominatedSetCoverJoin::SetQueries(std::vector<QueryVectors> queries) {
  GSPS_CHECK(queries_.empty());
  queries_ = std::move(queries);
  for (size_t j = 0; j < queries_.size(); ++j) {
    int32_t tracked = 0;
    int32_t trivial = 0;
    for (const Npv& vector : queries_[j].vectors) {
      const QVec qvec = static_cast<QVec>(qvec_query_.size());
      qvec_query_.push_back(static_cast<int32_t>(j));
      qvec_nnz_.push_back(vector.nnz());
      if (vector.nnz() == 0) {
        ++trivial;
        continue;
      }
      ++tracked;
      for (const NpvEntry& entry : vector.entries()) {
        dim_lists_[entry.dim].push_back(DimEntry{entry.count, qvec});
      }
    }
    query_tracked_vectors_.push_back(tracked);
    query_trivial_vectors_.push_back(trivial);
  }
  for (auto& [dim, list] : dim_lists_) {
    (void)dim;
    std::sort(list.begin(), list.end(),
              [](const DimEntry& a, const DimEntry& b) {
                return a.value < b.value;
              });
  }
}

void DominatedSetCoverJoin::SetNumStreams(int num_streams) {
  GSPS_CHECK(streams_.empty());
  streams_.resize(static_cast<size_t>(num_streams));
  for (StreamState& stream : streams_) {
    stream.cover_count.assign(qvec_query_.size(), 0);
    stream.covered_vectors.assign(queries_.size(), 0);
  }
}

void DominatedSetCoverJoin::UpdateStreamVertex(int stream_index, VertexId v,
                                               const Npv& npv) {
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  StreamVertexState& vertex = stream.vertices[v];
  // Incremental position update (the paper's Fig. 8 maintenance): only the
  // dimensions whose value moved contribute counter adjustments, and within
  // a dimension only the query entries between the old and new position.
  auto old_it = vertex.npv.entries().begin();
  const auto old_end = vertex.npv.entries().end();
  auto new_it = npv.entries().begin();
  const auto new_end = npv.entries().end();
  while (old_it != old_end || new_it != new_end) {
    if (new_it == new_end || (old_it != old_end && old_it->dim < new_it->dim)) {
      AdjustRange(stream, vertex, old_it->dim, 0, old_it->count, -1);
      ++old_it;
    } else if (old_it == old_end || new_it->dim < old_it->dim) {
      AdjustRange(stream, vertex, new_it->dim, 0, new_it->count, +1);
      ++new_it;
    } else {
      if (old_it->count < new_it->count) {
        AdjustRange(stream, vertex, old_it->dim, old_it->count,
                    new_it->count, +1);
      } else if (new_it->count < old_it->count) {
        AdjustRange(stream, vertex, old_it->dim, new_it->count,
                    old_it->count, -1);
      }
      ++old_it;
      ++new_it;
    }
  }
  vertex.npv = npv;
}

void DominatedSetCoverJoin::RemoveStreamVertex(int stream_index, VertexId v) {
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  auto it = stream.vertices.find(v);
  if (it == stream.vertices.end()) return;
  Apply(stream, it->second, -1);
  stream.vertices.erase(it);
}

std::vector<int> DominatedSetCoverJoin::CandidatesForStream(int stream_index) {
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  const bool stream_nonempty = !stream.vertices.empty();
  std::vector<int> candidates;
  for (size_t j = 0; j < queries_.size(); ++j) {
    if (stream.covered_vectors[j] != query_tracked_vectors_[j]) continue;
    if (query_trivial_vectors_[j] > 0 && !stream_nonempty) continue;
    candidates.push_back(static_cast<int>(j));
  }
  GSPS_OBS_COUNT(Counter::kJoinPairsIn, static_cast<int64_t>(queries_.size()));
  GSPS_OBS_COUNT(Counter::kJoinPairsOut,
                 static_cast<int64_t>(candidates.size()));
  GSPS_OBS_COUNT(Counter::kJoinSetCoverRounds, pending_rounds_);
  GSPS_OBS_COUNT(Counter::kJoinSetCoverFlips, pending_flips_);
  pending_rounds_ = 0;
  pending_flips_ = 0;
  return candidates;
}

void DominatedSetCoverJoin::Apply(StreamState& stream,
                                  StreamVertexState& vertex, int delta) {
  for (const NpvEntry& entry : vertex.npv.entries()) {
    AdjustRange(stream, vertex, entry.dim, 0, entry.count, delta);
  }
}

void DominatedSetCoverJoin::AdjustRange(StreamState& stream,
                                        StreamVertexState& vertex, DimId dim,
                                        int32_t from, int32_t to, int delta) {
  GSPS_DCHECK(from < to);
  ++pending_rounds_;
  auto list_it = dim_lists_.find(dim);
  if (list_it == dim_lists_.end()) return;
  const std::vector<DimEntry>& list = list_it->second;
  auto value_less = [](int32_t value, const DimEntry& e) {
    return value < e.value;
  };
  // Query entries with value in (from, to]: the ones whose domination
  // status by this stream vertex flips when its value moves from..to.
  auto begin =
      from == 0 ? list.begin()
                : std::upper_bound(list.begin(), list.end(), from, value_less);
  auto end = std::upper_bound(list.begin(), list.end(), to, value_less);
  for (auto it = begin; it != end; ++it) {
    auto [counter_it, inserted] = vertex.dominant.try_emplace(it->qvec, 0);
    const int32_t before = counter_it->second;
    counter_it->second += delta;
    const int32_t after = counter_it->second;
    GSPS_DCHECK(after >= 0);
    const int32_t needed = qvec_nnz_[static_cast<size_t>(it->qvec)];
    if (before != needed && after == needed) {
      SetDominates(stream, it->qvec, true);
    } else if (before == needed && after != needed) {
      SetDominates(stream, it->qvec, false);
    }
    // Zero-count entries stay in the map: erasing and re-inserting them
    // would allocate a node on every churn cycle, and nothing iterates the
    // map — entries are only ever looked up by key.
    (void)inserted;
  }
}

void DominatedSetCoverJoin::SetDominates(StreamState& stream, QVec qvec,
                                         bool now_dominates) {
  ++pending_flips_;
  int32_t& cover = stream.cover_count[static_cast<size_t>(qvec)];
  const int32_t query = qvec_query_[static_cast<size_t>(qvec)];
  if (now_dominates) {
    if (cover++ == 0) {
      ++stream.covered_vectors[static_cast<size_t>(query)];
    }
  } else {
    if (--cover == 0) {
      --stream.covered_vectors[static_cast<size_t>(query)];
    }
    GSPS_DCHECK(cover >= 0);
  }
}

}  // namespace gsps
