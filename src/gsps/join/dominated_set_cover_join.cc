#include "gsps/join/dominated_set_cover_join.h"

#include <algorithm>
#include <utility>

#include "gsps/common/check.h"
#include "gsps/obs/obs.h"

namespace gsps {

void DominatedSetCoverJoin::SetQueries(std::vector<QueryVectors> queries) {
  GSPS_CHECK(num_queries_ == 0 && qvec_query_.empty());
  num_queries_ = static_cast<int32_t>(queries.size());
  for (const QueryVectors& query : queries) {
    for (const Npv& vector : query.vectors) remap_.AddDims(vector);
  }
  remap_.Seal();
  dim_lists_.resize(static_cast<size_t>(remap_.num_dims()));
  std::vector<NpvEntry> translated;
  for (size_t j = 0; j < queries.size(); ++j) {
    int32_t tracked = 0;
    int32_t trivial = 0;
    for (const Npv& vector : queries[j].vectors) {
      const QVec qvec = static_cast<QVec>(qvec_query_.size());
      qvec_query_.push_back(static_cast<int32_t>(j));
      qvec_nnz_.push_back(vector.nnz());
      if (vector.nnz() == 0) {
        ++trivial;
        continue;
      }
      ++tracked;
      // Query dims are all registered, so translation is lossless.
      remap_.Translate(vector, &translated);
      qvecs_.Append(translated);
      slab_qvec_.push_back(qvec);
      for (const NpvEntry& entry : translated) {
        dim_lists_[static_cast<size_t>(entry.dim)].push_back(
            DimEntry{entry.count, qvec});
      }
    }
    query_tracked_vectors_.push_back(tracked);
    query_trivial_vectors_.push_back(trivial);
  }
  for (std::vector<DimEntry>& list : dim_lists_) {
    std::sort(list.begin(), list.end(),
              [](const DimEntry& a, const DimEntry& b) {
                return a.value < b.value;
              });
  }
  batch_.Bind(qvecs_, remap_.num_dims());
}

void DominatedSetCoverJoin::SetNumStreams(int num_streams) {
  GSPS_CHECK(streams_.empty());
  streams_.resize(static_cast<size_t>(num_streams));
  for (StreamState& stream : streams_) {
    stream.cover_count.assign(qvec_query_.size(), 0);
    stream.covered_vectors.assign(static_cast<size_t>(num_queries_), 0);
  }
}

void DominatedSetCoverJoin::UpdateStreamVertex(int stream_index, VertexId v,
                                               const Npv& npv) {
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  StreamVertexState& vertex = stream.vertices[v];
  if (!vertex.live) {
    vertex.live = true;
    if (++stream.live_vertices == 1) stream.cache_valid = false;
  }
  remap_.Translate(npv, &translate_scratch_);
  if (vertex.entries.empty() && !translate_scratch_.empty() &&
      qvecs_.size() > 0) {
    // Bulk insert: every dominant counter of this vertex is zero (fresh
    // vertex, or all prior contributions retracted), so one count-mode
    // kernel sweep produces them all — SatisfiedCount(k) is exactly the
    // counter the per-dimension AdjustRange walks would have accumulated
    // from zero.
    batch_.ComputeCounts(
        translate_scratch_.data(),
        translate_scratch_.data() + translate_scratch_.size(),
        &pending_kernel_);
    for (int32_t k = 0; k < qvecs_.size(); ++k) {
      const int32_t satisfied = batch_.SatisfiedCount(k);
      if (satisfied == 0) continue;
      const QVec qvec = slab_qvec_[static_cast<size_t>(k)];
      vertex.dominant[qvec] = satisfied;
      if (satisfied == qvec_nnz_[static_cast<size_t>(qvec)]) {
        SetDominates(stream, qvec, true);
      }
    }
    vertex.entries.assign(translate_scratch_.begin(),
                          translate_scratch_.end());
    return;
  }
  // Incremental position update (the paper's Fig. 8 maintenance): only the
  // dimensions whose value moved contribute counter adjustments, and within
  // a dimension only the query entries between the old and new position.
  auto old_it = vertex.entries.begin();
  const auto old_end = vertex.entries.end();
  auto new_it = translate_scratch_.begin();
  const auto new_end = translate_scratch_.end();
  while (old_it != old_end || new_it != new_end) {
    if (new_it == new_end || (old_it != old_end && old_it->dim < new_it->dim)) {
      AdjustRange(stream, vertex, old_it->dim, 0, old_it->count, -1);
      ++old_it;
    } else if (old_it == old_end || new_it->dim < old_it->dim) {
      AdjustRange(stream, vertex, new_it->dim, 0, new_it->count, +1);
      ++new_it;
    } else {
      if (old_it->count < new_it->count) {
        AdjustRange(stream, vertex, old_it->dim, old_it->count,
                    new_it->count, +1);
      } else if (new_it->count < old_it->count) {
        AdjustRange(stream, vertex, old_it->dim, new_it->count,
                    old_it->count, -1);
      }
      ++old_it;
      ++new_it;
    }
  }
  vertex.entries.assign(translate_scratch_.begin(), translate_scratch_.end());
}

void DominatedSetCoverJoin::RemoveStreamVertex(int stream_index, VertexId v) {
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  auto it = stream.vertices.find(v);
  if (it == stream.vertices.end() || !it->second.live) return;
  Apply(stream, it->second, -1);
  it->second.live = false;
  it->second.entries.clear();
  if (--stream.live_vertices == 0) stream.cache_valid = false;
}

void DominatedSetCoverJoin::CandidatesForStream(int stream_index,
                                                std::vector<int>* out) {
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  if (stream.cache_valid) {
    GSPS_OBS_COUNT(Counter::kJoinVerdictsReused, 1);
  } else {
    stream.cache.clear();
    const bool stream_nonempty = stream.live_vertices > 0;
    for (int32_t j = 0; j < num_queries_; ++j) {
      if (stream.covered_vectors[static_cast<size_t>(j)] !=
          query_tracked_vectors_[static_cast<size_t>(j)]) {
        continue;
      }
      if (query_trivial_vectors_[static_cast<size_t>(j)] > 0 &&
          !stream_nonempty) {
        continue;
      }
      stream.cache.push_back(static_cast<int>(j));
    }
    stream.cache_valid = true;
  }
  out->assign(stream.cache.begin(), stream.cache.end());
  GSPS_OBS_COUNT(Counter::kJoinPairsIn, static_cast<int64_t>(num_queries_));
  GSPS_OBS_COUNT(Counter::kJoinPairsOut, static_cast<int64_t>(out->size()));
  GSPS_OBS_COUNT(Counter::kJoinSetCoverRounds, pending_rounds_);
  GSPS_OBS_COUNT(Counter::kJoinSetCoverFlips, pending_flips_);
  GSPS_OBS_COUNT(Counter::kJoinDominanceTests, pending_kernel_.tests);
  if constexpr (obs::kEnabled) {
    if (obs::MetricSink* sink = obs::CurrentSink(); sink != nullptr) {
      sink->Add(batch_.batch_counter(), pending_kernel_.batches);
    }
  }
  pending_rounds_ = 0;
  pending_flips_ = 0;
  pending_kernel_ = DominanceKernelStats{};
}

void DominatedSetCoverJoin::Apply(StreamState& stream,
                                  StreamVertexState& vertex, int delta) {
  for (const NpvEntry& entry : vertex.entries) {
    AdjustRange(stream, vertex, entry.dim, 0, entry.count, delta);
  }
}

void DominatedSetCoverJoin::AdjustRange(StreamState& stream,
                                        StreamVertexState& vertex, DimId dim,
                                        int32_t from, int32_t to, int delta) {
  GSPS_DCHECK(from < to);
  GSPS_DCHECK(dim >= 0 && dim < remap_.num_dims());
  ++pending_rounds_;
  const std::vector<DimEntry>& list = dim_lists_[static_cast<size_t>(dim)];
  auto value_less = [](int32_t value, const DimEntry& e) {
    return value < e.value;
  };
  // Query entries with value in (from, to]: the ones whose domination
  // status by this stream vertex flips when its value moves from..to.
  auto begin =
      from == 0 ? list.begin()
                : std::upper_bound(list.begin(), list.end(), from, value_less);
  auto end = std::upper_bound(list.begin(), list.end(), to, value_less);
  for (auto it = begin; it != end; ++it) {
    auto [counter_it, inserted] = vertex.dominant.try_emplace(it->qvec, 0);
    const int32_t before = counter_it->second;
    counter_it->second += delta;
    const int32_t after = counter_it->second;
    GSPS_DCHECK(after >= 0);
    const int32_t needed = qvec_nnz_[static_cast<size_t>(it->qvec)];
    if (before != needed && after == needed) {
      SetDominates(stream, it->qvec, true);
    } else if (before == needed && after != needed) {
      SetDominates(stream, it->qvec, false);
    }
    // Zero-count entries stay in the map: erasing and re-inserting them
    // would allocate a node on every churn cycle, and nothing iterates the
    // map — entries are only ever looked up by key.
    (void)inserted;
  }
}

void DominatedSetCoverJoin::SetDominates(StreamState& stream, QVec qvec,
                                         bool now_dominates) {
  ++pending_flips_;
  stream.cache_valid = false;
  int32_t& cover = stream.cover_count[static_cast<size_t>(qvec)];
  const int32_t query = qvec_query_[static_cast<size_t>(qvec)];
  if (now_dominates) {
    if (cover++ == 0) {
      ++stream.covered_vectors[static_cast<size_t>(query)];
    }
  } else {
    if (--cover == 0) {
      --stream.covered_vectors[static_cast<size_t>(query)];
    }
    GSPS_DCHECK(cover >= 0);
  }
}

}  // namespace gsps
