// AVX2 passes of the dominance kernel. Compiled with -mavx2 (see
// src/CMakeLists.txt); only ever called after the runtime dispatcher has
// confirmed CPU support. Layout contract: dominance_kernel_isa.h.

#include "gsps/join/dominance_kernel_isa.h"

#if defined(GSPS_DOMINANCE_HAVE_AVX2)

#include <immintrin.h>

namespace gsps::kernel_detail {

void SigPassAvx2(const NpvSignature* sigs, int32_t n_padded,
                 NpvSignature hay_sig, uint64_t* accept_words) {
  uint8_t* out = reinterpret_cast<uint8_t*>(accept_words);
  const __m256i hay = _mm256_set1_epi64x(static_cast<long long>(hay_sig));
  const __m256i zero = _mm256_setzero_si256();
  for (int32_t i = 0; i < n_padded; i += 8) {
    const __m256i lo =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(sigs + i));
    const __m256i hi =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(sigs + i + 4));
    // Accept lane iff (sig & ~hay) == 0, i.e. the hay covers the needle.
    const __m256i rem_lo = _mm256_andnot_si256(hay, lo);
    const __m256i rem_hi = _mm256_andnot_si256(hay, hi);
    const int acc_lo = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(rem_lo, zero)));
    const int acc_hi = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(rem_hi, zero)));
    out[i / 8] = static_cast<uint8_t>(acc_lo | (acc_hi << 4));
  }
}

void MaskPassAvx2(const DominanceBlockLayout& layout, const int32_t* dense,
                  const uint64_t* accept_words, uint64_t* mask_words) {
  const uint8_t* accept = reinterpret_cast<const uint8_t*>(accept_words);
  uint8_t* mask = reinterpret_cast<uint8_t*>(mask_words);
  for (int32_t b = 0; b < layout.num_blocks; ++b) {
    if (accept[b] == 0) {  // Whole block signature-rejected: not dominated.
      mask[b] = 0;
      continue;
    }
    const int32_t base = layout.block_offset[static_cast<size_t>(b)];
    const int32_t slots = layout.block_slots[static_cast<size_t>(b)];
    __m256i fail = _mm256_setzero_si256();
    for (int32_t s = 0; s < slots; ++s) {
      const int32_t off = base + s * 8;
      const __m256i d = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(layout.dims.data() + off));
      const __m256i c = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(layout.counts.data() + off));
      const __m256i v = _mm256_i32gather_epi32(dense, d, 4);
      fail = _mm256_or_si256(fail, _mm256_cmpgt_epi32(c, v));
    }
    const int failed = _mm256_movemask_ps(_mm256_castsi256_ps(fail));
    mask[b] = static_cast<uint8_t>(~failed & 0xFF);
  }
}

void CountPassAvx2(const DominanceBlockLayout& layout, const int32_t* dense,
                   int32_t* counts) {
  for (int32_t b = 0; b < layout.num_blocks; ++b) {
    const int32_t base = layout.block_offset[static_cast<size_t>(b)];
    const int32_t slots = layout.block_slots[static_cast<size_t>(b)];
    __m256i fails = _mm256_setzero_si256();
    for (int32_t s = 0; s < slots; ++s) {
      const int32_t off = base + s * 8;
      const __m256i d = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(layout.dims.data() + off));
      const __m256i c = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(layout.counts.data() + off));
      const __m256i v = _mm256_i32gather_epi32(dense, d, 4);
      // cmpgt yields -1 per failing lane; subtracting accumulates +1.
      fails = _mm256_sub_epi32(fails, _mm256_cmpgt_epi32(c, v));
    }
    // Padding slots never fail, so satisfied = nnz - fails needs no
    // correction; phantom lanes have nnz 0 and 0 fails.
    const __m256i nnz = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(layout.nnz.data() + b * 8));
    _mm256_store_si256(reinterpret_cast<__m256i*>(counts + b * 8),
                       _mm256_sub_epi32(nnz, fails));
  }
}

}  // namespace gsps::kernel_detail

#endif  // GSPS_DOMINANCE_HAVE_AVX2
