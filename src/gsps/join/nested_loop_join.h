// Nested-loop join: the reference strategy (paper §IV.B's baseline).
//
// For each query graph, every query vertex must be dominated by at least one
// stream vertex (Lemma 4.2). The pairwise dominance scan is the baseline the
// optimized strategies are property-tested against, but it is evaluated
// incrementally: when a stream vertex's NPV changes, only that vertex is
// re-tested against the query vectors (signature fast-reject first, then a
// linear merge against the dense query slab), and per-query-vector cover
// counts absorb the delta. CandidatesForStream is an O(queries) counter
// scan, answered from a cached list when no delta touched the stream.

#ifndef GSPS_JOIN_NESTED_LOOP_JOIN_H_
#define GSPS_JOIN_NESTED_LOOP_JOIN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "gsps/join/dominance_kernel.h"
#include "gsps/join/join_strategy.h"
#include "gsps/obs/attribution.h"

namespace gsps {

class NestedLoopJoin final : public JoinStrategy {
 public:
  NestedLoopJoin() = default;

  void SetQueries(std::vector<QueryVectors> queries) override;
  void SetNumStreams(int num_streams) override;
  int32_t AddQuery(const QueryVectors& query, bool* grew_dims) override;
  void RemoveQuery(int32_t local_id) override;
  void UpdateStreamVertex(int stream, VertexId v, const Npv& npv) override;
  void RemoveStreamVertex(int stream, VertexId v) override;
  void CandidatesForStream(int stream, std::vector<int>* out) override;
  using JoinStrategy::CandidatesForStream;
  void CheckChurnInvariants() const override;
  void FlushAttribution() override { attr_.Flush(); }
  std::string_view name() const override { return "NL"; }

 private:
  struct VertexState {
    // Dense-translated NPV entries and their signature (see NpvDimRemap).
    std::vector<NpvEntry> entries;
    NpvSignature sig = 0;
    // Slab indices of the query vectors this vertex currently dominates.
    std::vector<int32_t> dominated;
    // Tombstone flag: removed vertices keep their buffers' capacity so a
    // later re-add allocates nothing.
    bool live = false;
  };

  struct StreamState {
    std::unordered_map<VertexId, VertexState> vertices;
    // Per query vector (slab index): stream vertices dominating it.
    std::vector<int32_t> cover_count;
    // Per query graph: non-trivial query vectors with cover_count > 0.
    std::vector<int32_t> covered_vectors;
    int32_t live_vertices = 0;
    // Cached candidate list, valid until the next delta for this stream.
    std::vector<int> cache;
    bool cache_valid = false;
  };

  // Removes `vertex`'s cover contributions.
  void Retract(StreamState& stream, VertexState& vertex);

  // Registers `query`'s dims (growing the remap and rewriting the slab if
  // needed) and allocates a query slot. Shared by SetQueries and AddQuery.
  int32_t AllocQuerySlot();

  // Query side, slotted for churn: non-trivial query vectors live
  // dim-translated in a contiguous slab; qvec_query_ maps slab index ->
  // owning query graph, query_qvecs_ the inverse.
  NpvDimRemap remap_;
  NpvSlab qvecs_;
  // Batched dominance kernel, re-bound after every churn op; one
  // ComputeMask per vertex update replaces the per-vector scan.
  DominanceBatch batch_;
  std::vector<int32_t> qvec_query_;
  std::vector<std::vector<int32_t>> query_qvecs_;
  // Per query graph: number of non-trivial / trivial (nnz == 0) vectors. A
  // trivial vector is dominated by any stream vertex, so it is covered
  // exactly when the stream is non-empty.
  std::vector<int32_t> query_tracked_vectors_;
  std::vector<int32_t> query_trivial_vectors_;
  // Slot liveness + free list: retired query ids are reused, and dead
  // slots never surface as candidates.
  std::vector<uint8_t> query_live_;
  std::vector<int32_t> free_queries_;
  int32_t num_queries_ = 0;

  std::vector<StreamState> streams_;

  // Churn scratch, capacity-retained across ops so steady-state churn is
  // allocation-free.
  std::vector<NpvEntry> scratch_entries_;
  std::vector<DimId> scratch_old_to_new_;
  std::vector<uint8_t> slot_removed_;

  // Observability accumulators (see the note in dominated_set_cover_join.h):
  // bumped by the kernel in the update loops, flushed once per
  // CandidatesForStream.
  DominanceKernelStats pending_kernel_;
  // Per-query work attribution; weight is the query's tracked vector
  // count. Flushed by the engine at metrics cadence.
  obs::QueryAttribution attr_;
};

}  // namespace gsps

#endif  // GSPS_JOIN_NESTED_LOOP_JOIN_H_
