// Nested-loop join: the reference strategy (paper §IV.B's baseline).
//
// For each query graph, every query vertex must be dominated by at least one
// stream vertex (Lemma 4.2). No derived state beyond the raw vectors;
// deliberately simple so the optimized strategies can be property-tested
// against it.

#ifndef GSPS_JOIN_NESTED_LOOP_JOIN_H_
#define GSPS_JOIN_NESTED_LOOP_JOIN_H_

#include <unordered_map>
#include <vector>

#include "gsps/join/join_strategy.h"

namespace gsps {

class NestedLoopJoin final : public JoinStrategy {
 public:
  NestedLoopJoin() = default;

  void SetQueries(std::vector<QueryVectors> queries) override;
  void SetNumStreams(int num_streams) override;
  void UpdateStreamVertex(int stream, VertexId v, const Npv& npv) override;
  void RemoveStreamVertex(int stream, VertexId v) override;
  std::vector<int> CandidatesForStream(int stream) override;
  std::string_view name() const override { return "NL"; }

 private:
  std::vector<QueryVectors> queries_;
  // Per stream: live vertex -> current NPV.
  std::vector<std::unordered_map<VertexId, Npv>> streams_;
};

}  // namespace gsps

#endif  // GSPS_JOIN_NESTED_LOOP_JOIN_H_
