// Strategy factory and helpers shared by the join implementations.

#ifndef GSPS_JOIN_DOMINANCE_H_
#define GSPS_JOIN_DOMINANCE_H_

#include "gsps/join/join_strategy.h"
#include "gsps/nnt/nnt_set.h"

namespace gsps {

// Builds the QueryVectors (one Npv per vertex) for a query graph whose NNTs
// are maintained in `nnts`. Vertex order follows ascending vertex id.
QueryVectors BuildQueryVectors(const NntSet& nnts);

}  // namespace gsps

#endif  // GSPS_JOIN_DOMINANCE_H_
