// Skyline-with-early-stop join (paper §IV.B.2, Fig. 11).
//
// The complement view of dominated-set-cover: a pair (stream, query) can be
// pruned as soon as ONE query vector is found that no stream vector
// dominates — a bichromatic skyline point of the query vectors with respect
// to the stream vectors. Three optimizations from the paper:
//
//   1. Query side: only the monochromatic skyline (maximal) query vectors
//      need checking — if a dominated query vector were uncovered, the
//      vector dominating it would be uncovered too (transitivity).
//   2. Query side: skyline points are checked in descending order of how
//      many query vectors they dominate; "bigger" points are less likely to
//      be covered, so the early stop fires sooner.
//   3. Stream side: per dimension the strategy keeps the maximum value and
//      the cardinality of stream vectors with a non-zero entry. A query
//      point exceeding a dimension's max is immediately a skyline point;
//      otherwise only the stream vectors of the query point's
//      minimum-cardinality non-zero dimension are compared (any dominating
//      stream vector must be non-zero wherever the query point is).
//
// On top of the paper's pruning, verdicts are delta-cached: each stream
// remembers, per query, whether all skyline points were covered and — when
// not — the index of the first uncovered point (the witness). Every NPV
// delta records the changed vertex's old|new dimension signature; at the
// next refresh a query is re-examined only when some changed signature
// could dominate one of its points, and within a query the points before
// the witness are re-checked only when a changed signature covers them
// (they were all covered at the last refresh, so an unaffected point stays
// covered; an unaffected witness stays uncovered). The changed-signature
// list is bounded — on overflow the refresh falls back to the combined OR
// of all changed signatures, still sound, just a weaker filter.

#ifndef GSPS_JOIN_SKYLINE_EARLYSTOP_JOIN_H_
#define GSPS_JOIN_SKYLINE_EARLYSTOP_JOIN_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gsps/join/dominance_kernel.h"
#include "gsps/join/join_strategy.h"
#include "gsps/obs/attribution.h"

namespace gsps {

class SkylineEarlyStopJoin final : public JoinStrategy {
 public:
  SkylineEarlyStopJoin() = default;

  void SetQueries(std::vector<QueryVectors> queries) override;
  void SetNumStreams(int num_streams) override;
  int32_t AddQuery(const QueryVectors& query, bool* grew_dims) override;
  void RemoveQuery(int32_t local_id) override;
  void UpdateStreamVertex(int stream, VertexId v, const Npv& npv) override;
  void RemoveStreamVertex(int stream, VertexId v) override;
  void CandidatesForStream(int stream, std::vector<int>* out) override;
  using JoinStrategy::CandidatesForStream;
  void CheckChurnInvariants() const override;
  void FlushAttribution() override { attr_.Flush(); }
  std::string_view name() const override { return "Skyline"; }

  // Statistics: how many query skyline points were compared against stream
  // vectors since construction (exposed for the ablation bench).
  int64_t comparisons() const { return comparisons_; }

 private:
  struct QueryPlan {
    // Maximal (monochromatic-skyline, deduplicated) vectors, in descending
    // dominated-count order; slab indices into points_.
    std::vector<int32_t> points;
    // OR of the point signatures: a delta whose signatures miss this can
    // not change any point's coverage.
    NpvSignature union_sig = 0;
    // True if the query has a vector with no non-zero dimension; such a
    // vector is covered exactly when the stream graph is non-empty.
    bool has_trivial_vector = false;
    // True for a query with no vectors at all (always a candidate).
    bool empty_query = false;
    // Slot liveness: retired plans keep their buffers for reuse and are
    // skipped by CandidatesForStream.
    bool live = false;
  };

  // Cached per-(stream, query) outcome of the skyline scan. Invariant: at
  // the last refresh every point before `witness` was covered, and when
  // !covered the point at `witness` was not. The initial state {false, 0}
  // (or {true, 0} for point-less plans) is exactly the empty stream's.
  struct Verdict {
    bool covered = false;
    int32_t witness = 0;
  };

  struct DimBucket {
    // Stream vertex -> value in this dimension; 0 is a tombstone (removed
    // entries keep their map node so churn never allocates).
    std::unordered_map<VertexId, int32_t> values;
    int32_t live_count = 0;
    int32_t max_value = 0;
  };

  struct VertexState {
    // Dense-translated NPV entries and their signature.
    std::vector<NpvEntry> entries;
    NpvSignature sig = 0;
    bool live = false;
  };

  // Bounded list of old|new signatures of vertices changed since the last
  // refresh.
  static constexpr int kMaxChangedSigs = 16;

  struct StreamState {
    std::unordered_map<VertexId, VertexState> vertices;
    // Indexed by dense dim id.
    std::vector<DimBucket> buckets;
    int32_t live_vertices = 0;
    std::vector<Verdict> verdicts;
    std::array<NpvSignature, kMaxChangedSigs> changed_sigs{};
    int32_t num_changed = 0;
    bool changed_overflow = false;
    NpvSignature combined_changed = 0;
    std::vector<int> cache;
    bool cache_valid = false;
  };

  // True if some stream vector dominates point `point` (slab index).
  bool Covered(const StreamState& stream, int32_t point);

  // True if a changed signature could have flipped coverage of a point with
  // signature `sig`.
  bool Affected(const StreamState& stream, NpvSignature sig) const;

  void PushChanged(StreamState& stream, NpvSignature sig);

  // Re-runs the skyline scan for one query, skipping points the deltas
  // provably left alone.
  void Reevaluate(StreamState& stream, const QueryPlan& plan,
                  Verdict* verdict);

  void IndexVertex(StreamState& stream, VertexId v,
                   const std::vector<NpvEntry>& entries);
  void DeindexVertex(StreamState& stream, VertexId v,
                     const std::vector<NpvEntry>& entries);

  // Computes the plan (skyline + ordering + point slab slots) for one
  // query's vectors into plans_[j] using the member scratch. Shared by
  // SetQueries and AddQuery (which follows it with an eager verdict scan).
  void BuildPlan(int32_t j, const std::vector<Npv>& vectors,
                 DominanceKernelStats* build_stats);

  std::vector<QueryPlan> plans_;
  std::vector<int32_t> free_plans_;
  // All skyline points of all plans, dense-translated, in one slab.
  NpvDimRemap remap_;
  NpvSlab points_;
  std::vector<StreamState> streams_;
  std::vector<NpvEntry> translate_scratch_;
  // Plan-build scratch (monochromatic-skyline computation), capacity-
  // retained so steady-state AddQuery is allocation-free.
  NpvSlab scratch_slab_;
  DominanceBatch scratch_batch_;
  std::vector<int32_t> scratch_distinct_;
  std::vector<uint64_t> scratch_row_;
  std::vector<uint64_t> scratch_colset_;
  std::vector<int32_t> scratch_dom_count_;
  std::vector<std::pair<int32_t, int32_t>> scratch_order_;
  std::vector<DimId> remap_scratch_;
  int64_t comparisons_ = 0;

  // Observability accumulators (see dominated_set_cover_join.h), flushed
  // once per CandidatesForStream.
  int64_t pending_tests_ = 0;
  int64_t pending_rejects_ = 0;
  // Per-query work attribution; weight is the plan's skyline point count.
  // Flushed by the engine at metrics cadence.
  obs::QueryAttribution attr_;
};

}  // namespace gsps

#endif  // GSPS_JOIN_SKYLINE_EARLYSTOP_JOIN_H_
