// Skyline-with-early-stop join (paper §IV.B.2, Fig. 11).
//
// The complement view of dominated-set-cover: a pair (stream, query) can be
// pruned as soon as ONE query vector is found that no stream vector
// dominates — a bichromatic skyline point of the query vectors with respect
// to the stream vectors. Three optimizations from the paper:
//
//   1. Query side: only the monochromatic skyline (maximal) query vectors
//      need checking — if a dominated query vector were uncovered, the
//      vector dominating it would be uncovered too (transitivity).
//   2. Query side: skyline points are checked in descending order of how
//      many query vectors they dominate; "bigger" points are less likely to
//      be covered, so the early stop fires sooner.
//   3. Stream side: per dimension the strategy keeps the maximum value and
//      the cardinality of stream vectors with a non-zero entry. A query
//      point exceeding a dimension's max is immediately a skyline point;
//      otherwise only the stream vectors of the query point's
//      minimum-cardinality non-zero dimension are compared (any dominating
//      stream vector must be non-zero wherever the query point is).

#ifndef GSPS_JOIN_SKYLINE_EARLYSTOP_JOIN_H_
#define GSPS_JOIN_SKYLINE_EARLYSTOP_JOIN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "gsps/join/join_strategy.h"

namespace gsps {

class SkylineEarlyStopJoin final : public JoinStrategy {
 public:
  SkylineEarlyStopJoin() = default;

  void SetQueries(std::vector<QueryVectors> queries) override;
  void SetNumStreams(int num_streams) override;
  void UpdateStreamVertex(int stream, VertexId v, const Npv& npv) override;
  void RemoveStreamVertex(int stream, VertexId v) override;
  std::vector<int> CandidatesForStream(int stream) override;
  std::string_view name() const override { return "Skyline"; }

  // Statistics: how many query skyline points were compared against stream
  // vectors since construction (exposed for the ablation bench).
  int64_t comparisons() const { return comparisons_; }

 private:
  struct QueryPlan {
    // Maximal (monochromatic-skyline, deduplicated) vectors, in descending
    // dominated-count order.
    std::vector<Npv> skyline;
    // True if the query has a vector with no non-zero dimension; such a
    // vector is covered exactly when the stream graph is non-empty.
    bool has_trivial_vector = false;
    // True for a query with no vectors at all (always a candidate).
    bool empty_query = false;
  };

  struct DimBucket {
    // Stream vertices with a non-zero value in this dimension.
    std::unordered_map<VertexId, int32_t> values;
    int32_t max_value = 0;
  };

  struct StreamState {
    std::unordered_map<VertexId, Npv> vertices;
    std::unordered_map<DimId, DimBucket> buckets;
  };

  // True if some stream vector dominates `point`.
  bool Covered(const StreamState& stream, const Npv& point);

  void IndexVertex(StreamState& stream, VertexId v, const Npv& npv);
  void DeindexVertex(StreamState& stream, VertexId v, const Npv& npv);

  std::vector<QueryPlan> plans_;
  std::vector<StreamState> streams_;
  int64_t comparisons_ = 0;
};

}  // namespace gsps

#endif  // GSPS_JOIN_SKYLINE_EARLYSTOP_JOIN_H_
