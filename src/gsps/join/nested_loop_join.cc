#include "gsps/join/nested_loop_join.h"

#include <algorithm>
#include <utility>

#include "gsps/common/check.h"
#include "gsps/obs/obs.h"

namespace gsps {

void NestedLoopJoin::SetQueries(std::vector<QueryVectors> queries) {
  GSPS_CHECK(num_queries_ == 0 && qvec_query_.empty());
  num_queries_ = static_cast<int32_t>(queries.size());
  for (const QueryVectors& query : queries) {
    for (const Npv& vector : query.vectors) remap_.AddDims(vector);
  }
  remap_.Seal();
  std::vector<NpvEntry> translated;
  query_qvecs_.resize(queries.size());
  for (size_t j = 0; j < queries.size(); ++j) {
    int32_t tracked = 0;
    int32_t trivial = 0;
    for (const Npv& vector : queries[j].vectors) {
      if (vector.nnz() == 0) {
        ++trivial;
        continue;
      }
      ++tracked;
      remap_.Translate(vector, &translated);
      const int32_t k = qvecs_.Append(translated);
      qvec_query_.push_back(static_cast<int32_t>(j));
      query_qvecs_[j].push_back(k);
    }
    query_tracked_vectors_.push_back(tracked);
    query_trivial_vectors_.push_back(trivial);
  }
  query_live_.assign(queries.size(), 1);
  batch_.Bind(qvecs_, remap_.num_dims());
  attr_.Reset(num_queries_);
  for (int32_t j = 0; j < num_queries_; ++j) {
    attr_.OnAddQuery(j, static_cast<int64_t>(
                            query_qvecs_[static_cast<size_t>(j)].size()));
  }
}

int32_t NestedLoopJoin::AllocQuerySlot() {
  if (!free_queries_.empty()) {
    const int32_t j = free_queries_.back();
    free_queries_.pop_back();
    query_live_[static_cast<size_t>(j)] = 1;
    return j;
  }
  const int32_t j = num_queries_++;
  query_qvecs_.emplace_back();
  query_tracked_vectors_.push_back(0);
  query_trivial_vectors_.push_back(0);
  query_live_.push_back(1);
  for (StreamState& stream : streams_) {
    stream.covered_vectors.push_back(0);
  }
  return j;
}

int32_t NestedLoopJoin::AddQuery(const QueryVectors& query, bool* grew_dims) {
  *grew_dims = false;
  for (const Npv& vector : query.vectors) {
    if (remap_.GrowDims(vector, &scratch_old_to_new_)) {
      *grew_dims = true;
      qvecs_.RemapDims(scratch_old_to_new_);
      GSPS_OBS_COUNT(Counter::kRemapRegrowths, 1);
    }
  }
  const int32_t j = AllocQuerySlot();
  int32_t tracked = 0;
  int32_t trivial = 0;
  for (const Npv& vector : query.vectors) {
    if (vector.nnz() == 0) {
      ++trivial;
      continue;
    }
    ++tracked;
    remap_.Translate(vector, &scratch_entries_);
    const int32_t k = qvecs_.Append(scratch_entries_);
    if (k == static_cast<int32_t>(qvec_query_.size())) {
      qvec_query_.push_back(j);
    } else {
      qvec_query_[static_cast<size_t>(k)] = j;
    }
    query_qvecs_[static_cast<size_t>(j)].push_back(k);
  }
  query_tracked_vectors_[static_cast<size_t>(j)] = tracked;
  query_trivial_vectors_[static_cast<size_t>(j)] = trivial;
  if (*grew_dims) {
    // RemapDims rewrote every live slot: the whole kernel mirror is stale.
    batch_.Bind(qvecs_, remap_.num_dims());
  } else {
    for (const int32_t k : query_qvecs_[static_cast<size_t>(j)]) {
      batch_.RefreshSlot(qvecs_, remap_.num_dims(), k);
    }
  }

  for (StreamState& stream : streams_) {
    stream.cover_count.resize(static_cast<size_t>(qvecs_.size()), 0);
    stream.cache_valid = false;
    if (*grew_dims) continue;  // Caller replays every vertex instead.
    // Fold the new vectors into the existing cover state: each live vertex
    // is tested against just the new slab slots (scalar — the slots are
    // few and the kernel would re-test the whole slab).
    for (auto& [v, vertex] : stream.vertices) {
      if (!vertex.live) continue;
      for (const int32_t k : query_qvecs_[static_cast<size_t>(j)]) {
        if (!SignatureCovers(vertex.sig, qvecs_.signature(k))) continue;
        if (!DominatesRange(vertex.entries.data(),
                            vertex.entries.data() + vertex.entries.size(),
                            qvecs_.begin(k), qvecs_.end(k))) {
          continue;
        }
        vertex.dominated.push_back(k);
        if (stream.cover_count[static_cast<size_t>(k)]++ == 0) {
          ++stream.covered_vectors[static_cast<size_t>(j)];
        }
      }
    }
  }
  attr_.OnAddQuery(j, static_cast<int64_t>(
                          query_qvecs_[static_cast<size_t>(j)].size()));
  return j;
}

void NestedLoopJoin::RemoveQuery(int32_t local_id) {
  GSPS_CHECK(local_id >= 0 && local_id < num_queries_);
  GSPS_CHECK_MSG(query_live_[static_cast<size_t>(local_id)] != 0,
                 "NestedLoopJoin::RemoveQuery on a retired query");
  std::vector<int32_t>& slots = query_qvecs_[static_cast<size_t>(local_id)];
  slot_removed_.resize(static_cast<size_t>(qvecs_.size()), 0);
  for (const int32_t k : slots) slot_removed_[static_cast<size_t>(k)] = 1;
  for (StreamState& stream : streams_) {
    for (auto& [v, vertex] : stream.vertices) {
      if (!vertex.live) continue;
      auto keep = std::remove_if(
          vertex.dominated.begin(), vertex.dominated.end(), [&](int32_t k) {
            return slot_removed_[static_cast<size_t>(k)] != 0;
          });
      vertex.dominated.erase(keep, vertex.dominated.end());
    }
    for (const int32_t k : slots) {
      stream.cover_count[static_cast<size_t>(k)] = 0;
    }
    stream.covered_vectors[static_cast<size_t>(local_id)] = 0;
    stream.cache_valid = false;
  }
  for (const int32_t k : slots) {
    slot_removed_[static_cast<size_t>(k)] = 0;
    qvecs_.Remove(k);
    batch_.RefreshSlot(qvecs_, remap_.num_dims(), k);
  }
  slots.clear();
  query_tracked_vectors_[static_cast<size_t>(local_id)] = 0;
  query_trivial_vectors_[static_cast<size_t>(local_id)] = 0;
  query_live_[static_cast<size_t>(local_id)] = 0;
  free_queries_.push_back(local_id);
  attr_.OnRemoveQuery(local_id);
}

void NestedLoopJoin::SetNumStreams(int num_streams) {
  GSPS_CHECK(streams_.empty());
  streams_.resize(static_cast<size_t>(num_streams));
  for (StreamState& stream : streams_) {
    stream.cover_count.assign(qvec_query_.size(), 0);
    stream.covered_vectors.assign(static_cast<size_t>(num_queries_), 0);
  }
}

void NestedLoopJoin::UpdateStreamVertex(int stream_index, VertexId v,
                                        const Npv& npv) {
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  VertexState& vertex = stream.vertices[v];
  if (vertex.live) {
    Retract(stream, vertex);
  } else {
    vertex.live = true;
    ++stream.live_vertices;
  }
  vertex.sig = remap_.Translate(npv, &vertex.entries);
  vertex.dominated.clear();
  const NpvEntry* const begin = vertex.entries.data();
  const NpvEntry* const end = begin + vertex.entries.size();
  batch_.ComputeMask(begin, end, vertex.sig, &pending_kernel_);
  const std::vector<uint64_t>& mask = batch_.mask_words();
  for (size_t w = 0; w < mask.size(); ++w) {
    uint64_t word = mask[w];
    while (word != 0) {
      const int32_t k = static_cast<int32_t>(
          w * 64 + static_cast<size_t>(__builtin_ctzll(word)));
      word &= word - 1;
      vertex.dominated.push_back(k);
      if (stream.cover_count[static_cast<size_t>(k)]++ == 0) {
        ++stream.covered_vectors[static_cast<size_t>(qvec_query_[k])];
      }
    }
  }
  stream.cache_valid = false;
}

void NestedLoopJoin::RemoveStreamVertex(int stream_index, VertexId v) {
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  auto it = stream.vertices.find(v);
  if (it == stream.vertices.end() || !it->second.live) return;
  Retract(stream, it->second);
  it->second.live = false;
  it->second.sig = 0;
  it->second.entries.clear();
  it->second.dominated.clear();
  --stream.live_vertices;
  stream.cache_valid = false;
}

void NestedLoopJoin::CandidatesForStream(int stream_index,
                                         std::vector<int>* out) {
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  if (stream.cache_valid) {
    GSPS_OBS_COUNT(Counter::kJoinVerdictsReused, 1);
  } else {
    // Timed manually (not via StageTimer) because the elapsed micros also
    // feed the per-query attribution split; decimated because a refresh is
    // sub-microsecond (see JoinRefreshSampleTick).
    const bool timed = obs::kEnabled &&
                       (obs::CurrentSink() != nullptr ||
                        obs::FlightRecorderArmed()) &&
                       obs::JoinRefreshSampleTick();
    const int64_t refresh_start = timed ? obs::MonotonicMicros() : 0;
    stream.cache.clear();
    for (int32_t j = 0; j < num_queries_; ++j) {
      if (query_live_[static_cast<size_t>(j)] == 0) continue;
      if (stream.covered_vectors[static_cast<size_t>(j)] !=
          query_tracked_vectors_[static_cast<size_t>(j)]) {
        continue;
      }
      if (query_trivial_vectors_[static_cast<size_t>(j)] > 0 &&
          stream.live_vertices == 0) {
        continue;
      }
      stream.cache.push_back(static_cast<int>(j));
    }
    stream.cache_valid = true;
    if (timed) {
      const int64_t micros = obs::MonotonicMicros() - refresh_start;
      obs::StageSample(obs::Stage::kJoinRefresh, micros, stream_index);
      attr_.AddRefresh(micros);
    }
  }
  out->assign(stream.cache.begin(), stream.cache.end());
  attr_.AddProbes(pending_kernel_.tests + pending_kernel_.sig_rejects);
  GSPS_OBS_COUNT(Counter::kJoinPairsIn, static_cast<int64_t>(num_queries_));
  GSPS_OBS_COUNT(Counter::kJoinPairsOut, static_cast<int64_t>(out->size()));
  GSPS_OBS_COUNT(Counter::kJoinDominanceTests, pending_kernel_.tests);
  GSPS_OBS_COUNT(Counter::kJoinSignatureRejects, pending_kernel_.sig_rejects);
  if constexpr (obs::kEnabled) {
    if (obs::MetricSink* sink = obs::CurrentSink(); sink != nullptr) {
      sink->Add(batch_.batch_counter(), pending_kernel_.batches);
    }
  }
  pending_kernel_ = DominanceKernelStats{};
}

void NestedLoopJoin::Retract(StreamState& stream, VertexState& vertex) {
  for (const int32_t k : vertex.dominated) {
    if (--stream.cover_count[static_cast<size_t>(k)] == 0) {
      --stream.covered_vectors[static_cast<size_t>(qvec_query_[k])];
    }
  }
}

void NestedLoopJoin::CheckChurnInvariants() const {
  qvecs_.CheckKernelLayout();
  int32_t live_slots = 0;
  for (int32_t j = 0; j < num_queries_; ++j) {
    const auto& slots = query_qvecs_[static_cast<size_t>(j)];
    if (query_live_[static_cast<size_t>(j)] == 0) {
      GSPS_CHECK(slots.empty());
      continue;
    }
    GSPS_CHECK(static_cast<int32_t>(slots.size()) ==
               query_tracked_vectors_[static_cast<size_t>(j)]);
    for (const int32_t k : slots) {
      GSPS_CHECK(qvecs_.live(k));
      GSPS_CHECK(qvec_query_[static_cast<size_t>(k)] == j);
      ++live_slots;
    }
  }
  GSPS_CHECK(live_slots == qvecs_.num_live());
  GSPS_CHECK(static_cast<int32_t>(free_queries_.size()) ==
             std::count(query_live_.begin(), query_live_.end(), 0));
  // Recount the per-stream cover state from the vertices.
  std::vector<int32_t> counts;
  std::vector<int32_t> covered;
  for (const StreamState& stream : streams_) {
    counts.assign(static_cast<size_t>(qvecs_.size()), 0);
    covered.assign(static_cast<size_t>(num_queries_), 0);
    int32_t live_vertices = 0;
    for (const auto& [v, vertex] : stream.vertices) {
      if (!vertex.live) continue;
      ++live_vertices;
      for (const int32_t k : vertex.dominated) {
        GSPS_CHECK(qvecs_.live(k));
        if (counts[static_cast<size_t>(k)]++ == 0) {
          ++covered[static_cast<size_t>(qvec_query_[k])];
        }
      }
    }
    GSPS_CHECK(live_vertices == stream.live_vertices);
    for (int32_t k = 0; k < qvecs_.size(); ++k) {
      GSPS_CHECK(counts[static_cast<size_t>(k)] ==
                 stream.cover_count[static_cast<size_t>(k)]);
    }
    for (int32_t j = 0; j < num_queries_; ++j) {
      GSPS_CHECK(covered[static_cast<size_t>(j)] ==
                 stream.covered_vectors[static_cast<size_t>(j)]);
    }
  }
}

}  // namespace gsps
