#include "gsps/join/nested_loop_join.h"

#include <utility>

#include "gsps/common/check.h"
#include "gsps/obs/obs.h"

namespace gsps {

void NestedLoopJoin::SetQueries(std::vector<QueryVectors> queries) {
  GSPS_CHECK(queries_.empty());
  queries_ = std::move(queries);
}

void NestedLoopJoin::SetNumStreams(int num_streams) {
  GSPS_CHECK(streams_.empty());
  streams_.resize(static_cast<size_t>(num_streams));
}

void NestedLoopJoin::UpdateStreamVertex(int stream, VertexId v,
                                        const Npv& npv) {
  streams_[static_cast<size_t>(stream)][v] = npv;
}

void NestedLoopJoin::RemoveStreamVertex(int stream, VertexId v) {
  streams_[static_cast<size_t>(stream)].erase(v);
}

std::vector<int> NestedLoopJoin::CandidatesForStream(int stream) {
  const std::unordered_map<VertexId, Npv>& vectors =
      streams_[static_cast<size_t>(stream)];
  std::vector<int> candidates;
  int64_t dominance_tests = 0;
  for (size_t j = 0; j < queries_.size(); ++j) {
    bool all_covered = true;
    for (const Npv& query_vector : queries_[j].vectors) {
      bool covered = false;
      for (const auto& [v, stream_vector] : vectors) {
        (void)v;
        ++dominance_tests;
        if (stream_vector.Dominates(query_vector)) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        all_covered = false;
        break;
      }
    }
    if (all_covered) candidates.push_back(static_cast<int>(j));
  }
  GSPS_OBS_COUNT(Counter::kJoinDominanceTests, dominance_tests);
  GSPS_OBS_COUNT(Counter::kJoinPairsIn, static_cast<int64_t>(queries_.size()));
  GSPS_OBS_COUNT(Counter::kJoinPairsOut,
                 static_cast<int64_t>(candidates.size()));
  return candidates;
}

}  // namespace gsps
