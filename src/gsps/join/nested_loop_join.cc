#include "gsps/join/nested_loop_join.h"

#include <utility>

#include "gsps/common/check.h"

namespace gsps {

void NestedLoopJoin::SetQueries(std::vector<QueryVectors> queries) {
  GSPS_CHECK(queries_.empty());
  queries_ = std::move(queries);
}

void NestedLoopJoin::SetNumStreams(int num_streams) {
  GSPS_CHECK(streams_.empty());
  streams_.resize(static_cast<size_t>(num_streams));
}

void NestedLoopJoin::UpdateStreamVertex(int stream, VertexId v,
                                        const Npv& npv) {
  streams_[static_cast<size_t>(stream)][v] = npv;
}

void NestedLoopJoin::RemoveStreamVertex(int stream, VertexId v) {
  streams_[static_cast<size_t>(stream)].erase(v);
}

std::vector<int> NestedLoopJoin::CandidatesForStream(int stream) {
  const std::unordered_map<VertexId, Npv>& vectors =
      streams_[static_cast<size_t>(stream)];
  std::vector<int> candidates;
  for (size_t j = 0; j < queries_.size(); ++j) {
    bool all_covered = true;
    for (const Npv& query_vector : queries_[j].vectors) {
      bool covered = false;
      for (const auto& [v, stream_vector] : vectors) {
        (void)v;
        if (stream_vector.Dominates(query_vector)) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        all_covered = false;
        break;
      }
    }
    if (all_covered) candidates.push_back(static_cast<int>(j));
  }
  return candidates;
}

}  // namespace gsps
