#include "gsps/join/nested_loop_join.h"

#include <utility>

#include "gsps/common/check.h"
#include "gsps/obs/obs.h"

namespace gsps {

void NestedLoopJoin::SetQueries(std::vector<QueryVectors> queries) {
  GSPS_CHECK(num_queries_ == 0 && qvec_query_.empty());
  num_queries_ = static_cast<int32_t>(queries.size());
  for (const QueryVectors& query : queries) {
    for (const Npv& vector : query.vectors) remap_.AddDims(vector);
  }
  remap_.Seal();
  std::vector<NpvEntry> translated;
  for (size_t j = 0; j < queries.size(); ++j) {
    int32_t tracked = 0;
    int32_t trivial = 0;
    for (const Npv& vector : queries[j].vectors) {
      if (vector.nnz() == 0) {
        ++trivial;
        continue;
      }
      ++tracked;
      remap_.Translate(vector, &translated);
      qvecs_.Append(translated);
      qvec_query_.push_back(static_cast<int32_t>(j));
    }
    query_tracked_vectors_.push_back(tracked);
    query_trivial_vectors_.push_back(trivial);
  }
  batch_.Bind(qvecs_, remap_.num_dims());
}

void NestedLoopJoin::SetNumStreams(int num_streams) {
  GSPS_CHECK(streams_.empty());
  streams_.resize(static_cast<size_t>(num_streams));
  for (StreamState& stream : streams_) {
    stream.cover_count.assign(qvec_query_.size(), 0);
    stream.covered_vectors.assign(static_cast<size_t>(num_queries_), 0);
  }
}

void NestedLoopJoin::UpdateStreamVertex(int stream_index, VertexId v,
                                        const Npv& npv) {
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  VertexState& vertex = stream.vertices[v];
  if (vertex.live) {
    Retract(stream, vertex);
  } else {
    vertex.live = true;
    ++stream.live_vertices;
  }
  vertex.sig = remap_.Translate(npv, &vertex.entries);
  vertex.dominated.clear();
  const NpvEntry* const begin = vertex.entries.data();
  const NpvEntry* const end = begin + vertex.entries.size();
  batch_.ComputeMask(begin, end, vertex.sig, &pending_kernel_);
  const std::vector<uint64_t>& mask = batch_.mask_words();
  for (size_t w = 0; w < mask.size(); ++w) {
    uint64_t word = mask[w];
    while (word != 0) {
      const int32_t k = static_cast<int32_t>(
          w * 64 + static_cast<size_t>(__builtin_ctzll(word)));
      word &= word - 1;
      vertex.dominated.push_back(k);
      if (stream.cover_count[static_cast<size_t>(k)]++ == 0) {
        ++stream.covered_vectors[static_cast<size_t>(qvec_query_[k])];
      }
    }
  }
  stream.cache_valid = false;
}

void NestedLoopJoin::RemoveStreamVertex(int stream_index, VertexId v) {
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  auto it = stream.vertices.find(v);
  if (it == stream.vertices.end() || !it->second.live) return;
  Retract(stream, it->second);
  it->second.live = false;
  it->second.sig = 0;
  it->second.entries.clear();
  it->second.dominated.clear();
  --stream.live_vertices;
  stream.cache_valid = false;
}

void NestedLoopJoin::CandidatesForStream(int stream_index,
                                         std::vector<int>* out) {
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  if (stream.cache_valid) {
    GSPS_OBS_COUNT(Counter::kJoinVerdictsReused, 1);
  } else {
    stream.cache.clear();
    for (int32_t j = 0; j < num_queries_; ++j) {
      if (stream.covered_vectors[static_cast<size_t>(j)] !=
          query_tracked_vectors_[static_cast<size_t>(j)]) {
        continue;
      }
      if (query_trivial_vectors_[static_cast<size_t>(j)] > 0 &&
          stream.live_vertices == 0) {
        continue;
      }
      stream.cache.push_back(static_cast<int>(j));
    }
    stream.cache_valid = true;
  }
  out->assign(stream.cache.begin(), stream.cache.end());
  GSPS_OBS_COUNT(Counter::kJoinPairsIn, static_cast<int64_t>(num_queries_));
  GSPS_OBS_COUNT(Counter::kJoinPairsOut, static_cast<int64_t>(out->size()));
  GSPS_OBS_COUNT(Counter::kJoinDominanceTests, pending_kernel_.tests);
  GSPS_OBS_COUNT(Counter::kJoinSignatureRejects, pending_kernel_.sig_rejects);
  if constexpr (obs::kEnabled) {
    if (obs::MetricSink* sink = obs::CurrentSink(); sink != nullptr) {
      sink->Add(batch_.batch_counter(), pending_kernel_.batches);
    }
  }
  pending_kernel_ = DominanceKernelStats{};
}

void NestedLoopJoin::Retract(StreamState& stream, VertexState& vertex) {
  for (const int32_t k : vertex.dominated) {
    if (--stream.cover_count[static_cast<size_t>(k)] == 0) {
      --stream.covered_vectors[static_cast<size_t>(qvec_query_[k])];
    }
  }
}

}  // namespace gsps
