#include "gsps/join/dominance_kernel.h"

#include <algorithm>
#include <cstdlib>

#include "gsps/common/check.h"
#include "gsps/join/dominance_kernel_isa.h"

namespace gsps {
namespace {

// Fused scalar mask pass: the PR 5 per-needle loop (signature reject, then
// an early-exit compare) over the dense hay array. Fills both the accept
// and mask bitsets; caller pre-zeroes them.
void FusedMaskScalar(const NpvSlab& slab, const int32_t* dense,
                     NpvSignature hay_sig, uint64_t* accept_words,
                     uint64_t* mask_words) {
  const int32_t n = slab.size();
  for (int32_t i = 0; i < n; ++i) {
    if ((slab.signature(i) & ~hay_sig) != 0) continue;  // Reject: bits stay 0.
    const uint64_t bit = uint64_t{1} << (static_cast<uint32_t>(i) % 64);
    accept_words[static_cast<size_t>(i) / 64] |= bit;
    bool dominated = true;
    for (const NpvEntry* e = slab.begin(i); e != slab.end(i); ++e) {
      if (dense[e->dim] < e->count) {
        dominated = false;
        break;
      }
    }
    if (dominated) mask_words[static_cast<size_t>(i) / 64] |= bit;
  }
}

void CountPassScalar(const NpvSlab& slab, const int32_t* dense,
                     int32_t* counts) {
  const int32_t n = slab.size();
  for (int32_t i = 0; i < n; ++i) {
    int32_t satisfied = 0;
    for (const NpvEntry* e = slab.begin(i); e != slab.end(i); ++e) {
      satisfied += dense[e->dim] >= e->count ? 1 : 0;
    }
    counts[static_cast<size_t>(i)] = satisfied;
  }
}

bool CpuHasIsa(DominanceIsa isa) {
  switch (isa) {
    case DominanceIsa::kScalar:
      return true;
    case DominanceIsa::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case DominanceIsa::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
}

DominanceIsa ResolveActiveIsa() {
  if (const char* force = std::getenv("GSPS_FORCE_ISA");
      force != nullptr && force[0] != '\0') {
    const std::optional<DominanceIsa> parsed = ParseDominanceIsa(force);
    GSPS_CHECK_MSG(parsed.has_value(),
                   "GSPS_FORCE_ISA must be scalar, avx2, or avx512");
    GSPS_CHECK_MSG(DominanceIsaCompiled(*parsed),
                   "GSPS_FORCE_ISA names an ISA this binary was built without");
    GSPS_CHECK_MSG(CpuHasIsa(*parsed),
                   "GSPS_FORCE_ISA names an ISA this CPU does not support");
    return *parsed;
  }
  if (DominanceIsaSupported(DominanceIsa::kAvx512)) return DominanceIsa::kAvx512;
  if (DominanceIsaSupported(DominanceIsa::kAvx2)) return DominanceIsa::kAvx2;
  return DominanceIsa::kScalar;
}

}  // namespace

const char* DominanceIsaName(DominanceIsa isa) {
  switch (isa) {
    case DominanceIsa::kScalar:
      return "scalar";
    case DominanceIsa::kAvx2:
      return "avx2";
    case DominanceIsa::kAvx512:
      return "avx512";
  }
  GSPS_CHECK_MSG(false, "unknown DominanceIsa");
  return "";
}

std::optional<DominanceIsa> ParseDominanceIsa(std::string_view name) {
  if (name == "scalar") return DominanceIsa::kScalar;
  if (name == "avx2") return DominanceIsa::kAvx2;
  if (name == "avx512") return DominanceIsa::kAvx512;
  return std::nullopt;
}

bool DominanceIsaCompiled(DominanceIsa isa) {
  switch (isa) {
    case DominanceIsa::kScalar:
      return true;
    case DominanceIsa::kAvx2:
#if defined(GSPS_DOMINANCE_HAVE_AVX2)
      return true;
#else
      return false;
#endif
    case DominanceIsa::kAvx512:
#if defined(GSPS_DOMINANCE_HAVE_AVX512)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool DominanceIsaSupported(DominanceIsa isa) {
  return DominanceIsaCompiled(isa) && CpuHasIsa(isa);
}

DominanceIsa ActiveDominanceIsa() {
  static const DominanceIsa resolved = [] {
    const DominanceIsa isa = ResolveActiveIsa();
    // First resolution stamps the gsps_build_info metric, so any binary
    // that ran a dominance batch reports the ISA it actually dispatched.
    obs::SetBuildInfoIsa(DominanceIsaName(isa));
    return isa;
  }();
  return resolved;
}

obs::Counter DominanceBatchCounter(DominanceIsa isa) {
  switch (isa) {
    case DominanceIsa::kScalar:
      return obs::Counter::kDominanceBatchesScalar;
    case DominanceIsa::kAvx2:
      return obs::Counter::kDominanceBatchesAvx2;
    case DominanceIsa::kAvx512:
      return obs::Counter::kDominanceBatchesAvx512;
  }
  GSPS_CHECK_MSG(false, "unknown DominanceIsa");
  return obs::Counter::kDominanceBatchesScalar;
}

DominanceBatch::DominanceBatch() : isa_(ActiveDominanceIsa()) {}

DominanceBatch::DominanceBatch(DominanceIsa isa) : isa_(isa) {
  GSPS_CHECK_MSG(DominanceIsaSupported(isa),
                 "DominanceBatch: requested ISA is not supported here");
}

void DominanceBatch::Bind(const NpvSlab& slab, int32_t num_dims) {
  GSPS_CHECK(num_dims >= 0);
  slab_ = &slab;
  num_dims_ = num_dims;
  bound_n_ = slab.size();
#if defined(GSPS_SANITIZE_ENABLED)
  slab.CheckKernelLayout();
#endif
  // dense_ keeps one slot even for a zero-dim universe so the padding
  // entries' dim 0 always gathers in-bounds.
  dense_.assign(static_cast<size_t>(std::max(num_dims, 1)), 0);

  const int32_t n = slab.size();
  accept_words_.assign(
      (static_cast<size_t>(slab.padded_sigs()) + 63) / 64, 0);
  if (isa_ == DominanceIsa::kScalar) {
    layout_ = DominanceBlockLayout{};
    mask_words_.assign((static_cast<size_t>(n) + 63) / 64, 0);
    counts_.assign(static_cast<size_t>(n), 0);
    return;
  }

  const int32_t lanes = isa_ == DominanceIsa::kAvx512 ? 16 : 8;
  layout_.lanes = lanes;
  layout_.num_vectors = n;
  layout_.num_blocks = (n + lanes - 1) / lanes;
  layout_.block_slots.assign(static_cast<size_t>(layout_.num_blocks), 0);
  layout_.block_offset.assign(static_cast<size_t>(layout_.num_blocks), 0);
  layout_.nnz.assign(static_cast<size_t>(layout_.num_blocks) * lanes, 0);
  int64_t total = 0;
  for (int32_t b = 0; b < layout_.num_blocks; ++b) {
    int32_t slots = 0;
    for (int32_t l = 0; l < lanes; ++l) {
      const int32_t i = b * lanes + l;
      if (i >= n) break;
      slots = std::max(slots, slab.nnz(i));
      layout_.nnz[static_cast<size_t>(i)] = slab.nnz(i);
    }
    layout_.block_slots[static_cast<size_t>(b)] = slots;
    layout_.block_offset[static_cast<size_t>(b)] =
        static_cast<int32_t>(total);
    total += static_cast<int64_t>(slots) * lanes;
  }
  // Slot padding {dim 0, count 0}: gathers dense_[0] and can never fail.
  layout_.dims.assign(static_cast<size_t>(total), 0);
  layout_.counts.assign(static_cast<size_t>(total), 0);
  for (int32_t i = 0; i < n; ++i) {
    const int32_t b = i / lanes;
    const int32_t lane = i % lanes;
    const int32_t base = layout_.block_offset[static_cast<size_t>(b)];
    const NpvEntry* e = slab.begin(i);
    for (int32_t s = 0; s < slab.nnz(i); ++s) {
      layout_.dims[static_cast<size_t>(base + s * lanes + lane)] = e[s].dim;
      layout_.counts[static_cast<size_t>(base + s * lanes + lane)] =
          e[s].count;
      GSPS_DCHECK(e[s].dim >= 0 && e[s].dim < num_dims);
    }
  }
  mask_words_.assign(
      (static_cast<size_t>(layout_.num_blocks) * lanes + 63) / 64, 0);
  counts_.assign(static_cast<size_t>(layout_.num_blocks) * lanes, 0);
}

void DominanceBatch::RefreshSlot(const NpvSlab& slab, int32_t num_dims,
                                 int32_t k) {
  if (slab_ != &slab || num_dims_ != num_dims || slab.size() != bound_n_) {
    Bind(slab, num_dims);
    return;
  }
  if (isa_ == DominanceIsa::kScalar) return;  // No mirror to patch.
  const int32_t nnz = slab.nnz(k);
  const int32_t lanes = layout_.lanes;
  const int32_t b = k / lanes;
  if (nnz > layout_.block_slots[static_cast<size_t>(b)]) {
    // The reused slot carries more entries than its block budgeted for;
    // only a full layout rebuild can widen the block.
    Bind(slab, num_dims);
    return;
  }
  const int32_t lane = k % lanes;
  const int32_t base = layout_.block_offset[static_cast<size_t>(b)];
  const NpvEntry* const e = slab.begin(k);
  for (int32_t s = 0; s < nnz; ++s) {
    layout_.dims[static_cast<size_t>(base + s * lanes + lane)] = e[s].dim;
    layout_.counts[static_cast<size_t>(base + s * lanes + lane)] = e[s].count;
    GSPS_DCHECK(e[s].dim >= 0 && e[s].dim < num_dims);
  }
  // Restore the {dim 0, count 0} padding over the lane's unused slots.
  for (int32_t s = nnz; s < layout_.block_slots[static_cast<size_t>(b)];
       ++s) {
    layout_.dims[static_cast<size_t>(base + s * lanes + lane)] = 0;
    layout_.counts[static_cast<size_t>(base + s * lanes + lane)] = 0;
  }
  layout_.nnz[static_cast<size_t>(k)] = nnz;
}

void DominanceBatch::Densify(const NpvEntry* begin, const NpvEntry* end) {
  for (const NpvEntry* e = begin; e != end; ++e) {
    GSPS_DCHECK(e->dim >= 0 && e->dim < num_dims_);
    dense_[static_cast<size_t>(e->dim)] = e->count;
  }
}

void DominanceBatch::Sparsify(const NpvEntry* begin, const NpvEntry* end) {
  for (const NpvEntry* e = begin; e != end; ++e) {
    dense_[static_cast<size_t>(e->dim)] = 0;
  }
}

void DominanceBatch::ClearPhantomBits(std::vector<uint64_t>* words) const {
  const int64_t n = bound_size();
  for (size_t w = 0; w < words->size(); ++w) {
    const int64_t base = static_cast<int64_t>(w) * 64;
    if (base >= n) {
      (*words)[w] = 0;
    } else if (base + 64 > n) {
      (*words)[w] &= ~uint64_t{0} >> (base + 64 - n);
    }
  }
}

void DominanceBatch::ComputeMask(const NpvEntry* hay_begin,
                                 const NpvEntry* hay_end,
                                 NpvSignature hay_sig,
                                 DominanceKernelStats* stats) {
  GSPS_DCHECK(slab_ != nullptr);
  Densify(hay_begin, hay_end);
  switch (isa_) {
    case DominanceIsa::kScalar:
      std::fill(accept_words_.begin(), accept_words_.end(), 0);
      std::fill(mask_words_.begin(), mask_words_.end(), 0);
      FusedMaskScalar(*slab_, dense_.data(), hay_sig, accept_words_.data(),
                      mask_words_.data());
      break;
#if defined(GSPS_DOMINANCE_HAVE_AVX2)
    case DominanceIsa::kAvx2:
      kernel_detail::SigPassAvx2(slab_->sig_data(), slab_->padded_sigs(),
                                 hay_sig, accept_words_.data());
      ClearPhantomBits(&accept_words_);
      kernel_detail::MaskPassAvx2(layout_, dense_.data(),
                                  accept_words_.data(), mask_words_.data());
      break;
#endif
#if defined(GSPS_DOMINANCE_HAVE_AVX512)
    case DominanceIsa::kAvx512:
      kernel_detail::SigPassAvx512(slab_->sig_data(), slab_->padded_sigs(),
                                   hay_sig, accept_words_.data());
      ClearPhantomBits(&accept_words_);
      kernel_detail::MaskPassAvx512(layout_, dense_.data(),
                                    accept_words_.data(), mask_words_.data());
      break;
#endif
    default:
      GSPS_CHECK_MSG(false, "DominanceBatch: ISA not compiled in");
  }
  ClearPhantomBits(&accept_words_);  // No-op for SIMD (already cleared).
  ClearPhantomBits(&mask_words_);
  // Freed slab slots carry the all-ones signature sentinel and {0, 0}
  // entries, so an all-ones hay would accept and trivially dominate them:
  // mask both bitsets with the slab's liveness words. Bits past the live
  // words' extent are already phantom-cleared to zero.
  const std::vector<uint64_t>& live = slab_->live_words();
  for (size_t w = 0; w < accept_words_.size() && w < live.size(); ++w) {
    accept_words_[w] &= live[w];
  }
  for (size_t w = 0; w < mask_words_.size() && w < live.size(); ++w) {
    mask_words_[w] &= live[w];
  }
  Sparsify(hay_begin, hay_end);

  int64_t accepted = 0;
  for (const uint64_t word : accept_words_) {
    accepted += __builtin_popcountll(word);
  }
  stats->tests += accepted;
  stats->sig_rejects += bound_size() - accepted;
  stats->batches += 1;
}

void DominanceBatch::ComputeCounts(const NpvEntry* hay_begin,
                                   const NpvEntry* hay_end,
                                   DominanceKernelStats* stats) {
  GSPS_DCHECK(slab_ != nullptr);
  Densify(hay_begin, hay_end);
  switch (isa_) {
    case DominanceIsa::kScalar:
      CountPassScalar(*slab_, dense_.data(), counts_.data());
      break;
#if defined(GSPS_DOMINANCE_HAVE_AVX2)
    case DominanceIsa::kAvx2:
      kernel_detail::CountPassAvx2(layout_, dense_.data(), counts_.data());
      break;
#endif
#if defined(GSPS_DOMINANCE_HAVE_AVX512)
    case DominanceIsa::kAvx512:
      kernel_detail::CountPassAvx512(layout_, dense_.data(), counts_.data());
      break;
#endif
    default:
      GSPS_CHECK_MSG(false, "DominanceBatch: ISA not compiled in");
  }
  Sparsify(hay_begin, hay_end);
  stats->tests += bound_size();
  stats->batches += 1;
}

}  // namespace gsps
