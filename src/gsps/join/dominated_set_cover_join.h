// Dominated Set Cover join (paper §IV.B.1, Fig. 8).
//
// Query side (fixed): every query vertex vector is projected into each of
// its non-zero single dimensions; per dimension the projected values are
// kept sorted. Dimensions are translated into the dense query dim-id space
// (NpvDimRemap), so the per-dimension lists live in a flat array indexed by
// dense id, and stream NPVs drop dimensions no query projects into — those
// can never flip a counter. Stream side (changing): each stream vertex
// keeps, per query vector it "encounters" through shared non-zero
// dimensions, a dominant counter — in how many of that query vector's
// non-zero dimensions the stream vector's value is no smaller. A stream
// vertex dominates a query vector exactly when the counter reaches the
// query vector's non-zero dimension count; a query graph is a candidate for
// a stream exactly when the union of dominated query vectors covers all of
// its vectors (Theorem 4.1).
//
// Updates are incremental: when a stream vertex's NPV moves, only its own
// counter contributions are retracted and re-added, and per-query cover
// counts are adjusted — nothing is recomputed from scratch. The per-stream
// candidate list is cached; it is invalidated only by a domination-status
// flip or by the stream transitioning between empty and non-empty, so
// counter churn that flips nothing reuses the previous verdict.

#ifndef GSPS_JOIN_DOMINATED_SET_COVER_JOIN_H_
#define GSPS_JOIN_DOMINATED_SET_COVER_JOIN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "gsps/join/dominance_kernel.h"
#include "gsps/join/join_strategy.h"
#include "gsps/obs/attribution.h"

namespace gsps {

class DominatedSetCoverJoin final : public JoinStrategy {
 public:
  DominatedSetCoverJoin() = default;

  void SetQueries(std::vector<QueryVectors> queries) override;
  void SetNumStreams(int num_streams) override;
  int32_t AddQuery(const QueryVectors& query, bool* grew_dims) override;
  void RemoveQuery(int32_t local_id) override;
  void UpdateStreamVertex(int stream, VertexId v, const Npv& npv) override;
  void RemoveStreamVertex(int stream, VertexId v) override;
  void CandidatesForStream(int stream, std::vector<int>* out) override;
  using JoinStrategy::CandidatesForStream;
  void CheckChurnInvariants() const override;
  void FlushAttribution() override { attr_.Flush(); }
  std::string_view name() const override { return "DSC"; }

 private:
  // Global id of one query vertex vector across all query graphs.
  using QVec = int32_t;

  // One projected query value in a single (dense) dimension.
  struct DimEntry {
    int32_t value = 0;
    QVec qvec = -1;
  };

  struct StreamVertexState {
    // Dense-translated NPV entries (query dims only), sorted ascending.
    std::vector<NpvEntry> entries;
    // Dominant counters, kept only for encountered query vectors.
    std::unordered_map<QVec, int32_t> dominant;
    // Tombstone flag: removed vertices keep their buffers (entries cleared,
    // counters retracted to zero) so a later re-add allocates nothing.
    bool live = false;
  };

  struct StreamState {
    std::unordered_map<VertexId, StreamVertexState> vertices;
    // Per query vector: how many stream vertices currently dominate it.
    std::vector<int32_t> cover_count;
    // Per query graph: how many of its query vectors are covered.
    std::vector<int32_t> covered_vectors;
    int32_t live_vertices = 0;
    // Cached candidate list; invalidated by SetDominates flips and by
    // 0 <-> non-zero live_vertices transitions only.
    std::vector<int> cache;
    bool cache_valid = false;
  };

  // Retracts (`delta`=-1) or re-adds (`delta`=+1) the counter contributions
  // of `vertex`'s current entries, maintaining cover bookkeeping.
  void Apply(StreamState& stream, StreamVertexState& vertex, int delta);

  // The paper's incremental position update: adjusts the dominant counters
  // of `vertex` in dense dimension `dim` for query entries with value in
  // (from, to] (delta = +1) or retracts them (delta = -1). `from < to`.
  void AdjustRange(StreamState& stream, StreamVertexState& vertex, DimId dim,
                   int32_t from, int32_t to, int delta);

  void SetDominates(StreamState& stream, QVec qvec, bool now_dominates);

  // Allocates (or reuses) a query slot / a global qvec id.
  int32_t AllocQuerySlot();
  QVec AllocQVec();

  int32_t num_queries_ = 0;
  // qvec -> owning query graph index.
  std::vector<int32_t> qvec_query_;
  // qvec -> number of non-zero dimensions (0 = trivially dominated).
  std::vector<int32_t> qvec_nnz_;
  // qvec -> slab slot (-1 for trivial or retired qvecs).
  std::vector<int32_t> qvec_slot_;
  // Per query graph: its global qvec ids (incl. trivial ones).
  std::vector<std::vector<QVec>> query_qvecs_;
  // Per query graph: number of non-trivial query vectors.
  std::vector<int32_t> query_tracked_vectors_;
  // Per query graph: number of trivially-covered (nnz == 0) vectors.
  std::vector<int32_t> query_trivial_vectors_;
  // Churn slot bookkeeping: retired query ids / qvec ids are reused.
  std::vector<uint8_t> query_live_;
  std::vector<int32_t> free_queries_;
  std::vector<QVec> free_qvecs_;
  // Dense dimension -> sorted projected query values (the paper's
  // per-dimension sorted lists), indexed directly by dense dim id.
  NpvDimRemap remap_;
  std::vector<std::vector<DimEntry>> dim_lists_;
  // Slab mirror of the non-trivial query vectors, consumed by the batched
  // dominance kernel in count mode when a vertex arrives with no prior
  // entries (bulk insert): counters start from zero, so one kernel sweep
  // yields every dominant counter without walking the dimension lists.
  NpvSlab qvecs_;
  std::vector<QVec> slab_qvec_;  // Slab index -> global qvec id (-1 freed).
  DominanceBatch batch_;

  std::vector<StreamState> streams_;
  std::vector<NpvEntry> translate_scratch_;
  std::vector<DimId> remap_scratch_;

  // Observability accumulators for the maintenance inner loops: plain
  // member adds there (AdjustRange / SetDominates run per dimension-range
  // per NPV move), flushed to the installed sink once per
  // CandidatesForStream. Counts pending since the last flush are only lost
  // if no candidate read ever follows the updates.
  int64_t pending_rounds_ = 0;
  int64_t pending_flips_ = 0;
  DominanceKernelStats pending_kernel_;
  // Per-query work attribution; weight is the query's tracked vector
  // count. Flushed by the engine at metrics cadence.
  obs::QueryAttribution attr_;
};

}  // namespace gsps

#endif  // GSPS_JOIN_DOMINATED_SET_COVER_JOIN_H_
