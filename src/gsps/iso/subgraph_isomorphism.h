// Exact subgraph isomorphism (paper Definition 2.3).
//
// A VF2-style backtracking matcher: it searches for an injective mapping
// f : V(Q) -> V(G) such that vertex labels are preserved and every query
// edge maps to a data edge with the same edge label (non-induced subgraph
// isomorphism, exactly the paper's join predicate).
//
// Subgraph isomorphism is NP-complete; this matcher is used OFF the
// streaming hot path — for ground truth in experiments, for the
// no-false-negative property tests, and by the gIndex baseline for feature
// containment. The graphs involved are small (tens of vertices), where
// label/degree/connectivity pruning makes backtracking fast in practice.

#ifndef GSPS_ISO_SUBGRAPH_ISOMORPHISM_H_
#define GSPS_ISO_SUBGRAPH_ISOMORPHISM_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "gsps/graph/graph.h"

namespace gsps {

// A query-to-data vertex mapping: `mapping[i]` is the data vertex matched to
// the i-th query vertex in `query_order`.
struct Embedding {
  std::vector<VertexId> query_order;  // Query vertices in match order.
  std::vector<VertexId> mapping;      // Parallel data vertices.
};

// Options bounding the search.
struct IsoOptions {
  // Abort (and report "no") after this many backtracking states. 0 means
  // unlimited. Ground-truth harnesses leave this at the default, which is
  // high enough that it never fires on the paper-scale graphs.
  int64_t max_states = 50'000'000;
};

// Returns true iff `query` is subgraph-isomorphic to `data`.
bool IsSubgraphIsomorphic(const Graph& query, const Graph& data,
                          const IsoOptions& options = {});

// Returns one embedding if it exists, nullopt otherwise.
std::optional<Embedding> FindEmbedding(const Graph& query, const Graph& data,
                                       const IsoOptions& options = {});

// Counts embeddings, capped at `limit` (0 = count all). Distinct injective
// mappings are counted separately (automorphic images count individually).
int64_t CountEmbeddings(const Graph& query, const Graph& data, int64_t limit,
                        const IsoOptions& options = {});

// Invokes `visitor` once per embedding; stops when the visitor returns
// false or after `limit` embeddings (0 = no limit). Used by the gSpan miner
// to harvest pattern extensions.
void ForEachEmbedding(const Graph& query, const Graph& data, int64_t limit,
                      const std::function<bool(const Embedding&)>& visitor,
                      const IsoOptions& options = {});

}  // namespace gsps

#endif  // GSPS_ISO_SUBGRAPH_ISOMORPHISM_H_
