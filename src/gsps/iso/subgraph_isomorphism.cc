#include "gsps/iso/subgraph_isomorphism.h"

#include <algorithm>

#include "gsps/common/check.h"

namespace gsps {
namespace {

// Shared backtracking machinery. The visitor is invoked once per complete
// embedding; returning false stops the search.
class Matcher {
 public:
  Matcher(const Graph& query, const Graph& data, const IsoOptions& options)
      : query_(query), data_(data), options_(options) {
    BuildOrder();
  }

  // Runs the search. `on_embedding` returns false to stop early.
  template <typename Visitor>
  void Run(Visitor&& on_embedding) {
    if (query_.NumVertices() == 0) {
      // The empty pattern is vacuously contained.
      std::vector<VertexId> empty;
      on_embedding(empty);
      return;
    }
    if (query_.NumVertices() > data_.NumVertices() ||
        query_.NumEdges() > data_.NumEdges()) {
      return;
    }
    mapping_.assign(order_.size(), kInvalidVertex);
    used_.assign(static_cast<size_t>(data_.VertexIdBound()), false);
    query_to_data_.assign(static_cast<size_t>(query_.VertexIdBound()),
                          kInvalidVertex);
    states_ = 0;
    stopped_ = false;
    Extend(0, on_embedding);
  }

  const std::vector<VertexId>& order() const { return order_; }

 private:
  // Chooses a connectivity-first match order: start from the rarest-labeled
  // highest-degree query vertex, then repeatedly pick the unmatched vertex
  // with the most already-ordered neighbors (ties by degree). This keeps the
  // partial pattern connected so adjacency constraints prune early.
  void BuildOrder() {
    const std::vector<VertexId> vertices = query_.VertexIds();
    if (vertices.empty()) return;
    std::vector<bool> placed(static_cast<size_t>(query_.VertexIdBound()),
                             false);
    VertexId first = vertices.front();
    for (const VertexId v : vertices) {
      if (query_.Degree(v) > query_.Degree(first)) first = v;
    }
    order_.push_back(first);
    placed[static_cast<size_t>(first)] = true;
    while (order_.size() < vertices.size()) {
      VertexId best = kInvalidVertex;
      int best_connected = -1;
      int best_degree = -1;
      for (const VertexId v : vertices) {
        if (placed[static_cast<size_t>(v)]) continue;
        int connected = 0;
        for (const HalfEdge& half : query_.Neighbors(v)) {
          if (placed[static_cast<size_t>(half.to)]) ++connected;
        }
        const int degree = query_.Degree(v);
        if (connected > best_connected ||
            (connected == best_connected && degree > best_degree)) {
          best = v;
          best_connected = connected;
          best_degree = degree;
        }
      }
      order_.push_back(best);
      placed[static_cast<size_t>(best)] = true;
    }
  }

  // True if mapping query vertex `q` to data vertex `d` is consistent with
  // the current partial mapping.
  bool Feasible(VertexId q, VertexId d) const {
    if (query_.GetVertexLabel(q) != data_.GetVertexLabel(d)) return false;
    if (query_.Degree(q) > data_.Degree(d)) return false;
    // Every already-mapped neighbor of q must be adjacent to d with the
    // matching edge label.
    for (const HalfEdge& half : query_.Neighbors(q)) {
      const VertexId mapped = query_to_data_[static_cast<size_t>(half.to)];
      if (mapped == kInvalidVertex) continue;
      if (!data_.HasEdge(d, mapped)) return false;
      if (data_.GetEdgeLabel(d, mapped) != half.label) return false;
    }
    return true;
  }

  template <typename Visitor>
  void Extend(size_t depth, Visitor&& on_embedding) {
    if (stopped_) return;
    if (options_.max_states > 0 && ++states_ > options_.max_states) {
      stopped_ = true;
      return;
    }
    if (depth == order_.size()) {
      if (!on_embedding(mapping_)) stopped_ = true;
      return;
    }
    const VertexId q = order_[depth];
    // Candidates: if q has a mapped neighbor, only that neighbor's data
    // adjacency needs scanning; otherwise scan all data vertices.
    VertexId anchor = kInvalidVertex;
    EdgeLabel anchor_label = 0;
    for (const HalfEdge& half : query_.Neighbors(q)) {
      const VertexId mapped = query_to_data_[static_cast<size_t>(half.to)];
      if (mapped != kInvalidVertex) {
        anchor = mapped;
        anchor_label = half.label;
        break;
      }
    }
    if (anchor != kInvalidVertex) {
      for (const HalfEdge& half : data_.Neighbors(anchor)) {
        if (half.label != anchor_label) continue;
        TryCandidate(depth, q, half.to, on_embedding);
        if (stopped_) return;
      }
    } else {
      for (VertexId d = 0; d < data_.VertexIdBound(); ++d) {
        if (!data_.HasVertex(d)) continue;
        TryCandidate(depth, q, d, on_embedding);
        if (stopped_) return;
      }
    }
  }

  template <typename Visitor>
  void TryCandidate(size_t depth, VertexId q, VertexId d,
                    Visitor&& on_embedding) {
    if (used_[static_cast<size_t>(d)]) return;
    if (!Feasible(q, d)) return;
    mapping_[depth] = d;
    used_[static_cast<size_t>(d)] = true;
    query_to_data_[static_cast<size_t>(q)] = d;
    Extend(depth + 1, on_embedding);
    query_to_data_[static_cast<size_t>(q)] = kInvalidVertex;
    used_[static_cast<size_t>(d)] = false;
    mapping_[depth] = kInvalidVertex;
  }

  const Graph& query_;
  const Graph& data_;
  const IsoOptions& options_;
  std::vector<VertexId> order_;
  std::vector<VertexId> mapping_;
  std::vector<VertexId> query_to_data_;  // Query vertex -> mapped data vertex.
  std::vector<bool> used_;
  int64_t states_ = 0;
  bool stopped_ = false;
};

}  // namespace

bool IsSubgraphIsomorphic(const Graph& query, const Graph& data,
                          const IsoOptions& options) {
  Matcher matcher(query, data, options);
  bool found = false;
  matcher.Run([&found](const std::vector<VertexId>&) {
    found = true;
    return false;  // Stop at the first embedding.
  });
  return found;
}

std::optional<Embedding> FindEmbedding(const Graph& query, const Graph& data,
                                       const IsoOptions& options) {
  Matcher matcher(query, data, options);
  std::optional<Embedding> result;
  matcher.Run([&result, &matcher](const std::vector<VertexId>& mapping) {
    result = Embedding{matcher.order(), mapping};
    return false;
  });
  return result;
}

int64_t CountEmbeddings(const Graph& query, const Graph& data, int64_t limit,
                        const IsoOptions& options) {
  Matcher matcher(query, data, options);
  int64_t count = 0;
  matcher.Run([&count, limit](const std::vector<VertexId>&) {
    ++count;
    return limit == 0 || count < limit;
  });
  return count;
}

void ForEachEmbedding(const Graph& query, const Graph& data, int64_t limit,
                      const std::function<bool(const Embedding&)>& visitor,
                      const IsoOptions& options) {
  Matcher matcher(query, data, options);
  int64_t count = 0;
  matcher.Run(
      [&count, limit, &visitor, &matcher](const std::vector<VertexId>& map) {
        ++count;
        if (!visitor(Embedding{matcher.order(), map})) return false;
        return limit == 0 || count < limit;
      });
}

}  // namespace gsps
