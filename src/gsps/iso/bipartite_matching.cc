#include "gsps/iso/bipartite_matching.h"

#include "gsps/common/check.h"

namespace gsps {
namespace {

// One augmenting-path attempt from `left`, Kuhn-style.
bool TryAugment(const BipartiteAdjacency& adjacency, int left,
                std::vector<int>& right_match, std::vector<bool>& visited) {
  for (const int right : adjacency[static_cast<size_t>(left)]) {
    GSPS_DCHECK(right >= 0 &&
                right < static_cast<int>(right_match.size()));
    if (visited[static_cast<size_t>(right)]) continue;
    visited[static_cast<size_t>(right)] = true;
    if (right_match[static_cast<size_t>(right)] < 0 ||
        TryAugment(adjacency, right_match[static_cast<size_t>(right)],
                   right_match, visited)) {
      right_match[static_cast<size_t>(right)] = left;
      return true;
    }
  }
  return false;
}

}  // namespace

int MaximumBipartiteMatching(const BipartiteAdjacency& left_to_right,
                             int num_right) {
  std::vector<int> right_match(static_cast<size_t>(num_right), -1);
  int matched = 0;
  for (int left = 0; left < static_cast<int>(left_to_right.size()); ++left) {
    std::vector<bool> visited(static_cast<size_t>(num_right), false);
    if (TryAugment(left_to_right, left, right_match, visited)) ++matched;
  }
  return matched;
}

bool HasLeftPerfectMatching(const BipartiteAdjacency& left_to_right,
                            int num_right) {
  if (static_cast<int>(left_to_right.size()) > num_right) return false;
  std::vector<int> right_match(static_cast<size_t>(num_right), -1);
  for (int left = 0; left < static_cast<int>(left_to_right.size()); ++left) {
    std::vector<bool> visited(static_cast<size_t>(num_right), false);
    if (!TryAugment(left_to_right, left, right_match, visited)) return false;
  }
  return true;
}

}  // namespace gsps
