#include "gsps/iso/branch_compatibility.h"

#include <utility>

#include "gsps/common/check.h"

namespace gsps {
namespace {

// Depth-first enumeration of edge-simple paths. `path_edges` holds the
// undirected edges (min_id, max_id) on the current path.
void Expand(const Graph& graph, VertexId at, int remaining,
            BranchSignature& signature,
            std::vector<std::pair<VertexId, VertexId>>& path_edges,
            std::map<BranchSignature, int64_t>& out) {
  if (remaining == 0) return;
  for (const HalfEdge& half : graph.Neighbors(at)) {
    const std::pair<VertexId, VertexId> edge = {std::min(at, half.to),
                                                std::max(at, half.to)};
    bool on_path = false;
    for (const auto& used : path_edges) {
      if (used == edge) {
        on_path = true;
        break;
      }
    }
    if (on_path) continue;
    signature.push_back(half.label);
    signature.push_back(graph.GetVertexLabel(half.to));
    path_edges.push_back(edge);
    ++out[signature];
    Expand(graph, half.to, remaining - 1, signature, path_edges, out);
    path_edges.pop_back();
    signature.pop_back();
    signature.pop_back();
  }
}

}  // namespace

std::map<BranchSignature, int64_t> EnumerateBranches(const Graph& graph,
                                                     VertexId root,
                                                     int depth) {
  GSPS_CHECK(graph.HasVertex(root));
  GSPS_CHECK(depth >= 0);
  std::map<BranchSignature, int64_t> out;
  BranchSignature signature = {graph.GetVertexLabel(root)};
  std::vector<std::pair<VertexId, VertexId>> path_edges;
  Expand(graph, root, depth, signature, path_edges, out);
  return out;
}

bool BranchCompatible(const Graph& query, VertexId query_vertex,
                      const Graph& data, VertexId data_vertex, int depth) {
  if (query.GetVertexLabel(query_vertex) != data.GetVertexLabel(data_vertex)) {
    return false;
  }
  const auto query_branches = EnumerateBranches(query, query_vertex, depth);
  const auto data_branches = EnumerateBranches(data, data_vertex, depth);
  for (const auto& [signature, count] : query_branches) {
    auto it = data_branches.find(signature);
    if (it == data_branches.end() || it->second < count) return false;
  }
  return true;
}

bool BranchCompatibleFilter(const Graph& query, const Graph& data, int depth) {
  for (const VertexId u : query.VertexIds()) {
    bool matched = false;
    for (const VertexId v : data.VertexIds()) {
      if (BranchCompatible(query, u, data, v, depth)) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

}  // namespace gsps
