// Branch compatibility between node neighborhoods (paper Lemma 4.1).
//
// NNT(u) is branch-compatible with NNT(v) when every simple path (branch)
// of NNT(u) is contained among the branches of NNT(v), counting
// multiplicity. This is the intermediate filter between full subtree
// isomorphism (expensive) and the NPV dominance check (the cheap projection
// the paper ultimately uses); implementing it standalone lets tests verify
// the chain  exact iso  =>  branch compatible  =>  NPV dominated.
//
// Branches are enumerated directly from the graphs (edge-simple paths up to
// the given depth), so this module depends only on gsps_graph.

#ifndef GSPS_ISO_BRANCH_COMPATIBILITY_H_
#define GSPS_ISO_BRANCH_COMPATIBILITY_H_

#include <cstdint>
#include <map>
#include <vector>

#include "gsps/graph/graph.h"

namespace gsps {

// A branch signature: the label sequence of one edge-simple path starting at
// the root — (root_label, edge_label_1, vertex_label_1, edge_label_2, ...).
using BranchSignature = std::vector<int32_t>;

// Multiset of branch signatures of all edge-simple paths of length 1..depth
// starting at `root` in `graph`, keyed by signature with occurrence counts.
std::map<BranchSignature, int64_t> EnumerateBranches(const Graph& graph,
                                                     VertexId root, int depth);

// True iff every branch of NNT(query_vertex in query) is contained (with
// multiplicity) in the branches of NNT(data_vertex in data) at the given
// depth, per Lemma 4.1. Requires matching root labels.
bool BranchCompatible(const Graph& query, VertexId query_vertex,
                      const Graph& data, VertexId data_vertex, int depth);

// Graph-level filter built from Lemma 4.1: true iff every query vertex has
// at least one branch-compatible data vertex. A necessary condition for
// subgraph isomorphism; used as a reference point for pruning-power tests.
bool BranchCompatibleFilter(const Graph& query, const Graph& data, int depth);

}  // namespace gsps

#endif  // GSPS_ISO_BRANCH_COMPATIBILITY_H_
