// Maximum bipartite matching (augmenting-path / Kuhn's algorithm).
//
// Used by the rooted-subtree embedding check: deciding whether every child
// subtree of a query tree node can be matched to a distinct child subtree
// of a data tree node is exactly a maximum-matching question. The sets
// involved are node fan-outs (graph degrees), so the simple O(V*E)
// augmenting-path algorithm is the right tool.

#ifndef GSPS_ISO_BIPARTITE_MATCHING_H_
#define GSPS_ISO_BIPARTITE_MATCHING_H_

#include <vector>

namespace gsps {

// Adjacency of the bipartite graph: for each left vertex, the list of right
// vertices it may be matched to (right vertices are 0..num_right-1).
using BipartiteAdjacency = std::vector<std::vector<int>>;

// Returns the size of a maximum matching.
int MaximumBipartiteMatching(const BipartiteAdjacency& left_to_right,
                             int num_right);

// Returns true iff every left vertex can be matched simultaneously
// (a left-perfect matching exists). Equivalent to
// MaximumBipartiteMatching(...) == left size, but exits early when a left
// vertex cannot be matched.
bool HasLeftPerfectMatching(const BipartiteAdjacency& left_to_right,
                            int num_right);

}  // namespace gsps

#endif  // GSPS_ISO_BIPARTITE_MATCHING_H_
