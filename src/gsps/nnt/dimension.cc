#include "gsps/nnt/dimension.h"

#include "gsps/common/check.h"

namespace gsps {

DimId DimensionTable::Intern(int32_t level, VertexLabel parent_label,
                             VertexLabel child_label) {
  const uint64_t key = Key(level, parent_label, child_label);
  auto [it, inserted] =
      index_.try_emplace(key, static_cast<DimId>(dimensions_.size()));
  if (inserted) {
    dimensions_.push_back(Dimension{level, parent_label, child_label});
  }
  return it->second;
}

std::optional<DimId> DimensionTable::Find(int32_t level,
                                          VertexLabel parent_label,
                                          VertexLabel child_label) const {
  auto it = index_.find(Key(level, parent_label, child_label));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const Dimension& DimensionTable::Get(DimId id) const {
  GSPS_CHECK(id >= 0 && id < size());
  return dimensions_[static_cast<size_t>(id)];
}

uint64_t DimensionTable::Key(int32_t level, VertexLabel parent_label,
                             VertexLabel child_label) {
  GSPS_DCHECK(level >= 1 && level < (1 << 20));
  GSPS_DCHECK(parent_label >= 0 && parent_label < (1 << 21));
  GSPS_DCHECK(child_label >= 0 && child_label < (1 << 21));
  return (static_cast<uint64_t>(level) << 42) |
         (static_cast<uint64_t>(parent_label) << 21) |
         static_cast<uint64_t>(child_label);
}

}  // namespace gsps
