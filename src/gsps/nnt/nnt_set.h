// The set of Node-Neighbor Trees for one (possibly changing) graph, with
// the incremental maintenance of paper §III.B and the NPV projection of
// §IV.A.
//
// Responsibilities:
//   * Build NNT(u) for every vertex u of a graph, up to a fixed depth.
//   * Maintain two auxiliary indexes:
//       - node-tree index  I_nt: graph vertex -> all tree nodes representing
//         it across all trees ("appearances"),
//       - edge-tree index  I_et: graph edge  -> all tree edges realizing it.
//   * Incrementally apply edge insertions (paper Fig. 5) and deletions
//     (paper Fig. 4) in O(r^(l-1)) per appearance (Lemma 3.2).
//   * Keep per-root sorted dimension counts and a cached NPV per root so
//     NpvOf() is O(1) amortized, and report which roots' NPVs changed (the
//     hook the incremental join strategies consume).
//
// Storage layout (DESIGN.md "Storage layout"): vertex ids are dense, so
// every per-root structure is a flat vector indexed by VertexId — the trees,
// the node-tree index lists, the dimension counts, the NPV cache, and the
// dirty flags. The edge-tree index is an open-addressing flat map
// (EdgeAppearanceMap). Steady-state maintenance reuses freed tree slots,
// recycled index lists, and member scratch buffers, so an ApplyChange cycle
// performs zero heap allocations once capacities reach their high-water
// marks.
//
// Usage with a changing graph (the engine's protocol):
//   * deletion of edge {u,v}:  nnts.DeleteEdge(u, v);  graph.RemoveEdge(u, v);
//   * insertion of edge {u,v}: graph.AddEdge(u, v, l); nnts.InsertEdge(graph, u, v);
// DeleteEdge consults only internal indexes; InsertEdge requires the graph
// to already contain the new edge.

#ifndef GSPS_NNT_NNT_SET_H_
#define GSPS_NNT_NNT_SET_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "gsps/graph/graph.h"
#include "gsps/nnt/dimension.h"
#include "gsps/nnt/edge_index.h"
#include "gsps/nnt/node_neighbor_tree.h"
#include "gsps/nnt/npv.h"

namespace gsps {

class NntSet {
 public:
  // `dimensions` is the shared interner; it must outlive the set.
  NntSet(int depth, DimensionTable* dimensions);

  NntSet(const NntSet&) = delete;
  NntSet& operator=(const NntSet&) = delete;
  NntSet(NntSet&&) = default;
  NntSet& operator=(NntSet&&) = default;

  // Builds trees for every vertex of `graph` from scratch, replacing any
  // existing state. Pre-reserves the slot arenas, index lists, and count
  // storage from the graph's size and degree statistics so the build and
  // the following steady state allocate as little as possible.
  void Build(const Graph& graph);

  int depth() const { return depth_; }

  // --- Incremental maintenance -------------------------------------------

  // Applies the insertion of edge {u, v}, which must already be present in
  // `graph`. Creates root trees for endpoints that have none yet (new
  // vertices). Paper Fig. 5.
  void InsertEdge(const Graph& graph, VertexId u, VertexId v);

  // Applies the deletion of edge {u, v}: removes every subtree hanging off
  // an appearance of the edge. Uses only internal indexes, so it may be
  // called before or after the graph itself is updated. Paper Fig. 4.
  void DeleteEdge(VertexId u, VertexId v);

  // Drops the tree rooted at `v` entirely (vertex removed from the graph).
  // Appearances of v inside other trees must have been removed first by
  // deleting its incident edges.
  void RemoveTree(VertexId v);

  // --- Queries -------------------------------------------------------------

  // The tree rooted at `root`, or nullptr if none.
  const NodeNeighborTree* TreeOf(VertexId root) const;

  // Vertices that currently have a tree, ascending.
  std::vector<VertexId> Roots() const;

  // The NPV of `root`'s tree. The vertex must have a tree. Served from a
  // per-root cache invalidated by dimension-count changes, so repeated
  // reads are O(1). The reference is valid until the next mutating call.
  const Npv& NpvOf(VertexId root) const;

  // Fills `out` with the vertices whose NPV changed since the previous
  // drain, ascending, and clears the dirty set; reuses `out`'s capacity.
  // After Build() every root is dirty.
  void TakeDirtyRoots(std::vector<VertexId>* out);

  // Convenience overload returning a fresh vector.
  std::vector<VertexId> TakeDirtyRoots();

  // --- Test / debugging hooks ---------------------------------------------

  // Multiset of root-to-node label paths of `root`'s tree, in the same
  // signature format as iso/branch_compatibility.h — lets tests compare
  // the maintained tree against an independently computed oracle.
  std::map<std::vector<int32_t>, int64_t> BranchesOf(VertexId root) const;

  // Exhaustively checks internal invariants against `graph`: every tree
  // edge realizes a live graph edge, indexes and trees reference each other
  // consistently, sibling links are well formed, per-root dimension counts
  // match a recount (and the NPV cache where valid), and every tree is
  // exactly the set of edge-simple paths up to `depth`. Returns false and
  // prints a diagnostic on the first violation. O(large); tests only.
  bool Validate(const Graph& graph) const;

  // Total alive tree nodes across all trees (size metric for benches).
  int64_t TotalTreeNodes() const;

  // Heap bytes held by the trees, indexes, counts, caches, and scratch
  // buffers (capacities, not sizes — what the process actually pays).
  int64_t StorageBytes() const;

 private:
  static uint64_t EdgeKey(VertexId a, VertexId b);

  NodeNeighborTree* MutableTreeOf(VertexId root);

  // Grows every per-root vector to cover vertex `v`.
  void EnsureRootCapacity(VertexId v);

  // Creates a root-only tree for `v` if absent. Returns the tree.
  NodeNeighborTree& EnsureTree(VertexId v, VertexLabel label);

  // Allocates a child node under `parent` in `root`'s tree, registering it
  // in both indexes and the dimension counts.
  TreeNodeId AddTreeChild(VertexId root, TreeNodeId parent, VertexId vertex,
                          VertexLabel vertex_label, EdgeLabel edge_label);

  // Frees `node` (which must be a leaf) and deregisters it everywhere.
  void FreeTreeNode(VertexId root, TreeNodeId node);

  // O(1) swap-erase of `list[pos]`, fixing the moved appearance's stored
  // index position (node_index_pos / edge_index_pos).
  void EraseAppearanceAt(std::vector<Appearance>& list, int32_t pos,
                         bool node_list);

  // Breadth-first expansion of the subtree under `start` in `root`'s tree,
  // adding every edge-simple continuation up to depth_. `start` itself must
  // already exist.
  void ExpandSubtree(const Graph& graph, VertexId root, TreeNodeId start);

  // Deletes the whole subtree rooted at `node` (inclusive), bottom-up.
  void DeleteSubtree(VertexId root, TreeNodeId node);

  void BumpDimension(VertexId root, int32_t level, VertexLabel parent_label,
                     VertexLabel child_label, int32_t delta);

  // Flags `root`'s NPV as changed since the last TakeDirtyRoots drain.
  void MarkDirty(VertexId root);

  int depth_;
  DimensionTable* dimensions_;

  // Trees indexed by root vertex id (nullptr when the vertex has no tree).
  std::vector<std::unique_ptr<NodeNeighborTree>> trees_;

  // I_nt: graph vertex -> appearances across all trees (roots included).
  // Dense by vertex id; lists keep their capacity when emptied.
  std::vector<std::vector<Appearance>> node_index_;
  // I_et: packed undirected edge -> tree edges realizing it; the Appearance
  // stores the CHILD node of the tree edge.
  EdgeAppearanceMap edge_index_;

  // Per-root dimension counts backing NpvOf(), kept sorted by dim with
  // strictly positive counts — the invariant Npv requires, so the cache
  // refill below never sorts.
  std::vector<std::vector<NpvEntry>> dim_counts_;

  // Per-root NPV cache: npv_cache_[v] mirrors dim_counts_[v] whenever
  // npv_cache_valid_[v] is set; BumpDimension clears the flag, NpvOf
  // refills lazily. Mutable because NpvOf is logically const.
  mutable std::vector<Npv> npv_cache_;
  mutable std::vector<uint8_t> npv_cache_valid_;

  // Dirty set as flag-plus-list so marking is O(1) without hashing and the
  // drain is a sort of only the dirty roots.
  std::vector<uint8_t> dirty_flag_;
  std::vector<VertexId> dirty_list_;

  // Maintenance scratch, reused across calls so steady-state InsertEdge/
  // DeleteEdge/ExpandSubtree/DeleteSubtree allocate nothing.
  std::vector<Appearance> scratch_appearances_u_;
  std::vector<Appearance> scratch_appearances_v_;
  std::vector<Appearance> scratch_edge_appearances_;
  std::vector<TreeNodeId> scratch_bfs_;
  std::vector<TreeNodeId> scratch_preorder_;
  std::vector<TreeNodeId> scratch_stack_;
};

}  // namespace gsps

#endif  // GSPS_NNT_NNT_SET_H_
