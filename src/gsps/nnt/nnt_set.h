// The set of Node-Neighbor Trees for one (possibly changing) graph, with
// the incremental maintenance of paper §III.B and the NPV projection of
// §IV.A.
//
// Responsibilities:
//   * Build NNT(u) for every vertex u of a graph, up to a fixed depth.
//   * Maintain two auxiliary indexes:
//       - node-tree index  I_nt: graph vertex -> all tree nodes representing
//         it across all trees ("appearances"),
//       - edge-tree index  I_et: graph edge  -> all tree edges realizing it.
//   * Incrementally apply edge insertions (paper Fig. 5) and deletions
//     (paper Fig. 4) in O(r^(l-1)) per appearance (Lemma 3.2).
//   * Keep per-root sparse dimension counts so each vertex's NPV is
//     available without retraversal, and report which roots' NPVs changed
//     (the hook the incremental join strategies consume).
//
// Usage with a changing graph (the engine's protocol):
//   * deletion of edge {u,v}:  nnts.DeleteEdge(u, v);  graph.RemoveEdge(u, v);
//   * insertion of edge {u,v}: graph.AddEdge(u, v, l); nnts.InsertEdge(graph, u, v);
// DeleteEdge consults only internal indexes; InsertEdge requires the graph
// to already contain the new edge.

#ifndef GSPS_NNT_NNT_SET_H_
#define GSPS_NNT_NNT_SET_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gsps/graph/graph.h"
#include "gsps/nnt/dimension.h"
#include "gsps/nnt/node_neighbor_tree.h"
#include "gsps/nnt/npv.h"

namespace gsps {

// A reference to one tree node, safe against slot reuse via the generation.
struct Appearance {
  VertexId tree_root = kInvalidVertex;  // Which vertex's tree.
  TreeNodeId node = kInvalidTreeNode;
  uint32_t generation = 0;

  friend bool operator==(const Appearance&, const Appearance&) = default;
};

class NntSet {
 public:
  // `dimensions` is the shared interner; it must outlive the set.
  NntSet(int depth, DimensionTable* dimensions);

  NntSet(const NntSet&) = delete;
  NntSet& operator=(const NntSet&) = delete;
  NntSet(NntSet&&) = default;
  NntSet& operator=(NntSet&&) = default;

  // Builds trees for every vertex of `graph` from scratch, replacing any
  // existing state.
  void Build(const Graph& graph);

  int depth() const { return depth_; }

  // --- Incremental maintenance -------------------------------------------

  // Applies the insertion of edge {u, v}, which must already be present in
  // `graph`. Creates root trees for endpoints that have none yet (new
  // vertices). Paper Fig. 5.
  void InsertEdge(const Graph& graph, VertexId u, VertexId v);

  // Applies the deletion of edge {u, v}: removes every subtree hanging off
  // an appearance of the edge. Uses only internal indexes, so it may be
  // called before or after the graph itself is updated. Paper Fig. 4.
  void DeleteEdge(VertexId u, VertexId v);

  // Drops the tree rooted at `v` entirely (vertex removed from the graph).
  // Appearances of v inside other trees must have been removed first by
  // deleting its incident edges.
  void RemoveTree(VertexId v);

  // --- Queries -------------------------------------------------------------

  // The tree rooted at `root`, or nullptr if none.
  const NodeNeighborTree* TreeOf(VertexId root) const;

  // Vertices that currently have a tree, ascending.
  std::vector<VertexId> Roots() const;

  // The NPV of `root`'s tree. The vertex must have a tree.
  Npv NpvOf(VertexId root) const;

  // Returns the vertices whose NPV changed since the previous call, and
  // clears the dirty set. After Build() every root is dirty.
  std::vector<VertexId> TakeDirtyRoots();

  // --- Test / debugging hooks ---------------------------------------------

  // Multiset of root-to-node label paths of `root`'s tree, in the same
  // signature format as iso/branch_compatibility.h — lets tests compare
  // the maintained tree against an independently computed oracle.
  std::map<std::vector<int32_t>, int64_t> BranchesOf(VertexId root) const;

  // Exhaustively checks internal invariants against `graph`: every tree
  // edge realizes a live graph edge, indexes and trees reference each other
  // consistently, per-root dimension counts match a recount, and every tree
  // is exactly the set of edge-simple paths up to `depth`. Returns false
  // and prints a diagnostic on the first violation. O(large); tests only.
  bool Validate(const Graph& graph) const;

  // Total alive tree nodes across all trees (size metric for benches).
  int64_t TotalTreeNodes() const;

 private:
  static uint64_t EdgeKey(VertexId a, VertexId b);

  NodeNeighborTree* MutableTreeOf(VertexId root);

  // Creates a root-only tree for `v` if absent. Returns the tree.
  NodeNeighborTree& EnsureTree(VertexId v, VertexLabel label);

  // Allocates a child node under `parent` in `root`'s tree, registering it
  // in both indexes and the dimension counts.
  TreeNodeId AddTreeChild(VertexId root, TreeNodeId parent, VertexId vertex,
                          VertexLabel vertex_label, EdgeLabel edge_label);

  // Frees `node` (which must be a leaf) and deregisters it everywhere.
  void FreeTreeNode(VertexId root, TreeNodeId node);

  // O(1) swap-erase of `list[pos]`, fixing the moved appearance's stored
  // index position (node_index_pos / edge_index_pos).
  void EraseAppearanceAt(std::vector<Appearance>& list, int32_t pos,
                         bool node_list);

  // Breadth-first expansion of the subtree under `start` in `root`'s tree,
  // adding every edge-simple continuation up to depth_. `start` itself must
  // already exist.
  void ExpandSubtree(const Graph& graph, VertexId root, TreeNodeId start);

  // Deletes the whole subtree rooted at `node` (inclusive), bottom-up.
  void DeleteSubtree(VertexId root, TreeNodeId node);

  void BumpDimension(VertexId root, int32_t level, VertexLabel parent_label,
                     VertexLabel child_label, int32_t delta);

  int depth_;
  DimensionTable* dimensions_;

  // Trees indexed by root vertex id (nullptr when the vertex has no tree).
  std::vector<std::unique_ptr<NodeNeighborTree>> trees_;

  // I_nt: graph vertex -> appearances across all trees (roots included).
  std::unordered_map<VertexId, std::vector<Appearance>> node_index_;
  // I_et: packed undirected edge -> tree edges realizing it; the Appearance
  // stores the CHILD node of the tree edge.
  std::unordered_map<uint64_t, std::vector<Appearance>> edge_index_;

  // Per-root sparse dimension counts backing NpvOf().
  std::vector<std::unordered_map<DimId, int32_t>> dim_counts_;

  std::unordered_set<VertexId> dirty_roots_;
};

}  // namespace gsps

#endif  // GSPS_NNT_NNT_SET_H_
