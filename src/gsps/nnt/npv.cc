#include "gsps/nnt/npv.h"

#include <algorithm>

#include "gsps/common/check.h"

namespace gsps {

NpvSignature SignatureOf(const NpvEntry* begin, const NpvEntry* end) {
  NpvSignature sig = 0;
  for (const NpvEntry* e = begin; e != end; ++e) sig |= NpvSignatureBit(e->dim);
  return sig;
}

bool DominatesRange(const NpvEntry* hay_begin, const NpvEntry* hay_end,
                    const NpvEntry* needle_begin, const NpvEntry* needle_end) {
  const NpvEntry* hay = hay_begin;
  for (const NpvEntry* needle = needle_begin; needle != needle_end; ++needle) {
    while (hay != hay_end && hay->dim < needle->dim) ++hay;
    if (hay == hay_end || hay->dim != needle->dim ||
        hay->count < needle->count) {
      return false;
    }
  }
  return true;
}

Npv Npv::FromMap(const std::unordered_map<DimId, int32_t>& counts) {
  std::vector<NpvEntry> entries;
  entries.reserve(counts.size());
  for (const auto& [dim, count] : counts) {
    GSPS_DCHECK(count >= 0);
    if (count > 0) entries.push_back(NpvEntry{dim, count});
  }
  std::sort(entries.begin(), entries.end(),
            [](const NpvEntry& a, const NpvEntry& b) { return a.dim < b.dim; });
  return FromSortedEntries(std::move(entries));
}

Npv Npv::FromSortedEntries(std::vector<NpvEntry> entries) {
  Npv npv;
  npv.entries_ = std::move(entries);
#ifndef NDEBUG
  for (size_t i = 0; i < npv.entries_.size(); ++i) {
    GSPS_DCHECK(npv.entries_[i].count > 0);
    if (i > 0) GSPS_DCHECK(npv.entries_[i - 1].dim < npv.entries_[i].dim);
  }
#endif
  npv.signature_ =
      SignatureOf(npv.entries_.data(), npv.entries_.data() + npv.entries_.size());
  return npv;
}

void Npv::AssignSortedEntries(const std::vector<NpvEntry>& entries) {
  entries_.assign(entries.begin(), entries.end());
#ifndef NDEBUG
  for (size_t i = 0; i < entries_.size(); ++i) {
    GSPS_DCHECK(entries_[i].count > 0);
    if (i > 0) GSPS_DCHECK(entries_[i - 1].dim < entries_[i].dim);
  }
#endif
  signature_ = SignatureOf(entries_.data(), entries_.data() + entries_.size());
}

int32_t Npv::ValueAt(DimId dim) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), dim,
      [](const NpvEntry& e, DimId d) { return e.dim < d; });
  if (it == entries_.end() || it->dim != dim) return 0;
  return it->count;
}

bool Npv::Dominates(const Npv& other) const {
  if (!SignatureCovers(signature_, other.signature_)) return false;
  return DominatesRange(entries_.data(), entries_.data() + entries_.size(),
                        other.entries_.data(),
                        other.entries_.data() + other.entries_.size());
}

void NpvDimRemap::AddDims(const Npv& npv) {
  GSPS_DCHECK(!sealed_);
  for (const NpvEntry& e : npv.entries()) dims_.push_back(e.dim);
}

void NpvDimRemap::Seal() {
  std::sort(dims_.begin(), dims_.end());
  dims_.erase(std::unique(dims_.begin(), dims_.end()), dims_.end());
  sealed_ = true;
}

bool NpvDimRemap::GrowDims(const Npv& npv, std::vector<DimId>* old_to_new) {
  GSPS_DCHECK(sealed_);
  // Fast path: every dim already mapped — one linear merge, no writes.
  bool all_known = true;
  auto probe = dims_.begin();
  for (const NpvEntry& e : npv.entries()) {
    while (probe != dims_.end() && *probe < e.dim) ++probe;
    if (probe == dims_.end() || *probe != e.dim) {
      all_known = false;
      break;
    }
  }
  if (all_known) return false;

  const std::vector<DimId> old_dims = dims_;
  for (const NpvEntry& e : npv.entries()) dims_.push_back(e.dim);
  std::sort(dims_.begin(), dims_.end());
  dims_.erase(std::unique(dims_.begin(), dims_.end()), dims_.end());

  old_to_new->resize(old_dims.size());
  auto it = dims_.begin();
  for (size_t i = 0; i < old_dims.size(); ++i) {
    it = std::lower_bound(it, dims_.end(), old_dims[i]);
    GSPS_DCHECK(it != dims_.end() && *it == old_dims[i]);
    (*old_to_new)[i] = static_cast<DimId>(it - dims_.begin());
  }
  return true;
}

NpvSignature NpvDimRemap::Translate(const Npv& npv,
                                    std::vector<NpvEntry>* out) const {
  GSPS_DCHECK(sealed_);
  out->clear();
  NpvSignature sig = 0;
  // Both sides sorted ascending by dim: one linear merge. Dims absent from
  // the remap are dropped; the dense id is the remap position, so output
  // order stays ascending.
  auto it = dims_.begin();
  for (const NpvEntry& e : npv.entries()) {
    while (it != dims_.end() && *it < e.dim) ++it;
    if (it == dims_.end()) break;
    if (*it == e.dim) {
      const DimId dense = static_cast<DimId>(it - dims_.begin());
      out->push_back(NpvEntry{dense, e.count});
      sig |= NpvSignatureBit(dense);
    }
  }
  return sig;
}

int32_t NpvSlab::Append(const std::vector<NpvEntry>& entries) {
  const int32_t n = static_cast<int32_t>(entries.size());
  // Best-fit reuse of a freed slot wide enough for the new vector: the
  // freed region is already all {0, 0} sentinels, so writing the first n
  // entries leaves the in-slot slack correctly padded. No array resize, no
  // allocation. Best-fit (not first-fit) so removing a query and re-adding
  // its identical vectors lands each one back in an exact-capacity slot —
  // first-fit would let a narrow vector squat in a wide slot and push the
  // wide vector to tail growth, creeping the slab under steady churn.
  size_t best = free_slots_.size();
  for (size_t f = 0; f < free_slots_.size(); ++f) {
    const Ref& ref = refs_[static_cast<size_t>(free_slots_[f])];
    if (ref.capacity < n) continue;
    if (best == free_slots_.size() ||
        ref.capacity < refs_[static_cast<size_t>(free_slots_[best])].capacity) {
      best = f;
      if (ref.capacity == n) break;
    }
  }
  if (best != free_slots_.size()) {
    const int32_t slot = free_slots_[best];
    Ref& ref = refs_[static_cast<size_t>(slot)];
    std::copy(entries.begin(), entries.end(),
              entries_.begin() + ref.offset);
    ref.size = n;
    ref.live = true;
    sigs_[static_cast<size_t>(slot)] = SignatureOf(
        entries_.data() + ref.offset, entries_.data() + ref.offset + n);
    free_slots_[best] = free_slots_.back();
    free_slots_.pop_back();
    live_words_[static_cast<size_t>(slot) / 64] |=
        uint64_t{1} << (static_cast<uint32_t>(slot) % 64);
    ++num_live_;
    return slot;
  }

  // Tail growth: drop the previous tail padding so slot regions stay
  // back-to-back, then re-pad both arrays — entries with {0, 0} sentinels
  // (a zero count passes every dominance compare), signatures with
  // all-ones sentinels.
  entries_.resize(static_cast<size_t>(num_entries_));
  sigs_.resize(refs_.size());
  Ref ref;
  ref.offset = num_entries_;
  ref.size = n;
  ref.capacity = n;
  ref.live = true;
  entries_.insert(entries_.end(), entries.begin(), entries.end());
  num_entries_ += ref.size;
  sigs_.push_back(SignatureOf(entries_.data() + ref.offset,
                              entries_.data() + ref.offset + ref.size));
  refs_.push_back(ref);
  const size_t padded_entries =
      (entries_.size() + kNpvSlabEntryPad - 1) / kNpvSlabEntryPad *
      kNpvSlabEntryPad;
  entries_.resize(padded_entries, NpvEntry{0, 0});
  const size_t padded_sigs =
      (sigs_.size() + kNpvSlabSigPad - 1) / kNpvSlabSigPad * kNpvSlabSigPad;
  sigs_.resize(padded_sigs, ~NpvSignature{0});
  live_words_.resize((padded_sigs + 63) / 64, 0);
  const int32_t slot = static_cast<int32_t>(refs_.size()) - 1;
  live_words_[static_cast<size_t>(slot) / 64] |=
      uint64_t{1} << (static_cast<uint32_t>(slot) % 64);
  ++num_live_;
  return slot;
}

void NpvSlab::Remove(int32_t i) {
  Ref& ref = refs_[static_cast<size_t>(i)];
  GSPS_CHECK_MSG(ref.live, "NpvSlab::Remove on a freed slot");
  std::fill(entries_.begin() + ref.offset,
            entries_.begin() + ref.offset + ref.size, NpvEntry{0, 0});
  sigs_[static_cast<size_t>(i)] = ~NpvSignature{0};
  ref.size = 0;
  ref.live = false;
  ++ref.generation;
  free_slots_.push_back(i);
  live_words_[static_cast<size_t>(i) / 64] &=
      ~(uint64_t{1} << (static_cast<uint32_t>(i) % 64));
  --num_live_;
}

void NpvSlab::Clear() {
  entries_.clear();
  sigs_.clear();
  refs_.clear();
  free_slots_.clear();
  live_words_.clear();
  num_entries_ = 0;
  num_live_ = 0;
}

void NpvSlab::RemapDims(const std::vector<DimId>& old_to_new) {
  for (size_t i = 0; i < refs_.size(); ++i) {
    const Ref& ref = refs_[i];
    if (!ref.live) continue;
    NpvEntry* begin = entries_.data() + ref.offset;
    NpvEntry* end = begin + ref.size;
    for (NpvEntry* e = begin; e != end; ++e) {
      GSPS_DCHECK(static_cast<size_t>(e->dim) < old_to_new.size());
      e->dim = old_to_new[static_cast<size_t>(e->dim)];
    }
    sigs_[i] = SignatureOf(begin, end);
  }
}

void NpvSlab::CheckKernelLayout() const {
  GSPS_CHECK(reinterpret_cast<uintptr_t>(entries_.data()) %
                 kNpvSlabAlignment ==
             0);
  GSPS_CHECK(reinterpret_cast<uintptr_t>(sigs_.data()) % kNpvSlabAlignment ==
             0);
  GSPS_CHECK(entries_.size() % kNpvSlabEntryPad == 0);
  GSPS_CHECK(sigs_.size() % kNpvSlabSigPad == 0);
  GSPS_CHECK(live_words_.size() >= (sigs_.size() + 63) / 64);
  // Every entry position outside a live slot's used region — in-slot slack,
  // freed regions, tail padding — must hold the {0, 0} sentinel. Walk the
  // slot regions (back-to-back by construction) and verify both coverage
  // and sentinels in one pass.
  int32_t covered = 0;
  int32_t live_count = 0;
  for (size_t i = 0; i < refs_.size(); ++i) {
    const Ref& ref = refs_[i];
    GSPS_CHECK(ref.offset == covered);
    GSPS_CHECK(ref.size >= 0 && ref.size <= ref.capacity);
    GSPS_CHECK(ref.live || ref.size == 0);
    for (int32_t j = ref.offset + ref.size; j < ref.offset + ref.capacity;
         ++j) {
      GSPS_CHECK(entries_[static_cast<size_t>(j)].dim == 0 &&
                 entries_[static_cast<size_t>(j)].count == 0);
    }
    if (ref.live) {
      ++live_count;
    } else {
      GSPS_CHECK(sigs_[i] == ~NpvSignature{0});
    }
    const bool bit = (live_words_[i / 64] >> (i % 64)) & 1u;
    GSPS_CHECK(bit == ref.live);
    covered += ref.capacity;
  }
  GSPS_CHECK(covered == num_entries_);
  GSPS_CHECK(live_count == num_live_);
  for (size_t i = static_cast<size_t>(num_entries_); i < entries_.size();
       ++i) {
    GSPS_CHECK(entries_[i].dim == 0 && entries_[i].count == 0);
  }
  for (size_t i = refs_.size(); i < sigs_.size(); ++i) {
    GSPS_CHECK(sigs_[i] == ~NpvSignature{0});
  }
  for (size_t i = refs_.size(); i < live_words_.size() * 64; ++i) {
    const bool bit = (live_words_[i / 64] >> (i % 64)) & 1u;
    GSPS_CHECK(!bit);
  }
}

}  // namespace gsps
