#include "gsps/nnt/npv.h"

#include <algorithm>

#include "gsps/common/check.h"

namespace gsps {

Npv Npv::FromMap(const std::unordered_map<DimId, int32_t>& counts) {
  std::vector<NpvEntry> entries;
  entries.reserve(counts.size());
  for (const auto& [dim, count] : counts) {
    GSPS_DCHECK(count >= 0);
    if (count > 0) entries.push_back(NpvEntry{dim, count});
  }
  std::sort(entries.begin(), entries.end(),
            [](const NpvEntry& a, const NpvEntry& b) { return a.dim < b.dim; });
  return FromSortedEntries(std::move(entries));
}

Npv Npv::FromSortedEntries(std::vector<NpvEntry> entries) {
  Npv npv;
  npv.entries_ = std::move(entries);
#ifndef NDEBUG
  for (size_t i = 0; i < npv.entries_.size(); ++i) {
    GSPS_DCHECK(npv.entries_[i].count > 0);
    if (i > 0) GSPS_DCHECK(npv.entries_[i - 1].dim < npv.entries_[i].dim);
  }
#endif
  return npv;
}

void Npv::AssignSortedEntries(const std::vector<NpvEntry>& entries) {
  entries_.assign(entries.begin(), entries.end());
#ifndef NDEBUG
  for (size_t i = 0; i < entries_.size(); ++i) {
    GSPS_DCHECK(entries_[i].count > 0);
    if (i > 0) GSPS_DCHECK(entries_[i - 1].dim < entries_[i].dim);
  }
#endif
}

int32_t Npv::ValueAt(DimId dim) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), dim,
      [](const NpvEntry& e, DimId d) { return e.dim < d; });
  if (it == entries_.end() || it->dim != dim) return 0;
  return it->count;
}

bool Npv::Dominates(const Npv& other) const {
  // Merge-scan both sorted entry lists over `other`'s non-zero dims.
  auto mine = entries_.begin();
  for (const NpvEntry& theirs : other.entries_) {
    while (mine != entries_.end() && mine->dim < theirs.dim) ++mine;
    if (mine == entries_.end() || mine->dim != theirs.dim ||
        mine->count < theirs.count) {
      return false;
    }
  }
  return true;
}

}  // namespace gsps
