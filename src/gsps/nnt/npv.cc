#include "gsps/nnt/npv.h"

#include <algorithm>

#include "gsps/common/check.h"

namespace gsps {

NpvSignature SignatureOf(const NpvEntry* begin, const NpvEntry* end) {
  NpvSignature sig = 0;
  for (const NpvEntry* e = begin; e != end; ++e) sig |= NpvSignatureBit(e->dim);
  return sig;
}

bool DominatesRange(const NpvEntry* hay_begin, const NpvEntry* hay_end,
                    const NpvEntry* needle_begin, const NpvEntry* needle_end) {
  const NpvEntry* hay = hay_begin;
  for (const NpvEntry* needle = needle_begin; needle != needle_end; ++needle) {
    while (hay != hay_end && hay->dim < needle->dim) ++hay;
    if (hay == hay_end || hay->dim != needle->dim ||
        hay->count < needle->count) {
      return false;
    }
  }
  return true;
}

Npv Npv::FromMap(const std::unordered_map<DimId, int32_t>& counts) {
  std::vector<NpvEntry> entries;
  entries.reserve(counts.size());
  for (const auto& [dim, count] : counts) {
    GSPS_DCHECK(count >= 0);
    if (count > 0) entries.push_back(NpvEntry{dim, count});
  }
  std::sort(entries.begin(), entries.end(),
            [](const NpvEntry& a, const NpvEntry& b) { return a.dim < b.dim; });
  return FromSortedEntries(std::move(entries));
}

Npv Npv::FromSortedEntries(std::vector<NpvEntry> entries) {
  Npv npv;
  npv.entries_ = std::move(entries);
#ifndef NDEBUG
  for (size_t i = 0; i < npv.entries_.size(); ++i) {
    GSPS_DCHECK(npv.entries_[i].count > 0);
    if (i > 0) GSPS_DCHECK(npv.entries_[i - 1].dim < npv.entries_[i].dim);
  }
#endif
  npv.signature_ =
      SignatureOf(npv.entries_.data(), npv.entries_.data() + npv.entries_.size());
  return npv;
}

void Npv::AssignSortedEntries(const std::vector<NpvEntry>& entries) {
  entries_.assign(entries.begin(), entries.end());
#ifndef NDEBUG
  for (size_t i = 0; i < entries_.size(); ++i) {
    GSPS_DCHECK(entries_[i].count > 0);
    if (i > 0) GSPS_DCHECK(entries_[i - 1].dim < entries_[i].dim);
  }
#endif
  signature_ = SignatureOf(entries_.data(), entries_.data() + entries_.size());
}

int32_t Npv::ValueAt(DimId dim) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), dim,
      [](const NpvEntry& e, DimId d) { return e.dim < d; });
  if (it == entries_.end() || it->dim != dim) return 0;
  return it->count;
}

bool Npv::Dominates(const Npv& other) const {
  if (!SignatureCovers(signature_, other.signature_)) return false;
  return DominatesRange(entries_.data(), entries_.data() + entries_.size(),
                        other.entries_.data(),
                        other.entries_.data() + other.entries_.size());
}

void NpvDimRemap::AddDims(const Npv& npv) {
  GSPS_DCHECK(!sealed_);
  for (const NpvEntry& e : npv.entries()) dims_.push_back(e.dim);
}

void NpvDimRemap::Seal() {
  std::sort(dims_.begin(), dims_.end());
  dims_.erase(std::unique(dims_.begin(), dims_.end()), dims_.end());
  sealed_ = true;
}

NpvSignature NpvDimRemap::Translate(const Npv& npv,
                                    std::vector<NpvEntry>* out) const {
  GSPS_DCHECK(sealed_);
  out->clear();
  NpvSignature sig = 0;
  // Both sides sorted ascending by dim: one linear merge. Dims absent from
  // the remap are dropped; the dense id is the remap position, so output
  // order stays ascending.
  auto it = dims_.begin();
  for (const NpvEntry& e : npv.entries()) {
    while (it != dims_.end() && *it < e.dim) ++it;
    if (it == dims_.end()) break;
    if (*it == e.dim) {
      const DimId dense = static_cast<DimId>(it - dims_.begin());
      out->push_back(NpvEntry{dense, e.count});
      sig |= NpvSignatureBit(dense);
    }
  }
  return sig;
}

int32_t NpvSlab::Append(const std::vector<NpvEntry>& entries) {
  // Drop the previous tail padding so real entries stay back-to-back, then
  // re-pad both arrays: entries with {0, 0} sentinels (a zero count passes
  // every dominance compare), signatures with all-ones sentinels.
  entries_.resize(static_cast<size_t>(num_entries_));
  sigs_.resize(refs_.size());
  Ref ref;
  ref.offset = num_entries_;
  ref.size = static_cast<int32_t>(entries.size());
  entries_.insert(entries_.end(), entries.begin(), entries.end());
  num_entries_ += ref.size;
  sigs_.push_back(SignatureOf(entries_.data() + ref.offset,
                              entries_.data() + ref.offset + ref.size));
  refs_.push_back(ref);
  const size_t padded_entries =
      (entries_.size() + kNpvSlabEntryPad - 1) / kNpvSlabEntryPad *
      kNpvSlabEntryPad;
  entries_.resize(padded_entries, NpvEntry{0, 0});
  const size_t padded_sigs =
      (sigs_.size() + kNpvSlabSigPad - 1) / kNpvSlabSigPad * kNpvSlabSigPad;
  sigs_.resize(padded_sigs, ~NpvSignature{0});
  return static_cast<int32_t>(refs_.size()) - 1;
}

void NpvSlab::CheckKernelLayout() const {
  GSPS_CHECK(reinterpret_cast<uintptr_t>(entries_.data()) %
                 kNpvSlabAlignment ==
             0);
  GSPS_CHECK(reinterpret_cast<uintptr_t>(sigs_.data()) % kNpvSlabAlignment ==
             0);
  GSPS_CHECK(entries_.size() % kNpvSlabEntryPad == 0);
  GSPS_CHECK(sigs_.size() % kNpvSlabSigPad == 0);
  for (size_t i = static_cast<size_t>(num_entries_); i < entries_.size();
       ++i) {
    GSPS_CHECK(entries_[i].dim == 0 && entries_[i].count == 0);
  }
  for (size_t i = refs_.size(); i < sigs_.size(); ++i) {
    GSPS_CHECK(sigs_[i] == ~NpvSignature{0});
  }
}

}  // namespace gsps
