// Rooted subtree embedding between Node-Neighbor Trees — the filtering tier
// the paper introduces NNTs for (§III) and then relaxes because "subtree
// isomorphism verification is still expensive" (§IV).
//
// A query NNT embeds into a data NNT when there is an injective mapping of
// tree nodes that maps root to root, preserves parent/child edges, vertex
// labels, and edge labels. Implemented with the classic recursive scheme:
// a query node can sit at a data node iff their labels match and the query
// node's child subtrees admit a left-perfect bipartite matching into the
// data node's child subtrees (memoized per node pair).
//
// Implementing the full tier completes the filter hierarchy the test suite
// verifies end-to-end:
//
//   subgraph isomorphic  =>  NNT subtree-embeddable  =>  branch compatible
//                        =>  NPV dominated,
//
// and lets the ablation bench quantify exactly how much pruning each
// relaxation gives up for how much speed (bench/ablation_filters).

#ifndef GSPS_NNT_SUBTREE_FILTER_H_
#define GSPS_NNT_SUBTREE_FILTER_H_

#include "gsps/graph/graph.h"
#include "gsps/nnt/node_neighbor_tree.h"
#include "gsps/nnt/nnt_set.h"

namespace gsps {

// True iff `query_tree` embeds into `data_tree` (root at root).
bool NntSubtreeEmbeddable(const NodeNeighborTree& query_tree,
                          const NodeNeighborTree& data_tree);

// Graph-level filter: true iff every query vertex's NNT embeds into some
// data vertex's NNT. `query_nnts` and `data_nnts` must be built at the same
// depth. A necessary condition for subgraph isomorphism (each vertex's
// simple-path tree maps injectively under any embedding).
bool NntSubtreeFilter(const NntSet& query_nnts, const NntSet& data_nnts);

}  // namespace gsps

#endif  // GSPS_NNT_SUBTREE_FILTER_H_
