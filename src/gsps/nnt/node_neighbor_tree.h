// Node-Neighbor Tree storage (paper Definition 3.1).
//
// The NNT of a vertex u is the tree rooted at u containing every edge-simple
// path of length up to `depth` starting at u: each tree node is one path
// prefix, identified by the graph vertex the path ends at. This class is the
// slotted storage for one such tree — allocation, freeing (with generation
// counters so stale index references can be detected), and parent-chain
// queries. The maintenance logic that keeps trees in sync with a changing
// graph lives in NntSet.

#ifndef GSPS_NNT_NODE_NEIGHBOR_TREE_H_
#define GSPS_NNT_NODE_NEIGHBOR_TREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gsps/graph/graph.h"

namespace gsps {

// Index of a node within one tree's slot vector.
using TreeNodeId = int32_t;

constexpr TreeNodeId kInvalidTreeNode = -1;
// The root always occupies slot 0 and is never freed.
constexpr TreeNodeId kTreeRoot = 0;

// One tree node: the endpoint of one simple path from the root.
struct TreeNode {
  VertexId vertex = kInvalidVertex;   // Graph vertex this path ends at.
  VertexLabel vertex_label = 0;       // Cached label of `vertex`.
  TreeNodeId parent = kInvalidTreeNode;
  EdgeLabel edge_label = 0;           // Label of the edge from the parent.
  int32_t depth = 0;                  // Root is depth 0.
  uint32_t generation = 0;            // Bumped when the slot is freed.
  bool alive = false;
  // Positions of this node's entries in the NntSet's node-tree and
  // edge-tree index lists, maintained by the NntSet so deregistration is
  // O(1) (swap-erase with position fix-up). -1 when not registered.
  int32_t node_index_pos = -1;
  int32_t edge_index_pos = -1;
  std::vector<TreeNodeId> children;
};

// Slot-vector storage for one NNT.
class NodeNeighborTree {
 public:
  // Creates a tree containing only the root for `root_vertex`.
  NodeNeighborTree(VertexId root_vertex, VertexLabel root_label);

  // Trees are owned by an NntSet and referenced by index entries; moving
  // them would not invalidate anything, but copying would desync indexes.
  NodeNeighborTree(const NodeNeighborTree&) = delete;
  NodeNeighborTree& operator=(const NodeNeighborTree&) = delete;
  NodeNeighborTree(NodeNeighborTree&&) = default;
  NodeNeighborTree& operator=(NodeNeighborTree&&) = default;

  VertexId root_vertex() const { return root_vertex_; }

  // Allocates a child of `parent` and returns its id. The child's depth is
  // parent's depth + 1.
  TreeNodeId AddChild(TreeNodeId parent, VertexId vertex,
                      VertexLabel vertex_label, EdgeLabel edge_label);

  // Frees one node. The node must be alive, must not be the root, and must
  // have no children (free subtrees bottom-up). Its slot generation is
  // bumped so outstanding references become detectably stale.
  void FreeNode(TreeNodeId id);

  // Node accessor; `id` must be alive.
  const TreeNode& node(TreeNodeId id) const;

  // True if `id` refers to an alive node of the given generation.
  bool IsAlive(TreeNodeId id, uint32_t generation) const;

  // True if the undirected graph edge {a, b} lies on the path from the root
  // to `id` (inclusive of the edge into `id`). Used to enforce the
  // edge-simple-path invariant during expansion. O(depth).
  bool EdgeOnRootPath(TreeNodeId id, VertexId a, VertexId b) const;

  // Number of alive nodes, including the root.
  int32_t NumAliveNodes() const { return num_alive_; }

  // One past the largest slot index in use.
  TreeNodeId SlotBound() const { return static_cast<TreeNodeId>(nodes_.size()); }

  // Raw slot accessor for traversals that filter on `alive` themselves.
  const TreeNode& slot(TreeNodeId id) const {
    return nodes_[static_cast<size_t>(id)];
  }

  // Mutable accessor for the owning NntSet's index-position bookkeeping.
  // `id` must be alive.
  TreeNode& mutable_node(TreeNodeId id);

 private:

  VertexId root_vertex_;
  std::vector<TreeNode> nodes_;
  std::vector<TreeNodeId> free_slots_;
  int32_t num_alive_ = 0;
};

}  // namespace gsps

#endif  // GSPS_NNT_NODE_NEIGHBOR_TREE_H_
