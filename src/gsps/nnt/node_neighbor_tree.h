// Node-Neighbor Tree storage (paper Definition 3.1).
//
// The NNT of a vertex u is the tree rooted at u containing every edge-simple
// path of length up to `depth` starting at u: each tree node is one path
// prefix, identified by the graph vertex the path ends at. This class is the
// slotted arena storage for one such tree — allocation, freeing (with
// generation counters so stale index references can be detected), and
// parent-chain queries. The maintenance logic that keeps trees in sync with
// a changing graph lives in NntSet.
//
// Storage layout (DESIGN.md "Storage layout"): all nodes live in one flat
// slot vector; the child lists are intrusive first-child/next-sibling/
// prev-sibling links inside the slots themselves, so linking and unlinking a
// node is O(1) and a tree performs zero heap allocations beyond the slot
// vector's own growth. Freed slots go on a free list and are reused with
// a bumped generation.

#ifndef GSPS_NNT_NODE_NEIGHBOR_TREE_H_
#define GSPS_NNT_NODE_NEIGHBOR_TREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gsps/graph/graph.h"

namespace gsps {

// Index of a node within one tree's slot vector.
using TreeNodeId = int32_t;

constexpr TreeNodeId kInvalidTreeNode = -1;
// The root always occupies slot 0 and is never freed.
constexpr TreeNodeId kTreeRoot = 0;

// One tree node: the endpoint of one simple path from the root. A compact
// POD — children hang off the intrusive sibling links, so slots carry no
// heap-allocated members and the arena is one contiguous allocation.
struct TreeNode {
  VertexId vertex = kInvalidVertex;   // Graph vertex this path ends at.
  VertexLabel vertex_label = 0;       // Cached label of `vertex`.
  TreeNodeId parent = kInvalidTreeNode;
  // Intrusive child list: `first_child` heads the parent's list; siblings
  // are doubly linked so unlinking any child is O(1).
  TreeNodeId first_child = kInvalidTreeNode;
  TreeNodeId next_sibling = kInvalidTreeNode;
  TreeNodeId prev_sibling = kInvalidTreeNode;
  EdgeLabel edge_label = 0;           // Label of the edge from the parent.
  // Positions of this node's entries in the NntSet's node-tree and
  // edge-tree index lists, maintained by the NntSet so deregistration is
  // O(1) (swap-erase with position fix-up). -1 when not registered.
  int32_t node_index_pos = -1;
  int32_t edge_index_pos = -1;
  int32_t num_children = 0;
  uint32_t generation = 0;            // Bumped when the slot is freed.
  int16_t depth = 0;                  // Root is depth 0; bounded by NNT depth.
  bool alive = false;
};

// A node's tree is at most `depth` deep and depth_ is a small int, so int16
// never overflows; keeping it small packs TreeNode into 48 bytes.
static_assert(sizeof(TreeNode) <= 48, "TreeNode grew past one cache-line half");

// A reference to one tree node, safe against slot reuse via the generation.
// Lives here (not nnt_set.h) so the appearance indexes can name it too.
struct Appearance {
  VertexId tree_root = kInvalidVertex;  // Which vertex's tree.
  TreeNodeId node = kInvalidTreeNode;
  uint32_t generation = 0;

  friend bool operator==(const Appearance&, const Appearance&) = default;
};

// Slot-vector arena storage for one NNT.
class NodeNeighborTree {
 public:
  // Creates a tree containing only the root for `root_vertex`.
  NodeNeighborTree(VertexId root_vertex, VertexLabel root_label);

  // Trees are owned by an NntSet and referenced by index entries; moving
  // them would not invalidate anything, but copying would desync indexes.
  NodeNeighborTree(const NodeNeighborTree&) = delete;
  NodeNeighborTree& operator=(const NodeNeighborTree&) = delete;
  NodeNeighborTree(NodeNeighborTree&&) = default;
  NodeNeighborTree& operator=(NodeNeighborTree&&) = default;

  VertexId root_vertex() const { return root_vertex_; }

  // Allocates a child of `parent` and returns its id. The child's depth is
  // parent's depth + 1. The child is prepended to the parent's child list;
  // no consumer depends on sibling order.
  TreeNodeId AddChild(TreeNodeId parent, VertexId vertex,
                      VertexLabel vertex_label, EdgeLabel edge_label);

  // Frees one node in O(1). The node must be alive, must not be the root,
  // and must have no children (free subtrees bottom-up). Its slot generation
  // is bumped so outstanding references become detectably stale.
  void FreeNode(TreeNodeId id);

  // Grows the slot vector's capacity to `slots` up front (Build-time
  // pre-sizing; steady-state maintenance then reuses freed slots).
  void Reserve(int32_t slots);

  // Node accessor; `id` must be alive.
  const TreeNode& node(TreeNodeId id) const;

  // True if `id` refers to an alive node of the given generation.
  bool IsAlive(TreeNodeId id, uint32_t generation) const;

  // True if the undirected graph edge {a, b} lies on the path from the root
  // to `id` (inclusive of the edge into `id`). Used to enforce the
  // edge-simple-path invariant during expansion. O(depth).
  bool EdgeOnRootPath(TreeNodeId id, VertexId a, VertexId b) const;

  // Number of alive nodes, including the root.
  int32_t NumAliveNodes() const { return num_alive_; }

  // One past the largest slot index in use.
  TreeNodeId SlotBound() const { return static_cast<TreeNodeId>(nodes_.size()); }

  // Heap bytes held by this tree's arena and free list.
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(nodes_.capacity() * sizeof(TreeNode)) +
           static_cast<int64_t>(free_slots_.capacity() * sizeof(TreeNodeId));
  }

  // Raw slot accessor for traversals that filter on `alive` themselves.
  const TreeNode& slot(TreeNodeId id) const {
    return nodes_[static_cast<size_t>(id)];
  }

  // Mutable accessor for the owning NntSet's index-position bookkeeping.
  // `id` must be alive.
  TreeNode& mutable_node(TreeNodeId id);

  // Range over the children of `id` via the intrusive links:
  //   for (TreeNodeId child : tree.Children(id)) ...
  // Invalidated by AddChild/FreeNode under the iterated node.
  class ChildRange {
   public:
    class Iterator {
     public:
      Iterator(const NodeNeighborTree* tree, TreeNodeId at)
          : tree_(tree), at_(at) {}
      TreeNodeId operator*() const { return at_; }
      Iterator& operator++() {
        at_ = tree_->slot(at_).next_sibling;
        return *this;
      }
      friend bool operator==(const Iterator& a, const Iterator& b) {
        return a.at_ == b.at_;
      }

     private:
      const NodeNeighborTree* tree_;
      TreeNodeId at_;
    };

    ChildRange(const NodeNeighborTree* tree, TreeNodeId first)
        : tree_(tree), first_(first) {}
    Iterator begin() const { return Iterator(tree_, first_); }
    Iterator end() const { return Iterator(tree_, kInvalidTreeNode); }

   private:
    const NodeNeighborTree* tree_;
    TreeNodeId first_;
  };

  ChildRange Children(TreeNodeId id) const {
    return ChildRange(this, node(id).first_child);
  }

 private:
  VertexId root_vertex_;
  std::vector<TreeNode> nodes_;
  std::vector<TreeNodeId> free_slots_;
  int32_t num_alive_ = 0;
};

}  // namespace gsps

#endif  // GSPS_NNT_NODE_NEIGHBOR_TREE_H_
