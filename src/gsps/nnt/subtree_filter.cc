#include "gsps/nnt/subtree_filter.h"

#include <cstdint>
#include <unordered_map>

#include "gsps/common/check.h"
#include "gsps/iso/bipartite_matching.h"

namespace gsps {
namespace {

// Memoized embeddability of query subtree `q` at data subtree `d`.
class SubtreeMatcher {
 public:
  SubtreeMatcher(const NodeNeighborTree& query_tree,
                 const NodeNeighborTree& data_tree)
      : query_tree_(query_tree), data_tree_(data_tree) {}

  bool EmbeddableAt(TreeNodeId q, TreeNodeId d) {
    const uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(q))
                          << 32) |
                         static_cast<uint32_t>(d);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    const TreeNode& query_node = query_tree_.node(q);
    const TreeNode& data_node = data_tree_.node(d);
    bool result = false;
    if (query_node.vertex_label == data_node.vertex_label &&
        query_node.num_children <= data_node.num_children) {
      // Left-perfect matching of query children into data children, where
      // child qc may match child dc iff edge labels agree and qc's subtree
      // embeds at dc (recursively).
      BipartiteAdjacency adjacency(
          static_cast<size_t>(query_node.num_children));
      bool some_child_unmatchable = false;
      size_t i = 0;
      for (const TreeNodeId qc : query_tree_.Children(q)) {
        const EdgeLabel edge_label = query_tree_.node(qc).edge_label;
        int k = 0;
        for (const TreeNodeId dc : data_tree_.Children(d)) {
          if (data_tree_.node(dc).edge_label == edge_label &&
              EmbeddableAt(qc, dc)) {
            adjacency[i].push_back(k);
          }
          ++k;
        }
        if (adjacency[i].empty()) {
          some_child_unmatchable = true;
          break;
        }
        ++i;
      }
      result = !some_child_unmatchable &&
               HasLeftPerfectMatching(adjacency, data_node.num_children);
    }
    memo_.emplace(key, result);
    return result;
  }

 private:
  const NodeNeighborTree& query_tree_;
  const NodeNeighborTree& data_tree_;
  std::unordered_map<uint64_t, bool> memo_;
};

}  // namespace

bool NntSubtreeEmbeddable(const NodeNeighborTree& query_tree,
                          const NodeNeighborTree& data_tree) {
  SubtreeMatcher matcher(query_tree, data_tree);
  return matcher.EmbeddableAt(kTreeRoot, kTreeRoot);
}

bool NntSubtreeFilter(const NntSet& query_nnts, const NntSet& data_nnts) {
  GSPS_CHECK(query_nnts.depth() == data_nnts.depth());
  const std::vector<VertexId> data_roots = data_nnts.Roots();
  for (const VertexId q : query_nnts.Roots()) {
    const NodeNeighborTree* query_tree = query_nnts.TreeOf(q);
    bool matched = false;
    for (const VertexId d : data_roots) {
      if (NntSubtreeEmbeddable(*query_tree, *data_nnts.TreeOf(d))) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

}  // namespace gsps
