#include "gsps/nnt/node_neighbor_tree.h"

#include "gsps/common/check.h"
#include "gsps/obs/obs.h"

namespace gsps {

NodeNeighborTree::NodeNeighborTree(VertexId root_vertex,
                                   VertexLabel root_label)
    : root_vertex_(root_vertex) {
  TreeNode root;
  root.vertex = root_vertex;
  root.vertex_label = root_label;
  root.alive = true;
  nodes_.push_back(root);
  num_alive_ = 1;
}

TreeNodeId NodeNeighborTree::AddChild(TreeNodeId parent, VertexId vertex,
                                      VertexLabel vertex_label,
                                      EdgeLabel edge_label) {
  GSPS_DCHECK(parent >= 0 && parent < SlotBound());
  GSPS_DCHECK(nodes_[static_cast<size_t>(parent)].alive);
  TreeNodeId id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
    GSPS_OBS_COUNT(Counter::kNntTreeSlotsReused, 1);
  } else {
    id = static_cast<TreeNodeId>(nodes_.size());
    nodes_.emplace_back();
  }
  TreeNode& child = nodes_[static_cast<size_t>(id)];
  // Fetch the parent only after the potential reallocation above.
  TreeNode& parent_node = nodes_[static_cast<size_t>(parent)];
  child.vertex = vertex;
  child.vertex_label = vertex_label;
  child.parent = parent;
  child.edge_label = edge_label;
  child.depth = static_cast<int16_t>(parent_node.depth + 1);
  child.alive = true;
  child.node_index_pos = -1;
  child.edge_index_pos = -1;
  child.num_children = 0;
  child.first_child = kInvalidTreeNode;
  // Prepend into the parent's intrusive child list.
  child.prev_sibling = kInvalidTreeNode;
  child.next_sibling = parent_node.first_child;
  if (parent_node.first_child != kInvalidTreeNode) {
    nodes_[static_cast<size_t>(parent_node.first_child)].prev_sibling = id;
  }
  parent_node.first_child = id;
  ++parent_node.num_children;
  ++num_alive_;
  return id;
}

void NodeNeighborTree::FreeNode(TreeNodeId id) {
  GSPS_CHECK(id != kTreeRoot);
  TreeNode& victim = mutable_node(id);
  GSPS_CHECK(victim.num_children == 0);
  GSPS_DCHECK(victim.first_child == kInvalidTreeNode);
  // O(1) unlink from the parent's intrusive child list.
  TreeNode& parent = mutable_node(victim.parent);
  if (victim.prev_sibling != kInvalidTreeNode) {
    nodes_[static_cast<size_t>(victim.prev_sibling)].next_sibling =
        victim.next_sibling;
  } else {
    parent.first_child = victim.next_sibling;
  }
  if (victim.next_sibling != kInvalidTreeNode) {
    nodes_[static_cast<size_t>(victim.next_sibling)].prev_sibling =
        victim.prev_sibling;
  }
  --parent.num_children;
  victim.alive = false;
  ++victim.generation;
  victim.parent = kInvalidTreeNode;
  victim.next_sibling = kInvalidTreeNode;
  victim.prev_sibling = kInvalidTreeNode;
  victim.node_index_pos = -1;
  victim.edge_index_pos = -1;
  free_slots_.push_back(id);
  --num_alive_;
}

void NodeNeighborTree::Reserve(int32_t slots) {
  nodes_.reserve(static_cast<size_t>(slots));
  free_slots_.reserve(static_cast<size_t>(slots));
}

const TreeNode& NodeNeighborTree::node(TreeNodeId id) const {
  GSPS_DCHECK(id >= 0 && id < SlotBound());
  const TreeNode& result = nodes_[static_cast<size_t>(id)];
  GSPS_DCHECK(result.alive);
  return result;
}

bool NodeNeighborTree::IsAlive(TreeNodeId id, uint32_t generation) const {
  if (id < 0 || id >= SlotBound()) return false;
  const TreeNode& candidate = nodes_[static_cast<size_t>(id)];
  return candidate.alive && candidate.generation == generation;
}

bool NodeNeighborTree::EdgeOnRootPath(TreeNodeId id, VertexId a,
                                      VertexId b) const {
  TreeNodeId at = id;
  while (at != kTreeRoot) {
    const TreeNode& current = node(at);
    const TreeNode& parent = node(current.parent);
    const VertexId x = current.vertex;
    const VertexId y = parent.vertex;
    if ((x == a && y == b) || (x == b && y == a)) return true;
    at = current.parent;
  }
  return false;
}

TreeNode& NodeNeighborTree::mutable_node(TreeNodeId id) {
  GSPS_DCHECK(id >= 0 && id < SlotBound());
  TreeNode& result = nodes_[static_cast<size_t>(id)];
  GSPS_DCHECK(result.alive);
  return result;
}

}  // namespace gsps
