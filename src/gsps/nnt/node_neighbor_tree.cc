#include "gsps/nnt/node_neighbor_tree.h"

#include <algorithm>

#include "gsps/common/check.h"

namespace gsps {

NodeNeighborTree::NodeNeighborTree(VertexId root_vertex,
                                   VertexLabel root_label)
    : root_vertex_(root_vertex) {
  TreeNode root;
  root.vertex = root_vertex;
  root.vertex_label = root_label;
  root.parent = kInvalidTreeNode;
  root.depth = 0;
  root.alive = true;
  nodes_.push_back(std::move(root));
  num_alive_ = 1;
}

TreeNodeId NodeNeighborTree::AddChild(TreeNodeId parent, VertexId vertex,
                                      VertexLabel vertex_label,
                                      EdgeLabel edge_label) {
  TreeNode& parent_node = mutable_node(parent);
  const int32_t depth = parent_node.depth + 1;
  TreeNodeId id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
  } else {
    id = static_cast<TreeNodeId>(nodes_.size());
    nodes_.emplace_back();
  }
  TreeNode& child = nodes_[static_cast<size_t>(id)];
  child.vertex = vertex;
  child.vertex_label = vertex_label;
  child.parent = parent;
  child.edge_label = edge_label;
  child.depth = depth;
  child.alive = true;
  child.node_index_pos = -1;
  child.edge_index_pos = -1;
  child.children.clear();
  // Note: re-fetch the parent — nodes_ may have reallocated above.
  nodes_[static_cast<size_t>(parent)].children.push_back(id);
  ++num_alive_;
  return id;
}

void NodeNeighborTree::FreeNode(TreeNodeId id) {
  GSPS_CHECK(id != kTreeRoot);
  TreeNode& victim = mutable_node(id);
  GSPS_CHECK(victim.children.empty());
  // Unlink from the parent.
  TreeNode& parent = mutable_node(victim.parent);
  auto it = std::find(parent.children.begin(), parent.children.end(), id);
  GSPS_CHECK(it != parent.children.end());
  parent.children.erase(it);
  victim.alive = false;
  ++victim.generation;
  victim.parent = kInvalidTreeNode;
  victim.node_index_pos = -1;
  victim.edge_index_pos = -1;
  free_slots_.push_back(id);
  --num_alive_;
}

const TreeNode& NodeNeighborTree::node(TreeNodeId id) const {
  GSPS_DCHECK(id >= 0 && id < SlotBound());
  const TreeNode& result = nodes_[static_cast<size_t>(id)];
  GSPS_DCHECK(result.alive);
  return result;
}

bool NodeNeighborTree::IsAlive(TreeNodeId id, uint32_t generation) const {
  if (id < 0 || id >= SlotBound()) return false;
  const TreeNode& candidate = nodes_[static_cast<size_t>(id)];
  return candidate.alive && candidate.generation == generation;
}

bool NodeNeighborTree::EdgeOnRootPath(TreeNodeId id, VertexId a,
                                      VertexId b) const {
  TreeNodeId at = id;
  while (at != kTreeRoot) {
    const TreeNode& current = node(at);
    const TreeNode& parent = node(current.parent);
    const VertexId x = current.vertex;
    const VertexId y = parent.vertex;
    if ((x == a && y == b) || (x == b && y == a)) return true;
    at = current.parent;
  }
  return false;
}

TreeNode& NodeNeighborTree::mutable_node(TreeNodeId id) {
  GSPS_DCHECK(id >= 0 && id < SlotBound());
  TreeNode& result = nodes_[static_cast<size_t>(id)];
  GSPS_DCHECK(result.alive);
  return result;
}

}  // namespace gsps
