#include "gsps/nnt/edge_index.h"

#include "gsps/common/check.h"

namespace gsps {
namespace {

// Keep the table at most ~70% full.
constexpr size_t kMinSlots = 16;

size_t SlotsFor(int64_t num_keys) {
  size_t slots = kMinSlots;
  while (static_cast<int64_t>(slots - slots / 4) < num_keys) slots *= 2;
  return slots;
}

}  // namespace

EdgeAppearanceMap::EdgeAppearanceMap() : slots_(kMinSlots), mask_(kMinSlots - 1) {}

void EdgeAppearanceMap::Clear() {
  slots_.assign(kMinSlots, Slot{});
  mask_ = kMinSlots - 1;
  num_keys_ = 0;
  lists_.clear();
  free_lists_.clear();
}

void EdgeAppearanceMap::Reserve(int64_t num_keys) {
  const size_t slots = SlotsFor(num_keys);
  if (slots <= slots_.size()) return;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(slots, Slot{});
  mask_ = slots - 1;
  for (const Slot& slot : old) {
    if (slot.key == kEmptyKey) continue;
    size_t at = SlotFor(slot.key);
    while (slots_[at].key != kEmptyKey) at = (at + 1) & mask_;
    slots_[at] = slot;
  }
  lists_.reserve(static_cast<size_t>(num_keys));
}

const std::vector<Appearance>* EdgeAppearanceMap::Find(uint64_t key) const {
  GSPS_DCHECK(key != kEmptyKey);
  size_t at = SlotFor(key);
  while (true) {
    const Slot& slot = slots_[at];
    if (slot.key == key) return &lists_[static_cast<size_t>(slot.list)];
    if (slot.key == kEmptyKey) return nullptr;
    at = (at + 1) & mask_;
  }
}

std::vector<Appearance>* EdgeAppearanceMap::Find(uint64_t key) {
  return const_cast<std::vector<Appearance>*>(
      static_cast<const EdgeAppearanceMap*>(this)->Find(key));
}

std::vector<Appearance>& EdgeAppearanceMap::GetOrCreate(uint64_t key) {
  GSPS_DCHECK(key != kEmptyKey);
  size_t at = SlotFor(key);
  while (true) {
    Slot& slot = slots_[at];
    if (slot.key == key) return lists_[static_cast<size_t>(slot.list)];
    if (slot.key == kEmptyKey) break;
    at = (at + 1) & mask_;
  }
  if (static_cast<size_t>(num_keys_ + 1) > slots_.size() - slots_.size() / 4) {
    Grow();
    at = SlotFor(key);
    while (slots_[at].key != kEmptyKey) at = (at + 1) & mask_;
  }
  int32_t list_id;
  if (!free_lists_.empty()) {
    list_id = free_lists_.back();
    free_lists_.pop_back();
  } else {
    list_id = static_cast<int32_t>(lists_.size());
    lists_.emplace_back();
  }
  slots_[at] = Slot{key, list_id};
  ++num_keys_;
  return lists_[static_cast<size_t>(list_id)];
}

void EdgeAppearanceMap::Erase(uint64_t key) {
  GSPS_DCHECK(key != kEmptyKey);
  size_t at = SlotFor(key);
  while (slots_[at].key != key) {
    GSPS_CHECK(slots_[at].key != kEmptyKey);  // Erasing an absent key.
    at = (at + 1) & mask_;
  }
  const int32_t list_id = slots_[at].list;
  GSPS_CHECK(lists_[static_cast<size_t>(list_id)].empty());
  lists_[static_cast<size_t>(list_id)].clear();  // Keeps capacity.
  free_lists_.push_back(list_id);
  --num_keys_;
  // Backward-shift deletion: move up any displaced entries so probe chains
  // stay tombstone-free.
  size_t hole = at;
  size_t probe = (at + 1) & mask_;
  while (slots_[probe].key != kEmptyKey) {
    const size_t home = SlotFor(slots_[probe].key);
    // The entry at `probe` may move into `hole` iff its home position does
    // not lie strictly between hole (exclusive) and probe (inclusive) in
    // probe order — i.e. the hole is on its probe path.
    const bool movable =
        ((probe - home) & mask_) >= ((probe - hole) & mask_);
    if (movable) {
      slots_[hole] = slots_[probe];
      hole = probe;
    }
    probe = (probe + 1) & mask_;
  }
  slots_[hole] = Slot{};
}

int64_t EdgeAppearanceMap::StorageBytes() const {
  int64_t bytes =
      static_cast<int64_t>(slots_.capacity() * sizeof(Slot)) +
      static_cast<int64_t>(free_lists_.capacity() * sizeof(int32_t)) +
      static_cast<int64_t>(lists_.capacity() *
                           sizeof(std::vector<Appearance>));
  for (const std::vector<Appearance>& list : lists_) {
    bytes += static_cast<int64_t>(list.capacity() * sizeof(Appearance));
  }
  return bytes;
}

uint64_t EdgeAppearanceMap::Mix(uint64_t key) {
  // splitmix64 finalizer.
  key ^= key >> 30;
  key *= 0xbf58476d1ce4e5b9ULL;
  key ^= key >> 27;
  key *= 0x94d049bb133111ebULL;
  key ^= key >> 31;
  return key;
}

void EdgeAppearanceMap::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  mask_ = slots_.size() - 1;
  for (const Slot& slot : old) {
    if (slot.key == kEmptyKey) continue;
    size_t at = SlotFor(slot.key);
    while (slots_[at].key != kEmptyKey) at = (at + 1) & mask_;
    slots_[at] = slot;
  }
}

}  // namespace gsps
