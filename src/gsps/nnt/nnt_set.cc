#include "gsps/nnt/nnt_set.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <utility>

#include "gsps/common/check.h"
#include "gsps/obs/obs.h"

namespace gsps {

NntSet::NntSet(int depth, DimensionTable* dimensions)
    : depth_(depth), dimensions_(dimensions) {
  GSPS_CHECK(depth >= 1);
  GSPS_CHECK(dimensions != nullptr);
}

void NntSet::Build(const Graph& graph) {
  trees_.clear();
  node_index_.clear();
  edge_index_.clear();
  dim_counts_.clear();
  dirty_roots_.clear();
  for (const VertexId v : graph.VertexIds()) {
    EnsureTree(v, graph.GetVertexLabel(v));
  }
  for (const VertexId v : graph.VertexIds()) {
    ExpandSubtree(graph, v, kTreeRoot);
  }
}

void NntSet::InsertEdge(const Graph& graph, VertexId u, VertexId v) {
  GSPS_CHECK(graph.HasEdge(u, v));
  const EdgeLabel edge_label = graph.GetEdgeLabel(u, v);
  EnsureTree(u, graph.GetVertexLabel(u));
  EnsureTree(v, graph.GetVertexLabel(v));

  // Snapshot both appearance lists before any mutation: every new simple
  // path crosses the new edge exactly once, so its pre-edge prefix ends at a
  // pre-existing appearance of u (crossing u->v) or of v (crossing v->u).
  const std::vector<Appearance> appearances_u = node_index_[u];
  const std::vector<Appearance> appearances_v = node_index_[v];
  GSPS_OBS_COUNT(Counter::kNntInsertEdges, 1);
  GSPS_OBS_COUNT(Counter::kNntPathsTouched,
                 static_cast<int64_t>(appearances_u.size()) +
                     static_cast<int64_t>(appearances_v.size()));

  auto extend = [&](const std::vector<Appearance>& appearances, VertexId from,
                    VertexId to) {
    for (const Appearance& appearance : appearances) {
      NodeNeighborTree* tree = MutableTreeOf(appearance.tree_root);
      GSPS_DCHECK(tree != nullptr);
      if (!tree->IsAlive(appearance.node, appearance.generation)) continue;
      const TreeNode& at = tree->node(appearance.node);
      GSPS_DCHECK(at.vertex == from);
      if (at.depth >= depth_) continue;
      if (tree->EdgeOnRootPath(appearance.node, from, to)) continue;
      const TreeNodeId child =
          AddTreeChild(appearance.tree_root, appearance.node, to,
                       graph.GetVertexLabel(to), edge_label);
      ExpandSubtree(graph, appearance.tree_root, child);
    }
  };
  extend(appearances_u, u, v);
  extend(appearances_v, v, u);
}

void NntSet::DeleteEdge(VertexId u, VertexId v) {
  const uint64_t key = EdgeKey(u, v);
  auto it = edge_index_.find(key);
  if (it == edge_index_.end()) return;
  // Snapshot: deleting one appearance's subtree may remove other
  // appearances of the same edge that sit deeper in that subtree; the
  // generation check skips those stale snapshot entries.
  const std::vector<Appearance> appearances = it->second;
  GSPS_OBS_COUNT(Counter::kNntDeleteEdges, 1);
  GSPS_OBS_COUNT(Counter::kNntPathsTouched,
                 static_cast<int64_t>(appearances.size()));
  for (const Appearance& appearance : appearances) {
    NodeNeighborTree* tree = MutableTreeOf(appearance.tree_root);
    if (tree == nullptr ||
        !tree->IsAlive(appearance.node, appearance.generation)) {
      continue;
    }
    DeleteSubtree(appearance.tree_root, appearance.node);
  }
  auto remaining = edge_index_.find(key);
  GSPS_CHECK(remaining == edge_index_.end() || remaining->second.empty());
  if (remaining != edge_index_.end()) edge_index_.erase(remaining);
}

void NntSet::RemoveTree(VertexId v) {
  NodeNeighborTree* tree = MutableTreeOf(v);
  GSPS_CHECK(tree != nullptr);
  GSPS_CHECK_MSG(tree->NumAliveNodes() == 1,
                 "delete incident edges before removing a vertex tree");
  auto it = node_index_.find(v);
  GSPS_CHECK(it != node_index_.end());
  EraseAppearanceAt(it->second, tree->slot(kTreeRoot).node_index_pos,
                    /*node_list=*/true);
  if (it->second.empty()) node_index_.erase(it);
  trees_[static_cast<size_t>(v)].reset();
  dim_counts_[static_cast<size_t>(v)].clear();
  dirty_roots_.insert(v);
}

const NodeNeighborTree* NntSet::TreeOf(VertexId root) const {
  if (root < 0 || root >= static_cast<VertexId>(trees_.size())) return nullptr;
  return trees_[static_cast<size_t>(root)].get();
}

std::vector<VertexId> NntSet::Roots() const {
  std::vector<VertexId> roots;
  for (size_t i = 0; i < trees_.size(); ++i) {
    if (trees_[i] != nullptr) roots.push_back(static_cast<VertexId>(i));
  }
  return roots;
}

Npv NntSet::NpvOf(VertexId root) const {
  GSPS_CHECK(TreeOf(root) != nullptr);
  return Npv::FromMap(dim_counts_[static_cast<size_t>(root)]);
}

std::vector<VertexId> NntSet::TakeDirtyRoots() {
  std::vector<VertexId> result(dirty_roots_.begin(), dirty_roots_.end());
  std::sort(result.begin(), result.end());
  dirty_roots_.clear();
  return result;
}

std::map<std::vector<int32_t>, int64_t> NntSet::BranchesOf(
    VertexId root) const {
  const NodeNeighborTree* tree = TreeOf(root);
  GSPS_CHECK(tree != nullptr);
  std::map<std::vector<int32_t>, int64_t> out;
  // DFS carrying the signature; each non-root node is one branch.
  std::vector<int32_t> signature = {tree->slot(kTreeRoot).vertex_label};
  struct Frame {
    TreeNodeId node;
    size_t next_child = 0;
  };
  std::vector<Frame> stack = {{kTreeRoot, 0}};
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const TreeNode& node = tree->node(frame.node);
    if (frame.next_child < node.children.size()) {
      const TreeNodeId child_id = node.children[frame.next_child++];
      const TreeNode& child = tree->node(child_id);
      signature.push_back(child.edge_label);
      signature.push_back(child.vertex_label);
      ++out[signature];
      stack.push_back({child_id, 0});
    } else {
      stack.pop_back();
      if (!stack.empty()) {
        signature.pop_back();
        signature.pop_back();
      }
    }
  }
  return out;
}

int64_t NntSet::TotalTreeNodes() const {
  int64_t total = 0;
  for (const auto& tree : trees_) {
    if (tree != nullptr) total += tree->NumAliveNodes();
  }
  return total;
}

uint64_t NntSet::EdgeKey(VertexId a, VertexId b) {
  const uint32_t lo = static_cast<uint32_t>(std::min(a, b));
  const uint32_t hi = static_cast<uint32_t>(std::max(a, b));
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

NodeNeighborTree* NntSet::MutableTreeOf(VertexId root) {
  if (root < 0 || root >= static_cast<VertexId>(trees_.size())) return nullptr;
  return trees_[static_cast<size_t>(root)].get();
}

NodeNeighborTree& NntSet::EnsureTree(VertexId v, VertexLabel label) {
  GSPS_CHECK(v >= 0);
  if (v >= static_cast<VertexId>(trees_.size())) {
    trees_.resize(static_cast<size_t>(v) + 1);
    dim_counts_.resize(static_cast<size_t>(v) + 1);
  }
  std::unique_ptr<NodeNeighborTree>& slot = trees_[static_cast<size_t>(v)];
  if (slot == nullptr) {
    slot = std::make_unique<NodeNeighborTree>(v, label);
    std::vector<Appearance>& list = node_index_[v];
    list.push_back(Appearance{v, kTreeRoot, slot->slot(kTreeRoot).generation});
    slot->mutable_node(kTreeRoot).node_index_pos =
        static_cast<int32_t>(list.size()) - 1;
    dirty_roots_.insert(v);
  }
  return *slot;
}

TreeNodeId NntSet::AddTreeChild(VertexId root, TreeNodeId parent,
                                VertexId vertex, VertexLabel vertex_label,
                                EdgeLabel edge_label) {
  NodeNeighborTree* tree = MutableTreeOf(root);
  GSPS_DCHECK(tree != nullptr);
  const VertexId parent_vertex = tree->node(parent).vertex;
  const VertexLabel parent_label = tree->node(parent).vertex_label;
  const TreeNodeId child =
      tree->AddChild(parent, vertex, vertex_label, edge_label);
  TreeNode& child_node = tree->mutable_node(child);
  const Appearance appearance{root, child, child_node.generation};
  std::vector<Appearance>& node_list = node_index_[vertex];
  node_list.push_back(appearance);
  child_node.node_index_pos = static_cast<int32_t>(node_list.size()) - 1;
  std::vector<Appearance>& edge_list =
      edge_index_[EdgeKey(parent_vertex, vertex)];
  edge_list.push_back(appearance);
  child_node.edge_index_pos = static_cast<int32_t>(edge_list.size()) - 1;
  BumpDimension(root, child_node.depth, parent_label, vertex_label, +1);
  GSPS_OBS_COUNT(Counter::kNntTreeNodesCreated, 1);
  return child;
}

void NntSet::FreeTreeNode(VertexId root, TreeNodeId node_id) {
  NodeNeighborTree* tree = MutableTreeOf(root);
  GSPS_DCHECK(tree != nullptr);
  const TreeNode& victim = tree->node(node_id);
  GSPS_CHECK(node_id != kTreeRoot);
  const VertexId vertex = victim.vertex;
  const VertexId parent_vertex = tree->node(victim.parent).vertex;
  const VertexLabel parent_label = tree->node(victim.parent).vertex_label;
  const int32_t level = victim.depth;
  const VertexLabel vertex_label = victim.vertex_label;

  auto node_it = node_index_.find(vertex);
  GSPS_CHECK(node_it != node_index_.end());
  EraseAppearanceAt(node_it->second, victim.node_index_pos,
                    /*node_list=*/true);
  if (node_it->second.empty()) node_index_.erase(node_it);

  auto edge_it = edge_index_.find(EdgeKey(parent_vertex, vertex));
  GSPS_CHECK(edge_it != edge_index_.end());
  EraseAppearanceAt(edge_it->second, victim.edge_index_pos,
                    /*node_list=*/false);
  if (edge_it->second.empty()) edge_index_.erase(edge_it);

  BumpDimension(root, level, parent_label, vertex_label, -1);
  tree->FreeNode(node_id);
  GSPS_OBS_COUNT(Counter::kNntTreeNodesFreed, 1);
}

void NntSet::EraseAppearanceAt(std::vector<Appearance>& list, int32_t pos,
                               bool node_list) {
  GSPS_CHECK(pos >= 0 && pos < static_cast<int32_t>(list.size()));
  const int32_t last = static_cast<int32_t>(list.size()) - 1;
  if (pos != last) {
    list[static_cast<size_t>(pos)] = list[static_cast<size_t>(last)];
    // Fix up the moved appearance's stored position.
    const Appearance& moved = list[static_cast<size_t>(pos)];
    NodeNeighborTree* moved_tree = MutableTreeOf(moved.tree_root);
    GSPS_DCHECK(moved_tree != nullptr);
    TreeNode& moved_node = moved_tree->mutable_node(moved.node);
    if (node_list) {
      moved_node.node_index_pos = pos;
    } else {
      moved_node.edge_index_pos = pos;
    }
  }
  list.pop_back();
}

void NntSet::ExpandSubtree(const Graph& graph, VertexId root,
                           TreeNodeId start) {
  NodeNeighborTree* tree = MutableTreeOf(root);
  GSPS_DCHECK(tree != nullptr);
  std::deque<TreeNodeId> queue = {start};
  while (!queue.empty()) {
    const TreeNodeId at_id = queue.front();
    queue.pop_front();
    const TreeNode& at = tree->node(at_id);
    if (at.depth >= depth_) continue;
    const VertexId from = at.vertex;
    for (const HalfEdge& half : graph.Neighbors(from)) {
      if (tree->EdgeOnRootPath(at_id, from, half.to)) continue;
      const TreeNodeId child =
          AddTreeChild(root, at_id, half.to, graph.GetVertexLabel(half.to),
                       half.label);
      queue.push_back(child);
    }
  }
}

void NntSet::DeleteSubtree(VertexId root, TreeNodeId node_id) {
  NodeNeighborTree* tree = MutableTreeOf(root);
  GSPS_DCHECK(tree != nullptr);
  // Collect the subtree in preorder, then free in reverse (leaves first).
  std::vector<TreeNodeId> preorder;
  std::vector<TreeNodeId> stack = {node_id};
  while (!stack.empty()) {
    const TreeNodeId at = stack.back();
    stack.pop_back();
    preorder.push_back(at);
    for (const TreeNodeId child : tree->node(at).children) {
      stack.push_back(child);
    }
  }
  for (auto it = preorder.rbegin(); it != preorder.rend(); ++it) {
    FreeTreeNode(root, *it);
  }
}

void NntSet::BumpDimension(VertexId root, int32_t level,
                           VertexLabel parent_label, VertexLabel child_label,
                           int32_t delta) {
  const DimId dim = dimensions_->Intern(level, parent_label, child_label);
  std::unordered_map<DimId, int32_t>& counts =
      dim_counts_[static_cast<size_t>(root)];
  auto [it, inserted] = counts.try_emplace(dim, 0);
  it->second += delta;
  GSPS_CHECK(it->second >= 0);
  if (it->second == 0) counts.erase(it);
  if (dirty_roots_.insert(root).second) {
    GSPS_OBS_COUNT(Counter::kNntRootsDirtied, 1);
  }
}

bool NntSet::Validate(const Graph& graph) const {
  auto fail = [](const char* what) {
    std::fprintf(stderr, "NntSet::Validate failed: %s\n", what);
    return false;
  };

  // Independent enumeration of edge-simple paths for the oracle comparison.
  struct Oracle {
    const Graph& graph;
    int depth;
    std::map<std::vector<int32_t>, int64_t> branches;
    std::vector<int32_t> signature;
    std::vector<std::pair<VertexId, VertexId>> path;

    void Expand(VertexId at, int remaining) {
      if (remaining == 0) return;
      for (const HalfEdge& half : graph.Neighbors(at)) {
        const std::pair<VertexId, VertexId> edge = {
            std::min(at, half.to), std::max(at, half.to)};
        if (std::find(path.begin(), path.end(), edge) != path.end()) continue;
        signature.push_back(half.label);
        signature.push_back(graph.GetVertexLabel(half.to));
        path.push_back(edge);
        ++branches[signature];
        Expand(half.to, remaining - 1);
        path.pop_back();
        signature.pop_back();
        signature.pop_back();
      }
    }
  };

  int64_t indexed_nodes = 0;
  for (const auto& [vertex, appearances] : node_index_) {
    for (size_t pos = 0; pos < appearances.size(); ++pos) {
      const Appearance& appearance = appearances[pos];
      const NodeNeighborTree* tree = TreeOf(appearance.tree_root);
      if (tree == nullptr) return fail("node index references missing tree");
      if (!tree->IsAlive(appearance.node, appearance.generation)) {
        return fail("node index references dead node");
      }
      if (tree->node(appearance.node).vertex != vertex) {
        return fail("node index vertex mismatch");
      }
      if (tree->node(appearance.node).node_index_pos !=
          static_cast<int32_t>(pos)) {
        return fail("node index position stale");
      }
      ++indexed_nodes;
    }
  }
  int64_t indexed_edges = 0;
  for (const auto& [key, appearances] : edge_index_) {
    for (size_t pos = 0; pos < appearances.size(); ++pos) {
      const Appearance& appearance = appearances[pos];
      const NodeNeighborTree* tree = TreeOf(appearance.tree_root);
      if (tree == nullptr) return fail("edge index references missing tree");
      if (!tree->IsAlive(appearance.node, appearance.generation)) {
        return fail("edge index references dead node");
      }
      const TreeNode& child = tree->node(appearance.node);
      const TreeNode& parent = tree->node(child.parent);
      if (EdgeKey(parent.vertex, child.vertex) != key) {
        return fail("edge index key mismatch");
      }
      if (child.edge_index_pos != static_cast<int32_t>(pos)) {
        return fail("edge index position stale");
      }
      ++indexed_edges;
    }
  }

  int64_t alive_total = 0;
  int64_t alive_non_root = 0;
  for (const VertexId root : Roots()) {
    const NodeNeighborTree* tree = TreeOf(root);
    alive_total += tree->NumAliveNodes();
    alive_non_root += tree->NumAliveNodes() - 1;

    if (!graph.HasVertex(root)) return fail("tree for vertex not in graph");
    // Recount dimensions while walking the tree.
    std::unordered_map<DimId, int32_t> recount;
    std::vector<TreeNodeId> stack = {kTreeRoot};
    while (!stack.empty()) {
      const TreeNodeId at_id = stack.back();
      stack.pop_back();
      const TreeNode& at = tree->node(at_id);
      if (!graph.HasVertex(at.vertex)) {
        return fail("tree node references vertex not in graph");
      }
      if (graph.GetVertexLabel(at.vertex) != at.vertex_label) {
        return fail("tree node label stale");
      }
      if (at_id != kTreeRoot) {
        const TreeNode& parent = tree->node(at.parent);
        if (at.depth != parent.depth + 1) return fail("depth inconsistent");
        if (at.depth > depth_) return fail("node beyond max depth");
        if (!graph.HasEdge(parent.vertex, at.vertex)) {
          return fail("tree edge not in graph");
        }
        if (graph.GetEdgeLabel(parent.vertex, at.vertex) != at.edge_label) {
          return fail("tree edge label stale");
        }
        auto dim = dimensions_->Find(at.depth, parent.vertex_label,
                                     at.vertex_label);
        if (!dim.has_value()) return fail("dimension not interned");
        ++recount[*dim];
      }
      for (const TreeNodeId child : at.children) stack.push_back(child);
    }
    const std::unordered_map<DimId, int32_t>& counted =
        dim_counts_[static_cast<size_t>(root)];
    for (const auto& [dim, count] : recount) {
      auto it = counted.find(dim);
      if (it == counted.end() || it->second != count) {
        return fail("dimension count mismatch");
      }
    }
    for (const auto& [dim, count] : counted) {
      (void)dim;
      if (count <= 0) return fail("non-positive dimension count");
    }
    if (recount.size() != counted.size()) {
      return fail("dimension count cardinality mismatch");
    }

    // The tree must hold exactly the edge-simple paths up to depth_.
    Oracle oracle{graph, depth_, {}, {graph.GetVertexLabel(root)}, {}};
    oracle.Expand(root, depth_);
    if (oracle.branches != BranchesOf(root)) {
      return fail("tree branches differ from fresh enumeration");
    }
  }

  if (indexed_nodes != alive_total) {
    return fail("node index cardinality mismatch");
  }
  if (indexed_edges != alive_non_root) {
    return fail("edge index cardinality mismatch");
  }
  return true;
}

}  // namespace gsps
