#include "gsps/nnt/nnt_set.h"

#include <algorithm>
#include <cstdio>

#include "gsps/common/check.h"
#include "gsps/obs/obs.h"

namespace gsps {
namespace {

// Caps the Build-time per-tree reservation so pathological degree skew
// cannot balloon the arenas; trees grow past this lazily like before.
constexpr int64_t kMaxReserveSlots = int64_t{1} << 16;

}  // namespace

NntSet::NntSet(int depth, DimensionTable* dimensions)
    : depth_(depth), dimensions_(dimensions) {
  GSPS_CHECK(depth >= 1);
  GSPS_CHECK(dimensions != nullptr);
}

void NntSet::Build(const Graph& graph) {
  GSPS_OBS_STAGE(Stage::kNntMaintain);
  trees_.clear();
  node_index_.clear();
  edge_index_.Clear();
  dim_counts_.clear();
  npv_cache_.clear();
  npv_cache_valid_.clear();
  dirty_flag_.clear();
  dirty_list_.clear();

  const VertexId bound = graph.VertexIdBound();
  if (bound > 0) EnsureRootCapacity(bound - 1);
  edge_index_.Reserve(graph.NumEdges());

  // Pre-size the slot arenas and index lists from degree statistics: with
  // average branching r, a depth-l tree holds about 1 + deg(v) * f nodes
  // where f = sum_{k=0}^{l-1} (r-1)^k (Lemma 3.2's r^(l-1) growth), and a
  // vertex appears in other trees about as often as an average tree is big.
  const int64_t n = graph.NumVertices();
  const double avg_degree =
      n > 0 ? 2.0 * static_cast<double>(graph.NumEdges()) /
                  static_cast<double>(n)
            : 0.0;
  const double branch = avg_degree > 2.0 ? avg_degree - 1.0 : 1.0;
  double level_width = 1.0;
  double fanout = 1.0;
  for (int level = 1; level < depth_; ++level) {
    level_width *= branch;
    fanout += level_width;
  }
  const int64_t avg_tree_nodes = std::min<int64_t>(
      kMaxReserveSlots, 1 + static_cast<int64_t>(avg_degree * fanout));

  for (const VertexId v : graph.VertexIds()) {
    NodeNeighborTree& tree = EnsureTree(v, graph.GetVertexLabel(v));
    const int64_t est_nodes = std::min<int64_t>(
        kMaxReserveSlots,
        1 + static_cast<int64_t>(graph.Degree(v) * fanout));
    tree.Reserve(static_cast<int32_t>(est_nodes));
    node_index_[static_cast<size_t>(v)].reserve(
        static_cast<size_t>(avg_tree_nodes));
    dim_counts_[static_cast<size_t>(v)].reserve(16);
  }
  for (const VertexId v : graph.VertexIds()) {
    ExpandSubtree(graph, v, kTreeRoot);
  }
}

void NntSet::InsertEdge(const Graph& graph, VertexId u, VertexId v) {
  GSPS_CHECK(graph.HasEdge(u, v));
  const EdgeLabel edge_label = graph.GetEdgeLabel(u, v);
  EnsureTree(u, graph.GetVertexLabel(u));
  EnsureTree(v, graph.GetVertexLabel(v));

  // Snapshot both appearance lists before any mutation: every new simple
  // path crosses the new edge exactly once, so its pre-edge prefix ends at a
  // pre-existing appearance of u (crossing u->v) or of v (crossing v->u).
  // Member scratch so the steady state allocates nothing.
  const std::vector<Appearance>& list_u = node_index_[static_cast<size_t>(u)];
  const std::vector<Appearance>& list_v = node_index_[static_cast<size_t>(v)];
  scratch_appearances_u_.assign(list_u.begin(), list_u.end());
  scratch_appearances_v_.assign(list_v.begin(), list_v.end());
  GSPS_OBS_COUNT(Counter::kNntInsertEdges, 1);
  GSPS_OBS_COUNT(Counter::kNntPathsTouched,
                 static_cast<int64_t>(scratch_appearances_u_.size()) +
                     static_cast<int64_t>(scratch_appearances_v_.size()));

  auto extend = [&](const std::vector<Appearance>& appearances, VertexId from,
                    VertexId to) {
    for (const Appearance& appearance : appearances) {
      NodeNeighborTree* tree = MutableTreeOf(appearance.tree_root);
      GSPS_DCHECK(tree != nullptr);
      if (!tree->IsAlive(appearance.node, appearance.generation)) continue;
      const TreeNode& at = tree->node(appearance.node);
      GSPS_DCHECK(at.vertex == from);
      if (at.depth >= depth_) continue;
      if (tree->EdgeOnRootPath(appearance.node, from, to)) continue;
      const TreeNodeId child =
          AddTreeChild(appearance.tree_root, appearance.node, to,
                       graph.GetVertexLabel(to), edge_label);
      ExpandSubtree(graph, appearance.tree_root, child);
    }
  };
  extend(scratch_appearances_u_, u, v);
  extend(scratch_appearances_v_, v, u);
}

void NntSet::DeleteEdge(VertexId u, VertexId v) {
  const uint64_t key = EdgeKey(u, v);
  const std::vector<Appearance>* list = edge_index_.Find(key);
  if (list == nullptr) return;
  // Snapshot: deleting one appearance's subtree may remove other
  // appearances of the same edge that sit deeper in that subtree; the
  // generation check skips those stale snapshot entries.
  scratch_edge_appearances_.assign(list->begin(), list->end());
  GSPS_OBS_COUNT(Counter::kNntDeleteEdges, 1);
  GSPS_OBS_COUNT(Counter::kNntPathsTouched,
                 static_cast<int64_t>(scratch_edge_appearances_.size()));
  for (const Appearance& appearance : scratch_edge_appearances_) {
    NodeNeighborTree* tree = MutableTreeOf(appearance.tree_root);
    if (tree == nullptr ||
        !tree->IsAlive(appearance.node, appearance.generation)) {
      continue;
    }
    DeleteSubtree(appearance.tree_root, appearance.node);
  }
  // FreeTreeNode erases the key once its last appearance deregisters.
  GSPS_CHECK(edge_index_.Find(key) == nullptr);
}

void NntSet::RemoveTree(VertexId v) {
  NodeNeighborTree* tree = MutableTreeOf(v);
  GSPS_CHECK(tree != nullptr);
  GSPS_CHECK_MSG(tree->NumAliveNodes() == 1,
                 "delete incident edges before removing a vertex tree");
  EraseAppearanceAt(node_index_[static_cast<size_t>(v)],
                    tree->slot(kTreeRoot).node_index_pos,
                    /*node_list=*/true);
  trees_[static_cast<size_t>(v)].reset();
  dim_counts_[static_cast<size_t>(v)].clear();
  npv_cache_valid_[static_cast<size_t>(v)] = 0;
  MarkDirty(v);
}

const NodeNeighborTree* NntSet::TreeOf(VertexId root) const {
  if (root < 0 || root >= static_cast<VertexId>(trees_.size())) return nullptr;
  return trees_[static_cast<size_t>(root)].get();
}

std::vector<VertexId> NntSet::Roots() const {
  std::vector<VertexId> roots;
  for (size_t i = 0; i < trees_.size(); ++i) {
    if (trees_[i] != nullptr) roots.push_back(static_cast<VertexId>(i));
  }
  return roots;
}

const Npv& NntSet::NpvOf(VertexId root) const {
  GSPS_CHECK(TreeOf(root) != nullptr);
  const size_t r = static_cast<size_t>(root);
  if (!npv_cache_valid_[r]) {
    npv_cache_[r].AssignSortedEntries(dim_counts_[r]);
    npv_cache_valid_[r] = 1;
    GSPS_OBS_COUNT(Counter::kNntNpvCacheRebuilds, 1);
  }
#if defined(GSPS_SANITIZE_ENABLED)
  // The invalidation protocol must keep the cache an exact mirror of the
  // live counts; recompute and compare under sanitizer builds.
  GSPS_CHECK(npv_cache_[r].entries() == dim_counts_[r]);
#endif
  return npv_cache_[r];
}

void NntSet::TakeDirtyRoots(std::vector<VertexId>* out) {
  std::sort(dirty_list_.begin(), dirty_list_.end());
  out->assign(dirty_list_.begin(), dirty_list_.end());
  for (const VertexId root : dirty_list_) {
    dirty_flag_[static_cast<size_t>(root)] = 0;
  }
  dirty_list_.clear();
}

std::vector<VertexId> NntSet::TakeDirtyRoots() {
  std::vector<VertexId> result;
  TakeDirtyRoots(&result);
  return result;
}

std::map<std::vector<int32_t>, int64_t> NntSet::BranchesOf(
    VertexId root) const {
  const NodeNeighborTree* tree = TreeOf(root);
  GSPS_CHECK(tree != nullptr);
  std::map<std::vector<int32_t>, int64_t> out;
  // DFS carrying the signature; each non-root node is one branch.
  std::vector<int32_t> signature = {tree->slot(kTreeRoot).vertex_label};
  struct Frame {
    TreeNodeId node;
    TreeNodeId next_child;
  };
  std::vector<Frame> stack = {
      {kTreeRoot, tree->node(kTreeRoot).first_child}};
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_child != kInvalidTreeNode) {
      const TreeNodeId child_id = frame.next_child;
      const TreeNode& child = tree->node(child_id);
      frame.next_child = child.next_sibling;
      signature.push_back(child.edge_label);
      signature.push_back(child.vertex_label);
      ++out[signature];
      stack.push_back({child_id, child.first_child});
    } else {
      stack.pop_back();
      if (!stack.empty()) {
        signature.pop_back();
        signature.pop_back();
      }
    }
  }
  return out;
}

int64_t NntSet::TotalTreeNodes() const {
  int64_t total = 0;
  for (const auto& tree : trees_) {
    if (tree != nullptr) total += tree->NumAliveNodes();
  }
  return total;
}

int64_t NntSet::StorageBytes() const {
  int64_t bytes = 0;
  for (const auto& tree : trees_) {
    if (tree != nullptr) {
      bytes += static_cast<int64_t>(sizeof(NodeNeighborTree)) +
               tree->MemoryBytes();
    }
  }
  bytes += static_cast<int64_t>(trees_.capacity() *
                                sizeof(std::unique_ptr<NodeNeighborTree>));
  for (const std::vector<Appearance>& list : node_index_) {
    bytes += static_cast<int64_t>(list.capacity() * sizeof(Appearance));
  }
  bytes += static_cast<int64_t>(node_index_.capacity() *
                                sizeof(std::vector<Appearance>));
  bytes += edge_index_.StorageBytes();
  for (const std::vector<NpvEntry>& counts : dim_counts_) {
    bytes += static_cast<int64_t>(counts.capacity() * sizeof(NpvEntry));
  }
  bytes += static_cast<int64_t>(dim_counts_.capacity() *
                                sizeof(std::vector<NpvEntry>));
  for (const Npv& npv : npv_cache_) {
    bytes += static_cast<int64_t>(npv.entries().capacity() * sizeof(NpvEntry));
  }
  bytes += static_cast<int64_t>(npv_cache_.capacity() * sizeof(Npv));
  bytes += static_cast<int64_t>(npv_cache_valid_.capacity() +
                                dirty_flag_.capacity());
  bytes += static_cast<int64_t>(dirty_list_.capacity() * sizeof(VertexId));
  return bytes;
}

uint64_t NntSet::EdgeKey(VertexId a, VertexId b) {
  const uint32_t lo = static_cast<uint32_t>(std::min(a, b));
  const uint32_t hi = static_cast<uint32_t>(std::max(a, b));
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

NodeNeighborTree* NntSet::MutableTreeOf(VertexId root) {
  if (root < 0 || root >= static_cast<VertexId>(trees_.size())) return nullptr;
  return trees_[static_cast<size_t>(root)].get();
}

void NntSet::EnsureRootCapacity(VertexId v) {
  const size_t needed = static_cast<size_t>(v) + 1;
  if (trees_.size() >= needed) return;
  trees_.resize(needed);
  node_index_.resize(needed);
  dim_counts_.resize(needed);
  npv_cache_.resize(needed);
  npv_cache_valid_.resize(needed, 0);
  dirty_flag_.resize(needed, 0);
}

NodeNeighborTree& NntSet::EnsureTree(VertexId v, VertexLabel label) {
  GSPS_CHECK(v >= 0);
  EnsureRootCapacity(v);
  std::unique_ptr<NodeNeighborTree>& slot = trees_[static_cast<size_t>(v)];
  if (slot == nullptr) {
    slot = std::make_unique<NodeNeighborTree>(v, label);
    std::vector<Appearance>& list = node_index_[static_cast<size_t>(v)];
    list.push_back(Appearance{v, kTreeRoot, slot->slot(kTreeRoot).generation});
    slot->mutable_node(kTreeRoot).node_index_pos =
        static_cast<int32_t>(list.size()) - 1;
    npv_cache_valid_[static_cast<size_t>(v)] = 0;
    MarkDirty(v);
  }
  return *slot;
}

TreeNodeId NntSet::AddTreeChild(VertexId root, TreeNodeId parent,
                                VertexId vertex, VertexLabel vertex_label,
                                EdgeLabel edge_label) {
  NodeNeighborTree* tree = MutableTreeOf(root);
  GSPS_DCHECK(tree != nullptr);
  const VertexId parent_vertex = tree->node(parent).vertex;
  const VertexLabel parent_label = tree->node(parent).vertex_label;
  const TreeNodeId child =
      tree->AddChild(parent, vertex, vertex_label, edge_label);
  TreeNode& child_node = tree->mutable_node(child);
  const Appearance appearance{root, child, child_node.generation};
  EnsureRootCapacity(vertex);
  std::vector<Appearance>& node_list = node_index_[static_cast<size_t>(vertex)];
  node_list.push_back(appearance);
  child_node.node_index_pos = static_cast<int32_t>(node_list.size()) - 1;
  std::vector<Appearance>& edge_list =
      edge_index_.GetOrCreate(EdgeKey(parent_vertex, vertex));
  edge_list.push_back(appearance);
  child_node.edge_index_pos = static_cast<int32_t>(edge_list.size()) - 1;
  BumpDimension(root, child_node.depth, parent_label, vertex_label, +1);
  GSPS_OBS_COUNT(Counter::kNntTreeNodesCreated, 1);
  return child;
}

void NntSet::FreeTreeNode(VertexId root, TreeNodeId node_id) {
  NodeNeighborTree* tree = MutableTreeOf(root);
  GSPS_DCHECK(tree != nullptr);
  const TreeNode& victim = tree->node(node_id);
  GSPS_CHECK(node_id != kTreeRoot);
  const VertexId vertex = victim.vertex;
  const VertexId parent_vertex = tree->node(victim.parent).vertex;
  const VertexLabel parent_label = tree->node(victim.parent).vertex_label;
  const int32_t level = victim.depth;
  const VertexLabel vertex_label = victim.vertex_label;

  EraseAppearanceAt(node_index_[static_cast<size_t>(vertex)],
                    victim.node_index_pos,
                    /*node_list=*/true);

  const uint64_t key = EdgeKey(parent_vertex, vertex);
  std::vector<Appearance>* edge_list = edge_index_.Find(key);
  GSPS_CHECK(edge_list != nullptr);
  EraseAppearanceAt(*edge_list, victim.edge_index_pos,
                    /*node_list=*/false);
  if (edge_list->empty()) edge_index_.Erase(key);

  BumpDimension(root, level, parent_label, vertex_label, -1);
  tree->FreeNode(node_id);
  GSPS_OBS_COUNT(Counter::kNntTreeNodesFreed, 1);
}

void NntSet::EraseAppearanceAt(std::vector<Appearance>& list, int32_t pos,
                               bool node_list) {
  GSPS_CHECK(pos >= 0 && pos < static_cast<int32_t>(list.size()));
  const int32_t last = static_cast<int32_t>(list.size()) - 1;
  if (pos != last) {
    list[static_cast<size_t>(pos)] = list[static_cast<size_t>(last)];
    // Fix up the moved appearance's stored position.
    const Appearance& moved = list[static_cast<size_t>(pos)];
    NodeNeighborTree* moved_tree = MutableTreeOf(moved.tree_root);
    GSPS_DCHECK(moved_tree != nullptr);
    TreeNode& moved_node = moved_tree->mutable_node(moved.node);
    if (node_list) {
      moved_node.node_index_pos = pos;
    } else {
      moved_node.edge_index_pos = pos;
    }
  }
  list.pop_back();
}

void NntSet::ExpandSubtree(const Graph& graph, VertexId root,
                           TreeNodeId start) {
  NodeNeighborTree* tree = MutableTreeOf(root);
  GSPS_DCHECK(tree != nullptr);
  // BFS over a reused vector with a moving head (never nested).
  scratch_bfs_.clear();
  scratch_bfs_.push_back(start);
  for (size_t head = 0; head < scratch_bfs_.size(); ++head) {
    const TreeNodeId at_id = scratch_bfs_[head];
    // Copy out of the slot — AddTreeChild below may reallocate the arena.
    const int16_t at_depth = tree->node(at_id).depth;
    const VertexId from = tree->node(at_id).vertex;
    if (at_depth >= depth_) continue;
    for (const HalfEdge& half : graph.Neighbors(from)) {
      if (tree->EdgeOnRootPath(at_id, from, half.to)) continue;
      const TreeNodeId child =
          AddTreeChild(root, at_id, half.to, graph.GetVertexLabel(half.to),
                       half.label);
      scratch_bfs_.push_back(child);
    }
  }
}

void NntSet::DeleteSubtree(VertexId root, TreeNodeId node_id) {
  NodeNeighborTree* tree = MutableTreeOf(root);
  GSPS_DCHECK(tree != nullptr);
  // Collect the subtree in preorder, then free in reverse (leaves first).
  // Reused member scratch; FreeTreeNode never re-enters here.
  scratch_preorder_.clear();
  scratch_stack_.clear();
  scratch_stack_.push_back(node_id);
  while (!scratch_stack_.empty()) {
    const TreeNodeId at = scratch_stack_.back();
    scratch_stack_.pop_back();
    scratch_preorder_.push_back(at);
    for (const TreeNodeId child : tree->Children(at)) {
      scratch_stack_.push_back(child);
    }
  }
  for (auto it = scratch_preorder_.rbegin(); it != scratch_preorder_.rend();
       ++it) {
    FreeTreeNode(root, *it);
  }
}

void NntSet::BumpDimension(VertexId root, int32_t level,
                           VertexLabel parent_label, VertexLabel child_label,
                           int32_t delta) {
  const DimId dim = dimensions_->Intern(level, parent_label, child_label);
  std::vector<NpvEntry>& counts = dim_counts_[static_cast<size_t>(root)];
  auto it = std::lower_bound(
      counts.begin(), counts.end(), dim,
      [](const NpvEntry& entry, DimId d) { return entry.dim < d; });
  if (it != counts.end() && it->dim == dim) {
    it->count += delta;
    GSPS_CHECK(it->count >= 0);
    if (it->count == 0) counts.erase(it);
  } else {
    GSPS_CHECK(delta > 0);
    counts.insert(it, NpvEntry{dim, delta});
  }
  npv_cache_valid_[static_cast<size_t>(root)] = 0;
  MarkDirty(root);
}

void NntSet::MarkDirty(VertexId root) {
  uint8_t& flag = dirty_flag_[static_cast<size_t>(root)];
  if (flag) return;
  flag = 1;
  dirty_list_.push_back(root);
  GSPS_OBS_COUNT(Counter::kNntRootsDirtied, 1);
}

bool NntSet::Validate(const Graph& graph) const {
  auto fail = [](const char* what) {
    std::fprintf(stderr, "NntSet::Validate failed: %s\n", what);
    return false;
  };

  // Independent enumeration of edge-simple paths for the oracle comparison.
  struct Oracle {
    const Graph& graph;
    int depth;
    std::map<std::vector<int32_t>, int64_t> branches;
    std::vector<int32_t> signature;
    std::vector<std::pair<VertexId, VertexId>> path;

    void Expand(VertexId at, int remaining) {
      if (remaining == 0) return;
      for (const HalfEdge& half : graph.Neighbors(at)) {
        const std::pair<VertexId, VertexId> edge = {
            std::min(at, half.to), std::max(at, half.to)};
        if (std::find(path.begin(), path.end(), edge) != path.end()) continue;
        signature.push_back(half.label);
        signature.push_back(graph.GetVertexLabel(half.to));
        path.push_back(edge);
        ++branches[signature];
        Expand(half.to, remaining - 1);
        path.pop_back();
        signature.pop_back();
        signature.pop_back();
      }
    }
  };

  int64_t indexed_nodes = 0;
  for (size_t vertex = 0; vertex < node_index_.size(); ++vertex) {
    const std::vector<Appearance>& appearances = node_index_[vertex];
    for (size_t pos = 0; pos < appearances.size(); ++pos) {
      const Appearance& appearance = appearances[pos];
      const NodeNeighborTree* tree = TreeOf(appearance.tree_root);
      if (tree == nullptr) return fail("node index references missing tree");
      if (!tree->IsAlive(appearance.node, appearance.generation)) {
        return fail("node index references dead node");
      }
      if (tree->node(appearance.node).vertex !=
          static_cast<VertexId>(vertex)) {
        return fail("node index vertex mismatch");
      }
      if (tree->node(appearance.node).node_index_pos !=
          static_cast<int32_t>(pos)) {
        return fail("node index position stale");
      }
      ++indexed_nodes;
    }
  }

  int64_t indexed_edges = 0;
  const char* edge_error = nullptr;
  edge_index_.ForEach([&](uint64_t key,
                          const std::vector<Appearance>& appearances) {
    if (edge_error != nullptr) return;
    if (appearances.empty()) {
      edge_error = "edge index holds an empty list";
      return;
    }
    for (size_t pos = 0; pos < appearances.size(); ++pos) {
      const Appearance& appearance = appearances[pos];
      const NodeNeighborTree* tree = TreeOf(appearance.tree_root);
      if (tree == nullptr) {
        edge_error = "edge index references missing tree";
        return;
      }
      if (!tree->IsAlive(appearance.node, appearance.generation)) {
        edge_error = "edge index references dead node";
        return;
      }
      const TreeNode& child = tree->node(appearance.node);
      const TreeNode& parent = tree->node(child.parent);
      if (EdgeKey(parent.vertex, child.vertex) != key) {
        edge_error = "edge index key mismatch";
        return;
      }
      if (child.edge_index_pos != static_cast<int32_t>(pos)) {
        edge_error = "edge index position stale";
        return;
      }
      ++indexed_edges;
    }
  });
  if (edge_error != nullptr) return fail(edge_error);

  // Dirty bookkeeping: the list holds exactly the flagged roots, once each.
  int64_t flagged = 0;
  for (const uint8_t flag : dirty_flag_) flagged += flag;
  if (flagged != static_cast<int64_t>(dirty_list_.size())) {
    return fail("dirty list out of sync with dirty flags");
  }
  for (const VertexId root : dirty_list_) {
    if (!dirty_flag_[static_cast<size_t>(root)]) {
      return fail("dirty list entry not flagged");
    }
  }

  int64_t alive_total = 0;
  int64_t alive_non_root = 0;
  for (const VertexId root : Roots()) {
    const NodeNeighborTree* tree = TreeOf(root);
    alive_total += tree->NumAliveNodes();
    alive_non_root += tree->NumAliveNodes() - 1;

    if (!graph.HasVertex(root)) return fail("tree for vertex not in graph");
    // Recount dimensions while walking the tree and check the intrusive
    // sibling links.
    std::map<DimId, int32_t> recount;
    std::vector<TreeNodeId> stack = {kTreeRoot};
    while (!stack.empty()) {
      const TreeNodeId at_id = stack.back();
      stack.pop_back();
      const TreeNode& at = tree->node(at_id);
      if (!graph.HasVertex(at.vertex)) {
        return fail("tree node references vertex not in graph");
      }
      if (graph.GetVertexLabel(at.vertex) != at.vertex_label) {
        return fail("tree node label stale");
      }
      if (at_id != kTreeRoot) {
        const TreeNode& parent = tree->node(at.parent);
        if (at.depth != parent.depth + 1) return fail("depth inconsistent");
        if (at.depth > depth_) return fail("node beyond max depth");
        if (!graph.HasEdge(parent.vertex, at.vertex)) {
          return fail("tree edge not in graph");
        }
        if (graph.GetEdgeLabel(parent.vertex, at.vertex) != at.edge_label) {
          return fail("tree edge label stale");
        }
        auto dim = dimensions_->Find(at.depth, parent.vertex_label,
                                     at.vertex_label);
        if (!dim.has_value()) return fail("dimension not interned");
        ++recount[*dim];
      }
      if (at.first_child != kInvalidTreeNode &&
          tree->slot(at.first_child).prev_sibling != kInvalidTreeNode) {
        return fail("first child has a previous sibling");
      }
      int32_t child_count = 0;
      TreeNodeId previous = kInvalidTreeNode;
      for (const TreeNodeId child_id : tree->Children(at_id)) {
        const TreeNode& child = tree->node(child_id);
        if (child.parent != at_id) return fail("child parent link broken");
        if (child.prev_sibling != previous) {
          return fail("sibling back-link broken");
        }
        previous = child_id;
        ++child_count;
        stack.push_back(child_id);
      }
      if (child_count != at.num_children) {
        return fail("num_children does not match sibling chain");
      }
    }

    // dim_counts_ must be the sorted, strictly-positive form of the recount.
    const std::vector<NpvEntry>& counted =
        dim_counts_[static_cast<size_t>(root)];
    if (static_cast<size_t>(recount.size()) != counted.size()) {
      return fail("dimension count cardinality mismatch");
    }
    size_t at = 0;
    for (const auto& [dim, count] : recount) {
      if (counted[at].dim != dim || counted[at].count != count) {
        return fail("dimension count mismatch");
      }
      if (counted[at].count <= 0) return fail("non-positive dimension count");
      if (at > 0 && counted[at - 1].dim >= counted[at].dim) {
        return fail("dimension counts not sorted");
      }
      ++at;
    }
    if (npv_cache_valid_[static_cast<size_t>(root)] &&
        npv_cache_[static_cast<size_t>(root)].entries() != counted) {
      return fail("NPV cache diverged from dimension counts");
    }

    // The tree must hold exactly the edge-simple paths up to depth_.
    Oracle oracle{graph, depth_, {}, {graph.GetVertexLabel(root)}, {}};
    oracle.Expand(root, depth_);
    if (oracle.branches != BranchesOf(root)) {
      return fail("tree branches differ from fresh enumeration");
    }
  }

  if (indexed_nodes != alive_total) {
    return fail("node index cardinality mismatch");
  }
  if (indexed_edges != alive_non_root) {
    return fail("edge index cardinality mismatch");
  }
  return true;
}

}  // namespace gsps
