// The edge-tree index I_et: packed undirected graph edge -> the tree edges
// realizing it across all NNTs (paper §III.B).
//
// Implemented as an open-addressing, linear-probing hash table over packed
// 64-bit edge keys, with the appearance lists held in a recycling pool:
//
//   * slots_ is a power-of-two flat array of {key, list-id} pairs; key 0 is
//     the empty sentinel (a packed edge key is never 0 because self-loops do
//     not exist, so min(u,v) != max(u,v) and the low half is never equal to
//     the high half — in particular {0,0} never occurs).
//   * Values are ids into lists_, a pool of appearance vectors. Erasing a
//     key returns its (empty) vector to a free list with capacity intact,
//     so steady-state delete/insert churn allocates nothing.
//   * Deletion uses backward-shift compaction instead of tombstones, so
//     probe chains never degrade under churn.
//
// The map is single-threaded like the NntSet that owns it.

#ifndef GSPS_NNT_EDGE_INDEX_H_
#define GSPS_NNT_EDGE_INDEX_H_

#include <cstdint>
#include <vector>

#include "gsps/nnt/node_neighbor_tree.h"

namespace gsps {

class EdgeAppearanceMap {
 public:
  EdgeAppearanceMap();

  // Drops all keys and pooled lists (full rebuild only).
  void Clear();

  // Sizes the slot table for `num_keys` keys up front (Build-time).
  void Reserve(int64_t num_keys);

  // The list stored under `key`, or nullptr. The pointer is invalidated by
  // any mutating call (GetOrCreate/Erase/Reserve/Clear).
  const std::vector<Appearance>* Find(uint64_t key) const;
  std::vector<Appearance>* Find(uint64_t key);

  // The list stored under `key`, creating an empty one (from the pool when
  // possible) if absent.
  std::vector<Appearance>& GetOrCreate(uint64_t key);

  // Removes `key`, recycling its list. The list must be empty — the NntSet
  // erases a key only once every appearance is deregistered.
  void Erase(uint64_t key);

  int64_t NumKeys() const { return num_keys_; }

  // Heap bytes held by the slot table and the list pool.
  int64_t StorageBytes() const;

  // Calls fn(key, list) for every stored key, in unspecified order. The
  // callback must not mutate the map.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.key != kEmptyKey) {
        fn(slot.key, lists_[static_cast<size_t>(slot.list)]);
      }
    }
  }

 private:
  struct Slot {
    uint64_t key = 0;
    int32_t list = -1;
  };

  static constexpr uint64_t kEmptyKey = 0;

  // Finalizer-style 64-bit mix so nearby vertex ids spread across slots.
  static uint64_t Mix(uint64_t key);

  size_t SlotFor(uint64_t key) const {
    return static_cast<size_t>(Mix(key)) & mask_;
  }

  // Doubles the slot table and rehashes (list ids are stable).
  void Grow();

  std::vector<Slot> slots_;  // Power-of-two size.
  size_t mask_ = 0;          // slots_.size() - 1.
  int64_t num_keys_ = 0;

  // List pool; free_lists_ holds the ids of recycled (empty) vectors.
  std::vector<std::vector<Appearance>> lists_;
  std::vector<int32_t> free_lists_;
};

}  // namespace gsps

#endif  // GSPS_NNT_EDGE_INDEX_H_
