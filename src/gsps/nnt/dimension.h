// Projection dimensions (paper Definition 4.1).
//
// A dimension is the triple (level, parent_vertex_label, child_vertex_label)
// of a tree edge: a tree edge whose child sits at depth `level` of an NNT
// contributes one count to that dimension. The DimensionTable interns
// triples to dense ids shared across all queries and streams so that node
// projected vectors are directly comparable.
//
// The full space has |labels|^2 * depth dimensions; only the ones actually
// observed are interned, which keeps vectors sparse (§IV.A).

#ifndef GSPS_NNT_DIMENSION_H_
#define GSPS_NNT_DIMENSION_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "gsps/graph/graph.h"

namespace gsps {

// Dense dimension id assigned by a DimensionTable.
using DimId = int32_t;

constexpr DimId kInvalidDim = -1;

// A projection dimension triple.
struct Dimension {
  int32_t level = 0;            // Depth of the tree edge's child (>= 1).
  VertexLabel parent_label = 0;  // Label of the tree edge's parent vertex.
  VertexLabel child_label = 0;   // Label of the tree edge's child vertex.

  friend bool operator==(const Dimension&, const Dimension&) = default;
};

// Interns dimension triples to dense ids.
//
// One table is shared by every NntSet participating in a join (queries and
// streams alike); it is append-only, so existing ids stay valid as streams
// reveal new label combinations.
class DimensionTable {
 public:
  DimensionTable() = default;

  // Not copyable: every NntSet holds a pointer to one shared table.
  DimensionTable(const DimensionTable&) = delete;
  DimensionTable& operator=(const DimensionTable&) = delete;

  // Returns the id for the triple, interning it if new.
  DimId Intern(int32_t level, VertexLabel parent_label,
               VertexLabel child_label);

  // Returns the id for the triple if already interned.
  std::optional<DimId> Find(int32_t level, VertexLabel parent_label,
                            VertexLabel child_label) const;

  // The triple behind an id. `id` must be valid.
  const Dimension& Get(DimId id) const;

  // Number of interned dimensions.
  int32_t size() const { return static_cast<int32_t>(dimensions_.size()); }

 private:
  static uint64_t Key(int32_t level, VertexLabel parent_label,
                      VertexLabel child_label);

  std::vector<Dimension> dimensions_;
  std::unordered_map<uint64_t, DimId> index_;
};

}  // namespace gsps

#endif  // GSPS_NNT_DIMENSION_H_
