// Node Projected Vectors (paper Definition 4.2).
//
// The NPV of a vertex counts, per projection dimension, the tree edges of
// its NNT falling into that dimension. Vectors are stored sparsely as
// entries sorted by dimension id (§IV.A: most dimensions are zero).
//
// Dominance fast path: every vector carries a 64-bit signature with bit
// (dim mod 64) set for each non-zero dimension. A vector can dominate
// another only if its signature is a bit-superset of the other's, so
// Dominates rejects most non-dominating pairs with one mask before the
// entry merge. NpvDimRemap + NpvSlab support the join strategies' dense
// layout: query-side vectors are translated into a contiguous dense dim-id
// space and stored back-to-back, and stream vectors are translated into the
// same space (dropping dimensions no query uses, which is
// dominance-preserving because only the query's non-zero dimensions are
// ever inspected). With at most 64 distinct query dimensions the dense
// signatures are exact, not hashed.

#ifndef GSPS_NNT_NPV_H_
#define GSPS_NNT_NPV_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "gsps/common/aligned.h"
#include "gsps/nnt/dimension.h"

namespace gsps {

// One non-zero coordinate of an NPV.
struct NpvEntry {
  DimId dim = kInvalidDim;
  int32_t count = 0;

  friend bool operator==(const NpvEntry&, const NpvEntry&) = default;
};

// Bit (dim mod 64) per non-zero dimension. A superset test on signatures is
// a necessary condition for dominance (exact when all dims are < 64, e.g.
// after dense translation of a small query dim set).
using NpvSignature = uint64_t;

constexpr NpvSignature NpvSignatureBit(DimId dim) {
  return NpvSignature{1} << (static_cast<uint32_t>(dim) & 63u);
}

// True when every bit of `needle` is present in `hay`. Dominance requires
// SignatureCovers(dominator, dominated).
constexpr bool SignatureCovers(NpvSignature hay, NpvSignature needle) {
  return (needle & ~hay) == 0;
}

// Signature over a raw entry range.
NpvSignature SignatureOf(const NpvEntry* begin, const NpvEntry* end);

// Merge-dominance over raw entry ranges, both sorted ascending by dim: true
// when the hay range has a coordinate >= every needle coordinate. The
// kernel behind Npv::Dominates and the slab-based strategy loops; callers
// are expected to have applied the signature reject already.
bool DominatesRange(const NpvEntry* hay_begin, const NpvEntry* hay_end,
                    const NpvEntry* needle_begin, const NpvEntry* needle_end);

// A sparse, immutable node projected vector.
class Npv {
 public:
  Npv() = default;

  // Builds from a dim -> count map; zero and negative counts are dropped
  // (counts are cardinalities, so negatives would indicate index corruption
  // and are rejected by the NntSet before reaching here). Sorts — off the
  // hot path; the NntSet NPV cache uses AssignSortedEntries instead.
  static Npv FromMap(const std::unordered_map<DimId, int32_t>& counts);

  // Builds from entries that are already sorted by dim with positive counts.
  static Npv FromSortedEntries(std::vector<NpvEntry> entries);

  // Replaces the contents with `entries` (already sorted by dim, positive
  // counts), reusing this vector's capacity. The NntSet NPV cache refill —
  // no sort, no allocation in steady state.
  void AssignSortedEntries(const std::vector<NpvEntry>& entries);

  // Value at `dim` (0 when absent). O(log nnz).
  int32_t ValueAt(DimId dim) const;

  // Non-zero entries, ascending by dim.
  const std::vector<NpvEntry>& entries() const { return entries_; }

  // Number of non-zero dimensions.
  int32_t nnz() const { return static_cast<int32_t>(entries_.size()); }

  // Non-zero-dimension signature, maintained alongside the entries.
  NpvSignature signature() const { return signature_; }

  // True when every coordinate of *this is >= the matching coordinate of
  // `other` — i.e. *this dominates `other` in the sense of Lemma 4.2
  // (`other` <= *this). Only `other`'s non-zero entries need inspection;
  // the signature superset test rejects in O(1) first.
  bool Dominates(const Npv& other) const;

  friend bool operator==(const Npv&, const Npv&) = default;

 private:
  std::vector<NpvEntry> entries_;
  NpvSignature signature_ = 0;
};

// Dense dimension-id translation for a fixed vector set (the join query
// side). Build with AddDims over every query vector, then Seal; the dims
// seen map to the dense range [0, num_dims()) in ascending order, so
// translation preserves entry order. Stream-side vectors translated through
// the same remap drop every dimension no query uses — such dimensions can
// never fail a dominance test against a query vector.
class NpvDimRemap {
 public:
  // Collect phase: registers the non-zero dims of `npv`.
  void AddDims(const Npv& npv);

  // Freezes the dim set. AddDims must not be called afterwards.
  void Seal();

  bool sealed() const { return sealed_; }

  // Number of distinct dims registered. Valid after Seal.
  int32_t num_dims() const { return static_cast<int32_t>(dims_.size()); }

  // Rewrites `npv` into *out (cleared first, capacity reused): entries with
  // a registered dim keep their count under the dense id, others are
  // dropped. Returns the signature over the dense ids. Linear merge.
  NpvSignature Translate(const Npv& npv, std::vector<NpvEntry>* out) const;

 private:
  std::vector<DimId> dims_;  // Sorted ascending after Seal.
  bool sealed_ = false;
};

// Alignment contract of the slab arrays (see DESIGN.md "Dominance kernel"):
// both the entry array and the signature array start on a 64-byte boundary
// and carry sentinel tail padding, so a vector lane that starts at the last
// real element reads sentinels, never unowned memory.
inline constexpr std::size_t kNpvSlabAlignment = 64;
// Entry array padded to a multiple of 16 entries with {dim 0, count 0}
// sentinels (a zero count can never fail a dominance compare).
inline constexpr int32_t kNpvSlabEntryPad = 16;
// Signature array padded to a multiple of 8 lanes with all-ones sentinels
// (an all-ones signature is never covered unless the hay covers everything;
// kernel consumers additionally mask out the phantom lanes).
inline constexpr int32_t kNpvSlabSigPad = 8;

using NpvEntryVector =
    std::vector<NpvEntry, AlignedAllocator<NpvEntry, kNpvSlabAlignment>>;
using NpvSignatureVector =
    std::vector<NpvSignature, AlignedAllocator<NpvSignature, kNpvSlabAlignment>>;

// Many sparse vectors stored back-to-back in one contiguous entry array,
// each with its signature at hand: the join strategies' cache-resident
// query-side layout, and the memory the dominance kernel sweeps. Real
// entries stay back-to-back; padding exists only past the last vector.
class NpvSlab {
 public:
  // Appends a vector (entries sorted ascending by dim) and returns its
  // index. Re-establishes the tail padding, so the slab is kernel-ready
  // after every append.
  int32_t Append(const std::vector<NpvEntry>& entries);

  int32_t size() const { return static_cast<int32_t>(refs_.size()); }

  const NpvEntry* begin(int32_t i) const {
    return entries_.data() + refs_[static_cast<size_t>(i)].offset;
  }
  const NpvEntry* end(int32_t i) const {
    const Ref& ref = refs_[static_cast<size_t>(i)];
    return entries_.data() + ref.offset + ref.size;
  }
  int32_t nnz(int32_t i) const { return refs_[static_cast<size_t>(i)].size; }
  NpvSignature signature(int32_t i) const {
    return sigs_[static_cast<size_t>(i)];
  }

  // Raw padded arrays for the dominance kernel's vector sweeps.
  const NpvEntry* entry_data() const { return entries_.data(); }
  int32_t num_entries() const { return num_entries_; }
  int32_t padded_entries() const { return static_cast<int32_t>(entries_.size()); }
  const NpvSignature* sig_data() const { return sigs_.data(); }
  int32_t padded_sigs() const { return static_cast<int32_t>(sigs_.size()); }

  // Validates the alignment/padding contract above; called by the kernel at
  // bind time in sanitizer builds.
  void CheckKernelLayout() const;

 private:
  struct Ref {
    int32_t offset = 0;
    int32_t size = 0;
  };
  NpvEntryVector entries_;  // [0, num_entries_) real, then sentinels.
  int32_t num_entries_ = 0;
  NpvSignatureVector sigs_;  // [0, size()) real, then sentinels.
  std::vector<Ref> refs_;
};

}  // namespace gsps

#endif  // GSPS_NNT_NPV_H_
