// Node Projected Vectors (paper Definition 4.2).
//
// The NPV of a vertex counts, per projection dimension, the tree edges of
// its NNT falling into that dimension. Vectors are stored sparsely as
// entries sorted by dimension id (§IV.A: most dimensions are zero).
//
// Dominance fast path: every vector carries a 64-bit signature with bit
// (dim mod 64) set for each non-zero dimension. A vector can dominate
// another only if its signature is a bit-superset of the other's, so
// Dominates rejects most non-dominating pairs with one mask before the
// entry merge. NpvDimRemap + NpvSlab support the join strategies' dense
// layout: query-side vectors are translated into a contiguous dense dim-id
// space and stored back-to-back, and stream vectors are translated into the
// same space (dropping dimensions no query uses, which is
// dominance-preserving because only the query's non-zero dimensions are
// ever inspected). With at most 64 distinct query dimensions the dense
// signatures are exact, not hashed.

#ifndef GSPS_NNT_NPV_H_
#define GSPS_NNT_NPV_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "gsps/common/aligned.h"
#include "gsps/nnt/dimension.h"

namespace gsps {

// One non-zero coordinate of an NPV.
struct NpvEntry {
  DimId dim = kInvalidDim;
  int32_t count = 0;

  friend bool operator==(const NpvEntry&, const NpvEntry&) = default;
};

// Bit (dim mod 64) per non-zero dimension. A superset test on signatures is
// a necessary condition for dominance (exact when all dims are < 64, e.g.
// after dense translation of a small query dim set).
using NpvSignature = uint64_t;

constexpr NpvSignature NpvSignatureBit(DimId dim) {
  return NpvSignature{1} << (static_cast<uint32_t>(dim) & 63u);
}

// True when every bit of `needle` is present in `hay`. Dominance requires
// SignatureCovers(dominator, dominated).
constexpr bool SignatureCovers(NpvSignature hay, NpvSignature needle) {
  return (needle & ~hay) == 0;
}

// Signature over a raw entry range.
NpvSignature SignatureOf(const NpvEntry* begin, const NpvEntry* end);

// Merge-dominance over raw entry ranges, both sorted ascending by dim: true
// when the hay range has a coordinate >= every needle coordinate. The
// kernel behind Npv::Dominates and the slab-based strategy loops; callers
// are expected to have applied the signature reject already.
bool DominatesRange(const NpvEntry* hay_begin, const NpvEntry* hay_end,
                    const NpvEntry* needle_begin, const NpvEntry* needle_end);

// A sparse, immutable node projected vector.
class Npv {
 public:
  Npv() = default;

  // Builds from a dim -> count map; zero and negative counts are dropped
  // (counts are cardinalities, so negatives would indicate index corruption
  // and are rejected by the NntSet before reaching here). Sorts — off the
  // hot path; the NntSet NPV cache uses AssignSortedEntries instead.
  static Npv FromMap(const std::unordered_map<DimId, int32_t>& counts);

  // Builds from entries that are already sorted by dim with positive counts.
  static Npv FromSortedEntries(std::vector<NpvEntry> entries);

  // Replaces the contents with `entries` (already sorted by dim, positive
  // counts), reusing this vector's capacity. The NntSet NPV cache refill —
  // no sort, no allocation in steady state.
  void AssignSortedEntries(const std::vector<NpvEntry>& entries);

  // Value at `dim` (0 when absent). O(log nnz).
  int32_t ValueAt(DimId dim) const;

  // Non-zero entries, ascending by dim.
  const std::vector<NpvEntry>& entries() const { return entries_; }

  // Number of non-zero dimensions.
  int32_t nnz() const { return static_cast<int32_t>(entries_.size()); }

  // Non-zero-dimension signature, maintained alongside the entries.
  NpvSignature signature() const { return signature_; }

  // True when every coordinate of *this is >= the matching coordinate of
  // `other` — i.e. *this dominates `other` in the sense of Lemma 4.2
  // (`other` <= *this). Only `other`'s non-zero entries need inspection;
  // the signature superset test rejects in O(1) first.
  bool Dominates(const Npv& other) const;

  friend bool operator==(const Npv&, const Npv&) = default;

 private:
  std::vector<NpvEntry> entries_;
  NpvSignature signature_ = 0;
};

// Dense dimension-id translation for a vector set (the join query side).
// Build with AddDims over every query vector, then Seal; the dims seen map
// to the dense range [0, num_dims()) in ascending order, so translation
// preserves entry order. Stream-side vectors translated through the same
// remap drop every dimension no query uses — such dimensions can never fail
// a dominance test against a query vector.
//
// Seal is not final: GrowDims registers additional dims after Seal (a newly
// added query may project onto dimensions no earlier query used). Growth
// renumbers the dense ids, so the caller must re-translate every dense
// vector it holds; GrowDims hands back the monotonic old-to-new dense-id
// map that makes the in-place rewrite of already-translated query-side
// entries possible. Stream-side dense vectors cannot be rewritten in place
// (their source dims in the grown range were dropped at translate time) and
// must be re-translated from the originals.
class NpvDimRemap {
 public:
  // Collect phase: registers the non-zero dims of `npv`.
  void AddDims(const Npv& npv);

  // Freezes the dim set; after this, only GrowDims may extend it.
  void Seal();

  bool sealed() const { return sealed_; }

  // Number of distinct dims registered. Valid after Seal.
  int32_t num_dims() const { return static_cast<int32_t>(dims_.size()); }

  // Post-seal growth: registers any of `npv`'s dims not yet mapped. Returns
  // true when the dim set grew; *old_to_new is then resized to the previous
  // num_dims() with old_to_new[old_dense] = new dense id (strictly
  // increasing, so rewriting dims in place keeps entries sorted). When
  // nothing grew, returns false without touching *old_to_new — that path is
  // allocation-free, so re-adding a known query stays zero-alloc.
  bool GrowDims(const Npv& npv, std::vector<DimId>* old_to_new);

  // Rewrites `npv` into *out (cleared first, capacity reused): entries with
  // a registered dim keep their count under the dense id, others are
  // dropped. Returns the signature over the dense ids. Linear merge.
  NpvSignature Translate(const Npv& npv, std::vector<NpvEntry>* out) const;

 private:
  std::vector<DimId> dims_;  // Sorted ascending after Seal.
  bool sealed_ = false;
};

// Alignment contract of the slab arrays (see DESIGN.md "Dominance kernel"):
// both the entry array and the signature array start on a 64-byte boundary
// and carry sentinel tail padding, so a vector lane that starts at the last
// real element reads sentinels, never unowned memory.
inline constexpr std::size_t kNpvSlabAlignment = 64;
// Entry array padded to a multiple of 16 entries with {dim 0, count 0}
// sentinels (a zero count can never fail a dominance compare).
inline constexpr int32_t kNpvSlabEntryPad = 16;
// Signature array padded to a multiple of 8 lanes with all-ones sentinels
// (an all-ones signature is never covered unless the hay covers everything;
// kernel consumers additionally mask out the phantom lanes).
inline constexpr int32_t kNpvSlabSigPad = 8;

using NpvEntryVector =
    std::vector<NpvEntry, AlignedAllocator<NpvEntry, kNpvSlabAlignment>>;
using NpvSignatureVector =
    std::vector<NpvSignature, AlignedAllocator<NpvSignature, kNpvSlabAlignment>>;

// Many sparse vectors stored back-to-back in one contiguous entry array,
// each with its signature at hand: the join strategies' cache-resident
// query-side layout, and the memory the dominance kernel sweeps.
//
// Slots are slotted for churn (same pattern as nnt/node_neighbor_tree's
// arena): Remove frees a slot without moving live vectors — its entry
// region is repadded with {0, 0} sentinels, its signature becomes the
// all-ones sentinel (so the signature fast-reject discards it for every hay
// that is not all-ones; kernel consumers additionally mask with
// live_words), its generation bumps, and the slot joins a free list.
// Append reuses the best-fitting free slot (smallest adequate capacity, in
// place, allocation-free) before growing the tail, so remove + re-add of an
// identical vector set is zero-alloc and zero-growth in steady state. CheckKernelLayout holds
// after every churn op.
class NpvSlab {
 public:
  // Appends a vector (entries sorted ascending by dim) and returns its
  // slot index — the best-fitting free slot when one is wide enough, else
  // a new tail slot. Re-establishes the tail padding, so the slab is
  // kernel-ready after every append.
  int32_t Append(const std::vector<NpvEntry>& entries);

  // Frees slot `i` (must be live): entries become {0, 0} sentinels, the
  // signature becomes all-ones, the generation bumps, and the slot is
  // available for reuse. The slot index stays valid (size() is unchanged);
  // nnz(i) reads 0 until the slot is reused.
  void Remove(int32_t i);

  // Forgets every slot but keeps array capacity — the scratch-slab reset.
  void Clear();

  // Rewrites the dims of every live entry through `old_to_new` (from
  // NpvDimRemap::GrowDims; strictly increasing, so per-slot entry order is
  // preserved) and recomputes the live signatures. Sentinels are untouched.
  void RemapDims(const std::vector<DimId>& old_to_new);

  int32_t size() const { return static_cast<int32_t>(refs_.size()); }
  int32_t num_live() const { return num_live_; }
  bool live(int32_t i) const { return refs_[static_cast<size_t>(i)].live; }
  uint32_t generation(int32_t i) const {
    return refs_[static_cast<size_t>(i)].generation;
  }

  const NpvEntry* begin(int32_t i) const {
    return entries_.data() + refs_[static_cast<size_t>(i)].offset;
  }
  const NpvEntry* end(int32_t i) const {
    const Ref& ref = refs_[static_cast<size_t>(i)];
    return entries_.data() + ref.offset + ref.size;
  }
  int32_t nnz(int32_t i) const { return refs_[static_cast<size_t>(i)].size; }
  NpvSignature signature(int32_t i) const {
    return sigs_[static_cast<size_t>(i)];
  }

  // Raw padded arrays for the dominance kernel's vector sweeps.
  const NpvEntry* entry_data() const { return entries_.data(); }
  int32_t num_entries() const { return num_entries_; }
  int32_t padded_entries() const { return static_cast<int32_t>(entries_.size()); }
  const NpvSignature* sig_data() const { return sigs_.data(); }
  int32_t padded_sigs() const { return static_cast<int32_t>(sigs_.size()); }

  // Liveness bitset (bit i = slot i live), sized to cover padded_sigs()
  // with phantom bits zero: the kernel ANDs its accept/mask words with
  // these so freed slots can never test as dominated.
  const std::vector<uint64_t>& live_words() const { return live_words_; }

  // Validates the alignment/padding/liveness contract above; called by the
  // kernel at bind time in sanitizer builds and by the churn tests after
  // every op.
  void CheckKernelLayout() const;

 private:
  struct Ref {
    int32_t offset = 0;
    int32_t size = 0;      // Entries in use; 0 while freed.
    int32_t capacity = 0;  // Entries reserved; fixed at first allocation.
    uint32_t generation = 0;
    bool live = false;
  };
  // [0, num_entries_) is slot-owned (live entries, in-slot slack, freed
  // regions — all non-live positions hold {0, 0} sentinels), then tail
  // sentinels up to the padded size.
  NpvEntryVector entries_;
  int32_t num_entries_ = 0;
  NpvSignatureVector sigs_;  // [0, size()) real or all-ones, then sentinels.
  std::vector<Ref> refs_;
  std::vector<int32_t> free_slots_;
  std::vector<uint64_t> live_words_;
  int32_t num_live_ = 0;
};

}  // namespace gsps

#endif  // GSPS_NNT_NPV_H_
