// Node Projected Vectors (paper Definition 4.2).
//
// The NPV of a vertex counts, per projection dimension, the tree edges of
// its NNT falling into that dimension. Vectors are stored sparsely as
// entries sorted by dimension id (§IV.A: most dimensions are zero).

#ifndef GSPS_NNT_NPV_H_
#define GSPS_NNT_NPV_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "gsps/nnt/dimension.h"

namespace gsps {

// One non-zero coordinate of an NPV.
struct NpvEntry {
  DimId dim = kInvalidDim;
  int32_t count = 0;

  friend bool operator==(const NpvEntry&, const NpvEntry&) = default;
};

// A sparse, immutable node projected vector.
class Npv {
 public:
  Npv() = default;

  // Builds from a dim -> count map; zero and negative counts are dropped
  // (counts are cardinalities, so negatives would indicate index corruption
  // and are rejected by the NntSet before reaching here). Sorts — off the
  // hot path; the NntSet NPV cache uses AssignSortedEntries instead.
  static Npv FromMap(const std::unordered_map<DimId, int32_t>& counts);

  // Builds from entries that are already sorted by dim with positive counts.
  static Npv FromSortedEntries(std::vector<NpvEntry> entries);

  // Replaces the contents with `entries` (already sorted by dim, positive
  // counts), reusing this vector's capacity. The NntSet NPV cache refill —
  // no sort, no allocation in steady state.
  void AssignSortedEntries(const std::vector<NpvEntry>& entries);

  // Value at `dim` (0 when absent). O(log nnz).
  int32_t ValueAt(DimId dim) const;

  // Non-zero entries, ascending by dim.
  const std::vector<NpvEntry>& entries() const { return entries_; }

  // Number of non-zero dimensions.
  int32_t nnz() const { return static_cast<int32_t>(entries_.size()); }

  // True when every coordinate of *this is >= the matching coordinate of
  // `other` — i.e. *this dominates `other` in the sense of Lemma 4.2
  // (`other` <= *this). Only `other`'s non-zero entries need inspection.
  bool Dominates(const Npv& other) const;

  friend bool operator==(const Npv&, const Npv&) = default;

 private:
  std::vector<NpvEntry> entries_;
};

}  // namespace gsps

#endif  // GSPS_NNT_NPV_H_
