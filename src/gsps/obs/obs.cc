#include "gsps/obs/obs.h"

namespace gsps::obs {

constinit thread_local ObsContext g_obs_context;

}  // namespace gsps::obs
