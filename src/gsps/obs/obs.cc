#include "gsps/obs/obs.h"

#include "gsps/obs/exemplar.h"

namespace gsps::obs {

constinit thread_local ObsContext g_obs_context;

namespace {

// Trace-span labels per stage (string literals; buffers keep pointers).
constexpr const char* kStageSpanNames[kNumStages] = {
    "stage_nnt_maintain",     "stage_dirty_drain", "stage_join_refresh",
    "stage_tracker_observe",  "stage_metrics_merge",
};

}  // namespace

void StageSample(Stage stage, int64_t elapsed_micros, int32_t stream,
                 int32_t query) {
  const Hist hist = StageHist(stage);
  if (MetricSink* sink = CurrentSink(); sink != nullptr) {
    sink->Observe(hist, elapsed_micros);
  }
  const bool armed = FlightRecorderArmed();
  uint64_t span_id = 0;
  if (elapsed_micros >= ExemplarThreshold(hist)) {
    // Tail sample: capture an exemplar and, when tracing, a trace span
    // both carrying the same fresh span id so the metrics output links to
    // the exact slow span in the trace JSON.
    span_id = NextSpanId();
    Exemplar exemplar;
    exemplar.hist = hist;
    exemplar.stage = stage;
    exemplar.stream = stream;
    exemplar.query = query;
    exemplar.value_micros = elapsed_micros;
    exemplar.ts_micros = MonotonicMicros();
    exemplar.span_id = span_id;
    ExemplarStore::Global().Record(exemplar);
    if (TraceBuffer* trace = CurrentTrace(); trace != nullptr) {
      const int64_t end = Tracer::Global().NowMicros();
      trace->Record(kStageSpanNames[static_cast<size_t>(stage)], "stage",
                    end - elapsed_micros, elapsed_micros, span_id);
    }
  }
  if (armed) {
    FlightSpan span;
    span.name = kStageSpanNames[static_cast<size_t>(stage)];
    span.category = "stage";
    span.stage = static_cast<int32_t>(stage);
    span.stream = stream;
    span.query = query;
    span.ts_micros = MonotonicMicros() - elapsed_micros;
    span.dur_micros = elapsed_micros;
    span.span_id = span_id;
    FlightRecorder::Global().RecordSpan(span);
  }
}

}  // namespace gsps::obs
