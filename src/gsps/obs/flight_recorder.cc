#include "gsps/obs/flight_recorder.h"

#include <csignal>
#include <cstring>
#include <mutex>

#include <fcntl.h>
#include <unistd.h>

namespace gsps::obs {

namespace internal {
std::atomic<bool> g_flight_recorder_armed{false};
}  // namespace internal

namespace {

// Ring slot: stamp is 0 when never written, odd while a writer copies,
// 2*ticket+2 when slot holds ticket's span. A dump that observes an odd or
// changed stamp skips the slot as torn.
struct RingSlot {
  std::atomic<uint64_t> stamp{0};
  FlightSpan span;
};

// Seqlock wrapper for a trivially-copyable payload. Writers are serialized
// by the caller; readers (possibly in signal context) retry a few times.
template <typename T>
struct Published {
  std::atomic<uint64_t> seq{0};
  T value{};

  void Write(const T& next) {
    seq.fetch_add(1, std::memory_order_release);  // Odd: write in progress.
    value = next;
    seq.fetch_add(1, std::memory_order_release);  // Even: consistent.
  }

  // Returns true and fills `out` when a consistent copy was obtained.
  bool Read(T* out) const {
    for (int attempt = 0; attempt < 3; ++attempt) {
      const uint64_t before = seq.load(std::memory_order_acquire);
      if (before == 0 || (before & 1) != 0) continue;
      *out = value;
      std::atomic_thread_fence(std::memory_order_acquire);
      if (seq.load(std::memory_order_acquire) == before) return true;
    }
    return false;
  }
};

struct RecorderState {
  std::atomic<uint64_t> cursor{0};
  RingSlot ring[kFlightRingSize];
  Published<WindowSnapshot> window;
  Published<MetricSink> cumulative;
  char path[512] = {0};
  std::atomic<bool> dumping{false};
  std::mutex arm_mutex;
  bool handlers_installed = false;
};

RecorderState& State() {
  static RecorderState* state = new RecorderState();
  return *state;
}

// Append-only formatter over a static buffer: no allocation, no stdio, so
// the dump path stays async-signal-safe.
constexpr size_t kDumpBufferSize = size_t{1} << 18;
char g_dump_buffer[kDumpBufferSize];

struct DumpWriter {
  char* buf;
  size_t cap;
  size_t len = 0;

  void Str(const char* s) {
    while (*s != '\0' && len < cap) buf[len++] = *s++;
  }
  void Int(int64_t v) {
    char tmp[24];
    int n = 0;
    uint64_t mag;
    if (v < 0) {
      Str("-");
      mag = static_cast<uint64_t>(-(v + 1)) + 1;
    } else {
      mag = static_cast<uint64_t>(v);
    }
    do {
      tmp[n++] = static_cast<char>('0' + mag % 10);
      mag /= 10;
    } while (mag != 0);
    while (n > 0 && len < cap) buf[len++] = tmp[--n];
  }
  void U64(uint64_t v) {
    char tmp[24];
    int n = 0;
    do {
      tmp[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0 && len < cap) buf[len++] = tmp[--n];
  }
};

void AppendSinkScalars(DumpWriter& w, const MetricSink& sink) {
  w.Str("\"counters\":{");
  for (int i = 0; i < kNumCounters; ++i) {
    if (i > 0) w.Str(",");
    w.Str("\"");
    w.Str(CounterName(static_cast<Counter>(i)));
    w.Str("\":");
    w.Int(sink.Value(static_cast<Counter>(i)));
  }
  w.Str("},\"gauges\":{");
  for (int i = 0; i < kNumGauges; ++i) {
    if (i > 0) w.Str(",");
    w.Str("\"");
    w.Str(GaugeName(static_cast<Gauge>(i)));
    w.Str("\":");
    w.Int(sink.GaugeValue(static_cast<Gauge>(i)));
  }
  w.Str("}");
}

void InstallHandlersLocked(RecorderState& state);

void DumpSignalHandler(int sig) {
  FlightRecorder::Global().DumpNow(nullptr);
  if (sig != SIGUSR1) {
    // Fatal path: restore the default disposition and die for real so the
    // exit status / core behavior is unchanged by the recorder.
    std::signal(sig, SIG_DFL);
    std::raise(sig);
  }
}

void InstallHandlersLocked(RecorderState& state) {
  if (state.handlers_installed) return;
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &DumpSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  sigaction(SIGUSR1, &action, nullptr);
  action.sa_flags = 0;
  sigaction(SIGSEGV, &action, nullptr);
  sigaction(SIGBUS, &action, nullptr);
  sigaction(SIGABRT, &action, nullptr);  // GSPS_CHECK failures abort().
  state.handlers_installed = true;
}

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Arm(const char* path) {
  RecorderState& state = State();
  std::lock_guard<std::mutex> lock(state.arm_mutex);
  if (path != nullptr && path[0] != '\0') {
    std::strncpy(state.path, path, sizeof(state.path) - 1);
    state.path[sizeof(state.path) - 1] = '\0';
  }
  InstallHandlersLocked(state);
  internal::g_flight_recorder_armed.store(true, std::memory_order_relaxed);
}

void FlightRecorder::Disarm() {
  internal::g_flight_recorder_armed.store(false, std::memory_order_relaxed);
}

void FlightRecorder::RecordSpan(const FlightSpan& span) {
  if (!FlightRecorderArmed()) return;
  RecorderState& state = State();
  const uint64_t ticket =
      state.cursor.fetch_add(1, std::memory_order_relaxed);
  RingSlot& slot = state.ring[ticket % kFlightRingSize];
  slot.stamp.store(ticket * 2 + 1, std::memory_order_release);
  std::atomic_thread_fence(std::memory_order_release);
  slot.span = span;
  slot.stamp.store(ticket * 2 + 2, std::memory_order_release);
}

void FlightRecorder::PublishWindow(const WindowSnapshot& window) {
  State().window.Write(window);
}

void FlightRecorder::PublishCumulative(const MetricSink& cumulative) {
  State().cumulative.Write(cumulative);
}

bool FlightRecorder::DumpNow(const char* path) {
  RecorderState& state = State();
  const char* destination =
      path != nullptr && path[0] != '\0' ? path : state.path;
  if (destination[0] == '\0') return false;
  bool expected = false;
  if (!state.dumping.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
    return false;  // A dump is already in flight (recursive signal).
  }

  DumpWriter w{g_dump_buffer, kDumpBufferSize};
  w.Str("{\"spans\":[");
  // Oldest first: walk the ring from the slot the cursor would claim next.
  const uint64_t cursor = state.cursor.load(std::memory_order_acquire);
  constexpr uint64_t kRing = static_cast<uint64_t>(kFlightRingSize);
  const uint64_t window_len = cursor < kRing ? cursor : kRing;
  int64_t torn_spans = 0;
  bool first_span = true;
  for (uint64_t i = 0; i < window_len; ++i) {
    const uint64_t ticket = cursor - window_len + i;
    const RingSlot& slot = state.ring[ticket % kFlightRingSize];
    const uint64_t stamp_before = slot.stamp.load(std::memory_order_acquire);
    if (stamp_before == 0 || (stamp_before & 1) != 0) {
      ++torn_spans;
      continue;
    }
    FlightSpan span = slot.span;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.stamp.load(std::memory_order_acquire) != stamp_before) {
      ++torn_spans;
      continue;
    }
    if (!first_span) w.Str(",");
    first_span = false;
    w.Str("{\"name\":\"");
    w.Str(span.name != nullptr ? span.name : "");
    w.Str("\",\"cat\":\"");
    w.Str(span.category != nullptr ? span.category : "");
    w.Str("\",\"stage\":");
    w.Int(span.stage);
    w.Str(",\"stream\":");
    w.Int(span.stream);
    w.Str(",\"query\":");
    w.Int(span.query);
    w.Str(",\"ts\":");
    w.Int(span.ts_micros);
    w.Str(",\"dur\":");
    w.Int(span.dur_micros);
    w.Str(",\"span_id\":");
    w.U64(span.span_id);
    w.Str("}");
  }
  w.Str("],\"torn_spans\":");
  w.Int(torn_spans);

  WindowSnapshot window;
  if (state.window.Read(&window)) {
    w.Str(",\"window\":{\"seq\":");
    w.Int(window.seq);
    w.Str(",\"start_micros\":");
    w.Int(window.start_micros);
    w.Str(",\"duration_micros\":");
    w.Int(window.duration_micros);
    w.Str(",");
    AppendSinkScalars(w, window.delta);
    w.Str("}");
  } else {
    w.Str(",\"window\":null");
  }

  MetricSink cumulative;
  if (state.cumulative.Read(&cumulative)) {
    w.Str(",\"cumulative\":{");
    AppendSinkScalars(w, cumulative);
    w.Str("}");
  } else {
    w.Str(",\"cumulative\":null");
  }
  w.Str("}\n");

  bool ok = false;
  const int fd = ::open(destination, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    size_t written = 0;
    ok = true;
    while (written < w.len) {
      const ssize_t n = ::write(fd, w.buf + written, w.len - written);
      if (n <= 0) {
        ok = false;
        break;
      }
      written += static_cast<size_t>(n);
    }
    ::close(fd);
  }
  state.dumping.store(false, std::memory_order_release);
  return ok;
}

void FlightRecorder::Reset() {
  RecorderState& state = State();
  state.cursor.store(0, std::memory_order_relaxed);
  for (RingSlot& slot : state.ring) {
    slot.stamp.store(0, std::memory_order_relaxed);
    slot.span = FlightSpan{};
  }
  state.window.seq.store(0, std::memory_order_relaxed);
  state.window.value = WindowSnapshot{};
  state.cumulative.seq.store(0, std::memory_order_relaxed);
  state.cumulative.value = MetricSink{};
}

}  // namespace gsps::obs
