// Instrumentation entry points: thread-local recording context + macros.
//
// A thread records into whatever ObsContext is installed on it. Installing
// is explicit and scoped (ScopedObsContext): the parallel engine installs a
// shard's sink/trace-buffer around each barrier task, CLI drivers install a
// root sink for the main thread. With no context installed every macro is a
// single null check, so library code is always safe to instrument.
//
//   GSPS_OBS_COUNT(Counter::kNntInsertEdges, 1);
//   GSPS_OBS_GAUGE_SET(Gauge::kPoolQueueDepth, n);
//   GSPS_OBS_OBSERVE(Hist::kUpdateBatchMicros, micros);
//   GSPS_OBS_SPAN("shard_update", "engine");   // RAII, ends at scope exit
//
// Compile with -DGSPS_OBS_DISABLED (CMake option of the same name) and all
// four macros expand to nothing — zero instructions on the hot path — while
// the obs types themselves stay linkable so tools build unchanged. Code
// that does obs-only work outside the macros (timing reads, sink merges)
// should gate on `if constexpr (gsps::obs::kEnabled)`.

#ifndef GSPS_OBS_OBS_H_
#define GSPS_OBS_OBS_H_

#include "gsps/obs/metrics.h"
#include "gsps/obs/trace.h"

namespace gsps::obs {

#if defined(GSPS_OBS_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

// What the current thread records into. Either pointer may be null.
struct ObsContext {
  MetricSink* sink = nullptr;
  TraceBuffer* trace = nullptr;
};

// The installed context. `constinit` guarantees constant initialization,
// which lets the compiler access the extern TLS variable directly instead
// of through an init-guard wrapper call — the counter macros compile down
// to a TLS load, a branch, and an add, cheap enough for the join inner
// loops. Use the accessors; the variable is exposed only so they inline.
extern constinit thread_local ObsContext g_obs_context;

// Accessors for the installed context (null when nothing is installed).
inline MetricSink* CurrentSink() { return g_obs_context.sink; }
inline TraceBuffer* CurrentTrace() { return g_obs_context.trace; }

// Installs a context for the current scope and restores the previous one on
// destruction. Nesting works: an inner scope shadows the outer.
class ScopedObsContext {
 public:
  ScopedObsContext(MetricSink* sink, TraceBuffer* trace)
      : saved_(g_obs_context) {
    g_obs_context.sink = sink;
    g_obs_context.trace = trace;
  }
  ~ScopedObsContext() { g_obs_context = saved_; }

  ScopedObsContext(const ScopedObsContext&) = delete;
  ScopedObsContext& operator=(const ScopedObsContext&) = delete;

 private:
  ObsContext saved_;
};

// Emits one complete trace_event span covering its own lifetime. Inert when
// the current thread has no trace buffer. `name` and `category` must be
// string literals.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* category)
      : buffer_(CurrentTrace()), name_(name), category_(category) {
    if (buffer_ != nullptr) start_ = Tracer::Global().NowMicros();
  }
  ~ScopedSpan() {
    if (buffer_ != nullptr) {
      const int64_t end = Tracer::Global().NowMicros();
      buffer_->Record(name_, category_, start_, end - start_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceBuffer* buffer_;
  const char* name_;
  const char* category_;
  int64_t start_ = 0;
};

}  // namespace gsps::obs

#if defined(GSPS_OBS_DISABLED)

#define GSPS_OBS_COUNT(counter, n) \
  do {                             \
  } while (false)
#define GSPS_OBS_GAUGE_SET(gauge, value) \
  do {                                   \
  } while (false)
#define GSPS_OBS_OBSERVE(hist, value) \
  do {                                \
  } while (false)
#define GSPS_OBS_SPAN(name, category) \
  do {                                \
  } while (false)

#else  // !GSPS_OBS_DISABLED

#define GSPS_OBS_COUNT(counter, n)                                        \
  do {                                                                    \
    if (::gsps::obs::MetricSink* gsps_obs_sink = ::gsps::obs::CurrentSink(); \
        gsps_obs_sink != nullptr) {                                       \
      gsps_obs_sink->Add(::gsps::obs::counter, (n));                      \
    }                                                                     \
  } while (false)

#define GSPS_OBS_GAUGE_SET(gauge, value)                                  \
  do {                                                                    \
    if (::gsps::obs::MetricSink* gsps_obs_sink = ::gsps::obs::CurrentSink(); \
        gsps_obs_sink != nullptr) {                                       \
      gsps_obs_sink->Set(::gsps::obs::gauge, (value));                    \
    }                                                                     \
  } while (false)

#define GSPS_OBS_OBSERVE(hist, value)                                     \
  do {                                                                    \
    if (::gsps::obs::MetricSink* gsps_obs_sink = ::gsps::obs::CurrentSink(); \
        gsps_obs_sink != nullptr) {                                       \
      gsps_obs_sink->Observe(::gsps::obs::hist, (value));                 \
    }                                                                     \
  } while (false)

#define GSPS_OBS_CONCAT_INNER(a, b) a##b
#define GSPS_OBS_CONCAT(a, b) GSPS_OBS_CONCAT_INNER(a, b)
#define GSPS_OBS_SPAN(name, category)                     \
  ::gsps::obs::ScopedSpan GSPS_OBS_CONCAT(gsps_obs_span_, \
                                          __LINE__)((name), (category))

#endif  // GSPS_OBS_DISABLED

#endif  // GSPS_OBS_OBS_H_
