// Instrumentation entry points: thread-local recording context + macros.
//
// A thread records into whatever ObsContext is installed on it. Installing
// is explicit and scoped (ScopedObsContext): the parallel engine installs a
// shard's sink/trace-buffer around each barrier task, CLI drivers install a
// root sink for the main thread. With no context installed every macro is a
// single null check, so library code is always safe to instrument.
//
//   GSPS_OBS_COUNT(Counter::kNntInsertEdges, 1);
//   GSPS_OBS_GAUGE_SET(Gauge::kPoolQueueDepth, n);
//   GSPS_OBS_OBSERVE(Hist::kUpdateBatchMicros, micros);
//   GSPS_OBS_SPAN("shard_update", "monitor");  // RAII, ends at scope exit
//   GSPS_OBS_STAGE(Stage::kNntMaintain, stream);  // Stage timer for scope
//
// Compile with -DGSPS_OBS_DISABLED (CMake option of the same name) and all
// macros expand to nothing — zero instructions on the hot path — while
// the obs types themselves stay linkable so tools build unchanged. Code
// that does obs-only work outside the macros (timing reads, sink merges)
// should gate on `if constexpr (gsps::obs::kEnabled)` (defined in
// metrics.h).

#ifndef GSPS_OBS_OBS_H_
#define GSPS_OBS_OBS_H_

#include "gsps/obs/flight_recorder.h"
#include "gsps/obs/metrics.h"
#include "gsps/obs/trace.h"

namespace gsps::obs {

// What the current thread records into. Either pointer may be null.
struct ObsContext {
  MetricSink* sink = nullptr;
  TraceBuffer* trace = nullptr;
};

// The installed context. `constinit` guarantees constant initialization,
// which lets the compiler access the extern TLS variable directly instead
// of through an init-guard wrapper call — the counter macros compile down
// to a TLS load, a branch, and an add, cheap enough for the join inner
// loops. Use the accessors; the variable is exposed only so they inline.
extern constinit thread_local ObsContext g_obs_context;

// Accessors for the installed context (null when nothing is installed).
inline MetricSink* CurrentSink() { return g_obs_context.sink; }
inline TraceBuffer* CurrentTrace() { return g_obs_context.trace; }

// Installs a context for the current scope and restores the previous one on
// destruction. Nesting works: an inner scope shadows the outer.
class ScopedObsContext {
 public:
  ScopedObsContext(MetricSink* sink, TraceBuffer* trace)
      : saved_(g_obs_context) {
    g_obs_context.sink = sink;
    g_obs_context.trace = trace;
  }
  ~ScopedObsContext() { g_obs_context = saved_; }

  ScopedObsContext(const ScopedObsContext&) = delete;
  ScopedObsContext& operator=(const ScopedObsContext&) = delete;

 private:
  ObsContext saved_;
};

// Emits one complete trace_event span covering its own lifetime. Inert when
// the current thread has no trace buffer, unless the flight recorder is
// armed — then the span is recorded into its ring instead (so a monitor
// run without --trace still leaves a pre-crash span history). `name` and
// `category` must be string literals.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* category)
      : buffer_(CurrentTrace()), name_(name), category_(category) {
    if (buffer_ != nullptr) {
      start_ = Tracer::Global().NowMicros();
    } else if (FlightRecorderArmed()) {
      flight_only_ = true;
      start_ = MonotonicMicros();
    }
  }
  ~ScopedSpan() {
    if (buffer_ != nullptr) {
      const int64_t end = Tracer::Global().NowMicros();
      buffer_->Record(name_, category_, start_, end - start_);
    } else if (flight_only_ && FlightRecorderArmed()) {
      FlightSpan span;
      span.name = name_;
      span.category = category_;
      span.ts_micros = start_;
      span.dur_micros = MonotonicMicros() - start_;
      FlightRecorder::Global().RecordSpan(span);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceBuffer* buffer_;
  const char* name_;
  const char* category_;
  int64_t start_ = 0;
  bool flight_only_ = false;
};

// Records one per-stage sample: observes StageHist(stage) on the current
// sink, captures an exemplar (+ exemplar-linked trace span) when the value
// crosses the stage histogram's tail threshold, and appends a span to the
// flight recorder when armed. Out-of-line so the fast path of StageTimer
// stays a clock read and a call.
void StageSample(Stage stage, int64_t elapsed_micros, int32_t stream = -1,
                 int32_t query = -1);

// Decimation gate for the per-refresh join stage timer. One verdict refresh
// runs well under a microsecond, so timing every refresh spends two clock
// reads against ~100ns of measured work — over 10% on the skyline fast
// path, against a <=3% total overhead budget. Sampling 1 refresh in 8
// amortizes the clock reads to about 1% while the histogram quantiles and
// the attribution split stay representative (the sample is unbiased: the
// gate ticks on refresh count, not on refresh cost). The gate fires on a
// thread's *first* eligible refresh so short test workloads still populate
// the stage histogram. Batch-level stages (NNT maintain, dirty drain,
// tracker observe, metrics merge) stay unsampled — they run once per batch,
// where two clock reads are noise.
inline constexpr uint32_t kJoinRefreshSampleEvery = 8;
inline bool JoinRefreshSampleTick() {
  thread_local uint32_t tick = 0;
  return (tick++ % kJoinRefreshSampleEvery) == 0;
}

// Scoped wall-clock timer for one pipeline stage. Skips the clock entirely
// when the thread has neither a sink nor an armed flight recorder, so an
// uninstrumented caller pays two branches. Use through GSPS_OBS_STAGE so
// GSPS_OBS_DISABLED builds compile it out.
class StageTimer {
 public:
  explicit StageTimer(Stage stage, int32_t stream = -1, int32_t query = -1)
      : stage_(stage), stream_(stream), query_(query) {
    if (CurrentSink() != nullptr || FlightRecorderArmed()) {
      start_ = MonotonicMicros();
    }
  }
  ~StageTimer() {
    if (start_ >= 0) {
      StageSample(stage_, MonotonicMicros() - start_, stream_, query_);
    }
  }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  Stage stage_;
  int32_t stream_;
  int32_t query_;
  int64_t start_ = -1;
};

}  // namespace gsps::obs

#if defined(GSPS_OBS_DISABLED)

#define GSPS_OBS_COUNT(counter, n) \
  do {                             \
  } while (false)
#define GSPS_OBS_GAUGE_SET(gauge, value) \
  do {                                   \
  } while (false)
#define GSPS_OBS_OBSERVE(hist, value) \
  do {                                \
  } while (false)
#define GSPS_OBS_SPAN(name, category) \
  do {                                \
  } while (false)
#define GSPS_OBS_STAGE(stage, ...) \
  do {                             \
  } while (false)

#else  // !GSPS_OBS_DISABLED

#define GSPS_OBS_COUNT(counter, n)                                        \
  do {                                                                    \
    if (::gsps::obs::MetricSink* gsps_obs_sink = ::gsps::obs::CurrentSink(); \
        gsps_obs_sink != nullptr) {                                       \
      gsps_obs_sink->Add(::gsps::obs::counter, (n));                      \
    }                                                                     \
  } while (false)

#define GSPS_OBS_GAUGE_SET(gauge, value)                                  \
  do {                                                                    \
    if (::gsps::obs::MetricSink* gsps_obs_sink = ::gsps::obs::CurrentSink(); \
        gsps_obs_sink != nullptr) {                                       \
      gsps_obs_sink->Set(::gsps::obs::gauge, (value));                    \
    }                                                                     \
  } while (false)

#define GSPS_OBS_OBSERVE(hist, value)                                     \
  do {                                                                    \
    if (::gsps::obs::MetricSink* gsps_obs_sink = ::gsps::obs::CurrentSink(); \
        gsps_obs_sink != nullptr) {                                       \
      gsps_obs_sink->Observe(::gsps::obs::hist, (value));                 \
    }                                                                     \
  } while (false)

#define GSPS_OBS_CONCAT_INNER(a, b) a##b
#define GSPS_OBS_CONCAT(a, b) GSPS_OBS_CONCAT_INNER(a, b)
#define GSPS_OBS_SPAN(name, category)                     \
  ::gsps::obs::ScopedSpan GSPS_OBS_CONCAT(gsps_obs_span_, \
                                          __LINE__)((name), (category))

// Times the rest of the enclosing scope as one pipeline stage:
//   GSPS_OBS_STAGE(Stage::kDirtyDrain, stream_index);
// Optional trailing arguments are the stream and query ids attached to
// exemplars/flight spans the sample may produce.
#define GSPS_OBS_STAGE(stage, ...)                          \
  ::gsps::obs::StageTimer GSPS_OBS_CONCAT(gsps_obs_stage_,  \
                                          __LINE__)(        \
      ::gsps::obs::stage __VA_OPT__(, ) __VA_ARGS__)

#endif  // GSPS_OBS_DISABLED

#endif  // GSPS_OBS_OBS_H_
