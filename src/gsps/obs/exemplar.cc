#include "gsps/obs/exemplar.h"

#include <algorithm>
#include <atomic>
#include <mutex>

namespace gsps::obs {

namespace {

// Everything here is constant-initialized, never heap-allocated: the
// threshold check sits on the StageSample hot path inside the benches'
// steady-state loops, whose AllocMeter gate counts every operator new — a
// lazily `new`ed singleton would charge its one allocation to whichever
// strategy happens to take the first sample. Thresholds are stored as
// deltas from the default so plain zero-initialization means "default".
constinit std::atomic<int64_t> g_threshold_delta[kNumHists] = {};

struct StoreState {
  std::mutex mutex;
  Exemplar ring[kExemplarRingSize];
  int num_recorded = 0;
};

constinit StoreState g_store;

}  // namespace

int64_t ExemplarThreshold(Hist hist) {
  return kDefaultExemplarThresholdMicros +
         g_threshold_delta[static_cast<size_t>(hist)].load(
             std::memory_order_relaxed);
}

void SetExemplarThreshold(Hist hist, int64_t micros) {
  g_threshold_delta[static_cast<size_t>(hist)].store(
      micros - kDefaultExemplarThresholdMicros, std::memory_order_relaxed);
}

ExemplarStore& ExemplarStore::Global() {
  static constinit ExemplarStore store;
  return store;
}

void ExemplarStore::Record(const Exemplar& exemplar) {
  StoreState& state = g_store;
  std::lock_guard<std::mutex> lock(state.mutex);
  state.ring[state.num_recorded % kExemplarRingSize] = exemplar;
  ++state.num_recorded;
}

void ExemplarStore::Snapshot(std::vector<Exemplar>* out) const {
  StoreState& state = g_store;
  std::lock_guard<std::mutex> lock(state.mutex);
  out->clear();
  const int retained = std::min(state.num_recorded, kExemplarRingSize);
  for (int i = retained; i > 0; --i) {
    out->push_back(state.ring[(state.num_recorded - i) % kExemplarRingSize]);
  }
}

void ExemplarStore::Reset() {
  StoreState& state = g_store;
  std::lock_guard<std::mutex> lock(state.mutex);
  state.num_recorded = 0;
  for (Exemplar& slot : state.ring) slot = Exemplar{};
  for (int i = 0; i < kNumHists; ++i) {
    SetExemplarThreshold(static_cast<Hist>(i), kDefaultExemplarThresholdMicros);
  }
}

}  // namespace gsps::obs
