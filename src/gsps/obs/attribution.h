// Per-query latency/work attribution, resilient to query-slot churn.
//
// The join strategies already count dominance probes and refresh time in
// aggregate; this module splits those totals by query slot so the metrics
// output can name the heavy hitters. Two halves:
//
//   * QueryAttribution is a single-writer accumulator owned by one
//     strategy instance (one per shard). The strategies bump plain member
//     integers on the hot path (AddProbes / AddRefresh — an add, no lock,
//     no atomics) and tell it about slot lifecycle (OnAddQuery /
//     OnRemoveQuery, with a per-query weight such as its vector count).
//     Flush() — called at barrier cadence — distributes the pending totals
//     over the live slots proportionally to weight and merges the rows
//     into the global registry under one lock. Probes cannot be attributed
//     exactly per query inside the batched SIMD kernel, so the weighted
//     split is an approximation; DESIGN.md "Observability v2" discusses
//     the error model.
//
//   * AttributionRegistry is the process-wide table, keyed by slot with a
//     generation stamp. PR 7 reuses retired slots, so a slot id alone is
//     ambiguous across churn; OnAddQuery bumps the slot's generation and
//     the registry replaces (rather than sums) rows whose generation is
//     newer — a reused slot starts attribution from zero, and stale rows
//     from a shard that has not flushed since the churn are dropped.
//     Shards churn in lock-step (same slots, same order), so generations
//     agree across shards and same-generation rows sum.
//
// Everything here compiles to near-nothing under GSPS_OBS_DISABLED: the
// hot-path methods are empty and Flush never publishes.

#ifndef GSPS_OBS_ATTRIBUTION_H_
#define GSPS_OBS_ATTRIBUTION_H_

#include <cstdint>
#include <vector>

#include "gsps/obs/metrics.h"

namespace gsps::obs {

struct AttributionRow {
  int32_t slot = -1;
  int32_t generation = 0;
  int64_t dominance_probes = 0;  // Signature rejects + full dominance tests.
  int64_t refresh_micros = 0;    // Verdict-recompute time attributed here.
  int64_t refreshes = 0;         // Recompute passes the slot was live for.
};

class AttributionRegistry {
 public:
  static AttributionRegistry& Global();

  // Merges rows by slot: a newer generation replaces the stored row, the
  // same generation accumulates, an older generation is dropped.
  void MergeBatch(const AttributionRow* rows, size_t n);

  // Up to k rows with the largest dominance_probes, descending (ties by
  // ascending slot). Rows with zero probes and zero refreshes are skipped.
  void TopK(int k, std::vector<AttributionRow>* out) const;

  void Reset();
};

// Single-writer per-strategy accumulator. Not thread-safe; each strategy
// instance owns one and only its shard's worker touches it.
class QueryAttribution {
 public:
  // Drops all slot state and sizes for `num_slots` (SetQueries).
  void Reset(int num_slots);

  // Slot lifecycle. OnAddQuery (re)activates `slot` with a fresh
  // generation and weight max(weight, 1); OnRemoveQuery deactivates it.
  void OnAddQuery(int slot, int64_t weight);
  void OnRemoveQuery(int slot);

  // Hot path: accumulate work since the last Flush.
  void AddProbes(int64_t probes) {
    if constexpr (kEnabled) pending_probes_ += probes;
  }
  void AddRefresh(int64_t micros) {
    if constexpr (kEnabled) {
      pending_refresh_micros_ += micros;
      ++pending_refreshes_;
    }
  }

  // Distributes the pending totals over live slots proportionally to
  // weight (remainders land on the last live slot so totals conserve) and
  // merges into AttributionRegistry::Global(). Allocation-free once slot
  // capacity is established.
  void Flush();

 private:
  struct Slot {
    int32_t generation = 0;
    int64_t weight = 0;
    bool live = false;
  };

  void EnsureSlot(int slot);

  std::vector<Slot> slots_;
  std::vector<AttributionRow> scratch_;
  int64_t total_weight_ = 0;
  int64_t pending_probes_ = 0;
  int64_t pending_refresh_micros_ = 0;
  int64_t pending_refreshes_ = 0;
};

}  // namespace gsps::obs

#endif  // GSPS_OBS_ATTRIBUTION_H_
