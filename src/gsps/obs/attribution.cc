#include "gsps/obs/attribution.h"

#include <algorithm>
#include <mutex>

namespace gsps::obs {

namespace {

struct RegistryTable {
  std::mutex mutex;
  std::vector<AttributionRow> rows;  // Indexed by slot.
};

RegistryTable& Table() {
  static RegistryTable* table = new RegistryTable();
  return *table;
}

}  // namespace

AttributionRegistry& AttributionRegistry::Global() {
  static AttributionRegistry* registry = new AttributionRegistry();
  return *registry;
}

void AttributionRegistry::MergeBatch(const AttributionRow* rows, size_t n) {
  RegistryTable& table = Table();
  std::lock_guard<std::mutex> lock(table.mutex);
  for (size_t i = 0; i < n; ++i) {
    const AttributionRow& row = rows[i];
    if (row.slot < 0) continue;
    if (static_cast<size_t>(row.slot) >= table.rows.size()) {
      table.rows.resize(static_cast<size_t>(row.slot) + 1);
    }
    AttributionRow& stored = table.rows[static_cast<size_t>(row.slot)];
    if (row.generation > stored.generation) {
      stored = row;
      stored.slot = row.slot;
    } else if (row.generation == stored.generation) {
      stored.slot = row.slot;
      stored.generation = row.generation;
      stored.dominance_probes += row.dominance_probes;
      stored.refresh_micros += row.refresh_micros;
      stored.refreshes += row.refreshes;
    }
    // Older generation: a straggler flush from before a slot reuse — drop.
  }
}

void AttributionRegistry::TopK(int k, std::vector<AttributionRow>* out) const {
  out->clear();
  if (k <= 0) return;
  RegistryTable& table = Table();
  std::lock_guard<std::mutex> lock(table.mutex);
  for (const AttributionRow& row : table.rows) {
    if (row.slot < 0) continue;
    if (row.dominance_probes == 0 && row.refreshes == 0) continue;
    out->push_back(row);
  }
  std::sort(out->begin(), out->end(),
            [](const AttributionRow& a, const AttributionRow& b) {
              if (a.dominance_probes != b.dominance_probes) {
                return a.dominance_probes > b.dominance_probes;
              }
              return a.slot < b.slot;
            });
  if (static_cast<int>(out->size()) > k) out->resize(static_cast<size_t>(k));
}

void AttributionRegistry::Reset() {
  RegistryTable& table = Table();
  std::lock_guard<std::mutex> lock(table.mutex);
  table.rows.clear();
}

void QueryAttribution::Reset(int num_slots) {
  if constexpr (!kEnabled) return;
  slots_.assign(static_cast<size_t>(std::max(num_slots, 0)), Slot{});
  scratch_.clear();
  scratch_.reserve(slots_.size());
  total_weight_ = 0;
  pending_probes_ = 0;
  pending_refresh_micros_ = 0;
  pending_refreshes_ = 0;
}

void QueryAttribution::EnsureSlot(int slot) {
  if (static_cast<size_t>(slot) >= slots_.size()) {
    slots_.resize(static_cast<size_t>(slot) + 1);
    scratch_.reserve(slots_.size());
  }
}

void QueryAttribution::OnAddQuery(int slot, int64_t weight) {
  if constexpr (!kEnabled) return;
  if (slot < 0) return;
  EnsureSlot(slot);
  Slot& s = slots_[static_cast<size_t>(slot)];
  if (s.live) total_weight_ -= s.weight;
  ++s.generation;  // Slot reuse starts a fresh attribution epoch.
  s.weight = std::max<int64_t>(weight, 1);
  s.live = true;
  total_weight_ += s.weight;
}

void QueryAttribution::OnRemoveQuery(int slot) {
  if constexpr (!kEnabled) return;
  if (slot < 0 || static_cast<size_t>(slot) >= slots_.size()) return;
  Slot& s = slots_[static_cast<size_t>(slot)];
  if (!s.live) return;
  total_weight_ -= s.weight;
  s.live = false;
}

void QueryAttribution::Flush() {
  if constexpr (!kEnabled) return;
  if (pending_probes_ == 0 && pending_refreshes_ == 0) return;
  scratch_.clear();
  if (total_weight_ > 0) {
    int64_t probes_left = pending_probes_;
    int64_t micros_left = pending_refresh_micros_;
    size_t last_live = 0;
    for (size_t slot = 0; slot < slots_.size(); ++slot) {
      const Slot& s = slots_[slot];
      if (!s.live) continue;
      AttributionRow row;
      row.slot = static_cast<int32_t>(slot);
      row.generation = s.generation;
      row.dominance_probes = pending_probes_ * s.weight / total_weight_;
      row.refresh_micros = pending_refresh_micros_ * s.weight / total_weight_;
      row.refreshes = pending_refreshes_;
      probes_left -= row.dominance_probes;
      micros_left -= row.refresh_micros;
      scratch_.push_back(row);
      last_live = scratch_.size() - 1;
    }
    if (!scratch_.empty()) {
      // Integer-division remainders land on the last live slot so the
      // per-query rows sum exactly to the strategy totals.
      scratch_[last_live].dominance_probes += probes_left;
      scratch_[last_live].refresh_micros += micros_left;
    }
    AttributionRegistry::Global().MergeBatch(scratch_.data(), scratch_.size());
  }
  pending_probes_ = 0;
  pending_refresh_micros_ = 0;
  pending_refreshes_ = 0;
}

}  // namespace gsps::obs
