// Flight recorder: a bounded lock-free ring of recent spans plus the last
// published telemetry window and cumulative aggregate, dumped to a file
// when the process dies (fatal signal, GSPS_CHECK abort) or on demand
// (SIGUSR1, or DumpNow from normal code).
//
// Recording (RecordSpan) is wait-free for writers: a relaxed fetch_add
// claims a ring ticket, and a per-slot stamp goes odd -> copy -> even so a
// dump that interrupts a writer mid-copy detects and skips the torn slot.
// The last closed window (WindowedTelemetry::Advance) and the cumulative
// registry aggregate (MetricsRegistry::MergeAndReset) are published
// through seqlocks whose writers are serialized by the window/registry
// mutexes respectively; the dump reader retries a bounded number of times
// and marks the section torn if a writer was in flight.
//
// The dump itself is built with plain open/write and manual integer
// formatting — no allocation, no stdio, no locks — so it is safe from a
// SIGSEGV handler. Fatal handlers (SIGSEGV/SIGBUS/SIGABRT — the latter is
// what GSPS_CHECK's abort raises) dump, restore the default disposition,
// and re-raise; SIGUSR1 dumps and returns so a replay can be probed while
// it runs.
//
// Arm/Disarm flip one process-wide atomic. While disarmed (the default),
// the only cost anywhere is a relaxed load on paths that would record.
// The recorder works in GSPS_OBS_DISABLED builds too — the instrumentation
// that would feed it is compiled out, but Arm/DumpNow still produce a
// valid (if span-empty) dump, keeping tool behavior uniform.

#ifndef GSPS_OBS_FLIGHT_RECORDER_H_
#define GSPS_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>

#include "gsps/obs/metrics.h"
#include "gsps/obs/window.h"

namespace gsps::obs {

// One recorded span. name/category must be string literals (the dump
// handler dereferences them from signal context).
struct FlightSpan {
  const char* name = nullptr;
  const char* category = nullptr;
  int32_t stage = -1;   // Stage index, or -1 for non-stage spans.
  int32_t stream = -1;
  int32_t query = -1;
  int64_t ts_micros = 0;   // MonotonicMicros() at span start.
  int64_t dur_micros = 0;
  uint64_t span_id = 0;
};

inline constexpr int kFlightRingSize = 1024;

namespace internal {
extern std::atomic<bool> g_flight_recorder_armed;
}  // namespace internal

// Hot-path guard: one relaxed load.
inline bool FlightRecorderArmed() {
  return internal::g_flight_recorder_armed.load(std::memory_order_relaxed);
}

class FlightRecorder {
 public:
  static FlightRecorder& Global();

  // Installs the signal handlers (SIGUSR1 + fatal), remembers `path` as
  // the default dump destination, and arms recording. Idempotent; the
  // handlers are installed once per process.
  void Arm(const char* path);

  // Disarms recording (handlers stay installed but dump nothing while
  // disarmed). Test isolation.
  void Disarm();

  // Appends a span to the ring (wait-free; oldest entries overwritten).
  // No-op while disarmed.
  void RecordSpan(const FlightSpan& span);

  // Seqlock-publishes the last closed window / the cumulative aggregate.
  // Callers serialize writers (window mutex / registry mutex).
  void PublishWindow(const WindowSnapshot& window);
  void PublishCumulative(const MetricSink& cumulative);

  // Writes the dump to `path` (or the armed path when null). Safe from
  // signal context. Returns false when no path is available or the file
  // cannot be written.
  bool DumpNow(const char* path = nullptr);

  // Clears the ring and the published sections (test isolation; does not
  // change armed state).
  void Reset();
};

}  // namespace gsps::obs

#endif  // GSPS_OBS_FLIGHT_RECORDER_H_
