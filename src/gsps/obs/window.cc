#include "gsps/obs/window.h"

#include <algorithm>
#include <mutex>

#include "gsps/obs/flight_recorder.h"
#include "gsps/obs/trace.h"

namespace gsps::obs {

namespace {

struct WindowState {
  std::mutex mutex;
  MetricSink open;
  int64_t open_start_micros = 0;
  bool open_started = false;
  int64_t next_seq = 1;
  // Ring of closed windows, oldest at (next_slot) once wrapped.
  WindowSnapshot ring[kWindowRingSize];
  int num_closed = 0;  // Total closed; min(num_closed, ring size) retained.
};

WindowState& State() {
  static WindowState* state = new WindowState();
  return *state;
}

}  // namespace

WindowedTelemetry& WindowedTelemetry::Global() {
  static WindowedTelemetry* telemetry = new WindowedTelemetry();
  return *telemetry;
}

void WindowedTelemetry::Fold(const MetricSink& sink) {
  WindowState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (!state.open_started) {
    state.open_start_micros = MonotonicMicros();
    state.open_started = true;
  }
  state.open.MergeFrom(sink);
}

WindowSnapshot WindowedTelemetry::Advance() {
  WindowState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  const int64_t now = MonotonicMicros();
  WindowSnapshot closed;
  closed.delta = state.open;
  closed.seq = state.next_seq++;
  closed.start_micros = state.open_started ? state.open_start_micros : now;
  closed.duration_micros = std::max<int64_t>(0, now - closed.start_micros);
  state.ring[state.num_closed % kWindowRingSize] = closed;
  ++state.num_closed;
  state.open.Reset();
  state.open_start_micros = now;
  state.open_started = true;
  if (FlightRecorderArmed()) {
    FlightRecorder::Global().PublishWindow(closed);
  }
  return closed;
}

WindowSnapshot WindowedTelemetry::Latest() const {
  WindowState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (state.num_closed == 0) return WindowSnapshot{};
  return state.ring[(state.num_closed - 1) % kWindowRingSize];
}

void WindowedTelemetry::Recent(std::vector<WindowSnapshot>* out) const {
  WindowState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  out->clear();
  const int retained = std::min(state.num_closed, kWindowRingSize);
  for (int i = retained; i > 0; --i) {
    out->push_back(state.ring[(state.num_closed - i) % kWindowRingSize]);
  }
}

MetricSink WindowedTelemetry::OpenDelta() const {
  WindowState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.open;
}

void WindowedTelemetry::Reset() {
  WindowState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.open.Reset();
  state.open_started = false;
  state.open_start_micros = 0;
  state.next_seq = 1;
  state.num_closed = 0;
  for (WindowSnapshot& slot : state.ring) slot = WindowSnapshot{};
}

double RatePerSec(const WindowSnapshot& window, Counter counter) {
  if (window.duration_micros <= 0) return 0.0;
  return static_cast<double>(window.delta.Value(counter)) * 1e6 /
         static_cast<double>(window.duration_micros);
}

double HistogramQuantile(const HistogramData& data, double q) {
  if (data.count <= 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(data.count);
  int64_t cumulative = 0;
  for (size_t b = 0; b < data.buckets.size(); ++b) {
    const int64_t in_bucket = data.buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) < target) {
      cumulative += in_bucket;
      continue;
    }
    if (b >= kHistBucketBounds.size()) {
      // +Inf overflow: no finite upper edge to interpolate toward.
      return static_cast<double>(kHistBucketBounds.back());
    }
    const double lower =
        b == 0 ? 0.0 : static_cast<double>(kHistBucketBounds[b - 1]);
    const double upper = static_cast<double>(kHistBucketBounds[b]);
    const double into =
        (target - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
    return lower + (upper - lower) * std::min(1.0, std::max(0.0, into));
  }
  return static_cast<double>(kHistBucketBounds.back());
}

}  // namespace gsps::obs
