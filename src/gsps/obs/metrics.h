// Low-overhead counters, gauges, and fixed-bucket latency histograms.
//
// The design splits recording from aggregation so the hot path never takes
// a lock or touches shared memory:
//
//   * MetricSink is a plain value type (arrays of int64) that exactly one
//     thread writes at a time. The engine keeps one sink per shard; the CLI
//     tools keep one for the driver thread. Recording is an array add.
//   * MetricsRegistry is the process-wide aggregate. Owners push their
//     sinks into it with MergeAndReset at parallel-engine barriers (or at
//     flush time for single-threaded drivers) — a mutex acquisition per
//     barrier, never per operation.
//   * Snapshot() copies the aggregate for serialization: Prometheus text
//     exposition format (ToPrometheusText) or JSON (ToMetricsJson).
//
// Metric identity is a compile-time enum, so recording needs no name lookup
// and a sink is a fixed-size struct. Adding a metric means extending the
// enum and its name table here; every serializer and merge picks it up.
//
// The instrumentation macros that feed sinks live in gsps/obs/obs.h; the
// GSPS_OBS_DISABLED compile-time switch reduces those macros to no-ops but
// keeps these types functional, so tooling builds in both modes.

#ifndef GSPS_OBS_METRICS_H_
#define GSPS_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <string>

namespace gsps::obs {

// Compile-time master switch. The macros in obs.h expand to nothing when
// this is false; non-macro instrumentation work gates on
// `if constexpr (gsps::obs::kEnabled)`. Lives here (not obs.h) so the
// window/exemplar/attribution modules can use it without pulling in the
// macro header.
#if defined(GSPS_OBS_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

// Monotonic event counts. Serialized with a "_total" suffix per Prometheus
// counter convention.
enum class Counter : int {
  // NNT incremental maintenance (nnt/nnt_set.cc).
  kNntInsertEdges = 0,     // InsertEdge calls applied.
  kNntDeleteEdges,         // DeleteEdge calls applied.
  kNntPathsTouched,        // Appearance-list entries visited by insert/delete.
  kNntTreeNodesCreated,    // Tree nodes allocated (AddTreeChild).
  kNntTreeNodesFreed,      // Tree nodes freed (FreeTreeNode).
  kNntRootsDirtied,        // Roots whose NPV went clean -> dirty.
  kNntTreeSlotsReused,     // AddChild served from the free-slot list.
  kNntNpvCacheRebuilds,    // NpvOf materializations of an invalidated root;
                           // every other NpvOf call is a cache hit.
  // Join strategies (join/).
  kJoinDominanceTests,     // Pairwise Npv::Dominates evaluations (NL, Skyline).
  kJoinSkylineEarlyStops,  // Pairs pruned at the first uncovered skyline point.
  kJoinSetCoverRounds,     // DSC AdjustRange maintenance rounds.
  kJoinSetCoverFlips,      // DSC domination-status flips (SetDominates).
  kJoinPairsIn,            // (stream, query) pairs evaluated.
  kJoinPairsOut,           // Pairs surviving as candidates.
  kJoinVerdictsReused,     // CandidatesForStream calls answered entirely from
                           // the cached per-stream verdicts (no delta since
                           // the last refresh).
  kJoinSignatureRejects,   // Dominance pairs rejected by the 64-bit non-zero
                           // dimension signature before any entry merge.
  kRemapRegrowths,         // NpvDimRemap post-seal growths: a dynamically
                           // added query introduced dims no earlier query
                           // used, forcing a re-translate of the slab.
  // Dominance kernel dispatch (join/dominance_kernel.cc). One batch = one
  // hay NPV tested against a whole bound slab; the split by ISA makes the
  // runtime dispatch decision observable.
  kDominanceBatchesScalar,
  kDominanceBatchesAvx2,
  kDominanceBatchesAvx512,
  // Candidate transition tracking (engine/candidate_tracker.cc).
  kTrackerObservations,
  kTrackerAppeared,
  kTrackerDisappeared,
  // Worker pool and sharded engine (common/thread_pool.cc, engine/).
  kPoolBarriers,            // ParallelFor invocations.
  kPoolTasks,               // Indices dispatched across all barriers.
  kEngineUpdateBarriers,    // ApplyChanges barriers.
  kEngineJoinBarriers,      // AllCandidatePairs barriers.
  kShardBusyMicros,         // Summed per-shard busy time inside barriers.
  kShardBarrierWaitMicros,  // Summed per-shard idle time at barriers.
  // Ingest pipeline (engine/ingest_queue.h, reported by the driver owning
  // the queue — see tools/gsps_loadgen.cc).
  kIngestAccepted,          // Events accepted into the ingest queue.
  kIngestDelivered,         // Events handed to the consumer.
  kIngestProducerWaits,     // Pushes that blocked on a full queue.
  // Pipelined execution (engine/pipelined_query_engine.cc).
  kPipelineEventsRouted,      // Data events forwarded router -> shard lane.
  kPipelineMarkersBroadcast,  // Epoch/control markers fanned out to lanes.
  kPipelineCoalescedDeltas,   // Delta fragments merged into an already
                              // pending same-(stream, timestamp) batch, i.e.
                              // ApplyChange calls saved by coalescing.
  kNumCounters,
};

// Last-written values; merged by maximum, so an aggregated gauge reads as a
// high-water mark.
enum class Gauge : int {
  kPoolQueueDepth = 0,  // Tasks enqueued by the most recent barrier.
  kEngineShards,
  kEngineStreams,
  kEngineQueries,
  kQueriesActive,  // Registered queries currently live (adds minus removes).
  kIngestQueueDepth,  // Ingest queue depth high-water (max-merged gauge).
  kPipelineLaneDepth,  // Per-shard SPSC lane depth high-water (max-merged).
  kShardImbalanceRatio,  // max/mean initial shard edge load, in millis
                         // (1000 = perfectly balanced).
  kNumGauges,
};

// The fixed pipeline stages every ApplyChange / timestamp advance splits
// into. Stage samples land in the per-stage histograms below (StageHist),
// and tail samples carry the stage into exemplars and flight-recorder
// spans, so a p99 outlier names the phase that spent it.
enum class Stage : int {
  kNntMaintain = 0,   // NNT edge insert/delete maintenance (and Build).
  kDirtyDrain,        // Dirty-root drain into the join strategy.
  kJoinRefresh,       // Strategy verdict recompute in CandidatesForStream.
  kTrackerObserve,    // CandidateTracker::Observe diffing.
  kMetricsMerge,      // Post-barrier sink merge + barrier bookkeeping.
  kNumStages,
};

inline constexpr int kNumStages = static_cast<int>(Stage::kNumStages);

// Fixed-bucket latency histograms, in microseconds. The kStage* entries
// are contiguous and ordered exactly like enum Stage (StageHist relies on
// it).
enum class Hist : int {
  kUpdateBatchMicros = 0,  // Per-shard NNT/index update time per barrier.
  kJoinBatchMicros,        // Per-shard join time per barrier.
  kBarrierWaitMicros,      // Per-shard idle time at each barrier.
  kStageNntMaintainMicros,    // Stage::kNntMaintain samples.
  kStageDirtyDrainMicros,     // Stage::kDirtyDrain samples.
  kStageJoinRefreshMicros,    // Stage::kJoinRefresh samples.
  kStageTrackerObserveMicros, // Stage::kTrackerObserve samples.
  kStageMetricsMergeMicros,   // Stage::kMetricsMerge samples.
  // End-to-end ingest latency: event enqueue stamp -> applied to the
  // engine. Lives after the contiguous kStage* block (StageHist relies on
  // that ordering).
  kIngestE2eMicros,
  // Epoch-watermark lag: marker publish stamp -> shard watermark advance
  // (pipelined engine only).
  kPipelineWatermarkLagMicros,
  kNumHists,
};

inline constexpr int kNumCounters = static_cast<int>(Counter::kNumCounters);
inline constexpr int kNumGauges = static_cast<int>(Gauge::kNumGauges);
inline constexpr int kNumHists = static_cast<int>(Hist::kNumHists);

// Prometheus-style base names ("gsps_nnt_insert_edges", ...).
const char* CounterName(Counter counter);
const char* GaugeName(Gauge gauge);
const char* HistName(Hist hist);

// One-line descriptions for the Prometheus "# HELP" exposition lines.
const char* CounterHelp(Counter counter);
const char* GaugeHelp(Gauge gauge);
const char* HistHelp(Hist hist);

// Stage <-> histogram mapping and stable lowercase stage names
// ("nnt_maintain", "dirty_drain", ...).
inline Hist StageHist(Stage stage) {
  return static_cast<Hist>(static_cast<int>(Hist::kStageNntMaintainMicros) +
                           static_cast<int>(stage));
}
const char* StageName(Stage stage);

// Build-identity labels for the gsps_build_info metric. The ISA label is
// filled in by the dominance kernel's dispatch resolution (and the CLI
// tools at startup); until then it reads "unknown". The pointer must be a
// string literal.
void SetBuildInfoIsa(const char* isa);
const char* BuildInfoIsa();

// Shared upper bounds (inclusive, microseconds) of the histogram buckets;
// a final implicit +Inf bucket catches the overflow. Quarter-decade spacing
// covers sub-microsecond NNT ops up to multi-second barriers.
inline constexpr std::array<int64_t, 12> kHistBucketBounds = {
    1,     4,     16,     64,     256,     1024,
    4096, 16384, 65536, 262144, 1048576, 4194304};

// One histogram: non-cumulative per-bucket counts plus count/sum, enough to
// reconstruct the Prometheus cumulative exposition and mean latency.
struct HistogramData {
  std::array<int64_t, kHistBucketBounds.size() + 1> buckets{};
  int64_t count = 0;
  int64_t sum = 0;

  // Index of the bucket a value falls into (last = +Inf overflow).
  static int BucketIndex(int64_t value);

  void Observe(int64_t value);
  void MergeFrom(const HistogramData& other);

  friend bool operator==(const HistogramData&, const HistogramData&) = default;
};

// A single-writer bundle of every metric. Copyable plain data.
class MetricSink {
 public:
  void Add(Counter counter, int64_t n) {
    counters_[static_cast<size_t>(counter)] += n;
  }
  int64_t Value(Counter counter) const {
    return counters_[static_cast<size_t>(counter)];
  }

  void Set(Gauge gauge, int64_t value) {
    gauges_[static_cast<size_t>(gauge)] = value;
  }
  int64_t GaugeValue(Gauge gauge) const {
    return gauges_[static_cast<size_t>(gauge)];
  }

  void Observe(Hist hist, int64_t value) {
    hists_[static_cast<size_t>(hist)].Observe(value);
  }
  const HistogramData& histogram(Hist hist) const {
    return hists_[static_cast<size_t>(hist)];
  }

  // Counters and histograms sum, gauges take the maximum — all commutative
  // and associative, so merge order never matters.
  void MergeFrom(const MetricSink& other);

  void Reset() { *this = MetricSink{}; }

  friend bool operator==(const MetricSink&, const MetricSink&) = default;

 private:
  std::array<int64_t, kNumCounters> counters_{};
  std::array<int64_t, kNumGauges> gauges_{};
  std::array<HistogramData, kNumHists> hists_{};
};

// Process-wide aggregate. All methods are thread-safe (one mutex), but by
// construction they are only reached off the hot path: owners merge whole
// sinks at barriers, and serialization happens at flush cadence.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Folds `sink` into the aggregate (and into the open telemetry window —
  // see window.h) and zeroes it. When the flight recorder is armed the
  // updated cumulative aggregate is also published to it.
  void MergeAndReset(MetricSink& sink);

  // Copy of the current aggregate.
  MetricSink Snapshot() const;

  // Zeroes the aggregate and cascades to the windowed telemetry, exemplar
  // store, and attribution registry (test isolation).
  void Reset();
};

// Prometheus text exposition format: "# HELP"/"# TYPE" headers, "_total"
// counters, cumulative le="..." histogram buckets with _sum/_count, plus
// the gsps_build_info gauge, the latest telemetry window's rates and
// quantiles, the per-query attribution top-K, and exemplar comment lines.
std::string ToPrometheusText(const MetricSink& snapshot);

// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...},
// "build_info":{...},"window":{...},"attribution":[...],"exemplars":[...]}.
std::string ToMetricsJson(const MetricSink& snapshot);

}  // namespace gsps::obs

#endif  // GSPS_OBS_METRICS_H_
