// Exemplar capture: tail histogram samples with enough identity to find
// the matching trace span.
//
// A histogram bucket tells you *that* a slow sample happened; an exemplar
// tells you *which one*. Stage samples (obs.h StageSample) whose value
// meets the per-histogram threshold record an Exemplar — stage, stream id,
// query id, timestamp, and the span id also attached to the Chrome trace
// span emitted for the same sample — into a small global ring. The
// serializers surface the ring as "# exemplar" comment lines in the
// Prometheus text (comments keep the exposition format lint-clean) and as
// an "exemplars" array in the metrics JSON; args.span_id in the trace JSON
// closes the loop.
//
// Thresholds are per-histogram atomics (default kDefaultExemplarThreshold
// microseconds) so tools and tests can tune them without a lock; the
// comparison is `value >= threshold`. The ring itself takes a mutex —
// acceptable because crossings are tail events by construction.

#ifndef GSPS_OBS_EXEMPLAR_H_
#define GSPS_OBS_EXEMPLAR_H_

#include <cstdint>
#include <vector>

#include "gsps/obs/metrics.h"

namespace gsps::obs {

inline constexpr int64_t kDefaultExemplarThresholdMicros = 1000;
inline constexpr int kExemplarRingSize = 32;

struct Exemplar {
  Hist hist = Hist::kNumHists;
  Stage stage = Stage::kNumStages;  // kNumStages when not a stage sample.
  int32_t stream = -1;
  int32_t query = -1;
  int64_t value_micros = 0;
  int64_t ts_micros = 0;  // MonotonicMicros() at capture.
  uint64_t span_id = 0;   // Matches args.span_id in the trace JSON.
};

// Per-histogram capture threshold in microseconds (relaxed atomics).
int64_t ExemplarThreshold(Hist hist);
void SetExemplarThreshold(Hist hist, int64_t micros);

class ExemplarStore {
 public:
  static ExemplarStore& Global();

  // Appends to the ring, evicting the oldest once full. Allocation-free.
  void Record(const Exemplar& exemplar);

  // Retained exemplars, oldest first.
  void Snapshot(std::vector<Exemplar>* out) const;

  // Clears the ring and restores every threshold to the default.
  void Reset();
};

}  // namespace gsps::obs

#endif  // GSPS_OBS_EXEMPLAR_H_
