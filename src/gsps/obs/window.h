// Windowed telemetry: a ring of recent-interval metric aggregates.
//
// The registry's cumulative aggregate answers "how much since process
// start"; operators watching a replay need "how fast right now". Every
// MetricsRegistry::MergeAndReset folds the incoming sink into the current
// *open* window as well as the cumulative root; a caller on flush cadence
// (gsps_monitor's --metrics_every / --stats_every loop, tests) closes the
// open window with Advance(), which stamps its duration, pushes it into a
// fixed ring of the kWindowRingSize most recent windows, and starts a new
// one. Rates and per-window histogram quantiles derive from the closed
// windows.
//
// Invariant (tested): the sum of all closed windows' deltas plus the open
// window equals the cumulative registry aggregate — a sample merged at a
// parallel-engine barrier lands in exactly one window, never zero or two,
// regardless of where the window boundary falls between barriers.
//
// The registry never advances windows on its own: with no caller driving
// Advance(), everything accumulates in one open window and the cumulative
// behavior of PR 3 is unchanged.

#ifndef GSPS_OBS_WINDOW_H_
#define GSPS_OBS_WINDOW_H_

#include <cstdint>
#include <vector>

#include "gsps/obs/metrics.h"

namespace gsps::obs {

// One closed window. Trivially copyable so the flight recorder can
// seqlock-publish it.
struct WindowSnapshot {
  MetricSink delta;            // Everything merged during the window.
  int64_t seq = 0;             // 1-based close order; 0 = no window yet.
  int64_t start_micros = 0;    // MonotonicMicros() at window open.
  int64_t duration_micros = 0; // Close minus open.
};

inline constexpr int kWindowRingSize = 8;

class WindowedTelemetry {
 public:
  static WindowedTelemetry& Global();

  // Accumulates `sink` into the open window. Called by
  // MetricsRegistry::MergeAndReset under its lock (registry lock is always
  // taken before the window lock; nothing takes them in the other order).
  void Fold(const MetricSink& sink);

  // Closes the open window, pushes it into the ring (evicting the oldest
  // once full), publishes it to the flight recorder when armed, starts a
  // fresh window, and returns the closed one.
  WindowSnapshot Advance();

  // The most recently closed window (seq == 0 when none closed yet).
  WindowSnapshot Latest() const;

  // All retained closed windows, oldest first.
  void Recent(std::vector<WindowSnapshot>* out) const;

  // Copy of the open (not yet closed) window's accumulation. Test hook for
  // the windows-plus-open == cumulative invariant.
  MetricSink OpenDelta() const;

  // Drops every closed window and the open accumulation (test isolation).
  void Reset();
};

// Per-second rate of `counter` over a closed window; 0 for an empty or
// zero-duration window.
double RatePerSec(const WindowSnapshot& window, Counter counter);

// Quantile estimate (q in [0,1]) from the fixed bucket layout, linearly
// interpolated inside the containing bucket. Returns 0 for an empty
// histogram; samples in the +Inf overflow bucket clamp to the top finite
// bound.
double HistogramQuantile(const HistogramData& data, double q);

}  // namespace gsps::obs

#endif  // GSPS_OBS_WINDOW_H_
