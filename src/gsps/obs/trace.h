// Chrome trace_event-format span recording.
//
// Spans are recorded into per-thread TraceBuffers (append to a vector, no
// locks) handed out by the global Tracer; the merged JSON —
// {"traceEvents":[{"ph":"X",...}]} — loads directly in about://tracing and
// Perfetto (ui.perfetto.dev), with one timeline row per buffer tid. The
// engine labels shard buffers with the shard index, so a parallel replay
// shows every shard's update/join spans and the idle gaps between them.
//
// Single-writer discipline mirrors the metric sinks: exactly one thread
// appends to a buffer at a time (the engine guarantees one worker per shard
// per barrier; barrier synchronization orders writers across barriers).
// ToJson() must only run while recorders are quiescent (after the replay,
// or between barriers on the driver thread).
//
// Spans are recorded through GSPS_OBS_SPAN in gsps/obs/obs.h and cost
// nothing when no buffer is installed on the current thread.

#ifndef GSPS_OBS_TRACE_H_
#define GSPS_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace gsps::obs {

// One complete ("ph":"X") event. Names and categories must be string
// literals (or otherwise outlive the tracer): buffers store the pointers.
// A nonzero id is serialized as args.span_id — the handle exemplars use to
// point at the trace span that produced a tail histogram sample.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  int64_t ts_micros = 0;   // Start, relative to the tracer epoch.
  int64_t dur_micros = 0;
  uint64_t id = 0;         // 0 = unlabeled span.
};

// Append-only span storage for one logical thread (timeline row).
class TraceBuffer {
 public:
  explicit TraceBuffer(int32_t tid) : tid_(tid) {}

  void Record(const char* name, const char* category, int64_t ts_micros,
              int64_t dur_micros, uint64_t id = 0) {
    events_.push_back(TraceEvent{name, category, ts_micros, dur_micros, id});
  }

  int32_t tid() const { return tid_; }
  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  int32_t tid_;
  std::vector<TraceEvent> events_;
};

// Owner of every TraceBuffer and of the shared time epoch.
class Tracer {
 public:
  static Tracer& Global();

  // Arms recording and (re)starts the epoch. Must precede NewBuffer.
  void Enable();
  bool enabled() const;

  // Allocates a buffer rendered as timeline row `tid`. Thread-safe, cold;
  // the pointer stays valid until Clear(). Returns nullptr when disabled.
  TraceBuffer* NewBuffer(int32_t tid);

  // Microseconds since Enable().
  int64_t NowMicros() const;

  // Serializes every buffer's spans. Callers must ensure recorders are
  // quiescent (no concurrent Record).
  std::string ToJson() const;

  // Drops all buffers and disarms recording (test isolation).
  void Clear();
};

// Microseconds since a process-local steady-clock epoch (first call), with
// no lock — unlike Tracer::NowMicros, which takes the tracer mutex to read
// the Enable() epoch. Stage timers and the flight recorder use this on the
// hot path; its epoch is unrelated to the tracer's.
int64_t MonotonicMicros();

// Process-unique span id (1-based; 0 is reserved for "no span").
uint64_t NextSpanId();

}  // namespace gsps::obs

#endif  // GSPS_OBS_TRACE_H_
