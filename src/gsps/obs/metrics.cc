#include "gsps/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <mutex>

namespace gsps::obs {

namespace {

constexpr const char* kCounterNames[kNumCounters] = {
    "gsps_nnt_insert_edges",
    "gsps_nnt_delete_edges",
    "gsps_nnt_paths_touched",
    "gsps_nnt_tree_nodes_created",
    "gsps_nnt_tree_nodes_freed",
    "gsps_nnt_roots_dirtied",
    "gsps_nnt_tree_slots_reused",
    "gsps_nnt_npv_cache_rebuilds",
    "gsps_join_dominance_tests",
    "gsps_join_skyline_early_stops",
    "gsps_join_set_cover_rounds",
    "gsps_join_set_cover_flips",
    "gsps_join_pairs_in",
    "gsps_join_pairs_out",
    "gsps_join_verdicts_reused",
    "gsps_join_signature_rejects",
    "gsps_remap_regrowths",
    "gsps_dominance_batches_scalar",
    "gsps_dominance_batches_avx2",
    "gsps_dominance_batches_avx512",
    "gsps_tracker_observations",
    "gsps_tracker_appeared",
    "gsps_tracker_disappeared",
    "gsps_pool_barriers",
    "gsps_pool_tasks",
    "gsps_engine_update_barriers",
    "gsps_engine_join_barriers",
    "gsps_shard_busy_micros",
    "gsps_shard_barrier_wait_micros",
};

constexpr const char* kGaugeNames[kNumGauges] = {
    "gsps_pool_queue_depth",
    "gsps_engine_shards",
    "gsps_engine_streams",
    "gsps_engine_queries",
    "gsps_queries_active",
};

constexpr const char* kHistNames[kNumHists] = {
    "gsps_update_batch_micros",
    "gsps_join_batch_micros",
    "gsps_barrier_wait_micros",
};

std::string FormatInt(int64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld",
                static_cast<long long>(value));
  return buffer;
}

// The aggregate behind MetricsRegistry::Global(). Kept out of the class so
// metrics.h stays free of <mutex>.
struct RegistryState {
  std::mutex mutex;
  MetricSink root;
};

RegistryState& State() {
  static RegistryState* state = new RegistryState();
  return *state;
}

}  // namespace

const char* CounterName(Counter counter) {
  return kCounterNames[static_cast<size_t>(counter)];
}

const char* GaugeName(Gauge gauge) {
  return kGaugeNames[static_cast<size_t>(gauge)];
}

const char* HistName(Hist hist) {
  return kHistNames[static_cast<size_t>(hist)];
}

int HistogramData::BucketIndex(int64_t value) {
  const auto it = std::lower_bound(kHistBucketBounds.begin(),
                                   kHistBucketBounds.end(), value);
  return static_cast<int>(it - kHistBucketBounds.begin());
}

void HistogramData::Observe(int64_t value) {
  ++buckets[static_cast<size_t>(BucketIndex(value))];
  ++count;
  sum += value;
}

void HistogramData::MergeFrom(const HistogramData& other) {
  for (size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
}

void MetricSink::MergeFrom(const MetricSink& other) {
  for (int i = 0; i < kNumCounters; ++i) {
    counters_[static_cast<size_t>(i)] += other.counters_[static_cast<size_t>(i)];
  }
  for (int i = 0; i < kNumGauges; ++i) {
    gauges_[static_cast<size_t>(i)] =
        std::max(gauges_[static_cast<size_t>(i)],
                 other.gauges_[static_cast<size_t>(i)]);
  }
  for (int i = 0; i < kNumHists; ++i) {
    hists_[static_cast<size_t>(i)].MergeFrom(
        other.hists_[static_cast<size_t>(i)]);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::MergeAndReset(MetricSink& sink) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.root.MergeFrom(sink);
  sink.Reset();
}

MetricSink MetricsRegistry::Snapshot() const {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.root;
}

void MetricsRegistry::Reset() {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.root.Reset();
}

std::string ToPrometheusText(const MetricSink& snapshot) {
  std::string out;
  for (int i = 0; i < kNumCounters; ++i) {
    const Counter counter = static_cast<Counter>(i);
    const std::string name = std::string(CounterName(counter)) + "_total";
    out += "# TYPE " + name + " counter\n";
    out += name + " " + FormatInt(snapshot.Value(counter)) + "\n";
  }
  for (int i = 0; i < kNumGauges; ++i) {
    const Gauge gauge = static_cast<Gauge>(i);
    out += "# TYPE " + std::string(GaugeName(gauge)) + " gauge\n";
    out += std::string(GaugeName(gauge)) + " " +
           FormatInt(snapshot.GaugeValue(gauge)) + "\n";
  }
  for (int i = 0; i < kNumHists; ++i) {
    const Hist hist = static_cast<Hist>(i);
    const HistogramData& data = snapshot.histogram(hist);
    const std::string name = HistName(hist);
    out += "# TYPE " + name + " histogram\n";
    int64_t cumulative = 0;
    for (size_t b = 0; b < kHistBucketBounds.size(); ++b) {
      cumulative += data.buckets[b];
      out += name + "_bucket{le=\"" + FormatInt(kHistBucketBounds[b]) +
             "\"} " + FormatInt(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + FormatInt(data.count) + "\n";
    out += name + "_sum " + FormatInt(data.sum) + "\n";
    out += name + "_count " + FormatInt(data.count) + "\n";
  }
  return out;
}

std::string ToMetricsJson(const MetricSink& snapshot) {
  std::string out = "{\"counters\":{";
  for (int i = 0; i < kNumCounters; ++i) {
    const Counter counter = static_cast<Counter>(i);
    if (i > 0) out += ",";
    out += "\"";
    out += CounterName(counter);
    out += "\":" + FormatInt(snapshot.Value(counter));
  }
  out += "},\"gauges\":{";
  for (int i = 0; i < kNumGauges; ++i) {
    const Gauge gauge = static_cast<Gauge>(i);
    if (i > 0) out += ",";
    out += "\"";
    out += GaugeName(gauge);
    out += "\":" + FormatInt(snapshot.GaugeValue(gauge));
  }
  out += "},\"histograms\":{";
  for (int i = 0; i < kNumHists; ++i) {
    const Hist hist = static_cast<Hist>(i);
    const HistogramData& data = snapshot.histogram(hist);
    if (i > 0) out += ",";
    out += "\"";
    out += HistName(hist);
    out += "\":{\"buckets\":[";
    for (size_t b = 0; b < data.buckets.size(); ++b) {
      if (b > 0) out += ",";
      out += "{\"le\":";
      out += b < kHistBucketBounds.size() ? FormatInt(kHistBucketBounds[b])
                                          : std::string("\"+Inf\"");
      out += ",\"count\":" + FormatInt(data.buckets[b]) + "}";
    }
    out += "],\"sum\":" + FormatInt(data.sum) +
           ",\"count\":" + FormatInt(data.count) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace gsps::obs
