#include "gsps/obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <vector>

#include "gsps/obs/attribution.h"
#include "gsps/obs/exemplar.h"
#include "gsps/obs/flight_recorder.h"
#include "gsps/obs/window.h"

#if !defined(GSPS_BUILD_TYPE)
#define GSPS_BUILD_TYPE "unspecified"
#endif

namespace gsps::obs {

namespace {

constexpr const char* kCounterNames[kNumCounters] = {
    "gsps_nnt_insert_edges",
    "gsps_nnt_delete_edges",
    "gsps_nnt_paths_touched",
    "gsps_nnt_tree_nodes_created",
    "gsps_nnt_tree_nodes_freed",
    "gsps_nnt_roots_dirtied",
    "gsps_nnt_tree_slots_reused",
    "gsps_nnt_npv_cache_rebuilds",
    "gsps_join_dominance_tests",
    "gsps_join_skyline_early_stops",
    "gsps_join_set_cover_rounds",
    "gsps_join_set_cover_flips",
    "gsps_join_pairs_in",
    "gsps_join_pairs_out",
    "gsps_join_verdicts_reused",
    "gsps_join_signature_rejects",
    "gsps_remap_regrowths",
    "gsps_dominance_batches_scalar",
    "gsps_dominance_batches_avx2",
    "gsps_dominance_batches_avx512",
    "gsps_tracker_observations",
    "gsps_tracker_appeared",
    "gsps_tracker_disappeared",
    "gsps_pool_barriers",
    "gsps_pool_tasks",
    "gsps_engine_update_barriers",
    "gsps_engine_join_barriers",
    "gsps_shard_busy_micros",
    "gsps_shard_barrier_wait_micros",
    "gsps_ingest_accepted",
    "gsps_ingest_delivered",
    "gsps_ingest_producer_waits",
    "gsps_pipeline_events_routed",
    "gsps_pipeline_markers_broadcast",
    "gsps_pipeline_coalesced_deltas",
};

constexpr const char* kGaugeNames[kNumGauges] = {
    "gsps_pool_queue_depth",
    "gsps_engine_shards",
    "gsps_engine_streams",
    "gsps_engine_queries",
    "gsps_queries_active",
    "gsps_ingest_queue_depth",
    "gsps_pipeline_lane_depth",
    "gsps_shard_imbalance_ratio",
};

constexpr const char* kHistNames[kNumHists] = {
    "gsps_update_batch_micros",
    "gsps_join_batch_micros",
    "gsps_barrier_wait_micros",
    "gsps_stage_nnt_maintain_micros",
    "gsps_stage_dirty_drain_micros",
    "gsps_stage_join_refresh_micros",
    "gsps_stage_tracker_observe_micros",
    "gsps_stage_metrics_merge_micros",
    "gsps_ingest_e2e_micros",
    "gsps_pipeline_watermark_lag_micros",
};

constexpr const char* kCounterHelp[kNumCounters] = {
    "NNT InsertEdge calls applied",
    "NNT DeleteEdge calls applied",
    "Appearance-list entries visited by NNT insert/delete",
    "NNT tree nodes allocated",
    "NNT tree nodes freed",
    "Roots whose NPV went clean to dirty",
    "Tree-node allocations served from the free-slot list",
    "NPV cache materializations of an invalidated root",
    "Pairwise NPV dominance evaluations",
    "Pairs pruned at the first uncovered skyline point",
    "Dominated-set-cover maintenance rounds",
    "Dominated-set-cover domination-status flips",
    "Stream/query pairs evaluated by the join",
    "Pairs surviving the join as candidates",
    "Join calls answered from cached per-stream verdicts",
    "Dominance pairs rejected on the 64-bit signature alone",
    "Post-seal dimension-remap growths",
    "Dominance kernel batches on the scalar path",
    "Dominance kernel batches on the AVX2 path",
    "Dominance kernel batches on the AVX-512 path",
    "CandidateTracker observations",
    "Candidate pairs that appeared",
    "Candidate pairs that disappeared",
    "Thread-pool ParallelFor barriers",
    "Thread-pool task indices dispatched",
    "Engine update (ApplyChanges) barriers",
    "Engine join (AllCandidatePairs) barriers",
    "Summed per-shard busy micros inside barriers",
    "Summed per-shard idle micros at barriers",
    "Events accepted into the ingest queue",
    "Ingest events delivered to the consumer",
    "Ingest pushes that blocked on a full queue",
    "Data events forwarded by the pipeline router to shard lanes",
    "Epoch/control markers broadcast to every shard lane",
    "Delta fragments coalesced into a pending same-timestamp batch",
};

constexpr const char* kGaugeHelp[kNumGauges] = {
    "Tasks enqueued by the most recent pool barrier",
    "Shards in the parallel engine",
    "Streams registered with the engine",
    "Query slots registered with the engine",
    "Registered queries currently live",
    "Ingest queue depth high-water mark",
    "Per-shard pipeline lane depth high-water mark",
    "Max/mean initial shard edge load in millis (1000 = balanced)",
};

constexpr const char* kHistHelp[kNumHists] = {
    "Per-shard NNT/index update micros per barrier",
    "Per-shard join micros per barrier",
    "Per-shard idle micros at each barrier",
    "Stage micros: NNT edge maintenance",
    "Stage micros: dirty-root drain into the join strategy",
    "Stage micros: join verdict recompute",
    "Stage micros: candidate tracker observe",
    "Stage micros: post-barrier metrics merge",
    "End-to-end ingest micros: enqueue stamp to engine apply",
    "Epoch micros: marker publish stamp to shard watermark advance",
};

constexpr const char* kStageNames[kNumStages] = {
    "nnt_maintain", "dirty_drain", "join_refresh", "tracker_observe",
    "metrics_merge",
};

std::atomic<const char*> g_build_info_isa{"unknown"};

std::string FormatInt(int64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld",
                static_cast<long long>(value));
  return buffer;
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

// The aggregate behind MetricsRegistry::Global(). Kept out of the class so
// metrics.h stays free of <mutex>.
struct RegistryState {
  std::mutex mutex;
  MetricSink root;
};

RegistryState& State() {
  static RegistryState* state = new RegistryState();
  return *state;
}

}  // namespace

const char* CounterName(Counter counter) {
  return kCounterNames[static_cast<size_t>(counter)];
}

const char* GaugeName(Gauge gauge) {
  return kGaugeNames[static_cast<size_t>(gauge)];
}

const char* HistName(Hist hist) {
  return kHistNames[static_cast<size_t>(hist)];
}

const char* CounterHelp(Counter counter) {
  return kCounterHelp[static_cast<size_t>(counter)];
}

const char* GaugeHelp(Gauge gauge) {
  return kGaugeHelp[static_cast<size_t>(gauge)];
}

const char* HistHelp(Hist hist) {
  return kHistHelp[static_cast<size_t>(hist)];
}

const char* StageName(Stage stage) {
  return kStageNames[static_cast<size_t>(stage)];
}

void SetBuildInfoIsa(const char* isa) {
  g_build_info_isa.store(isa != nullptr ? isa : "unknown",
                         std::memory_order_relaxed);
}

const char* BuildInfoIsa() {
  return g_build_info_isa.load(std::memory_order_relaxed);
}

int HistogramData::BucketIndex(int64_t value) {
  const auto it = std::lower_bound(kHistBucketBounds.begin(),
                                   kHistBucketBounds.end(), value);
  return static_cast<int>(it - kHistBucketBounds.begin());
}

void HistogramData::Observe(int64_t value) {
  ++buckets[static_cast<size_t>(BucketIndex(value))];
  ++count;
  sum += value;
}

void HistogramData::MergeFrom(const HistogramData& other) {
  for (size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
}

void MetricSink::MergeFrom(const MetricSink& other) {
  for (int i = 0; i < kNumCounters; ++i) {
    counters_[static_cast<size_t>(i)] += other.counters_[static_cast<size_t>(i)];
  }
  for (int i = 0; i < kNumGauges; ++i) {
    gauges_[static_cast<size_t>(i)] =
        std::max(gauges_[static_cast<size_t>(i)],
                 other.gauges_[static_cast<size_t>(i)]);
  }
  for (int i = 0; i < kNumHists; ++i) {
    hists_[static_cast<size_t>(i)].MergeFrom(
        other.hists_[static_cast<size_t>(i)]);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::MergeAndReset(MetricSink& sink) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.root.MergeFrom(sink);
  // Every merged sample also lands in the open telemetry window, so
  // windows partition the cumulative aggregate exactly (window.h). The
  // registry lock is always taken before the window lock.
  WindowedTelemetry::Global().Fold(sink);
  if (FlightRecorderArmed()) {
    FlightRecorder::Global().PublishCumulative(state.root);
  }
  sink.Reset();
}

MetricSink MetricsRegistry::Snapshot() const {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.root;
}

void MetricsRegistry::Reset() {
  RegistryState& state = State();
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    state.root.Reset();
  }
  WindowedTelemetry::Global().Reset();
  ExemplarStore::Global().Reset();
  AttributionRegistry::Global().Reset();
}

namespace {

constexpr double kWindowQuantiles[3] = {0.5, 0.95, 0.99};
constexpr const char* kWindowQuantileLabels[3] = {"0.5", "0.95", "0.99"};
constexpr int kAttributionTopK = 10;

}  // namespace

std::string ToPrometheusText(const MetricSink& snapshot) {
  std::string out;
  for (int i = 0; i < kNumCounters; ++i) {
    const Counter counter = static_cast<Counter>(i);
    const std::string name = std::string(CounterName(counter)) + "_total";
    out += "# HELP " + name + " " + CounterHelp(counter) + "\n";
    out += "# TYPE " + name + " counter\n";
    out += name + " " + FormatInt(snapshot.Value(counter)) + "\n";
  }
  for (int i = 0; i < kNumGauges; ++i) {
    const Gauge gauge = static_cast<Gauge>(i);
    out += "# HELP " + std::string(GaugeName(gauge)) + " " +
           GaugeHelp(gauge) + "\n";
    out += "# TYPE " + std::string(GaugeName(gauge)) + " gauge\n";
    out += std::string(GaugeName(gauge)) + " " +
           FormatInt(snapshot.GaugeValue(gauge)) + "\n";
  }
  for (int i = 0; i < kNumHists; ++i) {
    const Hist hist = static_cast<Hist>(i);
    const HistogramData& data = snapshot.histogram(hist);
    const std::string name = HistName(hist);
    out += "# HELP " + name + " " + HistHelp(hist) + "\n";
    out += "# TYPE " + name + " histogram\n";
    int64_t cumulative = 0;
    for (size_t b = 0; b < kHistBucketBounds.size(); ++b) {
      cumulative += data.buckets[b];
      out += name + "_bucket{le=\"" + FormatInt(kHistBucketBounds[b]) +
             "\"} " + FormatInt(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + FormatInt(data.count) + "\n";
    out += name + "_sum " + FormatInt(data.sum) + "\n";
    out += name + "_count " + FormatInt(data.count) + "\n";
  }

  // Build identity, so scraped artifacts are self-describing.
  out += "# HELP gsps_build_info Build identity labels (value is always 1)\n";
  out += "# TYPE gsps_build_info gauge\n";
  out += std::string("gsps_build_info{isa=\"") + BuildInfoIsa() +
         "\",obs=\"" + (kEnabled ? "on" : "off") + "\",build=\"" +
         GSPS_BUILD_TYPE "\"} 1\n";

  // Latest closed telemetry window: rates and per-histogram quantiles.
  const WindowSnapshot window = WindowedTelemetry::Global().Latest();
  out += "# HELP gsps_window_seq Close order of the latest telemetry "
         "window (0 when none)\n";
  out += "# TYPE gsps_window_seq gauge\n";
  out += "gsps_window_seq " + FormatInt(window.seq) + "\n";
  out += "# HELP gsps_window_duration_micros Duration of the latest "
         "window\n";
  out += "# TYPE gsps_window_duration_micros gauge\n";
  out += "gsps_window_duration_micros " + FormatInt(window.duration_micros) +
         "\n";
  out += "# HELP gsps_window_events_per_sec Edge events per second over "
         "the latest window\n";
  out += "# TYPE gsps_window_events_per_sec gauge\n";
  out += "gsps_window_events_per_sec " +
         FormatDouble(RatePerSec(window, Counter::kNntInsertEdges) +
                      RatePerSec(window, Counter::kNntDeleteEdges)) +
         "\n";
  out += "# HELP gsps_window_dominance_tests_per_sec Dominance tests per "
         "second over the latest window\n";
  out += "# TYPE gsps_window_dominance_tests_per_sec gauge\n";
  out += "gsps_window_dominance_tests_per_sec " +
         FormatDouble(RatePerSec(window, Counter::kJoinDominanceTests)) + "\n";
  out += "# HELP gsps_window_quantile_micros Interpolated latency "
         "quantiles over the latest window\n";
  out += "# TYPE gsps_window_quantile_micros gauge\n";
  for (int i = 0; i < kNumHists; ++i) {
    const Hist hist = static_cast<Hist>(i);
    const HistogramData& data = window.delta.histogram(hist);
    for (int q = 0; q < 3; ++q) {
      out += std::string("gsps_window_quantile_micros{hist=\"") +
             HistName(hist) + "\",quantile=\"" + kWindowQuantileLabels[q] +
             "\"} " + FormatDouble(HistogramQuantile(data, kWindowQuantiles[q])) +
             "\n";
    }
  }

  // Per-query attribution heavy hitters (top-K by dominance probes).
  std::vector<AttributionRow> top;
  AttributionRegistry::Global().TopK(kAttributionTopK, &top);
  out += "# HELP gsps_query_dominance_probes_total Dominance probes "
         "attributed to the query slot (weighted split)\n";
  out += "# TYPE gsps_query_dominance_probes_total counter\n";
  out += "# HELP gsps_query_refresh_micros_total Verdict-refresh micros "
         "attributed to the query slot\n";
  out += "# TYPE gsps_query_refresh_micros_total counter\n";
  out += "# HELP gsps_query_refreshes_total Refresh passes the query slot "
         "was live for\n";
  out += "# TYPE gsps_query_refreshes_total counter\n";
  for (const AttributionRow& row : top) {
    const std::string labels = "{query=\"" + FormatInt(row.slot) +
                               "\",generation=\"" +
                               FormatInt(row.generation) + "\"} ";
    out += "gsps_query_dominance_probes_total" + labels +
           FormatInt(row.dominance_probes) + "\n";
    out += "gsps_query_refresh_micros_total" + labels +
           FormatInt(row.refresh_micros) + "\n";
    out += "gsps_query_refreshes_total" + labels + FormatInt(row.refreshes) +
           "\n";
  }

  // Exemplars ride along as comment lines: the classic text format has no
  // exemplar syntax, and comments keep the exposition lint-clean while
  // still shipping the span linkage in the same scrape.
  std::vector<Exemplar> exemplars;
  ExemplarStore::Global().Snapshot(&exemplars);
  for (const Exemplar& e : exemplars) {
    out += "# exemplar " + std::string(HistName(e.hist)) +
           " value=" + FormatInt(e.value_micros) + " stage=" +
           (e.stage < Stage::kNumStages ? StageName(e.stage) : "none") +
           " stream=" + FormatInt(e.stream) + " query=" + FormatInt(e.query) +
           " ts=" + FormatInt(e.ts_micros) +
           " span_id=" + FormatInt(static_cast<int64_t>(e.span_id)) + "\n";
  }
  return out;
}

std::string ToMetricsJson(const MetricSink& snapshot) {
  std::string out = "{\"counters\":{";
  for (int i = 0; i < kNumCounters; ++i) {
    const Counter counter = static_cast<Counter>(i);
    if (i > 0) out += ",";
    out += "\"";
    out += CounterName(counter);
    out += "\":" + FormatInt(snapshot.Value(counter));
  }
  out += "},\"gauges\":{";
  for (int i = 0; i < kNumGauges; ++i) {
    const Gauge gauge = static_cast<Gauge>(i);
    if (i > 0) out += ",";
    out += "\"";
    out += GaugeName(gauge);
    out += "\":" + FormatInt(snapshot.GaugeValue(gauge));
  }
  out += "},\"histograms\":{";
  for (int i = 0; i < kNumHists; ++i) {
    const Hist hist = static_cast<Hist>(i);
    const HistogramData& data = snapshot.histogram(hist);
    if (i > 0) out += ",";
    out += "\"";
    out += HistName(hist);
    out += "\":{\"buckets\":[";
    for (size_t b = 0; b < data.buckets.size(); ++b) {
      if (b > 0) out += ",";
      out += "{\"le\":";
      out += b < kHistBucketBounds.size() ? FormatInt(kHistBucketBounds[b])
                                          : std::string("\"+Inf\"");
      out += ",\"count\":" + FormatInt(data.buckets[b]) + "}";
    }
    out += "],\"sum\":" + FormatInt(data.sum) +
           ",\"count\":" + FormatInt(data.count) + "}";
  }
  out += "},\"build_info\":{\"isa\":\"";
  out += BuildInfoIsa();
  out += std::string("\",\"obs\":\"") + (kEnabled ? "on" : "off") +
         "\",\"build\":\"" GSPS_BUILD_TYPE "\"}";

  const WindowSnapshot window = WindowedTelemetry::Global().Latest();
  out += ",\"window\":{\"seq\":" + FormatInt(window.seq) +
         ",\"start_micros\":" + FormatInt(window.start_micros) +
         ",\"duration_micros\":" + FormatInt(window.duration_micros) +
         ",\"events_per_sec\":" +
         FormatDouble(RatePerSec(window, Counter::kNntInsertEdges) +
                      RatePerSec(window, Counter::kNntDeleteEdges)) +
         ",\"dominance_tests_per_sec\":" +
         FormatDouble(RatePerSec(window, Counter::kJoinDominanceTests)) +
         ",\"quantiles\":{";
  for (int i = 0; i < kNumHists; ++i) {
    const Hist hist = static_cast<Hist>(i);
    const HistogramData& data = window.delta.histogram(hist);
    if (i > 0) out += ",";
    out += "\"";
    out += HistName(hist);
    out += "\":{";
    for (int q = 0; q < 3; ++q) {
      if (q > 0) out += ",";
      out += std::string("\"") + kWindowQuantileLabels[q] + "\":" +
             FormatDouble(HistogramQuantile(data, kWindowQuantiles[q]));
    }
    out += "}";
  }
  out += "}}";

  std::vector<AttributionRow> top;
  AttributionRegistry::Global().TopK(kAttributionTopK, &top);
  out += ",\"attribution\":[";
  for (size_t i = 0; i < top.size(); ++i) {
    const AttributionRow& row = top[i];
    if (i > 0) out += ",";
    out += "{\"query\":" + FormatInt(row.slot) +
           ",\"generation\":" + FormatInt(row.generation) +
           ",\"dominance_probes\":" + FormatInt(row.dominance_probes) +
           ",\"refresh_micros\":" + FormatInt(row.refresh_micros) +
           ",\"refreshes\":" + FormatInt(row.refreshes) + "}";
  }
  out += "]";

  std::vector<Exemplar> exemplars;
  ExemplarStore::Global().Snapshot(&exemplars);
  out += ",\"exemplars\":[";
  for (size_t i = 0; i < exemplars.size(); ++i) {
    const Exemplar& e = exemplars[i];
    if (i > 0) out += ",";
    out += std::string("{\"hist\":\"") + HistName(e.hist) +
           "\",\"stage\":\"" +
           (e.stage < Stage::kNumStages ? StageName(e.stage) : "none") +
           "\",\"stream\":" + FormatInt(e.stream) +
           ",\"query\":" + FormatInt(e.query) +
           ",\"value_micros\":" + FormatInt(e.value_micros) +
           ",\"ts_micros\":" + FormatInt(e.ts_micros) +
           ",\"span_id\":" + FormatInt(static_cast<int64_t>(e.span_id)) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace gsps::obs
