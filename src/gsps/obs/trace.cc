#include "gsps/obs/trace.h"

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>

namespace gsps::obs {

namespace {

using Clock = std::chrono::steady_clock;

// Buffers are heap-allocated unique_ptrs so handed-out pointers survive
// vector growth; the vector itself is guarded by the mutex (NewBuffer and
// ToJson are cold paths).
struct TracerState {
  std::mutex mutex;
  bool enabled = false;
  Clock::time_point epoch{};
  std::vector<std::unique_ptr<TraceBuffer>> buffers;
};

TracerState& State() {
  static TracerState* state = new TracerState();
  return *state;
}

std::string FormatInt(int64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld",
                static_cast<long long>(value));
  return buffer;
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable() {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.enabled = true;
  state.epoch = Clock::now();
}

bool Tracer::enabled() const {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.enabled;
}

TraceBuffer* Tracer::NewBuffer(int32_t tid) {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (!state.enabled) return nullptr;
  state.buffers.push_back(std::make_unique<TraceBuffer>(tid));
  return state.buffers.back().get();
}

int64_t Tracer::NowMicros() const {
  TracerState& state = State();
  Clock::time_point epoch;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    epoch = state.epoch;
  }
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               epoch)
      .count();
}

std::string Tracer::ToJson() const {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& buffer : state.buffers) {
    for (const TraceEvent& event : buffer->events()) {
      if (!first) out += ",";
      first = false;
      out += "{\"name\":\"";
      out += event.name;
      out += "\",\"cat\":\"";
      out += event.category;
      out += "\",\"ph\":\"X\",\"ts\":" + FormatInt(event.ts_micros) +
             ",\"dur\":" + FormatInt(event.dur_micros) +
             ",\"pid\":1,\"tid\":" + FormatInt(buffer->tid());
      if (event.id != 0) {
        out += ",\"args\":{\"span_id\":" +
               FormatInt(static_cast<int64_t>(event.id)) + "}";
      }
      out += "}";
    }
  }
  out += "]}";
  return out;
}

void Tracer::Clear() {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.enabled = false;
  state.buffers.clear();
}

int64_t MonotonicMicros() {
  // Thread-safe magic-static init on first call; a guard load + clock read
  // afterwards. No mutex, so stage timers can call this per sample.
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               epoch)
      .count();
}

uint64_t NextSpanId() {
  static std::atomic<uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace gsps::obs
