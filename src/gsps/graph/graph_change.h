// Graph change operations (paper Definition 2.4).
//
// A change operation is a batch of edge insertions/deletions applied
// atomically at one timestamp. Vertex insertion is modeled as the edge
// insertions touching the new vertex (each edge op carries the endpoint
// labels so a previously unseen vertex can be materialized); vertex deletion
// is the deletion of all its incident edges.

#ifndef GSPS_GRAPH_GRAPH_CHANGE_H_
#define GSPS_GRAPH_GRAPH_CHANGE_H_

#include <vector>

#include "gsps/graph/graph.h"

namespace gsps {

// One edge insertion or deletion.
struct EdgeOp {
  enum class Kind { kInsert, kDelete };

  Kind kind = Kind::kInsert;
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  // Used by insertions only.
  EdgeLabel edge_label = 0;
  VertexLabel u_label = 0;  // Label for `u` if it does not exist yet.
  VertexLabel v_label = 0;  // Label for `v` if it does not exist yet.

  static EdgeOp Insert(VertexId u, VertexId v, EdgeLabel edge_label,
                       VertexLabel u_label, VertexLabel v_label) {
    return EdgeOp{Kind::kInsert, u, v, edge_label, u_label, v_label};
  }
  static EdgeOp Delete(VertexId u, VertexId v) {
    return EdgeOp{Kind::kDelete, u, v, 0, 0, 0};
  }

  friend bool operator==(const EdgeOp&, const EdgeOp&) = default;
};

// A batch of edge operations applied at one timestamp (GC in the paper).
struct GraphChange {
  std::vector<EdgeOp> ops;

  bool empty() const { return ops.empty(); }

  friend bool operator==(const GraphChange&, const GraphChange&) = default;
};

// Applies `change` to `graph`: all deletions first, then all insertions
// (the sequentialization order §III.B prescribes). Ops that do not apply
// (deleting an absent edge, inserting a duplicate, label conflicts) are
// skipped; returns the number of ops that took effect.
int ApplyChange(const GraphChange& change, Graph& graph);

// Computes a change operation that transforms `from` into `to`:
// deletions for edges only in `from`, insertions for edges only in `to`.
// Vertices present only in `to` are introduced by their incident
// insertions. Used by stream generators and by tests as a diff oracle.
GraphChange DiffGraphs(const Graph& from, const Graph& to);

}  // namespace gsps

#endif  // GSPS_GRAPH_GRAPH_CHANGE_H_
