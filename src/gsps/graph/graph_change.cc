#include "gsps/graph/graph_change.h"

namespace gsps {

int ApplyChange(const GraphChange& change, Graph& graph) {
  int applied = 0;
  for (const EdgeOp& op : change.ops) {
    if (op.kind != EdgeOp::Kind::kDelete) continue;
    if (graph.RemoveEdge(op.u, op.v)) ++applied;
  }
  for (const EdgeOp& op : change.ops) {
    if (op.kind != EdgeOp::Kind::kInsert) continue;
    if (!graph.EnsureVertex(op.u, op.u_label)) continue;
    if (!graph.EnsureVertex(op.v, op.v_label)) continue;
    if (graph.AddEdge(op.u, op.v, op.edge_label)) ++applied;
  }
  return applied;
}

GraphChange DiffGraphs(const Graph& from, const Graph& to) {
  GraphChange change;
  for (const VertexId u : from.VertexIds()) {
    for (const HalfEdge& half : from.Neighbors(u)) {
      if (half.to < u) continue;  // Visit each undirected edge once.
      const bool kept = to.HasVertex(u) && to.HasVertex(half.to) &&
                        to.HasEdge(u, half.to) &&
                        to.GetEdgeLabel(u, half.to) == half.label;
      if (!kept) change.ops.push_back(EdgeOp::Delete(u, half.to));
    }
  }
  for (const VertexId u : to.VertexIds()) {
    for (const HalfEdge& half : to.Neighbors(u)) {
      if (half.to < u) continue;
      const bool existed = from.HasVertex(u) && from.HasVertex(half.to) &&
                           from.HasEdge(u, half.to) &&
                           from.GetEdgeLabel(u, half.to) == half.label;
      if (!existed) {
        change.ops.push_back(EdgeOp::Insert(u, half.to, half.label,
                                            to.GetVertexLabel(u),
                                            to.GetVertexLabel(half.to)));
      }
    }
  }
  return change;
}

}  // namespace gsps
