#include "gsps/graph/graph_stream.h"

#include <utility>

#include "gsps/common/check.h"

namespace gsps {

GraphStream::GraphStream(Graph start) : start_(std::move(start)) {}

void GraphStream::AppendChange(GraphChange change) {
  changes_.push_back(std::move(change));
}

const GraphChange& GraphStream::ChangeAt(int t) const {
  GSPS_CHECK(t >= 1 && t < NumTimestamps());
  return changes_[static_cast<size_t>(t - 1)];
}

Graph GraphStream::MaterializeAt(int t) const {
  GSPS_CHECK(t >= 0 && t < NumTimestamps());
  Graph graph = start_;
  for (int i = 1; i <= t; ++i) {
    ApplyChange(changes_[static_cast<size_t>(i - 1)], graph);
  }
  return graph;
}

StreamCursor::StreamCursor(const GraphStream& stream)
    : stream_(&stream), current_(stream.StartGraph()) {}

bool StreamCursor::HasNext() const {
  return timestamp_ + 1 < stream_->NumTimestamps();
}

const GraphChange& StreamCursor::Advance() {
  GSPS_CHECK(HasNext());
  ++timestamp_;
  const GraphChange& change = stream_->ChangeAt(timestamp_);
  ApplyChange(change, current_);
  return change;
}

}  // namespace gsps
