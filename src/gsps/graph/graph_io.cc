#include "gsps/graph/graph_io.h"

#include <cstdio>
#include <sstream>

namespace gsps {
namespace {

// Parses records into `graph`. Stops at a "g" line (returned in `*stopped`)
// or end of input. Returns false on malformed input.
bool ParseInto(std::istringstream& in, Graph& graph, bool* stopped) {
  *stopped = false;
  std::string line;
  std::streampos before = in.tellg();
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      before = in.tellg();
      continue;
    }
    std::istringstream fields(line);
    char kind = 0;
    fields >> kind;
    if (kind == 'g') {
      // Rewind so the caller sees the separator.
      in.clear();
      in.seekg(before);
      *stopped = true;
      return true;
    }
    if (kind == 'v') {
      long long id = -1, label = 0;
      if (!(fields >> id >> label)) return false;
      if (graph.HasVertex(static_cast<VertexId>(id))) return false;
      if (!graph.EnsureVertex(static_cast<VertexId>(id),
                              static_cast<VertexLabel>(label))) {
        return false;
      }
    } else if (kind == 'e') {
      long long u = -1, v = -1, label = 0;
      if (!(fields >> u >> v >> label)) return false;
      if (!graph.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v),
                         static_cast<EdgeLabel>(label))) {
        return false;
      }
    } else {
      return false;
    }
    before = in.tellg();
  }
  return true;
}

}  // namespace

std::string FormatGraph(const Graph& graph) {
  std::string out;
  char buffer[64];
  for (const VertexId id : graph.VertexIds()) {
    std::snprintf(buffer, sizeof(buffer), "v %d %d\n", id,
                  graph.GetVertexLabel(id));
    out += buffer;
  }
  for (const VertexId id : graph.VertexIds()) {
    for (const HalfEdge& half : graph.Neighbors(id)) {
      if (half.to < id) continue;
      std::snprintf(buffer, sizeof(buffer), "e %d %d %d\n", id, half.to,
                    half.label);
      out += buffer;
    }
  }
  return out;
}

std::string FormatGraphs(const std::vector<Graph>& graphs) {
  std::string out;
  char buffer[32];
  for (size_t i = 0; i < graphs.size(); ++i) {
    std::snprintf(buffer, sizeof(buffer), "g %zu\n", i);
    out += buffer;
    out += FormatGraph(graphs[i]);
  }
  return out;
}

std::optional<Graph> ParseGraph(const std::string& text) {
  std::istringstream in(text);
  Graph graph;
  bool stopped = false;
  if (!ParseInto(in, graph, &stopped) || stopped) return std::nullopt;
  return graph;
}

std::optional<std::vector<Graph>> ParseGraphs(const std::string& text) {
  std::istringstream in(text);
  std::vector<Graph> graphs;
  std::string line;
  // Expect a "g" separator, then records.
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line[0] != 'g') return std::nullopt;
    Graph graph;
    bool stopped = false;
    if (!ParseInto(in, graph, &stopped)) return std::nullopt;
    graphs.push_back(std::move(graph));
    if (!stopped) break;
  }
  return graphs;
}

}  // namespace gsps
