#include "gsps/graph/graph_io.h"

#include <cstdio>
#include <sstream>
#include <utility>

#include "gsps/graph/io_util.h"

namespace gsps {
namespace {

using io_internal::Fail;
using io_internal::FitsLabel;
using io_internal::ValidVertexId;

// Splits `text` into lines, keeping empty lines so indices map 1:1 to
// 1-based line numbers (line i of the file is `lines[i - 1]`). CRLF line
// endings are normalized away.
std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (const char c : text) {
    if (c == '\n') {
      io_internal::StripCarriageReturn(current);
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  io_internal::StripCarriageReturn(current);
  if (!current.empty()) lines.push_back(std::move(current));
  return lines;
}

bool IsSkippable(const std::string& line) {
  return io_internal::IsBlankLine(line) || line[0] == '#';
}

// Parses one "v <id> <label>" record into `graph`.
bool ParseVertexRecord(const std::string& line, int line_number, Graph& graph,
                       IoError* error) {
  std::istringstream fields(line);
  char kind = 0;
  long long id = -1, label = 0;
  if (!(fields >> kind >> id >> label)) {
    return Fail(error, line_number, "truncated vertex record (want: v <id> <label>)");
  }
  if (!ValidVertexId(id)) {
    return Fail(error, line_number,
                "vertex id " + std::to_string(id) + " out of range [0, " +
                    std::to_string(kMaxIoVertexId) + "]");
  }
  if (!FitsLabel(label)) {
    return Fail(error, line_number, "vertex label out of 32-bit range");
  }
  if (graph.HasVertex(static_cast<VertexId>(id))) {
    return Fail(error, line_number,
                "duplicate vertex id " + std::to_string(id));
  }
  if (!graph.EnsureVertex(static_cast<VertexId>(id),
                          static_cast<VertexLabel>(label))) {
    return Fail(error, line_number,
                "vertex " + std::to_string(id) + " redeclared with a different label");
  }
  return true;
}

// Parses one "e <u> <v> <label>" record into `graph`.
bool ParseEdgeRecord(const std::string& line, int line_number, Graph& graph,
                     IoError* error) {
  std::istringstream fields(line);
  char kind = 0;
  long long u = -1, v = -1, label = 0;
  if (!(fields >> kind >> u >> v >> label)) {
    return Fail(error, line_number, "truncated edge record (want: e <u> <v> <label>)");
  }
  if (!ValidVertexId(u) || !ValidVertexId(v)) {
    return Fail(error, line_number, "edge endpoint id out of range");
  }
  if (!FitsLabel(label)) {
    return Fail(error, line_number, "edge label out of 32-bit range");
  }
  const VertexId a = static_cast<VertexId>(u);
  const VertexId b = static_cast<VertexId>(v);
  if (a == b) {
    return Fail(error, line_number, "self-loop edge " + std::to_string(u));
  }
  if (!graph.HasVertex(a) || !graph.HasVertex(b)) {
    return Fail(error, line_number,
                "edge " + std::to_string(u) + "-" + std::to_string(v) +
                    " references an undeclared vertex");
  }
  if (graph.HasEdge(a, b)) {
    return Fail(error, line_number,
                "duplicate edge " + std::to_string(u) + "-" + std::to_string(v));
  }
  if (!graph.AddEdge(a, b, static_cast<EdgeLabel>(label))) {
    return Fail(error, line_number, "invalid edge record");
  }
  return true;
}

// Parses graph records from lines [begin, end). Stops at a "g" line,
// returning its index in `*stop`; sets *stop = end when input ran out.
bool ParseInto(const std::vector<std::string>& lines, size_t begin, size_t end,
               Graph& graph, size_t* stop, IoError* error) {
  for (size_t i = begin; i < end; ++i) {
    const std::string& line = lines[i];
    if (IsSkippable(line)) continue;
    const int line_number = static_cast<int>(i) + 1;
    switch (line[0]) {
      case 'g':
        *stop = i;
        return true;
      case 'v':
        if (!ParseVertexRecord(line, line_number, graph, error)) return false;
        break;
      case 'e':
        if (!ParseEdgeRecord(line, line_number, graph, error)) return false;
        break;
      default:
        return Fail(error, line_number,
                    std::string("unknown record type '") + line[0] + "'");
    }
  }
  *stop = end;
  return true;
}

}  // namespace

std::string IoError::ToString() const {
  if (line <= 0) return message;
  return "line " + std::to_string(line) + ": " + message;
}

std::string FormatGraph(const Graph& graph) {
  std::string out;
  char buffer[64];
  for (const VertexId id : graph.VertexIds()) {
    std::snprintf(buffer, sizeof(buffer), "v %d %d\n", id,
                  graph.GetVertexLabel(id));
    out += buffer;
  }
  for (const VertexId id : graph.VertexIds()) {
    for (const HalfEdge& half : graph.Neighbors(id)) {
      if (half.to < id) continue;
      std::snprintf(buffer, sizeof(buffer), "e %d %d %d\n", id, half.to,
                    half.label);
      out += buffer;
    }
  }
  return out;
}

std::string FormatGraphs(const std::vector<Graph>& graphs) {
  std::string out;
  char buffer[32];
  for (size_t i = 0; i < graphs.size(); ++i) {
    std::snprintf(buffer, sizeof(buffer), "g %zu\n", i);
    out += buffer;
    out += FormatGraph(graphs[i]);
  }
  return out;
}

std::optional<Graph> ParseGraph(const std::string& text, IoError* error) {
  const std::vector<std::string> lines = SplitLines(text);
  Graph graph;
  size_t stop = 0;
  if (!ParseInto(lines, 0, lines.size(), graph, &stop, error)) {
    return std::nullopt;
  }
  if (stop != lines.size()) {
    Fail(error, static_cast<int>(stop) + 1,
         "unexpected 'g' separator in a single-graph input");
    return std::nullopt;
  }
  return graph;
}

std::optional<std::vector<Graph>> ParseGraphs(const std::string& text,
                                              IoError* error) {
  const std::vector<std::string> lines = SplitLines(text);
  std::vector<Graph> graphs;
  size_t i = 0;
  while (i < lines.size()) {
    if (IsSkippable(lines[i])) {
      ++i;
      continue;
    }
    if (lines[i][0] != 'g') {
      Fail(error, static_cast<int>(i) + 1,
           "expected a 'g <index>' separator before graph records");
      return std::nullopt;
    }
    Graph graph;
    size_t stop = 0;
    if (!ParseInto(lines, i + 1, lines.size(), graph, &stop, error)) {
      return std::nullopt;
    }
    graphs.push_back(std::move(graph));
    i = stop;
  }
  return graphs;
}

}  // namespace gsps
