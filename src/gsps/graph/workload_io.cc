#include "gsps/graph/workload_io.h"

#include <cstdio>
#include <sstream>
#include <utility>

#include "gsps/graph/io_util.h"
#include "gsps/graph/stream_io.h"

namespace gsps {
namespace {

using io_internal::Fail;

// One "q <i>" / "s <i>" section: header location plus body line range.
struct Section {
  char kind = 0;       // 'q' or 's'.
  long long index = -1;
  int header_line = 0;  // 1-based.
  size_t body_begin = 0, body_end = 0;  // Line indices (0-based, half-open).
};

// Joins lines [begin, end) back into one newline-terminated string.
std::string JoinLines(const std::vector<std::string>& lines, size_t begin,
                      size_t end) {
  std::string out;
  for (size_t i = begin; i < end; ++i) {
    out += lines[i];
    out += '\n';
  }
  return out;
}

}  // namespace

std::string FormatWorkload(const Workload& workload) {
  std::string out;
  char buffer[32];
  for (size_t i = 0; i < workload.queries.size(); ++i) {
    std::snprintf(buffer, sizeof(buffer), "q %zu\n", i);
    out += buffer;
    out += FormatGraph(workload.queries[i]);
  }
  for (size_t i = 0; i < workload.streams.size(); ++i) {
    std::snprintf(buffer, sizeof(buffer), "s %zu\n", i);
    out += buffer;
    out += FormatStream(workload.streams[i]);
  }
  return out;
}

std::optional<Workload> ParseWorkload(const std::string& text,
                                      IoError* error) {
  // Split keeping blank lines so indices map to 1-based file line numbers;
  // CRLF endings are normalized here so section headers and the re-joined
  // bodies fed to ParseGraph/ParseStream are both clean.
  std::vector<std::string> lines;
  {
    std::string current;
    for (const char c : text) {
      if (c == '\n') {
        io_internal::StripCarriageReturn(current);
        lines.push_back(std::move(current));
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    io_internal::StripCarriageReturn(current);
    if (!current.empty()) lines.push_back(std::move(current));
  }

  // Pass 1: locate the section headers.
  std::vector<Section> sections;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (io_internal::IsBlankLine(line) || line[0] == '#') continue;
    if (line[0] != 'q' && line[0] != 's') {
      if (sections.empty()) {
        Fail(error, static_cast<int>(i) + 1,
             "expected a 'q <index>' or 's <index>' section header");
        return std::nullopt;
      }
      continue;  // Body line of the current section.
    }
    std::istringstream fields(line);
    char kind = 0;
    long long index = -1;
    if (!(fields >> kind >> index) || index < 0) {
      Fail(error, static_cast<int>(i) + 1,
           std::string("malformed section header (want: ") + line[0] +
               " <index>)");
      return std::nullopt;
    }
    if (!sections.empty()) sections.back().body_end = i;
    sections.push_back(Section{kind, index, static_cast<int>(i) + 1, i + 1,
                               lines.size()});
  }

  // Validate header ordering: queries first, indices sequential per kind.
  Workload workload;
  long long next_query = 0, next_stream = 0;
  for (const Section& section : sections) {
    if (section.kind == 'q') {
      if (next_stream > 0) {
        Fail(error, section.header_line,
             "query section after the first stream section");
        return std::nullopt;
      }
      if (section.index != next_query) {
        Fail(error, section.header_line,
             "query index " + std::to_string(section.index) + " (expected " +
                 std::to_string(next_query) + ")");
        return std::nullopt;
      }
      ++next_query;
    } else {
      if (section.index != next_stream) {
        Fail(error, section.header_line,
             "stream index " + std::to_string(section.index) + " (expected " +
                 std::to_string(next_stream) + ")");
        return std::nullopt;
      }
      ++next_stream;
    }
  }

  // Pass 2: parse each section body with its dedicated parser, translating
  // body-relative error lines back to whole-file line numbers.
  for (const Section& section : sections) {
    const std::string body =
        JoinLines(lines, section.body_begin, section.body_end);
    IoError sub_error;
    if (section.kind == 'q') {
      std::optional<Graph> graph = ParseGraph(body, &sub_error);
      if (!graph) {
        Fail(error,
             sub_error.line > 0
                 ? static_cast<int>(section.body_begin) + sub_error.line
                 : section.header_line,
             "in query " + std::to_string(section.index) + ": " +
                 sub_error.message);
        return std::nullopt;
      }
      workload.queries.push_back(*std::move(graph));
    } else {
      std::optional<GraphStream> stream = ParseStream(body, &sub_error);
      if (!stream) {
        Fail(error,
             sub_error.line > 0
                 ? static_cast<int>(section.body_begin) + sub_error.line
                 : section.header_line,
             "in stream " + std::to_string(section.index) + ": " +
                 sub_error.message);
        return std::nullopt;
      }
      workload.streams.push_back(*std::move(stream));
    }
  }
  return workload;
}

}  // namespace gsps
