// Graph change operation streams and graph streams (Definitions 2.5, 2.6).
//
// A GraphStream is a start graph G0 plus a sequence of GraphChange batches;
// the graph at timestamp t is GC_t -> (... -> (GC_1 -> G0)). The class
// stores the change log and a cursor so callers can replay the stream one
// timestamp at a time (what the continuous engine does) or materialize the
// graph at an arbitrary timestamp (what tests and ground-truth harnesses do).

#ifndef GSPS_GRAPH_GRAPH_STREAM_H_
#define GSPS_GRAPH_GRAPH_STREAM_H_

#include <vector>

#include "gsps/graph/graph.h"
#include "gsps/graph/graph_change.h"

namespace gsps {

// A graph evolving over discrete timestamps.
class GraphStream {
 public:
  // Creates a stream whose graph at timestamp 0 is `start`.
  explicit GraphStream(Graph start);

  // Appends the change batch for the next timestamp.
  void AppendChange(GraphChange change);

  // Number of timestamps: 1 (the start graph) + number of change batches.
  int NumTimestamps() const {
    return 1 + static_cast<int>(changes_.size());
  }

  // The change applied at timestamp t (t in [1, NumTimestamps()-1]).
  const GraphChange& ChangeAt(int t) const;

  // The start graph (timestamp 0).
  const Graph& StartGraph() const { return start_; }

  // Materializes the graph at timestamp t by replaying changes 1..t.
  // O(sum of batch sizes); intended for tests and ground truth, not the
  // continuous engine hot path.
  Graph MaterializeAt(int t) const;

 private:
  Graph start_;
  std::vector<GraphChange> changes_;
};

// Replay cursor over a GraphStream. Keeps the current graph materialized
// and steps it forward one timestamp at a time.
//
// Example:
//   StreamCursor cursor(stream);
//   while (cursor.HasNext()) {
//     const GraphChange& change = cursor.Advance();
//     Process(cursor.CurrentGraph(), change);
//   }
class StreamCursor {
 public:
  // `stream` must outlive the cursor.
  explicit StreamCursor(const GraphStream& stream);

  // Current timestamp, starting at 0.
  int CurrentTimestamp() const { return timestamp_; }

  // The graph at the current timestamp.
  const Graph& CurrentGraph() const { return current_; }

  // True if a later timestamp exists.
  bool HasNext() const;

  // Applies the next change batch and returns it. Requires HasNext().
  const GraphChange& Advance();

 private:
  const GraphStream* stream_;
  Graph current_;
  int timestamp_ = 0;
};

}  // namespace gsps

#endif  // GSPS_GRAPH_GRAPH_STREAM_H_
