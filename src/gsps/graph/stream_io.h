// Plain-text serialization for graph streams (record/replay).
//
// A stream file is the start graph followed by one section per timestamp:
//
//   # comment
//   v <id> <vertex_label>          start-graph vertex
//   e <u> <v> <edge_label>         start-graph edge
//   t <timestamp>                  begins the change batch for <timestamp>
//   + <u> <v> <edge_label> <u_label> <v_label>    edge insertion
//   - <u> <v>                                     edge deletion
//
// Timestamps must be 1, 2, 3, ... in order; an empty batch is a bare
// "t <k>" line. The format round-trips exactly through Format/Parse.

#ifndef GSPS_GRAPH_STREAM_IO_H_
#define GSPS_GRAPH_STREAM_IO_H_

#include <optional>
#include <string>

#include "gsps/graph/graph_io.h"
#include "gsps/graph/graph_stream.h"

namespace gsps {

// Serializes a stream.
std::string FormatStream(const GraphStream& stream);

// Parses a stream file. Returns nullopt on malformed input (bad record
// kind, out-of-order timestamps, non-numeric or truncated fields, edge
// before its endpoints in the start graph, out-of-range vertex ids),
// filling `error` (line number + message) when provided. Accepted streams
// never trip engine-side precondition checks: every id a change batch can
// carry has been range-validated here.
std::optional<GraphStream> ParseStream(const std::string& text,
                                       IoError* error = nullptr);

}  // namespace gsps

#endif  // GSPS_GRAPH_STREAM_IO_H_
