// Labeled undirected graph (paper Definition 2.1).
//
// Vertices carry integer labels and are identified by dense non-negative
// ids; edges are unordered pairs with an integer edge label. Graphs in this
// library are small (tens to hundreds of vertices — chemical compounds,
// proximity snapshots, traffic patterns), change frequently, and are scanned
// constantly, so the representation is a dense vertex table with sorted
// adjacency vectors: cache-friendly scans, O(log degree) edge lookups, and
// cheap copies.

#ifndef GSPS_GRAPH_GRAPH_H_
#define GSPS_GRAPH_GRAPH_H_

#include <cstdint>
#include <vector>

namespace gsps {

// Vertex identifier. Dense and non-negative within a graph.
using VertexId = int32_t;
// Vertex label (e.g. atom type, device class).
using VertexLabel = int32_t;
// Edge label (e.g. bond type). Streams in the paper use a single edge label.
using EdgeLabel = int32_t;

constexpr VertexId kInvalidVertex = -1;

// One directed half of an undirected edge, as stored in adjacency lists.
struct HalfEdge {
  VertexId to = kInvalidVertex;
  EdgeLabel label = 0;

  friend bool operator==(const HalfEdge&, const HalfEdge&) = default;
};

// An undirected labeled graph.
//
// Vertex ids index a dense table; removed vertices leave tombstones so that
// ids stay stable across stream updates (required by the NNT indexes).
// All mutators keep the adjacency lists sorted by neighbor id.
class Graph {
 public:
  Graph() = default;

  // Copyable and movable: experiment harnesses snapshot stream graphs.
  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  // Adds a vertex with the given label and returns its id.
  VertexId AddVertex(VertexLabel label);

  // Ensures a vertex with id `id` exists with the given label. Grows the
  // vertex table if needed. Returns false if the vertex already exists with
  // a different label (labels are immutable, Definition 2.1).
  bool EnsureVertex(VertexId id, VertexLabel label);

  // Removes a vertex and all incident edges. Returns false if absent.
  bool RemoveVertex(VertexId id);

  // Adds the undirected edge {u, v} with the given label. Returns false and
  // leaves the graph unchanged if either endpoint is absent, u == v, or the
  // edge already exists.
  bool AddEdge(VertexId u, VertexId v, EdgeLabel label);

  // Removes the undirected edge {u, v}. Returns false if absent.
  bool RemoveEdge(VertexId u, VertexId v);

  // True if vertex `id` exists.
  bool HasVertex(VertexId id) const;

  // True if the undirected edge {u, v} exists.
  bool HasEdge(VertexId u, VertexId v) const;

  // Returns the label of the edge {u, v}; the edge must exist.
  EdgeLabel GetEdgeLabel(VertexId u, VertexId v) const;

  // Returns the label of vertex `id`; the vertex must exist.
  VertexLabel GetVertexLabel(VertexId id) const;

  // Sorted adjacency list of `id`; the vertex must exist.
  const std::vector<HalfEdge>& Neighbors(VertexId id) const;

  // Degree of `id`; the vertex must exist.
  int Degree(VertexId id) const;

  // Number of live vertices.
  int NumVertices() const { return num_vertices_; }

  // Number of undirected edges.
  int NumEdges() const { return num_edges_; }

  // One past the largest vertex id ever allocated (table size). Iterate ids
  // in [0, VertexIdBound()) and filter with HasVertex().
  VertexId VertexIdBound() const {
    return static_cast<VertexId>(vertices_.size());
  }

  // Ids of all live vertices, ascending.
  std::vector<VertexId> VertexIds() const;

  // Maximum degree over live vertices (0 for an empty graph).
  int MaxDegree() const;

  // True if the live vertices form a single connected component. An empty
  // graph is considered connected.
  bool IsConnected() const;

  // Structural equality: same live vertex ids, labels, and labeled edges.
  friend bool operator==(const Graph& a, const Graph& b);

 private:
  struct VertexSlot {
    bool present = false;
    VertexLabel label = 0;
    std::vector<HalfEdge> adjacency;
  };

  // Returns the adjacency position of `v` in `u`'s list, or -1.
  int FindHalfEdge(VertexId u, VertexId v) const;

  std::vector<VertexSlot> vertices_;
  int num_vertices_ = 0;
  int num_edges_ = 0;
};

}  // namespace gsps

#endif  // GSPS_GRAPH_GRAPH_H_
