// Plain-text serialization for a complete monitoring workload: the fixed
// query set plus every graph stream, in one self-contained file.
//
// Format: zero or more query sections followed by zero or more stream
// sections. A section header is a line reading "q <index>" (query) or
// "s <index>" (stream); indices must be 0, 1, 2, ... per kind, and all
// queries precede all streams. A query body is the graph format of
// graph_io.h ("v"/"e" records); a stream body is the stream format of
// stream_io.h ("v"/"e"/"t"/"+"/"-" records). '#' comments and blank lines
// are ignored everywhere.
//
//   # two queries, one stream
//   q 0
//   v 0 1
//   v 1 2
//   e 0 1 0
//   q 1
//   v 0 1
//   s 0
//   v 0 1
//   v 1 2
//   t 1
//   + 0 1 0 1 2
//
// The fuzz subsystem's replay files (src/gsps/fuzz/replay.h) embed this
// format under a small directive header; gsps_monitor-style tools can also
// use it to ship a whole scenario as one file.

#ifndef GSPS_GRAPH_WORKLOAD_IO_H_
#define GSPS_GRAPH_WORKLOAD_IO_H_

#include <optional>
#include <string>
#include <vector>

#include "gsps/graph/graph.h"
#include "gsps/graph/graph_io.h"
#include "gsps/graph/graph_stream.h"

namespace gsps {

// A query set plus the streams they are monitored against.
struct Workload {
  std::vector<Graph> queries;
  std::vector<GraphStream> streams;
};

// Serializes a workload. Parse(Format(w)) reproduces `w` exactly.
std::string FormatWorkload(const Workload& workload);

// Parses a workload file. Returns nullopt on malformed input — bad section
// headers, out-of-order indices, or any error the per-section graph/stream
// parsers report — filling `error` (with the line number in the full file)
// when provided.
std::optional<Workload> ParseWorkload(const std::string& text,
                                      IoError* error = nullptr);

}  // namespace gsps

#endif  // GSPS_GRAPH_WORKLOAD_IO_H_
