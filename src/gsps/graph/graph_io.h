// Plain-text graph serialization.
//
// Format (one record per line, '#'-prefixed comments ignored):
//   v <id> <vertex_label>
//   e <u> <v> <edge_label>
//
// This is the widely used "gSpan transaction" style format, convenient for
// dumping generated datasets and for examples. Multiple graphs in one file
// are separated by lines reading "g <index>".

#ifndef GSPS_GRAPH_GRAPH_IO_H_
#define GSPS_GRAPH_GRAPH_IO_H_

#include <optional>
#include <string>
#include <vector>

#include "gsps/graph/graph.h"

namespace gsps {

// Serializes one graph (without a leading "g" line).
std::string FormatGraph(const Graph& graph);

// Serializes a dataset of graphs with "g <index>" separators.
std::string FormatGraphs(const std::vector<Graph>& graphs);

// Parses a single graph serialized by FormatGraph. Returns nullopt on
// malformed input (unknown record type, edge before endpoints, duplicate
// vertex id, non-numeric field).
std::optional<Graph> ParseGraph(const std::string& text);

// Parses a dataset serialized by FormatGraphs. Returns nullopt on malformed
// input.
std::optional<std::vector<Graph>> ParseGraphs(const std::string& text);

}  // namespace gsps

#endif  // GSPS_GRAPH_GRAPH_IO_H_
