// Plain-text graph serialization.
//
// Format (one record per line, '#'-prefixed comments ignored):
//   v <id> <vertex_label>
//   e <u> <v> <edge_label>
//
// This is the widely used "gSpan transaction" style format, convenient for
// dumping generated datasets and for examples. Multiple graphs in one file
// are separated by lines reading "g <index>".
//
// All parsers in graph/ report malformed input through an optional IoError
// out-parameter carrying the 1-based line number and a human-readable
// message, so CLI tools can print "file:line: what went wrong" instead of
// a bare failure. Inputs are validated up front — vertex ids must lie in
// [0, kMaxIoVertexId], labels must fit in 32 bits — so that no record read
// from disk can trip a GSPS_CHECK later inside the engine.

#ifndef GSPS_GRAPH_GRAPH_IO_H_
#define GSPS_GRAPH_GRAPH_IO_H_

#include <optional>
#include <string>
#include <vector>

#include "gsps/graph/graph.h"

namespace gsps {

// A parse diagnostic: which line of the input was malformed and why.
// `line` is 1-based; 0 means the problem is not tied to a single line
// (e.g. truncated input).
struct IoError {
  int line = 0;
  std::string message;

  // "line <n>: <message>" (or just the message when line is 0).
  std::string ToString() const;
};

// Largest vertex id accepted from serialized input. The graphs this system
// monitors have tens to hundreds of vertices (see graph.h); the dense vertex
// table makes absurd ids an out-of-memory hazard, so parsers reject them
// instead of letting Graph::EnsureVertex allocate gigabytes.
inline constexpr VertexId kMaxIoVertexId = 2'000'000;

// Serializes one graph (without a leading "g" line).
std::string FormatGraph(const Graph& graph);

// Serializes a dataset of graphs with "g <index>" separators.
std::string FormatGraphs(const std::vector<Graph>& graphs);

// Parses a single graph serialized by FormatGraph. Returns nullopt on
// malformed input (unknown record type, edge before endpoints, duplicate
// vertex id or edge, out-of-range id, non-numeric field), filling `error`
// when provided.
std::optional<Graph> ParseGraph(const std::string& text,
                                IoError* error = nullptr);

// Parses a dataset serialized by FormatGraphs. Returns nullopt on malformed
// input, filling `error` when provided.
std::optional<std::vector<Graph>> ParseGraphs(const std::string& text,
                                              IoError* error = nullptr);

}  // namespace gsps

#endif  // GSPS_GRAPH_GRAPH_IO_H_
