#include "gsps/graph/delta_codec.h"

#include <cstdint>
#include <utility>

#include "gsps/graph/graph_change.h"
#include "gsps/graph/io_util.h"

namespace gsps {
namespace {

using io_internal::FitsLabel;
using io_internal::ValidVertexId;

constexpr char kMagic[4] = {'G', 'S', 'P', 'B'};
constexpr uint8_t kVersion = 1;
constexpr uint8_t kKindGraph = 0;
constexpr uint8_t kKindStream = 1;

// --- Encoding ---------------------------------------------------------------

void AppendVarint(std::string& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

uint64_t ZigZag(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

void AppendGraph(std::string& out, const Graph& graph) {
  const std::vector<VertexId>& ids = graph.VertexIds();  // Ascending.
  AppendVarint(out, ids.size());
  VertexId previous = 0;
  bool first = true;
  for (const VertexId id : ids) {
    AppendVarint(out, static_cast<uint64_t>(first ? id : id - previous));
    AppendVarint(out, ZigZag(graph.GetVertexLabel(id)));
    previous = id;
    first = false;
  }
  // Edge order mirrors FormatGraph: owner vertex ascending, neighbors with
  // to >= id in adjacency (ascending) order, so text and binary agree on
  // one canonical edge sequence.
  uint64_t num_edges = 0;
  for (const VertexId id : ids) {
    for (const HalfEdge& half : graph.Neighbors(id)) {
      if (half.to >= id) ++num_edges;
    }
  }
  AppendVarint(out, num_edges);
  for (const VertexId id : ids) {
    for (const HalfEdge& half : graph.Neighbors(id)) {
      if (half.to < id) continue;
      AppendVarint(out, static_cast<uint64_t>(id));
      AppendVarint(out, static_cast<uint64_t>(half.to));
      AppendVarint(out, ZigZag(half.label));
    }
  }
}

std::string EncodeWithKind(uint8_t kind) {
  std::string out(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(kind));
  return out;
}

// --- Decoding ---------------------------------------------------------------

// Cursor over the blob; every read checks bounds and records the failing
// byte offset so corruption reports point at the exact spot.
class Reader {
 public:
  Reader(std::string_view bytes, IoError* error)
      : bytes_(bytes), error_(error) {}

  size_t offset() const { return offset_; }
  bool exhausted() const { return offset_ == bytes_.size(); }

  bool Fail(const std::string& message) {
    return io_internal::Fail(
        error_, 0, "byte " + std::to_string(offset_) + ": " + message);
  }

  bool ReadByte(uint8_t* out) {
    if (offset_ >= bytes_.size()) return Fail("truncated input");
    *out = static_cast<uint8_t>(bytes_[offset_++]);
    return true;
  }

  bool ReadVarint(uint64_t* out) {
    uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (offset_ >= bytes_.size()) return Fail("truncated varint");
      const uint8_t byte = static_cast<uint8_t>(bytes_[offset_++]);
      value |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        *out = value;
        return true;
      }
    }
    return Fail("varint longer than 64 bits");
  }

  bool ReadZigZag(int64_t* out) {
    uint64_t raw = 0;
    if (!ReadVarint(&raw)) return false;
    *out = static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
    return true;
  }

 private:
  std::string_view bytes_;
  size_t offset_ = 0;
  IoError* error_;
};

bool ReadHeader(Reader& in, uint8_t expected_kind) {
  for (const char c : kMagic) {
    uint8_t byte = 0;
    if (!in.ReadByte(&byte)) return false;
    if (byte != static_cast<uint8_t>(c)) return in.Fail("bad GSPB magic");
  }
  uint8_t version = 0;
  if (!in.ReadByte(&version)) return false;
  if (version != kVersion) {
    return in.Fail("unsupported GSPB version " + std::to_string(version));
  }
  uint8_t kind = 0;
  if (!in.ReadByte(&kind)) return false;
  if (kind != expected_kind) {
    return in.Fail("GSPB kind " + std::to_string(kind) + " (expected " +
                   std::to_string(expected_kind) + ")");
  }
  return true;
}

bool ReadGraphPayload(Reader& in, Graph* graph) {
  uint64_t num_vertices = 0;
  if (!in.ReadVarint(&num_vertices)) return false;
  if (num_vertices > static_cast<uint64_t>(kMaxIoVertexId) + 1) {
    return in.Fail("vertex count " + std::to_string(num_vertices) +
                   " out of range");
  }
  int64_t id = -1;
  for (uint64_t i = 0; i < num_vertices; ++i) {
    uint64_t delta = 0;
    int64_t label = 0;
    if (!in.ReadVarint(&delta) || !in.ReadZigZag(&label)) return false;
    if (i > 0 && delta == 0) return in.Fail("duplicate vertex id");
    // First vertex: the delta IS the id (base -1 would shift it).
    id = (i == 0) ? static_cast<int64_t>(delta) : id + static_cast<int64_t>(delta);
    if (!ValidVertexId(id)) {
      return in.Fail("vertex id " + std::to_string(id) + " out of range [0, " +
                     std::to_string(kMaxIoVertexId) + "]");
    }
    if (!FitsLabel(label)) return in.Fail("vertex label out of 32-bit range");
    if (!graph->EnsureVertex(static_cast<VertexId>(id),
                             static_cast<VertexLabel>(label))) {
      return in.Fail("invalid vertex record");
    }
  }
  uint64_t num_edges = 0;
  if (!in.ReadVarint(&num_edges)) return false;
  for (uint64_t i = 0; i < num_edges; ++i) {
    uint64_t u = 0, v = 0;
    int64_t label = 0;
    if (!in.ReadVarint(&u) || !in.ReadVarint(&v) || !in.ReadZigZag(&label)) {
      return false;
    }
    if (!ValidVertexId(static_cast<long long>(u)) ||
        !ValidVertexId(static_cast<long long>(v))) {
      return in.Fail("edge endpoint id out of range");
    }
    if (!FitsLabel(label)) return in.Fail("edge label out of 32-bit range");
    const VertexId a = static_cast<VertexId>(u);
    const VertexId b = static_cast<VertexId>(v);
    if (a == b) return in.Fail("self-loop edge " + std::to_string(u));
    if (!graph->HasVertex(a) || !graph->HasVertex(b)) {
      return in.Fail("edge " + std::to_string(u) + "-" + std::to_string(v) +
                     " references an undeclared vertex");
    }
    if (graph->HasEdge(a, b)) {
      return in.Fail("duplicate edge " + std::to_string(u) + "-" +
                     std::to_string(v));
    }
    if (!graph->AddEdge(a, b, static_cast<EdgeLabel>(label))) {
      return in.Fail("invalid edge record");
    }
  }
  return true;
}

bool ReadChange(Reader& in, GraphChange* change) {
  uint64_t num_ops = 0;
  if (!in.ReadVarint(&num_ops)) return false;
  for (uint64_t i = 0; i < num_ops; ++i) {
    uint64_t tagged_u = 0, v = 0;
    if (!in.ReadVarint(&tagged_u) || !in.ReadVarint(&v)) return false;
    const bool is_delete = (tagged_u & 1) != 0;
    const uint64_t u = tagged_u >> 1;
    if (!ValidVertexId(static_cast<long long>(u)) ||
        !ValidVertexId(static_cast<long long>(v))) {
      return in.Fail("change endpoint id out of range");
    }
    if (is_delete) {
      change->ops.push_back(EdgeOp::Delete(static_cast<VertexId>(u),
                                           static_cast<VertexId>(v)));
      continue;
    }
    int64_t edge_label = 0, u_label = 0, v_label = 0;
    if (!in.ReadZigZag(&edge_label) || !in.ReadZigZag(&u_label) ||
        !in.ReadZigZag(&v_label)) {
      return false;
    }
    if (!FitsLabel(edge_label) || !FitsLabel(u_label) || !FitsLabel(v_label)) {
      return in.Fail("insertion label out of 32-bit range");
    }
    change->ops.push_back(EdgeOp::Insert(
        static_cast<VertexId>(u), static_cast<VertexId>(v),
        static_cast<EdgeLabel>(edge_label), static_cast<VertexLabel>(u_label),
        static_cast<VertexLabel>(v_label)));
  }
  return true;
}

}  // namespace

std::string EncodeGraph(const Graph& graph) {
  std::string out = EncodeWithKind(kKindGraph);
  AppendGraph(out, graph);
  return out;
}

std::string EncodeStream(const GraphStream& stream) {
  std::string out = EncodeWithKind(kKindStream);
  AppendGraph(out, stream.StartGraph());
  AppendVarint(out, static_cast<uint64_t>(stream.NumTimestamps() - 1));
  for (int t = 1; t < stream.NumTimestamps(); ++t) {
    const GraphChange& change = stream.ChangeAt(t);
    AppendVarint(out, change.ops.size());
    for (const EdgeOp& op : change.ops) {
      const bool is_delete = op.kind == EdgeOp::Kind::kDelete;
      AppendVarint(out, (static_cast<uint64_t>(op.u) << 1) |
                            static_cast<uint64_t>(is_delete));
      AppendVarint(out, static_cast<uint64_t>(op.v));
      if (is_delete) continue;
      AppendVarint(out, ZigZag(op.edge_label));
      AppendVarint(out, ZigZag(op.u_label));
      AppendVarint(out, ZigZag(op.v_label));
    }
  }
  return out;
}

std::optional<Graph> DecodeGraph(std::string_view bytes, IoError* error) {
  Reader in(bytes, error);
  Graph graph;
  if (!ReadHeader(in, kKindGraph)) return std::nullopt;
  if (!ReadGraphPayload(in, &graph)) return std::nullopt;
  if (!in.exhausted()) {
    in.Fail("trailing bytes after graph payload");
    return std::nullopt;
  }
  return graph;
}

std::optional<GraphStream> DecodeStream(std::string_view bytes,
                                        IoError* error) {
  Reader in(bytes, error);
  Graph start;
  if (!ReadHeader(in, kKindStream)) return std::nullopt;
  if (!ReadGraphPayload(in, &start)) return std::nullopt;
  uint64_t num_batches = 0;
  if (!in.ReadVarint(&num_batches)) return std::nullopt;
  GraphStream stream(std::move(start));
  for (uint64_t b = 0; b < num_batches; ++b) {
    GraphChange change;
    if (!ReadChange(in, &change)) return std::nullopt;
    stream.AppendChange(std::move(change));
  }
  if (!in.exhausted()) {
    in.Fail("trailing bytes after stream payload");
    return std::nullopt;
  }
  return stream;
}

}  // namespace gsps
