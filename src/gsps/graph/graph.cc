#include "gsps/graph/graph.h"

#include <algorithm>

#include "gsps/common/check.h"

namespace gsps {

VertexId Graph::AddVertex(VertexLabel label) {
  const VertexId id = static_cast<VertexId>(vertices_.size());
  vertices_.push_back(VertexSlot{true, label, {}});
  ++num_vertices_;
  return id;
}

bool Graph::EnsureVertex(VertexId id, VertexLabel label) {
  GSPS_CHECK(id >= 0);
  if (id >= static_cast<VertexId>(vertices_.size())) {
    vertices_.resize(static_cast<size_t>(id) + 1);
  }
  VertexSlot& slot = vertices_[static_cast<size_t>(id)];
  if (slot.present) return slot.label == label;
  slot.present = true;
  slot.label = label;
  slot.adjacency.clear();
  ++num_vertices_;
  return true;
}

bool Graph::RemoveVertex(VertexId id) {
  if (!HasVertex(id)) return false;
  VertexSlot& slot = vertices_[static_cast<size_t>(id)];
  // Remove the mirror half-edges first.
  for (const HalfEdge& half : slot.adjacency) {
    VertexSlot& other = vertices_[static_cast<size_t>(half.to)];
    auto it = std::find_if(other.adjacency.begin(), other.adjacency.end(),
                           [id](const HalfEdge& e) { return e.to == id; });
    GSPS_DCHECK(it != other.adjacency.end());
    other.adjacency.erase(it);
    --num_edges_;
  }
  slot.adjacency.clear();
  slot.present = false;
  --num_vertices_;
  return true;
}

bool Graph::AddEdge(VertexId u, VertexId v, EdgeLabel label) {
  if (u == v || !HasVertex(u) || !HasVertex(v)) return false;
  if (FindHalfEdge(u, v) >= 0) return false;
  auto insert_sorted = [this](VertexId from, VertexId to, EdgeLabel lbl) {
    std::vector<HalfEdge>& adj = vertices_[static_cast<size_t>(from)].adjacency;
    auto it = std::lower_bound(
        adj.begin(), adj.end(), to,
        [](const HalfEdge& e, VertexId id) { return e.to < id; });
    adj.insert(it, HalfEdge{to, lbl});
  };
  insert_sorted(u, v, label);
  insert_sorted(v, u, label);
  ++num_edges_;
  return true;
}

bool Graph::RemoveEdge(VertexId u, VertexId v) {
  if (!HasVertex(u) || !HasVertex(v)) return false;
  const int pos_uv = FindHalfEdge(u, v);
  if (pos_uv < 0) return false;
  const int pos_vu = FindHalfEdge(v, u);
  GSPS_DCHECK(pos_vu >= 0);
  std::vector<HalfEdge>& adj_u = vertices_[static_cast<size_t>(u)].adjacency;
  std::vector<HalfEdge>& adj_v = vertices_[static_cast<size_t>(v)].adjacency;
  adj_u.erase(adj_u.begin() + pos_uv);
  adj_v.erase(adj_v.begin() + pos_vu);
  --num_edges_;
  return true;
}

bool Graph::HasVertex(VertexId id) const {
  return id >= 0 && id < static_cast<VertexId>(vertices_.size()) &&
         vertices_[static_cast<size_t>(id)].present;
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  if (!HasVertex(u) || !HasVertex(v)) return false;
  return FindHalfEdge(u, v) >= 0;
}

EdgeLabel Graph::GetEdgeLabel(VertexId u, VertexId v) const {
  const int pos = FindHalfEdge(u, v);
  GSPS_CHECK(pos >= 0);
  return vertices_[static_cast<size_t>(u)].adjacency[static_cast<size_t>(pos)]
      .label;
}

VertexLabel Graph::GetVertexLabel(VertexId id) const {
  GSPS_CHECK(HasVertex(id));
  return vertices_[static_cast<size_t>(id)].label;
}

const std::vector<HalfEdge>& Graph::Neighbors(VertexId id) const {
  GSPS_CHECK(HasVertex(id));
  return vertices_[static_cast<size_t>(id)].adjacency;
}

int Graph::Degree(VertexId id) const {
  return static_cast<int>(Neighbors(id).size());
}

std::vector<VertexId> Graph::VertexIds() const {
  std::vector<VertexId> ids;
  ids.reserve(static_cast<size_t>(num_vertices_));
  for (VertexId id = 0; id < VertexIdBound(); ++id) {
    if (vertices_[static_cast<size_t>(id)].present) ids.push_back(id);
  }
  return ids;
}

int Graph::MaxDegree() const {
  int max_degree = 0;
  for (VertexId id = 0; id < VertexIdBound(); ++id) {
    if (!vertices_[static_cast<size_t>(id)].present) continue;
    max_degree = std::max(
        max_degree,
        static_cast<int>(vertices_[static_cast<size_t>(id)].adjacency.size()));
  }
  return max_degree;
}

bool Graph::IsConnected() const {
  if (num_vertices_ <= 1) return true;
  VertexId start = kInvalidVertex;
  for (VertexId id = 0; id < VertexIdBound(); ++id) {
    if (vertices_[static_cast<size_t>(id)].present) {
      start = id;
      break;
    }
  }
  std::vector<bool> seen(vertices_.size(), false);
  std::vector<VertexId> stack = {start};
  seen[static_cast<size_t>(start)] = true;
  int reached = 0;
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    ++reached;
    for (const HalfEdge& half : vertices_[static_cast<size_t>(v)].adjacency) {
      if (!seen[static_cast<size_t>(half.to)]) {
        seen[static_cast<size_t>(half.to)] = true;
        stack.push_back(half.to);
      }
    }
  }
  return reached == num_vertices_;
}

bool operator==(const Graph& a, const Graph& b) {
  if (a.num_vertices_ != b.num_vertices_ || a.num_edges_ != b.num_edges_) {
    return false;
  }
  const VertexId bound = std::max(a.VertexIdBound(), b.VertexIdBound());
  for (VertexId id = 0; id < bound; ++id) {
    const bool in_a = a.HasVertex(id);
    if (in_a != b.HasVertex(id)) return false;
    if (!in_a) continue;
    if (a.GetVertexLabel(id) != b.GetVertexLabel(id)) return false;
    if (a.Neighbors(id) != b.Neighbors(id)) return false;
  }
  return true;
}

int Graph::FindHalfEdge(VertexId u, VertexId v) const {
  const std::vector<HalfEdge>& adj = vertices_[static_cast<size_t>(u)].adjacency;
  auto it = std::lower_bound(
      adj.begin(), adj.end(), v,
      [](const HalfEdge& e, VertexId id) { return e.to < id; });
  if (it == adj.end() || it->to != v) return -1;
  return static_cast<int>(it - adj.begin());
}

}  // namespace gsps
