// Shared internals of the graph/ text parsers: line-numbered error
// reporting and range validation. Implementation detail of graph_io.cc,
// stream_io.cc, and workload_io.cc — not part of the public API.

#ifndef GSPS_GRAPH_IO_UTIL_H_
#define GSPS_GRAPH_IO_UTIL_H_

#include <cstdint>
#include <string>
#include <utility>

#include "gsps/graph/graph_io.h"

namespace gsps {
namespace io_internal {

// Records an error (if the caller asked for one) and returns false so call
// sites can write `return Fail(error, line, "...")`.
inline bool Fail(IoError* error, int line, std::string message) {
  if (error != nullptr) {
    error->line = line;
    error->message = std::move(message);
  }
  return false;
}

// True when `id` is usable as a vertex id read from disk.
inline bool ValidVertexId(long long id) {
  return id >= 0 && id <= static_cast<long long>(kMaxIoVertexId);
}

// True when `value` fits a 32-bit label.
inline bool FitsLabel(long long value) {
  return value >= INT32_MIN && value <= INT32_MAX;
}

// Strips one trailing '\r' in place, so files with CRLF line endings parse
// exactly like their LF twins. Applied right after line splitting in every
// text parser; without it the '\r' lands on the last field of each record
// (or turns a blank CRLF line into an "unknown record type" error).
inline void StripCarriageReturn(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

// True for lines with no content — empty or whitespace-only. Editors
// commonly leave trailing blank (or space-padded) lines; parsers treat
// them like empty lines rather than records.
inline bool IsBlankLine(const std::string& line) {
  return line.find_first_not_of(" \t") == std::string::npos;
}

}  // namespace io_internal
}  // namespace gsps

#endif  // GSPS_GRAPH_IO_UTIL_H_
