// Shared internals of the graph/ text parsers: line-numbered error
// reporting and range validation. Implementation detail of graph_io.cc,
// stream_io.cc, and workload_io.cc — not part of the public API.

#ifndef GSPS_GRAPH_IO_UTIL_H_
#define GSPS_GRAPH_IO_UTIL_H_

#include <cstdint>
#include <string>
#include <utility>

#include "gsps/graph/graph_io.h"

namespace gsps {
namespace io_internal {

// Records an error (if the caller asked for one) and returns false so call
// sites can write `return Fail(error, line, "...")`.
inline bool Fail(IoError* error, int line, std::string message) {
  if (error != nullptr) {
    error->line = line;
    error->message = std::move(message);
  }
  return false;
}

// True when `id` is usable as a vertex id read from disk.
inline bool ValidVertexId(long long id) {
  return id >= 0 && id <= static_cast<long long>(kMaxIoVertexId);
}

// True when `value` fits a 32-bit label.
inline bool FitsLabel(long long value) {
  return value >= INT32_MIN && value <= INT32_MAX;
}

}  // namespace io_internal
}  // namespace gsps

#endif  // GSPS_GRAPH_IO_UTIL_H_
