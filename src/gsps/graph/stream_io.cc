#include "gsps/graph/stream_io.h"

#include <cstdio>
#include <sstream>
#include <utility>

#include "gsps/graph/io_util.h"

namespace gsps {
namespace {

using io_internal::Fail;
using io_internal::FitsLabel;
using io_internal::ValidVertexId;

void SetFail(IoError* error, int line, const std::string& message) {
  Fail(error, line, message);
}

}  // namespace

std::string FormatStream(const GraphStream& stream) {
  std::string out = FormatGraph(stream.StartGraph());
  char buffer[96];
  for (int t = 1; t < stream.NumTimestamps(); ++t) {
    std::snprintf(buffer, sizeof(buffer), "t %d\n", t);
    out += buffer;
    for (const EdgeOp& op : stream.ChangeAt(t).ops) {
      if (op.kind == EdgeOp::Kind::kInsert) {
        std::snprintf(buffer, sizeof(buffer), "+ %d %d %d %d %d\n", op.u,
                      op.v, op.edge_label, op.u_label, op.v_label);
      } else {
        std::snprintf(buffer, sizeof(buffer), "- %d %d\n", op.u, op.v);
      }
      out += buffer;
    }
  }
  return out;
}

std::optional<GraphStream> ParseStream(const std::string& text,
                                       IoError* error) {
  std::istringstream in(text);
  Graph start;
  std::optional<GraphStream> stream;
  GraphChange batch;
  int current_timestamp = 0;
  int line_number = 0;

  auto flush_batch = [&]() {
    if (current_timestamp > 0) stream->AppendChange(std::move(batch));
    batch = GraphChange{};
  };

  std::string line;
  while (std::getline(in, line)) {
    ++line_number;
    io_internal::StripCarriageReturn(line);
    if (io_internal::IsBlankLine(line) || line[0] == '#') continue;
    std::istringstream fields(line);
    char kind = 0;
    fields >> kind;
    switch (kind) {
      case 'v': {
        if (current_timestamp != 0) {
          SetFail(error, line_number, "vertex record after the first 't' line");
          return std::nullopt;
        }
        long long id = -1, label = 0;
        if (!(fields >> id >> label)) {
          SetFail(error, line_number,
                  "truncated vertex record (want: v <id> <label>)");
          return std::nullopt;
        }
        if (!ValidVertexId(id)) {
          SetFail(error, line_number,
                  "vertex id " + std::to_string(id) + " out of range [0, " +
                      std::to_string(kMaxIoVertexId) + "]");
          return std::nullopt;
        }
        if (!FitsLabel(label)) {
          SetFail(error, line_number, "vertex label out of 32-bit range");
          return std::nullopt;
        }
        if (start.HasVertex(static_cast<VertexId>(id))) {
          SetFail(error, line_number,
                  "duplicate vertex id " + std::to_string(id));
          return std::nullopt;
        }
        if (!start.EnsureVertex(static_cast<VertexId>(id),
                                static_cast<VertexLabel>(label))) {
          SetFail(error, line_number, "invalid vertex record");
          return std::nullopt;
        }
        break;
      }
      case 'e': {
        if (current_timestamp != 0) {
          SetFail(error, line_number,
                  "edge record after the first 't' line (use '+')");
          return std::nullopt;
        }
        long long u = -1, v = -1, label = 0;
        if (!(fields >> u >> v >> label)) {
          SetFail(error, line_number,
                  "truncated edge record (want: e <u> <v> <label>)");
          return std::nullopt;
        }
        if (!ValidVertexId(u) || !ValidVertexId(v)) {
          SetFail(error, line_number, "edge endpoint id out of range");
          return std::nullopt;
        }
        if (!FitsLabel(label)) {
          SetFail(error, line_number, "edge label out of 32-bit range");
          return std::nullopt;
        }
        const VertexId a = static_cast<VertexId>(u);
        const VertexId b = static_cast<VertexId>(v);
        if (a == b) {
          SetFail(error, line_number, "self-loop edge " + std::to_string(u));
          return std::nullopt;
        }
        if (!start.HasVertex(a) || !start.HasVertex(b)) {
          SetFail(error, line_number,
                  "edge " + std::to_string(u) + "-" + std::to_string(v) +
                      " references an undeclared vertex");
          return std::nullopt;
        }
        if (start.HasEdge(a, b)) {
          SetFail(error, line_number,
                  "duplicate edge " + std::to_string(u) + "-" +
                      std::to_string(v));
          return std::nullopt;
        }
        if (!start.AddEdge(a, b, static_cast<EdgeLabel>(label))) {
          SetFail(error, line_number, "invalid edge record");
          return std::nullopt;
        }
        break;
      }
      case 't': {
        long long timestamp = -1;
        if (!(fields >> timestamp)) {
          SetFail(error, line_number, "truncated timestamp record");
          return std::nullopt;
        }
        if (timestamp != current_timestamp + 1) {
          SetFail(error, line_number,
                  "out-of-order timestamp " + std::to_string(timestamp) +
                      " (expected " + std::to_string(current_timestamp + 1) +
                      ")");
          return std::nullopt;
        }
        if (current_timestamp == 0) {
          stream.emplace(std::move(start));
        } else {
          flush_batch();
        }
        current_timestamp = static_cast<int>(timestamp);
        break;
      }
      case '+': {
        if (current_timestamp == 0) {
          SetFail(error, line_number, "insertion before the first 't' line");
          return std::nullopt;
        }
        long long u, v, edge_label, u_label, v_label;
        if (!(fields >> u >> v >> edge_label >> u_label >> v_label)) {
          SetFail(error, line_number,
                  "truncated insertion (want: + <u> <v> <edge_label> "
                  "<u_label> <v_label>)");
          return std::nullopt;
        }
        if (!ValidVertexId(u) || !ValidVertexId(v)) {
          SetFail(error, line_number,
                  "insertion endpoint id out of range [0, " +
                      std::to_string(kMaxIoVertexId) + "]");
          return std::nullopt;
        }
        if (!FitsLabel(edge_label) || !FitsLabel(u_label) ||
            !FitsLabel(v_label)) {
          SetFail(error, line_number, "insertion label out of 32-bit range");
          return std::nullopt;
        }
        batch.ops.push_back(EdgeOp::Insert(
            static_cast<VertexId>(u), static_cast<VertexId>(v),
            static_cast<EdgeLabel>(edge_label),
            static_cast<VertexLabel>(u_label),
            static_cast<VertexLabel>(v_label)));
        break;
      }
      case '-': {
        if (current_timestamp == 0) {
          SetFail(error, line_number, "deletion before the first 't' line");
          return std::nullopt;
        }
        long long u, v;
        if (!(fields >> u >> v)) {
          SetFail(error, line_number, "truncated deletion (want: - <u> <v>)");
          return std::nullopt;
        }
        if (!ValidVertexId(u) || !ValidVertexId(v)) {
          SetFail(error, line_number, "deletion endpoint id out of range");
          return std::nullopt;
        }
        batch.ops.push_back(EdgeOp::Delete(static_cast<VertexId>(u),
                                           static_cast<VertexId>(v)));
        break;
      }
      default:
        SetFail(error, line_number,
                std::string("unknown record type '") + kind + "'");
        return std::nullopt;
    }
  }
  if (current_timestamp == 0) {
    stream.emplace(std::move(start));
  } else {
    flush_batch();
  }
  return stream;
}

}  // namespace gsps
