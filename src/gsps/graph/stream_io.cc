#include "gsps/graph/stream_io.h"

#include <cstdio>
#include <sstream>
#include <utility>

#include "gsps/graph/graph_io.h"

namespace gsps {

std::string FormatStream(const GraphStream& stream) {
  std::string out = FormatGraph(stream.StartGraph());
  char buffer[96];
  for (int t = 1; t < stream.NumTimestamps(); ++t) {
    std::snprintf(buffer, sizeof(buffer), "t %d\n", t);
    out += buffer;
    for (const EdgeOp& op : stream.ChangeAt(t).ops) {
      if (op.kind == EdgeOp::Kind::kInsert) {
        std::snprintf(buffer, sizeof(buffer), "+ %d %d %d %d %d\n", op.u,
                      op.v, op.edge_label, op.u_label, op.v_label);
      } else {
        std::snprintf(buffer, sizeof(buffer), "- %d %d\n", op.u, op.v);
      }
      out += buffer;
    }
  }
  return out;
}

std::optional<GraphStream> ParseStream(const std::string& text) {
  std::istringstream in(text);
  Graph start;
  std::optional<GraphStream> stream;
  GraphChange batch;
  int current_timestamp = 0;

  auto flush_batch = [&]() {
    if (current_timestamp > 0) stream->AppendChange(std::move(batch));
    batch = GraphChange{};
  };

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    char kind = 0;
    fields >> kind;
    switch (kind) {
      case 'v': {
        if (current_timestamp != 0) return std::nullopt;
        long long id = -1, label = 0;
        if (!(fields >> id >> label)) return std::nullopt;
        if (start.HasVertex(static_cast<VertexId>(id))) return std::nullopt;
        if (!start.EnsureVertex(static_cast<VertexId>(id),
                                static_cast<VertexLabel>(label))) {
          return std::nullopt;
        }
        break;
      }
      case 'e': {
        if (current_timestamp != 0) return std::nullopt;
        long long u = -1, v = -1, label = 0;
        if (!(fields >> u >> v >> label)) return std::nullopt;
        if (!start.AddEdge(static_cast<VertexId>(u),
                           static_cast<VertexId>(v),
                           static_cast<EdgeLabel>(label))) {
          return std::nullopt;
        }
        break;
      }
      case 't': {
        long long timestamp = -1;
        if (!(fields >> timestamp)) return std::nullopt;
        if (timestamp != current_timestamp + 1) return std::nullopt;
        if (current_timestamp == 0) {
          stream.emplace(std::move(start));
        } else {
          flush_batch();
        }
        current_timestamp = static_cast<int>(timestamp);
        break;
      }
      case '+': {
        if (current_timestamp == 0) return std::nullopt;
        long long u, v, edge_label, u_label, v_label;
        if (!(fields >> u >> v >> edge_label >> u_label >> v_label)) {
          return std::nullopt;
        }
        batch.ops.push_back(EdgeOp::Insert(
            static_cast<VertexId>(u), static_cast<VertexId>(v),
            static_cast<EdgeLabel>(edge_label),
            static_cast<VertexLabel>(u_label),
            static_cast<VertexLabel>(v_label)));
        break;
      }
      case '-': {
        if (current_timestamp == 0) return std::nullopt;
        long long u, v;
        if (!(fields >> u >> v)) return std::nullopt;
        batch.ops.push_back(EdgeOp::Delete(static_cast<VertexId>(u),
                                           static_cast<VertexId>(v)));
        break;
      }
      default:
        return std::nullopt;
    }
  }
  if (current_timestamp == 0) {
    stream.emplace(std::move(start));
  } else {
    flush_batch();
  }
  return stream;
}

}  // namespace gsps
