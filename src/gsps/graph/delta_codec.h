// Compact binary serialization for graphs and graph streams ("GSPB").
//
// The wire format for the ingest front-end: a start graph plus the
// per-timestamp change batches, varint-encoded. It round-trips exactly
// with the text format in graph_io.h / stream_io.h — decoding a GSPB blob
// and re-serializing through FormatGraph/FormatStream reproduces the text
// byte for byte, and vice versa (fuzz oracle 7 enforces this) — at
// roughly a quarter of the text size and with no number re-parsing on the
// hot ingest path.
//
// Layout (all integers little-endian LEB128 varints; signed values are
// zigzag-folded first):
//
//   "GSPB" <version=1> <kind>          kind: 0 = graph, 1 = stream
//   graph payload:
//     varint num_vertices
//     per vertex, ids strictly ascending:
//       varint id_delta                 first vertex: the id itself;
//                                       later vertices: id - previous id
//       varint zigzag(vertex_label)
//     varint num_edges
//     per edge, in FormatGraph order (u ascending, then v ascending):
//       varint u, varint v, varint zigzag(edge_label)
//   stream payload (kind 1), after the graph payload:
//     varint num_batches               batch b carries timestamp b+1
//     per batch:
//       varint num_ops
//       per op, in batch order:
//         varint (u << 1) | is_delete
//         varint v
//         insertions only: varint zigzag(edge_label),
//                          varint zigzag(u_label), varint zigzag(v_label)
//
// Decoding validates exactly as the text parsers do — vertex ids in
// [0, kMaxIoVertexId], labels in 32-bit range, no duplicate/self-loop/
// dangling start-graph records — so a decoded stream can never trip an
// engine-side precondition. Errors are reported through IoError with
// line = 0 and the byte offset in the message.

#ifndef GSPS_GRAPH_DELTA_CODEC_H_
#define GSPS_GRAPH_DELTA_CODEC_H_

#include <optional>
#include <string>
#include <string_view>

#include "gsps/graph/graph_io.h"
#include "gsps/graph/graph_stream.h"

namespace gsps {

// Serializes one graph as a kind-0 GSPB blob.
std::string EncodeGraph(const Graph& graph);

// Serializes one stream (start graph + all change batches) as a kind-1
// GSPB blob.
std::string EncodeStream(const GraphStream& stream);

// Parses a kind-0 blob produced by EncodeGraph. Returns nullopt on
// malformed input (bad magic/version/kind, truncated or oversized varint,
// out-of-range id or label, duplicate vertex/edge, self-loop, edge with an
// undeclared endpoint, trailing bytes), filling `error` when provided.
std::optional<Graph> DecodeGraph(std::string_view bytes,
                                 IoError* error = nullptr);

// Parses a kind-1 blob produced by EncodeStream, with the same validation
// guarantees.
std::optional<GraphStream> DecodeStream(std::string_view bytes,
                                        IoError* error = nullptr);

}  // namespace gsps

#endif  // GSPS_GRAPH_DELTA_CODEC_H_
