#include "gsps/engine/pipelined_query_engine.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "gsps/common/check.h"
#include "gsps/common/stopwatch.h"
#include "gsps/common/thread_pool.h"

namespace gsps {

namespace {

// Batch sizes for the router's MPSC pops and the workers' lane pops: one
// mutex/atomic handshake amortized over up to this many events.
constexpr size_t kRouterBatch = 64;
constexpr size_t kWorkerBatch = 64;

}  // namespace

PipelinedQueryEngine::PipelinedQueryEngine(
    const PipelinedEngineOptions& options)
    : options_(options) {
  GSPS_CHECK(options.num_threads >= 0);
  GSPS_CHECK(options.ingest_capacity >= 1);
  GSPS_CHECK(options.lane_capacity >= 1);
  if (options_.num_threads == 0) {
    options_.num_threads = ThreadPool::HardwareThreads();
  }
}

PipelinedQueryEngine::~PipelinedQueryEngine() { Shutdown(); }

int PipelinedQueryEngine::AddQuery(const Graph& query) {
  GSPS_CHECK_MSG(!started_, "use AddQueryDynamic after Start()");
  pending_queries_.push_back(query);
  return num_queries_++;
}

int PipelinedQueryEngine::AddStream(Graph start) {
  GSPS_CHECK_MSG(!started_, "streams are fixed at Start()");
  pending_streams_.push_back(std::move(start));
  return static_cast<int>(pending_streams_.size()) - 1;
}

void PipelinedQueryEngine::Start() {
  GSPS_CHECK(!started_);
  started_ = true;
  const int num_streams = static_cast<int>(pending_streams_.size());
  const int num_shards =
      std::max(1, std::min(options_.num_threads, num_streams));

  std::vector<int64_t> weights(pending_streams_.size());
  for (size_t i = 0; i < pending_streams_.size(); ++i) {
    weights[i] = pending_streams_[i].NumEdges();
  }
  const ShardPlan plan =
      PlanShardAssignment(weights, num_shards, options_.assignment);
  stream_to_shard_ = plan.stream_to_shard;
  stream_to_local_ = plan.stream_to_local;

  // Shards and workers are constructed on the driver thread (trace buffers
  // in ascending shard order, as in the barrier engine); the heavy setup —
  // query vectors and initial NNT builds — runs on the worker threads.
  shards_.resize(static_cast<size_t>(num_shards));
  workers_.resize(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    auto& shard = shards_[static_cast<size_t>(s)];
    shard = std::make_unique<StreamShard>(options_.engine);
    if constexpr (obs::kEnabled) {
      shard->trace = obs::Tracer::Global().NewBuffer(s + 1);
    }
    shard->global_streams = plan.shard_streams[static_cast<size_t>(s)];
    shard->epoch_candidates.resize(shard->global_streams.size());

    auto& worker = workers_[static_cast<size_t>(s)];
    worker = std::make_unique<Worker>(options_.lane_capacity);
    const size_t locals = shard->global_streams.size();
    worker->pending.resize(locals);
    worker->pending_ts.assign(locals, -1);
    worker->pending_stamp.assign(locals, 0);
    worker->audit.Reset(num_streams);
  }
  ingest_ = std::make_unique<IngestQueue>(options_.ingest_capacity);
  tracker_ = CandidateTracker(num_streams);
  query_retired_.assign(static_cast<size_t>(num_queries_), false);
  num_active_queries_ = num_queries_;

  for (int s = 0; s < num_shards; ++s) {
    workers_[static_cast<size_t>(s)]->thread =
        std::thread(&PipelinedQueryEngine::WorkerLoop, this, s);
  }
  // The pending_* buffers feed the workers' shard setup; wait until every
  // worker is past setup before clearing them and opening the router.
  {
    std::unique_lock<std::mutex> lock(epoch_mutex_);
    epoch_cv_.wait(lock, [&] {
      return ready_workers_.load(std::memory_order_acquire) == num_shards;
    });
  }
  pending_queries_.clear();
  pending_streams_.clear();
  router_ = std::thread(&PipelinedQueryEngine::RouterLoop, this);

  if constexpr (obs::kEnabled) {
    obs::MetricSink sink;
    sink.Set(obs::Gauge::kEngineShards, num_shards);
    sink.Set(obs::Gauge::kEngineStreams, num_streams);
    sink.Set(obs::Gauge::kEngineQueries, num_queries_);
    sink.Set(obs::Gauge::kQueriesActive, num_queries_);
    sink.Set(obs::Gauge::kShardImbalanceRatio,
             std::llround(plan.imbalance_ratio * 1000.0));
    obs::MetricsRegistry::Global().MergeAndReset(sink);
  }

  // Epoch 0: snapshot the timestamp-0 state so reads are valid before any
  // data arrives.
  AdvanceEpoch(0);
}

bool PipelinedQueryEngine::Ingest(IngestEvent event) {
  GSPS_CHECK(started_);
  GSPS_CHECK_MSG(event.stream >= 0 && event.stream < num_streams(),
                 "Ingest: stream id out of range");
  return ingest_->Push(std::move(event));
}

void PipelinedQueryEngine::PushMarker(int32_t stream, int32_t timestamp) {
  IngestEvent marker;
  marker.stream = stream;
  marker.timestamp = timestamp;
  // Push stamps enqueue_micros with the publish time; the router forwards
  // with keep_stamp so watermark lag is measured from this instant.
  GSPS_CHECK(ingest_->Push(std::move(marker)));
}

int32_t PipelinedQueryEngine::MinWatermark() const {
  int32_t low = INT32_MAX;
  for (const auto& shard : shards_) {
    low = std::min(low, shard->watermark.load(std::memory_order_acquire));
  }
  return low;
}

void PipelinedQueryEngine::AdvanceEpoch(int32_t timestamp) {
  GSPS_CHECK(started_ && !shutdown_);
  GSPS_CHECK_MSG(timestamp > epoch_, "epoch targets must be increasing");
  PushMarker(kEpochMarkerStream, timestamp);
  std::unique_lock<std::mutex> lock(epoch_mutex_);
  epoch_cv_.wait(lock, [&] { return MinWatermark() >= timestamp; });
  epoch_ = timestamp;
}

std::vector<int> PipelinedQueryEngine::CandidatesForStream(int stream) const {
  std::vector<int> out;
  CandidatesForStream(stream, &out);
  return out;
}

void PipelinedQueryEngine::CandidatesForStream(int stream,
                                               std::vector<int>* out) const {
  GSPS_CHECK(started_);
  GSPS_CHECK(stream >= 0 && stream < num_streams());
  const StreamShard& shard =
      *shards_[static_cast<size_t>(stream_to_shard_[stream])];
  const std::vector<int>& snapshot = shard.epoch_candidates[static_cast<size_t>(
      stream_to_local_[static_cast<size_t>(stream)])];
  out->assign(snapshot.begin(), snapshot.end());
}

std::vector<std::pair<int, int>> PipelinedQueryEngine::AllCandidatePairs()
    const {
  std::vector<std::pair<int, int>> pairs;
  AllCandidatePairs(&pairs);
  return pairs;
}

void PipelinedQueryEngine::AllCandidatePairs(
    std::vector<std::pair<int, int>>* out) const {
  GSPS_CHECK(started_);
  out->clear();
  // Deterministic merge: ascending global stream, queries ascending within
  // (each snapshot is already ascending) — the sequential engine's order.
  for (int i = 0; i < num_streams(); ++i) {
    const StreamShard& shard =
        *shards_[static_cast<size_t>(stream_to_shard_[i])];
    for (const int q : shard.epoch_candidates[static_cast<size_t>(
             stream_to_local_[static_cast<size_t>(i)])]) {
      out->emplace_back(i, q);
    }
  }
}

void PipelinedQueryEngine::ObserveTransitions(int stream,
                                              std::vector<int>* current,
                                              CandidateTransitions* out) {
  GSPS_CHECK(started_);
  tracker_.Observe(stream, current, out);
}

const std::vector<int>& PipelinedQueryEngine::LastObservedCandidates(
    int stream) const {
  GSPS_CHECK(started_);
  return tracker_.LastObserved(stream);
}

bool PipelinedQueryEngine::VerifyCandidate(int stream, int query) const {
  GSPS_CHECK(started_);
  GSPS_CHECK(stream >= 0 && stream < num_streams());
  return shards_[static_cast<size_t>(stream_to_shard_[stream])]
      ->VerifyCandidate(stream_to_local_[static_cast<size_t>(stream)], query);
}

TimestampStats PipelinedQueryEngine::TakeBarrierStats() {
  GSPS_CHECK(started_);
  std::vector<TimestampStats> samples;
  samples.reserve(shards_.size());
  for (auto& shard : shards_) {
    samples.push_back(shard->epoch_stats);
    shard->epoch_stats = TimestampStats{};
  }
  return MergeParallelSamples(samples);
}

int PipelinedQueryEngine::AddQueryDynamic(const Graph& query) {
  GSPS_CHECK(started_ && !shutdown_);
  ControlOp op;
  op.add = true;
  op.query = query;
  control_ops_.push_back(std::move(op));
  const int64_t needed = static_cast<int64_t>(control_ops_.size());
  PushMarker(kControlOpStream, static_cast<int32_t>(needed - 1));
  {
    std::unique_lock<std::mutex> lock(epoch_mutex_);
    epoch_cv_.wait(lock, [&] {
      for (const auto& worker : workers_) {
        if (worker->acked_ops.load(std::memory_order_acquire) < needed) {
          return false;
        }
      }
      return true;
    });
  }
  const int engine_id = workers_.front()->last_control_slot;
  for (const auto& worker : workers_) {
    GSPS_CHECK_MSG(worker->last_control_slot == engine_id,
                   "shards disagree on the reused query slot");
  }
  num_queries_ = std::max(num_queries_, engine_id + 1);
  if (static_cast<int>(query_retired_.size()) < num_queries_) {
    query_retired_.resize(static_cast<size_t>(num_queries_), false);
  }
  query_retired_[static_cast<size_t>(engine_id)] = false;
  ++num_active_queries_;
  return engine_id;
}

void PipelinedQueryEngine::RemoveQueryDynamic(int query) {
  GSPS_CHECK(started_ && !shutdown_);
  GSPS_CHECK_MSG(query >= 0 && query < num_queries_,
                 "RemoveQueryDynamic: query id out of range");
  GSPS_CHECK_MSG(!query_retired_[static_cast<size_t>(query)],
                 "RemoveQueryDynamic: query was already removed");
  ControlOp op;
  op.query_id = query;
  control_ops_.push_back(std::move(op));
  const int64_t needed = static_cast<int64_t>(control_ops_.size());
  PushMarker(kControlOpStream, static_cast<int32_t>(needed - 1));
  {
    std::unique_lock<std::mutex> lock(epoch_mutex_);
    epoch_cv_.wait(lock, [&] {
      for (const auto& worker : workers_) {
        if (worker->acked_ops.load(std::memory_order_acquire) < needed) {
          return false;
        }
      }
      return true;
    });
  }
  query_retired_[static_cast<size_t>(query)] = true;
  --num_active_queries_;
}

void PipelinedQueryEngine::CheckChurnInvariants() const {
  GSPS_CHECK(started_);
  for (const auto& shard : shards_) {
    shard->CheckChurnInvariants();
    GSPS_CHECK(shard->num_queries() == num_queries_);
    GSPS_CHECK(shard->num_active_queries() == num_active_queries_);
  }
}

void PipelinedQueryEngine::Shutdown() {
  if (!started_ || shutdown_) return;
  shutdown_ = true;
  ingest_->Close();
  if (router_.joinable()) router_.join();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  if constexpr (obs::kEnabled) {
    obs::MetricSink sink;
    sink.Add(obs::Counter::kPipelineEventsRouted,
             events_routed_.load(std::memory_order_relaxed));
    sink.Add(obs::Counter::kPipelineMarkersBroadcast,
             markers_broadcast_.load(std::memory_order_relaxed));
    const IngestQueueStats stats = ingest_->Stats();
    sink.Add(obs::Counter::kIngestAccepted, stats.accepted);
    sink.Add(obs::Counter::kIngestDelivered, stats.delivered);
    sink.Add(obs::Counter::kIngestProducerWaits, stats.producer_waits);
    sink.Set(obs::Gauge::kIngestQueueDepth, stats.depth_high_water);
    obs::MetricsRegistry::Global().MergeAndReset(sink);
  }
}

const Graph& PipelinedQueryEngine::StreamGraph(int stream) const {
  GSPS_CHECK(started_);
  GSPS_CHECK(stream >= 0 && stream < num_streams());
  return shards_[static_cast<size_t>(stream_to_shard_[stream])]->StreamGraph(
      stream_to_local_[static_cast<size_t>(stream)]);
}

const Graph& PipelinedQueryEngine::QueryGraph(int query) const {
  GSPS_CHECK(started_);
  return shards_.front()->QueryGraph(query);
}

PipelinedQueryEngine::LaneReport PipelinedQueryEngine::ReportLane(
    int shard) const {
  GSPS_CHECK(shard >= 0 && shard < num_shards());
  const Worker& worker = *workers_[static_cast<size_t>(shard)];
  LaneReport report;
  report.lane = worker.lane.Stats();
  report.applied_batches = worker.applied_batches;
  report.applied_events = worker.applied_events;
  report.coalesced_events = worker.coalesced_events;
  report.order_violations = worker.audit.violations();
  report.steady_allocs = worker.steady_allocs;
  report.watermark = shards_[static_cast<size_t>(shard)]->watermark.load(
      std::memory_order_acquire);
  report.e2e_micros = worker.e2e;
  report.watermark_lag_micros = worker.lag;
  return report;
}

// --- Router ----------------------------------------------------------------

void PipelinedQueryEngine::RouterLoop() {
  std::vector<IngestEvent> batch;
  batch.reserve(kRouterBatch);
  while (ingest_->PopBatch(&batch, kRouterBatch) > 0) {
    for (IngestEvent& event : batch) {
      if (event.stream < 0) {
        // Epoch/control markers fan out to every lane. Lane FIFO then
        // guarantees each worker sees the marker after everything routed
        // before it.
        markers_broadcast_.fetch_add(1, std::memory_order_relaxed);
        for (auto& worker : workers_) {
          IngestEvent copy = event;
          copy.keep_stamp = true;
          GSPS_CHECK(worker->lane.Push(std::move(copy)));
        }
      } else {
        events_routed_.fetch_add(1, std::memory_order_relaxed);
        const int shard = stream_to_shard_[static_cast<size_t>(event.stream)];
        // keep_stamp: the producer's enqueue stamp is the e2e latency
        // baseline; the second hop must not re-stamp it.
        event.keep_stamp = true;
        GSPS_CHECK(
            workers_[static_cast<size_t>(shard)]->lane.Push(std::move(event)));
      }
    }
  }
  // Producer side closed and drained: close the lanes so workers exit
  // after draining what they already received.
  for (auto& worker : workers_) worker->lane.Close();
}

// --- Worker ----------------------------------------------------------------

void PipelinedQueryEngine::FlushPending(Worker& worker, StreamShard& shard,
                                        int local) {
  const int global = shard.global_streams[static_cast<size_t>(local)];
  worker.audit.ObserveInOrder(global,
                              worker.pending_ts[static_cast<size_t>(local)]);
  Stopwatch watch;
  shard.ApplyChange(local, worker.pending[static_cast<size_t>(local)]);
  const double elapsed = watch.ElapsedMillis();
  shard.pending.update_millis += elapsed;
  shard.pending.busy_millis += elapsed;
  const int64_t e2e = obs::MonotonicMicros() -
                      worker.pending_stamp[static_cast<size_t>(local)];
  worker.e2e.Observe(e2e);
  GSPS_OBS_OBSERVE(Hist::kIngestE2eMicros, e2e);
  ++worker.applied_batches;
  worker.pending[static_cast<size_t>(local)].ops.clear();
  worker.pending_ts[static_cast<size_t>(local)] = -1;
}

void PipelinedQueryEngine::FlushAllPending(Worker& worker,
                                           StreamShard& shard) {
  for (size_t local = 0; local < worker.pending_ts.size(); ++local) {
    if (worker.pending_ts[local] >= 0) {
      FlushPending(worker, shard, static_cast<int>(local));
    }
  }
}

void PipelinedQueryEngine::HandleDataEvent(Worker& worker, StreamShard& shard,
                                           IngestEvent& event) {
  const size_t local =
      static_cast<size_t>(stream_to_local_[static_cast<size_t>(event.stream)]);
  ++worker.applied_events;
  if (worker.pending_ts[local] == event.timestamp) {
    // A later fragment of the same (stream, timestamp) batch: merge before
    // NNT maintenance so the deletions-first protocol sees one batch.
    std::vector<EdgeOp>& ops = worker.pending[local].ops;
    ops.insert(ops.end(), event.change.ops.begin(), event.change.ops.end());
    worker.pending_stamp[local] =
        std::min(worker.pending_stamp[local], event.enqueue_micros);
    ++worker.coalesced_events;
    GSPS_OBS_COUNT(Counter::kPipelineCoalescedDeltas, 1);
    return;
  }
  if (worker.pending_ts[local] >= 0) {
    FlushPending(worker, shard, static_cast<int>(local));
  }
  // Copy into the retained buffer (ops are PODs) instead of stealing the
  // event's vector: the buffer's warmed capacity is what keeps the steady
  // worker loop allocation-free.
  std::vector<EdgeOp>& ops = worker.pending[local].ops;
  ops.assign(event.change.ops.begin(), event.change.ops.end());
  worker.pending_ts[local] = event.timestamp;
  worker.pending_stamp[local] = event.enqueue_micros;
}

void PipelinedQueryEngine::HandleMarker(Worker& worker, StreamShard& shard,
                                        const IngestEvent& marker) {
  FlushAllPending(worker, shard);
  // Snapshot each local stream's candidates for the epoch readers.
  Stopwatch watch;
  int64_t candidates = 0;
  for (size_t local = 0; local < shard.global_streams.size(); ++local) {
    shard.CandidatesForStream(static_cast<int>(local),
                              &shard.epoch_candidates[local]);
    candidates += static_cast<int64_t>(shard.epoch_candidates[local].size());
  }
  const double elapsed = watch.ElapsedMillis();
  shard.pending.join_millis += elapsed;
  shard.pending.busy_millis += elapsed;
  shard.pending.candidate_pairs += candidates;
  // Fold this epoch's sample into the snapshot TakeBarrierStats drains;
  // shard.pending restarts for the next epoch.
  shard.epoch_stats.timestamp = marker.timestamp;
  shard.epoch_stats.candidate_pairs += shard.pending.candidate_pairs;
  shard.epoch_stats.total_pairs =
      static_cast<int64_t>(shard.global_streams.size()) * shard.num_queries();
  shard.epoch_stats.update_millis += shard.pending.update_millis;
  shard.epoch_stats.join_millis += shard.pending.join_millis;
  shard.epoch_stats.busy_millis += shard.pending.busy_millis;
  shard.pending = TimestampStats{};

  const int64_t lag = obs::MonotonicMicros() - marker.enqueue_micros;
  worker.lag.Observe(lag);
  // The steady-allocation interval covers everything since the previous
  // marker's bookkeeping — pop, coalesce, ApplyChange, flush, and this
  // epoch's snapshot — but excludes the metrics merge below (obs
  // infrastructure, not the worker loop).
  if (options_.alloc_probe != nullptr) {
    const int64_t probe = options_.alloc_probe();
    if (worker.epochs_seen >= options_.alloc_warmup_epochs) {
      worker.steady_allocs += probe - worker.last_probe;
    }
  }
  ++worker.epochs_seen;
  if constexpr (obs::kEnabled) {
    GSPS_OBS_OBSERVE(Hist::kPipelineWatermarkLagMicros, lag);
    GSPS_OBS_GAUGE_SET(Gauge::kPipelineLaneDepth,
                       worker.lane.Stats().depth_high_water);
    shard.FlushAttribution();
    obs::MetricsRegistry::Global().MergeAndReset(shard.sink);
  }

  // Publish only after every snapshot write above: the driver's acquire
  // load of the watermark is what makes them visible.
  shard.watermark.store(marker.timestamp, std::memory_order_release);
  { std::lock_guard<std::mutex> lock(epoch_mutex_); }
  epoch_cv_.notify_all();
  if (options_.alloc_probe != nullptr) {
    worker.last_probe = options_.alloc_probe();
  }
}

void PipelinedQueryEngine::HandleControlOp(Worker& worker, StreamShard& shard,
                                           const IngestEvent& event) {
  // Pending data precedes the op in this shard's history; flush so the op
  // lands at the same point on every shard.
  FlushAllPending(worker, shard);
  const size_t index = static_cast<size_t>(event.timestamp);
  const ControlOp& op = control_ops_[index];
  int slot = -1;
  if (op.add) {
    slot = shard.AddQueryDynamic(op.query);
  } else {
    shard.RemoveQueryDynamic(op.query_id);
  }
  worker.last_control_slot = slot;
  worker.acked_ops.store(static_cast<int64_t>(index) + 1,
                         std::memory_order_release);
  { std::lock_guard<std::mutex> lock(epoch_mutex_); }
  epoch_cv_.notify_all();
}

void PipelinedQueryEngine::WorkerLoop(int s) {
  StreamShard& shard = *shards_[static_cast<size_t>(s)];
  Worker& worker = *workers_[static_cast<size_t>(s)];
  // Shard setup runs here so it is parallel across workers, like the
  // barrier engine's setup ParallelFor.
  for (const Graph& query : pending_queries_) shard.AddQuery(query);
  for (const int i : shard.global_streams) {
    shard.AddStream(pending_streams_[static_cast<size_t>(i)]);
  }
  shard.Start();
  ready_workers_.fetch_add(1, std::memory_order_release);
  { std::lock_guard<std::mutex> lock(epoch_mutex_); }
  epoch_cv_.notify_all();

  std::optional<obs::ScopedObsContext> obs_scope;
  if constexpr (obs::kEnabled) obs_scope.emplace(&shard.sink, shard.trace);
  if (options_.alloc_probe != nullptr) {
    worker.last_probe = options_.alloc_probe();
  }
  std::vector<IngestEvent> batch;
  batch.reserve(kWorkerBatch);
  while (worker.lane.PopBatch(&batch, kWorkerBatch) > 0) {
    for (IngestEvent& event : batch) {
      if (event.stream == kEpochMarkerStream) {
        HandleMarker(worker, shard, event);
      } else if (event.stream == kControlOpStream) {
        HandleControlOp(worker, shard, event);
      } else {
        HandleDataEvent(worker, shard, event);
      }
    }
  }
  // Lane closed and drained. Apply any tail batches never covered by a
  // marker so every accepted event reaches the shard (lossless shutdown).
  FlushAllPending(worker, shard);
  if constexpr (obs::kEnabled) {
    shard.FlushAttribution();
    obs::MetricsRegistry::Global().MergeAndReset(shard.sink);
  }
}

}  // namespace gsps
