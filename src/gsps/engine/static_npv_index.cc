#include "gsps/engine/static_npv_index.h"

#include <algorithm>
#include <unordered_map>

#include "gsps/common/check.h"
#include "gsps/iso/subgraph_isomorphism.h"
#include "gsps/nnt/nnt_set.h"

namespace gsps {
namespace {

// Component-wise maximum of sparse vectors.
Npv ComponentMax(const std::vector<Npv>& vectors) {
  std::unordered_map<DimId, int32_t> maxima;
  for (const Npv& vector : vectors) {
    for (const NpvEntry& entry : vector.entries()) {
      int32_t& value = maxima[entry.dim];
      value = std::max(value, entry.count);
    }
  }
  return Npv::FromMap(maxima);
}

}  // namespace

StaticNpvIndex::StaticNpvIndex(const std::vector<Graph>& database, int depth)
    : depth_(depth), graphs_(database) {
  GSPS_CHECK(depth >= 1);
  entries_.reserve(graphs_.size());
  for (const Graph& graph : graphs_) {
    NntSet nnts(depth_, &dimensions_);
    nnts.Build(graph);
    GraphEntry entry;
    for (const VertexId root : nnts.Roots()) {
      entry.vectors.push_back(nnts.NpvOf(root));
    }
    entry.dimension_max = ComponentMax(entry.vectors);
    entries_.push_back(std::move(entry));
  }
}

std::vector<int> StaticNpvIndex::CandidateGraphsFor(const Graph& query) const {
  NntSet query_nnts(depth_, &dimensions_);
  query_nnts.Build(query);
  std::vector<Npv> query_vectors;
  for (const VertexId root : query_nnts.Roots()) {
    query_vectors.push_back(query_nnts.NpvOf(root));
  }

  std::vector<int> candidates;
  for (size_t i = 0; i < entries_.size(); ++i) {
    const GraphEntry& entry = entries_[i];
    if (query_vectors.empty()) {
      candidates.push_back(static_cast<int>(i));  // Empty query: vacuous.
      continue;
    }
    if (entry.vectors.empty()) continue;
    bool all_covered = true;
    for (const Npv& query_vector : query_vectors) {
      // Cheap rejection: the per-dimension maximum must dominate before any
      // individual vector can.
      if (!entry.dimension_max.Dominates(query_vector)) {
        all_covered = false;
        break;
      }
      bool covered = false;
      for (const Npv& data_vector : entry.vectors) {
        if (data_vector.Dominates(query_vector)) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        all_covered = false;
        break;
      }
    }
    if (all_covered) candidates.push_back(static_cast<int>(i));
  }
  return candidates;
}

std::vector<int> StaticNpvIndex::MatchingGraphsFor(const Graph& query) const {
  std::vector<int> matches;
  for (const int i : CandidateGraphsFor(query)) {
    if (IsSubgraphIsomorphic(query, graphs_[static_cast<size_t>(i)])) {
      matches.push_back(i);
    }
  }
  return matches;
}

}  // namespace gsps
