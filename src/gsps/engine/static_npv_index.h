// Static-database NPV search (the paper's §V.A setting, packaged).
//
// The streaming engine answers "which queries match stream i"; the static
// experiments ask the transposed question over a fixed database: "which
// database graphs may contain this query?". This facade indexes a graph
// database once (NNTs + NPVs per graph) and filters ad-hoc queries against
// it — the NPV counterpart of GraphGrepFilter::IndexDatabase and
// GindexFilter::BuildIndex, and the class a user doing plain (non-stream)
// subgraph search would reach for.

#ifndef GSPS_ENGINE_STATIC_NPV_INDEX_H_
#define GSPS_ENGINE_STATIC_NPV_INDEX_H_

#include <memory>
#include <vector>

#include "gsps/graph/graph.h"
#include "gsps/nnt/dimension.h"
#include "gsps/nnt/npv.h"

namespace gsps {

class StaticNpvIndex {
 public:
  // Builds NNTs of every database graph at the given depth (the paper's
  // recommendation is 3).
  StaticNpvIndex(const std::vector<Graph>& database, int depth);

  StaticNpvIndex(const StaticNpvIndex&) = delete;
  StaticNpvIndex& operator=(const StaticNpvIndex&) = delete;

  // Indices of database graphs that may contain `query` (Lemma 4.2 filter),
  // ascending. No false negatives; verify survivors with
  // IsSubgraphIsomorphic for exact answers.
  std::vector<int> CandidateGraphsFor(const Graph& query) const;

  // Filter + exact verification in one call.
  std::vector<int> MatchingGraphsFor(const Graph& query) const;

  int depth() const { return depth_; }
  int num_graphs() const { return static_cast<int>(graphs_.size()); }

 private:
  // Per-graph vertex NPVs, plus per-graph per-dimension maxima for a cheap
  // first rejection (a query entry exceeding the graph's max in that
  // dimension can never be dominated).
  struct GraphEntry {
    std::vector<Npv> vectors;
    Npv dimension_max;  // Component-wise maximum over `vectors`.
  };

  int depth_;
  // The interner must outlive the NPVs; queries share it so their vectors
  // are comparable.
  mutable DimensionTable dimensions_;
  std::vector<Graph> graphs_;
  std::vector<GraphEntry> entries_;
};

}  // namespace gsps

#endif  // GSPS_ENGINE_STATIC_NPV_INDEX_H_
