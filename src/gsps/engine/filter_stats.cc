#include "gsps/engine/filter_stats.h"

#include <algorithm>

namespace gsps {

TimestampStats MergeParallelSamples(const std::vector<TimestampStats>& shards) {
  // Zero shards (an engine with no streams, or a barrier that recorded
  // nothing) merges to the empty sample: all-zero counts, no ground truth.
  if (shards.empty()) return TimestampStats{};
  TimestampStats merged;
  merged.timestamp = shards.front().timestamp;
  merged.true_pairs = 0;
  for (const TimestampStats& s : shards) {
    merged.candidate_pairs += s.candidate_pairs;
    merged.total_pairs += s.total_pairs;
    merged.update_millis = std::max(merged.update_millis, s.update_millis);
    merged.join_millis = std::max(merged.join_millis, s.join_millis);
    merged.busy_millis += s.busy_millis;
    if (merged.true_pairs >= 0) {
      merged.true_pairs = s.true_pairs < 0 ? -1 : merged.true_pairs + s.true_pairs;
    }
  }
  return merged;
}

void StatsAccumulator::Add(const TimestampStats& stats) {
  samples_.push_back(stats);
}

double StatsAccumulator::AvgCandidateRatio() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const TimestampStats& s : samples_) {
    if (s.total_pairs > 0) {
      sum += static_cast<double>(s.candidate_pairs) /
             static_cast<double>(s.total_pairs);
    }
  }
  return sum / static_cast<double>(samples_.size());
}

double StatsAccumulator::AvgCostMillis() const {
  return AvgUpdateMillis() + AvgJoinMillis();
}

double StatsAccumulator::AvgUpdateMillis() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const TimestampStats& s : samples_) sum += s.update_millis;
  return sum / static_cast<double>(samples_.size());
}

double StatsAccumulator::AvgJoinMillis() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const TimestampStats& s : samples_) sum += s.join_millis;
  return sum / static_cast<double>(samples_.size());
}

double StatsAccumulator::AvgBusyMillis() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const TimestampStats& s : samples_) sum += s.busy_millis;
  return sum / static_cast<double>(samples_.size());
}

double StatsAccumulator::CostPercentileMillis(double pct) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> costs;
  costs.reserve(samples_.size());
  for (const TimestampStats& s : samples_) {
    costs.push_back(s.update_millis + s.join_millis);
  }
  std::sort(costs.begin(), costs.end());
  // Nearest-rank: the smallest cost with at least pct% of samples at or
  // below it. pct=100 is the maximum, pct->0 clamps to the minimum.
  const double rank = pct / 100.0 * static_cast<double>(costs.size());
  size_t index = static_cast<size_t>(rank);
  if (static_cast<double>(index) < rank) ++index;  // ceil
  if (index > 0) --index;                          // 1-based -> 0-based
  return costs[std::min(index, costs.size() - 1)];
}

double StatsAccumulator::MaxCostMillis() const {
  return CostPercentileMillis(100.0);
}

double StatsAccumulator::AvgPrecision() const {
  double sum = 0.0;
  int64_t counted = 0;
  for (const TimestampStats& s : samples_) {
    if (s.true_pairs < 0) continue;
    ++counted;
    if (s.candidate_pairs == 0) {
      sum += 1.0;
    } else {
      sum += static_cast<double>(s.true_pairs) /
             static_cast<double>(s.candidate_pairs);
    }
  }
  if (counted == 0) return 0.0;
  return sum / static_cast<double>(counted);
}

bool StatsAccumulator::CandidatesNeverBelowTruth() const {
  for (const TimestampStats& s : samples_) {
    if (s.true_pairs >= 0 && s.candidate_pairs < s.true_pairs) return false;
  }
  return true;
}

}  // namespace gsps
