#include "gsps/engine/filter_stats.h"

namespace gsps {

void StatsAccumulator::Add(const TimestampStats& stats) {
  samples_.push_back(stats);
}

double StatsAccumulator::AvgCandidateRatio() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const TimestampStats& s : samples_) {
    if (s.total_pairs > 0) {
      sum += static_cast<double>(s.candidate_pairs) /
             static_cast<double>(s.total_pairs);
    }
  }
  return sum / static_cast<double>(samples_.size());
}

double StatsAccumulator::AvgCostMillis() const {
  return AvgUpdateMillis() + AvgJoinMillis();
}

double StatsAccumulator::AvgUpdateMillis() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const TimestampStats& s : samples_) sum += s.update_millis;
  return sum / static_cast<double>(samples_.size());
}

double StatsAccumulator::AvgJoinMillis() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const TimestampStats& s : samples_) sum += s.join_millis;
  return sum / static_cast<double>(samples_.size());
}

double StatsAccumulator::AvgPrecision() const {
  double sum = 0.0;
  int64_t counted = 0;
  for (const TimestampStats& s : samples_) {
    if (s.true_pairs < 0) continue;
    ++counted;
    if (s.candidate_pairs == 0) {
      sum += 1.0;
    } else {
      sum += static_cast<double>(s.true_pairs) /
             static_cast<double>(s.candidate_pairs);
    }
  }
  if (counted == 0) return 0.0;
  return sum / static_cast<double>(counted);
}

bool StatsAccumulator::CandidatesNeverBelowTruth() const {
  for (const TimestampStats& s : samples_) {
    if (s.true_pairs >= 0 && s.candidate_pairs < s.true_pairs) return false;
  }
  return true;
}

}  // namespace gsps
