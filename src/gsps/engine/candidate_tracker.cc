#include "gsps/engine/candidate_tracker.h"

#include <utility>

#include "gsps/common/check.h"
#include "gsps/obs/obs.h"

namespace gsps {

namespace {

// Merge-diff of two ascending sequences into transitions (appended to the
// cleared *out).
void DiffInto(const std::vector<int>& previous, const std::vector<int>& current,
              CandidateTransitions* out) {
  out->clear();
  size_t p = 0, c = 0;
  while (p < previous.size() || c < current.size()) {
    if (c == current.size() ||
        (p < previous.size() && previous[p] < current[c])) {
      out->disappeared.push_back(previous[p]);
      ++p;
    } else if (p == previous.size() || current[c] < previous[p]) {
      out->appeared.push_back(current[c]);
      ++c;
    } else {
      ++p;
      ++c;
    }
  }
  GSPS_OBS_COUNT(Counter::kTrackerObservations, 1);
  GSPS_OBS_COUNT(Counter::kTrackerAppeared,
                 static_cast<int64_t>(out->appeared.size()));
  GSPS_OBS_COUNT(Counter::kTrackerDisappeared,
                 static_cast<int64_t>(out->disappeared.size()));
}

void CheckAscending(const std::vector<int>& current) {
#ifndef NDEBUG
  for (size_t i = 1; i < current.size(); ++i) {
    GSPS_DCHECK(current[i - 1] < current[i]);
  }
#else
  (void)current;
#endif
}

}  // namespace

CandidateTracker::CandidateTracker(int num_streams)
    : last_(static_cast<size_t>(num_streams)) {
  GSPS_CHECK(num_streams >= 0);
}

CandidateTransitions CandidateTracker::Observe(
    int stream, const std::vector<int>& current) {
  GSPS_CHECK(stream >= 0 && stream < static_cast<int>(last_.size()));
  GSPS_OBS_STAGE(Stage::kTrackerObserve, stream);
  std::vector<int>& previous = last_[static_cast<size_t>(stream)];
  CheckAscending(current);
  CandidateTransitions transitions;
  DiffInto(previous, current, &transitions);
  previous = current;
  return transitions;
}

void CandidateTracker::Observe(int stream, std::vector<int>* current,
                               CandidateTransitions* out) {
  GSPS_CHECK(stream >= 0 && stream < static_cast<int>(last_.size()));
  GSPS_OBS_STAGE(Stage::kTrackerObserve, stream);
  std::vector<int>& previous = last_[static_cast<size_t>(stream)];
  CheckAscending(*current);
  DiffInto(previous, *current, out);
  // Swap instead of copy: the tracker takes the new observation's buffer,
  // the caller gets the stale one back to refill next timestamp.
  std::swap(previous, *current);
}

const std::vector<int>& CandidateTracker::LastObserved(int stream) const {
  GSPS_CHECK(stream >= 0 && stream < static_cast<int>(last_.size()));
  return last_[static_cast<size_t>(stream)];
}

}  // namespace gsps
