#include "gsps/engine/candidate_tracker.h"

#include "gsps/common/check.h"
#include "gsps/obs/obs.h"

namespace gsps {

CandidateTracker::CandidateTracker(int num_streams)
    : last_(static_cast<size_t>(num_streams)) {
  GSPS_CHECK(num_streams >= 0);
}

CandidateTransitions CandidateTracker::Observe(
    int stream, const std::vector<int>& current) {
  GSPS_CHECK(stream >= 0 && stream < static_cast<int>(last_.size()));
  std::vector<int>& previous = last_[static_cast<size_t>(stream)];
#ifndef NDEBUG
  for (size_t i = 1; i < current.size(); ++i) {
    GSPS_DCHECK(current[i - 1] < current[i]);
  }
#endif

  CandidateTransitions transitions;
  // Merge-diff of two ascending sequences.
  size_t p = 0, c = 0;
  while (p < previous.size() || c < current.size()) {
    if (c == current.size() ||
        (p < previous.size() && previous[p] < current[c])) {
      transitions.disappeared.push_back(previous[p]);
      ++p;
    } else if (p == previous.size() || current[c] < previous[p]) {
      transitions.appeared.push_back(current[c]);
      ++c;
    } else {
      ++p;
      ++c;
    }
  }
  previous = current;
  GSPS_OBS_COUNT(Counter::kTrackerObservations, 1);
  GSPS_OBS_COUNT(Counter::kTrackerAppeared,
                 static_cast<int64_t>(transitions.appeared.size()));
  GSPS_OBS_COUNT(Counter::kTrackerDisappeared,
                 static_cast<int64_t>(transitions.disappeared.size()));
  return transitions;
}

const std::vector<int>& CandidateTracker::LastObserved(int stream) const {
  GSPS_CHECK(stream >= 0 && stream < static_cast<int>(last_.size()));
  return last_[static_cast<size_t>(stream)];
}

}  // namespace gsps
