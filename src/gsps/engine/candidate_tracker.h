// Candidate-transition tracking: turns per-timestamp candidate sets into
// appearance/disappearance events.
//
// The paper's problem statement asks to "report the appearances of certain
// subgraph patterns ... at each timestamp"; a monitoring deployment alerts
// on *transitions* — a pattern that may have just appeared in a stream, or
// one that just stopped matching — rather than re-reporting the steady
// state. The tracker diffs successive candidate sets per stream.

#ifndef GSPS_ENGINE_CANDIDATE_TRACKER_H_
#define GSPS_ENGINE_CANDIDATE_TRACKER_H_

#include <vector>

namespace gsps {

// Transition events for one stream at one timestamp.
struct CandidateTransitions {
  // Queries that are candidates now but were not at the previous
  // observation (possible pattern appearances). Ascending.
  std::vector<int> appeared;
  // Queries that were candidates previously but are not anymore
  // (pattern can no longer match). Ascending.
  std::vector<int> disappeared;

  bool empty() const { return appeared.empty() && disappeared.empty(); }
  void clear() {
    appeared.clear();
    disappeared.clear();
  }
};

// Diffs successive candidate sets for a fixed set of streams.
//
// Example (driving an engine):
//   CandidateTracker tracker(engine.num_streams());
//   ... per timestamp, per stream i:
//   const CandidateTransitions events =
//       tracker.Observe(i, engine.CandidatesForStream(i));
//   for (int q : events.appeared) Alert(i, q);
class CandidateTracker {
 public:
  explicit CandidateTracker(int num_streams);

  // Records the current candidate set (ascending query indices) of
  // `stream` and returns the diff against the previous observation.
  // The first observation reports every candidate as appeared.
  CandidateTransitions Observe(int stream, const std::vector<int>& current);

  // Allocation-free variant for steady-state monitoring loops: swaps
  // *current into the tracker's last-observed slot (leaving the previous
  // observation's buffer in *current for the caller to refill) and writes
  // the diff into *out, reusing both buffers' capacity.
  void Observe(int stream, std::vector<int>* current,
               CandidateTransitions* out);

  // The most recently observed candidate set of `stream`.
  const std::vector<int>& LastObserved(int stream) const;

 private:
  std::vector<std::vector<int>> last_;
};

}  // namespace gsps

#endif  // GSPS_ENGINE_CANDIDATE_TRACKER_H_
