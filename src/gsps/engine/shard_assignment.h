// Stream -> shard placement shared by the barrier and pipelined engines.
//
// Round-robin (the historical default) interleaves stream ids across
// shards and ignores stream size entirely: under a skewed (Zipf) stream
// population one shard can end up with several of the heavy streams and
// every barrier waits for it. The LPT (largest-processing-time-first)
// policy greedily places the heaviest remaining stream on the lightest
// shard, the classic 4/3-approximation to makespan scheduling, using the
// initial graph edge counts as weights.
//
// Both policies are deterministic (ties broken by lowest stream/shard id)
// and both report the resulting imbalance so the placement quality is
// observable: imbalance_ratio = max shard weight / mean shard weight, 1.0
// when perfectly balanced, exported as the gsps_shard_imbalance_ratio
// gauge in millis.

#ifndef GSPS_ENGINE_SHARD_ASSIGNMENT_H_
#define GSPS_ENGINE_SHARD_ASSIGNMENT_H_

#include <cstdint>
#include <vector>

namespace gsps {

enum class ShardAssignment {
  kRoundRobin,  // stream i -> shard i % num_shards.
  kLpt,         // Greedy largest-processing-time-first by initial edges.
};

struct ShardPlan {
  std::vector<int> stream_to_shard;
  // Position of each stream within its shard's stream list. Streams stay
  // ascending within a shard regardless of policy, so merge order (and
  // therefore engine output) is policy-independent.
  std::vector<int> stream_to_local;
  std::vector<std::vector<int>> shard_streams;  // Ascending global ids.
  double imbalance_ratio = 1.0;  // max shard weight / mean shard weight.
};

// `weights[i]` is the placement weight of stream i (initial edge count;
// zero-weight streams are fine). `num_shards` must be >= 1.
ShardPlan PlanShardAssignment(const std::vector<int64_t>& weights,
                              int num_shards, ShardAssignment policy);

}  // namespace gsps

#endif  // GSPS_ENGINE_SHARD_ASSIGNMENT_H_
