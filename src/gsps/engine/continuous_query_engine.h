// The continuous subgraph pattern search engine (paper Definition 2.8).
//
// Owns a fixed set of query graphs and a set of evolving stream graphs.
// Per stream it maintains the graph, its NNTs (incrementally, §III.B), and
// the per-vertex NPVs; a pluggable join strategy (§IV.B) turns those vectors
// into the per-timestamp candidate pairs. The no-false-negative guarantee
// (Lemma 4.2) means every truly isomorphic pair is always reported; the
// optional VerifyCandidate hook runs the exact checker on a candidate when
// a downstream consumer wants certainty.
//
// Usage:
//   ContinuousQueryEngine engine(options);
//   for (auto& q : queries) engine.AddQuery(q);
//   for (auto& s : streams) engine.AddStream(s.StartGraph());
//   engine.Start();
//   for (int t = 1; t < horizon; ++t) {
//     for (int i = 0; i < num_streams; ++i)
//       engine.ApplyChange(i, streams[i].ChangeAt(t));
//     auto pairs = engine.AllCandidatePairs();
//   }

#ifndef GSPS_ENGINE_CONTINUOUS_QUERY_ENGINE_H_
#define GSPS_ENGINE_CONTINUOUS_QUERY_ENGINE_H_

#include <memory>
#include <utility>
#include <vector>

#include "gsps/graph/graph.h"
#include "gsps/graph/graph_change.h"
#include "gsps/join/join_strategy.h"
#include "gsps/nnt/dimension.h"
#include "gsps/nnt/nnt_set.h"

namespace gsps {

struct EngineOptions {
  // Maximum NNT depth; the paper's self-test (Fig. 12) shows 3 suffices.
  int nnt_depth = 3;
  JoinKind join_kind = JoinKind::kDominatedSetCover;
};

class ContinuousQueryEngine {
 public:
  explicit ContinuousQueryEngine(const EngineOptions& options);

  ContinuousQueryEngine(const ContinuousQueryEngine&) = delete;
  ContinuousQueryEngine& operator=(const ContinuousQueryEngine&) = delete;

  // --- Setup (before Start) -------------------------------------------------

  // Registers a query pattern; returns its index.
  int AddQuery(const Graph& query);

  // Registers a stream with its timestamp-0 graph; returns its index.
  int AddStream(Graph start);

  // Builds all NNTs and primes the join strategy. Must be called once after
  // registration and before any ApplyChange/candidate call.
  void Start();

  // --- Streaming ------------------------------------------------------------

  // Applies one change batch to stream `stream`: updates the graph, the
  // NNTs (deletions first, then insertions, §III.B), and pushes the changed
  // NPVs into the join strategy.
  void ApplyChange(int stream, const GraphChange& change);

  // Query indices that are candidates ("possibly joinable", Def. 2.8) for
  // stream `stream` right now, ascending. The buffer form clears *out and
  // reuses its capacity — the allocation-free path for per-timestamp loops.
  std::vector<int> CandidatesForStream(int stream);
  void CandidatesForStream(int stream, std::vector<int>* out);

  // All candidate (stream, query) pairs at the current state. Buffer form
  // as above.
  std::vector<std::pair<int, int>> AllCandidatePairs();
  void AllCandidatePairs(std::vector<std::pair<int, int>>* out);

  // Recomputes the candidates of one stream on a freshly constructed join
  // strategy fed the stream's current NPVs — deliberately bypassing all
  // incremental state. Differential referee for the cached verdicts (fuzz
  // oracle, tests); allocates, so never on the hot path.
  std::vector<int> RecomputeCandidatesFromScratch(int stream);

  // Runs the exact subgraph-isomorphism check on one pair (filter+verify;
  // expensive, off the monitoring hot path).
  bool VerifyCandidate(int stream, int query) const;

  // Pushes the join strategy's pending per-query attribution (dominance
  // probes, refresh time) into the global AttributionRegistry. Call at
  // metrics-flush cadence — per barrier in the parallel engine, per
  // metrics interval in single-threaded drivers. No-op before Start().
  void FlushAttribution();

  // --- Dynamic queries (extension; the paper leaves these as future work) ---

  // Registers a new query while streaming, incrementally: the join
  // strategy's slotted AddQuery folds the new vectors into its existing
  // state (no rebuild). Returns the engine id — the most recently retired
  // slot when one is free, a fresh index otherwise. When
  // the new query introduces dimensions no prior query used, every stream
  // vertex is replayed through the strategy once (the dense dim space was
  // renumbered); otherwise the cost is proportional to the new query alone.
  int AddQueryDynamic(const Graph& query);

  // Retires a query in place: its slab rows, signatures and per-stream
  // bookkeeping are freed inside the strategy, and the engine slot becomes
  // reusable by a later AddQueryDynamic. Checks (GSPS_CHECK) that `query`
  // is in range and not already removed.
  void RemoveQueryDynamic(int query);

  // True when `query` has been removed. Checks that `query` is in range.
  bool IsQueryRetired(int query) const;

  // Asserts the full churn-invariant battery of the underlying strategy
  // plus the engine's own slot maps. Test/fuzz hook; O(everything).
  void CheckChurnInvariants() const;

  // --- Introspection ----------------------------------------------------------

  int num_streams() const { return static_cast<int>(streams_.size()); }
  // Slot-space size: includes retired slots awaiting reuse.
  int num_queries() const { return static_cast<int>(queries_.size()); }
  // Queries currently registered (num_queries() minus retired slots).
  int num_active_queries() const { return num_active_queries_; }
  const Graph& StreamGraph(int stream) const;
  const Graph& QueryGraph(int query) const;
  const NntSet& StreamNnts(int stream) const;
  const DimensionTable& dimensions() const { return dimensions_; }

 private:
  struct StreamState {
    Graph graph;
    std::unique_ptr<NntSet> nnts;
  };
  struct QueryState {
    Graph graph;
    QueryVectors vectors;  // Computed once at registration.
    bool retired = false;
  };

  // Builds the NPVs of a query graph against the shared dimension table.
  QueryVectors ComputeQueryVectors(const Graph& query);

  // Recreates the join strategy from current queries and stream vectors.
  void RebuildStrategy();

  // Pushes dirty NPVs of one stream into the strategy.
  void FlushDirty(int stream);

  EngineOptions options_;
  DimensionTable dimensions_;
  std::vector<QueryState> queries_;
  std::vector<StreamState> streams_;
  std::unique_ptr<JoinStrategy> strategy_;
  // Maps the strategy's local query slots back to engine query indices and
  // vice versa. With slot reuse neither map is monotonic, so candidate
  // lists are sorted after mapping. engine_to_strategy_ holds -1 for
  // retired engine slots.
  std::vector<int> strategy_to_engine_;
  std::vector<int> engine_to_strategy_;
  // Retired engine slots available for AddQueryDynamic reuse (LIFO).
  std::vector<int> free_query_slots_;
  int num_active_queries_ = 0;
  // Reused dirty-root drain buffer so FlushDirty allocates nothing in
  // steady state.
  std::vector<VertexId> dirty_scratch_;
  // Reused strategy-local candidate buffer for the index mapping in
  // CandidatesForStream, and the mapped per-stream buffer used by
  // AllCandidatePairs.
  std::vector<int> local_scratch_;
  std::vector<int> mapped_scratch_;
  bool started_ = false;
};

}  // namespace gsps

#endif  // GSPS_ENGINE_CONTINUOUS_QUERY_ENGINE_H_
