// The continuous subgraph pattern search engine (paper Definition 2.8).
//
// A thin sequential scheduler over exactly one StreamShard: every call
// forwards to the shard, which owns the whole pipeline (NNTs, join
// strategy, tracker, stage timers, attribution, churn). The parallel
// engine drives many shards of the same type; this class exists so
// single-threaded callers keep a minimal API with no sharding vocabulary.
// See stream_shard.h for the semantics of each method.
//
// Usage:
//   ContinuousQueryEngine engine(options);
//   for (auto& q : queries) engine.AddQuery(q);
//   for (auto& s : streams) engine.AddStream(s.StartGraph());
//   engine.Start();
//   for (int t = 1; t < horizon; ++t) {
//     for (int i = 0; i < num_streams; ++i)
//       engine.ApplyChange(i, streams[i].ChangeAt(t));
//     auto pairs = engine.AllCandidatePairs();
//   }

#ifndef GSPS_ENGINE_CONTINUOUS_QUERY_ENGINE_H_
#define GSPS_ENGINE_CONTINUOUS_QUERY_ENGINE_H_

#include <utility>
#include <vector>

#include "gsps/engine/stream_shard.h"
#include "gsps/graph/graph.h"
#include "gsps/graph/graph_change.h"
#include "gsps/nnt/dimension.h"
#include "gsps/nnt/nnt_set.h"

namespace gsps {

class ContinuousQueryEngine {
 public:
  explicit ContinuousQueryEngine(const EngineOptions& options)
      : shard_(options) {}

  ContinuousQueryEngine(const ContinuousQueryEngine&) = delete;
  ContinuousQueryEngine& operator=(const ContinuousQueryEngine&) = delete;

  // --- Setup (before Start) -------------------------------------------------

  int AddQuery(const Graph& query) { return shard_.AddQuery(query); }
  int AddStream(Graph start) { return shard_.AddStream(std::move(start)); }
  void Start() { shard_.Start(); }

  // --- Streaming ------------------------------------------------------------

  void ApplyChange(int stream, const GraphChange& change) {
    shard_.ApplyChange(stream, change);
  }
  std::vector<int> CandidatesForStream(int stream) {
    return shard_.CandidatesForStream(stream);
  }
  void CandidatesForStream(int stream, std::vector<int>* out) {
    shard_.CandidatesForStream(stream, out);
  }
  std::vector<std::pair<int, int>> AllCandidatePairs() {
    return shard_.AllCandidatePairs();
  }
  void AllCandidatePairs(std::vector<std::pair<int, int>>* out) {
    shard_.AllCandidatePairs(out);
  }
  std::vector<int> RecomputeCandidatesFromScratch(int stream) {
    return shard_.RecomputeCandidatesFromScratch(stream);
  }
  bool VerifyCandidate(int stream, int query) const {
    return shard_.VerifyCandidate(stream, query);
  }
  void FlushAttribution() { shard_.FlushAttribution(); }

  // --- Candidate transitions ------------------------------------------------

  void ObserveTransitions(int stream, std::vector<int>* current,
                          CandidateTransitions* out) {
    shard_.ObserveTransitions(stream, current, out);
  }
  const std::vector<int>& LastObservedCandidates(int stream) const {
    return shard_.LastObservedCandidates(stream);
  }

  // --- Dynamic queries ------------------------------------------------------

  int AddQueryDynamic(const Graph& query) {
    return shard_.AddQueryDynamic(query);
  }
  void RemoveQueryDynamic(int query) { shard_.RemoveQueryDynamic(query); }
  bool IsQueryRetired(int query) const { return shard_.IsQueryRetired(query); }
  void CheckChurnInvariants() const { shard_.CheckChurnInvariants(); }

  // --- Introspection --------------------------------------------------------

  int num_streams() const { return shard_.num_streams(); }
  int num_queries() const { return shard_.num_queries(); }
  int num_active_queries() const { return shard_.num_active_queries(); }
  const Graph& StreamGraph(int stream) const {
    return shard_.StreamGraph(stream);
  }
  const Graph& QueryGraph(int query) const { return shard_.QueryGraph(query); }
  const NntSet& StreamNnts(int stream) const {
    return shard_.StreamNnts(stream);
  }
  const DimensionTable& dimensions() const { return shard_.dimensions(); }

  // The underlying shard, for drivers that want the scheduler-state block
  // (barrier stats, obs sink) without going through the parallel engine.
  StreamShard& shard() { return shard_; }
  const StreamShard& shard() const { return shard_; }

 private:
  StreamShard shard_;
};

}  // namespace gsps

#endif  // GSPS_ENGINE_CONTINUOUS_QUERY_ENGINE_H_
