// The continuous subgraph pattern search engine (paper Definition 2.8).
//
// Owns a fixed set of query graphs and a set of evolving stream graphs.
// Per stream it maintains the graph, its NNTs (incrementally, §III.B), and
// the per-vertex NPVs; a pluggable join strategy (§IV.B) turns those vectors
// into the per-timestamp candidate pairs. The no-false-negative guarantee
// (Lemma 4.2) means every truly isomorphic pair is always reported; the
// optional VerifyCandidate hook runs the exact checker on a candidate when
// a downstream consumer wants certainty.
//
// Usage:
//   ContinuousQueryEngine engine(options);
//   for (auto& q : queries) engine.AddQuery(q);
//   for (auto& s : streams) engine.AddStream(s.StartGraph());
//   engine.Start();
//   for (int t = 1; t < horizon; ++t) {
//     for (int i = 0; i < num_streams; ++i)
//       engine.ApplyChange(i, streams[i].ChangeAt(t));
//     auto pairs = engine.AllCandidatePairs();
//   }

#ifndef GSPS_ENGINE_CONTINUOUS_QUERY_ENGINE_H_
#define GSPS_ENGINE_CONTINUOUS_QUERY_ENGINE_H_

#include <memory>
#include <utility>
#include <vector>

#include "gsps/graph/graph.h"
#include "gsps/graph/graph_change.h"
#include "gsps/join/join_strategy.h"
#include "gsps/nnt/dimension.h"
#include "gsps/nnt/nnt_set.h"

namespace gsps {

struct EngineOptions {
  // Maximum NNT depth; the paper's self-test (Fig. 12) shows 3 suffices.
  int nnt_depth = 3;
  JoinKind join_kind = JoinKind::kDominatedSetCover;
};

class ContinuousQueryEngine {
 public:
  explicit ContinuousQueryEngine(const EngineOptions& options);

  ContinuousQueryEngine(const ContinuousQueryEngine&) = delete;
  ContinuousQueryEngine& operator=(const ContinuousQueryEngine&) = delete;

  // --- Setup (before Start) -------------------------------------------------

  // Registers a query pattern; returns its index.
  int AddQuery(const Graph& query);

  // Registers a stream with its timestamp-0 graph; returns its index.
  int AddStream(Graph start);

  // Builds all NNTs and primes the join strategy. Must be called once after
  // registration and before any ApplyChange/candidate call.
  void Start();

  // --- Streaming ------------------------------------------------------------

  // Applies one change batch to stream `stream`: updates the graph, the
  // NNTs (deletions first, then insertions, §III.B), and pushes the changed
  // NPVs into the join strategy.
  void ApplyChange(int stream, const GraphChange& change);

  // Query indices that are candidates ("possibly joinable", Def. 2.8) for
  // stream `stream` right now, ascending. The buffer form clears *out and
  // reuses its capacity — the allocation-free path for per-timestamp loops.
  std::vector<int> CandidatesForStream(int stream);
  void CandidatesForStream(int stream, std::vector<int>* out);

  // All candidate (stream, query) pairs at the current state. Buffer form
  // as above.
  std::vector<std::pair<int, int>> AllCandidatePairs();
  void AllCandidatePairs(std::vector<std::pair<int, int>>* out);

  // Recomputes the candidates of one stream on a freshly constructed join
  // strategy fed the stream's current NPVs — deliberately bypassing all
  // incremental state. Differential referee for the cached verdicts (fuzz
  // oracle, tests); allocates, so never on the hot path.
  std::vector<int> RecomputeCandidatesFromScratch(int stream);

  // Runs the exact subgraph-isomorphism check on one pair (filter+verify;
  // expensive, off the monitoring hot path).
  bool VerifyCandidate(int stream, int query) const;

  // --- Dynamic queries (extension; the paper leaves these as future work) ---

  // Registers a new query while streaming. Rebuilds the join strategy's
  // query-side state (queries change rarely relative to stream updates).
  int AddQueryDynamic(const Graph& query);

  // Removes a query; its index is retired and never reported again.
  void RemoveQueryDynamic(int query);

  // --- Introspection ----------------------------------------------------------

  int num_streams() const { return static_cast<int>(streams_.size()); }
  int num_queries() const { return static_cast<int>(queries_.size()); }
  const Graph& StreamGraph(int stream) const;
  const Graph& QueryGraph(int query) const;
  const NntSet& StreamNnts(int stream) const;
  const DimensionTable& dimensions() const { return dimensions_; }

 private:
  struct StreamState {
    Graph graph;
    std::unique_ptr<NntSet> nnts;
  };
  struct QueryState {
    Graph graph;
    QueryVectors vectors;  // Computed once at registration.
    bool retired = false;
  };

  // Builds the NPVs of a query graph against the shared dimension table.
  QueryVectors ComputeQueryVectors(const Graph& query);

  // Recreates the join strategy from current queries and stream vectors.
  void RebuildStrategy();

  // Pushes dirty NPVs of one stream into the strategy.
  void FlushDirty(int stream);

  EngineOptions options_;
  DimensionTable dimensions_;
  std::vector<QueryState> queries_;
  std::vector<StreamState> streams_;
  std::unique_ptr<JoinStrategy> strategy_;
  // Maps the strategy's dense query indices back to engine query indices
  // (they diverge once a query is retired).
  std::vector<int> strategy_to_engine_;
  // Reused dirty-root drain buffer so FlushDirty allocates nothing in
  // steady state.
  std::vector<VertexId> dirty_scratch_;
  // Reused strategy-local candidate buffer for the index mapping in
  // CandidatesForStream.
  std::vector<int> local_scratch_;
  bool started_ = false;
};

}  // namespace gsps

#endif  // GSPS_ENGINE_CONTINUOUS_QUERY_ENGINE_H_
