#include "gsps/engine/stream_shard.h"

#include <algorithm>
#include <utility>

#include "gsps/common/check.h"
#include "gsps/iso/subgraph_isomorphism.h"
#include "gsps/join/dominance.h"
#include "gsps/obs/obs.h"

namespace gsps {

StreamShard::StreamShard(const EngineOptions& options) : options_(options) {
  GSPS_CHECK(options.nnt_depth >= 1);
}

int StreamShard::AddQuery(const Graph& query) {
  GSPS_CHECK_MSG(!started_, "use AddQueryDynamic after Start()");
  queries_.push_back(QueryState{query, ComputeQueryVectors(query), false});
  return static_cast<int>(queries_.size()) - 1;
}

int StreamShard::AddStream(Graph start) {
  GSPS_CHECK_MSG(!started_, "streams are fixed at Start()");
  StreamState state;
  state.graph = std::move(start);
  streams_.push_back(std::move(state));
  return static_cast<int>(streams_.size()) - 1;
}

void StreamShard::Start() {
  GSPS_CHECK(!started_);
  started_ = true;
  for (StreamState& stream : streams_) {
    stream.nnts = std::make_unique<NntSet>(options_.nnt_depth, &dimensions_);
    stream.nnts->Build(stream.graph);
  }
  tracker_ = CandidateTracker(num_streams());
  RebuildStrategy();
}

void StreamShard::ApplyChange(int stream_index, const GraphChange& change) {
  GSPS_CHECK(started_);
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  {
    GSPS_OBS_STAGE(Stage::kNntMaintain, stream_index);
    // Deletions first, then insertions (§III.B sequentialization).
    for (const EdgeOp& op : change.ops) {
      if (op.kind != EdgeOp::Kind::kDelete) continue;
      if (!stream.graph.HasEdge(op.u, op.v)) continue;
      stream.nnts->DeleteEdge(op.u, op.v);
      stream.graph.RemoveEdge(op.u, op.v);
    }
    for (const EdgeOp& op : change.ops) {
      if (op.kind != EdgeOp::Kind::kInsert) continue;
      if (!stream.graph.EnsureVertex(op.u, op.u_label)) continue;
      if (!stream.graph.EnsureVertex(op.v, op.v_label)) continue;
      if (!stream.graph.AddEdge(op.u, op.v, op.edge_label)) continue;
      stream.nnts->InsertEdge(stream.graph, op.u, op.v);
    }
  }
  GSPS_OBS_STAGE(Stage::kDirtyDrain, stream_index);
  FlushDirty(stream_index);
}

void StreamShard::FlushAttribution() {
  if (strategy_ != nullptr) strategy_->FlushAttribution();
}

std::vector<int> StreamShard::CandidatesForStream(int stream) {
  std::vector<int> mapped;
  mapped.reserve(strategy_to_engine_.size());
  CandidatesForStream(stream, &mapped);
  return mapped;
}

void StreamShard::CandidatesForStream(int stream, std::vector<int>* out) {
  GSPS_CHECK(started_);
  strategy_->CandidatesForStream(stream, &local_scratch_);
  out->clear();
  for (const int local : local_scratch_) {
    out->push_back(strategy_to_engine_[static_cast<size_t>(local)]);
  }
  // Slot reuse makes the local->engine map non-monotonic, so the mapped
  // list must be re-sorted to keep the "ascending" contract.
  std::sort(out->begin(), out->end());
}

std::vector<std::pair<int, int>> StreamShard::AllCandidatePairs() {
  std::vector<std::pair<int, int>> pairs;
  AllCandidatePairs(&pairs);
  return pairs;
}

void StreamShard::AllCandidatePairs(std::vector<std::pair<int, int>>* out) {
  GSPS_CHECK(started_);
  out->clear();
  for (int i = 0; i < num_streams(); ++i) {
    CandidatesForStream(i, &mapped_scratch_);
    for (const int engine_id : mapped_scratch_) {
      out->emplace_back(i, engine_id);
    }
  }
}

std::vector<int> StreamShard::RecomputeCandidatesFromScratch(
    int stream_index) {
  GSPS_CHECK(started_);
  std::unique_ptr<JoinStrategy> fresh = MakeJoinStrategy(options_.join_kind);
  std::vector<QueryVectors> vectors;
  // The fresh strategy numbers queries 0..n-1 in engine-ascending order,
  // which need not match the churned strategy's slot assignment — map
  // through a local table, never through strategy_to_engine_.
  std::vector<int> fresh_to_engine;
  for (size_t j = 0; j < queries_.size(); ++j) {
    if (queries_[j].retired) continue;
    vectors.push_back(queries_[j].vectors);
    fresh_to_engine.push_back(static_cast<int>(j));
  }
  fresh->SetQueries(std::move(vectors));
  fresh->SetNumStreams(num_streams());
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  for (const VertexId root : stream.nnts->Roots()) {
    fresh->UpdateStreamVertex(stream_index, root, stream.nnts->NpvOf(root));
  }
  std::vector<int> mapped;
  for (const int local : fresh->CandidatesForStream(stream_index)) {
    mapped.push_back(fresh_to_engine[static_cast<size_t>(local)]);
  }
  return mapped;
}

bool StreamShard::VerifyCandidate(int stream, int query) const {
  return IsSubgraphIsomorphic(queries_[static_cast<size_t>(query)].graph,
                              streams_[static_cast<size_t>(stream)].graph);
}

void StreamShard::ObserveTransitions(int stream, std::vector<int>* current,
                                     CandidateTransitions* out) {
  GSPS_CHECK(started_);
  // CandidateTracker::Observe carries its own stage timer and counters;
  // forwarding must not wrap it in a second GSPS_OBS_STAGE.
  tracker_.Observe(stream, current, out);
}

const std::vector<int>& StreamShard::LastObservedCandidates(int stream) const {
  GSPS_CHECK(started_);
  return tracker_.LastObserved(stream);
}

int StreamShard::AddQueryDynamic(const Graph& query) {
  GSPS_CHECK(started_);
  QueryVectors vectors = ComputeQueryVectors(query);
  bool grew_dims = false;
  const int32_t local = strategy_->AddQuery(vectors, &grew_dims);
  int engine_id;
  if (!free_query_slots_.empty()) {
    engine_id = free_query_slots_.back();
    free_query_slots_.pop_back();
    QueryState& state = queries_[static_cast<size_t>(engine_id)];
    state.graph = query;
    state.vectors = std::move(vectors);
    state.retired = false;
  } else {
    engine_id = static_cast<int>(queries_.size());
    queries_.push_back(QueryState{query, std::move(vectors), false});
  }
  if (static_cast<size_t>(local) == strategy_to_engine_.size()) {
    strategy_to_engine_.push_back(engine_id);
  } else {
    strategy_to_engine_[static_cast<size_t>(local)] = engine_id;
  }
  if (static_cast<size_t>(engine_id) == engine_to_strategy_.size()) {
    engine_to_strategy_.push_back(local);
  } else {
    engine_to_strategy_[static_cast<size_t>(engine_id)] = local;
  }
  ++num_active_queries_;
  GSPS_OBS_GAUGE_SET(Gauge::kQueriesActive, num_active_queries_);
  if (grew_dims) {
    // The strategy renumbered its dense dimension space; replay every
    // stream vertex so its translated entries use the new ids. Drain the
    // dirty set first so the next incremental flush starts clean.
    for (int i = 0; i < num_streams(); ++i) {
      StreamState& stream = streams_[static_cast<size_t>(i)];
      stream.nnts->TakeDirtyRoots(&dirty_scratch_);
      for (const VertexId root : stream.nnts->Roots()) {
        strategy_->UpdateStreamVertex(i, root, stream.nnts->NpvOf(root));
      }
    }
  }
  return engine_id;
}

void StreamShard::RemoveQueryDynamic(int query) {
  GSPS_CHECK(started_);
  GSPS_CHECK_MSG(query >= 0 && query < static_cast<int>(queries_.size()),
                 "RemoveQueryDynamic: query id out of range");
  QueryState& state = queries_[static_cast<size_t>(query)];
  GSPS_CHECK_MSG(!state.retired,
                 "RemoveQueryDynamic: query was already removed");
  strategy_->RemoveQuery(engine_to_strategy_[static_cast<size_t>(query)]);
  engine_to_strategy_[static_cast<size_t>(query)] = -1;
  state.retired = true;
  free_query_slots_.push_back(query);
  --num_active_queries_;
  GSPS_OBS_GAUGE_SET(Gauge::kQueriesActive, num_active_queries_);
}

bool StreamShard::IsQueryRetired(int query) const {
  GSPS_CHECK(query >= 0 && query < static_cast<int>(queries_.size()));
  return queries_[static_cast<size_t>(query)].retired;
}

void StreamShard::CheckChurnInvariants() const {
  GSPS_CHECK(started_);
  strategy_->CheckChurnInvariants();
  GSPS_CHECK(engine_to_strategy_.size() == queries_.size());
  int active = 0;
  for (size_t j = 0; j < queries_.size(); ++j) {
    const int local = engine_to_strategy_[j];
    if (queries_[j].retired) {
      GSPS_CHECK(local == -1);
      continue;
    }
    ++active;
    GSPS_CHECK(local >= 0 &&
               local < static_cast<int>(strategy_to_engine_.size()));
    GSPS_CHECK(strategy_to_engine_[static_cast<size_t>(local)] ==
               static_cast<int>(j));
  }
  GSPS_CHECK(active == num_active_queries_);
  GSPS_CHECK(static_cast<int>(free_query_slots_.size()) ==
             static_cast<int>(queries_.size()) - num_active_queries_);
}

const Graph& StreamShard::StreamGraph(int stream) const {
  return streams_[static_cast<size_t>(stream)].graph;
}

const Graph& StreamShard::QueryGraph(int query) const {
  return queries_[static_cast<size_t>(query)].graph;
}

const NntSet& StreamShard::StreamNnts(int stream) const {
  GSPS_CHECK(started_);
  return *streams_[static_cast<size_t>(stream)].nnts;
}

void StreamShard::RebuildStrategy() {
  strategy_ = MakeJoinStrategy(options_.join_kind);
  strategy_to_engine_.clear();
  engine_to_strategy_.assign(queries_.size(), -1);
  free_query_slots_.clear();
  std::vector<QueryVectors> vectors;
  for (size_t j = 0; j < queries_.size(); ++j) {
    if (queries_[j].retired) {
      free_query_slots_.push_back(static_cast<int>(j));
      continue;
    }
    engine_to_strategy_[j] = static_cast<int>(vectors.size());
    vectors.push_back(queries_[j].vectors);
    strategy_to_engine_.push_back(static_cast<int>(j));
  }
  num_active_queries_ = static_cast<int>(strategy_to_engine_.size());
  GSPS_OBS_GAUGE_SET(Gauge::kQueriesActive, num_active_queries_);
  strategy_->SetQueries(std::move(vectors));
  strategy_->SetNumStreams(num_streams());
  for (int i = 0; i < num_streams(); ++i) {
    StreamState& stream = streams_[static_cast<size_t>(i)];
    // Prime the strategy with every vertex; drain the dirty set so the next
    // incremental flush starts clean.
    stream.nnts->TakeDirtyRoots(&dirty_scratch_);
    for (const VertexId root : stream.nnts->Roots()) {
      strategy_->UpdateStreamVertex(i, root, stream.nnts->NpvOf(root));
    }
  }
}

QueryVectors StreamShard::ComputeQueryVectors(const Graph& query) {
  // The dimension table is append-only and shared, so interning the query's
  // dimensions up front keeps its vectors valid for the engine's lifetime.
  NntSet query_nnts(options_.nnt_depth, &dimensions_);
  query_nnts.Build(query);
  return BuildQueryVectors(query_nnts);
}

void StreamShard::FlushDirty(int stream_index) {
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  stream.nnts->TakeDirtyRoots(&dirty_scratch_);
  for (const VertexId root : dirty_scratch_) {
    if (stream.nnts->TreeOf(root) != nullptr) {
      strategy_->UpdateStreamVertex(stream_index, root,
                                    stream.nnts->NpvOf(root));
    } else {
      strategy_->RemoveStreamVertex(stream_index, root);
    }
  }
}

}  // namespace gsps
