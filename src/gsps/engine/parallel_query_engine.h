// A sharded, thread-pool-backed continuous query engine.
//
// The paper's workload is embarrassingly parallel across the k1 graph
// streams: whether query q is a candidate for stream G_i depends only on
// G_i's NPVs and q's vectors (Lemma 4.2), never on another stream. This
// engine exploits that by partitioning the streams across StreamShards
// (round-robin or LPT, see shard_assignment.h) — each shard a complete,
// independent engine core with its
// own DimensionTable, NntSets, and join strategy over the full query
// workload (see stream_shard.h). This class contains no pipeline logic of
// its own; it is purely the fan-out/merge scheduler.
//
// Why fully isolated shards instead of one shared query-side index: the
// DimensionTable is an interner that streams append to while revealing new
// label combinations, and the join strategies keep mutable per-stream
// counters. Sharing either across workers would put a lock (or atomic
// traffic) on the hottest path of NNT maintenance. Duplicating the
// query-side state per shard costs a one-time setup pass plus a few
// kilobytes per query, and buys a hot path with zero shared mutable state —
// every barrier is plain data parallelism. Dimension ids then differ
// between shards, but ids are a private encoding; candidate sets do not.
//
// Determinism: the placement plan is a deterministic function of the
// registration order and initial edge counts, every shard applies the same
// deletions-first protocol as the sequential engine, and
// AllCandidatePairs() merges the per-shard results in ascending global
// stream order (queries ascending within a stream). The output is therefore
// byte-identical to the sequential engine's on the same inputs, regardless
// of thread count or scheduling; tests/parallel_engine_test.cc enforces
// this, and the no-false-negative guarantee carries over unchanged.
//
// Per-worker statistics: each shard records its own update/join wall times
// and candidate counts during a barrier (no shared counters); the merged
// critical-path sample is available from TakeBarrierStats() afterwards.
//
// Usage (one timestamp):
//   ParallelQueryEngine engine(options);
//   ... AddQuery / AddStream / Start() as with ContinuousQueryEngine ...
//   engine.ApplyChanges(batches);            // batches[i] -> stream i
//   auto pairs = engine.AllCandidatePairs(); // parallel join, merged
//   TimestampStats cost = engine.TakeBarrierStats();

#ifndef GSPS_ENGINE_PARALLEL_QUERY_ENGINE_H_
#define GSPS_ENGINE_PARALLEL_QUERY_ENGINE_H_

#include <memory>
#include <utility>
#include <vector>

#include "gsps/common/thread_pool.h"
#include "gsps/engine/filter_stats.h"
#include "gsps/engine/shard_assignment.h"
#include "gsps/engine/stream_shard.h"
#include "gsps/graph/graph.h"
#include "gsps/graph/graph_change.h"
#include "gsps/obs/obs.h"

namespace gsps {

struct ParallelEngineOptions {
  EngineOptions engine;  // Depth and join strategy, as for the sequential engine.
  // Worker count; 0 means ThreadPool::HardwareThreads(). The effective
  // shard count is min(num_threads, num_streams).
  int num_threads = 0;
  // Stream placement policy (see shard_assignment.h). Either policy yields
  // byte-identical engine output; kLpt balances shard load under skewed
  // stream sizes at the cost of a weight-sorted setup pass.
  ShardAssignment assignment = ShardAssignment::kRoundRobin;
};

class ParallelQueryEngine {
 public:
  explicit ParallelQueryEngine(const ParallelEngineOptions& options);

  ParallelQueryEngine(const ParallelQueryEngine&) = delete;
  ParallelQueryEngine& operator=(const ParallelQueryEngine&) = delete;

  // --- Setup (before Start) -------------------------------------------------

  int AddQuery(const Graph& query);
  int AddStream(Graph start);

  // Creates the shards and builds all NNTs (in parallel). Must be called
  // once after registration, before any streaming call.
  void Start();

  // --- Streaming ------------------------------------------------------------

  // Applies one timestamp's edge batches — changes[i] to stream i, which
  // requires changes.size() == num_streams() — concurrently across shards,
  // returning at the barrier once every shard has flushed its dirty NPVs.
  void ApplyChanges(const std::vector<GraphChange>& changes);

  // Single-stream variant, applied inline on the calling thread (no
  // parallelism; provided for API parity with the sequential engine).
  void ApplyChange(int stream, const GraphChange& change);

  // Candidate query indices for one stream, ascending (inline). The buffer
  // form clears *out and reuses its capacity.
  std::vector<int> CandidatesForStream(int stream);
  void CandidatesForStream(int stream, std::vector<int>* out);

  // All candidate (stream, query) pairs at the current state: the join runs
  // shard-concurrently, then the per-shard results are merged in ascending
  // global stream order — identical output to the sequential engine. Buffer
  // form as above.
  std::vector<std::pair<int, int>> AllCandidatePairs();
  void AllCandidatePairs(std::vector<std::pair<int, int>>* out);

  // Exact subgraph-isomorphism check on one pair (off the hot path).
  bool VerifyCandidate(int stream, int query) const;

  // --- Candidate transitions ------------------------------------------------

  // Diffs `*current` against the last observed set of global stream
  // `stream` on its owning shard's tracker (see StreamShard). Runs inline
  // on the calling thread.
  void ObserveTransitions(int stream, std::vector<int>* current,
                          CandidateTransitions* out);
  const std::vector<int>& LastObservedCandidates(int stream) const;

  // --- Dynamic queries ------------------------------------------------------

  // Registers a query on every shard (shard-parallel, incremental inside
  // each shard). Shards churn in lock-step, so every shard assigns the same
  // engine slot; the common id is checked and returned.
  int AddQueryDynamic(const Graph& query);

  // Retires a query on every shard; its slot becomes reusable. Checks
  // (GSPS_CHECK) that `query` is in range and not already removed.
  void RemoveQueryDynamic(int query);

  // Asserts the churn-invariant battery of every shard. Test hook.
  void CheckChurnInvariants() const;

  // --- Statistics -----------------------------------------------------------

  // Merges and clears the per-shard samples accumulated by ApplyChanges /
  // AllCandidatePairs barriers since the previous call: candidate counts
  // sum across shards, costs take the slowest shard (the barrier's critical
  // path). See MergeParallelSamples.
  TimestampStats TakeBarrierStats();

  // --- Introspection --------------------------------------------------------

  int num_streams() const { return static_cast<int>(stream_to_shard_.size()); }
  // Slot-space size: includes retired slots awaiting reuse.
  int num_queries() const { return num_queries_; }
  // Queries currently registered (num_queries() minus retired slots).
  int num_active_queries() const { return num_active_queries_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int num_threads() const { return options_.num_threads; }
  const Graph& StreamGraph(int stream) const;
  const Graph& QueryGraph(int query) const;

 private:
  const StreamShard& ShardOf(int stream) const;
  StreamShard& ShardOf(int stream);
  int LocalIndex(int stream) const {
    return stream_to_local_[static_cast<size_t>(stream)];
  }

  // Post-barrier observability bookkeeping: per-shard busy/wait counters and
  // histograms, then a registry merge. Only called when obs is enabled.
  void ObserveBarrier(obs::Counter barrier_counter, obs::Hist batch_hist,
                      double barrier_millis);

  ParallelEngineOptions options_;
  // Pre-Start buffers; drained into the shards by Start().
  std::vector<Graph> pending_queries_;
  std::vector<Graph> pending_streams_;

  // unique_ptr because shards_ is sized with resize() and StreamShard is
  // neither copyable nor default-constructible.
  std::vector<std::unique_ptr<StreamShard>> shards_;
  std::vector<int> stream_to_shard_;
  std::vector<int> stream_to_local_;
  int num_queries_ = 0;
  int num_active_queries_ = 0;
  std::unique_ptr<ThreadPool> pool_;
  bool started_ = false;
};

}  // namespace gsps

#endif  // GSPS_ENGINE_PARALLEL_QUERY_ENGINE_H_
