#include "gsps/engine/parallel_query_engine.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "gsps/common/check.h"
#include "gsps/common/stopwatch.h"

namespace gsps {

namespace {

int64_t MillisToMicros(double millis) {
  return static_cast<int64_t>(std::llround(millis * 1000.0));
}

}  // namespace

ParallelQueryEngine::ParallelQueryEngine(const ParallelEngineOptions& options)
    : options_(options) {
  GSPS_CHECK(options.num_threads >= 0);
  if (options_.num_threads == 0) {
    options_.num_threads = ThreadPool::HardwareThreads();
  }
}

int ParallelQueryEngine::AddQuery(const Graph& query) {
  GSPS_CHECK_MSG(!started_, "use AddQueryDynamic after Start()");
  pending_queries_.push_back(query);
  return num_queries_++;
}

int ParallelQueryEngine::AddStream(Graph start) {
  GSPS_CHECK_MSG(!started_, "streams are fixed at Start()");
  pending_streams_.push_back(std::move(start));
  return static_cast<int>(pending_streams_.size()) - 1;
}

void ParallelQueryEngine::Start() {
  GSPS_CHECK(!started_);
  started_ = true;
  const int num_streams = static_cast<int>(pending_streams_.size());
  const int num_shards =
      std::max(1, std::min(options_.num_threads, num_streams));
  shards_.resize(static_cast<size_t>(num_shards));
  stream_to_shard_.resize(static_cast<size_t>(num_streams));
  pool_ = std::make_unique<ThreadPool>(num_shards);
  // Shards are constructed on the driver thread so trace buffers are
  // allocated in ascending shard order (tid 0 is the driver thread;
  // NewBuffer returns nullptr while tracing is off, which keeps spans
  // inert). The heavy setup — per-shard query-vector computation and the
  // initial NNT builds — is shard-parallel.
  for (int s = 0; s < num_shards; ++s) {
    shards_[static_cast<size_t>(s)] =
        std::make_unique<StreamShard>(options_.engine);
    if constexpr (obs::kEnabled) {
      shards_[static_cast<size_t>(s)]->trace =
          obs::Tracer::Global().NewBuffer(s + 1);
    }
  }
  std::vector<int64_t> weights(pending_streams_.size());
  for (size_t i = 0; i < pending_streams_.size(); ++i) {
    weights[i] = pending_streams_[i].NumEdges();
  }
  const ShardPlan plan =
      PlanShardAssignment(weights, num_shards, options_.assignment);
  pool_->ParallelFor(num_shards, [&](int s) {
    StreamShard& shard = *shards_[static_cast<size_t>(s)];
    for (const Graph& query : pending_queries_) shard.AddQuery(query);
    for (const int i : plan.shard_streams[static_cast<size_t>(s)]) {
      shard.AddStream(pending_streams_[static_cast<size_t>(i)]);
      shard.global_streams.push_back(i);
    }
    shard.join_results.resize(shard.global_streams.size());
    shard.Start();
  });
  stream_to_shard_ = plan.stream_to_shard;
  stream_to_local_ = plan.stream_to_local;
  pending_queries_.clear();
  pending_streams_.clear();
  num_active_queries_ = num_queries_;
  if constexpr (obs::kEnabled) {
    StreamShard& first = *shards_.front();
    first.sink.Set(obs::Gauge::kEngineShards, num_shards);
    first.sink.Set(obs::Gauge::kEngineStreams, num_streams);
    first.sink.Set(obs::Gauge::kEngineQueries, num_queries_);
    first.sink.Set(obs::Gauge::kQueriesActive, num_queries_);
    first.sink.Set(obs::Gauge::kShardImbalanceRatio,
                   std::llround(plan.imbalance_ratio * 1000.0));
    obs::MetricsRegistry::Global().MergeAndReset(first.sink);
  }
}

void ParallelQueryEngine::ApplyChanges(const std::vector<GraphChange>& changes) {
  GSPS_CHECK(started_);
  GSPS_CHECK_MSG(static_cast<int>(changes.size()) == num_streams(),
                 "one change batch per stream");
  Stopwatch barrier_watch;
  pool_->ParallelFor(num_shards(), [&](int s) {
    StreamShard& shard = *shards_[static_cast<size_t>(s)];
    std::optional<obs::ScopedObsContext> obs_scope;
    if constexpr (obs::kEnabled) obs_scope.emplace(&shard.sink, shard.trace);
    GSPS_OBS_SPAN("shard_update", "engine");
    Stopwatch watch;
    for (size_t local = 0; local < shard.global_streams.size(); ++local) {
      const int global = shard.global_streams[local];
      shard.ApplyChange(static_cast<int>(local),
                        changes[static_cast<size_t>(global)]);
    }
    const double elapsed = watch.ElapsedMillis();
    shard.pending.update_millis += elapsed;
    shard.pending.busy_millis += elapsed;
    shard.busy_micros = MillisToMicros(elapsed);
  });
  if constexpr (obs::kEnabled) {
    ObserveBarrier(obs::Counter::kEngineUpdateBarriers,
                   obs::Hist::kUpdateBatchMicros,
                   barrier_watch.ElapsedMillis());
  }
}

void ParallelQueryEngine::ApplyChange(int stream, const GraphChange& change) {
  GSPS_CHECK(started_);
  StreamShard& shard = ShardOf(stream);
  Stopwatch watch;
  shard.ApplyChange(LocalIndex(stream), change);
  const double elapsed = watch.ElapsedMillis();
  shard.pending.update_millis += elapsed;
  shard.pending.busy_millis += elapsed;
}

std::vector<int> ParallelQueryEngine::CandidatesForStream(int stream) {
  GSPS_CHECK(started_);
  return ShardOf(stream).CandidatesForStream(LocalIndex(stream));
}

void ParallelQueryEngine::CandidatesForStream(int stream,
                                              std::vector<int>* out) {
  GSPS_CHECK(started_);
  ShardOf(stream).CandidatesForStream(LocalIndex(stream), out);
}

std::vector<std::pair<int, int>> ParallelQueryEngine::AllCandidatePairs() {
  std::vector<std::pair<int, int>> pairs;
  AllCandidatePairs(&pairs);
  return pairs;
}

void ParallelQueryEngine::AllCandidatePairs(
    std::vector<std::pair<int, int>>* out) {
  GSPS_CHECK(started_);
  Stopwatch barrier_watch;
  pool_->ParallelFor(num_shards(), [&](int s) {
    StreamShard& shard = *shards_[static_cast<size_t>(s)];
    std::optional<obs::ScopedObsContext> obs_scope;
    if constexpr (obs::kEnabled) obs_scope.emplace(&shard.sink, shard.trace);
    GSPS_OBS_SPAN("shard_join", "engine");
    Stopwatch watch;
    int64_t candidates = 0;
    for (size_t local = 0; local < shard.global_streams.size(); ++local) {
      shard.CandidatesForStream(static_cast<int>(local),
                                &shard.join_results[local]);
      candidates += static_cast<int64_t>(shard.join_results[local].size());
    }
    const double elapsed = watch.ElapsedMillis();
    shard.pending.join_millis += elapsed;
    shard.pending.busy_millis += elapsed;
    shard.pending.candidate_pairs += candidates;
    shard.busy_micros = MillisToMicros(elapsed);
  });
  if constexpr (obs::kEnabled) {
    ObserveBarrier(obs::Counter::kEngineJoinBarriers,
                   obs::Hist::kJoinBatchMicros, barrier_watch.ElapsedMillis());
  }
  // Deterministic merge: ascending global stream, queries ascending within
  // (each shard already reports queries ascending).
  out->clear();
  for (int i = 0; i < num_streams(); ++i) {
    const StreamShard& shard = ShardOf(i);
    for (const int q :
         shard.join_results[static_cast<size_t>(LocalIndex(i))]) {
      out->emplace_back(i, q);
    }
  }
}

bool ParallelQueryEngine::VerifyCandidate(int stream, int query) const {
  GSPS_CHECK(started_);
  return ShardOf(stream).VerifyCandidate(LocalIndex(stream), query);
}

void ParallelQueryEngine::ObserveTransitions(int stream,
                                             std::vector<int>* current,
                                             CandidateTransitions* out) {
  GSPS_CHECK(started_);
  ShardOf(stream).ObserveTransitions(LocalIndex(stream), current, out);
}

const std::vector<int>& ParallelQueryEngine::LastObservedCandidates(
    int stream) const {
  GSPS_CHECK(started_);
  return ShardOf(stream).LastObservedCandidates(LocalIndex(stream));
}

int ParallelQueryEngine::AddQueryDynamic(const Graph& query) {
  GSPS_CHECK(started_);
  // Every shard has seen the identical add/remove sequence, so each one's
  // slot allocator must hand out the same engine id; check, don't assume.
  std::vector<int> ids(shards_.size(), -1);
  pool_->ParallelFor(num_shards(), [&](int s) {
    StreamShard& shard = *shards_[static_cast<size_t>(s)];
    std::optional<obs::ScopedObsContext> obs_scope;
    if constexpr (obs::kEnabled) obs_scope.emplace(&shard.sink, shard.trace);
    ids[static_cast<size_t>(s)] = shard.AddQueryDynamic(query);
  });
  if constexpr (obs::kEnabled) {
    for (auto& shard : shards_) {
      obs::MetricsRegistry::Global().MergeAndReset(shard->sink);
    }
  }
  const int engine_id = ids.front();
  for (const int id : ids) {
    GSPS_CHECK_MSG(id == engine_id, "shards disagree on the reused query slot");
  }
  num_queries_ = std::max(num_queries_, engine_id + 1);
  ++num_active_queries_;
  return engine_id;
}

void ParallelQueryEngine::RemoveQueryDynamic(int query) {
  GSPS_CHECK(started_);
  GSPS_CHECK_MSG(query >= 0 && query < num_queries_,
                 "RemoveQueryDynamic: query id out of range");
  GSPS_CHECK_MSG(!shards_.front()->IsQueryRetired(query),
                 "RemoveQueryDynamic: query was already removed");
  pool_->ParallelFor(num_shards(), [&](int s) {
    StreamShard& shard = *shards_[static_cast<size_t>(s)];
    std::optional<obs::ScopedObsContext> obs_scope;
    if constexpr (obs::kEnabled) obs_scope.emplace(&shard.sink, shard.trace);
    shard.RemoveQueryDynamic(query);
  });
  if constexpr (obs::kEnabled) {
    for (auto& shard : shards_) {
      obs::MetricsRegistry::Global().MergeAndReset(shard->sink);
    }
  }
  --num_active_queries_;
}

void ParallelQueryEngine::CheckChurnInvariants() const {
  GSPS_CHECK(started_);
  for (const auto& shard : shards_) {
    shard->CheckChurnInvariants();
    GSPS_CHECK(shard->num_queries() == num_queries_);
    GSPS_CHECK(shard->num_active_queries() == num_active_queries_);
  }
}

void ParallelQueryEngine::ObserveBarrier(obs::Counter barrier_counter,
                                         obs::Hist batch_hist,
                                         double barrier_millis) {
  // Runs on the calling thread after the barrier completed, so every
  // shard's sink is quiescent (the pool's barrier handshake provides the
  // happens-before edge). Wait time is the gap between the barrier's
  // wall-clock span and the shard's own work inside it.
  //
  // The merge work itself is the kMetricsMerge stage. The sample lands in
  // the first shard's sink and is picked up by the *next* barrier's merge —
  // timing it on the driver thread keeps MergeAndReset itself untimed.
  const int64_t merge_start = obs::MonotonicMicros();
  const int64_t barrier_micros = MillisToMicros(barrier_millis);
  shards_.front()->sink.Add(barrier_counter, 1);
  for (auto& shard_ptr : shards_) {
    StreamShard& shard = *shard_ptr;
    const int64_t busy = shard.busy_micros;
    const int64_t wait = std::max<int64_t>(0, barrier_micros - busy);
    shard.sink.Add(obs::Counter::kShardBusyMicros, busy);
    shard.sink.Add(obs::Counter::kShardBarrierWaitMicros, wait);
    shard.sink.Observe(batch_hist, busy);
    shard.sink.Observe(obs::Hist::kBarrierWaitMicros, wait);
    shard.FlushAttribution();
    obs::MetricsRegistry::Global().MergeAndReset(shard.sink);
    shard.busy_micros = 0;
  }
  StreamShard& first = *shards_.front();
  obs::ScopedObsContext merge_scope(&first.sink, first.trace);
  obs::StageSample(obs::Stage::kMetricsMerge,
                   obs::MonotonicMicros() - merge_start);
}

TimestampStats ParallelQueryEngine::TakeBarrierStats() {
  GSPS_CHECK(started_);
  std::vector<TimestampStats> samples;
  samples.reserve(shards_.size());
  for (auto& shard : shards_) {
    shard->pending.total_pairs =
        static_cast<int64_t>(shard->global_streams.size()) * num_queries_;
    samples.push_back(shard->pending);
    shard->pending = TimestampStats{};
  }
  return MergeParallelSamples(samples);
}

const Graph& ParallelQueryEngine::StreamGraph(int stream) const {
  GSPS_CHECK(started_);
  return ShardOf(stream).StreamGraph(LocalIndex(stream));
}

const Graph& ParallelQueryEngine::QueryGraph(int query) const {
  GSPS_CHECK(started_);
  return shards_.front()->QueryGraph(query);
}

const StreamShard& ParallelQueryEngine::ShardOf(int stream) const {
  GSPS_CHECK(stream >= 0 && stream < num_streams());
  return *shards_[static_cast<size_t>(
      stream_to_shard_[static_cast<size_t>(stream)])];
}

StreamShard& ParallelQueryEngine::ShardOf(int stream) {
  return const_cast<StreamShard&>(
      static_cast<const ParallelQueryEngine*>(this)->ShardOf(stream));
}

}  // namespace gsps
