#include "gsps/engine/shard_assignment.h"

#include <algorithm>
#include <numeric>

#include "gsps/common/check.h"

namespace gsps {

ShardPlan PlanShardAssignment(const std::vector<int64_t>& weights,
                              int num_shards, ShardAssignment policy) {
  GSPS_CHECK(num_shards >= 1);
  const int num_streams = static_cast<int>(weights.size());
  ShardPlan plan;
  plan.stream_to_shard.assign(num_streams, 0);
  plan.stream_to_local.assign(num_streams, 0);
  plan.shard_streams.resize(num_shards);

  if (policy == ShardAssignment::kRoundRobin) {
    for (int i = 0; i < num_streams; ++i) {
      plan.stream_to_shard[i] = i % num_shards;
    }
  } else {
    // LPT: heaviest stream first (ties by lowest stream id, so the order —
    // and with it the whole placement — is deterministic), each onto the
    // currently lightest shard (ties by lowest shard id).
    std::vector<int> order(weights.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return weights[a] > weights[b];
    });
    std::vector<int64_t> shard_weight(num_shards, 0);
    for (int stream : order) {
      int lightest = 0;
      for (int s = 1; s < num_shards; ++s) {
        if (shard_weight[s] < shard_weight[lightest]) lightest = s;
      }
      plan.stream_to_shard[stream] = lightest;
      shard_weight[lightest] += weights[stream];
    }
  }

  // Shard stream lists stay ascending under both policies (LPT assignment
  // order is weight-sorted, so rebuild the lists by stream id), keeping
  // the merged candidate order identical to the sequential engine's.
  for (int i = 0; i < num_streams; ++i) {
    std::vector<int>& members = plan.shard_streams[plan.stream_to_shard[i]];
    plan.stream_to_local[i] = static_cast<int>(members.size());
    members.push_back(i);
  }

  std::vector<int64_t> shard_weight(num_shards, 0);
  for (int i = 0; i < num_streams; ++i) {
    shard_weight[plan.stream_to_shard[i]] += weights[i];
  }
  const int64_t total =
      std::accumulate(shard_weight.begin(), shard_weight.end(), int64_t{0});
  const int64_t max_weight =
      *std::max_element(shard_weight.begin(), shard_weight.end());
  plan.imbalance_ratio =
      total > 0 ? static_cast<double>(max_weight) * num_shards /
                      static_cast<double>(total)
                : 1.0;
  return plan;
}

}  // namespace gsps
