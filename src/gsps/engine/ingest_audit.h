// Per-stream delivery-order audit shared by the ingest consumers.
//
// The ingest contract promises that the deltas of one stream are delivered
// in timestamp order with nothing skipped (timestamps run 1, 2, ... per
// stream, each producer sends one event per stream per timestamp). This
// helper checks that invariant at the point of application: gsps_loadgen's
// single consumer runs one audit over the whole firehose, and each
// pipelined shard worker runs its own audit over the streams its lane
// carries — the audit that a single shared consumer-side counter could not
// express once delivery fans out across lanes.
//
// Single-threaded: one audit per consumer; totals are summed after the
// consumers finish.

#ifndef GSPS_ENGINE_INGEST_AUDIT_H_
#define GSPS_ENGINE_INGEST_AUDIT_H_

#include <cstdint>
#include <vector>

namespace gsps {

class IngestOrderAudit {
 public:
  IngestOrderAudit() = default;
  explicit IngestOrderAudit(int num_streams) { Reset(num_streams); }

  void Reset(int num_streams) {
    next_timestamp_.assign(static_cast<size_t>(num_streams), 1);
    violations_ = 0;
  }

  // Records one applied batch. Returns false (and counts a violation) when
  // `timestamp` is not the next expected timestamp of `stream`; either way
  // the expectation resynchronizes to timestamp + 1 so one gap is one
  // violation, not a cascade.
  bool ObserveInOrder(int32_t stream, int32_t timestamp) {
    int32_t& next = next_timestamp_[static_cast<size_t>(stream)];
    const bool in_order = timestamp == next;
    if (!in_order) ++violations_;
    next = timestamp + 1;
    return in_order;
  }

  int64_t violations() const { return violations_; }

 private:
  std::vector<int32_t> next_timestamp_;
  int64_t violations_ = 0;
};

}  // namespace gsps

#endif  // GSPS_ENGINE_INGEST_AUDIT_H_
