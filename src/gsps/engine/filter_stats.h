// Per-timestamp statistics for the experiment harnesses.
//
// Accumulates, per timestamp, the candidate-set size, the total number of
// (stream, query) pairs, and the wall time split into NNT/index update and
// join evaluation. Also computes filter quality against the exact ground
// truth when the harness provides it (precision; recall is 1 by
// construction — the no-false-negative property, which the test suite
// enforces).

#ifndef GSPS_ENGINE_FILTER_STATS_H_
#define GSPS_ENGINE_FILTER_STATS_H_

#include <cstdint>
#include <vector>

namespace gsps {

// Measurements for one timestamp.
struct TimestampStats {
  int timestamp = 0;
  int64_t candidate_pairs = 0;
  int64_t total_pairs = 0;
  int64_t true_pairs = -1;  // -1 when ground truth was not computed.
  double update_millis = 0.0;
  double join_millis = 0.0;
  // Aggregate CPU time spent inside update/join work across all shards.
  // For a sequential run this equals update + join; for a parallel run it
  // exceeds the critical-path update/join costs, and the gap between
  // num_shards * (update + join) and busy is barrier-wait (idle) time.
  double busy_millis = 0.0;
};

// Merges the per-shard samples of one parallel barrier into a single
// timestamp sample. Pair counts are summed across shards; update/join costs
// take the maximum (the barrier's critical path — the wall-clock cost the
// caller observed, not aggregate CPU time) while busy_millis sums (aggregate
// work done); true_pairs sums when every shard computed it and stays -1
// otherwise. The timestamp is taken from the first shard. Sums and maxima
// are commutative and associative, so the result is independent of shard
// order. Zero shards merge to the empty sample (all-zero counts,
// true_pairs = -1).
TimestampStats MergeParallelSamples(const std::vector<TimestampStats>& shards);

// Aggregates TimestampStats.
class StatsAccumulator {
 public:
  void Add(const TimestampStats& stats);

  int64_t num_timestamps() const {
    return static_cast<int64_t>(samples_.size());
  }

  // Mean candidate-pair ratio (candidates / total pairs) per timestamp.
  double AvgCandidateRatio() const;

  // Mean per-timestamp processing cost, milliseconds (update + join).
  double AvgCostMillis() const;

  double AvgUpdateMillis() const;
  double AvgJoinMillis() const;
  double AvgBusyMillis() const;

  // Nearest-rank percentile of per-timestamp cost (update + join) in
  // milliseconds; pct in (0, 100]. 0.0 with no samples.
  double CostPercentileMillis(double pct) const;

  // Slowest per-timestamp cost (update + join), milliseconds.
  double MaxCostMillis() const;

  // Mean precision (true pairs / candidate pairs) over timestamps where
  // ground truth is present; 1.0 when no candidates were reported.
  double AvgPrecision() const;

  // True iff every recorded timestamp had candidate_pairs >= true_pairs
  // (a necessary consequence of no-false-negatives).
  bool CandidatesNeverBelowTruth() const;

  const std::vector<TimestampStats>& samples() const { return samples_; }

 private:
  std::vector<TimestampStats> samples_;
};

}  // namespace gsps

#endif  // GSPS_ENGINE_FILTER_STATS_H_
