#include "gsps/engine/ingest_queue.h"

#include <algorithm>
#include <utility>

#include "gsps/common/check.h"
#include "gsps/obs/trace.h"

namespace gsps {

IngestQueue::IngestQueue(size_t capacity) : capacity_(capacity) {
  GSPS_CHECK(capacity >= 1);
}

bool IngestQueue::Push(IngestEvent event) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_ && !closed_) {
    ++stats_.producer_waits;
    not_full_.wait(lock,
                   [this] { return events_.size() < capacity_ || closed_; });
  }
  if (closed_) return false;
  if (!event.keep_stamp) event.enqueue_micros = obs::MonotonicMicros();
  events_.push_back(std::move(event));
  ++stats_.accepted;
  stats_.depth_high_water = std::max(
      stats_.depth_high_water, static_cast<int64_t>(events_.size()));
  // One waiter per event; the consumer side is single, but notify_one is
  // correct even with several poppers since each wakeup finds an event.
  not_empty_.notify_one();
  return true;
}

bool IngestQueue::Pop(IngestEvent* out) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [this] { return !events_.empty() || closed_; });
  if (events_.empty()) return false;  // Closed and drained.
  *out = std::move(events_.front());
  events_.pop_front();
  ++stats_.delivered;
  not_full_.notify_one();
  return true;
}

size_t IngestQueue::PopBatch(std::vector<IngestEvent>* out,
                             size_t max_events) {
  GSPS_CHECK(max_events >= 1);
  out->clear();
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [this] { return !events_.empty() || closed_; });
  const size_t take = std::min(max_events, events_.size());
  for (size_t i = 0; i < take; ++i) {
    out->push_back(std::move(events_.front()));
    events_.pop_front();
  }
  stats_.delivered += static_cast<int64_t>(take);
  // A batch can free many slots; wake every blocked producer.
  if (take > 0) not_full_.notify_all();
  return take;
}

void IngestQueue::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  not_full_.notify_all();
  not_empty_.notify_all();
}

size_t IngestQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

bool IngestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

IngestQueueStats IngestQueue::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

SpscLane::SpscLane(size_t capacity) : capacity_(capacity), slots_(capacity) {
  GSPS_CHECK(capacity >= 1);
}

// Sleeps until the ring has space for slot `tail` or the lane closes.
// Returns false when closed (the event must be rejected even if space also
// appeared — Close() rejects all later pushes).
bool SpscLane::WaitForSpace(uint64_t tail) {
  producer_waits_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(mutex_);
  sleepers_.fetch_add(1, std::memory_order_seq_cst);
  not_full_.wait(lock, [&] {
    return tail - head_.load(std::memory_order_seq_cst) < capacity_ ||
           closed_.load(std::memory_order_seq_cst);
  });
  sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  return !closed_.load(std::memory_order_acquire);
}

// Sleeps until slot `head` is filled or the lane closes. Returns false
// only when closed AND drained (head caught up with tail).
bool SpscLane::WaitForEvent(uint64_t head) {
  std::unique_lock<std::mutex> lock(mutex_);
  sleepers_.fetch_add(1, std::memory_order_seq_cst);
  not_empty_.wait(lock, [&] {
    return head != tail_.load(std::memory_order_seq_cst) ||
           closed_.load(std::memory_order_seq_cst);
  });
  sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  return head != tail_.load(std::memory_order_acquire);
}

bool SpscLane::Push(IngestEvent event) {
  const uint64_t tail = tail_.load(std::memory_order_relaxed);
  if (tail - head_.load(std::memory_order_acquire) >= capacity_ &&
      !WaitForSpace(tail)) {
    return false;
  }
  if (closed_.load(std::memory_order_acquire)) return false;
  if (!event.keep_stamp) event.enqueue_micros = obs::MonotonicMicros();
  slots_[tail % capacity_] = std::move(event);
  // seq_cst, not plain release: pairs with the sleeper check below so the
  // store and a concurrent consumer's sleeper registration can't both be
  // missed (store-buffering), which would strand the consumer asleep.
  tail_.store(tail + 1, std::memory_order_seq_cst);
  const int64_t depth = static_cast<int64_t>(
      tail + 1 - head_.load(std::memory_order_relaxed));
  if (depth > depth_high_water_.load(std::memory_order_relaxed)) {
    depth_high_water_.store(depth, std::memory_order_relaxed);
  }
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    not_empty_.notify_one();
  }
  return true;
}

bool SpscLane::Pop(IngestEvent* out) {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  if (head == tail_.load(std::memory_order_acquire) && !WaitForEvent(head)) {
    return false;
  }
  *out = std::move(slots_[head % capacity_]);
  head_.store(head + 1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    not_full_.notify_one();
  }
  return true;
}

size_t SpscLane::PopBatch(std::vector<IngestEvent>* out, size_t max_events) {
  GSPS_CHECK(max_events >= 1);
  out->clear();
  const uint64_t head = head_.load(std::memory_order_relaxed);
  uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head == tail) {
    if (!WaitForEvent(head)) return 0;
    tail = tail_.load(std::memory_order_acquire);
  }
  const size_t take =
      static_cast<size_t>(std::min<uint64_t>(max_events, tail - head));
  for (size_t i = 0; i < take; ++i) {
    out->push_back(std::move(slots_[(head + i) % capacity_]));
  }
  head_.store(head + take, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    not_full_.notify_one();
  }
  return take;
}

void SpscLane::Close() {
  closed_.store(true, std::memory_order_seq_cst);
  std::lock_guard<std::mutex> lock(mutex_);
  not_full_.notify_all();
  not_empty_.notify_all();
}

size_t SpscLane::size() const {
  // head first: head never passes tail, so a later tail read keeps the
  // difference non-negative.
  const uint64_t head = head_.load(std::memory_order_acquire);
  return static_cast<size_t>(tail_.load(std::memory_order_acquire) - head);
}

IngestQueueStats SpscLane::Stats() const {
  IngestQueueStats stats;
  stats.accepted =
      static_cast<int64_t>(tail_.load(std::memory_order_acquire));
  stats.delivered =
      static_cast<int64_t>(head_.load(std::memory_order_acquire));
  stats.producer_waits = producer_waits_.load(std::memory_order_relaxed);
  stats.depth_high_water =
      depth_high_water_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace gsps
