#include "gsps/engine/ingest_queue.h"

#include <algorithm>
#include <utility>

#include "gsps/common/check.h"
#include "gsps/obs/trace.h"

namespace gsps {

IngestQueue::IngestQueue(size_t capacity) : capacity_(capacity) {
  GSPS_CHECK(capacity >= 1);
}

bool IngestQueue::Push(IngestEvent event) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_ && !closed_) {
    ++stats_.producer_waits;
    not_full_.wait(lock,
                   [this] { return events_.size() < capacity_ || closed_; });
  }
  if (closed_) return false;
  if (!event.keep_stamp) event.enqueue_micros = obs::MonotonicMicros();
  events_.push_back(std::move(event));
  ++stats_.accepted;
  stats_.depth_high_water = std::max(
      stats_.depth_high_water, static_cast<int64_t>(events_.size()));
  // One waiter per event; the consumer side is single, but notify_one is
  // correct even with several poppers since each wakeup finds an event.
  not_empty_.notify_one();
  return true;
}

bool IngestQueue::Pop(IngestEvent* out) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [this] { return !events_.empty() || closed_; });
  if (events_.empty()) return false;  // Closed and drained.
  *out = std::move(events_.front());
  events_.pop_front();
  ++stats_.delivered;
  not_full_.notify_one();
  return true;
}

size_t IngestQueue::PopBatch(std::vector<IngestEvent>* out,
                             size_t max_events) {
  GSPS_CHECK(max_events >= 1);
  out->clear();
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [this] { return !events_.empty() || closed_; });
  const size_t take = std::min(max_events, events_.size());
  for (size_t i = 0; i < take; ++i) {
    out->push_back(std::move(events_.front()));
    events_.pop_front();
  }
  stats_.delivered += static_cast<int64_t>(take);
  // A batch can free many slots; wake every blocked producer.
  if (take > 0) not_full_.notify_all();
  return take;
}

void IngestQueue::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  not_full_.notify_all();
  not_empty_.notify_all();
}

size_t IngestQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

bool IngestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

IngestQueueStats IngestQueue::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace gsps
