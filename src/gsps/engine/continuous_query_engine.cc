#include "gsps/engine/continuous_query_engine.h"

#include <utility>

#include "gsps/common/check.h"
#include "gsps/iso/subgraph_isomorphism.h"
#include "gsps/join/dominance.h"

namespace gsps {

ContinuousQueryEngine::ContinuousQueryEngine(const EngineOptions& options)
    : options_(options) {
  GSPS_CHECK(options.nnt_depth >= 1);
}

int ContinuousQueryEngine::AddQuery(const Graph& query) {
  GSPS_CHECK_MSG(!started_, "use AddQueryDynamic after Start()");
  queries_.push_back(QueryState{query, ComputeQueryVectors(query), false});
  return static_cast<int>(queries_.size()) - 1;
}

int ContinuousQueryEngine::AddStream(Graph start) {
  GSPS_CHECK_MSG(!started_, "streams are fixed at Start()");
  StreamState state;
  state.graph = std::move(start);
  streams_.push_back(std::move(state));
  return static_cast<int>(streams_.size()) - 1;
}

void ContinuousQueryEngine::Start() {
  GSPS_CHECK(!started_);
  started_ = true;
  for (StreamState& stream : streams_) {
    stream.nnts = std::make_unique<NntSet>(options_.nnt_depth, &dimensions_);
    stream.nnts->Build(stream.graph);
  }
  RebuildStrategy();
}

void ContinuousQueryEngine::ApplyChange(int stream_index,
                                        const GraphChange& change) {
  GSPS_CHECK(started_);
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  // Deletions first, then insertions (§III.B sequentialization).
  for (const EdgeOp& op : change.ops) {
    if (op.kind != EdgeOp::Kind::kDelete) continue;
    if (!stream.graph.HasEdge(op.u, op.v)) continue;
    stream.nnts->DeleteEdge(op.u, op.v);
    stream.graph.RemoveEdge(op.u, op.v);
  }
  for (const EdgeOp& op : change.ops) {
    if (op.kind != EdgeOp::Kind::kInsert) continue;
    if (!stream.graph.EnsureVertex(op.u, op.u_label)) continue;
    if (!stream.graph.EnsureVertex(op.v, op.v_label)) continue;
    if (!stream.graph.AddEdge(op.u, op.v, op.edge_label)) continue;
    stream.nnts->InsertEdge(stream.graph, op.u, op.v);
  }
  FlushDirty(stream_index);
}

std::vector<int> ContinuousQueryEngine::CandidatesForStream(int stream) {
  std::vector<int> mapped;
  mapped.reserve(strategy_to_engine_.size());
  CandidatesForStream(stream, &mapped);
  return mapped;
}

void ContinuousQueryEngine::CandidatesForStream(int stream,
                                                std::vector<int>* out) {
  GSPS_CHECK(started_);
  strategy_->CandidatesForStream(stream, &local_scratch_);
  out->clear();
  for (const int local : local_scratch_) {
    out->push_back(strategy_to_engine_[static_cast<size_t>(local)]);
  }
}

std::vector<std::pair<int, int>> ContinuousQueryEngine::AllCandidatePairs() {
  std::vector<std::pair<int, int>> pairs;
  AllCandidatePairs(&pairs);
  return pairs;
}

void ContinuousQueryEngine::AllCandidatePairs(
    std::vector<std::pair<int, int>>* out) {
  GSPS_CHECK(started_);
  out->clear();
  for (int i = 0; i < num_streams(); ++i) {
    strategy_->CandidatesForStream(i, &local_scratch_);
    for (const int local : local_scratch_) {
      out->emplace_back(i, strategy_to_engine_[static_cast<size_t>(local)]);
    }
  }
}

std::vector<int> ContinuousQueryEngine::RecomputeCandidatesFromScratch(
    int stream_index) {
  GSPS_CHECK(started_);
  std::unique_ptr<JoinStrategy> fresh = MakeJoinStrategy(options_.join_kind);
  std::vector<QueryVectors> vectors;
  for (const QueryState& query : queries_) {
    if (!query.retired) vectors.push_back(query.vectors);
  }
  fresh->SetQueries(std::move(vectors));
  fresh->SetNumStreams(num_streams());
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  for (const VertexId root : stream.nnts->Roots()) {
    fresh->UpdateStreamVertex(stream_index, root, stream.nnts->NpvOf(root));
  }
  std::vector<int> mapped;
  for (const int local : fresh->CandidatesForStream(stream_index)) {
    mapped.push_back(strategy_to_engine_[static_cast<size_t>(local)]);
  }
  return mapped;
}

bool ContinuousQueryEngine::VerifyCandidate(int stream, int query) const {
  return IsSubgraphIsomorphic(queries_[static_cast<size_t>(query)].graph,
                              streams_[static_cast<size_t>(stream)].graph);
}

int ContinuousQueryEngine::AddQueryDynamic(const Graph& query) {
  GSPS_CHECK(started_);
  queries_.push_back(QueryState{query, ComputeQueryVectors(query), false});
  RebuildStrategy();
  return static_cast<int>(queries_.size()) - 1;
}

void ContinuousQueryEngine::RemoveQueryDynamic(int query) {
  GSPS_CHECK(started_);
  queries_[static_cast<size_t>(query)].retired = true;
  RebuildStrategy();
}

const Graph& ContinuousQueryEngine::StreamGraph(int stream) const {
  return streams_[static_cast<size_t>(stream)].graph;
}

const Graph& ContinuousQueryEngine::QueryGraph(int query) const {
  return queries_[static_cast<size_t>(query)].graph;
}

const NntSet& ContinuousQueryEngine::StreamNnts(int stream) const {
  GSPS_CHECK(started_);
  return *streams_[static_cast<size_t>(stream)].nnts;
}

void ContinuousQueryEngine::RebuildStrategy() {
  strategy_ = MakeJoinStrategy(options_.join_kind);
  strategy_to_engine_.clear();
  std::vector<QueryVectors> vectors;
  for (size_t j = 0; j < queries_.size(); ++j) {
    if (queries_[j].retired) continue;
    vectors.push_back(queries_[j].vectors);
    strategy_to_engine_.push_back(static_cast<int>(j));
  }
  strategy_->SetQueries(std::move(vectors));
  strategy_->SetNumStreams(num_streams());
  for (int i = 0; i < num_streams(); ++i) {
    StreamState& stream = streams_[static_cast<size_t>(i)];
    // Prime the strategy with every vertex; drain the dirty set so the next
    // incremental flush starts clean.
    stream.nnts->TakeDirtyRoots(&dirty_scratch_);
    for (const VertexId root : stream.nnts->Roots()) {
      strategy_->UpdateStreamVertex(i, root, stream.nnts->NpvOf(root));
    }
  }
}

QueryVectors ContinuousQueryEngine::ComputeQueryVectors(const Graph& query) {
  // The dimension table is append-only and shared, so interning the query's
  // dimensions up front keeps its vectors valid for the engine's lifetime.
  NntSet query_nnts(options_.nnt_depth, &dimensions_);
  query_nnts.Build(query);
  return BuildQueryVectors(query_nnts);
}

void ContinuousQueryEngine::FlushDirty(int stream_index) {
  StreamState& stream = streams_[static_cast<size_t>(stream_index)];
  stream.nnts->TakeDirtyRoots(&dirty_scratch_);
  for (const VertexId root : dirty_scratch_) {
    if (stream.nnts->TreeOf(root) != nullptr) {
      strategy_->UpdateStreamVertex(stream_index, root,
                                    stream.nnts->NpvOf(root));
    } else {
      strategy_->RemoveStreamVertex(stream_index, root);
    }
  }
}

}  // namespace gsps
