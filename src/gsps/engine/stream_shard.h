// The engine core: one shard of the continuous subgraph pattern search.
//
// A StreamShard owns everything the paper's per-stream pipeline needs —
// the evolving stream graphs, their NNTs and NPVs (§III.B), the pluggable
// join strategy (§IV.B), the candidate-transition tracker, the per-stage
// obs timers, per-query attribution, and the dynamic-query churn machinery.
// It is the single implementation of the tick path (NNT maintain → dirty
// drain → join refresh → tracker observe); the engines in
// continuous_query_engine.h and parallel_query_engine.h are thin schedulers
// over one or many identical shards and contain no copies of this logic.
//
// A shard is single-threaded by construction: whichever worker drives it
// during a barrier has exclusive access, so nothing in here locks. The
// scheduler-state block at the bottom of the class exists for those
// drivers — the shard core itself never reads it.

#ifndef GSPS_ENGINE_STREAM_SHARD_H_
#define GSPS_ENGINE_STREAM_SHARD_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "gsps/engine/candidate_tracker.h"
#include "gsps/engine/filter_stats.h"
#include "gsps/graph/graph.h"
#include "gsps/graph/graph_change.h"
#include "gsps/join/join_strategy.h"
#include "gsps/nnt/dimension.h"
#include "gsps/nnt/nnt_set.h"
#include "gsps/obs/metrics.h"
#include "gsps/obs/trace.h"

namespace gsps {

struct EngineOptions {
  // Maximum NNT depth; the paper's self-test (Fig. 12) shows 3 suffices.
  int nnt_depth = 3;
  JoinKind join_kind = JoinKind::kDominatedSetCover;
};

class StreamShard {
 public:
  explicit StreamShard(const EngineOptions& options);

  StreamShard(const StreamShard&) = delete;
  StreamShard& operator=(const StreamShard&) = delete;

  // --- Setup (before Start) -------------------------------------------------

  // Registers a query pattern; returns its index.
  int AddQuery(const Graph& query);

  // Registers a stream with its timestamp-0 graph; returns its index.
  int AddStream(Graph start);

  // Builds all NNTs and primes the join strategy. Must be called once after
  // registration and before any ApplyChange/candidate call.
  void Start();

  // --- Streaming ------------------------------------------------------------

  // Applies one change batch to stream `stream`: updates the graph, the
  // NNTs (deletions first, then insertions, §III.B), and pushes the changed
  // NPVs into the join strategy.
  void ApplyChange(int stream, const GraphChange& change);

  // Query indices that are candidates ("possibly joinable", Def. 2.8) for
  // stream `stream` right now, ascending. The buffer form clears *out and
  // reuses its capacity — the allocation-free path for per-timestamp loops.
  std::vector<int> CandidatesForStream(int stream);
  void CandidatesForStream(int stream, std::vector<int>* out);

  // All candidate (stream, query) pairs at the current state. Buffer form
  // as above.
  std::vector<std::pair<int, int>> AllCandidatePairs();
  void AllCandidatePairs(std::vector<std::pair<int, int>>* out);

  // Recomputes the candidates of one stream on a freshly constructed join
  // strategy fed the stream's current NPVs — deliberately bypassing all
  // incremental state. Differential referee for the cached verdicts (fuzz
  // oracle, tests); allocates, so never on the hot path.
  std::vector<int> RecomputeCandidatesFromScratch(int stream);

  // Runs the exact subgraph-isomorphism check on one pair (filter+verify;
  // expensive, off the monitoring hot path).
  bool VerifyCandidate(int stream, int query) const;

  // Pushes the join strategy's pending per-query attribution (dominance
  // probes, refresh time) into the global AttributionRegistry. Call at
  // metrics-flush cadence — per barrier in the parallel engine, per
  // metrics interval in single-threaded drivers. No-op before Start().
  void FlushAttribution();

  // --- Candidate transitions ------------------------------------------------

  // Diffs `*current` (ascending query indices) against the last observed
  // set of `stream` and writes the appearance/disappearance events into
  // *out. Swap-based and allocation-free in steady state (see
  // CandidateTracker::Observe); the caller chooses what to observe — raw
  // candidates or a verified subset — so filter+verify drivers keep their
  // semantics. Must not be called before Start().
  void ObserveTransitions(int stream, std::vector<int>* current,
                          CandidateTransitions* out);

  // The most recently observed candidate set of `stream`.
  const std::vector<int>& LastObservedCandidates(int stream) const;

  // --- Dynamic queries (extension; the paper leaves these as future work) ---

  // Registers a new query while streaming, incrementally: the join
  // strategy's slotted AddQuery folds the new vectors into its existing
  // state (no rebuild). Returns the engine id — the most recently retired
  // slot when one is free, a fresh index otherwise. When
  // the new query introduces dimensions no prior query used, every stream
  // vertex is replayed through the strategy once (the dense dim space was
  // renumbered); otherwise the cost is proportional to the new query alone.
  int AddQueryDynamic(const Graph& query);

  // Retires a query in place: its slab rows, signatures and per-stream
  // bookkeeping are freed inside the strategy, and the engine slot becomes
  // reusable by a later AddQueryDynamic. Checks (GSPS_CHECK) that `query`
  // is in range and not already removed.
  void RemoveQueryDynamic(int query);

  // True when `query` has been removed. Checks that `query` is in range.
  bool IsQueryRetired(int query) const;

  // Asserts the full churn-invariant battery of the underlying strategy
  // plus the shard's own slot maps. Test/fuzz hook; O(everything).
  void CheckChurnInvariants() const;

  // --- Introspection --------------------------------------------------------

  int num_streams() const { return static_cast<int>(streams_.size()); }
  // Slot-space size: includes retired slots awaiting reuse.
  int num_queries() const { return static_cast<int>(queries_.size()); }
  // Queries currently registered (num_queries() minus retired slots).
  int num_active_queries() const { return num_active_queries_; }
  const Graph& StreamGraph(int stream) const;
  const Graph& QueryGraph(int query) const;
  const NntSet& StreamNnts(int stream) const;
  const DimensionTable& dimensions() const { return dimensions_; }

  // --- Scheduler state ------------------------------------------------------
  // Owned by whichever engine drives this shard; the shard core never
  // touches these. They live here so the sequential and parallel engines
  // share one shard type instead of wrapping it in per-engine structs.

  // Global index of each local stream (parallel round-robin partitioning).
  std::vector<int> global_streams;
  // AllCandidatePairs scratch: per local stream, the candidate queries.
  std::vector<std::vector<int>> join_results;
  // Per-worker barrier sample; touched only by the worker running this
  // shard during a barrier, merged by TakeBarrierStats between barriers.
  TimestampStats pending;
  // Observability: the worker running this shard records into sink/trace
  // during a barrier (installed via ScopedObsContext); the calling thread
  // folds the sink into MetricsRegistry::Global() after the barrier —
  // never a lock on the hot path. busy_micros carries this barrier's work
  // time out to that post-barrier accounting.
  obs::MetricSink sink;
  obs::TraceBuffer* trace = nullptr;
  int64_t busy_micros = 0;

  // Pipelined-engine state (engine/pipelined_query_engine.cc). The shard's
  // worker thread fills the epoch_* snapshots for the just-completed epoch
  // and only then release-publishes `watermark`; the driver reads the
  // snapshots only after observing watermark >= target and publishes no new
  // epoch until its reads are done, so the pair needs no lock. The barrier
  // engine leaves all of this untouched.
  std::vector<std::vector<int>> epoch_candidates;  // Per local stream.
  TimestampStats epoch_stats;  // Accumulated across epochs, drained by
                               // TakeBarrierStats.
  std::atomic<int32_t> watermark{-1};

 private:
  struct StreamState {
    Graph graph;
    std::unique_ptr<NntSet> nnts;
  };
  struct QueryState {
    Graph graph;
    QueryVectors vectors;  // Computed once at registration.
    bool retired = false;
  };

  // Builds the NPVs of a query graph against the shared dimension table.
  QueryVectors ComputeQueryVectors(const Graph& query);

  // Recreates the join strategy from current queries and stream vectors.
  void RebuildStrategy();

  // Pushes dirty NPVs of one stream into the strategy.
  void FlushDirty(int stream);

  EngineOptions options_;
  DimensionTable dimensions_;
  std::vector<QueryState> queries_;
  std::vector<StreamState> streams_;
  std::unique_ptr<JoinStrategy> strategy_;
  CandidateTracker tracker_{0};  // Resized (reconstructed) at Start().
  // Maps the strategy's local query slots back to engine query indices and
  // vice versa. With slot reuse neither map is monotonic, so candidate
  // lists are sorted after mapping. engine_to_strategy_ holds -1 for
  // retired engine slots.
  std::vector<int> strategy_to_engine_;
  std::vector<int> engine_to_strategy_;
  // Retired engine slots available for AddQueryDynamic reuse (LIFO).
  std::vector<int> free_query_slots_;
  int num_active_queries_ = 0;
  // Reused dirty-root drain buffer so FlushDirty allocates nothing in
  // steady state.
  std::vector<VertexId> dirty_scratch_;
  // Reused strategy-local candidate buffer for the index mapping in
  // CandidatesForStream, and the mapped per-stream buffer used by
  // AllCandidatePairs.
  std::vector<int> local_scratch_;
  std::vector<int> mapped_scratch_;
  bool started_ = false;
};

}  // namespace gsps

#endif  // GSPS_ENGINE_STREAM_SHARD_H_
