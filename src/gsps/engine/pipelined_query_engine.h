// Barrier-free pipelined execution over StreamShards.
//
// The barrier engine (parallel_query_engine.h) advances all shards in
// lockstep: every timestamp fans out one ParallelFor and blocks until the
// slowest shard finishes, so under a skewed stream-size distribution most
// workers idle at every tick. This engine removes that barrier. Each shard
// gets a dedicated worker thread fed by its own bounded SPSC lane; a
// router thread classifies incoming IngestEvents by the stream -> shard
// plan and forwards them (IngestQueue's lossless/backpressure contract end
// to end), so shards tick asynchronously at their own pace:
//
//   producers -> IngestQueue (MPSC) -> router -> SpscLane x S -> workers
//
// Inside a worker, consecutive delta fragments addressed to the same
// (stream, timestamp) coalesce into one GraphChange batch before NNT
// maintenance. This amortizes dirty-root drains and join refreshes — and
// it is also what keeps split deltas correct: the paper's deletions-first
// protocol (§III.B) is defined per whole timestamp batch, so fragments
// must be merged before ApplyChange or the result could diverge from the
// sequential engine. A batch is flushed when a later timestamp arrives for
// its stream, or at an epoch/control marker.
//
// Consistency is reconciled at epochs instead of barriers. The driver
// publishes a target timestamp as an in-band marker that the router
// broadcasts to every lane; because lanes are FIFO, a marker reaches each
// worker only after every event published before it. On the marker, a
// worker flushes its pending batches, snapshots each local stream's
// candidate set and its accumulated stats into the shard's epoch_* fields,
// merges its metric sink, and only then release-publishes the shard
// watermark. AdvanceEpoch returns once min(watermarks) >= target, after
// which AllCandidatePairs / CandidatesForStream / ObserveTransitions /
// TakeBarrierStats read the snapshots — byte-identical to the sequential
// engine at that timestamp (fuzz oracle 8 enforces this).
//
// Driver discipline the snapshot protocol relies on (checked where cheap,
// documented where not): AdvanceEpoch(t) may only be called once every
// data event with timestamp <= t has been pushed, epoch targets are
// strictly increasing, and a single driver thread issues epochs and churn
// ops. Producers may keep pushing data for later epochs while the driver
// reads — workers write only shard.pending and next-epoch state until the
// next marker, never the published snapshots.
//
// Dynamic queries ride the same in-band channel: AddQueryDynamic /
// RemoveQueryDynamic append a control op, broadcast a control marker, and
// block until every worker has applied it (flushing pending data first, so
// the op lands at the same point of every shard's history) — the slot
// agreement check carries over from the barrier engine.

#ifndef GSPS_ENGINE_PIPELINED_QUERY_ENGINE_H_
#define GSPS_ENGINE_PIPELINED_QUERY_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "gsps/engine/candidate_tracker.h"
#include "gsps/engine/filter_stats.h"
#include "gsps/engine/ingest_audit.h"
#include "gsps/engine/ingest_queue.h"
#include "gsps/engine/shard_assignment.h"
#include "gsps/engine/stream_shard.h"
#include "gsps/graph/graph.h"
#include "gsps/graph/graph_change.h"
#include "gsps/obs/obs.h"

namespace gsps {

// In-band marker streams. Events with a negative stream are broadcast by
// the router to every lane instead of being routed.
inline constexpr int32_t kEpochMarkerStream = -1;  // timestamp = target.
inline constexpr int32_t kControlOpStream = -2;    // timestamp = op index.

struct PipelinedEngineOptions {
  EngineOptions engine;
  // Worker count; 0 means ThreadPool::HardwareThreads(). The effective
  // shard count is min(num_threads, num_streams). The router adds one
  // mostly-idle thread on top.
  int num_threads = 0;
  // Capacity of the shared producer-facing MPSC queue and of each
  // per-shard SPSC lane.
  size_t ingest_capacity = 4096;
  size_t lane_capacity = 1024;
  // Skew is what this engine exists for, so it defaults to the balanced
  // placement (either policy is output-identical).
  ShardAssignment assignment = ShardAssignment::kLpt;
  // Optional allocation probe sampled by each worker around its marker
  // processing (a per-thread allocation count, e.g. from
  // gsps/common/alloc_hook.h). The engine never references the alloc-hook
  // symbols itself — binaries that link the hook inject it here, and
  // LaneReport::steady_allocs then proves the steady-state worker loop
  // (pop, coalesce, ApplyChange, flush, snapshot) stays off the heap.
  int64_t (*alloc_probe)() = nullptr;
  // Epochs (counting the epoch-0 close at Start) whose allocations are
  // warmup rather than steady state. The default covers buffer fills on
  // first use; callers whose workload finishes warming slabs and free
  // lists later (micro_pipeline's identity cycles need one full reuse
  // pass) raise it to start the steady-state clock at a later epoch.
  int64_t alloc_warmup_epochs = 2;
};

class PipelinedQueryEngine {
 public:
  explicit PipelinedQueryEngine(const PipelinedEngineOptions& options);
  ~PipelinedQueryEngine();  // Implies Shutdown().

  PipelinedQueryEngine(const PipelinedQueryEngine&) = delete;
  PipelinedQueryEngine& operator=(const PipelinedQueryEngine&) = delete;

  // --- Setup (before Start) -------------------------------------------------

  int AddQuery(const Graph& query);
  int AddStream(Graph start);

  // Builds the shards (shard-parallel, on the worker threads), starts the
  // router, and completes epoch 0 — the timestamp-0 snapshot — so reads
  // are valid immediately.
  void Start();

  // --- Ingest ---------------------------------------------------------------

  // Enqueues one data event (stream >= 0, timestamp >= 1, timestamps
  // non-decreasing per stream with one producer per stream). Blocks on
  // backpressure; returns false only after Shutdown closed the queue.
  // Multi-producer safe.
  bool Ingest(IngestEvent event);

  // Direct producer access for open-loop drivers (gsps_loadgen).
  IngestQueue& ingest_queue() { return *ingest_; }

  // --- Epoch protocol (single driver thread) --------------------------------

  // Publishes the epoch marker for `timestamp` (strictly greater than the
  // previous epoch) and blocks until every shard's watermark reaches it.
  // Caller guarantees all data events with timestamp <= `timestamp` were
  // pushed before this call.
  void AdvanceEpoch(int32_t timestamp);

  // Last completed epoch (-0 after Start; -1 before).
  int32_t epoch() const { return epoch_; }

  // --- Epoch-consistent reads (driver thread, between epochs) ---------------

  // The candidate set of `stream` as of the last completed epoch.
  std::vector<int> CandidatesForStream(int stream) const;
  void CandidatesForStream(int stream, std::vector<int>* out) const;

  // All candidate (stream, query) pairs as of the last completed epoch,
  // ascending stream-major — byte-identical to the sequential engine at
  // the epoch timestamp.
  std::vector<std::pair<int, int>> AllCandidatePairs() const;
  void AllCandidatePairs(std::vector<std::pair<int, int>>* out) const;

  // Diffs `*current` against the driver-side tracker (same semantics as
  // the other engines; the caller picks what to observe).
  void ObserveTransitions(int stream, std::vector<int>* current,
                          CandidateTransitions* out);
  const std::vector<int>& LastObservedCandidates(int stream) const;

  // Exact subgraph-isomorphism check against the shard's live graph. Only
  // valid when the engine is quiescent past the last epoch (no data events
  // pushed since AdvanceEpoch returned).
  bool VerifyCandidate(int stream, int query) const;

  // Merged per-shard stats accumulated at epoch closes since the previous
  // call (same shape as the barrier engine's TakeBarrierStats).
  TimestampStats TakeBarrierStats();

  // --- Dynamic queries (driver thread) --------------------------------------

  int AddQueryDynamic(const Graph& query);
  void RemoveQueryDynamic(int query);
  // Quiescent-only, like VerifyCandidate.
  void CheckChurnInvariants() const;

  // --- Shutdown -------------------------------------------------------------

  // Closes the ingest queue, drains router and lanes (workers flush any
  // pending batches on exit, so every accepted event is applied), joins
  // all threads, and folds the router/queue counters into the metrics
  // registry. Idempotent; reads stay valid afterwards.
  void Shutdown();

  // --- Introspection --------------------------------------------------------

  int num_streams() const { return static_cast<int>(stream_to_shard_.size()); }
  int num_queries() const { return num_queries_; }
  int num_active_queries() const { return num_active_queries_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int num_threads() const { return options_.num_threads; }
  const Graph& StreamGraph(int stream) const;  // Quiescent-only.
  const Graph& QueryGraph(int query) const;    // Quiescent-only.

  // Per-lane accounting for audits and latency reporting. Valid after
  // Shutdown(), or between epochs while no data events are in flight past
  // the last marker.
  struct LaneReport {
    IngestQueueStats lane;          // SPSC lane counters.
    int64_t applied_batches = 0;    // Coalesced batches applied to the shard.
    int64_t applied_events = 0;     // Data events consumed from the lane.
    int64_t coalesced_events = 0;   // Fragments merged into a pending batch.
    int64_t order_violations = 0;   // Per-lane IngestOrderAudit total.
    int64_t steady_allocs = 0;      // Probe delta after the warmup epochs.
    int32_t watermark = -1;
    obs::HistogramData e2e_micros;           // Enqueue stamp -> applied.
    obs::HistogramData watermark_lag_micros; // Marker publish -> advance.
  };
  LaneReport ReportLane(int shard) const;

 private:
  struct ControlOp {
    bool add = false;
    Graph query;    // Add payload.
    int query_id = -1;  // Remove target.
  };

  struct Worker {
    explicit Worker(size_t lane_capacity) : lane(lane_capacity) {}

    SpscLane lane;
    std::thread thread;

    // Worker-local coalescing state, indexed by local stream: the pending
    // batch, its timestamp (-1 = none), and the earliest fragment stamp.
    std::vector<GraphChange> pending;
    std::vector<int32_t> pending_ts;
    std::vector<int64_t> pending_stamp;

    IngestOrderAudit audit;
    int64_t applied_batches = 0;
    int64_t applied_events = 0;
    int64_t coalesced_events = 0;
    int64_t steady_allocs = 0;
    int64_t last_probe = 0;
    int64_t epochs_seen = 0;
    obs::HistogramData e2e;
    obs::HistogramData lag;

    // Control-op acknowledgement: the worker stores the resulting slot,
    // then release-publishes the count; the driver reads after acquire.
    int last_control_slot = -1;
    std::atomic<int64_t> acked_ops{0};
  };

  void WorkerLoop(int s);
  void RouterLoop();
  // Applies the pending batch of `local` (audit, e2e stamp, shard apply).
  void FlushPending(Worker& worker, StreamShard& shard, int local);
  void FlushAllPending(Worker& worker, StreamShard& shard);
  void HandleDataEvent(Worker& worker, StreamShard& shard, IngestEvent& event);
  void HandleMarker(Worker& worker, StreamShard& shard,
                    const IngestEvent& marker);
  void HandleControlOp(Worker& worker, StreamShard& shard,
                       const IngestEvent& event);
  // Pushes a broadcast marker (negative stream) and returns.
  void PushMarker(int32_t stream, int32_t timestamp);
  int32_t MinWatermark() const;

  PipelinedEngineOptions options_;
  std::vector<Graph> pending_queries_;
  std::vector<Graph> pending_streams_;

  std::vector<std::unique_ptr<StreamShard>> shards_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<int> stream_to_shard_;
  std::vector<int> stream_to_local_;
  std::unique_ptr<IngestQueue> ingest_;
  std::thread router_;

  // Driver-side candidate transition tracker over global streams.
  CandidateTracker tracker_{0};

  // Epoch / ack / setup rendezvous. Workers publish state with release
  // stores (shard watermarks, acked_ops, ready_workers_) and notify under
  // the mutex; the driver re-checks its predicate under the mutex.
  mutable std::mutex epoch_mutex_;
  std::condition_variable epoch_cv_;
  std::atomic<int> ready_workers_{0};

  // Control ops are append-only and only appended while every worker is
  // known to be past the previous op (the driver blocks on acks), so
  // workers can read entries by index without locking.
  std::vector<ControlOp> control_ops_;

  // Router-side counters (router-written, folded at Shutdown).
  std::atomic<int64_t> events_routed_{0};
  std::atomic<int64_t> markers_broadcast_{0};

  std::vector<bool> query_retired_;
  int num_queries_ = 0;
  int num_active_queries_ = 0;
  int32_t epoch_ = -1;
  bool started_ = false;
  bool shutdown_ = false;
};

}  // namespace gsps

#endif  // GSPS_ENGINE_PIPELINED_QUERY_ENGINE_H_
