// Bounded MPSC ingest queue with blocking backpressure.
//
// The wire between delta producers (network readers, loadgen replay
// threads) and the single consumer thread that drives an engine's
// ApplyChange. The contract the ingest pipeline is built on:
//
//   - Bounded: at most `capacity` events are ever buffered; a full queue
//     BLOCKS producers (backpressure) instead of dropping or resizing.
//   - Lossless: an event accepted by Push (return true) is delivered by
//     exactly one Pop/PopBatch. Close() rejects later Pushes (return
//     false, event untouched) but drains everything already accepted —
//     Pop keeps succeeding until the queue is empty, then returns false.
//   - FIFO: events leave in global arrival order, so the deltas of one
//     stream are never reordered relative to each other — the engine's
//     deletions-first batch protocol stays intact per batch, and
//     timestamps per stream stay monotone as long as each stream has one
//     producer.
//
// Push stamps each event with the enqueue time (obs::MonotonicMicros, a
// plain clock read that works in GSPS_OBS_DISABLED builds), so the
// consumer can compute true end-to-end latency — queue wait included —
// the number that exposes coordinated omission under open-loop load.
//
// The queue keeps its own counters (accepted, delivered, producer waits,
// depth high-water) instead of recording obs metrics internally: producer
// threads have no obs context, and the driver owning the queue decides
// which sink the stats land in (see tools/gsps_loadgen.cc).

#ifndef GSPS_ENGINE_INGEST_QUEUE_H_
#define GSPS_ENGINE_INGEST_QUEUE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "gsps/graph/graph_change.h"

namespace gsps {

// One change batch addressed to one stream.
struct IngestEvent {
  int32_t stream = 0;
  int32_t timestamp = 0;
  // Stamped by Push: when the event entered the queue. For open-loop
  // drivers that schedule sends, the producer may pre-set this to the
  // *intended* send time (earlier than the actual Push when the producer
  // fell behind) by setting `keep_stamp`; latency measured from it then
  // includes producer lag instead of hiding it.
  int64_t enqueue_micros = 0;
  bool keep_stamp = false;
  GraphChange change;
};

struct IngestQueueStats {
  int64_t accepted = 0;        // Events Push returned true for.
  int64_t delivered = 0;       // Events handed out by Pop/PopBatch.
  int64_t producer_waits = 0;  // Times a Push blocked on a full queue.
  int64_t depth_high_water = 0;
};

class IngestQueue {
 public:
  // `capacity` must be >= 1.
  explicit IngestQueue(size_t capacity);

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  // Enqueues one event, blocking while the queue is full. Returns true
  // once the event is in; returns false (event not enqueued) when the
  // queue was closed before space became available.
  bool Push(IngestEvent event);

  // Dequeues the oldest event, blocking while the queue is empty. Returns
  // false only when the queue is closed AND fully drained.
  bool Pop(IngestEvent* out);

  // Dequeues up to `max_events` (>= 1) in arrival order, blocking until at
  // least one event is available. Clears *out first; returns the number
  // dequeued — 0 only when closed and drained. Batching amortizes the
  // lock: under load the consumer takes one mutex hit for a whole batch.
  size_t PopBatch(std::vector<IngestEvent>* out, size_t max_events);

  // Rejects all future Pushes and wakes every waiter. Already-accepted
  // events remain poppable (drain-on-shutdown). Idempotent.
  void Close();

  size_t capacity() const { return capacity_; }
  size_t size() const;
  bool closed() const;
  IngestQueueStats Stats() const;

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<IngestEvent> events_;
  IngestQueueStats stats_;
  bool closed_ = false;
};

// Bounded single-producer/single-consumer lane over a preallocated ring.
//
// The per-shard wire of the pipelined engine: the router thread is the one
// producer, the shard worker the one consumer. Same contract as
// IngestQueue (bounded, blocking backpressure, lossless, FIFO,
// drain-on-Close, keep_stamp stamping), but the fast path is two atomic
// loads and one release store — no mutex, no allocation: the slot ring is
// sized once in the constructor, so a lane never touches the heap after
// construction (the events moved through it carry their own buffers).
//
// Blocking uses a mutex + condvars only on the slow path. The notify
// handshake is the classic store-buffering pattern: the fast path's
// seq_cst publish store and the sleeper-count check cannot both miss, so a
// waiter either sees the new state or is woken under the mutex it
// registered with.
//
// Threading contract: at most one thread calls Push and at most one calls
// Pop/PopBatch at any time. Close() may be called by either (in the
// pipelined engine the producer closes its own lane); a Push racing with
// Close may still be accepted, and is then drained like any other event.
class SpscLane {
 public:
  // `capacity` must be >= 1.
  explicit SpscLane(size_t capacity);

  SpscLane(const SpscLane&) = delete;
  SpscLane& operator=(const SpscLane&) = delete;

  // Same semantics as IngestQueue::Push: blocks while full, stamps
  // enqueue_micros unless keep_stamp, returns false once closed.
  bool Push(IngestEvent event);

  // Same semantics as IngestQueue::Pop / PopBatch.
  bool Pop(IngestEvent* out);
  size_t PopBatch(std::vector<IngestEvent>* out, size_t max_events);

  void Close();

  size_t capacity() const { return capacity_; }
  size_t size() const;
  bool closed() const { return closed_.load(std::memory_order_acquire); }
  // Exact once the lane is quiescent (producer and consumer done);
  // approximate while both sides are live.
  IngestQueueStats Stats() const;

 private:
  bool WaitForSpace(uint64_t tail);
  bool WaitForEvent(uint64_t head);

  const size_t capacity_;
  std::vector<IngestEvent> slots_;
  // head_ == next slot to pop (consumer-advanced), tail_ == next slot to
  // fill (producer-advanced); size = tail_ - head_ with free-running
  // 64-bit indices (no wrap handling needed at realistic event counts).
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> tail_{0};
  std::atomic<bool> closed_{false};
  std::atomic<int64_t> producer_waits_{0};
  std::atomic<int64_t> depth_high_water_{0};
  // Number of threads registered on either condvar; checked after every
  // publish so the fast path skips the mutex when nobody sleeps.
  std::atomic<int> sleepers_{0};
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
};

}  // namespace gsps

#endif  // GSPS_ENGINE_INGEST_QUEUE_H_
