// Label-path fingerprint index in the style of GraphGrep [17].
//
// Enumerates every vertex-simple path of length 0..max_length and counts
// occurrences of each label sequence (vertex and edge labels interleaved).
// Containment of the counts is a necessary condition for subgraph
// isomorphism: an embedding maps each directed vertex-simple path of the
// query to a distinct one in the data graph with the same label sequence.

#ifndef GSPS_BASELINES_GRAPHGREP_PATH_INDEX_H_
#define GSPS_BASELINES_GRAPHGREP_PATH_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "gsps/graph/graph.h"

namespace gsps {

// Path-count fingerprint of one graph.
//
// GraphGrep compresses the path table into a fixed-size fingerprint: label
// paths are hashed into `num_buckets` buckets and the counts of colliding
// paths add up. Collisions only ever weaken the filter (counts grow), so
// soundness is preserved; a small bucket count reproduces the coarse
// filtering the paper reports for GraphGrep, while 0 keeps exact per-path
// counts (an idealized, collision-free GraphGrep).
class PathIndex {
 public:
  // Builds the fingerprint of `graph` with paths up to `max_length` edges.
  // GraphGrep's default (and the paper's setting) is max_length 4.
  PathIndex(const Graph& graph, int max_length, int num_buckets = 0);

  // True if every label-path count of `query` is <= the matching count in
  // *this — the GraphGrep filter condition ("this graph may contain query").
  bool MayContain(const PathIndex& query) const;

  // Number of distinct label paths.
  int64_t NumDistinctPaths() const {
    return static_cast<int64_t>(counts_.size());
  }

  int64_t TotalPaths() const { return total_paths_; }

 private:
  // Keys are 64-bit path hashes, folded to `num_buckets` buckets when
  // bounded. Collisions sum counts, which can only make the filter more
  // permissive (never introducing false negatives beyond the method's own).
  std::unordered_map<uint64_t, int32_t> counts_;
  int num_buckets_ = 0;
  int64_t total_paths_ = 0;
};

}  // namespace gsps

#endif  // GSPS_BASELINES_GRAPHGREP_PATH_INDEX_H_
