#include "gsps/baselines/graphgrep/path_index.h"

#include "gsps/common/check.h"

namespace gsps {
namespace {

constexpr uint64_t kHashSeed = 0x9e3779b97f4a7c15ULL;

uint64_t MixHash(uint64_t hash, uint64_t value) {
  hash ^= value + kHashSeed + (hash << 6) + (hash >> 2);
  hash *= 0xff51afd7ed558ccdULL;
  return hash ^ (hash >> 33);
}

// DFS over vertex-simple paths accumulating the rolling label hash.
// GraphGrep's fingerprint keys are vertex-label sequences (id-paths hashed
// by their node labels); edge labels are not part of the key.
void Expand(const Graph& graph, VertexId at, int remaining, uint64_t hash,
            std::vector<bool>& on_path,
            std::unordered_map<uint64_t, int32_t>& counts, int64_t& total) {
  if (remaining == 0) return;
  for (const HalfEdge& half : graph.Neighbors(at)) {
    if (on_path[static_cast<size_t>(half.to)]) continue;
    const uint64_t next = MixHash(
        hash, static_cast<uint64_t>(graph.GetVertexLabel(half.to)) + 1);
    ++counts[next];
    ++total;
    on_path[static_cast<size_t>(half.to)] = true;
    Expand(graph, half.to, remaining - 1, next, on_path, counts, total);
    on_path[static_cast<size_t>(half.to)] = false;
  }
}

}  // namespace

PathIndex::PathIndex(const Graph& graph, int max_length, int num_buckets)
    : num_buckets_(num_buckets) {
  GSPS_CHECK(max_length >= 0);
  GSPS_CHECK(num_buckets >= 0);
  std::unordered_map<uint64_t, int32_t> exact;
  std::vector<bool> on_path(static_cast<size_t>(graph.VertexIdBound()), false);
  for (const VertexId v : graph.VertexIds()) {
    const uint64_t root_hash =
        MixHash(0, static_cast<uint64_t>(graph.GetVertexLabel(v)) + 1);
    ++exact[root_hash];  // The length-0 path: label frequencies.
    ++total_paths_;
    on_path[static_cast<size_t>(v)] = true;
    Expand(graph, v, max_length, root_hash, on_path, exact, total_paths_);
    on_path[static_cast<size_t>(v)] = false;
  }
  if (num_buckets_ == 0) {
    counts_ = std::move(exact);
  } else {
    for (const auto& [hash, count] : exact) {
      counts_[hash % static_cast<uint64_t>(num_buckets_)] += count;
    }
  }
}

bool PathIndex::MayContain(const PathIndex& query) const {
  GSPS_DCHECK(num_buckets_ == query.num_buckets_);
  for (const auto& [hash, count] : query.counts_) {
    auto it = counts_.find(hash);
    if (it == counts_.end() || it->second < count) return false;
  }
  return true;
}

}  // namespace gsps
