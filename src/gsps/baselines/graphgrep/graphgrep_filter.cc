#include "gsps/baselines/graphgrep/graphgrep_filter.h"

#include "gsps/common/check.h"

namespace gsps {

GraphGrepFilter::GraphGrepFilter(int max_path_length, int num_buckets)
    : max_path_length_(max_path_length), num_buckets_(num_buckets) {
  GSPS_CHECK(max_path_length >= 1);
  GSPS_CHECK(num_buckets >= 0);
}

void GraphGrepFilter::SetQueries(const std::vector<Graph>& queries) {
  GSPS_CHECK(query_indexes_.empty());
  query_indexes_.reserve(queries.size());
  for (const Graph& query : queries) {
    query_indexes_.emplace_back(query, max_path_length_, num_buckets_);
  }
}

std::vector<int> GraphGrepFilter::CandidateQueries(const Graph& data) const {
  const PathIndex data_index(data, max_path_length_, num_buckets_);
  std::vector<int> candidates;
  for (size_t j = 0; j < query_indexes_.size(); ++j) {
    if (data_index.MayContain(query_indexes_[j])) {
      candidates.push_back(static_cast<int>(j));
    }
  }
  return candidates;
}

void GraphGrepFilter::IndexDatabase(const std::vector<Graph>& database) {
  GSPS_CHECK(database_indexes_.empty());
  database_indexes_.reserve(database.size());
  for (const Graph& graph : database) {
    database_indexes_.emplace_back(graph, max_path_length_, num_buckets_);
  }
}

std::vector<int> GraphGrepFilter::CandidateGraphsFor(
    const Graph& query) const {
  const PathIndex query_index(query, max_path_length_, num_buckets_);
  std::vector<int> candidates;
  for (size_t i = 0; i < database_indexes_.size(); ++i) {
    if (database_indexes_[i].MayContain(query_index)) {
      candidates.push_back(static_cast<int>(i));
    }
  }
  return candidates;
}

}  // namespace gsps
