// GraphGrep-style filter for static databases and for graph streams.
//
// Static use: index every database graph once, then filter a query against
// all of them. Stream use: the query fingerprints are precomputed; each
// stream graph's fingerprint is recomputed from the current snapshot at
// every timestamp (path enumeration needs no mining, which is exactly why
// GraphGrep stays cheap on streams — and why its candidate sets are large).

#ifndef GSPS_BASELINES_GRAPHGREP_GRAPHGREP_FILTER_H_
#define GSPS_BASELINES_GRAPHGREP_GRAPHGREP_FILTER_H_

#include <memory>
#include <vector>

#include "gsps/baselines/graphgrep/path_index.h"
#include "gsps/graph/graph.h"

namespace gsps {

class GraphGrepFilter {
 public:
  // `max_path_length` follows GraphGrep's default of 4 (longer lengths make
  // enumeration explode, as §III observes). `num_buckets` is the fingerprint
  // size (see PathIndex); GraphGrep's coarse fixed-size fingerprint is the
  // default, 0 selects exact path counts.
  explicit GraphGrepFilter(int max_path_length = 4, int num_buckets = 1024);

  // Precomputes the fingerprints of the (fixed) query workload.
  void SetQueries(const std::vector<Graph>& queries);

  // Indices of queries that may be contained in `data`, ascending.
  // Fingerprints `data` on the fly.
  std::vector<int> CandidateQueries(const Graph& data) const;

  // Static-database direction (Fig. 13 experiments): fingerprint every
  // database graph once, then filter queries against the stored index.
  void IndexDatabase(const std::vector<Graph>& database);

  // Indices of indexed database graphs that may contain `query`, ascending.
  std::vector<int> CandidateGraphsFor(const Graph& query) const;

  int max_path_length() const { return max_path_length_; }

 private:
  int max_path_length_;
  int num_buckets_;
  std::vector<PathIndex> query_indexes_;
  std::vector<PathIndex> database_indexes_;
};

}  // namespace gsps

#endif  // GSPS_BASELINES_GRAPHGREP_GRAPHGREP_FILTER_H_
