#include "gsps/baselines/gindex/gindex_filter.h"

#include "gsps/common/check.h"
#include "gsps/iso/subgraph_isomorphism.h"

namespace gsps {

GindexFilter::GindexFilter(const GspanOptions& options) : options_(options) {}

GspanOptions GindexFilter::Gindex1Options() {
  GspanOptions options;
  options.max_edges = 10;
  options.min_support_fraction = 0.1;
  return options;
}

GspanOptions GindexFilter::Gindex2Options() {
  GspanOptions options;
  options.max_edges = 3;
  options.min_support_fraction = 0.0;  // Effective threshold: 1 graph.
  return options;
}

void GindexFilter::BuildIndex(const std::vector<Graph>& database) {
  database_size_ = static_cast<int>(database.size());
  features_ = MineFrequentSubgraphs(database, options_);
}

std::vector<int> GindexFilter::CandidateGraphsFor(const Graph& query) const {
  std::vector<bool> candidate(static_cast<size_t>(database_size_), true);
  for (const MinedFeature& feature : features_) {
    if (feature.pattern.NumEdges() > query.NumEdges()) continue;
    if (!IsSubgraphIsomorphic(feature.pattern, query)) continue;
    // Every graph outside the feature's support set cannot contain the
    // query: knock it out.
    std::vector<bool> in_support(static_cast<size_t>(database_size_), false);
    for (const int g : feature.support) {
      in_support[static_cast<size_t>(g)] = true;
    }
    for (int g = 0; g < database_size_; ++g) {
      if (!in_support[static_cast<size_t>(g)]) {
        candidate[static_cast<size_t>(g)] = false;
      }
    }
  }
  std::vector<int> result;
  for (int g = 0; g < database_size_; ++g) {
    if (candidate[static_cast<size_t>(g)]) result.push_back(g);
  }
  return result;
}

}  // namespace gsps
