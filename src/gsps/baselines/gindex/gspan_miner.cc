#include "gsps/baselines/gindex/gspan_miner.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "gsps/baselines/gindex/dfs_code.h"
#include "gsps/common/check.h"
#include "gsps/iso/subgraph_isomorphism.h"

namespace gsps {
namespace {

// One candidate single-edge extension of a pattern, harvested from an
// embedding. Forward: attach a new vertex with `other_label` to pattern
// vertex `at`. Backward: close the edge between pattern vertices `at` and
// `other_vertex`.
using ExtensionKey =
    std::tuple<bool /*forward*/, VertexId /*at*/, int32_t /*other*/,
               EdgeLabel>;

struct WorkItem {
  Graph pattern;
  std::vector<int> support;
};

Graph ApplyExtension(const Graph& pattern, const ExtensionKey& key) {
  Graph child = pattern;
  const auto& [forward, at, other, edge_label] = key;
  if (forward) {
    const VertexId added = child.AddVertex(static_cast<VertexLabel>(other));
    GSPS_CHECK(child.AddEdge(at, added, edge_label));
  } else {
    GSPS_CHECK(child.AddEdge(at, static_cast<VertexId>(other), edge_label));
  }
  return child;
}

}  // namespace

std::vector<MinedFeature> MineFrequentSubgraphs(
    const std::vector<Graph>& database, const GspanOptions& options) {
  GSPS_CHECK(options.max_edges >= 1);
  const int min_count = std::max(
      1, static_cast<int>(std::ceil(options.min_support_fraction *
                                    static_cast<double>(database.size()))));

  std::vector<MinedFeature> results;
  std::unordered_set<std::string> seen_codes;
  // Breadth-first over pattern sizes: when the pattern budget is capped
  // (every stream harness caps it), small patterns are both the cheapest to
  // mine and the likeliest to occur inside queries, which is what makes a
  // feature useful for pruning.
  std::deque<WorkItem> frontier;

  // Level 1: frequent single edges, with exact (complete) support lists.
  {
    std::map<std::tuple<VertexLabel, EdgeLabel, VertexLabel>, std::vector<int>>
        edge_support;
    for (size_t g = 0; g < database.size(); ++g) {
      const Graph& graph = database[g];
      for (const VertexId u : graph.VertexIds()) {
        for (const HalfEdge& half : graph.Neighbors(u)) {
          if (half.to < u) continue;
          VertexLabel la = graph.GetVertexLabel(u);
          VertexLabel lb = graph.GetVertexLabel(half.to);
          if (la > lb) std::swap(la, lb);
          std::vector<int>& list =
              edge_support[std::make_tuple(la, half.label, lb)];
          if (list.empty() || list.back() != static_cast<int>(g)) {
            list.push_back(static_cast<int>(g));
          }
        }
      }
    }
    for (const auto& [triple, support] : edge_support) {
      if (static_cast<int>(support.size()) < min_count) continue;
      const auto& [la, el, lb] = triple;
      Graph pattern;
      const VertexId a = pattern.AddVertex(la);
      const VertexId b = pattern.AddVertex(lb);
      GSPS_CHECK(pattern.AddEdge(a, b, el));
      seen_codes.insert(DfsCodeKey(MinimalDfsCode(pattern)));
      frontier.push_back(WorkItem{std::move(pattern), support});
    }
  }

  while (!frontier.empty() &&
         static_cast<int64_t>(results.size()) < options.max_patterns) {
    WorkItem item = std::move(frontier.front());
    frontier.pop_front();
    results.push_back(MinedFeature{item.pattern, item.support});
    if (item.pattern.NumEdges() >= options.max_edges) continue;

    // Harvest candidate extensions from embeddings in supporting graphs.
    std::map<ExtensionKey, std::vector<int>> harvest;
    for (const int g : item.support) {
      const Graph& graph = database[static_cast<size_t>(g)];
      ForEachEmbedding(
          item.pattern, graph, options.max_embeddings_per_graph,
          [&](const Embedding& embedding) {
            // Inverse map: data vertex -> pattern vertex.
            std::unordered_map<VertexId, VertexId> inverse;
            for (size_t i = 0; i < embedding.query_order.size(); ++i) {
              inverse[embedding.mapping[i]] = embedding.query_order[i];
            }
            for (size_t i = 0; i < embedding.query_order.size(); ++i) {
              const VertexId pu = embedding.query_order[i];
              const VertexId du = embedding.mapping[i];
              for (const HalfEdge& half : graph.Neighbors(du)) {
                auto hit = inverse.find(half.to);
                ExtensionKey key;
                if (hit != inverse.end()) {
                  const VertexId pw = hit->second;
                  if (item.pattern.HasEdge(pu, pw)) continue;
                  if (pw < pu) continue;  // Emit each closing edge once.
                  key = ExtensionKey{false, pu, pw, half.label};
                } else {
                  key = ExtensionKey{true, pu,
                                     graph.GetVertexLabel(half.to),
                                     half.label};
                }
                std::vector<int>& list = harvest[key];
                if (list.empty() || list.back() != g) list.push_back(g);
              }
            }
            return true;
          });
    }

    for (const auto& [key, estimated_support] : harvest) {
      if (static_cast<int>(estimated_support.size()) < min_count) continue;
      Graph child = ApplyExtension(item.pattern, key);
      const std::string code = DfsCodeKey(MinimalDfsCode(child));
      if (!seen_codes.insert(code).second) continue;
      // Exact support: containment of the child implies containment of the
      // parent, so only the parent's (complete) support list needs checking.
      std::vector<int> support;
      for (const int g : item.support) {
        if (IsSubgraphIsomorphic(child, database[static_cast<size_t>(g)])) {
          support.push_back(g);
        }
      }
      if (static_cast<int>(support.size()) < min_count) continue;
      frontier.push_back(WorkItem{std::move(child), std::move(support)});
    }
  }

  return results;
}

}  // namespace gsps
