#include "gsps/baselines/gindex/dfs_code.h"

#include <algorithm>
#include <string>

#include "gsps/common/check.h"

namespace gsps {
namespace {

// Backtracking state for minimal-code search over one graph.
class Minimizer {
 public:
  explicit Minimizer(const Graph& graph)
      : graph_(graph), vertices_(graph.VertexIds()) {
    GSPS_CHECK(graph.NumEdges() >= 1);
    dfs_index_.assign(static_cast<size_t>(graph.VertexIdBound()), -1);
  }

  DfsCode Minimize() {
    for (const VertexId start : vertices_) {
      dfs_index_[static_cast<size_t>(start)] = 0;
      dfs_order_ = {start};
      rightmost_path_ = {0};
      used_edges_.clear();
      code_.clear();
      Search();
      dfs_index_[static_cast<size_t>(start)] = -1;
    }
    GSPS_CHECK(!best_.empty());
    return best_;
  }

 private:
  static uint64_t EdgeKey(VertexId a, VertexId b) {
    const uint32_t lo = static_cast<uint32_t>(std::min(a, b));
    const uint32_t hi = static_cast<uint32_t>(std::max(a, b));
    return (static_cast<uint64_t>(hi) << 32) | lo;
  }

  bool EdgeUsed(VertexId a, VertexId b) const {
    const uint64_t key = EdgeKey(a, b);
    return std::find(used_edges_.begin(), used_edges_.end(), key) !=
           used_edges_.end();
  }

  // Returns <0 / 0 / >0 comparing the current partial code against the best
  // code's prefix of the same length.
  int CompareAgainstBest() const {
    if (best_.empty()) return -1;
    const size_t len = std::min(code_.size(), best_.size());
    for (size_t i = 0; i < len; ++i) {
      if (code_[i] < best_[i]) return -1;
      if (best_[i] < code_[i]) return 1;
    }
    // Equal prefix; a shorter best means the current (still growing) code is
    // already longer than a complete best — impossible since every complete
    // code has exactly NumEdges tuples.
    return 0;
  }

  void Search() {
    if (!best_.empty() && CompareAgainstBest() > 0) return;  // Prune.
    if (static_cast<int>(code_.size()) == graph_.NumEdges()) {
      if (best_.empty() || code_ < best_) best_ = code_;
      return;
    }

    const VertexId rightmost = dfs_order_.back();
    // Mandatory backward edges: every unused edge from the rightmost vertex
    // to a vertex on the rightmost path must be emitted now (it could never
    // be emitted later), in ascending target order — the unique minimal
    // arrangement, since targets are distinct.
    std::vector<std::pair<int32_t, HalfEdge>> backward;
    for (const HalfEdge& half : graph_.Neighbors(rightmost)) {
      const int32_t target_index = dfs_index_[static_cast<size_t>(half.to)];
      if (target_index < 0) continue;
      if (EdgeUsed(rightmost, half.to)) continue;
      // In an undirected DFS every non-tree edge joins a vertex to one of
      // its tree ancestors; ancestors of the rightmost vertex are exactly
      // the rightmost path. A discovered non-ancestor target means this
      // traversal can never emit the edge: dead end.
      if (std::find(rightmost_path_.begin(), rightmost_path_.end(),
                    target_index) == rightmost_path_.end()) {
        return;
      }
      backward.emplace_back(target_index, half);
    }
    if (!backward.empty()) {
      std::sort(backward.begin(), backward.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      const int32_t from_index = dfs_index_[static_cast<size_t>(rightmost)];
      for (const auto& [target_index, half] : backward) {
        code_.push_back(DfsEdge{from_index, target_index,
                                graph_.GetVertexLabel(rightmost), half.label,
                                graph_.GetVertexLabel(half.to)});
        used_edges_.push_back(EdgeKey(rightmost, half.to));
      }
      Search();
      for (size_t i = 0; i < backward.size(); ++i) {
        code_.pop_back();
        used_edges_.pop_back();
      }
      return;
    }

    // Forward extensions from every vertex on the rightmost path.
    for (size_t path_pos = rightmost_path_.size(); path_pos-- > 0;) {
      const int32_t from_index = rightmost_path_[path_pos];
      const VertexId from = dfs_order_[static_cast<size_t>(from_index)];
      for (const HalfEdge& half : graph_.Neighbors(from)) {
        if (dfs_index_[static_cast<size_t>(half.to)] >= 0) continue;
        const int32_t new_index = static_cast<int32_t>(dfs_order_.size());
        dfs_index_[static_cast<size_t>(half.to)] = new_index;
        dfs_order_.push_back(half.to);
        const std::vector<int32_t> saved_path = rightmost_path_;
        rightmost_path_.resize(path_pos + 1);
        rightmost_path_.push_back(new_index);
        code_.push_back(DfsEdge{from_index, new_index,
                                graph_.GetVertexLabel(from), half.label,
                                graph_.GetVertexLabel(half.to)});
        used_edges_.push_back(EdgeKey(from, half.to));

        Search();

        used_edges_.pop_back();
        code_.pop_back();
        rightmost_path_ = saved_path;
        dfs_order_.pop_back();
        dfs_index_[static_cast<size_t>(half.to)] = -1;
      }
    }
  }

  const Graph& graph_;
  std::vector<VertexId> vertices_;
  std::vector<int32_t> dfs_index_;       // Graph vertex -> DFS index or -1.
  std::vector<VertexId> dfs_order_;      // DFS index -> graph vertex.
  std::vector<int32_t> rightmost_path_;  // DFS indices, root first.
  std::vector<uint64_t> used_edges_;
  DfsCode code_;
  DfsCode best_;
};

}  // namespace

DfsCode MinimalDfsCode(const Graph& graph) {
  Minimizer minimizer(graph);
  return minimizer.Minimize();
}

std::string DfsCodeKey(const DfsCode& code) {
  std::string key;
  key.reserve(code.size() * 20);
  char buffer[64];
  for (const DfsEdge& edge : code) {
    const int written =
        std::snprintf(buffer, sizeof(buffer), "%d,%d,%d,%d,%d;", edge.from,
                      edge.to, edge.from_label, edge.edge_label, edge.to_label);
    key.append(buffer, static_cast<size_t>(written));
  }
  return key;
}

Graph GraphFromDfsCode(const DfsCode& code) {
  Graph graph;
  for (const DfsEdge& edge : code) {
    GSPS_CHECK(graph.EnsureVertex(edge.from, edge.from_label));
    GSPS_CHECK(graph.EnsureVertex(edge.to, edge.to_label));
    GSPS_CHECK(graph.AddEdge(edge.from, edge.to, edge.edge_label));
  }
  return graph;
}

}  // namespace gsps
