// gIndex-style filter [24]: frequent subgraph features over a database of
// graphs, queried by feature-set intersection.
//
// Filtering rule: a database graph G remains a candidate for query Q iff
// every indexed feature contained in Q is also contained in G. Soundness:
// f subgraph-of Q and Q subgraph-of G imply f subgraph-of G, so true answers
// are never filtered out (feature support lists are complete by
// construction — see gspan_miner.h).
//
// Two paper configurations:
//   gIndex1: maxL = 10, min support = 0.1 |D|   (effective, slow to mine)
//   gIndex2: maxL = 3,  support 1              (fast, less effective)
// In the stream experiments the index is re-mined from the current stream
// snapshots at every timestamp, which is precisely why gIndex1's
// per-timestamp cost explodes (paper Fig. 15).

#ifndef GSPS_BASELINES_GINDEX_GINDEX_FILTER_H_
#define GSPS_BASELINES_GINDEX_GINDEX_FILTER_H_

#include <cstdint>
#include <vector>

#include "gsps/baselines/gindex/gspan_miner.h"
#include "gsps/graph/graph.h"

namespace gsps {

class GindexFilter {
 public:
  explicit GindexFilter(const GspanOptions& options);

  // The paper's two configurations.
  static GspanOptions Gindex1Options();
  static GspanOptions Gindex2Options();

  // Mines features from `database` and stores per-feature support bitmaps.
  // Replaces any previous index (stream harnesses rebuild per timestamp).
  void BuildIndex(const std::vector<Graph>& database);

  // Database graphs that may contain `query`, ascending.
  std::vector<int> CandidateGraphsFor(const Graph& query) const;

  int64_t num_features() const {
    return static_cast<int64_t>(features_.size());
  }

 private:
  GspanOptions options_;
  int database_size_ = 0;
  std::vector<MinedFeature> features_;
};

}  // namespace gsps

#endif  // GSPS_BASELINES_GINDEX_GINDEX_FILTER_H_
