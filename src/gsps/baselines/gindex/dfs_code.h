// Minimal DFS codes: canonical forms for small connected graphs, in the
// style of gSpan (used by the gIndex-style baseline to deduplicate mined
// fragments across isomorphic shapes).
//
// A DFS code is the edge sequence of one depth-first traversal, each edge
// written as (from, to, from_label, edge_label, to_label) over DFS discovery
// indices. The set of valid codes is an isomorphism invariant, so the
// lexicographically minimal one is a canonical form. Minimization runs a
// pruned backtracking search over all valid traversals — exponential in the
// worst case, but instantaneous for the <= ~12-edge fragments mining
// produces.

#ifndef GSPS_BASELINES_GINDEX_DFS_CODE_H_
#define GSPS_BASELINES_GINDEX_DFS_CODE_H_

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "gsps/graph/graph.h"

namespace gsps {

// One DFS code tuple. Comparison is lexicographic over the fields in
// declaration order; any fixed total order yields a valid canonical form.
struct DfsEdge {
  int32_t from = 0;  // DFS discovery index of the source endpoint.
  int32_t to = 0;    // DFS discovery index of the target endpoint.
  VertexLabel from_label = 0;
  EdgeLabel edge_label = 0;
  VertexLabel to_label = 0;

  friend auto operator<=>(const DfsEdge&, const DfsEdge&) = default;
};

using DfsCode = std::vector<DfsEdge>;

// Computes the minimal DFS code of `graph`, which must be connected and
// have at least one edge.
DfsCode MinimalDfsCode(const Graph& graph);

// Flattens a code into a hashable string key.
std::string DfsCodeKey(const DfsCode& code);

// Rebuilds a pattern graph from a DFS code (vertex ids = DFS indices).
Graph GraphFromDfsCode(const DfsCode& code);

}  // namespace gsps

#endif  // GSPS_BASELINES_GINDEX_DFS_CODE_H_
