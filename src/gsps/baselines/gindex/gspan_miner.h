// Frequent connected-subgraph mining (gSpan-flavored pattern growth),
// feeding the gIndex-style baseline.
//
// Pattern growth: start from frequent single edges; repeatedly extend a
// pattern by one edge (a new pendant vertex, or a closing edge between
// existing vertices), where candidate extensions are harvested from actual
// embeddings in the supporting graphs. Isomorphic children are deduplicated
// by minimal DFS code. Support is the number of database graphs containing
// the pattern.
//
// Deviations from full gSpan, documented in DESIGN.md: support lists come
// from capped embedding enumeration (a too-low cap can only shrink the
// feature set, never produce a wrong support list entry), and global
// pattern/time caps bound the per-timestamp re-mining the stream
// experiments perform.

#ifndef GSPS_BASELINES_GINDEX_GSPAN_MINER_H_
#define GSPS_BASELINES_GINDEX_GSPAN_MINER_H_

#include <cstdint>
#include <vector>

#include "gsps/graph/graph.h"

namespace gsps {

struct GspanOptions {
  // Maximum pattern size in edges (the paper's maxL).
  int max_edges = 10;
  // Minimum support as a fraction of the database size; the effective
  // threshold is max(1, ceil(fraction * |D|)).
  double min_support_fraction = 0.1;
  // Global cap on mined patterns (safety valve for dense databases).
  int64_t max_patterns = 20'000;
  // Cap on embeddings enumerated per (pattern, graph) when harvesting
  // extensions.
  int max_embeddings_per_graph = 64;
};

// One mined feature: the pattern and the database graphs containing it.
struct MinedFeature {
  Graph pattern;
  std::vector<int> support;  // Ascending database indices.
};

// Mines frequent connected subgraphs of `database`.
std::vector<MinedFeature> MineFrequentSubgraphs(
    const std::vector<Graph>& database, const GspanOptions& options);

}  // namespace gsps

#endif  // GSPS_BASELINES_GINDEX_GSPAN_MINER_H_
