// Synthetic graph dataset generator in the style of Kuramochi & Karypis
// (the paper's reference [12]), matching the parameter vocabulary of the
// paper's experiments: D graphs are assembled by repeatedly inserting seed
// fragments until each graph reaches its target size.
//
//   D = number of graphs          L = number of seed fragments
//   I = mean seed size (edges)    T = mean graph size (edges)
//   V = # vertex labels           E = # edge labels
//
// Seed sizes and graph sizes are Poisson-distributed around I and T.

#ifndef GSPS_GEN_SYNTHETIC_GENERATOR_H_
#define GSPS_GEN_SYNTHETIC_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "gsps/common/random.h"
#include "gsps/graph/graph.h"

namespace gsps {

struct SyntheticParams {
  int num_graphs = 10'000;       // D
  int num_seeds = 200;           // L
  double avg_seed_edges = 10.0;  // I
  double avg_graph_edges = 50.0; // T
  int num_vertex_labels = 4;     // V
  int num_edge_labels = 1;       // E
  uint64_t seed = 1;
};

// Generates a random connected graph with `num_edges` edges (at least 1)
// and uniformly random labels. Helper shared by the generators.
Graph RandomConnectedGraph(int num_edges, int num_vertex_labels,
                           int num_edge_labels, Rng& rng);

// Generates the dataset.
std::vector<Graph> GenerateSyntheticDataset(const SyntheticParams& params);

}  // namespace gsps

#endif  // GSPS_GEN_SYNTHETIC_GENERATOR_H_
