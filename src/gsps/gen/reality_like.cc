#include "gsps/gen/reality_like.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "gsps/common/check.h"
#include "gsps/common/random.h"
#include "gsps/gen/query_extractor.h"

namespace gsps {
namespace {

struct Pair {
  VertexId u;
  VertexId v;
  bool intra;
};

}  // namespace

StreamDataset MakeRealityLikeStreams(const RealityLikeParams& params) {
  GSPS_CHECK(params.num_users >= 2);
  GSPS_CHECK(params.num_groups >= 1);
  Rng rng(params.seed);

  // Fixed population: labels (device/user classes) and group memberships
  // are shared by all streams, like the same 97 people reappearing.
  std::vector<VertexLabel> labels(static_cast<size_t>(params.num_users));
  std::vector<int> group(static_cast<size_t>(params.num_users));
  for (int u = 0; u < params.num_users; ++u) {
    labels[static_cast<size_t>(u)] =
        static_cast<VertexLabel>(rng.Zipf(params.num_labels, 0.5));
    group[static_cast<size_t>(u)] =
        static_cast<int>(rng.UniformInt(0, params.num_groups - 1));
  }
  std::vector<Pair> pairs;
  for (int u = 0; u < params.num_users; ++u) {
    for (int v = u + 1; v < params.num_users; ++v) {
      const bool intra =
          group[static_cast<size_t>(u)] == group[static_cast<size_t>(v)];
      // Keep every intra-group pair; sample inter-group pairs sparsely so
      // the candidate set stays proximity-plausible.
      if (intra || rng.Bernoulli(0.08)) {
        pairs.push_back(Pair{static_cast<VertexId>(u),
                             static_cast<VertexId>(v), intra});
      }
    }
  }

  StreamDataset dataset;
  std::vector<Graph> snapshots;  // Sampled graphs for query extraction.
  for (int s = 0; s < params.num_streams; ++s) {
    Rng stream_rng = rng.Fork();
    Graph start;
    for (int u = 0; u < params.num_users; ++u) {
      start.AddVertex(labels[static_cast<size_t>(u)]);
    }
    std::vector<bool> on(pairs.size(), false);
    for (size_t i = 0; i < pairs.size(); ++i) {
      const double appear =
          pairs[i].intra ? params.intra_appear : params.inter_appear;
      const double disappear =
          pairs[i].intra ? params.intra_disappear : params.inter_disappear;
      const double stationary = appear / (appear + disappear);
      if (stream_rng.Bernoulli(stationary)) {
        on[i] = true;
        GSPS_CHECK(start.AddEdge(pairs[i].u, pairs[i].v, 0));
      }
    }
    GraphStream stream(start);
    Graph current = start;
    for (int t = 1; t < params.num_timestamps; ++t) {
      GraphChange change;
      for (size_t i = 0; i < pairs.size(); ++i) {
        const Pair& p = pairs[i];
        const double appear =
            p.intra ? params.intra_appear : params.inter_appear;
        const double disappear =
            p.intra ? params.intra_disappear : params.inter_disappear;
        if (on[i]) {
          if (stream_rng.Bernoulli(disappear)) {
            on[i] = false;
            change.ops.push_back(EdgeOp::Delete(p.u, p.v));
          }
        } else if (stream_rng.Bernoulli(appear)) {
          on[i] = true;
          change.ops.push_back(
              EdgeOp::Insert(p.u, p.v, 0, labels[static_cast<size_t>(p.u)],
                             labels[static_cast<size_t>(p.v)]));
        }
      }
      ApplyChange(change, current);
      stream.AppendChange(std::move(change));
    }
    // Sample a handful of snapshots per stream for query extraction.
    const int stride = std::max(1, params.num_timestamps / 5);
    for (int t = 0; t < params.num_timestamps; t += stride) {
      Graph snapshot = stream.MaterializeAt(t);
      if (snapshot.NumEdges() > 0) snapshots.push_back(std::move(snapshot));
    }
    dataset.streams.push_back(std::move(stream));
  }

  // Queries: connected fragments of observed snapshots.
  GSPS_CHECK(!snapshots.empty());
  while (static_cast<int>(dataset.queries.size()) < params.num_queries) {
    const int size = static_cast<int>(
        rng.UniformInt(params.min_query_edges, params.max_query_edges));
    std::vector<Graph> extracted = ExtractQuerySet(snapshots, size, 1, rng);
    if (extracted.empty()) continue;
    dataset.queries.push_back(std::move(extracted.front()));
  }
  return dataset;
}

}  // namespace gsps
