// Reality-Mining-like proximity stream synthesizer.
//
// The paper's real stream dataset is the Device Span subset of the MIT
// Reality Mining project: 97 users whose phones periodically scan for
// nearby Bluetooth devices, converted into proximity graphs and randomly
// reordered into 25 streams with 10 distinct labels. That dataset is not
// redistributable here, so this module synthesizes streams with the same
// relevant structure: 97 vertices carrying one of 10 labels, community
// structure (two labs, office groups) so that proximity edges concentrate
// inside groups, sparse graphs, and small per-timestamp change batches
// (temporal locality). See DESIGN.md, substitution #2.

#ifndef GSPS_GEN_REALITY_LIKE_H_
#define GSPS_GEN_REALITY_LIKE_H_

#include <cstdint>

#include "gsps/gen/stream_generator.h"

namespace gsps {

struct RealityLikeParams {
  int num_users = 97;
  int num_labels = 10;
  int num_groups = 8;
  int num_streams = 25;
  int num_queries = 25;
  int num_timestamps = 1000;
  // Proximity dynamics: intra-group contacts are likely and sticky,
  // inter-group contacts rare and short.
  double intra_appear = 0.08;
  double intra_disappear = 0.3;
  double inter_appear = 0.002;
  double inter_disappear = 0.6;
  // Query sizes (edges) are sampled uniformly from this range.
  int min_query_edges = 4;
  int max_query_edges = 9;
  uint64_t seed = 11;
};

// Builds the reality-like workload: streams plus queries extracted from
// sampled stream snapshots (so a nontrivial fraction of pairs actually
// match over time).
StreamDataset MakeRealityLikeStreams(const RealityLikeParams& params);

}  // namespace gsps

#endif  // GSPS_GEN_REALITY_LIKE_H_
