// Synthetic graph-stream construction (paper §V.B).
//
// The paper derives each stream from a basic query graph: the vertex count
// is grown to 1.5x with randomly labeled vertices, then for a fixed set of
// candidate vertex pairs a biased coin is flipped at every timestamp —
// an absent edge appears with probability p1, a present edge disappears
// with probability p2 (long-run edge density p1 / (p1 + p2)).
//
// The candidate pair set is the derived graph's own edges plus an equal
// number of random extra pairs. Restricting flips to this set (rather than
// all O(n^2) pairs) keeps the evolving graphs at realistic density for both
// the sparse and dense settings while preserving the paper's dynamics; the
// substitution is documented in DESIGN.md.

#ifndef GSPS_GEN_STREAM_GENERATOR_H_
#define GSPS_GEN_STREAM_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "gsps/common/random.h"
#include "gsps/graph/graph.h"
#include "gsps/graph/graph_stream.h"

namespace gsps {

struct StreamEvolutionParams {
  double p_appear = 0.2;     // p1
  double p_disappear = 0.15; // p2
  int num_timestamps = 1000; // Stream length including timestamp 0.
  int num_edge_labels = 1;
  // Extra random candidate pairs, as a fraction of the base graph's edges.
  double extra_pair_fraction = 1.0;
  // Per-stream heterogeneity: each stream's candidate-pair budget and
  // appear probability are scaled by factors drawn uniformly from
  // [1 - jitter, 1 + jitter]. Makes stream densities straddle the query
  // densities the way the paper's mixed workload does, so candidate ratios
  // land between 0 and 1 instead of saturating.
  double density_jitter = 0.35;
};

// Derives one stream from `base`: grows the vertex set to ~1.5x with random
// labels drawn from [0, num_vertex_labels), then evolves the edge set.
GraphStream DeriveStream(const Graph& base, int num_vertex_labels,
                         const StreamEvolutionParams& params, Rng& rng);

// A complete stream-experiment workload: queries plus derived streams.
struct StreamDataset {
  std::vector<Graph> queries;
  std::vector<GraphStream> streams;
};

struct SyntheticStreamParams {
  int num_pairs = 70;  // Number of basic query graphs == number of streams.
  // Basic-graph generator parameters (paper: D=70, L=20, I=10, T=40, V=4, E=1).
  int num_seeds = 20;
  double avg_seed_edges = 10.0;
  double avg_graph_edges = 40.0;
  int num_vertex_labels = 4;
  int num_edge_labels = 1;
  StreamEvolutionParams evolution;
  uint64_t seed = 7;
};

// Builds the synthetic stream workload of §V.B: `num_pairs` basic query
// graphs, each spawning one derived stream.
StreamDataset MakeSyntheticStreams(const SyntheticStreamParams& params);

}  // namespace gsps

#endif  // GSPS_GEN_STREAM_GENERATOR_H_
