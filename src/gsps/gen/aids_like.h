// AIDS-Antiviral-Screen-like synthetic chemical compound dataset.
//
// The paper's static experiments sample 10,000 compounds from the NCI/NIH
// AIDS Antiviral Screen dataset (avg 24.8 vertices / 26.8 edges). That data
// is not redistributable here, so this module synthesizes graphs matched to
// its published statistics: sizes concentrated around 25 vertices with a
// few edges more than vertices (mostly trees plus rings), a skewed
// (Zipf-like) vertex-label distribution over a ~62-symbol alphabet
// mirroring element frequencies (C, O, N dominate), and three edge labels
// (bond types). See DESIGN.md, substitution #1.

#ifndef GSPS_GEN_AIDS_LIKE_H_
#define GSPS_GEN_AIDS_LIKE_H_

#include <cstdint>
#include <vector>

#include "gsps/graph/graph.h"

namespace gsps {

struct AidsLikeParams {
  int num_graphs = 10'000;
  double avg_vertices = 24.8;
  int num_vertex_labels = 62;
  double label_zipf_exponent = 2.2;
  int num_edge_labels = 3;
  // Fraction of extra (ring-closing) edges relative to the spanning tree.
  double ring_fraction = 0.12;
  uint64_t seed = 3;
};

std::vector<Graph> MakeAidsLikeDataset(const AidsLikeParams& params);

}  // namespace gsps

#endif  // GSPS_GEN_AIDS_LIKE_H_
