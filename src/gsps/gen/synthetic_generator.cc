#include "gsps/gen/synthetic_generator.h"

#include <algorithm>

#include "gsps/common/check.h"

namespace gsps {
namespace {

// Inserts `seed` into `graph` by overlaying it at a random anchor: one seed
// vertex is merged with a random existing graph vertex of the same label if
// possible, otherwise connected to it by a fresh edge. The remaining seed
// vertices and edges are copied in. Keeps the graph connected.
void InsertSeed(const Graph& seed, int num_edge_labels, Rng& rng,
                Graph& graph) {
  const std::vector<VertexId> seed_vertices = seed.VertexIds();
  GSPS_CHECK(!seed_vertices.empty());

  std::vector<VertexId> mapped(static_cast<size_t>(seed.VertexIdBound()),
                               kInvalidVertex);

  if (graph.NumVertices() == 0) {
    for (const VertexId sv : seed_vertices) {
      mapped[static_cast<size_t>(sv)] =
          graph.AddVertex(seed.GetVertexLabel(sv));
    }
  } else {
    // Anchor a random seed vertex to a random existing vertex.
    const std::vector<VertexId> graph_vertices = graph.VertexIds();
    const VertexId anchor_seed =
        seed_vertices[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(seed_vertices.size()) - 1))];
    const VertexId anchor_graph =
        graph_vertices[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(graph_vertices.size()) - 1))];
    for (const VertexId sv : seed_vertices) {
      if (sv == anchor_seed &&
          graph.GetVertexLabel(anchor_graph) == seed.GetVertexLabel(sv)) {
        mapped[static_cast<size_t>(sv)] = anchor_graph;  // Merge.
      } else {
        mapped[static_cast<size_t>(sv)] =
            graph.AddVertex(seed.GetVertexLabel(sv));
      }
    }
    // If the anchor could not merge (label mismatch), tie the fragment to
    // the graph with one bridging edge so the result stays connected.
    if (mapped[static_cast<size_t>(anchor_seed)] != anchor_graph) {
      graph.AddEdge(
          anchor_graph, mapped[static_cast<size_t>(anchor_seed)],
          static_cast<EdgeLabel>(rng.UniformInt(0, num_edge_labels - 1)));
    }
  }

  for (const VertexId sv : seed_vertices) {
    for (const HalfEdge& half : seed.Neighbors(sv)) {
      if (half.to < sv) continue;
      graph.AddEdge(mapped[static_cast<size_t>(sv)],
                    mapped[static_cast<size_t>(half.to)], half.label);
    }
  }
}

}  // namespace

Graph RandomConnectedGraph(int num_edges, int num_vertex_labels,
                           int num_edge_labels, Rng& rng) {
  GSPS_CHECK(num_edges >= 1);
  GSPS_CHECK(num_vertex_labels >= 1);
  GSPS_CHECK(num_edge_labels >= 1);
  Graph graph;
  auto random_vertex_label = [&] {
    return static_cast<VertexLabel>(rng.UniformInt(0, num_vertex_labels - 1));
  };
  auto random_edge_label = [&] {
    return static_cast<EdgeLabel>(rng.UniformInt(0, num_edge_labels - 1));
  };
  // Grow a random tree over roughly num_edges * 2/3 vertices, then close
  // random extra edges until the edge budget is met (or the graph is
  // complete). The 2/3 split makes sparse graphs with some cycles, like the
  // transaction datasets the original generator models.
  const int num_tree_vertices =
      std::max(2, 1 + (2 * num_edges) / 3);
  graph.AddVertex(random_vertex_label());
  for (int i = 1; i < num_tree_vertices && graph.NumEdges() < num_edges; ++i) {
    const VertexId attach =
        static_cast<VertexId>(rng.UniformInt(0, graph.NumVertices() - 1));
    const VertexId added = graph.AddVertex(random_vertex_label());
    GSPS_CHECK(graph.AddEdge(attach, added, random_edge_label()));
  }
  const int n = graph.NumVertices();
  const int max_possible = n * (n - 1) / 2;
  int attempts = 0;
  while (graph.NumEdges() < std::min(num_edges, max_possible) &&
         attempts < 20 * num_edges) {
    ++attempts;
    const VertexId a = static_cast<VertexId>(rng.UniformInt(0, n - 1));
    const VertexId b = static_cast<VertexId>(rng.UniformInt(0, n - 1));
    if (a == b) continue;
    graph.AddEdge(a, b, random_edge_label());
  }
  return graph;
}

std::vector<Graph> GenerateSyntheticDataset(const SyntheticParams& params) {
  Rng rng(params.seed);
  std::vector<Graph> seeds;
  seeds.reserve(static_cast<size_t>(params.num_seeds));
  for (int i = 0; i < params.num_seeds; ++i) {
    const int size = std::max(1, rng.Poisson(params.avg_seed_edges));
    seeds.push_back(RandomConnectedGraph(size, params.num_vertex_labels,
                                         params.num_edge_labels, rng));
  }
  std::vector<Graph> dataset;
  dataset.reserve(static_cast<size_t>(params.num_graphs));
  for (int i = 0; i < params.num_graphs; ++i) {
    const int target_edges = std::max(1, rng.Poisson(params.avg_graph_edges));
    Graph graph;
    int guard = 0;
    while (graph.NumEdges() < target_edges && guard < 10'000) {
      ++guard;
      const Graph& seed = seeds[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(seeds.size()) - 1))];
      InsertSeed(seed, params.num_edge_labels, rng, graph);
    }
    dataset.push_back(std::move(graph));
  }
  return dataset;
}

}  // namespace gsps
