#include "gsps/gen/stream_generator.h"

#include <algorithm>
#include <utility>

#include "gsps/common/check.h"
#include "gsps/gen/synthetic_generator.h"

namespace gsps {
namespace {

struct CandidatePair {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  EdgeLabel label = 0;
};

}  // namespace

GraphStream DeriveStream(const Graph& base, int num_vertex_labels,
                         const StreamEvolutionParams& params, Rng& rng) {
  GSPS_CHECK(params.num_timestamps >= 1);
  // Grow the vertex set to 1.5x with randomly labeled vertices.
  Graph derived = base;
  const int extra_vertices = base.NumVertices() / 2;
  for (int i = 0; i < extra_vertices; ++i) {
    derived.AddVertex(
        static_cast<VertexLabel>(rng.UniformInt(0, num_vertex_labels - 1)));
  }

  // Candidate pair set: the derived graph's edges plus random extra pairs.
  std::vector<CandidatePair> pairs;
  for (const VertexId u : derived.VertexIds()) {
    for (const HalfEdge& half : derived.Neighbors(u)) {
      if (half.to > u) pairs.push_back(CandidatePair{u, half.to, half.label});
    }
  }
  const std::vector<VertexId> vertices = derived.VertexIds();
  const int num_extra = static_cast<int>(
      params.extra_pair_fraction * static_cast<double>(pairs.size()));
  int guard = 0;
  for (int added = 0; added < num_extra && guard < 50 * (num_extra + 1);) {
    ++guard;
    const VertexId a = vertices[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(vertices.size()) - 1))];
    const VertexId b = vertices[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(vertices.size()) - 1))];
    if (a == b) continue;
    const VertexId lo = std::min(a, b);
    const VertexId hi = std::max(a, b);
    bool duplicate = false;
    for (const CandidatePair& p : pairs) {
      if (p.u == lo && p.v == hi) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    pairs.push_back(CandidatePair{
        lo, hi,
        static_cast<EdgeLabel>(rng.UniformInt(0, params.num_edge_labels - 1))});
    ++added;
  }

  // Timestamp 0: each candidate pair is on with the stationary probability
  // p1 / (p1 + p2), so the stream starts in (approximately) steady state.
  const double stationary =
      params.p_appear + params.p_disappear > 0.0
          ? params.p_appear / (params.p_appear + params.p_disappear)
          : 0.0;
  Graph start = derived;
  // Strip edges, then re-add the sampled subset.
  for (const CandidatePair& p : pairs) start.RemoveEdge(p.u, p.v);
  std::vector<bool> on(pairs.size(), false);
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (rng.Bernoulli(stationary)) {
      on[i] = true;
      GSPS_CHECK(start.AddEdge(pairs[i].u, pairs[i].v, pairs[i].label));
    }
  }

  GraphStream stream(start);
  Graph current = start;
  for (int t = 1; t < params.num_timestamps; ++t) {
    GraphChange change;
    for (size_t i = 0; i < pairs.size(); ++i) {
      const CandidatePair& p = pairs[i];
      if (on[i]) {
        if (rng.Bernoulli(params.p_disappear)) {
          on[i] = false;
          change.ops.push_back(EdgeOp::Delete(p.u, p.v));
        }
      } else {
        if (rng.Bernoulli(params.p_appear)) {
          on[i] = true;
          change.ops.push_back(
              EdgeOp::Insert(p.u, p.v, p.label, current.GetVertexLabel(p.u),
                             current.GetVertexLabel(p.v)));
        }
      }
    }
    ApplyChange(change, current);
    stream.AppendChange(std::move(change));
  }
  return stream;
}

StreamDataset MakeSyntheticStreams(const SyntheticStreamParams& params) {
  Rng rng(params.seed);
  SyntheticParams base_params;
  base_params.num_graphs = params.num_pairs;
  base_params.num_seeds = params.num_seeds;
  base_params.avg_seed_edges = params.avg_seed_edges;
  base_params.avg_graph_edges = params.avg_graph_edges;
  base_params.num_vertex_labels = params.num_vertex_labels;
  base_params.num_edge_labels = params.num_edge_labels;
  base_params.seed = rng.Next();

  StreamDataset dataset;
  dataset.queries = GenerateSyntheticDataset(base_params);
  for (const Graph& base : dataset.queries) {
    Rng stream_rng = rng.Fork();
    StreamEvolutionParams evolution = params.evolution;
    evolution.num_edge_labels = params.num_edge_labels;
    const double jitter = params.evolution.density_jitter;
    auto scale = [&] {
      return 1.0 + jitter * (2.0 * stream_rng.UniformDouble() - 1.0);
    };
    evolution.extra_pair_fraction *= scale();
    evolution.p_appear = std::min(1.0, evolution.p_appear * scale());
    dataset.streams.push_back(
        DeriveStream(base, params.num_vertex_labels, evolution, stream_rng));
  }
  return dataset;
}

}  // namespace gsps
