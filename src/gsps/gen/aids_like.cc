#include "gsps/gen/aids_like.h"

#include <algorithm>

#include "gsps/common/check.h"
#include "gsps/common/random.h"

namespace gsps {

std::vector<Graph> MakeAidsLikeDataset(const AidsLikeParams& params) {
  GSPS_CHECK(params.num_graphs >= 1);
  Rng rng(params.seed);
  std::vector<Graph> dataset;
  dataset.reserve(static_cast<size_t>(params.num_graphs));

  for (int i = 0; i < params.num_graphs; ++i) {
    const int num_vertices = std::max(2, rng.Poisson(params.avg_vertices));
    Graph graph;
    // Spanning tree with chemistry-like low branching: attach each new atom
    // to a recent vertex most of the time (chains) and occasionally to an
    // older one (branches).
    for (int v = 0; v < num_vertices; ++v) {
      const VertexLabel label = static_cast<VertexLabel>(
          rng.Zipf(params.num_vertex_labels, params.label_zipf_exponent));
      const VertexId added = graph.AddVertex(label);
      if (v == 0) continue;
      VertexId attach;
      if (rng.Bernoulli(0.7)) {
        attach = static_cast<VertexId>(v - 1);  // Chain growth.
      } else {
        attach = static_cast<VertexId>(rng.UniformInt(0, v - 1));
      }
      GSPS_CHECK(graph.AddEdge(
          attach, added,
          static_cast<EdgeLabel>(rng.UniformInt(0, params.num_edge_labels - 1))));
    }
    // Ring closures.
    const int rings = rng.Poisson(params.ring_fraction *
                                  static_cast<double>(num_vertices));
    for (int r = 0; r < rings; ++r) {
      const VertexId a =
          static_cast<VertexId>(rng.UniformInt(0, num_vertices - 1));
      const VertexId b =
          static_cast<VertexId>(rng.UniformInt(0, num_vertices - 1));
      if (a == b) continue;
      graph.AddEdge(
          a, b,
          static_cast<EdgeLabel>(rng.UniformInt(0, params.num_edge_labels - 1)));
    }
    dataset.push_back(std::move(graph));
  }
  return dataset;
}

}  // namespace gsps
