#include "gsps/gen/query_extractor.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "gsps/common/check.h"

namespace gsps {

std::optional<Graph> ExtractConnectedSubgraph(const Graph& source,
                                              int num_edges, Rng& rng) {
  GSPS_CHECK(num_edges >= 1);
  if (source.NumEdges() < num_edges) return std::nullopt;

  // Collect all undirected edges, pick a random start, then grow by
  // repeatedly sampling an unused edge adjacent to the selected vertex set.
  std::vector<std::pair<VertexId, VertexId>> all_edges;
  for (const VertexId u : source.VertexIds()) {
    for (const HalfEdge& half : source.Neighbors(u)) {
      if (half.to > u) all_edges.emplace_back(u, half.to);
    }
  }
  const auto& start = all_edges[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(all_edges.size()) - 1))];

  std::vector<std::pair<VertexId, VertexId>> chosen = {start};
  std::vector<VertexId> vertices = {start.first, start.second};
  auto edge_chosen = [&chosen](VertexId a, VertexId b) {
    for (const auto& [x, y] : chosen) {
      if ((x == a && y == b) || (x == b && y == a)) return true;
    }
    return false;
  };

  while (static_cast<int>(chosen.size()) < num_edges) {
    // Frontier: unused source edges with at least one endpoint selected.
    std::vector<std::pair<VertexId, VertexId>> frontier;
    for (const VertexId v : vertices) {
      for (const HalfEdge& half : source.Neighbors(v)) {
        if (!edge_chosen(v, half.to)) frontier.emplace_back(v, half.to);
      }
    }
    if (frontier.empty()) return std::nullopt;
    const auto& pick = frontier[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(frontier.size()) - 1))];
    chosen.push_back(pick);
    if (std::find(vertices.begin(), vertices.end(), pick.second) ==
        vertices.end()) {
      vertices.push_back(pick.second);
    }
    if (std::find(vertices.begin(), vertices.end(), pick.first) ==
        vertices.end()) {
      vertices.push_back(pick.first);
    }
  }

  // Compact into a fresh graph.
  Graph query;
  std::unordered_map<VertexId, VertexId> remap;
  for (const auto& [a, b] : chosen) {
    for (const VertexId v : {a, b}) {
      if (!remap.count(v)) {
        remap[v] = query.AddVertex(source.GetVertexLabel(v));
      }
    }
    GSPS_CHECK(query.AddEdge(remap[a], remap[b], source.GetEdgeLabel(a, b)));
  }
  return query;
}

std::vector<Graph> ExtractQuerySet(const std::vector<Graph>& dataset,
                                   int num_edges, int count, Rng& rng) {
  GSPS_CHECK(!dataset.empty());
  std::vector<Graph> queries;
  int attempts = 0;
  const int max_attempts = count * 50;
  while (static_cast<int>(queries.size()) < count &&
         attempts < max_attempts) {
    ++attempts;
    const Graph& source = dataset[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(dataset.size()) - 1))];
    std::optional<Graph> query =
        ExtractConnectedSubgraph(source, num_edges, rng);
    if (query.has_value()) queries.push_back(*std::move(query));
  }
  return queries;
}

}  // namespace gsps
