// Query workload extraction: connected size-m subgraphs pulled out of
// dataset graphs, following the paper's query-set construction ("queries in
// set Q_m are connected size-m graphs extracted randomly from the dataset").
// Size is counted in edges, matching the gIndex evaluation convention.

#ifndef GSPS_GEN_QUERY_EXTRACTOR_H_
#define GSPS_GEN_QUERY_EXTRACTOR_H_

#include <optional>
#include <vector>

#include "gsps/common/random.h"
#include "gsps/graph/graph.h"

namespace gsps {

// Extracts a connected subgraph with exactly `num_edges` edges from `source`
// by randomized edge-expansion from a random start edge. Vertex ids of the
// result are compacted to 0..n-1. Returns nullopt when `source` has no
// connected subgraph of that size reachable from the sampled start (e.g.
// the source is too small).
std::optional<Graph> ExtractConnectedSubgraph(const Graph& source,
                                              int num_edges, Rng& rng);

// Builds a query set Q_m: `count` connected subgraphs of `num_edges` edges,
// each extracted from a random graph of `dataset`. Sources too small for
// the size are resampled; gives up (returning fewer queries) after
// `count * 50` failed attempts.
std::vector<Graph> ExtractQuerySet(const std::vector<Graph>& dataset,
                                   int num_edges, int count, Rng& rng);

}  // namespace gsps

#endif  // GSPS_GEN_QUERY_EXTRACTOR_H_
