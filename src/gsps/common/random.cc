#include "gsps/common/random.h"

#include <cmath>

#include "gsps/common/check.h"

namespace gsps {
namespace {

// SplitMix64 step, used only for seeding.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (uint64_t& word : state_) word = SplitMix64(s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  GSPS_DCHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit range requested.
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t value = Next();
  while (value >= limit) value = Next();
  return lo + static_cast<int64_t>(value % span);
}

double Rng::UniformDouble() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

int Rng::Poisson(double mean) {
  GSPS_DCHECK(mean >= 0.0);
  const double threshold = std::exp(-mean);
  int k = 0;
  double product = UniformDouble();
  while (product > threshold) {
    ++k;
    product *= UniformDouble();
  }
  return k;
}

int Rng::Zipf(int n, double s) {
  GSPS_DCHECK(n > 0);
  // Inverse-CDF sampling over the (small) alphabet.
  double norm = 0.0;
  for (int i = 1; i <= n; ++i) norm += 1.0 / std::pow(i, s);
  double target = UniformDouble() * norm;
  double acc = 0.0;
  for (int i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(i, s);
    if (target <= acc) return i - 1;
  }
  return n - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace gsps
