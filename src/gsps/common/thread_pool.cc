#include "gsps/common/thread_pool.h"

#include <algorithm>

#include "gsps/common/check.h"
#include "gsps/obs/obs.h"

namespace gsps {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::HardwareThreads() {
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  // Recorded on the calling thread: the dispatch itself is not parallel.
  GSPS_OBS_COUNT(Counter::kPoolBarriers, 1);
  GSPS_OBS_COUNT(Counter::kPoolTasks, n);
  GSPS_OBS_GAUGE_SET(Gauge::kPoolQueueDepth, n);
  if (workers_.empty() || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  auto barrier = std::make_shared<Barrier>();
  barrier->fn = &fn;
  barrier->limit = n;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    GSPS_CHECK_MSG(current_ == nullptr || current_->completed == current_->limit,
                   "ParallelFor is not reentrant");
    barrier->generation = ++next_generation_;
    current_ = barrier;
  }
  work_ready_.notify_all();
  // The caller is a full worker lane for this barrier.
  Drain(*barrier);
  std::unique_lock<std::mutex> lock(mutex_);
  barrier_done_.wait(lock,
                     [&] { return barrier->completed == barrier->limit; });
}

void ThreadPool::Drain(Barrier& barrier) {
  int done = 0;
  for (int i = barrier.next.fetch_add(1, std::memory_order_relaxed);
       i < barrier.limit;
       i = barrier.next.fetch_add(1, std::memory_order_relaxed)) {
    (*barrier.fn)(i);
    ++done;
  }
  if (done == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  barrier.completed += done;
  if (barrier.completed == barrier.limit) barrier_done_.notify_all();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    std::shared_ptr<Barrier> barrier;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return shutdown_ ||
               (current_ != nullptr && current_->generation != seen_generation);
      });
      if (shutdown_) return;
      barrier = current_;
      seen_generation = barrier->generation;
    }
    // If this barrier already finished, the cursor is exhausted and Drain
    // falls straight through without touching barrier->fn.
    Drain(*barrier);
  }
}

}  // namespace gsps
