#include "gsps/common/flags.h"

#include <algorithm>
#include <cstdlib>

namespace gsps {

namespace {

// Classic dynamic-programming Levenshtein distance; flag names are short so
// the quadratic cost is irrelevant.
size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diagonal = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t substitution =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

}  // namespace

FlagParser::FlagParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    Arg arg;
    arg.raw = argv[i];
    if (arg.raw.rfind("--", 0) == 0) {
      const size_t eq = arg.raw.find('=');
      if (eq == std::string::npos) {
        arg.name = arg.raw.substr(2);
      } else {
        arg.name = arg.raw.substr(2, eq - 2);
        arg.value = arg.raw.substr(eq + 1);
        arg.has_value = true;
      }
    }
    args_.push_back(std::move(arg));
  }
}

FlagParser::Arg* FlagParser::Find(const std::string& name) {
  if (std::find(known_.begin(), known_.end(), name) == known_.end()) {
    known_.push_back(name);
  }
  Arg* found = nullptr;
  for (Arg& arg : args_) {
    if (!arg.name.empty() && arg.name == name) {
      arg.recognized = true;
      found = &arg;  // Last occurrence wins, like the previous parsers.
    }
  }
  return found;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& fallback) {
  const Arg* arg = Find(name);
  return arg != nullptr ? arg->value : fallback;
}

int FlagParser::GetInt(const std::string& name, int fallback) {
  const Arg* arg = Find(name);
  return arg != nullptr && arg->has_value ? std::atoi(arg->value.c_str())
                                          : fallback;
}

long long FlagParser::GetInt64(const std::string& name, long long fallback) {
  const Arg* arg = Find(name);
  return arg != nullptr && arg->has_value ? std::atoll(arg->value.c_str())
                                          : fallback;
}

double FlagParser::GetDouble(const std::string& name, double fallback) {
  const Arg* arg = Find(name);
  return arg != nullptr && arg->has_value ? std::atof(arg->value.c_str())
                                          : fallback;
}

bool FlagParser::GetBool(const std::string& name) {
  const Arg* arg = Find(name);
  if (arg == nullptr) return false;
  if (!arg->has_value) return true;
  return arg->value != "false" && arg->value != "0";
}

bool FlagParser::Has(const std::string& name) {
  return Find(name) != nullptr;
}

std::vector<std::string> FlagParser::UnrecognizedArgs() const {
  std::vector<std::string> out;
  for (const Arg& arg : args_) {
    if (!arg.recognized) out.push_back(arg.raw);
  }
  return out;
}

std::string FlagParser::ErrorMessage() const {
  for (const Arg& arg : args_) {
    if (arg.recognized) continue;
    if (arg.name.empty()) {
      return "unexpected argument '" + arg.raw + "' (flags are --name=value)";
    }
    std::string message = "unknown flag '--" + arg.name + "'";
    const std::string* best = nullptr;
    size_t best_distance = 0;
    for (const std::string& candidate : known_) {
      const size_t distance = EditDistance(arg.name, candidate);
      if (best == nullptr || distance < best_distance) {
        best = &candidate;
        best_distance = distance;
      }
    }
    // Only suggest close misses; "--frobnicate" should not suggest "--out".
    if (best != nullptr &&
        best_distance <= std::max<size_t>(2, best->size() / 3)) {
      message += " (did you mean '--" + *best + "'?)";
    }
    return message;
  }
  return "";
}

}  // namespace gsps
