// Opt-in heap-allocation counting for tests and benches.
//
// The gsps_alloc_hook library (and only it) defines counting replacements
// for the global operator new/delete family; a binary that links it has
// every heap allocation and free recorded in thread-local counters readable
// through this header. Binaries that do not link the library pay nothing —
// the core gsps libraries never reference these symbols on their own.
//
// This is the regression hook behind the zero-steady-state-allocation
// guarantee of the NNT hot path: tests wrap an ApplyChange churn loop in an
// AllocMeter and assert the count stays zero (Release builds; Debug and
// sanitizer builds run the same loop but only report).
//
// Counters are per-thread, so a measurement is immune to allocator traffic
// on other threads (gtest internals, logging, ...).

#ifndef GSPS_COMMON_ALLOC_HOOK_H_
#define GSPS_COMMON_ALLOC_HOOK_H_

#include <cstdint>

namespace gsps {

struct AllocCounts {
  int64_t allocs = 0;  // operator new calls that returned memory.
  int64_t frees = 0;   // operator delete calls with a non-null pointer.
};

// Counts recorded on the calling thread since thread start. Always zero in
// binaries that do not link gsps_alloc_hook.
AllocCounts ThreadAllocCounts();

// Allocation delta over a scope, on the constructing thread.
//
//   AllocMeter meter;
//   HotLoop();
//   EXPECT_EQ(meter.allocs(), 0);
class AllocMeter {
 public:
  AllocMeter() : start_(ThreadAllocCounts()) {}

  int64_t allocs() const { return ThreadAllocCounts().allocs - start_.allocs; }
  int64_t frees() const { return ThreadAllocCounts().frees - start_.frees; }

 private:
  AllocCounts start_;
};

}  // namespace gsps

#endif  // GSPS_COMMON_ALLOC_HOOK_H_
