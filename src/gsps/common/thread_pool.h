// A small fixed-size worker pool built for barrier-style data parallelism.
//
// The primary primitive is ParallelFor(n, fn): run fn(0..n-1) across the
// workers plus the calling thread, returning when every index has finished.
// Indices are handed out through a per-barrier atomic cursor, so the
// schedule is self-balancing (work-stealing-friendly: a worker that
// finishes its index immediately "steals" the next unclaimed one instead of
// idling behind a static partition). Tasks must not throw — the library is
// exception-free; programmer errors abort via GSPS_CHECK.
//
// One pool is meant to live as long as its owner (e.g. the parallel query
// engine) and be reused across many barriers; workers block on a condition
// variable between barriers rather than spinning. Each barrier's state
// (cursor, completion count, the user function) lives in one shared-ptr'd
// block, so a worker that wakes late for an already-finished barrier finds
// its cursor exhausted and simply goes back to sleep — it can never touch
// the next barrier's indices or a dead std::function.
//
// A pool constructed with num_threads <= 1 spawns no workers and runs
// ParallelFor inline on the caller, which keeps single-threaded callers
// free of any synchronization cost.

#ifndef GSPS_COMMON_THREAD_POOL_H_
#define GSPS_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gsps {

class ThreadPool {
 public:
  // Spawns num_threads - 1 workers (the caller is the remaining lane).
  // num_threads <= 1 means fully inline execution.
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  // The parallelism degree this pool was built for (>= 1).
  int num_threads() const { return num_threads_; }

  // Runs fn(i) exactly once for every i in [0, n), distributing indices
  // dynamically over the workers and the calling thread. Returns after all
  // n calls have completed (a full barrier). Not reentrant: ParallelFor
  // must not be called from inside a ParallelFor task of the same pool.
  void ParallelFor(int n, const std::function<void(int)>& fn);

  // std::thread::hardware_concurrency with a floor of 1.
  static int HardwareThreads();

 private:
  // One ParallelFor invocation's state. The caller's ParallelFor frame only
  // returns once `completed == limit`, at which point `next >= limit`
  // forever, so any thread still holding a reference can no longer claim an
  // index (and therefore never dereferences `fn` again).
  struct Barrier {
    const std::function<void(int)>* fn = nullptr;
    int limit = 0;
    uint64_t generation = 0;
    std::atomic<int> next{0};  // Next unclaimed index (lock-free claim).
    int completed = 0;         // Guarded by the pool mutex.
  };

  void WorkerLoop();

  // Claims and runs indices from `barrier` until its cursor is exhausted,
  // then credits the completions.
  void Drain(Barrier& barrier);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable barrier_done_;
  std::shared_ptr<Barrier> current_;  // Guarded by mutex_.
  uint64_t next_generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace gsps

#endif  // GSPS_COMMON_THREAD_POOL_H_
