// Deterministic pseudo-random number generation for data synthesis and tests.
//
// All experiment harnesses take an explicit seed so every table in
// EXPERIMENTS.md is exactly reproducible. The generator is xoshiro256**
// seeded through SplitMix64, which is fast, has good statistical quality,
// and — unlike std::mt19937 with std::uniform_int_distribution — produces
// identical streams across standard library implementations.

#ifndef GSPS_COMMON_RANDOM_H_
#define GSPS_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gsps {

// xoshiro256** PRNG with convenience sampling helpers.
//
// Example:
//   Rng rng(42);
//   int die = rng.UniformInt(1, 6);
//   if (rng.Bernoulli(0.25)) { ... }
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Returns the next raw 64-bit output.
  uint64_t Next();

  // Returns a uniform integer in the inclusive range [lo, hi]. `lo <= hi`.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Returns a uniform double in [0, 1).
  double UniformDouble();

  // Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Returns a Poisson-distributed sample with the given mean (Knuth's
  // algorithm; the means used by the generators are small).
  int Poisson(double mean);

  // Returns a Zipf-distributed value in [0, n) with exponent `s`.
  // Used for skewed label alphabets (chemistry-like element frequencies).
  int Zipf(int n, double s);

  // Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(values[i - 1], values[j]);
    }
  }

  // Forks an independent generator; used to give each stream its own
  // deterministic sub-sequence regardless of evaluation order.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace gsps

#endif  // GSPS_COMMON_RANDOM_H_
