// Wall-clock timing helper for the benchmark harnesses.

#ifndef GSPS_COMMON_STOPWATCH_H_
#define GSPS_COMMON_STOPWATCH_H_

#include <chrono>

namespace gsps {

// Measures elapsed wall time. Started on construction or Restart().
//
// Example:
//   Stopwatch watch;
//   DoWork();
//   double ms = watch.ElapsedMillis();
class Stopwatch {
 public:
  Stopwatch();

  // Resets the start point to now.
  void Restart();

  // Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const;

  // Microseconds elapsed since construction or the last Restart().
  double ElapsedMicros() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace gsps

#endif  // GSPS_COMMON_STOPWATCH_H_
