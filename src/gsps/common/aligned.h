// Over-aligned storage for SIMD-swept arrays.
//
// AlignedAllocator is a minimal std::allocator replacement that hands out
// blocks aligned to `Alignment` bytes via the aligned operator new overloads
// (C++17 std::align_val_t). std::vector instantiated with it keeps its usual
// semantics; only the buffer's base address changes. Used by the NPV slab
// and the dominance kernel's lane-major blocks so vector loads start on a
// cache line and never split it.

#ifndef GSPS_COMMON_ALIGNED_H_
#define GSPS_COMMON_ALIGNED_H_

#include <cstddef>
#include <new>

namespace gsps {

template <typename T, std::size_t Alignment>
class AlignedAllocator {
 public:
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two no weaker than alignof(T)");

  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

}  // namespace gsps

#endif  // GSPS_COMMON_ALIGNED_H_
