// Counting replacements for the global allocation functions. See the header
// for the linking contract. The replacements forward to malloc/free, which
// keeps them compatible with sanitizer interceptors (ASan/TSan hook malloc,
// not operator new).

#include "gsps/common/alloc_hook.h"

#include <cstdlib>
#include <new>

namespace gsps {
namespace {

thread_local AllocCounts t_alloc_counts;

void* CountedAlloc(std::size_t size) {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) std::abort();  // The library is exception-free.
  ++t_alloc_counts.allocs;
  return p;
}

void* CountedAlignedAlloc(std::size_t size, std::size_t alignment) {
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size == 0 ? 1 : size) != 0) std::abort();
  ++t_alloc_counts.allocs;
  return p;
}

void CountedFree(void* p) {
  if (p == nullptr) return;
  ++t_alloc_counts.frees;
  std::free(p);
}

}  // namespace

AllocCounts ThreadAllocCounts() { return t_alloc_counts; }

}  // namespace gsps

void* operator new(std::size_t size) { return gsps::CountedAlloc(size); }
void* operator new[](std::size_t size) { return gsps::CountedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return gsps::CountedAlloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return gsps::CountedAlloc(size);
}
void* operator new(std::size_t size, std::align_val_t alignment) {
  return gsps::CountedAlignedAlloc(size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return gsps::CountedAlignedAlloc(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept { gsps::CountedFree(p); }
void operator delete[](void* p) noexcept { gsps::CountedFree(p); }
void operator delete(void* p, std::size_t) noexcept { gsps::CountedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { gsps::CountedFree(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  gsps::CountedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  gsps::CountedFree(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  gsps::CountedFree(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  gsps::CountedFree(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  gsps::CountedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  gsps::CountedFree(p);
}
