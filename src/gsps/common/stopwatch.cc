#include "gsps/common/stopwatch.h"

namespace gsps {

Stopwatch::Stopwatch() : start_(std::chrono::steady_clock::now()) {}

void Stopwatch::Restart() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::ElapsedMillis() const { return ElapsedMicros() / 1000.0; }

double Stopwatch::ElapsedMicros() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(now - start_).count();
}

}  // namespace gsps
