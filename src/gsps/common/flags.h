// Strict --flag parsing for the CLI tools.
//
// The previous ad-hoc parsers scanned argv for each flag they knew about
// and silently ignored everything else, so a misspelling like --thread=4
// degraded behavior without a word. FlagParser inverts that: each Get*
// call declares its flag as known, and after all declarations the tool
// asks for UnrecognizedArgs() — anything left (unknown --flags, stray
// positionals) is a usage error, reported with a nearest-match suggestion.
//
//   gsps::FlagParser flags(argc, argv);
//   const std::string out = flags.GetString("out", "");
//   const int n = flags.GetInt("iterations", 100);
//   const bool quiet = flags.GetBool("quiet");
//   if (!flags.UnrecognizedArgs().empty()) {
//     std::fprintf(stderr, "%s\n", flags.ErrorMessage().c_str());
//     return 2;  // after printing usage
//   }
//
// Accepted syntax: --name=value and bare --name (boolean true). A bare
// "--" is not special. Parsing never exits or throws; policy stays in the
// tool's main().

#ifndef GSPS_COMMON_FLAGS_H_
#define GSPS_COMMON_FLAGS_H_

#include <string>
#include <vector>

namespace gsps {

class FlagParser {
 public:
  FlagParser(int argc, char** argv);

  // Each getter marks `name` as a known flag and returns its value, or
  // `fallback` when absent. GetBool returns true for bare --name or
  // --name=true/1, false for --name=false/0 or absence.
  std::string GetString(const std::string& name, const std::string& fallback);
  int GetInt(const std::string& name, int fallback);
  long long GetInt64(const std::string& name, long long fallback);
  double GetDouble(const std::string& name, double fallback);
  bool GetBool(const std::string& name);

  // True iff --name was present on the command line (and marks it known).
  bool Has(const std::string& name);

  // Arguments never claimed by a getter: unknown --flags and positional
  // arguments, in command-line order. Call after all getters.
  std::vector<std::string> UnrecognizedArgs() const;

  // Diagnostic for the first unrecognized argument, with a did-you-mean
  // suggestion when a declared flag is within small edit distance. Empty
  // string when everything was recognized.
  std::string ErrorMessage() const;

 private:
  struct Arg {
    std::string raw;      // As typed, e.g. "--iterations=5".
    std::string name;     // "iterations" ("" for positionals).
    std::string value;    // "5" ("" for bare flags).
    bool has_value = false;
    bool recognized = false;
  };

  Arg* Find(const std::string& name);

  std::vector<Arg> args_;
  std::vector<std::string> known_;
};

}  // namespace gsps

#endif  // GSPS_COMMON_FLAGS_H_
