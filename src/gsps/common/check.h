// Lightweight assertion macros used across the library.
//
// The library does not use exceptions. Programmer errors (precondition
// violations) abort with a diagnostic; recoverable conditions are reported
// through return values.

#ifndef GSPS_COMMON_CHECK_H_
#define GSPS_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Aborts the process with a file:line diagnostic when `condition` is false.
// Enabled in all build types: the checked invariants are cheap and guard
// index consistency that silent corruption would make undebuggable.
#define GSPS_CHECK(condition)                                              \
  do {                                                                     \
    if (!(condition)) {                                                    \
      std::fprintf(stderr, "GSPS_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #condition);                                  \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

// Variant carrying a human-readable reason.
#define GSPS_CHECK_MSG(condition, msg)                                       \
  do {                                                                       \
    if (!(condition)) {                                                      \
      std::fprintf(stderr, "GSPS_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #condition, msg);                               \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

// Debug-only check for hot paths.
#ifdef NDEBUG
#define GSPS_DCHECK(condition) \
  do {                         \
  } while (false)
#else
#define GSPS_DCHECK(condition) GSPS_CHECK(condition)
#endif

#endif  // GSPS_COMMON_CHECK_H_
