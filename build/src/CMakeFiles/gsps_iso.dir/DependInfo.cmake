
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gsps/iso/bipartite_matching.cc" "src/CMakeFiles/gsps_iso.dir/gsps/iso/bipartite_matching.cc.o" "gcc" "src/CMakeFiles/gsps_iso.dir/gsps/iso/bipartite_matching.cc.o.d"
  "/root/repo/src/gsps/iso/branch_compatibility.cc" "src/CMakeFiles/gsps_iso.dir/gsps/iso/branch_compatibility.cc.o" "gcc" "src/CMakeFiles/gsps_iso.dir/gsps/iso/branch_compatibility.cc.o.d"
  "/root/repo/src/gsps/iso/subgraph_isomorphism.cc" "src/CMakeFiles/gsps_iso.dir/gsps/iso/subgraph_isomorphism.cc.o" "gcc" "src/CMakeFiles/gsps_iso.dir/gsps/iso/subgraph_isomorphism.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gsps_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
