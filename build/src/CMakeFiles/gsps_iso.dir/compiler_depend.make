# Empty compiler generated dependencies file for gsps_iso.
# This may be replaced when dependencies are built.
