file(REMOVE_RECURSE
  "CMakeFiles/gsps_iso.dir/gsps/iso/bipartite_matching.cc.o"
  "CMakeFiles/gsps_iso.dir/gsps/iso/bipartite_matching.cc.o.d"
  "CMakeFiles/gsps_iso.dir/gsps/iso/branch_compatibility.cc.o"
  "CMakeFiles/gsps_iso.dir/gsps/iso/branch_compatibility.cc.o.d"
  "CMakeFiles/gsps_iso.dir/gsps/iso/subgraph_isomorphism.cc.o"
  "CMakeFiles/gsps_iso.dir/gsps/iso/subgraph_isomorphism.cc.o.d"
  "libgsps_iso.a"
  "libgsps_iso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsps_iso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
