file(REMOVE_RECURSE
  "libgsps_iso.a"
)
