file(REMOVE_RECURSE
  "libgsps_join.a"
)
