file(REMOVE_RECURSE
  "CMakeFiles/gsps_join.dir/gsps/join/dominance.cc.o"
  "CMakeFiles/gsps_join.dir/gsps/join/dominance.cc.o.d"
  "CMakeFiles/gsps_join.dir/gsps/join/dominated_set_cover_join.cc.o"
  "CMakeFiles/gsps_join.dir/gsps/join/dominated_set_cover_join.cc.o.d"
  "CMakeFiles/gsps_join.dir/gsps/join/nested_loop_join.cc.o"
  "CMakeFiles/gsps_join.dir/gsps/join/nested_loop_join.cc.o.d"
  "CMakeFiles/gsps_join.dir/gsps/join/skyline_earlystop_join.cc.o"
  "CMakeFiles/gsps_join.dir/gsps/join/skyline_earlystop_join.cc.o.d"
  "libgsps_join.a"
  "libgsps_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsps_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
