
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gsps/join/dominance.cc" "src/CMakeFiles/gsps_join.dir/gsps/join/dominance.cc.o" "gcc" "src/CMakeFiles/gsps_join.dir/gsps/join/dominance.cc.o.d"
  "/root/repo/src/gsps/join/dominated_set_cover_join.cc" "src/CMakeFiles/gsps_join.dir/gsps/join/dominated_set_cover_join.cc.o" "gcc" "src/CMakeFiles/gsps_join.dir/gsps/join/dominated_set_cover_join.cc.o.d"
  "/root/repo/src/gsps/join/nested_loop_join.cc" "src/CMakeFiles/gsps_join.dir/gsps/join/nested_loop_join.cc.o" "gcc" "src/CMakeFiles/gsps_join.dir/gsps/join/nested_loop_join.cc.o.d"
  "/root/repo/src/gsps/join/skyline_earlystop_join.cc" "src/CMakeFiles/gsps_join.dir/gsps/join/skyline_earlystop_join.cc.o" "gcc" "src/CMakeFiles/gsps_join.dir/gsps/join/skyline_earlystop_join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gsps_nnt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsps_iso.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsps_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
