# Empty dependencies file for gsps_join.
# This may be replaced when dependencies are built.
