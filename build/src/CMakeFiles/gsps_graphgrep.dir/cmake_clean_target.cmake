file(REMOVE_RECURSE
  "libgsps_graphgrep.a"
)
