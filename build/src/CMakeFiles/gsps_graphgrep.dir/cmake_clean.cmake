file(REMOVE_RECURSE
  "CMakeFiles/gsps_graphgrep.dir/gsps/baselines/graphgrep/graphgrep_filter.cc.o"
  "CMakeFiles/gsps_graphgrep.dir/gsps/baselines/graphgrep/graphgrep_filter.cc.o.d"
  "CMakeFiles/gsps_graphgrep.dir/gsps/baselines/graphgrep/path_index.cc.o"
  "CMakeFiles/gsps_graphgrep.dir/gsps/baselines/graphgrep/path_index.cc.o.d"
  "libgsps_graphgrep.a"
  "libgsps_graphgrep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsps_graphgrep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
