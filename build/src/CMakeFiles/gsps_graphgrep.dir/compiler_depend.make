# Empty compiler generated dependencies file for gsps_graphgrep.
# This may be replaced when dependencies are built.
