file(REMOVE_RECURSE
  "libgsps_gen.a"
)
