# Empty dependencies file for gsps_gen.
# This may be replaced when dependencies are built.
