
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gsps/gen/aids_like.cc" "src/CMakeFiles/gsps_gen.dir/gsps/gen/aids_like.cc.o" "gcc" "src/CMakeFiles/gsps_gen.dir/gsps/gen/aids_like.cc.o.d"
  "/root/repo/src/gsps/gen/query_extractor.cc" "src/CMakeFiles/gsps_gen.dir/gsps/gen/query_extractor.cc.o" "gcc" "src/CMakeFiles/gsps_gen.dir/gsps/gen/query_extractor.cc.o.d"
  "/root/repo/src/gsps/gen/reality_like.cc" "src/CMakeFiles/gsps_gen.dir/gsps/gen/reality_like.cc.o" "gcc" "src/CMakeFiles/gsps_gen.dir/gsps/gen/reality_like.cc.o.d"
  "/root/repo/src/gsps/gen/stream_generator.cc" "src/CMakeFiles/gsps_gen.dir/gsps/gen/stream_generator.cc.o" "gcc" "src/CMakeFiles/gsps_gen.dir/gsps/gen/stream_generator.cc.o.d"
  "/root/repo/src/gsps/gen/synthetic_generator.cc" "src/CMakeFiles/gsps_gen.dir/gsps/gen/synthetic_generator.cc.o" "gcc" "src/CMakeFiles/gsps_gen.dir/gsps/gen/synthetic_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gsps_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
