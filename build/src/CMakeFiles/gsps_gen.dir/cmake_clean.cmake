file(REMOVE_RECURSE
  "CMakeFiles/gsps_gen.dir/gsps/gen/aids_like.cc.o"
  "CMakeFiles/gsps_gen.dir/gsps/gen/aids_like.cc.o.d"
  "CMakeFiles/gsps_gen.dir/gsps/gen/query_extractor.cc.o"
  "CMakeFiles/gsps_gen.dir/gsps/gen/query_extractor.cc.o.d"
  "CMakeFiles/gsps_gen.dir/gsps/gen/reality_like.cc.o"
  "CMakeFiles/gsps_gen.dir/gsps/gen/reality_like.cc.o.d"
  "CMakeFiles/gsps_gen.dir/gsps/gen/stream_generator.cc.o"
  "CMakeFiles/gsps_gen.dir/gsps/gen/stream_generator.cc.o.d"
  "CMakeFiles/gsps_gen.dir/gsps/gen/synthetic_generator.cc.o"
  "CMakeFiles/gsps_gen.dir/gsps/gen/synthetic_generator.cc.o.d"
  "libgsps_gen.a"
  "libgsps_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsps_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
