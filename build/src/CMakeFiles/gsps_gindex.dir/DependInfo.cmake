
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gsps/baselines/gindex/dfs_code.cc" "src/CMakeFiles/gsps_gindex.dir/gsps/baselines/gindex/dfs_code.cc.o" "gcc" "src/CMakeFiles/gsps_gindex.dir/gsps/baselines/gindex/dfs_code.cc.o.d"
  "/root/repo/src/gsps/baselines/gindex/gindex_filter.cc" "src/CMakeFiles/gsps_gindex.dir/gsps/baselines/gindex/gindex_filter.cc.o" "gcc" "src/CMakeFiles/gsps_gindex.dir/gsps/baselines/gindex/gindex_filter.cc.o.d"
  "/root/repo/src/gsps/baselines/gindex/gspan_miner.cc" "src/CMakeFiles/gsps_gindex.dir/gsps/baselines/gindex/gspan_miner.cc.o" "gcc" "src/CMakeFiles/gsps_gindex.dir/gsps/baselines/gindex/gspan_miner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gsps_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsps_iso.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
