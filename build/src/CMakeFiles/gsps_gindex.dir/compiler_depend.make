# Empty compiler generated dependencies file for gsps_gindex.
# This may be replaced when dependencies are built.
