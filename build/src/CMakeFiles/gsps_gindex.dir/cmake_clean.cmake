file(REMOVE_RECURSE
  "CMakeFiles/gsps_gindex.dir/gsps/baselines/gindex/dfs_code.cc.o"
  "CMakeFiles/gsps_gindex.dir/gsps/baselines/gindex/dfs_code.cc.o.d"
  "CMakeFiles/gsps_gindex.dir/gsps/baselines/gindex/gindex_filter.cc.o"
  "CMakeFiles/gsps_gindex.dir/gsps/baselines/gindex/gindex_filter.cc.o.d"
  "CMakeFiles/gsps_gindex.dir/gsps/baselines/gindex/gspan_miner.cc.o"
  "CMakeFiles/gsps_gindex.dir/gsps/baselines/gindex/gspan_miner.cc.o.d"
  "libgsps_gindex.a"
  "libgsps_gindex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsps_gindex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
