file(REMOVE_RECURSE
  "libgsps_gindex.a"
)
