file(REMOVE_RECURSE
  "libgsps_common.a"
)
