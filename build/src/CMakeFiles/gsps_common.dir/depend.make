# Empty dependencies file for gsps_common.
# This may be replaced when dependencies are built.
