file(REMOVE_RECURSE
  "CMakeFiles/gsps_common.dir/gsps/common/random.cc.o"
  "CMakeFiles/gsps_common.dir/gsps/common/random.cc.o.d"
  "CMakeFiles/gsps_common.dir/gsps/common/stopwatch.cc.o"
  "CMakeFiles/gsps_common.dir/gsps/common/stopwatch.cc.o.d"
  "libgsps_common.a"
  "libgsps_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsps_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
