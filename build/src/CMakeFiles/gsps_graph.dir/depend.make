# Empty dependencies file for gsps_graph.
# This may be replaced when dependencies are built.
