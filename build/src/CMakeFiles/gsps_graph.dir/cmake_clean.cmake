file(REMOVE_RECURSE
  "CMakeFiles/gsps_graph.dir/gsps/graph/graph.cc.o"
  "CMakeFiles/gsps_graph.dir/gsps/graph/graph.cc.o.d"
  "CMakeFiles/gsps_graph.dir/gsps/graph/graph_change.cc.o"
  "CMakeFiles/gsps_graph.dir/gsps/graph/graph_change.cc.o.d"
  "CMakeFiles/gsps_graph.dir/gsps/graph/graph_io.cc.o"
  "CMakeFiles/gsps_graph.dir/gsps/graph/graph_io.cc.o.d"
  "CMakeFiles/gsps_graph.dir/gsps/graph/graph_stream.cc.o"
  "CMakeFiles/gsps_graph.dir/gsps/graph/graph_stream.cc.o.d"
  "CMakeFiles/gsps_graph.dir/gsps/graph/stream_io.cc.o"
  "CMakeFiles/gsps_graph.dir/gsps/graph/stream_io.cc.o.d"
  "libgsps_graph.a"
  "libgsps_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsps_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
