
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gsps/graph/graph.cc" "src/CMakeFiles/gsps_graph.dir/gsps/graph/graph.cc.o" "gcc" "src/CMakeFiles/gsps_graph.dir/gsps/graph/graph.cc.o.d"
  "/root/repo/src/gsps/graph/graph_change.cc" "src/CMakeFiles/gsps_graph.dir/gsps/graph/graph_change.cc.o" "gcc" "src/CMakeFiles/gsps_graph.dir/gsps/graph/graph_change.cc.o.d"
  "/root/repo/src/gsps/graph/graph_io.cc" "src/CMakeFiles/gsps_graph.dir/gsps/graph/graph_io.cc.o" "gcc" "src/CMakeFiles/gsps_graph.dir/gsps/graph/graph_io.cc.o.d"
  "/root/repo/src/gsps/graph/graph_stream.cc" "src/CMakeFiles/gsps_graph.dir/gsps/graph/graph_stream.cc.o" "gcc" "src/CMakeFiles/gsps_graph.dir/gsps/graph/graph_stream.cc.o.d"
  "/root/repo/src/gsps/graph/stream_io.cc" "src/CMakeFiles/gsps_graph.dir/gsps/graph/stream_io.cc.o" "gcc" "src/CMakeFiles/gsps_graph.dir/gsps/graph/stream_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gsps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
