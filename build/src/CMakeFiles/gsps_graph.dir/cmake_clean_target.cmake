file(REMOVE_RECURSE
  "libgsps_graph.a"
)
