
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gsps/nnt/dimension.cc" "src/CMakeFiles/gsps_nnt.dir/gsps/nnt/dimension.cc.o" "gcc" "src/CMakeFiles/gsps_nnt.dir/gsps/nnt/dimension.cc.o.d"
  "/root/repo/src/gsps/nnt/nnt_set.cc" "src/CMakeFiles/gsps_nnt.dir/gsps/nnt/nnt_set.cc.o" "gcc" "src/CMakeFiles/gsps_nnt.dir/gsps/nnt/nnt_set.cc.o.d"
  "/root/repo/src/gsps/nnt/node_neighbor_tree.cc" "src/CMakeFiles/gsps_nnt.dir/gsps/nnt/node_neighbor_tree.cc.o" "gcc" "src/CMakeFiles/gsps_nnt.dir/gsps/nnt/node_neighbor_tree.cc.o.d"
  "/root/repo/src/gsps/nnt/npv.cc" "src/CMakeFiles/gsps_nnt.dir/gsps/nnt/npv.cc.o" "gcc" "src/CMakeFiles/gsps_nnt.dir/gsps/nnt/npv.cc.o.d"
  "/root/repo/src/gsps/nnt/subtree_filter.cc" "src/CMakeFiles/gsps_nnt.dir/gsps/nnt/subtree_filter.cc.o" "gcc" "src/CMakeFiles/gsps_nnt.dir/gsps/nnt/subtree_filter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gsps_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsps_iso.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
