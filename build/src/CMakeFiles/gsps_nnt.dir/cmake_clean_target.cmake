file(REMOVE_RECURSE
  "libgsps_nnt.a"
)
