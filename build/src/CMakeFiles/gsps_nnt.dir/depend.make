# Empty dependencies file for gsps_nnt.
# This may be replaced when dependencies are built.
