file(REMOVE_RECURSE
  "CMakeFiles/gsps_nnt.dir/gsps/nnt/dimension.cc.o"
  "CMakeFiles/gsps_nnt.dir/gsps/nnt/dimension.cc.o.d"
  "CMakeFiles/gsps_nnt.dir/gsps/nnt/nnt_set.cc.o"
  "CMakeFiles/gsps_nnt.dir/gsps/nnt/nnt_set.cc.o.d"
  "CMakeFiles/gsps_nnt.dir/gsps/nnt/node_neighbor_tree.cc.o"
  "CMakeFiles/gsps_nnt.dir/gsps/nnt/node_neighbor_tree.cc.o.d"
  "CMakeFiles/gsps_nnt.dir/gsps/nnt/npv.cc.o"
  "CMakeFiles/gsps_nnt.dir/gsps/nnt/npv.cc.o.d"
  "CMakeFiles/gsps_nnt.dir/gsps/nnt/subtree_filter.cc.o"
  "CMakeFiles/gsps_nnt.dir/gsps/nnt/subtree_filter.cc.o.d"
  "libgsps_nnt.a"
  "libgsps_nnt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsps_nnt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
