file(REMOVE_RECURSE
  "libgsps_engine.a"
)
