file(REMOVE_RECURSE
  "CMakeFiles/gsps_engine.dir/gsps/engine/candidate_tracker.cc.o"
  "CMakeFiles/gsps_engine.dir/gsps/engine/candidate_tracker.cc.o.d"
  "CMakeFiles/gsps_engine.dir/gsps/engine/continuous_query_engine.cc.o"
  "CMakeFiles/gsps_engine.dir/gsps/engine/continuous_query_engine.cc.o.d"
  "CMakeFiles/gsps_engine.dir/gsps/engine/filter_stats.cc.o"
  "CMakeFiles/gsps_engine.dir/gsps/engine/filter_stats.cc.o.d"
  "CMakeFiles/gsps_engine.dir/gsps/engine/static_npv_index.cc.o"
  "CMakeFiles/gsps_engine.dir/gsps/engine/static_npv_index.cc.o.d"
  "libgsps_engine.a"
  "libgsps_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsps_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
