# Empty dependencies file for gsps_engine.
# This may be replaced when dependencies are built.
