
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gsps/engine/candidate_tracker.cc" "src/CMakeFiles/gsps_engine.dir/gsps/engine/candidate_tracker.cc.o" "gcc" "src/CMakeFiles/gsps_engine.dir/gsps/engine/candidate_tracker.cc.o.d"
  "/root/repo/src/gsps/engine/continuous_query_engine.cc" "src/CMakeFiles/gsps_engine.dir/gsps/engine/continuous_query_engine.cc.o" "gcc" "src/CMakeFiles/gsps_engine.dir/gsps/engine/continuous_query_engine.cc.o.d"
  "/root/repo/src/gsps/engine/filter_stats.cc" "src/CMakeFiles/gsps_engine.dir/gsps/engine/filter_stats.cc.o" "gcc" "src/CMakeFiles/gsps_engine.dir/gsps/engine/filter_stats.cc.o.d"
  "/root/repo/src/gsps/engine/static_npv_index.cc" "src/CMakeFiles/gsps_engine.dir/gsps/engine/static_npv_index.cc.o" "gcc" "src/CMakeFiles/gsps_engine.dir/gsps/engine/static_npv_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gsps_join.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsps_iso.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsps_nnt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsps_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
