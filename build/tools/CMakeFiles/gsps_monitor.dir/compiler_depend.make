# Empty compiler generated dependencies file for gsps_monitor.
# This may be replaced when dependencies are built.
