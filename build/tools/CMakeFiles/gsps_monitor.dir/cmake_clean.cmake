file(REMOVE_RECURSE
  "CMakeFiles/gsps_monitor.dir/gsps_monitor.cc.o"
  "CMakeFiles/gsps_monitor.dir/gsps_monitor.cc.o.d"
  "gsps_monitor"
  "gsps_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsps_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
