file(REMOVE_RECURSE
  "CMakeFiles/gsps_gen_workload.dir/gsps_gen_workload.cc.o"
  "CMakeFiles/gsps_gen_workload.dir/gsps_gen_workload.cc.o.d"
  "gsps_gen_workload"
  "gsps_gen_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsps_gen_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
