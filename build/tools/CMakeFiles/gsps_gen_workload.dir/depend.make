# Empty dependencies file for gsps_gen_workload.
# This may be replaced when dependencies are built.
