# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_gen_workload "/root/repo/build/tools/gsps_gen_workload" "--out_queries=/root/repo/build/tools/cli_queries.txt" "--out_stream=/root/repo/build/tools/cli_stream.txt" "--kind=reality" "--timestamps=20")
set_tests_properties(cli_gen_workload PROPERTIES  FIXTURES_SETUP "cli_files" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_monitor "/root/repo/build/tools/gsps_monitor" "--queries=/root/repo/build/tools/cli_queries.txt" "--stream=/root/repo/build/tools/cli_stream.txt" "--verify" "--quiet")
set_tests_properties(cli_monitor PROPERTIES  FIXTURES_REQUIRED "cli_files" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
