# Empty dependencies file for paper_example_test.
# This may be replaced when dependencies are built.
