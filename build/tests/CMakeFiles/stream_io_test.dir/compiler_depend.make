# Empty compiler generated dependencies file for stream_io_test.
# This may be replaced when dependencies are built.
