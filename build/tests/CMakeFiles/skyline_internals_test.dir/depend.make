# Empty dependencies file for skyline_internals_test.
# This may be replaced when dependencies are built.
