file(REMOVE_RECURSE
  "CMakeFiles/skyline_internals_test.dir/skyline_internals_test.cc.o"
  "CMakeFiles/skyline_internals_test.dir/skyline_internals_test.cc.o.d"
  "skyline_internals_test"
  "skyline_internals_test.pdb"
  "skyline_internals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyline_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
