# Empty compiler generated dependencies file for subtree_filter_test.
# This may be replaced when dependencies are built.
