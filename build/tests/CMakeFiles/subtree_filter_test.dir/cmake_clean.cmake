file(REMOVE_RECURSE
  "CMakeFiles/subtree_filter_test.dir/subtree_filter_test.cc.o"
  "CMakeFiles/subtree_filter_test.dir/subtree_filter_test.cc.o.d"
  "subtree_filter_test"
  "subtree_filter_test.pdb"
  "subtree_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subtree_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
