file(REMOVE_RECURSE
  "CMakeFiles/graphgrep_test.dir/graphgrep_test.cc.o"
  "CMakeFiles/graphgrep_test.dir/graphgrep_test.cc.o.d"
  "graphgrep_test"
  "graphgrep_test.pdb"
  "graphgrep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphgrep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
