# Empty compiler generated dependencies file for graphgrep_test.
# This may be replaced when dependencies are built.
