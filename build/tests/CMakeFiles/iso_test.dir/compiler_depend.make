# Empty compiler generated dependencies file for iso_test.
# This may be replaced when dependencies are built.
