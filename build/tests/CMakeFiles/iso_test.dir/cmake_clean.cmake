file(REMOVE_RECURSE
  "CMakeFiles/iso_test.dir/iso_test.cc.o"
  "CMakeFiles/iso_test.dir/iso_test.cc.o.d"
  "iso_test"
  "iso_test.pdb"
  "iso_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iso_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
