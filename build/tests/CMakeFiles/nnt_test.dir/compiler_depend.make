# Empty compiler generated dependencies file for nnt_test.
# This may be replaced when dependencies are built.
