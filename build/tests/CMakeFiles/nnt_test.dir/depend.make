# Empty dependencies file for nnt_test.
# This may be replaced when dependencies are built.
