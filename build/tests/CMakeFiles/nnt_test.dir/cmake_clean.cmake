file(REMOVE_RECURSE
  "CMakeFiles/nnt_test.dir/nnt_test.cc.o"
  "CMakeFiles/nnt_test.dir/nnt_test.cc.o.d"
  "nnt_test"
  "nnt_test.pdb"
  "nnt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nnt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
