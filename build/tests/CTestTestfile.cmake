# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/iso_test[1]_include.cmake")
include("/root/repo/build/tests/nnt_test[1]_include.cmake")
include("/root/repo/build/tests/join_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/graphgrep_test[1]_include.cmake")
include("/root/repo/build/tests/gindex_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/paper_example_test[1]_include.cmake")
include("/root/repo/build/tests/property_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/subtree_filter_test[1]_include.cmake")
include("/root/repo/build/tests/stream_io_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/skyline_internals_test[1]_include.cmake")
include("/root/repo/build/tests/engine_extras_test[1]_include.cmake")
