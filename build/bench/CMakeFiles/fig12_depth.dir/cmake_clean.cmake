file(REMOVE_RECURSE
  "CMakeFiles/fig12_depth.dir/fig12_depth.cc.o"
  "CMakeFiles/fig12_depth.dir/fig12_depth.cc.o.d"
  "fig12_depth"
  "fig12_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
