# Empty dependencies file for fig12_depth.
# This may be replaced when dependencies are built.
