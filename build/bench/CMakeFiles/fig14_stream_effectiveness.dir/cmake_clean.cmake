file(REMOVE_RECURSE
  "CMakeFiles/fig14_stream_effectiveness.dir/fig14_stream_effectiveness.cc.o"
  "CMakeFiles/fig14_stream_effectiveness.dir/fig14_stream_effectiveness.cc.o.d"
  "fig14_stream_effectiveness"
  "fig14_stream_effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_stream_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
