# Empty compiler generated dependencies file for fig14_stream_effectiveness.
# This may be replaced when dependencies are built.
