file(REMOVE_RECURSE
  "CMakeFiles/fig15_stream_efficiency.dir/fig15_stream_efficiency.cc.o"
  "CMakeFiles/fig15_stream_efficiency.dir/fig15_stream_efficiency.cc.o.d"
  "fig15_stream_efficiency"
  "fig15_stream_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_stream_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
