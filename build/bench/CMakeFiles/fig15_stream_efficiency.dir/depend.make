# Empty dependencies file for fig15_stream_efficiency.
# This may be replaced when dependencies are built.
