# Empty compiler generated dependencies file for workload_probe.
# This may be replaced when dependencies are built.
