file(REMOVE_RECURSE
  "CMakeFiles/workload_probe.dir/workload_probe.cc.o"
  "CMakeFiles/workload_probe.dir/workload_probe.cc.o.d"
  "workload_probe"
  "workload_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
