file(REMOVE_RECURSE
  "CMakeFiles/fig13_static_effectiveness.dir/fig13_static_effectiveness.cc.o"
  "CMakeFiles/fig13_static_effectiveness.dir/fig13_static_effectiveness.cc.o.d"
  "fig13_static_effectiveness"
  "fig13_static_effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_static_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
