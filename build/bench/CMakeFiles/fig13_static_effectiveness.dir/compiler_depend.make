# Empty compiler generated dependencies file for fig13_static_effectiveness.
# This may be replaced when dependencies are built.
