# Empty dependencies file for fig02_preliminary.
# This may be replaced when dependencies are built.
