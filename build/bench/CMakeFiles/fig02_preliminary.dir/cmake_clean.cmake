file(REMOVE_RECURSE
  "CMakeFiles/fig02_preliminary.dir/fig02_preliminary.cc.o"
  "CMakeFiles/fig02_preliminary.dir/fig02_preliminary.cc.o.d"
  "fig02_preliminary"
  "fig02_preliminary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_preliminary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
