# Empty dependencies file for fig16_scalability_queries.
# This may be replaced when dependencies are built.
