file(REMOVE_RECURSE
  "CMakeFiles/fig16_scalability_queries.dir/fig16_scalability_queries.cc.o"
  "CMakeFiles/fig16_scalability_queries.dir/fig16_scalability_queries.cc.o.d"
  "fig16_scalability_queries"
  "fig16_scalability_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_scalability_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
