# Empty dependencies file for fig17_scalability_streams.
# This may be replaced when dependencies are built.
