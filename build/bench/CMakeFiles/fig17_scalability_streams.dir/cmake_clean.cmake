file(REMOVE_RECURSE
  "CMakeFiles/fig17_scalability_streams.dir/fig17_scalability_streams.cc.o"
  "CMakeFiles/fig17_scalability_streams.dir/fig17_scalability_streams.cc.o.d"
  "fig17_scalability_streams"
  "fig17_scalability_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_scalability_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
