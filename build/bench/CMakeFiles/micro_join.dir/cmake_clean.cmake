file(REMOVE_RECURSE
  "CMakeFiles/micro_join.dir/micro_join.cc.o"
  "CMakeFiles/micro_join.dir/micro_join.cc.o.d"
  "micro_join"
  "micro_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
