# Empty dependencies file for micro_join.
# This may be replaced when dependencies are built.
