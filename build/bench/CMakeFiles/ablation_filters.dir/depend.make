# Empty dependencies file for ablation_filters.
# This may be replaced when dependencies are built.
