file(REMOVE_RECURSE
  "CMakeFiles/ablation_filters.dir/ablation_filters.cc.o"
  "CMakeFiles/ablation_filters.dir/ablation_filters.cc.o.d"
  "ablation_filters"
  "ablation_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
