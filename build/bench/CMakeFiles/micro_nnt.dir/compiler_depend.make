# Empty compiler generated dependencies file for micro_nnt.
# This may be replaced when dependencies are built.
