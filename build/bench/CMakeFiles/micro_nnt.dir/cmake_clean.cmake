file(REMOVE_RECURSE
  "CMakeFiles/micro_nnt.dir/micro_nnt.cc.o"
  "CMakeFiles/micro_nnt.dir/micro_nnt.cc.o.d"
  "micro_nnt"
  "micro_nnt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_nnt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
