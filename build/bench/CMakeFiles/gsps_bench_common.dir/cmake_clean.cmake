file(REMOVE_RECURSE
  "CMakeFiles/gsps_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/gsps_bench_common.dir/bench_common.cc.o.d"
  "libgsps_bench_common.a"
  "libgsps_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsps_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
