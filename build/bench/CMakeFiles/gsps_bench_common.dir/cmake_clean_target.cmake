file(REMOVE_RECURSE
  "libgsps_bench_common.a"
)
