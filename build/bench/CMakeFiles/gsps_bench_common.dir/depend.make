# Empty dependencies file for gsps_bench_common.
# This may be replaced when dependencies are built.
