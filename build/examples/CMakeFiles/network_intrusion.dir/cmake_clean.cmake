file(REMOVE_RECURSE
  "CMakeFiles/network_intrusion.dir/network_intrusion.cpp.o"
  "CMakeFiles/network_intrusion.dir/network_intrusion.cpp.o.d"
  "network_intrusion"
  "network_intrusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_intrusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
