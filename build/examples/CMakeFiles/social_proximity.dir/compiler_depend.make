# Empty compiler generated dependencies file for social_proximity.
# This may be replaced when dependencies are built.
