file(REMOVE_RECURSE
  "CMakeFiles/social_proximity.dir/social_proximity.cpp.o"
  "CMakeFiles/social_proximity.dir/social_proximity.cpp.o.d"
  "social_proximity"
  "social_proximity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_proximity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
