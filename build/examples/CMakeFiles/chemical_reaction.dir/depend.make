# Empty dependencies file for chemical_reaction.
# This may be replaced when dependencies are built.
