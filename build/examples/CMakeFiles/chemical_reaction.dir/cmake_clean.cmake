file(REMOVE_RECURSE
  "CMakeFiles/chemical_reaction.dir/chemical_reaction.cpp.o"
  "CMakeFiles/chemical_reaction.dir/chemical_reaction.cpp.o.d"
  "chemical_reaction"
  "chemical_reaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chemical_reaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
