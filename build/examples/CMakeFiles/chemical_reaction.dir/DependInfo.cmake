
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/chemical_reaction.cpp" "examples/CMakeFiles/chemical_reaction.dir/chemical_reaction.cpp.o" "gcc" "examples/CMakeFiles/chemical_reaction.dir/chemical_reaction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gsps_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsps_join.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsps_nnt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsps_graphgrep.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsps_gindex.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsps_iso.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsps_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsps_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gsps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
