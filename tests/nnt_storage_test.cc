// Tests for the flat NNT storage layer (DESIGN.md "Storage layout"):
// intrusive sibling links, slot reuse with generation-stale detection, the
// open-addressing edge-appearance index, dense per-root state across
// RemoveTree/re-add cycles, deep churn with full validation after every
// operation, and the deterministic (sorted) dirty-root drain.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gsps/common/random.h"
#include "gsps/gen/synthetic_generator.h"
#include "gsps/graph/graph.h"
#include "gsps/nnt/dimension.h"
#include "gsps/nnt/edge_index.h"
#include "gsps/nnt/nnt_set.h"
#include "gsps/nnt/node_neighbor_tree.h"

namespace gsps {
namespace {

// --- NodeNeighborTree arena ------------------------------------------------

TEST(NodeNeighborTreeTest, IntrusiveChildLinks) {
  NodeNeighborTree tree(/*root_vertex=*/5, /*root_label=*/1);
  const TreeNodeId a = tree.AddChild(kTreeRoot, 6, 2, 0);
  const TreeNodeId b = tree.AddChild(kTreeRoot, 7, 3, 0);
  const TreeNodeId c = tree.AddChild(kTreeRoot, 8, 4, 0);
  EXPECT_EQ(tree.node(kTreeRoot).num_children, 3);

  std::vector<TreeNodeId> children;
  for (const TreeNodeId child : tree.Children(kTreeRoot)) {
    children.push_back(child);
  }
  ASSERT_EQ(children.size(), 3u);
  // AddChild prepends.
  EXPECT_EQ(children, (std::vector<TreeNodeId>{c, b, a}));

  // Freeing the middle node unlinks it in O(1) and keeps the chain intact.
  tree.FreeNode(b);
  EXPECT_EQ(tree.node(kTreeRoot).num_children, 2);
  children.clear();
  for (const TreeNodeId child : tree.Children(kTreeRoot)) {
    children.push_back(child);
  }
  EXPECT_EQ(children, (std::vector<TreeNodeId>{c, a}));
  EXPECT_EQ(tree.node(c).next_sibling, a);
  EXPECT_EQ(tree.node(a).prev_sibling, c);
}

TEST(NodeNeighborTreeTest, SlotReuseBumpsGenerationAndStalenessIsDetected) {
  NodeNeighborTree tree(/*root_vertex=*/0, /*root_label=*/0);
  const TreeNodeId child = tree.AddChild(kTreeRoot, 1, 1, 0);
  const uint32_t generation = tree.node(child).generation;
  ASSERT_TRUE(tree.IsAlive(child, generation));

  tree.FreeNode(child);
  // A stale Appearance probe (old id + old generation) must read as dead.
  EXPECT_FALSE(tree.IsAlive(child, generation));

  // The freed slot is reused for the next allocation with a new generation.
  const TreeNodeId reused = tree.AddChild(kTreeRoot, 2, 2, 0);
  EXPECT_EQ(reused, child);
  const uint32_t new_generation = tree.node(reused).generation;
  EXPECT_NE(new_generation, generation);
  EXPECT_FALSE(tree.IsAlive(child, generation));
  EXPECT_TRUE(tree.IsAlive(reused, new_generation));
  // Slot count did not grow: the arena recycled rather than extended.
  EXPECT_EQ(tree.SlotBound(), 2);
}

// --- EdgeAppearanceMap -----------------------------------------------------

TEST(EdgeAppearanceMapTest, InsertFindEraseAcrossGrowth) {
  EdgeAppearanceMap map;
  constexpr int kKeys = 1000;
  for (int i = 1; i <= kKeys; ++i) {
    map.GetOrCreate(static_cast<uint64_t>(i)).push_back(
        Appearance{i, kTreeRoot, 0});
  }
  EXPECT_EQ(map.NumKeys(), kKeys);
  for (int i = 1; i <= kKeys; ++i) {
    const auto* list = map.Find(static_cast<uint64_t>(i));
    ASSERT_NE(list, nullptr) << "key " << i;
    ASSERT_EQ(list->size(), 1u);
    EXPECT_EQ((*list)[0].tree_root, i);
  }
  // Erase every other key; backward-shift deletion must keep the remaining
  // probe chains reachable.
  for (int i = 2; i <= kKeys; i += 2) {
    map.Find(static_cast<uint64_t>(i))->clear();
    map.Erase(static_cast<uint64_t>(i));
  }
  EXPECT_EQ(map.NumKeys(), kKeys / 2);
  int64_t seen = 0;
  map.ForEach([&](uint64_t key, const std::vector<Appearance>& list) {
    EXPECT_EQ(key % 2, 1u);
    EXPECT_EQ(list.size(), 1u);
    ++seen;
  });
  EXPECT_EQ(seen, map.NumKeys());
  for (int i = 1; i <= kKeys; ++i) {
    const auto* list = map.Find(static_cast<uint64_t>(i));
    if (i % 2 == 1) {
      ASSERT_NE(list, nullptr) << "key " << i;
    } else {
      EXPECT_EQ(list, nullptr) << "key " << i;
    }
  }
}

TEST(EdgeAppearanceMapTest, ErasedListsAreRecycled) {
  EdgeAppearanceMap map;
  std::vector<Appearance>& first = map.GetOrCreate(42);
  first.reserve(64);
  first.push_back(Appearance{});
  first.clear();
  map.Erase(42);
  // The recycled vector keeps its capacity.
  std::vector<Appearance>& second = map.GetOrCreate(99);
  EXPECT_GE(second.capacity(), 64u);
  EXPECT_TRUE(second.empty());
}

// --- NntSet over the new layout --------------------------------------------

void ExpectMatchesRebuild(const NntSet& nnts, const Graph& graph, int depth) {
  ASSERT_TRUE(nnts.Validate(graph));
  DimensionTable fresh_dims;
  NntSet fresh(depth, &fresh_dims);
  fresh.Build(graph);
  ASSERT_EQ(nnts.Roots(), fresh.Roots());
  for (const VertexId root : fresh.Roots()) {
    EXPECT_EQ(nnts.BranchesOf(root), fresh.BranchesOf(root))
        << "root " << root;
  }
  EXPECT_EQ(nnts.TotalTreeNodes(), fresh.TotalTreeNodes());
}

TEST(NntStorageTest, StaleAppearanceAfterDeleteReinsertCycle) {
  // Path 0-1-2; toggling {1,2} frees subtrees and reinserting must reuse
  // slots without resurrecting stale appearances (Validate checks every
  // index entry against the slot generation).
  Graph g;
  g.AddVertex(0);
  g.AddVertex(1);
  g.AddVertex(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 0));
  ASSERT_TRUE(g.AddEdge(1, 2, 0));
  DimensionTable dims;
  NntSet nnts(3, &dims);
  nnts.Build(g);
  const int64_t nodes_before = nnts.TotalTreeNodes();

  for (int cycle = 0; cycle < 3; ++cycle) {
    nnts.DeleteEdge(1, 2);
    ASSERT_TRUE(g.RemoveEdge(1, 2));
    ExpectMatchesRebuild(nnts, g, 3);
    ASSERT_TRUE(g.AddEdge(1, 2, 0));
    nnts.InsertEdge(g, 1, 2);
    ExpectMatchesRebuild(nnts, g, 3);
    EXPECT_EQ(nnts.TotalTreeNodes(), nodes_before);
  }
}

TEST(NntStorageTest, RemoveTreeThenReAddVertex) {
  Graph g;
  g.AddVertex(0);
  g.AddVertex(1);
  g.AddVertex(2);
  ASSERT_TRUE(g.AddEdge(0, 1, 0));
  ASSERT_TRUE(g.AddEdge(1, 2, 1));
  DimensionTable dims;
  NntSet nnts(2, &dims);
  nnts.Build(g);

  // Remove vertex 2 entirely: its incident edge first, then its tree.
  nnts.DeleteEdge(1, 2);
  ASSERT_TRUE(g.RemoveEdge(1, 2));
  nnts.RemoveTree(2);
  ASSERT_TRUE(g.RemoveVertex(2));
  EXPECT_EQ(nnts.TreeOf(2), nullptr);
  ExpectMatchesRebuild(nnts, g, 2);
  EXPECT_EQ(nnts.Roots(), (std::vector<VertexId>{0, 1}));

  // Re-add the same vertex id with a different label and reconnect it; the
  // per-root slots (tree, counts, NPV cache, dirty flag) must restart clean.
  ASSERT_TRUE(g.EnsureVertex(2, /*label=*/3));
  ASSERT_TRUE(g.AddEdge(1, 2, 1));
  nnts.InsertEdge(g, 1, 2);
  ASSERT_NE(nnts.TreeOf(2), nullptr);
  ExpectMatchesRebuild(nnts, g, 2);
  EXPECT_GT(nnts.NpvOf(2).nnz(), 0);
}

TEST(NntStorageTest, DeepChurnValidatesAfterEveryOperation) {
  Rng rng(99);
  Graph g = RandomConnectedGraph(40, 3, 2, rng);
  DimensionTable dims;
  NntSet nnts(3, &dims);
  nnts.Build(g);
  ASSERT_TRUE(nnts.Validate(g));

  struct EdgeRec {
    VertexId u, v;
    EdgeLabel label;
  };
  std::vector<EdgeRec> edges;
  for (const VertexId u : g.VertexIds()) {
    for (const HalfEdge& half : g.Neighbors(u)) {
      if (u < half.to) edges.push_back({u, half.to, half.label});
    }
  }

  DimensionTable fresh_dims;
  NntSet fresh(3, &fresh_dims);
  for (size_t i = 0; i < edges.size(); ++i) {
    const EdgeRec& e = edges[i];
    nnts.DeleteEdge(e.u, e.v);
    ASSERT_TRUE(g.RemoveEdge(e.u, e.v));
    ASSERT_TRUE(nnts.Validate(g)) << "after delete " << i;
    fresh.Build(g);
    ASSERT_EQ(nnts.TotalTreeNodes(), fresh.TotalTreeNodes())
        << "after delete " << i;

    ASSERT_TRUE(g.AddEdge(e.u, e.v, e.label));
    nnts.InsertEdge(g, e.u, e.v);
    ASSERT_TRUE(nnts.Validate(g)) << "after insert " << i;
    fresh.Build(g);
    ASSERT_EQ(nnts.TotalTreeNodes(), fresh.TotalTreeNodes())
        << "after insert " << i;
  }
}

// --- Deterministic dirty-root drains ---------------------------------------

// Replays the same seeded toggle workload and records every drained dirty
// sequence; two runs must produce byte-identical output.
std::vector<std::vector<VertexId>> DirtySequencesOfRun(uint64_t seed) {
  Rng rng(seed);
  Graph g = RandomConnectedGraph(30, 3, 1, rng);
  DimensionTable dims;
  NntSet nnts(3, &dims);
  nnts.Build(g);

  std::vector<std::vector<VertexId>> drains;
  std::vector<VertexId> buffer;
  nnts.TakeDirtyRoots(&buffer);
  drains.push_back(buffer);

  struct EdgeRec {
    VertexId u, v;
    EdgeLabel label;
  };
  std::vector<EdgeRec> edges;
  for (const VertexId u : g.VertexIds()) {
    for (const HalfEdge& half : g.Neighbors(u)) {
      if (u < half.to) edges.push_back({u, half.to, half.label});
    }
  }
  for (const EdgeRec& e : edges) {
    nnts.DeleteEdge(e.u, e.v);
    g.RemoveEdge(e.u, e.v);
    nnts.TakeDirtyRoots(&buffer);
    drains.push_back(buffer);
    g.AddEdge(e.u, e.v, e.label);
    nnts.InsertEdge(g, e.u, e.v);
    nnts.TakeDirtyRoots(&buffer);
    drains.push_back(buffer);
  }
  return drains;
}

TEST(NntStorageTest, DirtyRootDrainsAreSortedAndDeterministic) {
  const std::vector<std::vector<VertexId>> first = DirtySequencesOfRun(7);
  const std::vector<std::vector<VertexId>> second = DirtySequencesOfRun(7);
  EXPECT_EQ(first, second);
  for (const std::vector<VertexId>& drain : first) {
    EXPECT_TRUE(std::is_sorted(drain.begin(), drain.end()));
  }
  // The first drain (post-Build) covers every root.
  EXPECT_FALSE(first.empty());
  EXPECT_FALSE(first[0].empty());
}

TEST(NntStorageTest, TakeDirtyRootsOverloadsAgree) {
  Graph g;
  g.AddVertex(0);
  g.AddVertex(1);
  ASSERT_TRUE(g.AddEdge(0, 1, 0));
  DimensionTable dims;
  NntSet nnts(2, &dims);
  nnts.Build(g);
  EXPECT_EQ(nnts.TakeDirtyRoots(), (std::vector<VertexId>{0, 1}));
  // Drained: both overloads now report empty.
  std::vector<VertexId> out = {123};
  nnts.TakeDirtyRoots(&out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(nnts.TakeDirtyRoots().empty());
}

TEST(NntStorageTest, StorageBytesTracksIndexFootprint) {
  Rng rng(5);
  Graph g = RandomConnectedGraph(25, 3, 1, rng);
  DimensionTable dims;
  NntSet nnts(3, &dims);
  nnts.Build(g);
  const int64_t bytes = nnts.StorageBytes();
  // At minimum the arenas hold every alive node.
  EXPECT_GE(bytes, nnts.TotalTreeNodes() *
                       static_cast<int64_t>(sizeof(TreeNode)));
}

}  // namespace
}  // namespace gsps
