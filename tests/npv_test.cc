// Tests for the NPV dominance kernel: signatures, the dense dim remap, the
// contiguous slab, and the raw-range dominance merge.
//
// Key properties:
//   * SignatureCovers(sig(a), sig(b)) is a necessary condition for
//     a.Dominates(b) — no dominating pair is ever signature-rejected;
//   * NpvDimRemap::Translate preserves dominance outcomes against query
//     vectors even though it drops stream-only dimensions;
//   * translated signatures are exact (bit i == dense dim i non-zero) when
//     the query dim set fits in 64 dims.

#include "gsps/nnt/npv.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "gsps/common/random.h"

namespace gsps {
namespace {

// Naive reference dominance: every coordinate of `needle` must be <= the
// matching coordinate of `hay`.
bool NaiveDominates(const Npv& hay, const Npv& needle) {
  for (const NpvEntry& e : needle.entries()) {
    if (hay.ValueAt(e.dim) < e.count) return false;
  }
  return true;
}

Npv RandomNpv(Rng& rng, int max_dim, int max_nnz, int max_count) {
  std::unordered_map<DimId, int32_t> counts;
  const int nnz = static_cast<int>(rng.UniformInt(0, max_nnz));
  for (int k = 0; k < nnz; ++k) {
    counts[static_cast<DimId>(rng.UniformInt(0, max_dim))] =
        static_cast<int32_t>(rng.UniformInt(1, max_count));
  }
  return Npv::FromMap(counts);
}

TEST(NpvSignatureTest, BitPerDimModulo64) {
  EXPECT_EQ(NpvSignatureBit(0), NpvSignature{1});
  EXPECT_EQ(NpvSignatureBit(63), NpvSignature{1} << 63);
  // Dims wrap modulo 64, so distant dims share bits (conservative, still a
  // necessary condition).
  EXPECT_EQ(NpvSignatureBit(64), NpvSignatureBit(0));
  EXPECT_EQ(NpvSignatureBit(130), NpvSignatureBit(2));
}

TEST(NpvSignatureTest, CoversIsSupersetTest) {
  EXPECT_TRUE(SignatureCovers(0b111, 0b101));
  EXPECT_TRUE(SignatureCovers(0b101, 0b101));
  EXPECT_FALSE(SignatureCovers(0b101, 0b111));
  // Anything covers the empty signature; the empty covers only itself.
  EXPECT_TRUE(SignatureCovers(0, 0));
  EXPECT_TRUE(SignatureCovers(0b1, 0));
  EXPECT_FALSE(SignatureCovers(0, 0b1));
}

TEST(NpvSignatureTest, MaintainedByConstructors) {
  const Npv a = Npv::FromMap({{3, 1}, {70, 2}});
  EXPECT_EQ(a.signature(), NpvSignatureBit(3) | NpvSignatureBit(70));

  const Npv b = Npv::FromSortedEntries({{1, 5}, {64, 1}});
  EXPECT_EQ(b.signature(), NpvSignatureBit(1) | NpvSignatureBit(64));

  Npv c;
  EXPECT_EQ(c.signature(), NpvSignature{0});
  c.AssignSortedEntries({{2, 1}});
  EXPECT_EQ(c.signature(), NpvSignatureBit(2));
  c.AssignSortedEntries({});
  EXPECT_EQ(c.signature(), NpvSignature{0});
}

TEST(NpvSignatureTest, SignatureOfRange) {
  const std::vector<NpvEntry> entries = {{0, 1}, {5, 2}, {66, 3}};
  EXPECT_EQ(SignatureOf(entries.data(), entries.data() + entries.size()),
            NpvSignatureBit(0) | NpvSignatureBit(5) | NpvSignatureBit(66));
  EXPECT_EQ(SignatureOf(entries.data(), entries.data()), NpvSignature{0});
}

TEST(NpvDominatesTest, RangeKernelMatchesNaive) {
  Rng rng(20260807);
  for (int trial = 0; trial < 2000; ++trial) {
    const Npv hay = RandomNpv(rng, 12, 5, 4);
    const Npv needle = RandomNpv(rng, 12, 5, 4);
    const bool expected = NaiveDominates(hay, needle);
    EXPECT_EQ(hay.Dominates(needle), expected);
    EXPECT_EQ(DominatesRange(hay.entries().data(),
                             hay.entries().data() + hay.entries().size(),
                             needle.entries().data(),
                             needle.entries().data() + needle.entries().size()),
              expected);
    // The fast path must never reject a dominating pair.
    if (expected) {
      EXPECT_TRUE(SignatureCovers(hay.signature(), needle.signature()));
    }
  }
}

TEST(NpvDimRemapTest, DenseIdsAreAscendingAndExact) {
  NpvDimRemap remap;
  remap.AddDims(Npv::FromMap({{7, 1}, {100, 2}}));
  remap.AddDims(Npv::FromMap({{3, 4}, {7, 1}}));
  EXPECT_FALSE(remap.sealed());
  remap.Seal();
  ASSERT_TRUE(remap.sealed());
  EXPECT_EQ(remap.num_dims(), 3);  // {3, 7, 100} -> {0, 1, 2}.

  std::vector<NpvEntry> out;
  // A vector over all three dims, plus a stream-only dim that is dropped.
  const NpvSignature sig =
      remap.Translate(Npv::FromMap({{3, 9}, {7, 8}, {42, 5}, {100, 7}}), &out);
  const std::vector<NpvEntry> expected = {{0, 9}, {1, 8}, {2, 7}};
  EXPECT_EQ(out, expected);
  EXPECT_EQ(sig,
            NpvSignatureBit(0) | NpvSignatureBit(1) | NpvSignatureBit(2));

  // A vector touching none of the query dims translates to nothing.
  EXPECT_EQ(remap.Translate(Npv::FromMap({{42, 5}}), &out), NpvSignature{0});
  EXPECT_TRUE(out.empty());
}

TEST(NpvDimRemapTest, TranslationPreservesDominanceAgainstQueryVectors) {
  // Dominance of a stream vector over a *query* vector only inspects the
  // query's non-zero dims, so dropping stream-only dims must not change the
  // verdict. Randomized cross-check.
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<Npv> query_vectors;
    NpvDimRemap remap;
    const int nq = static_cast<int>(rng.UniformInt(1, 4));
    for (int i = 0; i < nq; ++i) {
      query_vectors.push_back(RandomNpv(rng, 20, 4, 3));
      remap.AddDims(query_vectors.back());
    }
    remap.Seal();

    std::vector<NpvEntry> translated_query;
    std::vector<NpvEntry> translated_stream;
    const Npv stream_vector = RandomNpv(rng, 25, 6, 4);
    const NpvSignature stream_sig =
        remap.Translate(stream_vector, &translated_stream);
    for (const Npv& q : query_vectors) {
      const NpvSignature query_sig = remap.Translate(q, &translated_query);
      const bool expected = NaiveDominates(stream_vector, q);
      // The signature reject composed with the range merge — exactly the
      // strategies' hot-path sequence — must reproduce full dominance.
      const bool fast =
          SignatureCovers(stream_sig, query_sig) &&
          DominatesRange(
              translated_stream.data(),
              translated_stream.data() + translated_stream.size(),
              translated_query.data(),
              translated_query.data() + translated_query.size());
      EXPECT_EQ(fast, expected) << "trial " << trial;
    }
  }
}

TEST(NpvSlabTest, StoresVectorsContiguouslyWithSignatures) {
  NpvSlab slab;
  EXPECT_EQ(slab.size(), 0);
  const std::vector<NpvEntry> v0 = {{0, 1}, {2, 3}};
  const std::vector<NpvEntry> v1 = {};
  const std::vector<NpvEntry> v2 = {{1, 7}};
  EXPECT_EQ(slab.Append(v0), 0);
  EXPECT_EQ(slab.Append(v1), 1);
  EXPECT_EQ(slab.Append(v2), 2);
  ASSERT_EQ(slab.size(), 3);

  EXPECT_EQ(slab.nnz(0), 2);
  EXPECT_EQ(slab.nnz(1), 0);
  EXPECT_EQ(slab.nnz(2), 1);
  EXPECT_EQ(std::vector<NpvEntry>(slab.begin(0), slab.end(0)), v0);
  EXPECT_EQ(slab.begin(1), slab.end(1));
  EXPECT_EQ(std::vector<NpvEntry>(slab.begin(2), slab.end(2)), v2);
  EXPECT_EQ(slab.signature(0), NpvSignatureBit(0) | NpvSignatureBit(2));
  EXPECT_EQ(slab.signature(1), NpvSignature{0});
  EXPECT_EQ(slab.signature(2), NpvSignatureBit(1));
}

}  // namespace
}  // namespace gsps
