// Tests for the NPV dominance kernel: signatures, the dense dim remap, the
// contiguous slab, and the raw-range dominance merge.
//
// Key properties:
//   * SignatureCovers(sig(a), sig(b)) is a necessary condition for
//     a.Dominates(b) — no dominating pair is ever signature-rejected;
//   * NpvDimRemap::Translate preserves dominance outcomes against query
//     vectors even though it drops stream-only dimensions;
//   * translated signatures are exact (bit i == dense dim i non-zero) when
//     the query dim set fits in 64 dims.

#include "gsps/nnt/npv.h"

#include <gtest/gtest.h>

#include <iterator>
#include <unordered_map>
#include <vector>

#include "gsps/common/random.h"

namespace gsps {
namespace {

// Naive reference dominance: every coordinate of `needle` must be <= the
// matching coordinate of `hay`.
bool NaiveDominates(const Npv& hay, const Npv& needle) {
  for (const NpvEntry& e : needle.entries()) {
    if (hay.ValueAt(e.dim) < e.count) return false;
  }
  return true;
}

Npv RandomNpv(Rng& rng, int max_dim, int max_nnz, int max_count) {
  std::unordered_map<DimId, int32_t> counts;
  const int nnz = static_cast<int>(rng.UniformInt(0, max_nnz));
  for (int k = 0; k < nnz; ++k) {
    counts[static_cast<DimId>(rng.UniformInt(0, max_dim))] =
        static_cast<int32_t>(rng.UniformInt(1, max_count));
  }
  return Npv::FromMap(counts);
}

TEST(NpvSignatureTest, BitPerDimModulo64) {
  EXPECT_EQ(NpvSignatureBit(0), NpvSignature{1});
  EXPECT_EQ(NpvSignatureBit(63), NpvSignature{1} << 63);
  // Dims wrap modulo 64, so distant dims share bits (conservative, still a
  // necessary condition).
  EXPECT_EQ(NpvSignatureBit(64), NpvSignatureBit(0));
  EXPECT_EQ(NpvSignatureBit(130), NpvSignatureBit(2));
}

TEST(NpvSignatureTest, CoversIsSupersetTest) {
  EXPECT_TRUE(SignatureCovers(0b111, 0b101));
  EXPECT_TRUE(SignatureCovers(0b101, 0b101));
  EXPECT_FALSE(SignatureCovers(0b101, 0b111));
  // Anything covers the empty signature; the empty covers only itself.
  EXPECT_TRUE(SignatureCovers(0, 0));
  EXPECT_TRUE(SignatureCovers(0b1, 0));
  EXPECT_FALSE(SignatureCovers(0, 0b1));
}

TEST(NpvSignatureTest, MaintainedByConstructors) {
  const Npv a = Npv::FromMap({{3, 1}, {70, 2}});
  EXPECT_EQ(a.signature(), NpvSignatureBit(3) | NpvSignatureBit(70));

  const Npv b = Npv::FromSortedEntries({{1, 5}, {64, 1}});
  EXPECT_EQ(b.signature(), NpvSignatureBit(1) | NpvSignatureBit(64));

  Npv c;
  EXPECT_EQ(c.signature(), NpvSignature{0});
  c.AssignSortedEntries({{2, 1}});
  EXPECT_EQ(c.signature(), NpvSignatureBit(2));
  c.AssignSortedEntries({});
  EXPECT_EQ(c.signature(), NpvSignature{0});
}

TEST(NpvSignatureTest, SignatureOfRange) {
  const std::vector<NpvEntry> entries = {{0, 1}, {5, 2}, {66, 3}};
  EXPECT_EQ(SignatureOf(entries.data(), entries.data() + entries.size()),
            NpvSignatureBit(0) | NpvSignatureBit(5) | NpvSignatureBit(66));
  EXPECT_EQ(SignatureOf(entries.data(), entries.data()), NpvSignature{0});
}

TEST(NpvDominatesTest, RangeKernelMatchesNaive) {
  Rng rng(20260807);
  for (int trial = 0; trial < 2000; ++trial) {
    const Npv hay = RandomNpv(rng, 12, 5, 4);
    const Npv needle = RandomNpv(rng, 12, 5, 4);
    const bool expected = NaiveDominates(hay, needle);
    EXPECT_EQ(hay.Dominates(needle), expected);
    EXPECT_EQ(DominatesRange(hay.entries().data(),
                             hay.entries().data() + hay.entries().size(),
                             needle.entries().data(),
                             needle.entries().data() + needle.entries().size()),
              expected);
    // The fast path must never reject a dominating pair.
    if (expected) {
      EXPECT_TRUE(SignatureCovers(hay.signature(), needle.signature()));
    }
  }
}

TEST(NpvDimRemapTest, DenseIdsAreAscendingAndExact) {
  NpvDimRemap remap;
  remap.AddDims(Npv::FromMap({{7, 1}, {100, 2}}));
  remap.AddDims(Npv::FromMap({{3, 4}, {7, 1}}));
  EXPECT_FALSE(remap.sealed());
  remap.Seal();
  ASSERT_TRUE(remap.sealed());
  EXPECT_EQ(remap.num_dims(), 3);  // {3, 7, 100} -> {0, 1, 2}.

  std::vector<NpvEntry> out;
  // A vector over all three dims, plus a stream-only dim that is dropped.
  const NpvSignature sig =
      remap.Translate(Npv::FromMap({{3, 9}, {7, 8}, {42, 5}, {100, 7}}), &out);
  const std::vector<NpvEntry> expected = {{0, 9}, {1, 8}, {2, 7}};
  EXPECT_EQ(out, expected);
  EXPECT_EQ(sig,
            NpvSignatureBit(0) | NpvSignatureBit(1) | NpvSignatureBit(2));

  // A vector touching none of the query dims translates to nothing.
  EXPECT_EQ(remap.Translate(Npv::FromMap({{42, 5}}), &out), NpvSignature{0});
  EXPECT_TRUE(out.empty());
}

TEST(NpvDimRemapTest, TranslationPreservesDominanceAgainstQueryVectors) {
  // Dominance of a stream vector over a *query* vector only inspects the
  // query's non-zero dims, so dropping stream-only dims must not change the
  // verdict. Randomized cross-check.
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<Npv> query_vectors;
    NpvDimRemap remap;
    const int nq = static_cast<int>(rng.UniformInt(1, 4));
    for (int i = 0; i < nq; ++i) {
      query_vectors.push_back(RandomNpv(rng, 20, 4, 3));
      remap.AddDims(query_vectors.back());
    }
    remap.Seal();

    std::vector<NpvEntry> translated_query;
    std::vector<NpvEntry> translated_stream;
    const Npv stream_vector = RandomNpv(rng, 25, 6, 4);
    const NpvSignature stream_sig =
        remap.Translate(stream_vector, &translated_stream);
    for (const Npv& q : query_vectors) {
      const NpvSignature query_sig = remap.Translate(q, &translated_query);
      const bool expected = NaiveDominates(stream_vector, q);
      // The signature reject composed with the range merge — exactly the
      // strategies' hot-path sequence — must reproduce full dominance.
      const bool fast =
          SignatureCovers(stream_sig, query_sig) &&
          DominatesRange(
              translated_stream.data(),
              translated_stream.data() + translated_stream.size(),
              translated_query.data(),
              translated_query.data() + translated_query.size());
      EXPECT_EQ(fast, expected) << "trial " << trial;
    }
  }
}

TEST(NpvDimRemapTest, GrowDimsExtendsTheDimSetAfterSeal) {
  NpvDimRemap remap;
  remap.AddDims(Npv::FromMap({{3, 1}, {7, 1}, {100, 1}}));
  remap.Seal();
  ASSERT_EQ(remap.num_dims(), 3);  // {3, 7, 100}.

  // Dim 50 is new; 7 is already mapped.
  std::vector<DimId> old_to_new;
  ASSERT_TRUE(remap.GrowDims(Npv::FromMap({{7, 2}, {50, 1}}), &old_to_new));
  EXPECT_EQ(remap.num_dims(), 4);  // {3, 7, 50, 100}.
  const std::vector<DimId> expected_map = {0, 1, 3};
  EXPECT_EQ(old_to_new, expected_map);

  // A vector over only known dims does not grow and leaves the map alone.
  old_to_new = {42};
  EXPECT_FALSE(remap.GrowDims(Npv::FromMap({{3, 5}, {50, 5}}), &old_to_new));
  EXPECT_EQ(remap.num_dims(), 4);
  EXPECT_EQ(old_to_new, std::vector<DimId>{42});
  EXPECT_FALSE(remap.GrowDims(Npv{}, &old_to_new));
}

TEST(NpvDimRemapTest, GrowDimsMapIsStrictlyIncreasing) {
  Rng rng(20260808);
  for (int trial = 0; trial < 300; ++trial) {
    NpvDimRemap remap;
    const Npv base = RandomNpv(rng, 30, 6, 3);
    remap.AddDims(base);
    remap.Seal();
    const int32_t before = remap.num_dims();
    std::vector<DimId> old_to_new;
    if (!remap.GrowDims(RandomNpv(rng, 40, 6, 3), &old_to_new)) continue;
    ASSERT_EQ(static_cast<int32_t>(old_to_new.size()), before);
    for (size_t k = 0; k < old_to_new.size(); ++k) {
      if (k > 0) {
        EXPECT_GT(old_to_new[k], old_to_new[k - 1]);
      }
      EXPECT_GE(old_to_new[k], static_cast<DimId>(k));
      EXPECT_LT(old_to_new[k], remap.num_dims());
    }
  }
}

TEST(NpvDimRemapTest, GrowthMatchesARemapBuiltFromScratch) {
  // After any sequence of growths, Translate must agree with a fresh remap
  // that saw every vector up front — growth only renumbers, never changes
  // which dims map or their relative order.
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Npv> all;
    all.push_back(RandomNpv(rng, 25, 5, 3));
    NpvDimRemap grown;
    grown.AddDims(all.back());
    grown.Seal();
    std::vector<DimId> old_to_new;
    const int extra = static_cast<int>(rng.UniformInt(1, 4));
    for (int k = 0; k < extra; ++k) {
      all.push_back(RandomNpv(rng, 25, 5, 3));
      grown.GrowDims(all.back(), &old_to_new);
    }
    NpvDimRemap fresh;
    for (const Npv& v : all) fresh.AddDims(v);
    fresh.Seal();
    ASSERT_EQ(grown.num_dims(), fresh.num_dims());

    std::vector<NpvEntry> got;
    std::vector<NpvEntry> want;
    const Npv probe = RandomNpv(rng, 30, 8, 4);
    const NpvSignature got_sig = grown.Translate(probe, &got);
    const NpvSignature want_sig = fresh.Translate(probe, &want);
    EXPECT_EQ(got, want) << "trial " << trial;
    EXPECT_EQ(got_sig, want_sig) << "trial " << trial;
  }
}

TEST(NpvDimRemapTest, OldTranslationsStayValidUnderTheGrowthMap) {
  // The contract that lets strategies rewrite already-translated entries in
  // place: dense id d before growth refers to the same source dim as
  // old_to_new[d] after.
  NpvDimRemap remap;
  const Npv q0 = Npv::FromMap({{2, 4}, {9, 1}, {17, 6}});
  remap.AddDims(q0);
  remap.Seal();
  std::vector<NpvEntry> before;
  remap.Translate(q0, &before);

  std::vector<DimId> old_to_new;
  ASSERT_TRUE(remap.GrowDims(Npv::FromMap({{1, 1}, {12, 1}}), &old_to_new));

  std::vector<NpvEntry> after;
  remap.Translate(q0, &after);
  ASSERT_EQ(before.size(), after.size());
  for (size_t k = 0; k < before.size(); ++k) {
    EXPECT_EQ(old_to_new[static_cast<size_t>(before[k].dim)], after[k].dim);
    EXPECT_EQ(before[k].count, after[k].count);
  }
}

TEST(NpvSlabTest, StoresVectorsContiguouslyWithSignatures) {
  NpvSlab slab;
  EXPECT_EQ(slab.size(), 0);
  const std::vector<NpvEntry> v0 = {{0, 1}, {2, 3}};
  const std::vector<NpvEntry> v1 = {};
  const std::vector<NpvEntry> v2 = {{1, 7}};
  EXPECT_EQ(slab.Append(v0), 0);
  EXPECT_EQ(slab.Append(v1), 1);
  EXPECT_EQ(slab.Append(v2), 2);
  ASSERT_EQ(slab.size(), 3);

  EXPECT_EQ(slab.nnz(0), 2);
  EXPECT_EQ(slab.nnz(1), 0);
  EXPECT_EQ(slab.nnz(2), 1);
  EXPECT_EQ(std::vector<NpvEntry>(slab.begin(0), slab.end(0)), v0);
  EXPECT_EQ(slab.begin(1), slab.end(1));
  EXPECT_EQ(std::vector<NpvEntry>(slab.begin(2), slab.end(2)), v2);
  EXPECT_EQ(slab.signature(0), NpvSignatureBit(0) | NpvSignatureBit(2));
  EXPECT_EQ(slab.signature(1), NpvSignature{0});
  EXPECT_EQ(slab.signature(2), NpvSignatureBit(1));
}

TEST(NpvSlabTest, RemoveFreesTheSlotAndAppendReusesIt) {
  NpvSlab slab;
  const std::vector<NpvEntry> v0 = {{0, 1}, {2, 3}};
  const std::vector<NpvEntry> v1 = {{1, 7}, {3, 2}};
  const std::vector<NpvEntry> v2 = {{4, 5}};
  slab.Append(v0);
  slab.Append(v1);
  slab.Append(v2);
  slab.CheckKernelLayout();
  ASSERT_EQ(slab.num_live(), 3);
  const uint32_t gen_before = slab.generation(1);

  slab.Remove(1);
  slab.CheckKernelLayout();
  EXPECT_EQ(slab.size(), 3);  // Slot indices stay valid.
  EXPECT_EQ(slab.num_live(), 2);
  EXPECT_FALSE(slab.live(1));
  EXPECT_EQ(slab.nnz(1), 0);
  // Freed slot: all-ones signature sentinel, live bit cleared, generation
  // bumped; its neighbours are untouched.
  EXPECT_EQ(slab.signature(1), ~NpvSignature{0});
  EXPECT_EQ(slab.live_words()[0] & 0b111u, 0b101u);
  EXPECT_EQ(slab.generation(1), gen_before + 1);
  EXPECT_EQ(std::vector<NpvEntry>(slab.begin(0), slab.end(0)), v0);
  EXPECT_EQ(std::vector<NpvEntry>(slab.begin(2), slab.end(2)), v2);

  // A vector that fits the freed capacity reuses the slot in place.
  const std::vector<NpvEntry> v3 = {{5, 9}};
  EXPECT_EQ(slab.Append(v3), 1);
  slab.CheckKernelLayout();
  EXPECT_EQ(slab.size(), 3);
  EXPECT_EQ(slab.num_live(), 3);
  EXPECT_TRUE(slab.live(1));
  EXPECT_EQ(std::vector<NpvEntry>(slab.begin(1), slab.end(1)), v3);
  EXPECT_EQ(slab.signature(1), NpvSignatureBit(5));
}

TEST(NpvSlabTest, AppendTooWideForAnyFreeSlotGrowsTheTail) {
  NpvSlab slab;
  slab.Append({{0, 1}, {1, 1}});  // Capacity 2.
  slab.Append({{2, 1}});
  slab.Remove(0);
  // Three entries cannot live in the freed two-entry region.
  const std::vector<NpvEntry> wide = {{0, 1}, {1, 1}, {2, 1}};
  EXPECT_EQ(slab.Append(wide), 2);
  slab.CheckKernelLayout();
  EXPECT_EQ(slab.size(), 3);
  EXPECT_FALSE(slab.live(0));  // Slot 0 is still free for a narrow vector.
  EXPECT_EQ(std::vector<NpvEntry>(slab.begin(2), slab.end(2)), wide);
  EXPECT_EQ(slab.Append({{7, 2}}), 0);
  slab.CheckKernelLayout();
}

TEST(NpvSlabTest, RemapDimsRewritesLiveSlotsOnly) {
  NpvSlab slab;
  slab.Append({{0, 4}, {2, 1}});
  slab.Append({{1, 6}});
  slab.Remove(1);
  // Growth inserted a dim between old dense ids 1 and 2: {0->0, 1->1, 2->3}.
  const std::vector<DimId> old_to_new = {0, 1, 3};
  slab.RemapDims(old_to_new);
  slab.CheckKernelLayout();
  const std::vector<NpvEntry> expected = {{0, 4}, {3, 1}};
  EXPECT_EQ(std::vector<NpvEntry>(slab.begin(0), slab.end(0)), expected);
  EXPECT_EQ(slab.signature(0), NpvSignatureBit(0) | NpvSignatureBit(3));
  EXPECT_EQ(slab.signature(1), ~NpvSignature{0});  // Freed sentinel intact.
}

TEST(NpvSlabTest, ClearKeepsNothingButPassesLayout) {
  NpvSlab slab;
  slab.Append({{0, 1}});
  slab.Append({{1, 2}});
  slab.Remove(0);
  slab.Clear();
  slab.CheckKernelLayout();
  EXPECT_EQ(slab.size(), 0);
  EXPECT_EQ(slab.num_live(), 0);
  EXPECT_EQ(slab.Append({{2, 3}}), 0);
  slab.CheckKernelLayout();
}

TEST(NpvSlabTest, RandomChurnAgainstAShadowModel) {
  // Interleaved append/remove churn cross-checked against a plain map of
  // what should be live, with the kernel-layout contract asserted after
  // every operation.
  Rng rng(20260809);
  NpvSlab slab;
  std::unordered_map<int32_t, std::vector<NpvEntry>> shadow;
  for (int op = 0; op < 800; ++op) {
    slab.CheckKernelLayout();
    const bool remove = !shadow.empty() && rng.UniformInt(0, 2) == 0;
    if (remove) {
      auto it = shadow.begin();
      std::advance(it, static_cast<long>(rng.UniformInt(
                           0, static_cast<int>(shadow.size()) - 1)));
      slab.Remove(it->first);
      shadow.erase(it);
    } else {
      const Npv v = RandomNpv(rng, 12, 6, 5);
      const int32_t slot = slab.Append(v.entries());
      ASSERT_TRUE(shadow.emplace(slot, v.entries()).second);
    }
    ASSERT_EQ(slab.num_live(), static_cast<int32_t>(shadow.size()));
    for (const auto& [slot, entries] : shadow) {
      ASSERT_TRUE(slab.live(slot));
      ASSERT_EQ(std::vector<NpvEntry>(slab.begin(slot), slab.end(slot)),
                entries);
      ASSERT_EQ(slab.signature(slot),
                SignatureOf(entries.data(), entries.data() + entries.size()));
    }
  }
  slab.CheckKernelLayout();
}

}  // namespace
}  // namespace gsps
