// Runs every committed replay in tests/corpus/ through the full oracle
// set. The corpus holds scenarios the fuzzer generated (and, whenever a
// real failure is found and fixed, its minimized replay): each file must
// parse, pass every oracle, and be a serialization fixed point.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gsps/fuzz/oracles.h"
#include "gsps/fuzz/replay.h"

namespace gsps {
namespace {

std::vector<std::filesystem::path> CorpusFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(GSPS_CORPUS_DIR)) {
    if (entry.path().extension() == ".replay") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadFileOrDie(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(FuzzReplayTest, CorpusIsNonEmpty) {
  EXPECT_GE(CorpusFiles().size(), 2u)
      << "tests/corpus/ must ship at least two .replay files";
}

TEST(FuzzReplayTest, EveryReplayParsesAndPassesAllOracles) {
  for (const std::filesystem::path& path : CorpusFiles()) {
    SCOPED_TRACE(path.filename().string());
    IoError error;
    const std::optional<FuzzCase> c = ParseReplay(ReadFileOrDie(path), &error);
    ASSERT_TRUE(c.has_value()) << error.ToString();
    const std::optional<std::string> failure = RunOracles(*c);
    EXPECT_EQ(failure, std::nullopt);
  }
}

TEST(FuzzReplayTest, FormatIsAFixedPoint) {
  for (const std::filesystem::path& path : CorpusFiles()) {
    SCOPED_TRACE(path.filename().string());
    const std::optional<FuzzCase> c = ParseReplay(ReadFileOrDie(path));
    ASSERT_TRUE(c.has_value());
    const std::string once = FormatReplay(*c);
    const std::optional<FuzzCase> again = ParseReplay(once);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(FormatReplay(*again), once);
    EXPECT_EQ(again->nnt_depth, c->nnt_depth);
  }
}

}  // namespace
}  // namespace gsps
