// Differential query-churn battery: the slotted AddQueryDynamic /
// RemoveQueryDynamic lifecycle must be observationally equivalent to a
// freshly built engine over the surviving query set — per strategy, per
// engine (sequential and sharded), at every timestamp, including
// bit-identical re-adds into reused slots and a query that introduces new
// dense dimensions mid-run. The churn-oracle in the fuzzer (oracle 6)
// extends this with randomized schedules; this file pins the deterministic
// corners.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "gsps/common/random.h"
#include "gsps/engine/continuous_query_engine.h"
#include "gsps/engine/parallel_query_engine.h"
#include "gsps/gen/query_extractor.h"
#include "gsps/gen/stream_generator.h"
#include "gsps/graph/graph.h"
#include "gsps/graph/graph_change.h"
#include "gsps/join/join_strategy.h"

namespace gsps {
namespace {

constexpr JoinKind kAllKinds[] = {
    JoinKind::kNestedLoop,
    JoinKind::kDominatedSetCover,
    JoinKind::kSkylineEarlyStop,
};

struct ChurnData {
  StreamDataset dataset;
  std::vector<Graph> queries;
  int horizon = 0;
};

ChurnData MakeChurnData(uint64_t seed) {
  ChurnData data;
  SyntheticStreamParams params;
  params.num_pairs = 3;
  params.avg_graph_edges = 10;
  params.evolution.num_timestamps = 12;
  params.seed = seed;
  data.dataset = MakeSyntheticStreams(params);
  data.horizon = params.evolution.num_timestamps;
  std::vector<Graph> starts;
  for (const GraphStream& s : data.dataset.streams) {
    starts.push_back(s.StartGraph());
  }
  Rng rng(seed + 1);
  data.queries = ExtractQuerySet(starts, 4, 4, rng);
  return data;
}

// A query over labels the synthetic generator never emits: registering it
// dynamically is guaranteed to grow the strategies' dense dim space.
Graph FreshLabelQuery() {
  Graph g;
  g.EnsureVertex(0, 91);
  g.EnsureVertex(1, 92);
  g.EnsureVertex(2, 93);
  g.AddEdge(0, 1, 94);
  g.AddEdge(1, 2, 95);
  return g;
}

// Referee: a brand-new sequential engine that knew exactly the surviving
// queries from the start, replayed to timestamp `t`. Returns per-stream
// candidate lists in engine-id space (`active` indexed by engine id;
// nullopt marks a retired slot).
std::vector<std::vector<int>> FreshEngineCandidates(
    const EngineOptions& options, const ChurnData& data,
    const std::vector<std::optional<Graph>>& active, int t) {
  ContinuousQueryEngine fresh(options);
  std::vector<int> fresh_to_engine;
  for (size_t id = 0; id < active.size(); ++id) {
    if (!active[id].has_value()) continue;
    fresh.AddQuery(*active[id]);
    fresh_to_engine.push_back(static_cast<int>(id));
  }
  for (const GraphStream& s : data.dataset.streams) {
    fresh.AddStream(s.StartGraph());
  }
  fresh.Start();
  for (int step = 1; step <= t; ++step) {
    for (size_t i = 0; i < data.dataset.streams.size(); ++i) {
      fresh.ApplyChange(static_cast<int>(i),
                        data.dataset.streams[i].ChangeAt(step));
    }
  }
  std::vector<std::vector<int>> per_stream(data.dataset.streams.size());
  for (int i = 0; i < fresh.num_streams(); ++i) {
    for (const int local : fresh.CandidatesForStream(i)) {
      per_stream[static_cast<size_t>(i)].push_back(
          fresh_to_engine[static_cast<size_t>(local)]);
    }
  }
  return per_stream;
}

class ChurnDifferentialTest : public ::testing::TestWithParam<JoinKind> {};

TEST_P(ChurnDifferentialTest, ChurnedEnginesMatchFreshBuildsAtEveryTimestamp) {
  const ChurnData data = MakeChurnData(2026);
  ASSERT_GE(data.queries.size(), 3u);

  EngineOptions options;
  options.join_kind = GetParam();
  ContinuousQueryEngine seq(options);
  ParallelEngineOptions popt;
  popt.engine = options;
  popt.num_threads = 2;
  ParallelQueryEngine par(popt);

  // active[engine_id] — the graph occupying that slot, nullopt if retired.
  std::vector<std::optional<Graph>> active;
  for (int j = 0; j < 2; ++j) {
    seq.AddQuery(data.queries[static_cast<size_t>(j)]);
    par.AddQuery(data.queries[static_cast<size_t>(j)]);
    active.emplace_back(data.queries[static_cast<size_t>(j)]);
  }
  for (const GraphStream& s : data.dataset.streams) {
    seq.AddStream(s.StartGraph());
    par.AddStream(s.StartGraph());
  }
  seq.Start();
  par.Start();

  // Both engines churn in lock-step and must agree on slot assignment.
  auto add = [&](const Graph& g) {
    const int id = seq.AddQueryDynamic(g);
    EXPECT_EQ(par.AddQueryDynamic(g), id);
    if (static_cast<size_t>(id) == active.size()) {
      active.emplace_back(g);
    } else {
      active[static_cast<size_t>(id)] = g;
    }
    return id;
  };
  auto remove = [&](int id) {
    seq.RemoveQueryDynamic(id);
    par.RemoveQueryDynamic(id);
    active[static_cast<size_t>(id)].reset();
  };

  std::vector<GraphChange> batches(data.dataset.streams.size());
  for (int t = 1; t < data.horizon; ++t) {
    for (size_t i = 0; i < data.dataset.streams.size(); ++i) {
      batches[i] = data.dataset.streams[i].ChangeAt(t);
      seq.ApplyChange(static_cast<int>(i), batches[i]);
    }
    par.ApplyChanges(batches);

    // The churn schedule: grow, retire, bit-identical re-add into the
    // reused slot, a new-dimension query mid-run, then churn on slot 0.
    switch (t) {
      case 3:
        add(data.queries[2]);
        break;
      case 5:
        remove(1);
        break;
      case 7:
        EXPECT_EQ(add(data.queries[1]), 1);  // Reuses the retired slot.
        break;
      case 8:
        add(FreshLabelQuery());  // Forces a dim-remap regrowth.
        break;
      case 10:
        remove(0);
        break;
      case 11:
        EXPECT_EQ(add(data.queries[0]), 0);
        break;
      default:
        break;
    }

    seq.CheckChurnInvariants();
    par.CheckChurnInvariants();
    const std::vector<std::vector<int>> expected =
        FreshEngineCandidates(options, data, active, t);
    for (int i = 0; i < seq.num_streams(); ++i) {
      EXPECT_EQ(seq.CandidatesForStream(i), expected[static_cast<size_t>(i)])
          << "sequential, t=" << t << " stream=" << i;
      EXPECT_EQ(par.CandidatesForStream(i), expected[static_cast<size_t>(i)])
          << "parallel, t=" << t << " stream=" << i;
      EXPECT_EQ(seq.RecomputeCandidatesFromScratch(i),
                expected[static_cast<size_t>(i)])
          << "scratch referee, t=" << t << " stream=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, ChurnDifferentialTest,
                         ::testing::ValuesIn(kAllKinds),
                         [](const ::testing::TestParamInfo<JoinKind>& info) {
                           return std::string(JoinKindName(info.param));
                         });

TEST(ChurnSlotReuseTest, IdenticalReaddRestoresTheExactCandidates) {
  const ChurnData data = MakeChurnData(7);
  ASSERT_GE(data.queries.size(), 3u);
  for (const JoinKind kind : kAllKinds) {
    EngineOptions options;
    options.join_kind = kind;
    ContinuousQueryEngine engine(options);
    for (const Graph& q : data.queries) engine.AddQuery(q);
    for (const GraphStream& s : data.dataset.streams) {
      engine.AddStream(s.StartGraph());
    }
    engine.Start();
    for (int t = 1; t < 6; ++t) {
      for (size_t i = 0; i < data.dataset.streams.size(); ++i) {
        engine.ApplyChange(static_cast<int>(i),
                           data.dataset.streams[i].ChangeAt(t));
      }
    }
    std::vector<std::vector<int>> before(
        static_cast<size_t>(engine.num_streams()));
    for (int i = 0; i < engine.num_streams(); ++i) {
      before[static_cast<size_t>(i)] = engine.CandidatesForStream(i);
    }

    engine.RemoveQueryDynamic(1);
    ASSERT_TRUE(engine.IsQueryRetired(1));
    ASSERT_EQ(engine.num_active_queries(),
              static_cast<int>(data.queries.size()) - 1);
    ASSERT_EQ(engine.AddQueryDynamic(data.queries[1]), 1);
    ASSERT_FALSE(engine.IsQueryRetired(1));
    engine.CheckChurnInvariants();

    for (int i = 0; i < engine.num_streams(); ++i) {
      EXPECT_EQ(engine.CandidatesForStream(i), before[static_cast<size_t>(i)])
          << JoinKindName(kind) << " stream=" << i;
    }
  }
}

TEST(ChurnGuardTest, SequentialRemoveRejectsBadIds) {
  const ChurnData data = MakeChurnData(11);
  ContinuousQueryEngine engine(EngineOptions{});
  engine.AddQuery(data.queries[0]);
  engine.AddStream(data.dataset.streams[0].StartGraph());
  engine.Start();
  EXPECT_DEATH(engine.RemoveQueryDynamic(-1), "out of range");
  EXPECT_DEATH(engine.RemoveQueryDynamic(5), "out of range");
  engine.RemoveQueryDynamic(0);
  EXPECT_DEATH(engine.RemoveQueryDynamic(0), "already removed");
}

TEST(ChurnGuardTest, ParallelRemoveRejectsBadIds) {
  // The shard pool is live, so fork-based death tests must re-exec.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const ChurnData data = MakeChurnData(13);
  ParallelEngineOptions popt;
  popt.num_threads = 2;
  ParallelQueryEngine engine(popt);
  engine.AddQuery(data.queries[0]);
  for (const GraphStream& s : data.dataset.streams) {
    engine.AddStream(s.StartGraph());
  }
  engine.Start();
  EXPECT_DEATH(engine.RemoveQueryDynamic(3), "out of range");
  engine.RemoveQueryDynamic(0);
  EXPECT_DEATH(engine.RemoveQueryDynamic(0), "already removed");
}

}  // namespace
}  // namespace gsps
