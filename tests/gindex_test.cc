// Tests for DFS-code canonicalization, the gSpan-style miner, and the
// gIndex-style filter.

#include "gsps/baselines/gindex/gindex_filter.h"

#include <gtest/gtest.h>

#include <set>

#include "gsps/baselines/gindex/dfs_code.h"
#include "gsps/baselines/gindex/gspan_miner.h"
#include "gsps/common/random.h"
#include "gsps/gen/query_extractor.h"
#include "gsps/gen/synthetic_generator.h"
#include "gsps/iso/subgraph_isomorphism.h"

namespace gsps {
namespace {

Graph Path(std::initializer_list<VertexLabel> labels) {
  Graph g;
  VertexId prev = kInvalidVertex;
  for (const VertexLabel label : labels) {
    const VertexId v = g.AddVertex(label);
    if (prev != kInvalidVertex) {
      EXPECT_TRUE(g.AddEdge(prev, v, 0));
    }
    prev = v;
  }
  return g;
}

// Relabels vertex ids through a permutation.
Graph Permuted(const Graph& g, Rng& rng) {
  std::vector<VertexId> ids = g.VertexIds();
  std::vector<VertexId> shuffled = ids;
  rng.Shuffle(shuffled);
  std::vector<VertexId> remap(static_cast<size_t>(g.VertexIdBound()));
  Graph out;
  for (size_t i = 0; i < ids.size(); ++i) {
    // Assign new ids in shuffled order.
    remap[static_cast<size_t>(shuffled[i])] =
        out.AddVertex(g.GetVertexLabel(shuffled[i]));
  }
  for (const VertexId u : ids) {
    for (const HalfEdge& half : g.Neighbors(u)) {
      if (half.to > u) {
        out.AddEdge(remap[static_cast<size_t>(u)],
                    remap[static_cast<size_t>(half.to)], half.label);
      }
    }
  }
  return out;
}

TEST(DfsCodeTest, SingleEdgeCanonicalForm) {
  Graph g;
  g.AddVertex(2);
  g.AddVertex(1);
  ASSERT_TRUE(g.AddEdge(0, 1, 5));
  const DfsCode code = MinimalDfsCode(g);
  ASSERT_EQ(code.size(), 1u);
  // The minimal code starts from the smaller label.
  EXPECT_EQ(code[0].from, 0);
  EXPECT_EQ(code[0].to, 1);
  EXPECT_EQ(code[0].from_label, 1);
  EXPECT_EQ(code[0].to_label, 2);
  EXPECT_EQ(code[0].edge_label, 5);
}

TEST(DfsCodeTest, IsomorphicGraphsShareCode) {
  Rng rng(17);
  SyntheticParams params;
  params.num_graphs = 10;
  params.num_seeds = 3;
  params.avg_seed_edges = 3;
  params.avg_graph_edges = 8;
  params.num_vertex_labels = 2;
  params.num_edge_labels = 2;
  const std::vector<Graph> graphs = GenerateSyntheticDataset(params);
  for (const Graph& g : graphs) {
    if (g.NumEdges() < 1 || g.NumEdges() > 9 || !g.IsConnected()) continue;
    const std::string key = DfsCodeKey(MinimalDfsCode(g));
    for (int trial = 0; trial < 3; ++trial) {
      Graph shuffled = Permuted(g, rng);
      EXPECT_EQ(DfsCodeKey(MinimalDfsCode(shuffled)), key);
    }
  }
}

TEST(DfsCodeTest, NonIsomorphicGraphsDiffer) {
  const Graph p = Path({1, 1, 1, 1});  // Path on 4 vertices.
  Graph star;                          // Star on 4 vertices.
  star.AddVertex(1);
  for (int i = 0; i < 3; ++i) {
    const VertexId v = star.AddVertex(1);
    ASSERT_TRUE(star.AddEdge(0, v, 0));
  }
  EXPECT_NE(DfsCodeKey(MinimalDfsCode(p)), DfsCodeKey(MinimalDfsCode(star)));
}

TEST(DfsCodeTest, RoundTripThroughGraph) {
  Graph g;
  g.AddVertex(1);
  g.AddVertex(2);
  g.AddVertex(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 0));
  ASSERT_TRUE(g.AddEdge(1, 2, 1));
  ASSERT_TRUE(g.AddEdge(0, 2, 0));
  const DfsCode code = MinimalDfsCode(g);
  const Graph rebuilt = GraphFromDfsCode(code);
  EXPECT_EQ(rebuilt.NumVertices(), 3);
  EXPECT_EQ(rebuilt.NumEdges(), 3);
  EXPECT_EQ(DfsCodeKey(MinimalDfsCode(rebuilt)), DfsCodeKey(code));
}

TEST(GspanMinerTest, MinesSingleEdgePatternsWithExactSupport) {
  // Database: two graphs sharing an (1)-(2) edge, one with a (3)-(3) edge.
  std::vector<Graph> db = {Path({1, 2}), Path({1, 2, 3}), Path({3, 3})};
  GspanOptions options;
  options.max_edges = 1;
  options.min_support_fraction = 0.0;  // Keep everything.
  const std::vector<MinedFeature> features =
      MineFrequentSubgraphs(db, options);
  // Distinct single edges: (1,2), (2,3), (3,3).
  ASSERT_EQ(features.size(), 3u);
  for (const MinedFeature& f : features) {
    for (const int g : f.support) {
      EXPECT_TRUE(IsSubgraphIsomorphic(f.pattern, db[static_cast<size_t>(g)]));
    }
  }
}

TEST(GspanMinerTest, SupportThresholdFilters) {
  std::vector<Graph> db = {Path({1, 2}), Path({1, 2}), Path({3, 3})};
  GspanOptions options;
  options.max_edges = 1;
  options.min_support_fraction = 0.6;  // Needs 2 of 3 graphs.
  const std::vector<MinedFeature> features =
      MineFrequentSubgraphs(db, options);
  ASSERT_EQ(features.size(), 1u);
  EXPECT_EQ(features[0].support, (std::vector<int>{0, 1}));
}

TEST(GspanMinerTest, GrowsMultiEdgePatternsWithCompleteSupport) {
  Rng rng(3);
  SyntheticParams params;
  params.num_graphs = 12;
  params.num_seeds = 3;
  params.avg_seed_edges = 4;
  params.avg_graph_edges = 12;
  params.num_vertex_labels = 2;
  const std::vector<Graph> db = GenerateSyntheticDataset(params);
  GspanOptions options;
  options.max_edges = 3;
  options.min_support_fraction = 0.3;
  const std::vector<MinedFeature> features =
      MineFrequentSubgraphs(db, options);
  ASSERT_FALSE(features.empty());
  bool has_multi_edge = false;
  std::set<std::string> codes;
  for (const MinedFeature& f : features) {
    if (f.pattern.NumEdges() > 1) has_multi_edge = true;
    EXPECT_LE(f.pattern.NumEdges(), 3);
    // No duplicate patterns up to isomorphism.
    EXPECT_TRUE(codes.insert(DfsCodeKey(MinimalDfsCode(f.pattern))).second);
    // Support lists are complete and correct.
    for (size_t g = 0; g < db.size(); ++g) {
      const bool contained = IsSubgraphIsomorphic(f.pattern, db[g]);
      const bool listed = std::find(f.support.begin(), f.support.end(),
                                    static_cast<int>(g)) != f.support.end();
      EXPECT_EQ(contained, listed)
          << "pattern with " << f.pattern.NumEdges() << " edges, graph " << g;
    }
  }
  EXPECT_TRUE(has_multi_edge);
}

TEST(GindexFilterTest, NoFalseNegatives) {
  Rng rng(13);
  SyntheticParams params;
  params.num_graphs = 20;
  params.num_seeds = 4;
  params.avg_seed_edges = 4;
  params.avg_graph_edges = 14;
  params.num_vertex_labels = 2;
  const std::vector<Graph> db = GenerateSyntheticDataset(params);
  const std::vector<Graph> queries = ExtractQuerySet(db, 4, 8, rng);
  ASSERT_FALSE(queries.empty());

  GspanOptions options;
  options.max_edges = 4;
  options.min_support_fraction = 0.2;
  GindexFilter filter(options);
  filter.BuildIndex(db);
  EXPECT_GT(filter.num_features(), 0);

  int64_t true_pairs = 0;
  for (const Graph& query : queries) {
    const std::vector<int> candidates = filter.CandidateGraphsFor(query);
    for (size_t g = 0; g < db.size(); ++g) {
      if (IsSubgraphIsomorphic(query, db[g])) {
        ++true_pairs;
        EXPECT_TRUE(std::find(candidates.begin(), candidates.end(),
                              static_cast<int>(g)) != candidates.end());
      }
    }
  }
  EXPECT_GT(true_pairs, 0);
}

TEST(GindexFilterTest, Gindex2IndexesAllSmallFragments) {
  std::vector<Graph> db = {Path({1, 2, 3}), Path({4, 5})};
  GindexFilter filter(GindexFilter::Gindex2Options());
  filter.BuildIndex(db);
  // Fragments: (1,2), (2,3), (4,5), (1,2,3). All with support 1+.
  EXPECT_EQ(filter.num_features(), 4);
}

TEST(GindexFilterTest, FilterActuallyPrunes) {
  // A query whose label never occurs in graph 1 must exclude it.
  std::vector<Graph> db = {Path({1, 2}), Path({3, 4})};
  GindexFilter filter(GindexFilter::Gindex2Options());
  filter.BuildIndex(db);
  EXPECT_EQ(filter.CandidateGraphsFor(Path({1, 2})), std::vector<int>{0});
  EXPECT_EQ(filter.CandidateGraphsFor(Path({3, 4})), std::vector<int>{1});
}

}  // namespace
}  // namespace gsps
